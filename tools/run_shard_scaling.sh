#!/usr/bin/env bash
# Multi-process shard scaling study (docs/sharding.md).
#
# For each worker count, launches that many real `shard_worker`
# processes on Unix-domain sockets, drives them through the front-door
# router with `load_gen --router` (open-loop Poisson arrivals,
# all-unique traffic so the reuse cache cannot flatter the numbers),
# drains the tier, and records completed-request throughput. The rows
# land next to the committed baseline as
#
#   SCALING/shard/workers:<N>   real_time = ns per completed request
#
# stamped with the same host context tools/bench_results.py uses, so
# tools/check_bench_regression.py compares them same-host only and a
# laptop's numbers never gate a CI runner's. Rows from a host with
# fewer cores than workers record the contention honestly — the
# >= 0.8*N expectation only applies when each worker has a core.
#
#   tools/run_shard_scaling.sh [-o OUTDIR] [-w "1 2 4"] [-r RATE]
#                              [-d DURATION] [-m MODEL]
#                              [-a BENCH_JSON]
#
# Defaults: outdir bench-shard-scaling/, worker sweep "1 2 4", 400
# req/s for 3 s, model mini_unet, no append. With -a the rows are
# folded into BENCH_JSON in place, replacing any previous
# SCALING/shard/ rows from the same host.
set -euo pipefail

cd "$(dirname "$0")/.."

OUTDIR=bench-shard-scaling
SWEEP="1 2 4"
RATE=400
DURATION=3
MODEL=mini_unet
APPEND=""
WORKER_BIN=build/examples/shard_worker
LOADGEN_BIN=build/examples/load_gen
BENCH_BIN=build/bench/bench_kernels

while getopts "o:w:r:d:m:a:h" opt; do
    case "$opt" in
        o) OUTDIR=$OPTARG ;;
        w) SWEEP=$OPTARG ;;
        r) RATE=$OPTARG ;;
        d) DURATION=$OPTARG ;;
        m) MODEL=$OPTARG ;;
        a) APPEND=$OPTARG ;;
        h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) exit 2 ;;
    esac
done

for bin in "$WORKER_BIN" "$LOADGEN_BIN" "$BENCH_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not found (build with 'cmake -B build -S ." \
             "&& cmake --build build -j')" >&2
        exit 1
    fi
done

mkdir -p "$OUTDIR"
NPROC=$(nproc)
echo "[shard-scaling] host: $(hostname), $NPROC cpu(s); worker" \
     "sweep: $SWEEP; $RATE req/s x ${DURATION}s, model $MODEL"
if [ "$NPROC" -lt "$(echo "$SWEEP" | tr ' ' '\n' | sort -n | tail -1)" ]
then
    echo "[shard-scaling] note: fewer cores than max workers -" \
         "workers will contend for CPU and the curve records that"
fi

# Never leave orphaned workers behind, even on ^C mid-study.
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

# One cheap google-benchmark run gives the honest host stamp (name,
# cpus, MHz, build type) without hand-rolling it. (A filter matching
# nothing writes no JSON at all, hence the tiny real benchmark.)
"$BENCH_BIN" --benchmark_filter='^BM_MatmulInt8/32$' \
    --benchmark_min_time=0.01 \
    --benchmark_out="$OUTDIR/ctx.json" --benchmark_out_format=json \
    >/dev/null 2>&1
python3 tools/bench_results.py stamp "$OUTDIR/ctx.json" \
    --tag study=shard --out "$OUTDIR/ctx.json"

declare -A RPS
for N in $SWEEP; do
    SOCKS=()
    PIDS=()
    for i in $(seq 1 "$N"); do
        sock="$OUTDIR/w${N}_${i}.sock"
        rm -f "$sock"
        "$WORKER_BIN" --socket "$sock" --model "$MODEL" \
            >"$OUTDIR/worker_${N}_${i}.log" 2>&1 &
        PIDS+=($!)
        SOCKS+=("$sock")
    done
    for sock in "${SOCKS[@]}"; do
        for _ in $(seq 100); do
            [ -S "$sock" ] && break
            sleep 0.1
        done
        if [ ! -S "$sock" ]; then
            echo "error: worker socket $sock never appeared (see" \
                 "$OUTDIR/worker_*.log)" >&2
            exit 1
        fi
    done
    joined=$(IFS=,; echo "${SOCKS[*]}")
    echo "[shard-scaling] workers=$N -> $OUTDIR/load_${N}.log"
    "$LOADGEN_BIN" --router "$joined" --rate "$RATE" \
        --duration "$DURATION" --dup-frac 0 --drain \
        >"$OUTDIR/load_${N}.log" 2>&1
    # --drain makes every worker exit 0; reap them before the next N.
    for pid in "${PIDS[@]}"; do
        wait "$pid"
    done
    PIDS=()
    rps=$(grep -oE '[0-9.]+ req/s completed' "$OUTDIR/load_${N}.log" |
          awk '{print $1}')
    if [ -z "$rps" ]; then
        echo "error: no completed-throughput line in" \
             "$OUTDIR/load_${N}.log" >&2
        exit 1
    fi
    RPS[$N]=$rps
    echo "[shard-scaling] workers=$N: $rps req/s completed"
done

# Emit the study record and (optionally) fold it into the baseline.
{
    for N in $SWEEP; do
        echo "$N ${RPS[$N]}"
    done
} >"$OUTDIR/rps.txt"

python3 - "$OUTDIR" "$APPEND" <<'EOF'
import json
import os
import sys

outdir, append = sys.argv[1], sys.argv[2]
with open(f"{outdir}/ctx.json") as f:
    ctx = json.load(f)
hc = ctx["context"]["host_context"]

# Read the baseline up front so a malformed file fails before any
# output is written, and never truncates the baseline itself.
bench = None
if append:
    with open(append) as f:
        bench = json.load(f)

rows = []
with open(f"{outdir}/rps.txt") as f:
    for line in f:
        n, rps = line.split()
        rps = float(rps)
        rows.append({
            "name": f"SCALING/shard/workers:{n}",
            "run_type": "scaling",
            # ns per completed request: lower is better, same
            # direction as every other SCALING row.
            "real_time": 1e9 / rps,
            "cpu_time": 1e9 / rps,
            "time_unit": "ns",
            "iterations": 1,
            "req_per_sec": rps,
            "host_context": dict(hc),
        })

record = {"context": ctx["context"], "benchmarks": rows}
with open(f"{outdir}/shard_scaling.json", "w") as f:
    json.dump(record, f, indent=1)
    f.write("\n")

base = None
for row in rows:
    n = row["name"].rpartition(":")[2]
    if base is None:
        base, base_rps = n, row["req_per_sec"]
    speedup = row["req_per_sec"] / base_rps
    print(f"  workers {n:>2}: {row['req_per_sec']:8.1f} req/s "
          f"({speedup:4.2f}x vs workers {base})")

if append:
    key = tuple(str(hc.get(k, "")) for k in
                ("host_name", "num_cpus", "mhz_per_cpu",
                 "library_build_type"))
    kept, dropped = [], 0
    for row in bench.get("benchmarks", []):
        rhc = row.get("host_context", {})
        rkey = tuple(str(rhc.get(k, "")) for k in
                     ("host_name", "num_cpus", "mhz_per_cpu",
                      "library_build_type"))
        if row.get("name", "").startswith("SCALING/shard/") \
                and rkey == key:
            dropped += 1
            continue
        kept.append(row)
    bench["benchmarks"] = kept + rows
    tmp = append + ".tmp"
    with open(tmp, "w") as f:
        json.dump(bench, f, indent=1)
        f.write("\n")
    os.replace(tmp, append)
    print(f"appended {len(rows)} shard scaling rows "
          f"(replaced {dropped}) -> {append}")
EOF

echo "[shard-scaling] record: $OUTDIR/shard_scaling.json"
if [ -z "$APPEND" ]; then
    echo "[shard-scaling] fold into the committed baseline with:"
    echo "  tools/run_shard_scaling.sh -a BENCH_kernels.json"
fi
