#!/usr/bin/env python3
"""Compare Ditto-vs-direct rollout ratios against the committed baseline.

Reads two google-benchmark JSON records (the committed BENCH_kernels.json
baseline and a freshly produced one), pairs up the BM_CompiledRollout
rows per preset spec (their labels are "<spec>/direct" and
"<spec>/ditto"), computes the direct/ditto wall-clock ratio for each
spec — the end-to-end speedup Ditto difference processing delivers —
and flags specs whose fresh ratio fell more than --tolerance below the
baseline ratio.

Also warn-gates the serving-latency families (BM_ServeLatency /
BM_ServeOverload / BM_ServeReuse): their p95_us counters are compared
row by row
against the baseline and flagged when they rose more than
--serve-tolerance above it. Serving p95 on a shared runner is even
noisier than a throughput ratio, so these rows never exit non-zero —
not even under --strict; the comparison is informational.

Records may be **multi-host**: tools/bench_results.py stamps rows with
a `host_context` and `append-scaling` accumulates `SCALING/...` rows
from several machines into one file. Rows are only ever compared
against rows from the same host context (host name, cpu count, MHz,
build type); rows from other hosts are counted and skipped with a note
— a laptop's numbers never gate a CI runner's. Unstamped rows inherit
their record's own context, so plain single-host records keep the old
behavior exactly. Scaling rows are compared warn-only (per name +
thread count, flagged when wall time rises past --scaling-tolerance).

With --fidelity-goldens, also warn-gates the ApproxDitto fidelity of
the fresh record: the BM_ApproxRollout rows at the golden file's
threshold carry psnr_db/cosine counters (end-to-end fidelity against
the exact QuantDitto rollout), and each preset's values are compared
against the committed floors in FIDELITY_goldens.json. Fidelity is
deterministic (seeded rollouts, thread-invariant skip decisions), so
the floors are tight; --fidelity-tolerance adds dB slack for PSNR
(and tolerance/100 for cosine) anyway so a future numeric tweak warns
instead of blocking. These rows never exit non-zero, even under
--strict: a fidelity drop is a quality signal for the PR author, not
a build breakage.

Warn-only by default (exit 0, suitable for a CI gate that must not
block on shared-runner noise); --strict exits 1 on any rollout-ratio
regression.

    python3 tools/check_bench_regression.py \
        --baseline BENCH_kernels.json \
        --new build/bench/BENCH_kernels.json \
        --fidelity-goldens FIDELITY_goldens.json
"""

import argparse
import json
import sys

FAMILY = "BM_CompiledRollout"
APPROX_FAMILY = "BM_ApproxRollout"
SERVE_FAMILIES = ("BM_ServeLatency", "BM_ServeOverload",
                  "BM_ServeReuse", "BM_ShardRouter")
SCALING_PREFIX = "SCALING/"
HOST_KEYS = ("host_name", "num_cpus", "mhz_per_cpu",
             "library_build_type")


def host_key(ctx):
    """Hashable same-host identity (mirrors tools/bench_results.py)."""
    return tuple(str(ctx.get(k, "")) for k in HOST_KEYS)


def record_host_key(record):
    return host_key(record.get("context", {}))


def same_host_rows(record, ref_key):
    """Yield rows matching ref_key; also return the skipped count.

    A row without a host_context stamp belongs to the record's own
    context (the plain single-host case).
    """
    own = record_host_key(record)
    kept, skipped = [], 0
    for bench in record.get("benchmarks", []):
        row_key = (host_key(bench["host_context"])
                   if "host_context" in bench else own)
        if row_key == ref_key:
            kept.append(bench)
        else:
            skipped += 1
    return kept, skipped


def rollout_ratios(rows):
    """Map spec name -> direct/ditto real_time ratio."""
    times = {}
    for bench in rows:
        if not bench.get("name", "").startswith(FAMILY):
            continue
        label = bench.get("label", "")
        if "/" not in label:
            continue
        spec, mode = label.rsplit("/", 1)
        times.setdefault(spec, {})[mode] = bench["real_time"]
    ratios = {}
    for spec, modes in times.items():
        if "direct" in modes and "ditto" in modes and modes["ditto"] > 0:
            ratios[spec] = modes["direct"] / modes["ditto"]
    return ratios


def serve_p95(rows):
    """Map serve-family row name -> its p95_us counter."""
    out = {}
    for bench in rows:
        name = bench.get("name", "")
        if not name.startswith(SERVE_FAMILIES):
            continue
        if "p95_us" in bench:
            out[name] = float(bench["p95_us"])
    return out


def scaling_times(rows):
    """Map SCALING/<name>/threads:<N> row name -> real_time."""
    return {bench["name"]: bench["real_time"] for bench in rows
            if bench.get("name", "").startswith(SCALING_PREFIX)}


def check_scaling(base, fresh, tolerance):
    """Warn (never fail) on scaling rows slower than baseline allows."""
    if not fresh:
        return
    print("scaling study (warn-only):")
    for name in sorted(fresh):
        t = fresh[name]
        if name not in base:
            print(f"  {name:<44} {t:12.0f} ns (no baseline row)")
            continue
        ceiling = base[name] * (1.0 + tolerance)
        verdict = "ok" if t <= ceiling else "WARN: above ceiling"
        print(f"  {name:<44} {t:12.0f} ns (baseline "
              f"{base[name]:12.0f} ns) {verdict}")


def check_serve_latency(base, fresh, tolerance):
    """Warn (never fail) on serve p95 rows above baseline + tolerance."""
    if not fresh:
        return
    print("serving p95 (warn-only):")
    for name in sorted(fresh):
        p95 = fresh[name]
        if name not in base:
            print(f"  {name:<28} p95 {p95:10.0f} us "
                  "(no baseline row - new bench)")
            continue
        ceiling = base[name] * (1.0 + tolerance)
        verdict = "ok" if p95 <= ceiling else "WARN: above ceiling"
        print(f"  {name:<28} p95 {p95:10.0f} us (baseline "
              f"{base[name]:10.0f} us, ceiling {ceiling:10.0f} us) "
              f"{verdict}")


def approx_fidelity(rows, threshold):
    """Map spec name -> {psnr_db, cosine} at the golden threshold."""
    want = f"/approx@{threshold:.2f}"
    out = {}
    for bench in rows:
        if not bench.get("name", "").startswith(APPROX_FAMILY):
            continue
        label = bench.get("label", "")
        if not label.endswith(want):
            continue
        spec = label[: -len(want)]
        if "psnr_db" in bench and "cosine" in bench:
            out[spec] = {"psnr_db": float(bench["psnr_db"]),
                         "cosine": float(bench["cosine"])}
    return out


def check_fidelity(goldens_path, fresh_rows, tolerance):
    """Warn (never fail) on ApproxDitto fidelity below the floors."""
    with open(goldens_path) as f:
        goldens = json.load(f)
    threshold = float(goldens["threshold"])
    fresh = approx_fidelity(fresh_rows, threshold)
    print(f"approx fidelity @ threshold {threshold:.2f} (warn-only):")
    for spec in sorted(goldens["presets"]):
        floors = goldens["presets"][spec]
        if spec not in fresh:
            print(f"  {spec:<12} WARN: no {APPROX_FAMILY} row at the "
                  "golden threshold")
            continue
        psnr_floor = floors["psnr_db"] - tolerance
        cos_floor = floors["cosine"] - tolerance / 100.0
        got = fresh[spec]
        ok = got["psnr_db"] >= psnr_floor and got["cosine"] >= cos_floor
        print(f"  {spec:<12} PSNR {got['psnr_db']:6.2f} dB (floor "
              f"{psnr_floor:6.2f}), cosine {got['cosine']:.5f} (floor "
              f"{cos_floor:.5f}) "
              f"{'ok' if ok else 'WARN: below golden floor'}")
    for spec in sorted(set(fresh) - set(goldens["presets"])):
        print(f"  {spec:<12} PSNR {fresh[spec]['psnr_db']:6.2f} dB "
              "(no golden floor - new spec)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_kernels.json")
    ap.add_argument("--new", dest="fresh", required=True,
                    help="freshly produced BENCH_kernels.json")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative ratio drop (default 0.10)")
    ap.add_argument("--serve-tolerance", type=float, default=0.50,
                    help="allowed relative serve-p95 rise before a "
                         "warning (default 0.50)")
    ap.add_argument("--scaling-tolerance", type=float, default=0.50,
                    help="allowed relative scaling-row wall-time rise "
                         "before a warning (default 0.50)")
    ap.add_argument("--fidelity-goldens",
                    help="FIDELITY_goldens.json with per-preset "
                         "PSNR/cosine floors for the ApproxDitto rows "
                         "(omit to skip the fidelity check)")
    ap.add_argument("--fidelity-tolerance", type=float, default=0.5,
                    help="dB slack below the golden PSNR floor (and "
                         "tolerance/100 below the cosine floor) before "
                         "a warning (default 0.5)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero on rollout-ratio regressions "
                         "(default: warn); serve p95 and scaling rows "
                         "always warn")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base_record = json.load(f)
    with open(args.fresh) as f:
        fresh_record = json.load(f)

    # Compare on the fresh record's host only: a multi-host baseline
    # (or a multi-host fresh file from tools/bench_results.py merge)
    # contributes just its matching rows.
    ref_key = record_host_key(fresh_record)
    base_rows, base_skipped = same_host_rows(base_record, ref_key)
    fresh_rows, fresh_skipped = same_host_rows(fresh_record, ref_key)
    if base_skipped or fresh_skipped:
        print(f"note: skipped rows from other host contexts "
              f"(baseline {base_skipped}, new {fresh_skipped}); "
              f"comparing host {'/'.join(ref_key)} only")

    base = rollout_ratios(base_rows)
    fresh = rollout_ratios(fresh_rows)

    check_serve_latency(serve_p95(base_rows), serve_p95(fresh_rows),
                        args.serve_tolerance)
    check_scaling(scaling_times(base_rows), scaling_times(fresh_rows),
                  args.scaling_tolerance)
    if args.fidelity_goldens:
        check_fidelity(args.fidelity_goldens, fresh_rows,
                       args.fidelity_tolerance)

    if not fresh:
        print(f"warning: no {FAMILY} rows in {args.fresh}; nothing to "
              "check")
        return 0

    regressions = []
    for spec in sorted(fresh):
        ratio = fresh[spec]
        if spec not in base:
            print(f"  {spec:<12} ditto speedup {ratio:5.2f}x "
                  "(no baseline row - new spec)")
            continue
        floor = base[spec] * (1.0 - args.tolerance)
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {spec:<12} ditto speedup {ratio:5.2f}x "
              f"(baseline {base[spec]:5.2f}x, floor {floor:5.2f}x) "
              f"{verdict}")
        if ratio < floor:
            regressions.append(spec)

    if regressions:
        print(f"warning: ditto-vs-direct ratio regressed for: "
              f"{', '.join(regressions)} (tolerance "
              f"{args.tolerance:.0%})")
        return 1 if args.strict else 0
    print("all ditto-vs-direct rollout ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
