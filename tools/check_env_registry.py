#!/usr/bin/env python3
"""Cross-check the env-knob registry, its docs and the tree's getenv use.

Three invariants, all enforced in CI:

 1. Every knob registered in src/common/env.cc appears in the
    docs/config.md table, and the docs mention no unregistered knob.
 2. No source file outside src/common/env.cc calls getenv directly —
    all environment access goes through the typed readers, which
    refuse unregistered names at runtime.
 3. Tests and benches may *set* DITTO_* variables, but any DITTO_*
    name they mention must be registered (no knobs that exist only in
    a test's imagination).

Run from the repository root: python3 tools/check_env_registry.py
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
ENV_CC = ROOT / "src" / "common" / "env.cc"
CONFIG_MD = ROOT / "docs" / "config.md"

KNOB_RE = re.compile(r"DITTO_[A-Z0-9_]+")
# Quoted DITTO_* literals are knob names; bare identifiers are macros
# and include guards, which the scan must ignore.
QUOTED_RE = re.compile(r'"(DITTO_[A-Z0-9_]+)"')
# Deliberately-unregistered names (the registry's own negative tests).
ALLOWLIST = {"DITTO_NOT_A_KNOB"}


def registered_knobs():
    text = ENV_CC.read_text()
    table = text.split("kKnobs[]")[1].split("};")[0]
    return set(re.findall(r'\{"(DITTO_[A-Z0-9_]+)"', table))


def mentioned(path):
    return set(KNOB_RE.findall(path.read_text(errors="ignore")))


def quoted(path):
    return set(QUOTED_RE.findall(path.read_text(errors="ignore")))


def main():
    failures = []
    knobs = registered_knobs()
    if not knobs:
        failures.append(f"no knobs parsed from {ENV_CC}")

    documented = mentioned(CONFIG_MD)
    for missing in sorted(knobs - documented):
        failures.append(f"{missing} is registered but absent from "
                        f"docs/config.md")
    for stale in sorted(documented - knobs):
        failures.append(f"docs/config.md mentions {stale}, which is not "
                        f"in the registry (src/common/env.cc)")

    for sub in ("src", "tests", "bench", "examples"):
        for path in sorted((ROOT / sub).rglob("*")):
            if path.suffix not in (".cc", ".cpp", ".h") or path == ENV_CC:
                continue
            if re.search(r"\bgetenv\s*\(",
                         path.read_text(errors="ignore")):
                failures.append(
                    f"{path.relative_to(ROOT)} calls getenv directly; "
                    f"route it through src/common/env.h")

    for sub in ("src", "tests", "bench", "examples"):
        for path in (ROOT / sub).rglob("*"):
            if path.suffix not in (".cc", ".cpp", ".h"):
                continue
            for name in sorted(quoted(path) - knobs - ALLOWLIST):
                failures.append(
                    f"{path.relative_to(ROOT)} mentions unregistered "
                    f"knob {name}")

    if failures:
        print("env registry check FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print(f"env registry check OK ({len(knobs)} knobs, docs and tree "
          f"consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
