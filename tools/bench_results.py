#!/usr/bin/env python3
"""Parse, stamp, merge and flatten google-benchmark JSON records.

The scaling-study companion to bench_kernels / tools/run_scaling.sh.
google-benchmark writes one context object per *file*, which is enough
for a single run but loses provenance the moment rows from several
runs (different thread counts, different hosts) land in one record.
This tool makes provenance per-row:

  stamp    RUN.json [--tag k=v ...] [--out OUT.json]
           Embed a compact host_context (host name, cpu count, MHz,
           build type, ditto_num_threads, ditto_simd, plus any --tag
           pairs) into the record and into every benchmark row.

  merge    --out OUT.json RUN.json ...
           Concatenate stamped runs into one record (context taken
           from the first file; every row keeps its own host_context).

  csv      RECORD.json [--out OUT.csv]
           Flatten rows to CSV: name, real_time, cpu_time, time_unit,
           iterations, threads, simd, host, num_cpus, build.

  scaling  RECORD.json [--family PREFIX]
           Print a per-benchmark scaling table: wall time and speedup
           at each recorded thread count, relative to the smallest
           thread count present for that benchmark.

  append-scaling --bench BENCH.json --scaling MERGED.json
                 [--out OUT.json]
           Append the merged scaling rows to a committed
           BENCH_kernels.json as rows named
           "SCALING/<name>/threads:<N>" with run_type "scaling",
           replacing any previous SCALING/ rows from the same host.
           Rows keep their host_context, so records accumulated from
           several hosts stay distinguishable and
           tools/check_bench_regression.py can compare same-host rows
           only.

Stamped/merged records remain valid google-benchmark JSON supersets:
consumers that only know {context, benchmarks} keep working.
"""

import argparse
import csv
import json
import sys

HOST_KEYS = ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
DITTO_KEYS = ("ditto_num_threads", "ditto_simd")
SCALING_PREFIX = "SCALING/"


def load(path):
    with open(path) as f:
        return json.load(f)


def host_context(record, tags=()):
    """Compact per-row provenance derived from a record's context."""
    ctx = record.get("context", {})
    out = {k: ctx[k] for k in HOST_KEYS + DITTO_KEYS if k in ctx}
    for tag in tags:
        if "=" not in tag:
            raise SystemExit(f"--tag wants k=v, got {tag!r}")
        k, v = tag.split("=", 1)
        out[k] = v
    return out


def host_key(hc):
    """Hashable same-host identity (thread count and tags excluded)."""
    return tuple(str(hc.get(k, "")) for k in HOST_KEYS)


def stamp(record, tags=()):
    hc = host_context(record, tags)
    record.setdefault("context", {})["host_context"] = hc
    for bench in record.get("benchmarks", []):
        bench["host_context"] = dict(hc)
    return record


def cmd_stamp(args):
    record = stamp(load(args.record), args.tag)
    dump(record, args.out)
    return 0


def cmd_merge(args):
    merged = None
    for path in args.records:
        record = stamp(load(path))  # idempotent if already stamped
        if merged is None:
            merged = record
        else:
            merged["benchmarks"].extend(record.get("benchmarks", []))
    if merged is None:
        raise SystemExit("merge: no input records")
    dump(merged, args.out)
    print(f"merged {len(args.records)} records, "
          f"{len(merged['benchmarks'])} rows", file=sys.stderr)
    return 0


def row_fields(bench):
    hc = bench.get("host_context", {})
    return {
        "name": bench.get("name", ""),
        "real_time": bench.get("real_time", ""),
        "cpu_time": bench.get("cpu_time", ""),
        "time_unit": bench.get("time_unit", ""),
        "iterations": bench.get("iterations", ""),
        "threads": hc.get("ditto_num_threads", ""),
        "simd": hc.get("ditto_simd", ""),
        "host": hc.get("host_name", ""),
        "num_cpus": hc.get("num_cpus", ""),
        "build": hc.get("library_build_type", ""),
    }


def cmd_csv(args):
    record = load(args.record)
    rows = [row_fields(b) for b in record.get("benchmarks", [])]
    out = open(args.out, "w", newline="") if args.out else sys.stdout
    writer = csv.DictWriter(out, fieldnames=list(row_fields({}).keys()))
    writer.writeheader()
    writer.writerows(rows)
    if args.out:
        out.close()
        print(f"wrote {len(rows)} rows to {args.out}", file=sys.stderr)
    return 0


def scaling_rows(record, family=""):
    """Map name -> {threads -> real_time} over stamped rows."""
    table = {}
    for bench in record.get("benchmarks", []):
        name = bench.get("name", "")
        if name.startswith(SCALING_PREFIX):
            # committed form: SCALING/<name>/threads:<N>
            body = name[len(SCALING_PREFIX):]
            base, _, t = body.rpartition("/threads:")
            if not base:
                continue
            threads = int(t)
        else:
            hc = bench.get("host_context", {})
            if "ditto_num_threads" not in hc:
                continue
            base = name
            threads = int(hc["ditto_num_threads"])
        if family and not base.startswith(family):
            continue
        table.setdefault(base, {})[threads] = bench["real_time"]
    return table


def cmd_scaling(args):
    table = scaling_rows(load(args.record), args.family)
    if not table:
        print("no stamped scaling rows found (run tools/run_scaling.sh "
              "or stamp/merge records first)")
        return 1
    print(f"{'benchmark':<36} {'threads':>7} {'time':>12} {'speedup':>8}")
    for base in sorted(table):
        per_t = table[base]
        t0 = min(per_t)
        for threads in sorted(per_t):
            speedup = per_t[t0] / per_t[threads] if per_t[threads] else 0
            print(f"{base:<36} {threads:>7} {per_t[threads]:>12.0f} "
                  f"{speedup:>7.2f}x")
    return 0


def cmd_append_scaling(args):
    bench_record = load(args.bench)
    scaling_record = load(args.scaling)
    new_rows = []
    new_hosts = set()
    for row in scaling_record.get("benchmarks", []):
        hc = row.get("host_context")
        if not hc or "ditto_num_threads" not in hc:
            continue
        new_hosts.add(host_key(hc))
        new_rows.append({
            "name": (f"{SCALING_PREFIX}{row['name']}"
                     f"/threads:{hc['ditto_num_threads']}"),
            "run_type": "scaling",
            "real_time": row.get("real_time"),
            "cpu_time": row.get("cpu_time"),
            "time_unit": row.get("time_unit", "ns"),
            "iterations": row.get("iterations"),
            "host_context": hc,
        })
    if not new_rows:
        raise SystemExit("append-scaling: no stamped rows in "
                         f"{args.scaling}")
    # Replace this host's previous study; keep other hosts' rows.
    kept = []
    dropped = 0
    for row in bench_record.get("benchmarks", []):
        if (row.get("name", "").startswith(SCALING_PREFIX)
                and host_key(row.get("host_context", {})) in new_hosts):
            dropped += 1
            continue
        kept.append(row)
    bench_record["benchmarks"] = kept + new_rows
    dump(bench_record, args.out or args.bench)
    print(f"appended {len(new_rows)} scaling rows "
          f"(replaced {dropped}) -> {args.out or args.bench}",
          file=sys.stderr)
    return 0


def dump(record, out):
    if out:
        with open(out, "w") as f:
            json.dump(record, f, indent=1)
            f.write("\n")
    else:
        json.dump(record, sys.stdout, indent=1)
        sys.stdout.write("\n")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("stamp", help="embed host_context per row")
    p.add_argument("record")
    p.add_argument("--tag", action="append", default=[],
                   help="extra k=v pair for the host context")
    p.add_argument("--out")
    p.set_defaults(fn=cmd_stamp)

    p = sub.add_parser("merge", help="concatenate stamped runs")
    p.add_argument("records", nargs="+")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_merge)

    p = sub.add_parser("csv", help="flatten rows to CSV")
    p.add_argument("record")
    p.add_argument("--out")
    p.set_defaults(fn=cmd_csv)

    p = sub.add_parser("scaling", help="print thread-scaling table")
    p.add_argument("record")
    p.add_argument("--family", default="",
                   help="restrict to benchmark-name prefix")
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser("append-scaling",
                       help="fold scaling rows into BENCH_kernels.json")
    p.add_argument("--bench", required=True)
    p.add_argument("--scaling", required=True)
    p.add_argument("--out", help="default: rewrite --bench in place")
    p.set_defaults(fn=cmd_append_scaling)

    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
