#!/usr/bin/env python3
"""Fail on broken relative links in the repository's markdown docs.

Scans docs/**/*.md plus the top-level README.md for markdown links
[text](target) and inline code spans are ignored. External targets
(http/https/mailto) are skipped; every other target must resolve to an
existing file or directory relative to the markdown file (anchors are
stripped). Exit status 1 lists every broken link.

Run from the repository root (CI does):  python3 tools/check_docs_links.py
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def md_files(root: pathlib.Path):
    yield from sorted((root / "docs").rglob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        yield readme


def strip_code(text: str) -> str:
    """Remove fenced and inline code so example snippets never count.

    Inline spans must not cross newlines: otherwise one stray backtick
    would silently blank out (and un-check) everything up to the next
    backtick anywhere later in the file.
    """
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for md in md_files(root):
        for target in LINK_RE.findall(strip_code(md.read_text())):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            checked += 1
            path = target.split("#", 1)[0]
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}: {target}")
    if broken:
        print("broken relative links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"docs links OK ({checked} relative links checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
