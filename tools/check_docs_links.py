#!/usr/bin/env python3
"""Fail on broken relative links in the repository's markdown docs.

Scans docs/**/*.md plus every top-level *.md for markdown links
[text](target). External URL targets (http/https/mailto) are skipped;
every other relative target must resolve to an existing file or
directory relative to the markdown file (anchors are stripped). Exit
status 1 lists every broken relative link.

Absolute filesystem paths (markdown links *or* backticked `/...`
references) point outside the repository — retrieval-time artifacts
like related-repo file sets that are not part of the tree and may be
absent on any given machine. Those are tolerated but flagged: a
missing absolute reference prints a warning and never fails the check,
so docs can cite external material without breaking CI, while the
warning keeps dangling pointers visible enough to scrub.

Run from the repository root (CI does):  python3 tools/check_docs_links.py
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Backticked absolute paths: `/root/...`, `/opt/...` etc. Single
# segments like `/verify` are command idioms, not paths, so require a
# second path component.
CODE_ABS_RE = re.compile(r"`(/[\w.-]+/[^`\n]*)`")
EXTERNAL = ("http://", "https://", "mailto:")


def md_files(root: pathlib.Path):
    yield from sorted((root / "docs").rglob("*.md"))
    yield from sorted(root.glob("*.md"))


def strip_code(text: str) -> str:
    """Remove fenced and inline code so example snippets never count.

    Inline spans must not cross newlines: otherwise one stray backtick
    would silently blank out (and un-check) everything up to the next
    backtick anywhere later in the file.
    """
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def strip_fences(text: str) -> str:
    """Remove only fenced blocks (keep inline code spans)."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    broken = []
    missing_external = []
    checked = 0
    externals = 0
    for md in md_files(root):
        text = md.read_text()
        rel = md.relative_to(root)
        # Relative links (code spans stripped): must resolve.
        for target in LINK_RE.findall(strip_code(text)):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if path.startswith("/"):
                continue  # handled below as an external reference
            checked += 1
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append(f"{rel}: {target}")
        # Absolute-path references (links and inline code spans):
        # outside the tree, warn-only when missing.
        no_fences = strip_fences(text)
        abs_targets = [
            t.split("#", 1)[0]
            for t in LINK_RE.findall(no_fences)
            if t.startswith("/")
        ]
        abs_targets += [
            m.split()[0] for m in CODE_ABS_RE.findall(no_fences)
        ]
        for target in abs_targets:
            externals += 1
            if not pathlib.Path(target.rstrip(":,")).exists():
                missing_external.append(f"{rel}: {target}")
    if missing_external:
        print("warning: absolute references to missing external paths "
              "(tolerated, consider scrubbing):")
        for m in missing_external:
            print(f"  {m}")
    if broken:
        print("broken relative links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"docs links OK ({checked} relative links checked, "
          f"{externals} external path references "
          f"[{len(missing_external)} missing, tolerated])")
    return 0


if __name__ == "__main__":
    sys.exit(main())
