#!/usr/bin/env bash
# Thread-scaling study over the parallel kernel families.
#
# Runs bench_kernels once per thread count (DITTO_NUM_THREADS pinned,
# everything else inherited), stamps each run's JSON with its host
# context via tools/bench_results.py, merges the runs into one record,
# emits a CSV flattening, and prints the speedup table. When `perf` is
# available and usable, each run is additionally wrapped in
# `perf stat` and the counter output is kept next to the JSON; when it
# is not (containers, locked-down kernels), the study proceeds without
# counters and says so.
#
#   tools/run_scaling.sh [-b BENCH_BINARY] [-o OUTDIR]
#                        [-t "1 2 4 8"] [-f FILTER] [-m MIN_TIME]
#
# Defaults: binary build/bench/bench_kernels, outdir bench-scaling/,
# thread list "1 2 4 8" clamped to 2*nproc (the 2x point doubles as an
# oversubscription check of the dynamic chunk-claiming scheduler on
# small hosts), filter = the parallelFor-heavy families, min_time
# 0.05s per benchmark.
#
# Results land comparable next to BENCH_kernels.json: fold them in with
#   python3 tools/bench_results.py append-scaling \
#       --bench BENCH_kernels.json --scaling OUTDIR/scaling.json
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH=build/bench/bench_kernels
OUTDIR=bench-scaling
THREADS=""
FILTER='BM_MatmulInt8/256|BM_MatmulFloat/256|BM_Conv2dInt8|BM_DiffGemmSparse|BM_DiffGemmDense|BM_CompiledRollout'
MIN_TIME=0.05

while getopts "b:o:t:f:m:h" opt; do
    case "$opt" in
        b) BENCH=$OPTARG ;;
        o) OUTDIR=$OPTARG ;;
        t) THREADS=$OPTARG ;;
        f) FILTER=$OPTARG ;;
        m) MIN_TIME=$OPTARG ;;
        h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) exit 2 ;;
    esac
done

if [ ! -x "$BENCH" ]; then
    echo "error: bench binary not found at $BENCH (build with" \
         "'cmake -B build -S . && cmake --build build -j')" >&2
    exit 1
fi

NPROC=$(nproc)
if [ -z "$THREADS" ]; then
    THREADS=""
    for t in 1 2 4 8; do
        if [ "$t" -le $((NPROC * 2)) ]; then
            THREADS="$THREADS $t"
        fi
    done
fi
echo "[scaling] host: $(hostname), $NPROC cpu(s); thread sweep:$THREADS"

# Probe perf once: present AND allowed to count (perf_event_paranoid,
# seccomp and missing PMUs all surface on the probe, not mid-study).
PERF=""
if command -v perf >/dev/null 2>&1 &&
       perf stat -e task-clock true >/dev/null 2>&1; then
    PERF="perf stat -e task-clock,context-switches,instructions,cycles"
    echo "[scaling] perf counters: on"
else
    echo "[scaling] perf counters: unavailable, continuing without"
fi

mkdir -p "$OUTDIR"
RUNS=()
for t in $THREADS; do
    out="$OUTDIR/run_t${t}.json"
    echo "[scaling] threads=$t -> $out"
    if [ -n "$PERF" ]; then
        DITTO_NUM_THREADS=$t $PERF -o "$OUTDIR/run_t${t}.perfstat" -- \
            "$BENCH" --benchmark_filter="$FILTER" \
            --benchmark_min_time="$MIN_TIME" \
            --benchmark_out="$out" --benchmark_out_format=json \
            >/dev/null
    else
        DITTO_NUM_THREADS=$t \
            "$BENCH" --benchmark_filter="$FILTER" \
            --benchmark_min_time="$MIN_TIME" \
            --benchmark_out="$out" --benchmark_out_format=json \
            >/dev/null
    fi
    python3 tools/bench_results.py stamp "$out" --out "$out"
    RUNS+=("$out")
done

python3 tools/bench_results.py merge --out "$OUTDIR/scaling.json" \
    "${RUNS[@]}"
python3 tools/bench_results.py csv "$OUTDIR/scaling.json" \
    --out "$OUTDIR/scaling.csv"
echo
python3 tools/bench_results.py scaling "$OUTDIR/scaling.json"
echo
echo "[scaling] record: $OUTDIR/scaling.json  csv: $OUTDIR/scaling.csv"
echo "[scaling] fold into the committed baseline with:"
echo "  python3 tools/bench_results.py append-scaling \\"
echo "      --bench BENCH_kernels.json --scaling $OUTDIR/scaling.json"
