/**
 * @file
 * Quickstart: the Ditto algorithm on a small functional denoising model.
 *
 * Runs the same multi-step reverse diffusion three ways — FP32,
 * quantized (A8W8), and quantized with Ditto temporal-difference
 * processing — and shows the two properties everything else builds on:
 *
 *  1. Ditto execution is bit-exact against direct quantized execution
 *     (the distributive property in the integer domain), and
 *  2. most of the difference multiplies are skippable or narrow, which
 *     is where the hardware speedup comes from.
 */
#include <cstdio>

#include "core/mini_unet.h"
#include "stats/similarity.h"

int
main()
{
    using namespace ditto;

    MiniUnetConfig cfg;
    cfg.channels = 8;
    cfg.resolution = 8;
    cfg.steps = 6;
    std::printf("MiniUnet: %lld channels, %lldx%lld, %d denoising steps\n",
                static_cast<long long>(cfg.channels),
                static_cast<long long>(cfg.resolution),
                static_cast<long long>(cfg.resolution), cfg.steps);

    const MiniUnet net(cfg);
    const RolloutResult fp32 = net.rollout(RunMode::Fp32);
    const RolloutResult quant = net.rollout(RunMode::QuantDirect);
    const RolloutResult ditto = net.rollout(RunMode::QuantDitto);

    std::printf("\n-- correctness --\n");
    std::printf("Ditto vs quantized direct : %s\n",
                quant.finalImage == ditto.finalImage
                    ? "bit-exact (identical images)"
                    : "MISMATCH");
    std::printf("SQNR quantized vs FP32    : %.2f dB\n",
                sqnrDb(fp32.finalImage, quant.finalImage));
    std::printf("SQNR Ditto vs FP32        : %.2f dB\n",
                sqnrDb(fp32.finalImage, ditto.finalImage));

    std::printf("\n-- work performed by the Ditto steps --\n");
    const OpCounts &ops = ditto.dittoOps;
    const double total = static_cast<double>(ops.total());
    std::printf("multiplies skipped (zero diff): %lld (%.1f%%)\n",
                static_cast<long long>(ops.zeroSkipped),
                100.0 * ops.zeroSkipped / total);
    std::printf("multiplies on the 4-bit lane  : %lld (%.1f%%)\n",
                static_cast<long long>(ops.low4),
                100.0 * ops.low4 / total);
    std::printf("multiplies on the 8-bit path  : %lld (%.1f%%)\n",
                static_cast<long long>(ops.full8),
                100.0 * ops.full8 / total);
    const double act_bops =
        static_cast<double>(fp32.totalMacsPerStep) * 64.0 *
        (cfg.steps - 1);
    std::printf("relative BOPs vs act processing: %.3f\n",
                static_cast<double>(ops.bops()) / act_bops);
    std::printf("\nThe narrow, sparse differences above are exactly what "
                "the Ditto hardware's\nEncoding Unit and 4-bit adder-tree "
                "PEs exploit (see accelerator_comparison).\n");
    return 0;
}
