/**
 * @file
 * Quickstart: the Ditto algorithm on a small functional denoising model.
 *
 * Runs the same multi-step reverse diffusion three ways — FP32,
 * quantized (A8W8), and quantized with Ditto temporal-difference
 * processing — and shows the three properties everything else builds
 * on:
 *
 *  1. Ditto execution is bit-exact against direct quantized execution
 *     (the distributive property in the integer domain),
 *  2. most of the difference multiplies are skippable or narrow, and
 *  3. the software sparse diff-GEMM path turns that skippability into
 *     measured wall-clock speedup over direct quantized execution
 *     (the software mirror of the paper's hardware claim).
 */
#include <chrono>
#include <cstdio>

#include "core/mini_unet.h"
#include "stats/similarity.h"

namespace {

template <typename Fn>
double
runTimedMs(Fn fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main()
{
    using namespace ditto;

    // Large enough that the linear layers dominate the step cost (the
    // regime the paper's speedup claim is about); calibration results
    // are disk-cached, so repeated runs skip the FP32 rollout.
    MiniUnetConfig cfg;
    cfg.channels = 32;
    cfg.resolution = 16;
    cfg.steps = 12;
    std::printf("MiniUnet: %lld channels, %lldx%lld, %d denoising steps\n",
                static_cast<long long>(cfg.channels),
                static_cast<long long>(cfg.resolution),
                static_cast<long long>(cfg.resolution), cfg.steps);

    const MiniUnet net(cfg);
    RolloutResult fp32, quant, ditto;
    const double fp32_ms = runTimedMs([&] {
        fp32 = net.rollout(RunMode::Fp32);
    });
    const double quant_ms = runTimedMs([&] {
        quant = net.rollout(RunMode::QuantDirect);
    });
    const double ditto_ms = runTimedMs([&] {
        ditto = net.rollout(RunMode::QuantDitto);
    });

    std::printf("\n-- correctness --\n");
    std::printf("Ditto vs quantized direct : %s\n",
                quant.finalImage == ditto.finalImage
                    ? "bit-exact (identical images)"
                    : "MISMATCH");
    std::printf("SQNR quantized vs FP32    : %.2f dB\n",
                sqnrDb(fp32.finalImage, quant.finalImage));
    std::printf("SQNR Ditto vs FP32        : %.2f dB\n",
                sqnrDb(fp32.finalImage, ditto.finalImage));

    std::printf("\n-- work performed by the Ditto steps --\n");
    const OpCounts &ops = ditto.dittoOps;
    const double total = static_cast<double>(ops.total());
    std::printf("multiplies skipped (zero diff): %lld (%.1f%%)\n",
                static_cast<long long>(ops.zeroSkipped),
                100.0 * ops.zeroSkipped / total);
    std::printf("multiplies on the 4-bit lane  : %lld (%.1f%%)\n",
                static_cast<long long>(ops.low4),
                100.0 * ops.low4 / total);
    std::printf("multiplies on the 8-bit path  : %lld (%.1f%%)\n",
                static_cast<long long>(ops.full8),
                100.0 * ops.full8 / total);
    const double act_bops =
        static_cast<double>(fp32.totalMacsPerStep) * 64.0 *
        (cfg.steps - 1);
    std::printf("relative BOPs vs act processing: %.3f\n",
                static_cast<double>(ops.bops()) / act_bops);

    std::printf("\n-- measured wall-clock (this machine) --\n");
    std::printf("FP32 rollout        : %8.1f ms\n", fp32_ms);
    std::printf("QuantDirect rollout : %8.1f ms\n", quant_ms);
    std::printf("QuantDitto rollout  : %8.1f ms\n", ditto_ms);
    std::printf("Ditto vs direct     : %.2fx %s\n", quant_ms / ditto_ms,
                ditto_ms < quant_ms ? "(faster)" : "(slower)");
    std::printf(
        "\nThe sparse diff-GEMM path (docs/diff_exec.md) skips the zero\n"
        "differences and runs 4-bit values on a packed nibble lane —\n"
        "the software mirror of the Ditto Encoding Unit and 4-bit\n"
        "adder-tree PEs (see accelerator_comparison). Layers whose\n"
        "difference stream is too dense revert to direct execution,\n"
        "exactly as the paper's Defo controller does.\n");
    return 0;
}
