/**
 * @file
 * The graph runtime end to end: compile two non-MiniUnet specs (the
 * deep multi-scale UNet and the DiT-style transformer block), show
 * the dependency analysis at work, verify the accuracy invariant
 * (QuantDitto bit-exact against QuantDirect), and serve a burst of
 * requests for each through the batched DenoiseServer with a bitwise
 * check against standalone rollouts.
 *
 *   ./graph_models
 *
 * Exits non-zero on any bitwise mismatch, so CI can run it as a
 * smoke test of the compile-and-run path.
 */
#include <chrono>
#include <cstdio>
#include <vector>

#include "runtime/compiled.h"
#include "runtime/presets.h"
#include "serve/server.h"

using namespace ditto;

namespace {

template <typename Fn>
double
runTimedMs(Fn fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Rollouts + a served burst for one compiled model; true on parity. */
bool
driveModel(const CompiledModel &model)
{
    const ModelSpec &spec = model.spec();
    std::printf("== %s ==\n", spec.name.c_str());
    std::printf("  %d nodes -> %d compute layers, %lld MACs/step, "
                "%d diff-calc bypasses, %d summation skips\n",
                static_cast<int>(spec.nodes.size()),
                model.graph().numComputeLayers(),
                static_cast<long long>(model.macsPerStep()),
                model.numDiffBypassNodes(), model.numSumSkipNodes());

    RolloutResult direct, ditto;
    const double direct_ms = runTimedMs(
        [&] { direct = model.rollout(RunMode::QuantDirect); });
    const double ditto_ms = runTimedMs(
        [&] { ditto = model.rollout(RunMode::QuantDitto); });
    const bool exact = direct.finalImage == ditto.finalImage;
    std::printf("  QuantDirect %7.1f ms | QuantDitto %7.1f ms "
                "(%.2fx) | %s\n",
                direct_ms, ditto_ms, direct_ms / ditto_ms,
                exact ? "bit-exact" : "MISMATCH");
    const OpCounts &ops = ditto.dittoOps;
    std::printf("  diff multiplies: %.1f%% skipped, %.1f%% 4-bit, "
                "%.1f%% 8-bit\n",
                100.0 * ops.zeroSkipped / ops.total(),
                100.0 * ops.low4 / ops.total(),
                100.0 * ops.full8 / ops.total());

    // A mixed burst through the async batched server.
    ServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.workers = 1;
    DenoiseServer server(model, cfg);
    std::vector<DenoiseRequest> reqs;
    for (int i = 0; i < 8; ++i) {
        DenoiseRequest req;
        req.seed = 1000 + static_cast<uint64_t>(i);
        req.steps = model.defaultSteps() - i % 2;
        req.mode =
            i % 4 == 3 ? RunMode::QuantDirect : RunMode::QuantDitto;
        reqs.push_back(req);
    }
    std::vector<uint64_t> ids;
    for (const DenoiseRequest &req : reqs)
        ids.push_back(server.submit(req));
    size_t served_exact = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RolloutResult want = model.rollout(
            reqs[i].mode, model.requestNoise(reqs[i].seed),
            reqs[i].steps);
        served_exact += want.finalImage == res.image;
    }
    std::printf("  served %zu/%zu requests bitwise == standalone "
                "rollouts (avg occupancy %.2f)\n\n",
                served_exact, ids.size(),
                server.stats().avgOccupancy());
    return exact && served_exact == ids.size();
}

} // namespace

int
main()
{
    bool ok = true;

    DeepUnetConfig unet;
    unet.baseChannels = 16;
    unet.resolution = 16;
    unet.steps = 8;
    ok &= driveModel(compile(deepUnetSpec(unet)));

    DitBlockConfig dit;
    dit.embedDim = 32;
    dit.resolution = 16;
    dit.steps = 8;
    ok &= driveModel(compile(ditBlockSpec(dit)));

    std::printf("%s\n", ok ? "all graph models bit-exact"
                           : "MISMATCH detected");
    return ok ? 0 : 1;
}
