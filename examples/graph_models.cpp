/**
 * @file
 * The graph runtime end to end: compile the non-MiniUnet presets (the
 * deep multi-scale UNet, the DiT-style transformer block, the
 * multi-head attention block and the adaLN-conditioned block), show
 * the dependency analysis at work, verify the accuracy invariant
 * (QuantDitto bit-exact against QuantDirect), and serve a burst of
 * requests for each through the batched DenoiseServer with a bitwise
 * check against standalone rollouts.
 *
 *   ./graph_models [--verdicts] [--approx]
 *
 * --verdicts prints, per preset, the per-layer dependency verdicts
 * next to what the compiler wired them into (payload hand-over,
 * junction fold, summation skip) and the rollout's diff-calc/
 * summation tallies — so a layer that stayed full-value because the
 * junction fold declined it (e.g. an Affine gate on the wire) is
 * distinguishable from one that executed the diff path and reverted
 * at run time (Defo), straight from the CI log.
 *
 * --approx additionally smokes RunMode::ApproxDitto per preset: at
 * threshold 0 the approximate mode must be bitwise identical to
 * QuantDitto (checked, fails the run), and at the default threshold
 * it prints the reuse fraction and end-to-end PSNR/cosine against the
 * exact rollout (docs/approx_reuse.md).
 *
 * Exits non-zero on any bitwise mismatch, so CI can run it as a
 * smoke test of the compile-and-run path.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "runtime/compiled.h"
#include "runtime/presets.h"
#include "serve/server.h"

using namespace ditto;

namespace {

/** Per-layer verdicts vs compiled wiring vs executed work. */
void
printVerdicts(const CompiledModel &model, const RolloutResult &ditto)
{
    const std::vector<LayerDependency> &deps = model.dependencies();
    std::printf("  %-18s %-12s %-9s %-9s %s\n", "node", "op",
                "diffCalc", "summation", "compiled wiring");
    for (const CompiledModel::NodeReport &r : model.nodeReports()) {
        if (r.op == RtOp::Input)
            continue;
        const bool hasDep =
            r.layer >= 0 && (r.compute || r.junction || !r.deadStructural);
        const LayerDependency *d =
            r.layer >= 0 ? &deps[static_cast<size_t>(r.layer)] : nullptr;
        char wiring[96] = "";
        if (r.junction)
            std::strcat(wiring, "junction-fold ");
        else if (r.diffBypass)
            std::strcat(wiring, "handed-over ");
        if (r.diffBypass2)
            std::strcat(wiring, "handed-over(op2) ");
        if (r.sumSkip)
            std::strcat(wiring, "sum-skip ");
        if (r.emitsPayload)
            std::strcat(wiring, "emits-payload ");
        if (r.deadStructural)
            std::strcat(wiring, "folded-away ");
        if (wiring[0] == '\0')
            std::strcpy(wiring, r.compute ? "full-value" : "-");
        std::printf("  %-18s %-12s %-9s %-9s %s\n", r.name.c_str(),
                    rtOpName(r.op),
                    !hasDep || !d ? "-"
                    : d->diffCalcNeeded ? "needed"
                                        : "bypass",
                    !hasDep || !d ? "-"
                    : d->summationNeeded ? "needed"
                                         : "skip",
                    wiring);
    }
    const OpCounts &ops = ditto.dittoOps;
    std::printf("  executed: diffCalcElems=%lld summationElems=%lld "
                "(zero %.1f%% / 4-bit %.1f%% / 8-bit %.1f%% -> a layer "
                "wired for diff that shows 8-bit-heavy tallies reverted "
                "via Defo at run time)\n",
                static_cast<long long>(ops.diffCalcElems),
                static_cast<long long>(ops.summationElems),
                100.0 * ops.zeroSkipped / ops.total(),
                100.0 * ops.low4 / ops.total(),
                100.0 * ops.full8 / ops.total());
}

template <typename Fn>
double
runTimedMs(Fn fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** ApproxDitto smoke: thresh-0 bitwise check + default-policy curve. */
bool
driveApprox(CompiledModel &model)
{
    // At threshold 0 only bitwise-identical operands skip, so the
    // approximate mode must reproduce QuantDitto exactly.
    const double thresh = model.approxSkipThresh();
    const int cap = model.approxMaxConsec();
    model.setApproxPolicy(0.0, cap);
    const bool exact0 =
        model.rollout(RunMode::ApproxDitto).finalImage ==
        model.rollout(RunMode::QuantDitto).finalImage;
    model.setApproxPolicy(thresh, cap);
    RolloutResult timed;
    const double exact_ms = runTimedMs(
        [&] { timed = model.rollout(RunMode::QuantDitto); });
    const double approx_ms = runTimedMs(
        [&] { timed = model.rollout(RunMode::ApproxDitto); });
    const RolloutResult r =
        model.rolloutWithFidelity(RunMode::ApproxDitto);
    int64_t skips = 0;
    for (int64_t s : r.nodeSkips)
        skips += s;
    std::printf("  approx: thresh-0 %s | thresh %.3g cap %d: "
                "%lld block skips, %.1f ms vs %.1f ms exact (%.2fx), "
                "PSNR %.1f dB, cosine %.5f\n",
                exact0 ? "bit-exact" : "MISMATCH", thresh, cap,
                static_cast<long long>(skips), approx_ms, exact_ms,
                exact_ms / approx_ms,
                r.fidelity.exact() ? 99.0 : r.fidelity.psnrDb,
                r.fidelity.cosine);
    return exact0;
}

/** Rollouts + a served burst for one compiled model; true on parity. */
bool
driveModel(CompiledModel model, bool verdicts, bool approx)
{
    const ModelSpec &spec = model.spec();
    std::printf("== %s ==\n", spec.name.c_str());
    std::printf("  %d nodes -> %d compute layers, %lld MACs/step, "
                "%d diff-calc bypasses, %d summation skips\n",
                static_cast<int>(spec.nodes.size()),
                model.graph().numComputeLayers(),
                static_cast<long long>(model.macsPerStep()),
                model.numDiffBypassNodes(), model.numSumSkipNodes());

    RolloutResult direct, ditto;
    const double direct_ms = runTimedMs(
        [&] { direct = model.rollout(RunMode::QuantDirect); });
    const double ditto_ms = runTimedMs(
        [&] { ditto = model.rollout(RunMode::QuantDitto); });
    const bool exact = direct.finalImage == ditto.finalImage;
    std::printf("  QuantDirect %7.1f ms | QuantDitto %7.1f ms "
                "(%.2fx) | %s\n",
                direct_ms, ditto_ms, direct_ms / ditto_ms,
                exact ? "bit-exact" : "MISMATCH");
    const OpCounts &ops = ditto.dittoOps;
    std::printf("  diff multiplies: %.1f%% skipped, %.1f%% 4-bit, "
                "%.1f%% 8-bit\n",
                100.0 * ops.zeroSkipped / ops.total(),
                100.0 * ops.low4 / ops.total(),
                100.0 * ops.full8 / ops.total());
    if (verdicts)
        printVerdicts(model, ditto);
    bool approx_ok = true;
    if (approx)
        approx_ok = driveApprox(model);

    // A mixed burst through the async batched server.
    ServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.workers = 1;
    DenoiseServer server(model, cfg);
    std::vector<DenoiseRequest> reqs;
    for (int i = 0; i < 8; ++i) {
        DenoiseRequest req;
        req.seed = 1000 + static_cast<uint64_t>(i);
        req.steps = model.defaultSteps() - i % 2;
        req.mode =
            i % 4 == 3 ? RunMode::QuantDirect : RunMode::QuantDitto;
        reqs.push_back(req);
    }
    std::vector<uint64_t> ids;
    for (const DenoiseRequest &req : reqs)
        ids.push_back(server.submit(req));
    size_t served_exact = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RolloutResult want = model.rollout(
            reqs[i].mode, model.requestNoise(reqs[i].seed),
            reqs[i].steps);
        served_exact += want.finalImage == res.image;
    }
    std::printf("  served %zu/%zu requests bitwise == standalone "
                "rollouts (avg occupancy %.2f)\n\n",
                served_exact, ids.size(),
                server.stats().avgOccupancy());
    return exact && approx_ok && served_exact == ids.size();
}

} // namespace

int
main(int argc, char **argv)
{
    bool verdicts = false;
    bool approx = false;
    for (int i = 1; i < argc; ++i) {
        verdicts |= std::strcmp(argv[i], "--verdicts") == 0;
        approx |= std::strcmp(argv[i], "--approx") == 0;
    }
    bool ok = true;

    DeepUnetConfig unet;
    unet.baseChannels = 16;
    unet.resolution = 16;
    unet.steps = 8;
    ok &= driveModel(compile(deepUnetSpec(unet)), verdicts, approx);

    DitBlockConfig dit;
    dit.embedDim = 32;
    dit.resolution = 16;
    dit.steps = 8;
    ok &= driveModel(compile(ditBlockSpec(dit)), verdicts, approx);

    MhsaBlockConfig mhsa;
    mhsa.embedDim = 32;
    mhsa.heads = 2;
    mhsa.resolution = 16;
    mhsa.steps = 8;
    ok &= driveModel(compile(mhsaBlockSpec(mhsa)), verdicts, approx);

    DitAdaLnConfig adaln;
    adaln.embedDim = 32;
    adaln.resolution = 16;
    adaln.steps = 8;
    ok &= driveModel(compile(ditAdaLnSpec(adaln)), verdicts, approx);

    std::printf("%s\n", ok ? "all graph models bit-exact"
                           : "MISMATCH detected");
    return ok ? 0 : 1;
}
