/**
 * @file
 * Batched denoising server demo.
 *
 * Submits a burst of denoising requests with mixed seeds, step counts
 * and modes to a DenoiseServer, waits for the results, verifies every
 * image is bitwise identical to the request's standalone sequential
 * rollout (the serving guarantee), and prints throughput plus the
 * server's batching statistics.
 *
 *   ./serve_demo [num_requests] [max_batch]
 *
 * Knobs: DITTO_SERVE_MAX_BATCH / DITTO_SERVE_MAX_WAIT_US /
 * DITTO_SERVE_WORKERS (see docs/config.md), DITTO_NUM_THREADS for the
 * kernel pool.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/mini_unet.h"
#include "serve/server.h"

using namespace ditto;

int
main(int argc, char **argv)
{
    const int num_requests =
        argc > 1 ? std::max(1, std::atoi(argv[1])) : 16;
    ServerConfig scfg = ServerConfig::fromEnv();
    if (argc > 2)
        scfg.maxBatch = std::max<int64_t>(1, std::atoll(argv[2]));

    MiniUnetConfig cfg;
    cfg.channels = 16;
    cfg.resolution = 8;
    cfg.steps = 8;
    const MiniUnet net(cfg);

    std::printf("MiniUnet: %lld channels, %lldx%lld, %d steps\n",
                static_cast<long long>(cfg.channels),
                static_cast<long long>(cfg.resolution),
                static_cast<long long>(cfg.resolution), cfg.steps);
    std::printf("server: max batch %lld, wait window %lld us, "
                "%d worker(s)\n\n",
                static_cast<long long>(scfg.maxBatch),
                static_cast<long long>(scfg.maxWaitMicros),
                scfg.workers);

    // Sequential baseline: the same requests one at a time.
    std::vector<DenoiseRequest> requests;
    for (int i = 0; i < num_requests; ++i) {
        DenoiseRequest req;
        req.seed = 1000 + static_cast<uint64_t>(i);
        req.steps = cfg.steps - static_cast<int>(i % 3); // mixed steps
        req.mode = i % 5 == 4 ? RunMode::QuantDirect : RunMode::QuantDitto;
        requests.push_back(req);
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<RolloutResult> sequential;
    for (const DenoiseRequest &req : requests)
        sequential.push_back(net.rollout(req.mode,
                                         net.requestNoise(req.seed),
                                         req.steps));
    const double seq_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    // The same burst through the batched server.
    const auto t1 = std::chrono::steady_clock::now();
    double p50 = 0, p95 = 0;
    ServerStats stats;
    size_t exact = 0;
    {
        DenoiseServer server(net.compiled(), scfg);
        std::vector<uint64_t> ids;
        for (const DenoiseRequest &req : requests)
            ids.push_back(server.submit(req));
        std::vector<double> latencies;
        for (size_t i = 0; i < ids.size(); ++i) {
            DenoiseResult res = server.wait(ids[i]);
            latencies.push_back(res.queueMicros + res.serviceMicros);
            if (sequential[i].finalImage == res.image)
                ++exact;
        }
        std::sort(latencies.begin(), latencies.end());
        p50 = latencies[latencies.size() / 2];
        p95 = latencies[latencies.size() * 95 / 100];
        stats = server.stats();
    }
    const double srv_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t1)
                             .count();

    std::printf("sequential       : %7.2f ms (%.1f req/s)\n",
                seq_s * 1e3, num_requests / seq_s);
    std::printf("batched server   : %7.2f ms (%.1f req/s, %.2fx)\n",
                srv_s * 1e3, num_requests / srv_s, seq_s / srv_s);
    std::printf("latency          : p50 %.2f ms, p95 %.2f ms\n",
                p50 / 1e3, p95 / 1e3);
    std::printf("batch occupancy  : %.2f requests/step over %llu steps, "
                "%llu batch(es) formed\n",
                stats.avgOccupancy(),
                static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.batchesFormed));
    std::printf("bitwise vs sequential rollouts : %zu/%d %s\n", exact,
                num_requests,
                exact == static_cast<size_t>(num_requests)
                    ? "bit-exact"
                    : "MISMATCH");
    return exact == static_cast<size_t>(num_requests) ? 0 : 1;
}
