/**
 * @file
 * Design-space exploration of the Ditto hardware.
 *
 * Sweeps the three resources that bound the design — multiplier lanes,
 * DRAM bandwidth and generation batch (weight-traffic amortisation) —
 * and reports how the speedup over ITC and the Defo reversion ratio
 * respond. Useful for sizing a derivative design before synthesis.
 */
#include <cstdio>

#include "hw/accelerator.h"
#include "model/zoo.h"
#include "trace/provider.h"

namespace {

using namespace ditto;

void
sweepLanes(const ModelGraph &graph, const TraceProvider &trace,
           const RunResult &itc)
{
    std::printf("-- lane-count sweep (DRAM 512 GB/s) --\n");
    std::printf("%10s %10s %12s %10s\n", "A4W8 lanes", "speedup",
                "energy rel.", "reverted");
    for (int64_t lanes : {9850, 19699, 39398, 78796, 157592}) {
        HwConfig cfg = makeConfig(HwDesign::Ditto);
        cfg.lanes4 = lanes;
        const RunResult r = simulate(cfg, graph, trace);
        std::printf("%10lld %9.2fx %12.3f %9.1f%%\n",
                    static_cast<long long>(lanes),
                    itc.totalCycles / r.totalCycles,
                    r.energy.total() / itc.energy.total(),
                    100.0 * r.revertedLayers / r.computeLayers);
    }
    std::printf("\n");
}

void
sweepBandwidth(const ModelGraph &graph, const TraceProvider &trace)
{
    std::printf("-- DRAM bandwidth sweep (39398 lanes) --\n");
    std::printf("%10s %10s %12s %10s\n", "GB/s", "speedup",
                "stall frac", "reverted");
    for (double bw : {128.0, 256.0, 512.0, 1024.0, 2048.0}) {
        HwConfig itc_cfg = makeConfig(HwDesign::ITC);
        itc_cfg.dramGBs = bw;
        HwConfig cfg = makeConfig(HwDesign::Ditto);
        cfg.dramGBs = bw;
        const RunResult itc = simulate(itc_cfg, graph, trace);
        const RunResult r = simulate(cfg, graph, trace);
        std::printf("%10.0f %9.2fx %11.1f%% %9.1f%%\n", bw,
                    itc.totalCycles / r.totalCycles,
                    100.0 * r.memStallCycles / r.totalCycles,
                    100.0 * r.revertedLayers / r.computeLayers);
    }
    std::printf("\n");
}

void
sweepBatch(const ModelGraph &graph, const TraceProvider &trace)
{
    std::printf("-- generation-batch sweep (weight amortisation) --\n");
    std::printf("%10s %10s %12s\n", "batch", "speedup", "energy rel.");
    for (int64_t batch : {1, 4, 16, 64}) {
        HwConfig itc_cfg = makeConfig(HwDesign::ITC);
        itc_cfg.genBatch = batch;
        HwConfig cfg = makeConfig(HwDesign::Ditto);
        cfg.genBatch = batch;
        const RunResult itc = simulate(itc_cfg, graph, trace);
        const RunResult r = simulate(cfg, graph, trace);
        std::printf("%10lld %9.2fx %12.3f\n",
                    static_cast<long long>(batch),
                    itc.totalCycles / r.totalCycles,
                    r.energy.total() / itc.energy.total());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace ditto;
    const ModelId id = ModelId::SDM;
    const ModelGraph graph = buildModel(id);
    const TraceProvider trace(id, graph);
    std::printf("Design-space exploration on %s\n\n",
                modelAbbr(id).c_str());

    const RunResult itc =
        simulate(makeConfig(HwDesign::ITC), graph, trace);
    sweepLanes(graph, trace, itc);
    sweepBandwidth(graph, trace);
    sweepBatch(graph, trace);
    std::printf("Observations: lane scaling saturates once layers turn "
                "memory bound;\nlow bandwidth drives Defo to revert "
                "more layers (its purpose); batching\namortises weight "
                "traffic and widens Ditto's lead.\n");
    return 0;
}
