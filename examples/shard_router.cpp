/**
 * @file
 * Front-door router process for a shard-worker tier.
 *
 *   ./shard_router --socket FRONT --workers SOCK[,SOCK...]
 *
 * Connects to every worker socket (all must serve the same compiled
 * model), then serves the shard RPC protocol on the front-door socket
 * with router-level tickets: clients submit/poll/cancel against the
 * tier as if it were one worker, while the router applies
 * prefix-affinity routing, SLO/least-loaded dispatch, failure
 * detection with cold resubmission and explicit migration underneath
 * (src/shard/router.h, docs/sharding.md).
 *
 * A Drain RPC on the front door drains every worker. SIGINT/SIGTERM
 * stop the router (workers keep running); the merged metrics JSON is
 * printed on exit either way.
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "shard/router.h"

using namespace ditto;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string frontPath;
    std::string workerList;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            frontPath = value();
        } else if (arg == "--workers") {
            workerList = value();
        } else {
            std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
            return 2;
        }
    }
    const std::vector<std::string> workerPaths = splitCommas(workerList);
    if (frontPath.empty() || workerPaths.empty()) {
        std::fprintf(stderr, "usage: shard_router --socket FRONT "
                             "--workers SOCK[,SOCK...]\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    shard::ShardRouter router;
    for (const std::string &path : workerPaths) {
        std::string why;
        if (!router.addWorker(path, &why)) {
            std::fprintf(stderr, "shard_router: %s\n", why.c_str());
            return 1;
        }
    }
    std::string why;
    if (!router.serve(frontPath, &why)) {
        std::fprintf(stderr, "shard_router: %s\n", why.c_str());
        return 1;
    }
    std::printf("shard_router: %d worker(s) behind %s\n",
                router.numWorkers(), frontPath.c_str());
    std::fflush(stdout);

    while (!g_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));

    router.stopServing();
    std::printf("metrics: %s\n", router.metricsJson().c_str());
    return 0;
}
