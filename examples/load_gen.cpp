/**
 * @file
 * Open-loop Poisson load generator for the denoising server.
 *
 * Drives a DenoiseServer with exponentially distributed inter-arrival
 * times at a configurable rate and SLO-class mix — open-loop: arrivals
 * do not wait for completions, so pushing the rate past the service
 * rate exercises the hardening path (bounded queue, shedding,
 * deadlines) instead of just slowing the client down. Prints a
 * per-class latency/outcome table and the server's metrics JSON.
 *
 *   ./load_gen [--rate R] [--duration SEC] [--mix I:S:B]
 *              [--deadline-us D] [--steps N] [--seed K]
 *              [--dup-frac P] [--prefix-pool N]
 *              [--router SOCK[,SOCK...]] [--drain]
 *
 *   --rate        arrivals per second (default 100)
 *   --duration    seconds of traffic (default 2)
 *   --mix         per-class arrival weights Interactive:Standard:
 *                 BestEffort (default 1:2:1)
 *   --deadline-us per-request deadline budget, -1 none (default -1)
 *   --steps       steps per request, 0 = model default (default 0)
 *   --seed        arrival-process seed (default 1)
 *   --dup-frac    fraction of arrivals drawn from a fixed pool of
 *                 (seed, conditioning) identities instead of fresh
 *                 ones (default 0) — redundant production traffic
 *                 for the inter-request reuse cache
 *                 (docs/reuse_cache.md)
 *   --prefix-pool size of that identity pool (default 8)
 *   --router      drive a shard tier instead of an in-process server:
 *                 an embedded ShardRouter (src/shard/router.h) over
 *                 the given comma-separated worker sockets. Affinity
 *                 routing, failover and cold resubmission apply; a
 *                 worker killed mid-run costs throughput, not
 *                 completions (docs/sharding.md)
 *   --drain       after all results are in, drain every worker
 *                 (router mode; workers then exit 0)
 *
 * Server knobs come from the environment (docs/config.md):
 * DITTO_SERVE_MAX_BATCH, DITTO_SERVE_WORKERS, DITTO_SERVE_QUEUE_CAP,
 * DITTO_SERVE_SHED_HIGH/LOW/STEPS, DITTO_SERVE_ADMIT_BLOCK_US,
 * DITTO_REUSE_CAP_BYTES (enables warm starts for duplicate
 * identities) — and DITTO_FAULT_POINTS turns a load run into a chaos
 * run.
 *
 * Exits 0 when at least one request completed; rejections and
 * timeouts are expected outcomes under overload, not errors.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/mini_unet.h"
#include "serve/server.h"
#include "shard/router.h"

using namespace ditto;

namespace {

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(q * static_cast<double>(sorted.size())));
    return sorted[idx];
}

struct ClassTally
{
    uint64_t submitted = 0;
    uint64_t done = 0;
    uint64_t rejected = 0;
    uint64_t timedOut = 0;
    uint64_t degraded = 0;
    uint64_t preemptions = 0;
    std::vector<double> e2eUs; //!< Done requests only
};

} // namespace

int
main(int argc, char **argv)
{
    double rate = 100.0, duration = 2.0;
    double mix[kNumSloClasses] = {1.0, 2.0, 1.0};
    int64_t deadline_us = -1;
    int steps = 0;
    uint64_t seed = 1;
    double dup_frac = 0.0;
    int prefix_pool = 8;
    std::string routerSockets;
    bool drain = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--rate") {
            rate = std::atof(value());
        } else if (arg == "--duration") {
            duration = std::atof(value());
        } else if (arg == "--deadline-us") {
            deadline_us = std::atoll(value());
        } else if (arg == "--steps") {
            steps = std::atoi(value());
        } else if (arg == "--seed") {
            seed = static_cast<uint64_t>(std::atoll(value()));
        } else if (arg == "--dup-frac") {
            dup_frac = std::atof(value());
        } else if (arg == "--prefix-pool") {
            prefix_pool = std::atoi(value());
        } else if (arg == "--router") {
            routerSockets = value();
        } else if (arg == "--drain") {
            drain = true;
        } else if (arg == "--mix") {
            if (std::sscanf(value(), "%lf:%lf:%lf", &mix[0], &mix[1],
                            &mix[2]) != 3) {
                std::fprintf(stderr, "--mix wants I:S:B weights\n");
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
            return 2;
        }
    }
    if (rate <= 0.0 || duration <= 0.0 ||
        mix[0] + mix[1] + mix[2] <= 0.0) {
        std::fprintf(stderr, "rate, duration and the mix sum must be "
                             "positive\n");
        return 2;
    }
    if (dup_frac < 0.0 || dup_frac > 1.0 || prefix_pool < 1) {
        std::fprintf(stderr, "--dup-frac wants 0..1 and --prefix-pool "
                             "a positive pool size\n");
        return 2;
    }

    std::printf("load_gen: %.0f req/s for %.1fs, mix %g:%g:%g, "
                "deadline %lld us\n",
                rate, duration, mix[0], mix[1], mix[2],
                static_cast<long long>(deadline_us));

    // Backend: an in-process DenoiseServer by default, or an embedded
    // ShardRouter over external worker processes with --router.
    std::unique_ptr<MiniUnet> net;
    std::unique_ptr<DenoiseServer> server;
    std::unique_ptr<shard::ShardRouter> router;
    if (!routerSockets.empty()) {
        router = std::make_unique<shard::ShardRouter>();
        for (const std::string &path : splitCommas(routerSockets)) {
            std::string why;
            if (!router->addWorker(path, &why)) {
                std::fprintf(stderr, "load_gen: %s\n", why.c_str());
                return 1;
            }
        }
        std::printf("router: %d worker(s)\n\n", router->numWorkers());
    } else {
        MiniUnetConfig cfg;
        cfg.channels = 16;
        cfg.resolution = 8;
        cfg.steps = 8;
        net = std::make_unique<MiniUnet>(cfg);
        const ServerConfig scfg = ServerConfig::fromEnv();
        std::printf("server: max batch %lld, %d worker(s), queue cap "
                    "%lld, shed high/low %lld/%lld\n\n",
                    static_cast<long long>(scfg.maxBatch), scfg.workers,
                    static_cast<long long>(scfg.queueCapacity),
                    static_cast<long long>(scfg.effectiveShedHigh()),
                    static_cast<long long>(scfg.effectiveShedLow()));
        server = std::make_unique<DenoiseServer>(net->compiled(), scfg);
    }
    const auto submitReq = [&](const DenoiseRequest &req) {
        return router ? router->submit(req) : server->submit(req);
    };
    const auto waitResult = [&](uint64_t id) {
        return router ? router->wait(id) : server->wait(id);
    };
    Rng rng = Rng::fromKeys(seed, 0x10adu);
    const double mix_sum = mix[0] + mix[1] + mix[2];

    // Open-loop Poisson arrivals against an absolute schedule: a slow
    // submit (blocking admission) delays later arrivals' wall-clock,
    // but the schedule itself never adapts to the server.
    std::vector<uint64_t> ids;
    std::vector<SloClass> classes;
    const auto t0 = std::chrono::steady_clock::now();
    const auto end = t0 + std::chrono::duration<double>(duration);
    auto next = t0;
    uint64_t n = 0;
    while (true) {
        const double u = rng.uniform();
        next += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(-std::log1p(-u) / rate));
        if (next >= end)
            break;
        std::this_thread::sleep_until(next);
        const double pick = rng.uniform() * mix_sum;
        const SloClass slo = pick < mix[0] ? SloClass::Interactive
                             : pick < mix[0] + mix[1]
                                 ? SloClass::Standard
                                 : SloClass::BestEffort;
        DenoiseRequest req;
        // Redundant-traffic model: with probability dup_frac the
        // arrival repeats one of `prefix_pool` fixed identities (pool
        // seeds sit far from the fresh-seed range), so the reuse cache
        // sees real duplicate pressure instead of all-unique misses.
        if (dup_frac > 0.0 && rng.uniform() < dup_frac) {
            const uint64_t pick_id = static_cast<uint64_t>(
                rng.uniform() * static_cast<double>(prefix_pool));
            req.seed = 1'000'000 + pick_id;
            req.conditioning = 0xC0DE'D151ull + pick_id;
        } else {
            req.seed = 1000 + n;
        }
        ++n;
        req.steps = steps;
        req.slo = slo;
        req.deadlineMicros = deadline_us;
        ids.push_back(submitReq(req));
        classes.push_back(slo);
    }

    ClassTally tally[kNumSloClasses];
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = waitResult(ids[i]);
        ClassTally &t = tally[static_cast<size_t>(classes[i])];
        ++t.submitted;
        t.preemptions += static_cast<uint64_t>(res.preemptions);
        if (res.degraded)
            ++t.degraded;
        switch (res.status) {
          case RequestStatus::Done:
            ++t.done;
            t.e2eUs.push_back(res.queueMicros + res.serviceMicros);
            break;
          case RequestStatus::Rejected:
            ++t.rejected;
            break;
          case RequestStatus::TimedOut:
            ++t.timedOut;
            break;
          default:
            break;
        }
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    uint64_t total_done = 0;
    std::printf("%-12s %9s %6s %7s %8s %9s %11s %11s %11s\n", "class",
                "submitted", "done", "reject", "timeout", "degraded",
                "p50_ms", "p95_ms", "p99_ms");
    for (int c = 0; c < kNumSloClasses; ++c) {
        ClassTally &t = tally[static_cast<size_t>(c)];
        std::sort(t.e2eUs.begin(), t.e2eUs.end());
        std::printf(
            "%-12s %9llu %6llu %7llu %8llu %9llu %11.2f %11.2f "
            "%11.2f\n",
            sloClassName(static_cast<SloClass>(c)),
            static_cast<unsigned long long>(t.submitted),
            static_cast<unsigned long long>(t.done),
            static_cast<unsigned long long>(t.rejected),
            static_cast<unsigned long long>(t.timedOut),
            static_cast<unsigned long long>(t.degraded),
            percentile(t.e2eUs, 0.50) / 1e3,
            percentile(t.e2eUs, 0.95) / 1e3,
            percentile(t.e2eUs, 0.99) / 1e3);
        total_done += t.done;
    }
    std::printf("\n%zu arrivals in %.2fs (%.1f req/s offered, %.1f "
                "req/s completed)\n",
                ids.size(), wall,
                static_cast<double>(ids.size()) / wall,
                static_cast<double>(total_done) / wall);
    if (router) {
        std::printf("\nmetrics: %s\n", router->metricsJson().c_str());
        if (drain) {
            router->drainAll();
            std::printf("drained %d worker(s)\n", router->numWorkers());
        }
    } else {
        const ServeMetrics sm = server->metrics();
        if (sm.reuseHits + sm.reuseMisses > 0)
            std::printf(
                "reuse: %.1f%% hit rate (%llu/%llu lookups), %llu "
                "steps saved, %llu stores, %llu evictions\n",
                100.0 * sm.reuseHitRate(),
                static_cast<unsigned long long>(sm.reuseHits),
                static_cast<unsigned long long>(sm.reuseHits +
                                                sm.reuseMisses),
                static_cast<unsigned long long>(sm.reuseStepsSaved),
                static_cast<unsigned long long>(sm.reuseStores),
                static_cast<unsigned long long>(sm.reuseEvictions));
        std::printf("\nmetrics: %s\n", sm.toJson().c_str());
    }
    if (ids.empty() || total_done == 0) {
        std::fprintf(stderr, "load_gen: no request completed\n");
        return 1;
    }
    return 0;
}
