/**
 * @file
 * A Stable-Diffusion-style text-to-image generation pipeline on the
 * Ditto accelerator.
 *
 * Builds the SDM denoising model (Table I), attaches the calibrated
 * activation statistics, and simulates the full 50-step PLMS schedule
 * on the ITC baseline and on the Ditto hardware. Prints what a serving
 * stack would care about: per-image latency, the per-layer execution
 * modes Defo settled on, and the energy bill.
 */
#include <cstdio>

#include "hw/accelerator.h"
#include "hw/gpu_model.h"
#include "model/zoo.h"
#include "trace/provider.h"

int
main()
{
    using namespace ditto;

    std::printf("Prompt: \"a white vase with yellow tulips against a "
                "grey background\"\n\n");

    const ModelInfo &spec = modelInfo(ModelId::SDM);
    const ModelGraph graph = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, graph);
    std::printf("model    : %s on %s (%s, %d steps)\n",
                spec.model.c_str(), spec.dataset.c_str(),
                spec.sampler.name.c_str(), spec.sampler.steps);
    std::printf("denoiser : %d compute layers, %.1f GMACs/step, "
                "%.0f MB weights (A8W8)\n\n",
                graph.numComputeLayers(),
                static_cast<double>(graph.totalMacs()) / 1.0e9,
                static_cast<double>(graph.totalWeightElems()) / 1.0e6);

    const RunResult itc = simulate(makeConfig(HwDesign::ITC), graph,
                                   trace);
    const RunResult ditto = simulate(makeConfig(HwDesign::Ditto), graph,
                                     trace);
    const GpuResult gpu = simulateGpu(graph, trace.steps());

    std::printf("-- per-image generation latency --\n");
    std::printf("A100 GPU        : %8.1f ms\n", gpu.timeMs);
    std::printf("ITC baseline    : %8.1f ms\n", itc.timeMs);
    std::printf("Ditto hardware  : %8.1f ms  (%.2fx over ITC, %.1fx "
                "over GPU)\n\n",
                ditto.timeMs, itc.timeMs / ditto.timeMs,
                gpu.timeMs / ditto.timeMs);

    std::printf("-- execution flow chosen by Defo --\n");
    std::printf("layers kept on temporal differences : %d\n",
                ditto.computeLayers - ditto.revertedLayers);
    std::printf("layers reverted to act execution    : %d (%.1f%%)\n",
                ditto.revertedLayers,
                100.0 * ditto.revertedLayers / ditto.computeLayers);
    std::printf("decision accuracy vs oracle         : %.1f%%\n\n",
                100.0 * ditto.defoAccuracy);

    std::printf("-- energy per image --\n");
    std::printf("GPU   : %8.2f J\n", gpu.energyJ);
    std::printf("ITC   : %8.2f J\n", itc.totalEnergyJ());
    std::printf("Ditto : %8.2f J  (%.1f%% saving vs ITC)\n",
                ditto.totalEnergyJ(),
                100.0 * (1.0 - ditto.totalEnergyJ() /
                                   itc.totalEnergyJ()));
    return 0;
}
