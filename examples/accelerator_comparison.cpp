/**
 * @file
 * Compare every accelerator design on one diffusion model.
 *
 * Usage: accelerator_comparison [DDPM|BED|CHUR|IMG|SDM|DiT|Latte]
 *
 * Runs the GPU baseline, ITC, Diffy, Cambricon-D, Ditto and Ditto+ on
 * the chosen model and prints latency, speedup, energy and memory
 * traffic side by side — the per-model slice of Fig. 13/14.
 */
#include <cstdio>
#include <cstring>

#include "hw/accelerator.h"
#include "hw/gpu_model.h"
#include "model/zoo.h"
#include "trace/provider.h"

int
main(int argc, char **argv)
{
    using namespace ditto;

    ModelId id = ModelId::SDM;
    if (argc > 1) {
        bool found = false;
        for (ModelId candidate : allModels()) {
            if (modelAbbr(candidate) == argv[1]) {
                id = candidate;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "unknown model '%s'; expected one of DDPM BED "
                         "CHUR IMG SDM DiT Latte\n",
                         argv[1]);
            return 1;
        }
    }

    const ModelInfo &spec = modelInfo(id);
    const ModelGraph graph = buildModel(id);
    const TraceProvider trace(id, graph);
    std::printf("model %s: %s / %s, %s %d steps, %d compute layers, "
                "%.1f GMACs/step\n\n",
                spec.abbr.c_str(), spec.model.c_str(),
                spec.dataset.c_str(), spec.sampler.name.c_str(),
                spec.sampler.steps, graph.numComputeLayers(),
                static_cast<double>(graph.totalMacs()) / 1.0e9);

    const RunResult itc = simulate(makeConfig(HwDesign::ITC), graph,
                                   trace);
    const GpuResult gpu = simulateGpu(graph, trace.steps());
    std::printf("%-12s %10s %9s %10s %10s\n", "hardware", "latency",
                "speedup", "energy", "DRAM");
    std::printf("%-12s %9.1fms %8.2fx %9.2fJ %9s\n", "A100 GPU",
                gpu.timeMs, itc.timeMs / gpu.timeMs, gpu.energyJ, "-");
    for (HwDesign d : allDesigns()) {
        const RunResult r =
            d == HwDesign::ITC ? itc
                               : simulate(makeConfig(d), graph, trace);
        std::printf("%-12s %9.1fms %8.2fx %9.2fJ %8.2fx\n",
                    r.hwName.c_str(), r.timeMs,
                    itc.totalCycles / r.totalCycles, r.totalEnergyJ(),
                    r.dramBytes / itc.dramBytes);
    }
    std::printf("\n(speedup and DRAM traffic normalised to ITC)\n");
    return 0;
}
