/**
 * @file
 * Standalone shard worker process: one CompiledModel + DenoiseServer
 * behind a Unix-domain socket speaking the shard RPC protocol
 * (src/shard/protocol.h, docs/sharding.md).
 *
 *   ./shard_worker --socket PATH [--model NAME] [--steps N]
 *
 *   --socket  Unix-domain socket path to serve on (required)
 *   --model   preset to compile: mini_unet, deep_unet, dit_block,
 *             mhsa_block or dit_adaln (default mini_unet)
 *   --steps   override the preset's default step count (0 keeps it)
 *
 * Server knobs come from the environment (docs/config.md):
 * DITTO_SERVE_*, DITTO_REUSE_CAP_BYTES (per-worker reuse cache) and
 * DITTO_FAULT_POINTS (chaos runs). The process exits 0 after a Drain
 * RPC completes (the router's graceful-shutdown path) or on
 * SIGINT/SIGTERM; `kill -9` models the failure the router's cold
 * resubmission covers.
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>

#include "runtime/compiled.h"
#include "runtime/presets.h"
#include "shard/worker.h"

using namespace ditto;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

bool
specByName(const std::string &name, int steps, ModelSpec *out)
{
    if (name == "mini_unet") {
        MiniUnetConfig cfg;
        if (steps > 0)
            cfg.steps = steps;
        *out = miniUnetSpec(cfg);
    } else if (name == "deep_unet") {
        DeepUnetConfig cfg;
        if (steps > 0)
            cfg.steps = steps;
        *out = deepUnetSpec(cfg);
    } else if (name == "dit_block") {
        DitBlockConfig cfg;
        if (steps > 0)
            cfg.steps = steps;
        *out = ditBlockSpec(cfg);
    } else if (name == "mhsa_block") {
        MhsaBlockConfig cfg;
        if (steps > 0)
            cfg.steps = steps;
        *out = mhsaBlockSpec(cfg);
    } else if (name == "dit_adaln") {
        DitAdaLnConfig cfg;
        if (steps > 0)
            cfg.steps = steps;
        *out = ditAdaLnSpec(cfg);
    } else {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string model = "mini_unet";
    int steps = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            socketPath = value();
        } else if (arg == "--model") {
            model = value();
        } else if (arg == "--steps") {
            steps = std::atoi(value());
        } else {
            std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
            return 2;
        }
    }
    if (socketPath.empty()) {
        std::fprintf(stderr, "usage: shard_worker --socket PATH "
                             "[--model NAME] [--steps N]\n");
        return 2;
    }
    ModelSpec spec;
    if (!specByName(model, steps, &spec)) {
        std::fprintf(stderr, "unknown model preset '%s'\n", model.c_str());
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    const CompiledModel compiled = compile(spec);
    shard::ShardWorker worker(compiled, socketPath);
    std::string why;
    if (!worker.start(&why)) {
        std::fprintf(stderr, "shard_worker: %s\n", why.c_str());
        return 1;
    }
    std::printf("shard_worker: serving %s on %s (spec %016llx, "
                "calib %016llx)\n",
                model.c_str(), socketPath.c_str(),
                static_cast<unsigned long long>(worker.info().specHash),
                static_cast<unsigned long long>(worker.info().calibDigest));
    std::fflush(stdout);

    while (!g_stop && !worker.drained())
        std::this_thread::sleep_for(std::chrono::milliseconds(20));

    const bool drained = worker.drained();
    worker.stop();
    std::printf("shard_worker: %s\n",
                drained ? "drained, exiting" : "signalled, exiting");
    return 0;
}
