/**
 * @file
 * Tests for src/hw: the functional Encoding Unit and adder-tree PE
 * (verified bit-exact against scalar oracles), the analytic cost
 * model, the accelerator simulator invariants and the GPU model.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "hw/accelerator.h"
#include "hw/config.h"
#include "hw/cost_model.h"
#include "hw/encoding_unit.h"
#include "hw/energy.h"
#include "hw/gpu_model.h"
#include "hw/pe.h"
#include "model/zoo.h"
#include "quant/bitwidth.h"
#include "trace/provider.h"

namespace ditto {
namespace {

Int8Tensor
randomCodes(int64_t n, uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(Shape{n});
    t.fillUniformInt(rng, -127, 127);
    return t;
}

Int8Tensor
similarCodes(const Int8Tensor &base, uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor out = base;
    for (auto &v : out.data()) {
        if (rng.bernoulli(0.5)) {
            const int nv = std::clamp(
                static_cast<int>(v) +
                    static_cast<int>(rng.uniformInt(11)) - 5,
                -127, 127);
            v = static_cast<int8_t>(nv);
        }
    }
    return out;
}

// ---- Encoding Unit -------------------------------------------------------

TEST(EncodingUnit, ClassificationMatchesOracle)
{
    const Int8Tensor prev = randomCodes(4096, 1);
    const Int8Tensor cur = similarCodes(prev, 2);
    const EncodingUnit eu;
    const EncodedStream s = eu.encodeTemporal(cur, prev);
    const BitClassHistogram h = classifyTemporalDiff(cur, prev);
    EXPECT_EQ(s.zeroSkipped,
              static_cast<int64_t>(std::lround(h.zeroFrac * 4096)));
    EXPECT_EQ(s.low4Count,
              static_cast<int64_t>(std::lround(h.low4Frac * 4096)));
    EXPECT_EQ(s.full8Count,
              static_cast<int64_t>(std::lround(h.full8Frac * 4096)));
}

TEST(EncodingUnit, LaneSlotsCountOnePlusTwo)
{
    const Int8Tensor prev = randomCodes(1024, 3);
    const Int8Tensor cur = similarCodes(prev, 4);
    const EncodingUnit eu;
    const EncodedStream s = eu.encodeTemporal(cur, prev);
    EXPECT_EQ(s.laneSlots(), s.low4Count + 2 * s.full8Count);
}

TEST(EncodingUnit, LanesReconstructDifferencesExactly)
{
    const Int8Tensor prev = randomCodes(512, 5);
    const Int8Tensor cur = similarCodes(prev, 6);
    const EncodingUnit eu;
    const EncodedStream s = eu.encodeTemporal(cur, prev);
    // Reassemble per-index values from lanes and compare with the
    // actual differences.
    std::vector<int32_t> rebuilt(512, 0);
    for (const LaneOperand &op : s.lanes)
        rebuilt[static_cast<size_t>(op.index)] +=
            op.highPart ? (static_cast<int32_t>(op.nibble) << 4)
                        : op.nibble;
    for (int64_t i = 0; i < 512; ++i) {
        const int32_t expect = static_cast<int32_t>(cur.at(i)) -
                               static_cast<int32_t>(prev.at(i));
        EXPECT_EQ(rebuilt[static_cast<size_t>(i)], expect)
            << "element " << i;
    }
}

TEST(EncodingUnit, ExtremeDifferencesStayExact)
{
    // The widest possible difference spans 9 bits.
    Int8Tensor prev(Shape{2});
    Int8Tensor cur(Shape{2});
    prev.at(0) = -127;
    cur.at(0) = 127; // +254
    prev.at(1) = 127;
    cur.at(1) = -127; // -254
    const EncodingUnit eu;
    const EncodedStream s = eu.encodeTemporal(cur, prev);
    int32_t v0 = 0;
    int32_t v1 = 0;
    for (const LaneOperand &op : s.lanes) {
        int32_t &acc = op.index == 0 ? v0 : v1;
        acc += op.highPart ? (static_cast<int32_t>(op.nibble) << 4)
                           : op.nibble;
    }
    EXPECT_EQ(v0, 254);
    EXPECT_EQ(v1, -254);
}

TEST(EncodingUnit, ActPathEncodesEveryValueOnTwoLanes)
{
    const Int8Tensor cur = randomCodes(256, 7);
    const EncodingUnit eu;
    const EncodedStream s = eu.encodeAct(cur);
    EXPECT_EQ(s.laneSlots(), 512);
    EXPECT_EQ(s.zeroSkipped, 0);
    std::vector<int32_t> rebuilt(256, 0);
    for (const LaneOperand &op : s.lanes)
        rebuilt[static_cast<size_t>(op.index)] +=
            op.highPart ? (static_cast<int32_t>(op.nibble) << 4)
                        : op.nibble;
    for (int64_t i = 0; i < 256; ++i)
        EXPECT_EQ(rebuilt[static_cast<size_t>(i)], cur.at(i));
}

TEST(EncodingUnit, SpatialModeMatchesSpatialOracle)
{
    Rng rng(8);
    Int8Tensor cur(Shape{16, 64});
    cur.fillUniformInt(rng, -20, 20);
    const EncodingUnit eu;
    const EncodedStream s = eu.encodeSpatial(cur);
    const BitClassHistogram h = classifySpatialDiff(cur);
    EXPECT_EQ(s.zeroSkipped,
              static_cast<int64_t>(std::lround(h.zeroFrac * 1024)));
    EXPECT_EQ(s.full8Count,
              static_cast<int64_t>(std::lround(h.full8Frac * 1024)));
}

// ---- Adder-tree PE --------------------------------------------------------

TEST(AdderTreePe, DotProductBitExactOnTemporalDiffs)
{
    const Int8Tensor prev = randomCodes(1024, 9);
    const Int8Tensor cur = similarCodes(prev, 10);
    const Int8Tensor weights = randomCodes(1024, 11);
    const EncodingUnit eu;
    const AdderTreePe pe;
    const PeRunResult r = pe.run(
        eu.encodeTemporal(cur, prev),
        [&](int32_t i) { return weights.at(i); });
    int64_t expect = 0;
    for (int64_t i = 0; i < 1024; ++i)
        expect += (static_cast<int64_t>(cur.at(i)) - prev.at(i)) *
                  weights.at(i);
    EXPECT_EQ(r.accumulator, expect);
}

TEST(AdderTreePe, DotProductBitExactOnActPath)
{
    const Int8Tensor cur = randomCodes(777, 12);
    const Int8Tensor weights = randomCodes(777, 13);
    const EncodingUnit eu;
    const AdderTreePe pe;
    const PeRunResult r = pe.run(eu.encodeAct(cur), [&](int32_t i) {
        return weights.at(i);
    });
    int64_t expect = 0;
    for (int64_t i = 0; i < 777; ++i)
        expect += static_cast<int64_t>(cur.at(i)) * weights.at(i);
    EXPECT_EQ(r.accumulator, expect);
}

TEST(AdderTreePe, CyclesAreCeilOfLanesOverWidth)
{
    const Int8Tensor prev = randomCodes(100, 14);
    const Int8Tensor cur = similarCodes(prev, 15);
    const EncodingUnit eu;
    const EncodedStream s = eu.encodeTemporal(cur, prev);
    const AdderTreePe pe(4);
    const PeRunResult r = pe.run(s, [](int32_t) { return int8_t{1}; });
    EXPECT_EQ(r.cycles, (s.laneSlots() + 3) / 4);
}

TEST(AdderTreePe, ZeroSkippingReducesCycles)
{
    // Identical tensors: all differences zero, no lanes, zero cycles.
    const Int8Tensor x = randomCodes(256, 16);
    const EncodingUnit eu;
    const AdderTreePe pe;
    const PeRunResult r = pe.run(eu.encodeTemporal(x, x),
                                 [](int32_t) { return int8_t{1}; });
    EXPECT_EQ(r.cycles, 0);
    EXPECT_EQ(r.accumulator, 0);
}

/** Property sweep: exactness across seeds and sizes. */
class PeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(PeProperty, RandomStreamsExact)
{
    const auto [n, seed] = GetParam();
    const Int8Tensor prev = randomCodes(n, static_cast<uint64_t>(seed));
    const Int8Tensor cur =
        similarCodes(prev, static_cast<uint64_t>(seed) + 1);
    const Int8Tensor weights =
        randomCodes(n, static_cast<uint64_t>(seed) + 2);
    const EncodingUnit eu;
    const AdderTreePe pe;
    const PeRunResult r = pe.run(
        eu.encodeTemporal(cur, prev),
        [&](int32_t i) { return weights.at(i); });
    int64_t expect = 0;
    for (int64_t i = 0; i < n; ++i)
        expect += (static_cast<int64_t>(cur.at(i)) - prev.at(i)) *
                  weights.at(i);
    EXPECT_EQ(r.accumulator, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, PeProperty,
    ::testing::Combine(::testing::Values(16, 64, 257, 1000),
                       ::testing::Values(1, 2, 3)));

// ---- Cost model -----------------------------------------------------------

class CostModelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        layer_.id = 0;
        layer_.kind = OpKind::Conv2d;
        layer_.macs = 1'000'000;
        layer_.inputElems = 10'000;
        layer_.outputElems = 10'000;
        layer_.weightElems = 100'000;
        stats_.temp = {0.45, 0.51, 0.04};
        stats_.spat = {0.26, 0.48, 0.26};
        stats_.act = {0.18, 0.40, 0.42};
    }

    Layer layer_;
    LayerDependency dep_;
    OnChipFlags onchip_;
    LayerStepStats stats_;
    EnergyTable et_;
};

TEST_F(CostModelTest, DiffModeFasterThanActOnDittoLanes)
{
    const HwConfig cfg = makeConfig(HwDesign::Ditto);
    const LayerCost act = computeLayerCost(cfg, et_, layer_, dep_,
                                           onchip_, stats_,
                                           ExecMode::Act, true);
    const LayerCost diff = computeLayerCost(cfg, et_, layer_, dep_,
                                            onchip_, stats_,
                                            ExecMode::TemporalDiff,
                                            true);
    EXPECT_LT(diff.computeCycles, act.computeCycles);
}

TEST_F(CostModelTest, ZeroSkipReducesComputeCycles)
{
    HwConfig with = makeConfig(HwDesign::Ditto);
    HwConfig without = with;
    without.zeroSkip = false;
    const double c_with =
        computeLayerCost(with, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .computeCycles;
    const double c_without =
        computeLayerCost(without, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .computeCycles;
    EXPECT_LT(c_with, c_without);
}

TEST_F(CostModelTest, TemporalModeAddsPrevTraffic)
{
    const HwConfig cfg = makeConfig(HwDesign::Ditto);
    const double act_bytes =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::Act, true)
            .dramBytes;
    const double diff_bytes =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .dramBytes;
    // Dependency flags default to true: prev input + prev output.
    EXPECT_DOUBLE_EQ(diff_bytes - act_bytes,
                     static_cast<double>(layer_.inputElems +
                                         layer_.outputElems));
}

TEST_F(CostModelTest, DependencyBypassRemovesPrevTraffic)
{
    const HwConfig cfg = makeConfig(HwDesign::Ditto);
    dep_.diffCalcNeeded = false;
    dep_.summationNeeded = false;
    const double act_bytes =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::Act, true)
            .dramBytes;
    const double diff_bytes =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .dramBytes;
    EXPECT_DOUBLE_EQ(diff_bytes, act_bytes);
}

TEST_F(CostModelTest, SignMaskWaivesSiLuBoundaries)
{
    HwConfig cfg = makeConfig(HwDesign::CambriconD);
    dep_.boundaryNonLinears = {OpKind::SiLU, OpKind::GroupNorm};
    const double with_mask =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .dramBytes;
    cfg.signMask = false;
    const double without_mask =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .dramBytes;
    EXPECT_LT(with_mask, without_mask);
}

TEST_F(CostModelTest, SignMaskCannotWaiveSoftmaxBoundaries)
{
    HwConfig cfg = makeConfig(HwDesign::CambriconD);
    dep_.boundaryNonLinears = {OpKind::Softmax};
    const double masked =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .dramBytes;
    cfg.signMask = false;
    const double unmasked =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true)
            .dramBytes;
    EXPECT_DOUBLE_EQ(masked, unmasked);
}

TEST_F(CostModelTest, SpatialModeHasNoTemporalTraffic)
{
    const HwConfig cfg = makeConfig(HwDesign::DittoPlus);
    const double act_bytes =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::Act, true)
            .dramBytes;
    const double spat_bytes =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::SpatialDiff, true)
            .dramBytes;
    EXPECT_DOUBLE_EQ(spat_bytes, act_bytes);
}

TEST_F(CostModelTest, CambriconDActModeCollapsesToOutlierLanes)
{
    const HwConfig camd = makeConfig(HwDesign::CambriconD);
    const HwConfig ditto = makeConfig(HwDesign::Ditto);
    const double camd_act =
        computeLayerCost(camd, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::Act, true)
            .computeCycles;
    const double ditto_act =
        computeLayerCost(ditto, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::Act, true)
            .computeCycles;
    EXPECT_GT(camd_act, 3.0 * ditto_act);
}

TEST_F(CostModelTest, LegaliseAttentionWithoutSupport)
{
    HwConfig cfg = makeConfig(HwDesign::Ditto);
    cfg.attnDiff = false;
    Layer attn = layer_;
    attn.kind = OpKind::AttnQK;
    EXPECT_EQ(legaliseMode(cfg, attn, ExecMode::TemporalDiff),
              ExecMode::Act);
    EXPECT_EQ(legaliseMode(cfg, layer_, ExecMode::TemporalDiff),
              ExecMode::TemporalDiff);
}

TEST_F(CostModelTest, LegaliseSpatialWithoutSupport)
{
    const HwConfig cfg = makeConfig(HwDesign::Ditto); // no spatialMode
    EXPECT_EQ(legaliseMode(cfg, layer_, ExecMode::SpatialDiff),
              ExecMode::Act);
}

TEST_F(CostModelTest, StallIsTotalMinusBusy)
{
    const HwConfig cfg = makeConfig(HwDesign::Ditto);
    const LayerCost c =
        computeLayerCost(cfg, et_, layer_, dep_, onchip_, stats_,
                         ExecMode::TemporalDiff, true);
    EXPECT_NEAR(c.totalCycles, c.computeCycles + c.stallCycles, 1e-9);
    EXPECT_GE(c.stallCycles, 0.0);
}

/**
 * Property sweep over every design and mode: basic cost invariants
 * that must hold regardless of configuration.
 */
class CostSweep
    : public ::testing::TestWithParam<std::tuple<HwDesign, ExecMode>>
{};

TEST_P(CostSweep, CostsAreFiniteConsistentAndPositive)
{
    const auto [design, mode] = GetParam();
    const HwConfig cfg = makeConfig(design);
    const EnergyTable et;
    Layer layer;
    layer.id = 0;
    layer.kind = OpKind::Conv2d;
    layer.macs = 500'000;
    layer.inputElems = 5'000;
    layer.outputElems = 5'000;
    layer.weightElems = 50'000;
    LayerDependency dep;
    OnChipFlags onchip;
    LayerStepStats stats;
    stats.temp = {0.45, 0.51, 0.04};
    stats.spat = {0.26, 0.48, 0.26};
    stats.act = {0.18, 0.40, 0.42};
    const ExecMode legal = legaliseMode(cfg, layer, mode);
    const LayerCost c = computeLayerCost(cfg, et, layer, dep, onchip,
                                         stats, legal, true);
    EXPECT_GT(c.computeCycles, 0.0);
    EXPECT_GT(c.dramBytes, 0.0);
    EXPECT_GE(c.stallCycles, 0.0);
    EXPECT_NEAR(c.totalCycles, c.computeCycles + c.stallCycles, 1e-9);
    EXPECT_GT(c.energy.computeUnit, 0.0);
    EXPECT_GT(c.energy.sram, 0.0);
    EXPECT_GT(c.energy.dram, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndModes, CostSweep,
    ::testing::Combine(::testing::ValuesIn(allDesigns()),
                       ::testing::Values(ExecMode::Act,
                                         ExecMode::TemporalDiff,
                                         ExecMode::SpatialDiff)),
    [](const ::testing::TestParamInfo<std::tuple<HwDesign, ExecMode>>
           &info) {
        std::string name =
            designName(std::get<0>(info.param));
        name += "_";
        name += execModeName(std::get<1>(info.param));
        for (char &c : name)
            if (c == '-' || c == '+')
                c = 'X';
        return name;
    });

TEST(OnChip, AttentionScoresTiledThroughSram)
{
    const ModelGraph g = buildModel(ModelId::SDM);
    const auto flags = deriveOnChipFlags(g);
    bool saw_qk = false;
    bool saw_pv = false;
    for (const Layer &l : g.layers()) {
        if (l.kind == OpKind::AttnQK) {
            EXPECT_TRUE(flags[l.id].output);
            saw_qk = true;
        }
        if (l.kind == OpKind::AttnPV) {
            EXPECT_TRUE(flags[l.id].input1);
            saw_pv = true;
        }
    }
    EXPECT_TRUE(saw_qk);
    EXPECT_TRUE(saw_pv);
}

// ---- Accelerator simulator -------------------------------------------------

TEST(Accelerator, CycleAccountingBalances)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const TraceProvider trace(ModelId::DDPM, g);
    const RunResult r = simulate(makeConfig(HwDesign::Ditto), g, trace);
    EXPECT_NEAR(r.totalCycles,
                r.computeCycles + r.vectorCycles + r.memStallCycles,
                r.totalCycles * 1e-9);
}

TEST(Accelerator, EnergyComponentsPositiveAndConsistent)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const TraceProvider trace(ModelId::DDPM, g);
    const RunResult r = simulate(makeConfig(HwDesign::Ditto), g, trace);
    EXPECT_GT(r.energy.computeUnit, 0.0);
    EXPECT_GT(r.energy.encodingUnit, 0.0);
    EXPECT_GT(r.energy.vectorUnit, 0.0);
    EXPECT_GT(r.energy.sram, 0.0);
    EXPECT_GT(r.energy.dram, 0.0);
    EXPECT_GT(r.energy.staticIdle, 0.0);
    EXPECT_NEAR(r.energy.total(),
                r.energy.computeUnit + r.energy.encodingUnit +
                    r.energy.vectorUnit + r.energy.defoUnit +
                    r.energy.sram + r.energy.dram + r.energy.staticIdle,
                r.energy.total() * 1e-12);
}

TEST(Accelerator, ItcHasNoEncoderOrDefoEnergy)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const TraceProvider trace(ModelId::DDPM, g);
    const RunResult r = simulate(makeConfig(HwDesign::ITC), g, trace);
    EXPECT_DOUBLE_EQ(r.energy.encodingUnit, 0.0);
    EXPECT_DOUBLE_EQ(r.energy.defoUnit, 0.0);
    EXPECT_EQ(r.revertedLayers, 0);
}

TEST(Accelerator, DeterministicAcrossRuns)
{
    const ModelGraph g = buildModel(ModelId::CHUR);
    const TraceProvider trace(ModelId::CHUR, g);
    const RunResult a = simulate(makeConfig(HwDesign::Ditto), g, trace);
    const RunResult b = simulate(makeConfig(HwDesign::Ditto), g, trace);
    EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Accelerator, MoreLanesNeverSlower)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const TraceProvider trace(ModelId::DDPM, g);
    HwConfig small = makeConfig(HwDesign::Ditto);
    small.lanes4 = 10000;
    HwConfig big = makeConfig(HwDesign::Ditto);
    big.lanes4 = 80000;
    const RunResult rs = simulate(small, g, trace);
    const RunResult rb = simulate(big, g, trace);
    EXPECT_LE(rb.totalCycles, rs.totalCycles);
}

TEST(Accelerator, HigherBandwidthNeverSlower)
{
    const ModelGraph g = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, g);
    HwConfig slow = makeConfig(HwDesign::Ditto);
    slow.dramGBs = 128.0;
    HwConfig fast = makeConfig(HwDesign::Ditto);
    fast.dramGBs = 2048.0;
    EXPECT_LE(simulate(fast, g, trace).totalCycles,
              simulate(slow, g, trace).totalCycles);
}

TEST(Accelerator, DefoAccuracyWithinUnitInterval)
{
    const ModelGraph g = buildModel(ModelId::BED);
    const TraceProvider trace(ModelId::BED, g);
    const RunResult r = simulate(makeConfig(HwDesign::Ditto), g, trace);
    EXPECT_GE(r.defoAccuracy, 0.0);
    EXPECT_LE(r.defoAccuracy, 1.0);
    EXPECT_GT(r.computeLayers, 0);
    EXPECT_LE(r.revertedLayers, r.computeLayers);
}

TEST(Energy, AreaEstimateScalesWithLanes)
{
    const double a1 = estimateCoreAreaMm2(10000, 0, true);
    const double a2 = estimateCoreAreaMm2(20000, 0, true);
    EXPECT_NEAR(a2, 2.0 * a1, 1e-9);
    // 8-bit lanes cost more than 4-bit lanes.
    EXPECT_GT(estimateCoreAreaMm2(0, 10000, false),
              estimateCoreAreaMm2(10000, 0, false));
}

TEST(Energy, Table3LaneCountsAreIsoArea)
{
    // ITC's 27648 A8W8 lanes and Ditto's 39398 A4W8 lanes plus encoder
    // should occupy comparable silicon (the premise of Table III).
    const double itc = estimateCoreAreaMm2(0, 27648, false);
    const double ditto = estimateCoreAreaMm2(39398, 0, true);
    EXPECT_NEAR(ditto / itc, 1.0, 0.15);
}

TEST(Gpu, SlowerThanDedicatedHardware)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const TraceProvider trace(ModelId::DDPM, g);
    const RunResult itc = simulate(makeConfig(HwDesign::ITC), g, trace);
    const GpuResult gpu = simulateGpu(g, trace.steps());
    EXPECT_GT(gpu.timeMs, itc.timeMs);
    EXPECT_GT(gpu.energyJ, itc.totalEnergyJ());
}

TEST(Gpu, TimeScalesWithSteps)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const GpuResult g10 = simulateGpu(g, 10);
    const GpuResult g20 = simulateGpu(g, 20);
    EXPECT_NEAR(g20.timeMs, 2.0 * g10.timeMs, 1e-6);
}

} // namespace
} // namespace ditto
