/**
 * @file
 * End-to-end band tests: the experiment drivers must reproduce the
 * paper's headline results in *shape* — who wins, by roughly what
 * factor, where the crossovers fall. Tolerances are generous by design:
 * our substrate is a calibrated simulator, not the authors' testbed.
 */
#include <gtest/gtest.h>

#include <map>

#include "sim/experiments.h"

namespace ditto {
namespace {

double
average(const std::vector<double> &v)
{
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

TEST(Bands, Fig3TemporalSimilarityHighSpatialLow)
{
    std::vector<double> temporal;
    std::vector<double> spatial;
    for (const SimilarityRow &r : runFig3Similarity()) {
        temporal.push_back(r.temporalCosine);
        spatial.push_back(r.spatialCosine);
        // Paper: every model above 0.947 temporal.
        EXPECT_GT(r.temporalCosine, 0.94) << r.model;
        EXPECT_LT(r.spatialCosine, r.temporalCosine) << r.model;
    }
    EXPECT_NEAR(average(temporal), 0.983, 0.012);
    EXPECT_NEAR(average(spatial), 0.31, 0.12);
}

TEST(Bands, Fig4RangeCompression)
{
    std::vector<double> ratios;
    std::map<std::string, double> by_model;
    for (const ValueRangeRow &r : runFig4ValueRange()) {
        ratios.push_back(r.ratio);
        by_model[r.model] = r.ratio;
        EXPECT_GT(r.ratio, 1.5) << r.model;
    }
    EXPECT_NEAR(average(ratios), 8.96, 1.0);
    // DDPM compresses the most, CHUR the least (paper Sec. III-A).
    EXPECT_NEAR(by_model["DDPM"], 25.02, 3.0);
    EXPECT_NEAR(by_model["CHUR"], 2.44, 0.5);
    for (const auto &[model, ratio] : by_model) {
        EXPECT_LE(ratio, by_model["DDPM"] + 1e-9) << model;
        EXPECT_GE(ratio, by_model["CHUR"] - 1e-9) << model;
    }
}

TEST(Bands, Fig4NamedLayerContrast)
{
    const auto detail = runFig4LayerDetail();
    ASSERT_EQ(detail.size(), 2u);
    // conv-in carries a much smaller range than up.0.0.skip at every
    // step, and differences stay far below activations.
    for (size_t i = 0; i < detail[0].actRange.size(); ++i) {
        EXPECT_LT(detail[0].actRange[i], detail[1].actRange[i]);
        EXPECT_LT(detail[0].diffRange[i], detail[0].actRange[i]);
        EXPECT_LT(detail[1].diffRange[i], detail[1].actRange[i]);
    }
}

TEST(Bands, Fig5BitwidthRequirement)
{
    std::vector<double> zero_t, le4_t, full_a, full_s;
    for (const BitwidthRow &r : runFig5Bitwidth()) {
        zero_t.push_back(r.temporal.zero);
        le4_t.push_back(r.temporal.atMost4());
        full_a.push_back(r.act.full8);
        full_s.push_back(r.spatial.full8);
        // Temporal diffs are narrower than spatial diffs, which are
        // narrower than activations — except Latte, whose video frames
        // give spatial differences near-temporal sparsity (Sec. VI-C).
        if (r.model != "Latte") {
            EXPECT_GT(r.temporal.zero, r.spatial.zero) << r.model;
        }
        EXPECT_GT(r.spatial.zero, r.act.zero) << r.model;
        EXPECT_LT(r.temporal.full8, r.spatial.full8) << r.model;
    }
    EXPECT_NEAR(average(zero_t), 0.4448, 0.035);
    EXPECT_NEAR(average(le4_t), 0.9601, 0.02);
    EXPECT_NEAR(average(full_a), 0.4228, 0.06);
    EXPECT_NEAR(average(full_s), 0.2558, 0.06);
}

TEST(Bands, Fig6BopsReduction)
{
    std::vector<double> temporal, spatial;
    std::map<std::string, double> by_model;
    for (const BopsRow &r : runFig6Bops()) {
        temporal.push_back(r.temporal);
        spatial.push_back(r.spatial);
        by_model[r.model] = r.temporal;
        // Temporal beats spatial (except Latte, whose video frames
        // make spatial differences competitive); both beat act
        // processing.
        if (r.model != "Latte") {
            EXPECT_LT(r.temporal, r.spatial) << r.model;
        }
        EXPECT_LT(r.spatial, 1.0) << r.model;
    }
    // Paper: 53.3% below act on average, 23.1% below spatial. Our
    // pure-MAC BOPs accounting reduces more than the paper's (which
    // evidently carries per-element overhead terms); the band is wide
    // and one-sided, the orderings are strict.
    EXPECT_GT(average(temporal), 0.25);
    EXPECT_LT(average(temporal), 0.55);
    EXPECT_LT(average(temporal), average(spatial) - 0.1);
    // DDPM and CHUR achieve the deepest reductions (68.8% / 71.5%).
    EXPECT_LT(by_model["DDPM"], 0.42);
    EXPECT_LT(by_model["CHUR"], 0.42);
}

TEST(Bands, Fig6PerStepReductionConsistent)
{
    for (const BopsSeries &s : runFig6StepDetail()) {
        // Every step reduces BOPs; the final steps reduce least.
        double first_ten = 0.0;
        double last_ten = 0.0;
        const size_t n = s.relativeBops.size();
        for (size_t i = 0; i < n; ++i) {
            EXPECT_LT(s.relativeBops[i], 1.0)
                << s.layer << " step " << i;
        }
        for (size_t i = 0; i < 10; ++i) {
            first_ten += s.relativeBops[i] / 10.0;
            last_ten += s.relativeBops[n - 1 - i] / 10.0;
        }
        EXPECT_GT(last_ten, first_ten) << s.layer;
    }
}

TEST(Bands, Fig8NaiveDiffMemoryOverhead)
{
    std::vector<double> ratios;
    for (const MemAccessRow &r : runFig8MemAccess()) {
        ratios.push_back(r.relativeAccesses);
        EXPECT_GT(r.relativeAccesses, 1.5) << r.model;
    }
    EXPECT_NEAR(average(ratios), 2.75, 0.45);
}

TEST(Bands, Table2DittoIsBitExact)
{
    const AccuracyProxy proxy = runTable2Accuracy();
    EXPECT_TRUE(proxy.bitExact);
    EXPECT_GT(proxy.sqnrQuantDb, 25.0);
    EXPECT_DOUBLE_EQ(proxy.sqnrQuantDb, proxy.sqnrDittoDb);
    EXPECT_EQ(proxy.paperRows.size(), 7u);
}

TEST(Bands, Table3ConfigurationsMatchPaper)
{
    const auto rows = runTable3HwConfig();
    ASSERT_EQ(rows.size(), 5u);
    std::map<std::string, int64_t> lanes;
    for (const HwConfigRow &r : rows)
        lanes[r.hardware] = r.lanes;
    EXPECT_EQ(lanes["ITC"], 27648);
    EXPECT_EQ(lanes["Diffy"], 39398);
    EXPECT_EQ(lanes["Cambricon-D"], 38280 + 2552);
    EXPECT_EQ(lanes["Ditto"], 39398);
}

class Fig13Fixture : public ::testing::Test
{
  protected:
    static const std::vector<ComparisonRow> &
    rows()
    {
        static const std::vector<ComparisonRow> kRows =
            runFig13Comparison();
        return kRows;
    }

    static double
    avgFor(const std::string &hw,
           double ComparisonRow::*field)
    {
        double sum = 0.0;
        int n = 0;
        for (const ComparisonRow &r : rows()) {
            if (r.hardware == hw) {
                sum += r.*field;
                ++n;
            }
        }
        return sum / n;
    }
};

TEST_F(Fig13Fixture, DittoFastestAcrossAllModels)
{
    std::map<std::string, double> best;
    for (const ComparisonRow &r : rows()) {
        if (r.hardware == "Ditto+")
            continue;
        if (r.hardware != "Ditto") {
            EXPECT_LE(r.speedup,
                      avgFor("Ditto", &ComparisonRow::speedup) * 1.6)
                << r.hardware;
        }
    }
    for (const ComparisonRow &r : rows()) {
        // Latte is the documented exception for Diffy: its video
        // frames give spatial differences near-temporal quality.
        if (r.hardware == "Diffy" && r.model == "Latte")
            continue;
        if (r.hardware == "Diffy" || r.hardware == "Cambricon-D") {
            double ditto = 0.0;
            for (const ComparisonRow &d : rows())
                if (d.model == r.model && d.hardware == "Ditto")
                    ditto = d.speedup;
            EXPECT_LT(r.speedup, ditto) << r.hardware << " " << r.model;
        }
    }
}

TEST_F(Fig13Fixture, HeadlineSpeedups)
{
    const double ditto = avgFor("Ditto", &ComparisonRow::speedup);
    const double ditto_plus = avgFor("Ditto+", &ComparisonRow::speedup);
    const double diffy = avgFor("Diffy", &ComparisonRow::speedup);
    const double camd = avgFor("Cambricon-D", &ComparisonRow::speedup);
    EXPECT_NEAR(ditto, 1.5, 0.15);            // paper: 1.5x
    EXPECT_NEAR(ditto_plus / ditto, 1.06, 0.04); // paper: 1.06x
    EXPECT_NEAR(ditto / camd, 1.56, 0.27);    // paper: 1.56x
    EXPECT_NEAR(diffy, 1.21, 0.12);           // paper: ~24% below Ditto
}

TEST_F(Fig13Fixture, HeadlineEnergySavings)
{
    const double ditto = avgFor("Ditto", &ComparisonRow::relativeEnergy);
    const double ditto_plus =
        avgFor("Ditto+", &ComparisonRow::relativeEnergy);
    const double camd =
        avgFor("Cambricon-D", &ComparisonRow::relativeEnergy);
    // Paper: 17.74% / 22.92% savings; Cambricon-D above ITC on average.
    EXPECT_NEAR(ditto, 0.8226, 0.07);
    EXPECT_NEAR(ditto_plus, 0.7708, 0.075);
    EXPECT_LT(ditto_plus, ditto);
    EXPECT_GT(camd, 0.95);
    // SDM is a named Cambricon-D pathology.
    for (const ComparisonRow &r : rows())
        if (r.hardware == "Cambricon-D" && r.model == "SDM") {
            EXPECT_GT(r.relativeEnergy, 1.0);
        }
}

TEST_F(Fig13Fixture, Fig14MemoryAccessOrdering)
{
    const double camd =
        avgFor("Cambricon-D", &ComparisonRow::relativeMemAccess);
    const double ditto =
        avgFor("Ditto", &ComparisonRow::relativeMemAccess);
    const double ditto_plus =
        avgFor("Ditto+", &ComparisonRow::relativeMemAccess);
    // Paper: 1.95x / 1.56x / 1.36x; all above ITC, strictly ordered.
    EXPECT_GT(camd, ditto);
    EXPECT_GE(ditto, ditto_plus);
    EXPECT_GT(ditto_plus, 1.0);
    EXPECT_NEAR(camd, 1.95, 0.45);
    EXPECT_NEAR(ditto, 1.56, 0.3);
    EXPECT_NEAR(ditto_plus, 1.36, 0.25);
}

TEST(Bands, Fig13GpuFarSlowerAndHungrier)
{
    for (const GpuRow &r : runFig13Gpu()) {
        EXPECT_LT(r.speedup, 0.6) << r.model;
        EXPECT_GT(r.relativeEnergy, 10.0) << r.model;
    }
}

TEST(Bands, Fig16AblationShape)
{
    std::map<std::string, double> total;
    std::map<std::string, double> stall;
    for (const AblationRow &r : runFig16Ablation()) {
        total[r.variant] += (r.computeCycles + r.stallCycles) / 7.0;
        stall[r.variant] += r.stallCycles / 7.0;
    }
    // DB alone is barely better than ITC; every mechanism addition
    // improves the total; Defo slashes the stall cycles.
    EXPECT_GT(total["DB"], 0.9);
    EXPECT_LT(total["DB&DS"], total["DB"]);
    EXPECT_LT(total["Ditto"], total["DB&DS&Attn"]);
    EXPECT_LT(total["Ditto+"], total["Ditto"]);
    EXPECT_LT(stall["Ditto"], stall["DB&DS&Attn"] * 0.75);
}

TEST(Bands, Fig17DefoBehaviour)
{
    double change_defo = 0.0;
    double change_plus = 0.0;
    double acc_defo = 0.0;
    double acc_plus = 0.0;
    double latte_plus = 0.0;
    double max_plus = 0.0;
    for (const DefoRow &r : runFig17Defo()) {
        if (r.variant == "Defo") {
            change_defo += r.changedFrac / 7.0;
            acc_defo += r.accuracy / 7.0;
        } else {
            change_plus += r.changedFrac / 7.0;
            acc_plus += r.accuracy / 7.0;
            max_plus = std::max(max_plus, r.changedFrac);
            if (r.model == "Latte")
                latte_plus = r.changedFrac;
        }
    }
    // Paper: 14.4% (Defo) vs 38.29% (Defo+); Latte changes 81.6% under
    // Defo+. Our statistical family cannot reproduce a Latte spatial
    // advantage that strong (see EXPERIMENTS.md), so the Latte check is
    // directional only. Accuracy: 92% / 88.11%.
    EXPECT_NEAR(change_defo, 0.144, 0.08);
    EXPECT_GT(change_plus, change_defo);
    EXPECT_GT(latte_plus, 0.1);
    (void)max_plus;
    EXPECT_NEAR(acc_defo, 0.92, 0.05);
    EXPECT_NEAR(acc_plus, 0.8811, 0.09);
}

TEST(Bands, Fig18NearIdeal)
{
    for (const IdealRow &r : runFig18Ideal()) {
        // Paper: Ditto reaches 98.8% of Ideal-Ditto, Ditto+ 95.8%.
        EXPECT_GT(r.ditto / r.idealDitto, 0.95) << r.model;
        EXPECT_LE(r.ditto, r.idealDitto * (1.0 + 1e-9)) << r.model;
        EXPECT_GT(r.dittoPlus / r.idealDittoPlus, 0.93) << r.model;
    }
}

TEST(Bands, Fig19DriftDegradesAccuracyButNotPerformance)
{
    double drift_acc = 0.0;
    double ditto_frac = 0.0;
    double dynamic_frac = 0.0;
    for (const DynamicRow &r : runFig19Dynamic()) {
        drift_acc += r.defoAccuracy / 7.0;
        ditto_frac += r.ditto / r.idealDitto / 7.0;
        dynamic_frac += r.dynamicDitto / r.idealDitto / 7.0;
    }
    double stationary_acc = 0.0;
    for (const DefoRow &r : runFig17Defo())
        if (r.variant == "Defo")
            stationary_acc += r.accuracy / 7.0;
    // Accuracy declines under drift, yet both designs stay above ~96%
    // of the oracle (paper: ~7% decline; 98.03% / 98.18% of ideal).
    EXPECT_LT(drift_acc, stationary_acc);
    EXPECT_GT(ditto_frac, 0.95);
    EXPECT_GT(dynamic_frac, 0.95);
}

TEST(Bands, Fig15SignMaskAndTechniquesCompose)
{
    std::map<std::string, double> avg;
    for (const TechniqueRow &r : runFig15Techniques())
        avg[r.variant] += r.speedup / 7.0;
    // Attention differences rescue Cambricon-D's outlier-lane attention
    // fallback; Defo adds nothing there (act mode is too slow to revert
    // to); Defo+ helps; sign-mask gives Ditto a small push; and every
    // Cambricon-D variant stays below the Ditto hardware.
    EXPECT_GT(avg["Org. Cam-D & Attn. Diff."], 1.05);
    EXPECT_NEAR(avg["Org. Cam-D & Attn. Diff. & Defo"],
                avg["Org. Cam-D & Attn. Diff."], 0.05);
    EXPECT_GT(avg["Org. Cam-D & Attn. Diff. & Defo+"],
              avg["Org. Cam-D & Attn. Diff."]);
    EXPECT_GE(avg["Ditto & Sign-mask"], avg["Ditto"]);
    EXPECT_GE(avg["Ditto+ & Sign-mask"], avg["Ditto+"]);
    EXPECT_GT(avg["Ditto"],
              avg["Org. Cam-D & Attn. Diff. & Defo+"]);
}

} // namespace
} // namespace ditto
