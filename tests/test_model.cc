/**
 * @file
 * Tests for src/model: the layer IR, graph invariants, the Defo static
 * dependency analysis, and the seven model reconstructions.
 */
#include <gtest/gtest.h>

#include "model/builder.h"
#include "model/graph.h"
#include "model/zoo.h"

namespace ditto {
namespace {

TEST(OpKind, ComputeClassification)
{
    EXPECT_TRUE(isComputeOp(OpKind::Conv2d));
    EXPECT_TRUE(isComputeOp(OpKind::Fc));
    EXPECT_TRUE(isComputeOp(OpKind::AttnQK));
    EXPECT_TRUE(isComputeOp(OpKind::CrossPV));
    EXPECT_FALSE(isComputeOp(OpKind::SiLU));
    EXPECT_FALSE(isComputeOp(OpKind::Add));
    EXPECT_FALSE(isComputeOp(OpKind::Input));
}

TEST(OpKind, WeightStationaryVsDynamic)
{
    EXPECT_TRUE(isWeightStationary(OpKind::Conv2d));
    EXPECT_TRUE(isWeightStationary(OpKind::CrossQK));
    EXPECT_FALSE(isWeightStationary(OpKind::AttnQK));
    EXPECT_TRUE(isDynamicAttention(OpKind::AttnQK));
    EXPECT_TRUE(isDynamicAttention(OpKind::AttnPV));
    EXPECT_FALSE(isDynamicAttention(OpKind::CrossQK));
}

TEST(OpKind, NonLinearAndTransparent)
{
    EXPECT_TRUE(isNonLinear(OpKind::Softmax));
    EXPECT_TRUE(isNonLinear(OpKind::GeLU));
    EXPECT_TRUE(isNonLinear(OpKind::LayerNorm));
    EXPECT_FALSE(isNonLinear(OpKind::Add));
    EXPECT_TRUE(isDiffTransparent(OpKind::Add));
    EXPECT_TRUE(isDiffTransparent(OpKind::Concat));
    EXPECT_TRUE(isDiffTransparent(OpKind::Scale));
    EXPECT_FALSE(isDiffTransparent(OpKind::SiLU));
}

TEST(LayerGraphBuilder, ConvGeometry)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 3 * 8 * 8);
    const int c = b.conv2d("conv", x, 3, 16, 3, 1, 1, 8, 8);
    const Layer &l = b.graph().layer(c);
    EXPECT_EQ(l.inputElems, 3 * 8 * 8);
    EXPECT_EQ(l.outputElems, 16 * 8 * 8);
    EXPECT_EQ(l.weightElems, 16 * 3 * 3 * 3);
    EXPECT_EQ(l.macs, 16 * 8 * 8 * 3 * 3 * 3);
}

TEST(LayerGraphBuilder, StridedConvHalvesOutput)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 4 * 8 * 8);
    const int c = b.conv2d("down", x, 4, 4, 3, 2, 1, 8, 8);
    EXPECT_EQ(b.graph().layer(c).outputElems, 4 * 4 * 4);
}

TEST(LayerGraphBuilder, FcGeometry)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 10 * 32);
    const int f = b.fc("fc", x, 10, 32, 64);
    const Layer &l = b.graph().layer(f);
    EXPECT_EQ(l.macs, 10 * 32 * 64);
    EXPECT_EQ(l.weightElems, 32 * 64);
    EXPECT_EQ(l.outputElems, 10 * 64);
}

TEST(LayerGraphBuilder, AttentionGeometry)
{
    LayerGraphBuilder b("g");
    const int q = b.input("q", 16 * 32);
    const int k = b.input("k", 16 * 32);
    const int s = b.attnQK("qk", q, k, 16, 32, 4);
    const Layer &l = b.graph().layer(s);
    EXPECT_EQ(l.macs, 16 * 16 * 32);
    EXPECT_EQ(l.inputElems, 16 * 32);
    EXPECT_EQ(l.inputElems2, 16 * 32);
    EXPECT_EQ(l.outputElems, 4 * 16 * 16);
    EXPECT_EQ(l.weightElems, 0);
}

TEST(LayerGraphBuilder, CrossAttentionTreatsContextAsWeight)
{
    LayerGraphBuilder b("g");
    const int q = b.input("q", 16 * 32);
    const int s = b.crossQK("cqk", q, 16, 7, 32, 4);
    const Layer &l = b.graph().layer(s);
    EXPECT_EQ(l.weightElems, 7 * 32);
    EXPECT_EQ(l.macs, 16 * 7 * 32);
    EXPECT_EQ(l.inputElems2, 0);
}

TEST(Graph, ConsumersTracked)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 8);
    const int a = b.nonLinear("silu", OpKind::SiLU, x, 8);
    const int c1 = b.fc("f1", a, 1, 8, 8);
    const int c2 = b.fc("f2", a, 1, 8, 8);
    const ModelGraph g = b.take();
    EXPECT_EQ(g.consumers(a).size(), 2u);
    EXPECT_EQ(g.consumers(a)[0], c1);
    EXPECT_EQ(g.consumers(a)[1], c2);
    EXPECT_TRUE(g.consumers(c2).empty());
}

TEST(Graph, FindLayerByName)
{
    LayerGraphBuilder b("g");
    b.input("x", 8);
    const ModelGraph g = b.take();
    EXPECT_EQ(g.findLayer("x"), 0);
    EXPECT_EQ(g.findLayer("nope"), -1);
}

// ---- Dependency analysis (Defo static pass) --------------------------

TEST(Dependency, LinearAfterNonLinearNeedsDiffCalc)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 64);
    const int s = b.nonLinear("silu", OpKind::SiLU, x, 64);
    const int f = b.fc("fc", s, 1, 64, 64);
    const ModelGraph g = b.take();
    const auto deps = g.analyzeDependencies();
    EXPECT_TRUE(deps[f].diffCalcNeeded);
    // Output feeds the graph output: summation needed.
    EXPECT_TRUE(deps[f].summationNeeded);
}

TEST(Dependency, LinearChainBypassesDiffCalcAndSummation)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 64);
    const int f1 = b.fc("fc1", x, 1, 64, 64);
    const int f2 = b.fc("fc2", f1, 1, 64, 64);
    b.fc("fc3", f2, 1, 64, 64);
    const ModelGraph g = b.take();
    const auto deps = g.analyzeDependencies();
    // fc1 reads the graph input: must compute the difference itself.
    EXPECT_TRUE(deps[f1].diffCalcNeeded);
    // fc1 feeds only fc2 (a compute layer): the difference propagates.
    EXPECT_FALSE(deps[f1].summationNeeded);
    // fc2 receives a difference directly.
    EXPECT_FALSE(deps[f2].diffCalcNeeded);
    EXPECT_FALSE(deps[f2].summationNeeded);
}

TEST(Dependency, AddOfTwoLinearsStaysTransparent)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 64);
    const int f1 = b.fc("fc1", x, 1, 64, 64);
    const int f2 = b.fc("fc2", x, 1, 64, 64);
    const int a = b.add("add", f1, f2, 64);
    const int f3 = b.fc("fc3", a, 1, 64, 64);
    const ModelGraph g = b.take();
    const auto deps = g.analyzeDependencies();
    // d(f1+f2) = d(f1) + d(f2): no summation at f1/f2, no diff calc at
    // f3.
    EXPECT_FALSE(deps[f1].summationNeeded);
    EXPECT_FALSE(deps[f2].summationNeeded);
    EXPECT_FALSE(deps[f3].diffCalcNeeded);
}

TEST(Dependency, NonLinearConsumerForcesSummation)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 64);
    const int f = b.fc("fc", x, 1, 64, 64);
    b.nonLinear("gelu", OpKind::GeLU, f, 64);
    const ModelGraph g = b.take();
    const auto deps = g.analyzeDependencies();
    EXPECT_TRUE(deps[f].summationNeeded);
    // The boundary kind is recorded for the sign-mask model.
    bool saw_gelu = false;
    for (OpKind k : deps[f].boundaryNonLinears)
        saw_gelu |= k == OpKind::GeLU;
    EXPECT_TRUE(saw_gelu);
}

TEST(Dependency, DynamicAttentionConsumerForcesSummation)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 16 * 32);
    const int q = b.fc("q", x, 16, 32, 32);
    const int k = b.fc("k", x, 16, 32, 32);
    b.attnQK("qk", q, k, 16, 32, 1);
    const ModelGraph g = b.take();
    const auto deps = g.analyzeDependencies();
    // Q and K must be materialised as full values: the attention
    // decomposition multiplies Q_t and K_prev directly.
    EXPECT_TRUE(deps[q].summationNeeded);
    EXPECT_TRUE(deps[k].summationNeeded);
}

TEST(Dependency, TransparentChainPropagatesThroughConcat)
{
    LayerGraphBuilder b("g");
    const int x = b.input("x", 64);
    const int f1 = b.fc("fc1", x, 1, 64, 64);
    const int f2 = b.fc("fc2", x, 1, 64, 64);
    const int cat = b.concat("cat", f1, f2, 128);
    const int f3 = b.fc("fc3", cat, 1, 128, 64);
    const ModelGraph g = b.take();
    const auto deps = g.analyzeDependencies();
    EXPECT_FALSE(deps[f3].diffCalcNeeded);
    EXPECT_FALSE(deps[f1].summationNeeded);
}

// ---- The seven model reconstructions ---------------------------------

class ZooTest : public ::testing::TestWithParam<ModelId>
{};

TEST_P(ZooTest, GraphBuildsWithValidStructure)
{
    const ModelGraph g = buildModel(GetParam());
    EXPECT_GT(g.numLayers(), 10);
    EXPECT_GT(g.numComputeLayers(), 5);
    EXPECT_GT(g.totalMacs(), 0);
    EXPECT_GT(g.totalWeightElems(), 0);
    // Producer ids are always earlier than consumers (topological).
    for (const Layer &l : g.layers())
        for (int in : l.inputs)
            EXPECT_LT(in, l.id);
}

TEST_P(ZooTest, ComputeLayersFitTheDefoTable)
{
    const ModelGraph g = buildModel(GetParam());
    // The paper sizes the Defo table at 512 entries for a maximum of
    // 347 layers.
    EXPECT_LE(g.numComputeLayers(), 512);
}

TEST_P(ZooTest, SamplerSpecMatchesTable1)
{
    const ModelInfo &spec = modelInfo(GetParam());
    EXPECT_GT(spec.sampler.steps, 0);
    EXPECT_FALSE(spec.abbr.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooTest, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelId> &info) {
        return modelAbbr(info.param);
    });

TEST(Zoo, MaxComputeLayersMatchesPaper)
{
    int max_layers = 0;
    for (ModelId id : allModels())
        max_layers =
            std::max(max_layers, buildModel(id).numComputeLayers());
    // Paper Section V-B: "the maximum number of layers of the diffusion
    // model is 347".
    EXPECT_EQ(max_layers, 347);
}

TEST(Zoo, SdmContainsTheNamedLayers)
{
    const ModelGraph g = buildModel(ModelId::SDM);
    EXPECT_GE(g.findLayer("conv-in"), 0);
    EXPECT_GE(g.findLayer("up.0.0.skip"), 0);
}

TEST(Zoo, DdpmParameterCountNearPublicCheckpoint)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const double params_m =
        static_cast<double>(g.totalWeightElems()) / 1.0e6;
    // Ho et al. CIFAR-10 DDPM is ~35.7M parameters.
    EXPECT_GT(params_m, 20.0);
    EXPECT_LT(params_m, 60.0);
}

TEST(Zoo, SdmParameterCountNearStableDiffusionUnet)
{
    const ModelGraph g = buildModel(ModelId::SDM);
    const double params_m =
        static_cast<double>(g.totalWeightElems()) / 1.0e6;
    // SD v1 UNet is ~860M parameters.
    EXPECT_GT(params_m, 600.0);
    EXPECT_LT(params_m, 1100.0);
}

TEST(Zoo, DitParameterCountNearPublicCheckpoint)
{
    const ModelGraph g = buildModel(ModelId::DiT);
    const double params_m =
        static_cast<double>(g.totalWeightElems()) / 1.0e6;
    // DiT-XL/2 is ~675M parameters.
    EXPECT_GT(params_m, 500.0);
    EXPECT_LT(params_m, 900.0);
}

TEST(Zoo, CrossAttentionContextProjectionsAreConstPerRun)
{
    const ModelGraph g = buildModel(ModelId::SDM);
    int const_layers = 0;
    for (const Layer &l : g.layers())
        if (l.constPerRun)
            ++const_layers;
    // Two (K'/V') per transformer block.
    EXPECT_GT(const_layers, 10);
}

TEST(Zoo, LatteAlternatesSpatialAndTemporalBlocks)
{
    const ModelGraph g = buildModel(ModelId::Latte);
    int spatial = 0;
    int temporal = 0;
    for (const Layer &l : g.layers()) {
        if (l.kind != OpKind::AttnQK)
            continue;
        // Spatial blocks attend over 256 tokens, temporal over 16.
        if (l.tokens == 256)
            ++spatial;
        else if (l.tokens == 16)
            ++temporal;
    }
    EXPECT_EQ(spatial, 14);
    EXPECT_EQ(temporal, 14);
}

TEST(Zoo, UnconditionalModelsHaveNoCrossAttention)
{
    for (ModelId id : {ModelId::DDPM, ModelId::BED, ModelId::CHUR}) {
        const ModelGraph g = buildModel(id);
        for (const Layer &l : g.layers()) {
            EXPECT_NE(l.kind, OpKind::CrossQK)
                << modelAbbr(id) << " layer " << l.name;
        }
    }
}

TEST(Zoo, ConditionalModelsUseCrossAttention)
{
    for (ModelId id : {ModelId::IMG, ModelId::SDM}) {
        const ModelGraph g = buildModel(id);
        bool has_cross = false;
        for (const Layer &l : g.layers())
            has_cross |= l.kind == OpKind::CrossQK;
        EXPECT_TRUE(has_cross) << modelAbbr(id);
    }
}

TEST(Zoo, TransformersUseLayerNormAndGelu)
{
    const ModelGraph g = buildModel(ModelId::DiT);
    bool has_ln = false;
    bool has_gelu = false;
    bool has_gn = false;
    for (const Layer &l : g.layers()) {
        has_ln |= l.kind == OpKind::LayerNorm;
        has_gelu |= l.kind == OpKind::GeLU;
        has_gn |= l.kind == OpKind::GroupNorm;
    }
    EXPECT_TRUE(has_ln);
    EXPECT_TRUE(has_gelu);
    EXPECT_FALSE(has_gn); // DiT has no ResNet blocks
}

} // namespace
} // namespace ditto
