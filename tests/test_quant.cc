/**
 * @file
 * Unit and property tests for src/quant: quantizer, clustered scales
 * and the bit-width requirement analysis.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quant/bitwidth.h"
#include "quant/quantizer.h"

namespace ditto {
namespace {

TEST(Quantizer, RoundTripErrorBounded)
{
    Rng rng(1);
    FloatTensor x(Shape{512});
    x.fillNormal(rng, 0.0, 2.0);
    const QuantParams p = chooseDynamicScale(x);
    const float err = maxQuantError(x, p);
    EXPECT_LE(err, 0.5f * p.scale + 1e-6f);
}

TEST(Quantizer, CodesWithinSymmetricRange)
{
    Rng rng(2);
    FloatTensor x(Shape{512});
    x.fillNormal(rng, 0.0, 10.0);
    const QuantParams p = chooseDynamicScale(x);
    const Int8Tensor q = quantize(x, p);
    for (int8_t v : q.data()) {
        EXPECT_GE(v, -127);
        EXPECT_LE(v, 127);
    }
}

TEST(Quantizer, DynamicScaleCoversMaxAbs)
{
    FloatTensor x(Shape{3});
    x.at(0) = -6.35f;
    x.at(1) = 1.0f;
    x.at(2) = 2.0f;
    const QuantParams p = chooseDynamicScale(x);
    EXPECT_NEAR(p.scale, 6.35f / 127.0f, 1e-6f);
}

TEST(Quantizer, AllZeroTensorUsesUnitScale)
{
    FloatTensor x(Shape{4}, 0.0f);
    const QuantParams p = chooseDynamicScale(x);
    EXPECT_FLOAT_EQ(p.scale, 1.0f);
    const Int8Tensor q = quantize(x, p);
    for (int8_t v : q.data())
        EXPECT_EQ(v, 0);
}

TEST(Quantizer, StaticScaleCoversAllSamples)
{
    std::vector<FloatTensor> samples;
    for (int i = 1; i <= 3; ++i) {
        FloatTensor t(Shape{2}, static_cast<float>(i));
        samples.push_back(std::move(t));
    }
    const QuantParams p = chooseStaticScale(samples);
    EXPECT_NEAR(p.scale, 3.0f / 127.0f, 1e-6f);
}

TEST(Quantizer, LowerBitWidthCoarserScale)
{
    FloatTensor x(Shape{2});
    x.at(0) = 7.0f;
    x.at(1) = -7.0f;
    const QuantParams p4 = chooseDynamicScale(x, 4);
    EXPECT_EQ(p4.maxCode(), 7);
    EXPECT_NEAR(p4.scale, 1.0f, 1e-6f);
}

TEST(Quantizer, DequantizeAccumCombinedScale)
{
    Int32Tensor acc(Shape{2});
    acc.at(0) = 100;
    acc.at(1) = -50;
    const FloatTensor y = dequantizeAccum(acc, 0.01f);
    EXPECT_FLOAT_EQ(y.at(0), 1.0f);
    EXPECT_FLOAT_EQ(y.at(1), -0.5f);
}

TEST(ClusteredQuantizer, AssignsAllStepsAndClusters)
{
    // Range grows monotonically: early steps small, late steps large.
    std::vector<float> maxabs;
    for (int t = 0; t < 50; ++t)
        maxabs.push_back(1.0f + 0.2f * t);
    TimestepClusteredQuantizer q(maxabs, 4);
    EXPECT_EQ(q.numSteps(), 50);
    EXPECT_LE(q.numClusters(), 4);
    for (int t = 0; t < 50; ++t) {
        EXPECT_GE(q.clusterOfStep(t), 0);
        EXPECT_LT(q.clusterOfStep(t), q.numClusters());
    }
}

TEST(ClusteredQuantizer, ScalesCoverClusterMaxima)
{
    std::vector<float> maxabs = {1.0f, 1.1f, 8.0f, 8.2f, 30.0f, 31.0f};
    TimestepClusteredQuantizer q(maxabs, 3);
    for (int t = 0; t < 6; ++t) {
        const QuantParams &p = q.paramsForStep(t);
        // The scale must be able to represent this step's max-abs.
        EXPECT_GE(p.scale * 127.0f, maxabs[t] - 1e-4f);
    }
}

TEST(ClusteredQuantizer, BeatsSingleStaticScaleOnDriftingRanges)
{
    // A small-range step quantized with a huge static scale loses most
    // of its resolution; clustered scales keep it sharp.
    std::vector<float> maxabs;
    for (int t = 0; t < 20; ++t)
        maxabs.push_back(t < 10 ? 0.5f : 50.0f);
    TimestepClusteredQuantizer clustered(maxabs, 2);

    Rng rng(3);
    FloatTensor small(Shape{256});
    small.fillNormal(rng, 0.0, 0.1);
    QuantParams single;
    single.scale = 50.0f / 127.0f;

    const float err_single = maxQuantError(small, single);
    const float err_clustered =
        maxQuantError(small, clustered.paramsForStep(0));
    EXPECT_LT(err_clustered, err_single);
}

TEST(ClusteredQuantizer, SeparatesTwoRangeRegimes)
{
    // Ten small-range steps followed by ten large-range steps: two
    // clusters should isolate them and give each regime a tight scale.
    std::vector<float> maxabs;
    for (int t = 0; t < 20; ++t)
        maxabs.push_back(t < 10 ? 0.5f : 50.0f);
    TimestepClusteredQuantizer q(maxabs, 2);
    EXPECT_NEAR(q.paramsForStep(0).scale, 0.5f / 127.0f, 1e-5f);
    EXPECT_NEAR(q.paramsForStep(19).scale, 50.0f / 127.0f, 1e-3f);
    EXPECT_NE(q.clusterOfStep(0), q.clusterOfStep(19));
}

TEST(BitClass, ClassifyValueBoundaries)
{
    EXPECT_EQ(classifyValue(0), BitClass::Zero);
    EXPECT_EQ(classifyValue(1), BitClass::Low4);
    EXPECT_EQ(classifyValue(-1), BitClass::Low4);
    EXPECT_EQ(classifyValue(7), BitClass::Low4);
    EXPECT_EQ(classifyValue(-8), BitClass::Low4);
    EXPECT_EQ(classifyValue(8), BitClass::Full8);
    EXPECT_EQ(classifyValue(-9), BitClass::Full8);
    EXPECT_EQ(classifyValue(127), BitClass::Full8);
    EXPECT_EQ(classifyValue(-254), BitClass::Full8);
}

TEST(BitClass, NamesAreStable)
{
    EXPECT_STREQ(bitClassName(BitClass::Zero), "zero");
    EXPECT_STREQ(bitClassName(BitClass::Low4), "4-bit");
    EXPECT_STREQ(bitClassName(BitClass::Full8), ">4-bit");
}

TEST(BitClass, HistogramSumsToOne)
{
    Rng rng(4);
    Int8Tensor t(Shape{1024});
    t.fillUniformInt(rng, -127, 127);
    const BitClassHistogram h = classifyTensor(t);
    EXPECT_NEAR(h.zeroFrac + h.low4Frac + h.full8Frac, 1.0, 1e-9);
    EXPECT_EQ(h.total, 1024);
}

TEST(BitClass, HistogramOfKnownValues)
{
    Int8Tensor t(Shape{4});
    t.at(0) = 0;
    t.at(1) = 3;
    t.at(2) = -8;
    t.at(3) = 100;
    const BitClassHistogram h = classifyTensor(t);
    EXPECT_DOUBLE_EQ(h.zeroFrac, 0.25);
    EXPECT_DOUBLE_EQ(h.low4Frac, 0.5);
    EXPECT_DOUBLE_EQ(h.full8Frac, 0.25);
}

TEST(BitClass, TemporalDiffMatchesManualSubtraction)
{
    Int8Tensor cur(Shape{3});
    Int8Tensor prev(Shape{3});
    cur.at(0) = 10;
    prev.at(0) = 10; // zero
    cur.at(1) = 10;
    prev.at(1) = 5; // 5 -> low4
    cur.at(2) = 100;
    prev.at(2) = -100; // 200 -> full8
    const BitClassHistogram h = classifyTemporalDiff(cur, prev);
    EXPECT_DOUBLE_EQ(h.zeroFrac, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.low4Frac, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.full8Frac, 1.0 / 3.0);
}

TEST(BitClass, SpatialDiffFirstColumnAtOwnMagnitude)
{
    Int8Tensor t(Shape{1, 3});
    t.at(0) = 100; // no left neighbour: classified at 100 -> full8
    t.at(1) = 101; // diff 1 -> low4
    t.at(2) = 101; // diff 0 -> zero
    const BitClassHistogram h = classifySpatialDiff(t);
    EXPECT_DOUBLE_EQ(h.full8Frac, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.low4Frac, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.zeroFrac, 1.0 / 3.0);
}

TEST(BitClass, MergeWeightsByCounts)
{
    BitClassHistogram a;
    a.zeroFrac = 1.0;
    a.total = 10;
    BitClassHistogram b;
    b.full8Frac = 1.0;
    b.total = 30;
    a.merge(b);
    EXPECT_EQ(a.total, 40);
    EXPECT_NEAR(a.zeroFrac, 0.25, 1e-12);
    EXPECT_NEAR(a.full8Frac, 0.75, 1e-12);
}

/** Property sweep: classification respects the low_bits parameter. */
class BitClassParamTest : public ::testing::TestWithParam<int>
{};

TEST_P(BitClassParamTest, BoundaryMatchesTwoComplementRange)
{
    const int bits = GetParam();
    const auto hi = static_cast<int16_t>((1 << (bits - 1)) - 1);
    const auto lo = static_cast<int16_t>(-(1 << (bits - 1)));
    EXPECT_EQ(classifyValue(hi, bits), BitClass::Low4);
    EXPECT_EQ(classifyValue(lo, bits), BitClass::Low4);
    EXPECT_EQ(classifyValue(static_cast<int16_t>(hi + 1), bits),
              BitClass::Full8);
    EXPECT_EQ(classifyValue(static_cast<int16_t>(lo - 1), bits),
              BitClass::Full8);
}

INSTANTIATE_TEST_SUITE_P(AllLowBitWidths, BitClassParamTest,
                         ::testing::Values(2, 3, 4, 5, 6));

/** Property: quantization round-trip error bounded for many shapes. */
class QuantRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(QuantRoundTripTest, ErrorWithinHalfStep)
{
    const auto [seed, sigma] = GetParam();
    Rng rng(static_cast<uint64_t>(seed));
    FloatTensor x(Shape{256});
    x.fillNormal(rng, 0.0, sigma);
    const QuantParams p = chooseDynamicScale(x);
    EXPECT_LE(maxQuantError(x, p), 0.5f * p.scale + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScales, QuantRoundTripTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.01, 1.0, 100.0)));

} // namespace
} // namespace ditto
