/**
 * @file
 * Unit tests for src/stats: similarity metrics, fidelity accounting
 * and accumulators.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/fidelity.h"
#include "stats/similarity.h"

namespace ditto {
namespace {

TEST(Fidelity, ExactMatchIsInfinitePsnrAndUnitCosine)
{
    Rng rng(11);
    FloatTensor a(Shape{1, 2, 4, 4});
    a.fillNormal(rng);
    const FidelityStats s = compareImages(a, a);
    EXPECT_TRUE(s.exact());
    EXPECT_TRUE(std::isinf(s.psnrDb));
    EXPECT_NEAR(s.cosine, 1.0, 1e-9);
}

TEST(Fidelity, KnownPsnrValue)
{
    // ref spans [0, 2] (range 2); approx off by 0.1 everywhere:
    // MSE = 0.01, PSNR = 10 log10(4 / 0.01) = 10 log10(400).
    FloatTensor ref(Shape{4}, 1.0f);
    ref.at(0) = 0.0f;
    ref.at(3) = 2.0f;
    FloatTensor approx = ref;
    for (int64_t i = 0; i < 4; ++i)
        approx.at(i) += 0.1f;
    const FidelityStats s = compareImages(ref, approx);
    EXPECT_FALSE(s.exact());
    EXPECT_NEAR(s.psnrDb, 10.0 * std::log10(400.0), 1e-3);
}

TEST(Fidelity, PsnrDecreasesWithError)
{
    Rng rng(12);
    FloatTensor ref(Shape{256});
    ref.fillNormal(rng);
    FloatTensor small = ref;
    FloatTensor big = ref;
    for (int64_t i = 0; i < 256; ++i) {
        small.at(i) += 0.01f;
        big.at(i) += 0.5f;
    }
    const FidelityStats a = compareImages(ref, small);
    const FidelityStats b = compareImages(ref, big);
    EXPECT_GT(a.psnrDb, b.psnrDb);
    EXPECT_GE(a.cosine, b.cosine);
}

TEST(Fidelity, ConstantReferenceConvention)
{
    // A constant reference has zero range: PSNR pins to 0 when the
    // approximation differs (instead of dividing by zero).
    FloatTensor ref(Shape{8}, 3.0f);
    FloatTensor approx(Shape{8}, 3.5f);
    const FidelityStats s = compareImages(ref, approx);
    EXPECT_DOUBLE_EQ(s.psnrDb, 0.0);
    // ... and still compares exactly when the bits match.
    EXPECT_TRUE(compareImages(ref, ref).exact());
}

TEST(Cosine, IdenticalVectorsGiveOne)
{
    Rng rng(1);
    FloatTensor a(Shape{64});
    a.fillNormal(rng);
    EXPECT_NEAR(cosineSimilarity(a, a), 1.0, 1e-6);
}

TEST(Cosine, OppositeVectorsGiveMinusOne)
{
    Rng rng(2);
    FloatTensor a(Shape{64});
    a.fillNormal(rng);
    FloatTensor b(Shape{64});
    for (int64_t i = 0; i < 64; ++i)
        b.at(i) = -a.at(i);
    EXPECT_NEAR(cosineSimilarity(a, b), -1.0, 1e-6);
}

TEST(Cosine, OrthogonalVectorsGiveZero)
{
    FloatTensor a(Shape{2});
    FloatTensor b(Shape{2});
    a.at(0) = 1.0f;
    b.at(1) = 1.0f;
    EXPECT_NEAR(cosineSimilarity(a, b), 0.0, 1e-9);
}

TEST(Cosine, ZeroVectorConventionReturnsOne)
{
    FloatTensor a(Shape{4}, 0.0f);
    FloatTensor b(Shape{4}, 1.0f);
    EXPECT_DOUBLE_EQ(cosineSimilarity(a, b), 1.0);
}

TEST(Cosine, ScaleInvariant)
{
    Rng rng(3);
    FloatTensor a(Shape{128});
    a.fillNormal(rng);
    FloatTensor b(Shape{128});
    for (int64_t i = 0; i < 128; ++i)
        b.at(i) = 5.0f * a.at(i);
    EXPECT_NEAR(cosineSimilarity(a, b), 1.0, 1e-6);
}

TEST(SpatialSimilarity, ConstantRowsAreFullySimilar)
{
    FloatTensor a(Shape{4, 8}, 3.0f);
    EXPECT_NEAR(spatialSimilarity(a), 1.0, 1e-9);
}

TEST(SpatialSimilarity, AlternatingSignsAreAntiSimilar)
{
    FloatTensor a(Shape{1, 64});
    for (int64_t i = 0; i < 64; ++i)
        a.at(i) = (i % 2 == 0) ? 1.0f : -1.0f;
    EXPECT_NEAR(spatialSimilarity(a), -1.0, 1e-6);
}

TEST(SpatialSimilarity, IidNoiseNearZero)
{
    Rng rng(4);
    FloatTensor a(Shape{1, 20000});
    a.fillNormal(rng);
    EXPECT_NEAR(spatialSimilarity(a), 0.0, 0.03);
}

TEST(ValueRange, MaxMinusMin)
{
    FloatTensor a(Shape{3});
    a.at(0) = -2.0f;
    a.at(1) = 0.5f;
    a.at(2) = 7.0f;
    EXPECT_DOUBLE_EQ(valueRange(a), 9.0);
}

TEST(ValueRange, DiffRangeOfIdenticalTensorsIsZero)
{
    Rng rng(5);
    FloatTensor a(Shape{32});
    a.fillNormal(rng);
    EXPECT_DOUBLE_EQ(diffValueRange(a, a), 0.0);
}

TEST(ValueRange, DiffRangeNarrowerForSimilarTensors)
{
    Rng rng(6);
    FloatTensor a(Shape{4096});
    a.fillNormal(rng, 0.0, 5.0);
    FloatTensor b(Shape{4096});
    for (int64_t i = 0; i < 4096; ++i)
        b.at(i) = a.at(i) + 0.01f * static_cast<float>(rng.normal());
    EXPECT_LT(diffValueRange(a, b), valueRange(a) / 10.0);
}

TEST(MaxAbs, KnownValues)
{
    FloatTensor a(Shape{3});
    a.at(0) = -9.0f;
    a.at(1) = 2.0f;
    a.at(2) = 4.0f;
    EXPECT_DOUBLE_EQ(maxAbs(a), 9.0);
}

TEST(Mse, ZeroForIdentical)
{
    Rng rng(7);
    FloatTensor a(Shape{32});
    a.fillNormal(rng);
    EXPECT_DOUBLE_EQ(meanSquaredError(a, a), 0.0);
}

TEST(Mse, KnownValue)
{
    FloatTensor a(Shape{2}, 0.0f);
    FloatTensor b(Shape{2});
    b.at(0) = 3.0f;
    b.at(1) = 4.0f;
    EXPECT_DOUBLE_EQ(meanSquaredError(a, b), 12.5);
}

TEST(Sqnr, InfiniteForExactMatch)
{
    Rng rng(8);
    FloatTensor a(Shape{16});
    a.fillNormal(rng);
    EXPECT_TRUE(std::isinf(sqnrDb(a, a)));
}

TEST(Sqnr, TenDbPerOrderOfMagnitude)
{
    FloatTensor ref(Shape{1000}, 1.0f);
    FloatTensor approx(Shape{1000});
    for (int64_t i = 0; i < 1000; ++i)
        approx.at(i) = 1.0f + 0.01f;
    // noise power 1e-4, signal 1 -> 40 dB.
    EXPECT_NEAR(sqnrDb(ref, approx), 40.0, 0.1);
}

TEST(RunningStats, MeanMinMax)
{
    RunningStats s;
    s.add(1.0);
    s.add(2.0);
    s.add(6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_EQ(s.count(), 3);
}

TEST(RunningStats, StddevOfConstantIsZero)
{
    RunningStats s;
    for (int i = 0; i < 5; ++i)
        s.add(4.2);
    EXPECT_NEAR(s.stddev(), 0.0, 1e-9);
}

TEST(RunningStats, StddevKnownValue)
{
    RunningStats s;
    s.add(2.0);
    s.add(4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
}

} // namespace
} // namespace ditto
