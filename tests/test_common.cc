/**
 * @file
 * Unit tests for src/common: RNG, math utilities, bisection.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/bisect.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace ditto {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextU64() == b.nextU64())
            ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(Rng, FromKeysIndependentStreams)
{
    Rng a = Rng::fromKeys(7, 1, 2, 3);
    Rng b = Rng::fromKeys(7, 1, 2, 4);
    Rng a2 = Rng::fromKeys(7, 1, 2, 3);
    EXPECT_NE(a.nextU64(), b.nextU64());
    Rng a3 = Rng::fromKeys(7, 1, 2, 3);
    EXPECT_EQ(a3.nextU64(), a2.nextU64());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, NormalMomentsApproximatelyStandard)
{
    Rng rng(6);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(8);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 5), 1);
    EXPECT_EQ(ceilDiv(int64_t{1} << 40, int64_t{2}), int64_t{1} << 39);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(10, 4), 12);
    EXPECT_EQ(roundUp(12, 4), 12);
    EXPECT_EQ(roundUp(1, 512), 512);
}

TEST(MathUtil, NearlyEqual)
{
    EXPECT_TRUE(nearlyEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(nearlyEqual(1.0, 1.1));
}

TEST(MathUtil, WithinRelative)
{
    EXPECT_TRUE(withinRelative(102.0, 100.0, 0.05));
    EXPECT_FALSE(withinRelative(110.0, 100.0, 0.05));
}

TEST(MathUtil, ClampValue)
{
    EXPECT_EQ(clampValue(5, 0, 10), 5);
    EXPECT_EQ(clampValue(-5, 0, 10), 0);
    EXPECT_EQ(clampValue(15, 0, 10), 10);
}

TEST(MathUtil, SignedBitWidthBoundaries)
{
    EXPECT_EQ(signedBitWidth(0), 0);
    EXPECT_EQ(signedBitWidth(1), 2);
    EXPECT_EQ(signedBitWidth(-1), 1);
    EXPECT_EQ(signedBitWidth(7), 4);
    EXPECT_EQ(signedBitWidth(8), 5);
    EXPECT_EQ(signedBitWidth(-8), 4);
    EXPECT_EQ(signedBitWidth(-9), 5);
    EXPECT_EQ(signedBitWidth(127), 8);
    EXPECT_EQ(signedBitWidth(-128), 8);
    EXPECT_EQ(signedBitWidth(128), 9);
}

TEST(MathUtil, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-9);
    EXPECT_NEAR(normalCdf(1.959964), 0.975, 1e-4);
    EXPECT_NEAR(normalCdf(-1.959964), 0.025, 1e-4);
}

TEST(MathUtil, NormalAbsCdfKnownValues)
{
    EXPECT_NEAR(normalAbsCdf(0.0), 0.0, 1e-12);
    EXPECT_NEAR(normalAbsCdf(1.0), 0.682689, 1e-5);
    EXPECT_NEAR(normalAbsCdf(1.959964), 0.95, 1e-4);
}

TEST(Bisect, IncreasingFunction)
{
    const double x = bisectMonotone(
        [](double v) { return v * v; }, 9.0, 0.0, 10.0);
    EXPECT_NEAR(x, 3.0, 1e-9);
}

TEST(Bisect, DecreasingFunction)
{
    const double x = bisectMonotone(
        [](double v) { return 10.0 - v; }, 4.0, 0.0, 10.0);
    EXPECT_NEAR(x, 6.0, 1e-9);
}

TEST(Bisect, TargetBelowRangeClampsToEndpoint)
{
    const double x = bisectMonotone(
        [](double v) { return v; }, -5.0, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Bisect, TargetAboveRangeClampsToEndpoint)
{
    const double x = bisectMonotone(
        [](double v) { return v; }, 50.0, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(x, 10.0);
}

TEST(Bisect, NonlinearTarget)
{
    const double x = bisectMonotone(
        [](double v) { return std::exp(v); }, 5.0, 0.0, 3.0);
    EXPECT_NEAR(x, std::log(5.0), 1e-9);
}

} // namespace
} // namespace ditto
