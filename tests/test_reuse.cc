/**
 * @file
 * Tests for the inter-request reuse cache (src/serve/reuse_cache.h):
 * prefix-key identity, cache store/lookup/eviction mechanics, bitwise
 * cold-vs-warm parity across presets, modes, batch shapes and thread
 * counts, cross-model invalidation through a shared cache, the
 * reuse fault points, the BatchDittoState backRef lifecycle, the
 * per-step rollout observer, and the metrics surface.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "runtime/compiled.h"
#include "runtime/presets.h"
#include "serve/faultpoints.h"
#include "serve/prefix_key.h"
#include "serve/reuse_cache.h"
#include "serve/server.h"

namespace ditto {
namespace {

MiniUnetConfig
smallConfig()
{
    MiniUnetConfig cfg;
    cfg.channels = 8;
    cfg.resolution = 8;
    cfg.steps = 5;
    return cfg;
}

/** Shared test model (calibration runs once per process). */
const CompiledModel &
testModel()
{
    static const CompiledModel *m = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        return new CompiledModel(compile(miniUnetSpec(smallConfig())));
    }();
    return *m;
}

void
expectBitwiseEqual(const FloatTensor &a, const FloatTensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_TRUE(a == b) << "images are not bitwise identical";
}

ReuseCacheConfig
bigCache(int checkpoint_every = 2)
{
    ReuseCacheConfig rc;
    rc.capBytes = 64ll << 20;
    rc.checkpointEvery = checkpoint_every;
    return rc;
}

ServerConfig
serverConfig(int64_t max_batch = 4, int workers = 1)
{
    ServerConfig cfg;
    cfg.maxBatch = max_batch;
    cfg.maxWaitMicros = 500;
    cfg.workers = workers;
    cfg.reuse = bigCache();
    return cfg;
}

DenoiseRequest
identityRequest(uint64_t seed, uint64_t conditioning, RunMode mode,
                int steps)
{
    DenoiseRequest req;
    req.seed = seed;
    req.conditioning = conditioning;
    req.mode = mode;
    req.steps = steps;
    return req;
}

/** Restore a pristine fault registry however a test exits. */
struct FaultGuard
{
    ~FaultGuard() { faults::reset(); }
};

TEST(PrefixKeyTest, IdentityAndPolicySensitivity)
{
    const CompiledModel &m = testModel();
    const PrefixBase a =
        makePrefixBase(m, 7, 11, RunMode::QuantDitto);
    EXPECT_EQ(a, makePrefixBase(m, 7, 11, RunMode::QuantDitto));
    EXPECT_EQ(a.hash(),
              makePrefixBase(m, 7, 11, RunMode::QuantDitto).hash());

    // Any component change breaks identity: seed, conditioning, mode.
    EXPECT_FALSE(a == makePrefixBase(m, 8, 11, RunMode::QuantDitto));
    EXPECT_FALSE(a == makePrefixBase(m, 7, 12, RunMode::QuantDitto));
    EXPECT_FALSE(a == makePrefixBase(m, 7, 11, RunMode::QuantDirect));

    // A different model (different weights -> different spec hash)
    // never shares identity.
    setenv("DITTO_NO_CACHE", "1", 0);
    MiniUnetConfig other = smallConfig();
    other.seed = 4242;
    const CompiledModel m2 = compile(miniUnetSpec(other));
    EXPECT_FALSE(a == makePrefixBase(m2, 7, 11, RunMode::QuantDitto));

    // ApproxDitto folds the resolved skip policy into the digest; the
    // exact modes ignore it.
    CompiledModel m3 = compile(miniUnetSpec(smallConfig()));
    const PrefixBase approx_a =
        makePrefixBase(m3, 7, 11, RunMode::ApproxDitto);
    const PrefixBase exact_a =
        makePrefixBase(m3, 7, 11, RunMode::QuantDitto);
    m3.setApproxPolicy(0.25, 2);
    EXPECT_FALSE(approx_a ==
                 makePrefixBase(m3, 7, 11, RunMode::ApproxDitto));
    EXPECT_EQ(exact_a, makePrefixBase(m3, 7, 11, RunMode::QuantDitto));

    // PrefixKey pins the depth.
    const PrefixKey k2{a, 2}, k4{a, 4};
    EXPECT_FALSE(k2 == k4);
    EXPECT_NE(k2.hash(), k4.hash());
}

TEST(ReuseCacheTest, LookupReturnsDeepestPrefix)
{
    ReuseCache cache(bigCache());
    const PrefixBase base{1, 2, 3, RunMode::QuantDitto};
    const FloatTensor img(Shape{1, 2, 4, 4});
    CompiledModel::BatchDittoState::SlabState state;
    cache.store(PrefixKey{base, 2}, img, state, false);
    cache.store(PrefixKey{base, 4}, img, state, false);

    ReuseCache::EntryPtr e = cache.lookup(base, 5);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->key.steps, 4);
    e = cache.lookup(base, 3);
    ASSERT_TRUE(e);
    EXPECT_EQ(e->key.steps, 2);
    EXPECT_FALSE(cache.lookup(base, 1));

    PrefixBase other = base;
    other.seed = 99;
    EXPECT_FALSE(cache.lookup(other, 5));

    const ReuseCacheStats st = cache.stats();
    EXPECT_EQ(st.stores, 2u);
    EXPECT_EQ(st.entries, 2u);
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_DOUBLE_EQ(st.hitRate(), 0.5);

    // Re-storing a resident key refreshes instead of duplicating.
    cache.store(PrefixKey{base, 4}, img, state, false);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().stores, 2u);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_FALSE(cache.lookup(base, 5));
}

TEST(ReuseCacheTest, EvictionUnderBytePressure)
{
    // Each entry is ~256 fixed + 128 floats * 4 = ~768 bytes; cap at
    // ~2 entries worth and store five distinct identities.
    ReuseCacheConfig rc;
    rc.capBytes = 1700;
    rc.checkpointEvery = 1;
    ReuseCache cache(rc);
    const FloatTensor img(Shape{1, 2, 8, 8});
    CompiledModel::BatchDittoState::SlabState state;
    for (uint64_t s = 0; s < 5; ++s)
        cache.store(PrefixKey{PrefixBase{1, s, 0, RunMode::QuantDitto},
                              2},
                    img, state, false);
    const ReuseCacheStats st = cache.stats();
    EXPECT_GT(st.evictions, 0u);
    EXPECT_LE(st.bytes, static_cast<uint64_t>(rc.capBytes));
    EXPECT_EQ(st.entries + st.evictions, 5u);

    // LRU order: the newest identity survives, the oldest are gone.
    EXPECT_TRUE(
        cache.lookup(PrefixBase{1, 4, 0, RunMode::QuantDitto}, 5));
    EXPECT_FALSE(
        cache.lookup(PrefixBase{1, 0, 0, RunMode::QuantDitto}, 5));

    // An entry alone above the budget is dropped, never pinned.
    ReuseCacheConfig tiny;
    tiny.capBytes = 64;
    ReuseCache small(tiny);
    small.store(PrefixKey{PrefixBase{2, 0, 0, RunMode::QuantDitto}, 2},
                FloatTensor(Shape{1, 2, 8, 8}), state, false);
    EXPECT_EQ(small.stats().entries, 0u);
    EXPECT_EQ(small.stats().evictions, 1u);
}

/** Warm duplicates against one preset spec: bitwise vs cold rollout. */
void
runWarmColdParity(const ModelSpec &spec, RunMode mode, int steps)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    const CompiledModel model = compile(spec);
    const uint64_t seed = 31, cond = 77;
    const RolloutResult ref =
        model.rollout(mode, model.requestNoise(seed), steps);

    DenoiseServer server(model, serverConfig());
    // Prime: one cold request leaves checkpoints at steps 2 and 4.
    const DenoiseResult cold = server.wait(
        server.submit(identityRequest(seed, cond, mode, steps)));
    ASSERT_EQ(cold.status, RequestStatus::Done);
    EXPECT_EQ(cold.reusedSteps, 0);
    expectBitwiseEqual(ref.finalImage, cold.image);

    // Three concurrent duplicates share one batch (batch shape 3) and
    // all warm-start from the deepest prefix below their step count.
    std::vector<uint64_t> ids;
    for (int i = 0; i < 3; ++i)
        ids.push_back(
            server.submit(identityRequest(seed, cond, mode, steps)));
    for (uint64_t id : ids) {
        const DenoiseResult warm = server.wait(id);
        ASSERT_EQ(warm.status, RequestStatus::Done);
        EXPECT_EQ(warm.reusedSteps, 4);
        EXPECT_EQ(warm.steps, steps);
        expectBitwiseEqual(ref.finalImage, warm.image);
    }
    const ServeMetrics sm = server.metrics();
    EXPECT_GE(sm.reuseHits, 3u);
    EXPECT_GE(sm.reuseStepsSaved, 12u);
}

TEST(WarmColdParity, MiniUnetExactModes)
{
    for (RunMode mode : {RunMode::QuantDitto, RunMode::QuantDirect})
        runWarmColdParity(miniUnetSpec(smallConfig()), mode, 5);
}

TEST(WarmColdParity, DeepUnetExactModes)
{
    DeepUnetConfig cfg;
    cfg.baseChannels = 8;
    cfg.resolution = 8;
    cfg.steps = 5;
    for (RunMode mode : {RunMode::QuantDitto, RunMode::QuantDirect})
        runWarmColdParity(deepUnetSpec(cfg), mode, 5);
}

TEST(WarmColdParity, TransformerPresets)
{
    DitBlockConfig dit;
    dit.embedDim = 16;
    dit.resolution = 4;
    dit.steps = 5;
    runWarmColdParity(ditBlockSpec(dit), RunMode::QuantDitto, 5);

    MhsaBlockConfig mhsa;
    mhsa.embedDim = 16;
    mhsa.heads = 2;
    mhsa.resolution = 4;
    mhsa.steps = 5;
    runWarmColdParity(mhsaBlockSpec(mhsa), RunMode::QuantDitto, 5);

    DitAdaLnConfig ada;
    ada.embedDim = 16;
    ada.resolution = 4;
    ada.steps = 5;
    runWarmColdParity(ditAdaLnSpec(ada), RunMode::QuantDitto, 5);
}

TEST(WarmColdParity, ThreadCountInvariant)
{
    // The warm trajectory must be bitwise stable across kernel thread
    // counts, like everything else in the runtime.
    setThreadCount(1);
    runWarmColdParity(miniUnetSpec(smallConfig()),
                      RunMode::QuantDitto, 5);
    setThreadCount(3);
    runWarmColdParity(miniUnetSpec(smallConfig()),
                      RunMode::QuantDitto, 5);
    setThreadCount(1);
}

TEST(WarmColdParity, ApproxDittoCarriesSkipState)
{
    // Aggressive skip policy: the warm start must replay the cold
    // trajectory's skip decisions exactly, which requires the cached
    // slab state (codes, outputs, consecutive-skip counters).
    setenv("DITTO_NO_CACHE", "1", 0);
    CompiledModel model = compile(miniUnetSpec(smallConfig()));
    model.setApproxPolicy(1.0, 3);
    const uint64_t seed = 57, cond = 3;
    const RolloutResult ref = model.rollout(
        RunMode::ApproxDitto, model.requestNoise(seed), 5);

    DenoiseServer server(model, serverConfig());
    const DenoiseResult cold = server.wait(server.submit(
        identityRequest(seed, cond, RunMode::ApproxDitto, 5)));
    expectBitwiseEqual(ref.finalImage, cold.image);
    const DenoiseResult warm = server.wait(server.submit(
        identityRequest(seed, cond, RunMode::ApproxDitto, 5)));
    ASSERT_EQ(warm.status, RequestStatus::Done);
    EXPECT_EQ(warm.reusedSteps, 4);
    expectBitwiseEqual(ref.finalImage, warm.image);
}

TEST(WarmColdParity, DifferentStepCountsSharePrefixes)
{
    // The step update has no timestep embedding, so a 4-step request's
    // checkpoints warm-start a 6-step request of the same identity.
    const CompiledModel &model = testModel();
    const uint64_t seed = 91, cond = 5;
    DenoiseServer server(model, serverConfig());
    const DenoiseResult a = server.wait(server.submit(
        identityRequest(seed, cond, RunMode::QuantDitto, 4)));
    ASSERT_EQ(a.status, RequestStatus::Done);
    const DenoiseResult b = server.wait(server.submit(
        identityRequest(seed, cond, RunMode::QuantDitto, 6)));
    ASSERT_EQ(b.status, RequestStatus::Done);
    EXPECT_EQ(b.reusedSteps, 4);
    EXPECT_EQ(b.steps, 6);
    const RolloutResult ref = model.rollout(
        RunMode::QuantDitto, model.requestNoise(seed), 6);
    expectBitwiseEqual(ref.finalImage, b.image);
}

TEST(ReuseServer, ConcurrentHitsStayBitwise)
{
    const CompiledModel &model = testModel();
    const uint64_t seed = 121, cond = 9;
    const RolloutResult ref = model.rollout(
        RunMode::QuantDitto, model.requestNoise(seed), 5);
    DenoiseServer server(model, serverConfig(/*max_batch=*/4,
                                             /*workers=*/2));
    const DenoiseResult cold = server.wait(server.submit(
        identityRequest(seed, cond, RunMode::QuantDitto, 5)));
    expectBitwiseEqual(ref.finalImage, cold.image);
    std::vector<uint64_t> ids;
    for (int i = 0; i < 10; ++i)
        ids.push_back(server.submit(
            identityRequest(seed, cond, RunMode::QuantDitto, 5)));
    for (uint64_t id : ids) {
        const DenoiseResult res = server.wait(id);
        ASSERT_EQ(res.status, RequestStatus::Done);
        expectBitwiseEqual(ref.finalImage, res.image);
    }
    EXPECT_GE(server.metrics().reuseHits, 10u);
}

TEST(ReuseServer, SharedCacheNeverCrossesModels)
{
    // Two different models share one cache object; the prefix key's
    // model digest keeps their entries apart — a spec or calibration
    // change can never serve a stale prefix.
    setenv("DITTO_NO_CACHE", "1", 0);
    const CompiledModel m1 = compile(miniUnetSpec(smallConfig()));
    MiniUnetConfig other = smallConfig();
    other.seed = 4242;
    const CompiledModel m2 = compile(miniUnetSpec(other));
    auto cache = std::make_shared<ReuseCache>(bigCache());
    const uint64_t seed = 33, cond = 1;

    ServerConfig cfg = serverConfig();
    {
        DenoiseServer s1(m1, cfg, cache);
        const DenoiseResult r = s1.wait(s1.submit(
            identityRequest(seed, cond, RunMode::QuantDitto, 5)));
        ASSERT_EQ(r.status, RequestStatus::Done);
    }
    EXPECT_GT(cache->stats().entries, 0u);
    {
        DenoiseServer s2(m2, cfg, cache);
        const DenoiseResult r = s2.wait(s2.submit(
            identityRequest(seed, cond, RunMode::QuantDitto, 5)));
        ASSERT_EQ(r.status, RequestStatus::Done);
        EXPECT_EQ(r.reusedSteps, 0); // same (seed, cond), other model
        expectBitwiseEqual(
            m2.rollout(RunMode::QuantDitto, m2.requestNoise(seed), 5)
                .finalImage,
            r.image);
    }
    // Explicit invalidation drops residency but keeps the counters.
    const uint64_t stores_before = cache->stats().stores;
    cache->clear();
    EXPECT_EQ(cache->stats().entries, 0u);
    EXPECT_EQ(cache->stats().stores, stores_before);
}

TEST(ReuseFaults, StoreFailureMeansColdMisses)
{
    FaultGuard guard;
    faults::configure("reuse_store:fail:every=1", 0);
    const CompiledModel &model = testModel();
    DenoiseServer server(model, serverConfig());
    const uint64_t seed = 141, cond = 2;
    const RolloutResult ref = model.rollout(
        RunMode::QuantDitto, model.requestNoise(seed), 5);
    for (int i = 0; i < 2; ++i) {
        const DenoiseResult r = server.wait(server.submit(
            identityRequest(seed, cond, RunMode::QuantDitto, 5)));
        ASSERT_EQ(r.status, RequestStatus::Done);
        EXPECT_EQ(r.reusedSteps, 0); // nothing ever stored
        expectBitwiseEqual(ref.finalImage, r.image);
    }
    const ServeMetrics sm = server.metrics();
    EXPECT_EQ(sm.reuseStores, 0u);
    EXPECT_EQ(sm.reuseHits, 0u);
    EXPECT_GT(faults::hitCount(faults::Point::ReuseStore), 0u);
}

TEST(ReuseFaults, InstallFailureForcesColdStart)
{
    FaultGuard guard;
    faults::configure("reuse_install:fail:every=1", 0);
    const CompiledModel &model = testModel();
    DenoiseServer server(model, serverConfig());
    const uint64_t seed = 151, cond = 6;
    const RolloutResult ref = model.rollout(
        RunMode::QuantDitto, model.requestNoise(seed), 5);
    for (int i = 0; i < 2; ++i) {
        const DenoiseResult r = server.wait(server.submit(
            identityRequest(seed, cond, RunMode::QuantDitto, 5)));
        ASSERT_EQ(r.status, RequestStatus::Done);
        EXPECT_EQ(r.reusedSteps, 0); // lookup skipped, stores fine
        expectBitwiseEqual(ref.finalImage, r.image);
    }
    const ServeMetrics sm = server.metrics();
    EXPECT_GT(sm.reuseStores, 0u);
    EXPECT_EQ(sm.reuseHits, 0u);
    EXPECT_GT(faults::hitCount(faults::Point::ReuseInstall), 0u);
}

TEST(BackRefRegression, SlabRecycleDropsBackReference)
{
    // resetSlab / removeSlab must sever whatever shared owner an
    // installed slab was holding (e.g. a reuse-cache entry), or a
    // recycled slot pins evicted entries forever.
    const CompiledModel &model = testModel();
    CompiledModel::BatchDittoState st;
    st.appendSlabs(1);
    FloatTensor x = model.requestNoise(5);
    std::vector<OpCounts> counts(1);
    (void)model.forwardBatch(x, RunMode::QuantDitto, &st,
                             counts.data());

    CompiledModel::BatchDittoState::SlabState slab = st.extractSlab(0);
    EXPECT_EQ(slab.backRef, nullptr); // extracted copies own buffers

    auto owner = std::make_shared<int>(7);
    slab.backRef = owner;
    st.installSlab(0, slab);
    EXPECT_EQ(owner.use_count(), 3); // owner + slab copy + batch state

    st.resetSlab(0);
    EXPECT_EQ(owner.use_count(), 2); // recycle severed the reference

    st.installSlab(0, slab);
    EXPECT_EQ(owner.use_count(), 3);
    st.removeSlab(0);
    EXPECT_EQ(owner.use_count(), 2);

    // Append/remove around an installed slab keeps neighbors intact.
    st.appendSlabs(2);
    st.installSlab(1, slab);
    EXPECT_EQ(owner.use_count(), 3);
    st.removeSlab(0);
    EXPECT_EQ(owner.use_count(), 3); // neighbor's reference moved down
    st.removeSlab(0);
    EXPECT_EQ(owner.use_count(), 2);
}

TEST(ObserverHook, StepObserverSeesEveryStep)
{
    const CompiledModel &model = testModel();
    const FloatTensor noise = model.requestNoise(17);
    std::vector<int> seen;
    FloatTensor last;
    bool primed_after_first = false;
    const RolloutResult r = model.rollout(
        RunMode::QuantDitto, noise, 5,
        [&](int steps_done, const FloatTensor &x,
            const CompiledModel::DittoState &state) {
            seen.push_back(steps_done);
            last = x;
            if (steps_done == 1)
                primed_after_first = state.primed;
        });
    ASSERT_EQ(seen.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(seen[static_cast<size_t>(i)], i + 1);
    EXPECT_TRUE(primed_after_first);
    expectBitwiseEqual(r.finalImage, last);
}

TEST(MetricsSurface, ReuseCountersInJson)
{
    const CompiledModel &model = testModel();
    DenoiseServer server(model, serverConfig());
    const uint64_t seed = 161, cond = 8;
    (void)server.wait(server.submit(
        identityRequest(seed, cond, RunMode::QuantDitto, 5)));
    (void)server.wait(server.submit(
        identityRequest(seed, cond, RunMode::QuantDitto, 5)));
    const ServeMetrics sm = server.metrics();
    EXPECT_GT(sm.reuseHits, 0u);
    EXPECT_GT(sm.reuseStores, 0u);
    EXPECT_GT(sm.reuseStepsSaved, 0u);
    EXPECT_GT(sm.reuseHitRate(), 0.0);
    const std::string json = server.metricsJson();
    EXPECT_NE(json.find("\"reuse\":{\"hits\":"), std::string::npos);
    EXPECT_NE(json.find("\"steps_saved\":"), std::string::npos);
    EXPECT_NE(json.find("\"hit_rate\":"), std::string::npos);

    // Disabled cache: the object is still emitted, all zeros.
    ServerConfig off = serverConfig();
    off.reuse = ReuseCacheConfig{};
    DenoiseServer coldServer(model, off);
    EXPECT_EQ(coldServer.reuseCache(), nullptr);
    const std::string off_json = coldServer.metricsJson();
    EXPECT_NE(off_json.find("\"reuse\":{\"hits\":0,\"misses\":0"),
              std::string::npos);
}

} // namespace
} // namespace ditto
