/**
 * @file
 * Graph runtime tests: the golden parity suite (compiled MiniUnet ==
 * hand-wired MiniUnet, bitwise, across modes / batch sizes / thread
 * counts / mixed-mode serving), the dependency-analysis skip proof,
 * the two new executable specs end to end (standalone and through
 * DenoiseServer), API shape validation, and the env-knob registry.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/parallel.h"
#include "core/legacy_unet.h"
#include "core/mini_unet.h"
#include "runtime/compiled.h"
#include "runtime/presets.h"
#include "serve/server.h"
#include "tensor/slab.h"

namespace ditto {
namespace {

MiniUnetConfig
parityConfig()
{
    setenv("DITTO_NO_CACHE", "1", 0);
    MiniUnetConfig cfg;
    cfg.channels = 8;
    cfg.resolution = 8;
    cfg.steps = 5;
    return cfg;
}

/** Both implementations of the same model, built once. */
struct ParityPair
{
    HandWiredMiniUnet legacy;
    MiniUnet compiled;
    explicit ParityPair(const MiniUnetConfig &cfg)
        : legacy(cfg), compiled(cfg)
    {}
};

const ParityPair &
parityPair()
{
    static const ParityPair *pair = new ParityPair(parityConfig());
    return *pair;
}

void
expectRolloutParity(const RolloutResult &want, const RolloutResult &got)
{
    EXPECT_TRUE(want.finalImage == got.finalImage);
    EXPECT_EQ(want.totalMacsPerStep, got.totalMacsPerStep);
    // The multiplier-lane tallies fall out of the same probes either
    // way; only the new diff-calc/summation bookkeeping may differ
    // (the compiled path skips work the hand-wired path performs).
    EXPECT_EQ(want.dittoOps.zeroSkipped, got.dittoOps.zeroSkipped);
    EXPECT_EQ(want.dittoOps.low4, got.dittoOps.low4);
    EXPECT_EQ(want.dittoOps.full8, got.dittoOps.full8);
}

TEST(GoldenParity, RolloutAllModes)
{
    const ParityPair &p = parityPair();
    for (RunMode mode :
         {RunMode::Fp32, RunMode::QuantDirect, RunMode::QuantDitto}) {
        expectRolloutParity(p.legacy.rollout(mode),
                            p.compiled.rollout(mode));
    }
}

TEST(GoldenParity, RequestNoiseAndCustomSteps)
{
    const ParityPair &p = parityPair();
    for (uint64_t seed : {7ull, 1234ull}) {
        const FloatTensor noise = p.legacy.requestNoise(seed);
        EXPECT_TRUE(noise == p.compiled.requestNoise(seed));
        for (int steps : {1, 3, 7}) {
            for (RunMode mode :
                 {RunMode::QuantDirect, RunMode::QuantDitto}) {
                expectRolloutParity(
                    p.legacy.rollout(mode, noise, steps),
                    p.compiled.rollout(mode, noise, steps));
            }
        }
    }
}

TEST(GoldenParity, BatchedRollouts)
{
    const ParityPair &p = parityPair();
    for (int64_t batch : {1, 3, 4}) {
        std::vector<FloatTensor> noises;
        for (int64_t b = 0; b < batch; ++b)
            noises.push_back(
                p.legacy.requestNoise(static_cast<uint64_t>(50 + b)));
        for (RunMode mode :
             {RunMode::QuantDirect, RunMode::QuantDitto}) {
            const std::vector<RolloutResult> want =
                p.legacy.rolloutBatch(mode, noises);
            const std::vector<RolloutResult> got =
                p.compiled.rolloutBatch(mode, noises);
            ASSERT_EQ(want.size(), got.size());
            for (size_t i = 0; i < want.size(); ++i)
                expectRolloutParity(want[i], got[i]);
        }
    }
}

TEST(GoldenParity, ThreadCountInvariance)
{
    const ParityPair &p = parityPair();
    setThreadCount(1);
    const RolloutResult one = p.compiled.rollout(RunMode::QuantDitto);
    setThreadCount(3);
    const RolloutResult three = p.compiled.rollout(RunMode::QuantDitto);
    const RolloutResult legacy = p.legacy.rollout(RunMode::QuantDitto);
    setThreadCount(1);
    EXPECT_TRUE(one.finalImage == three.finalImage);
    EXPECT_TRUE(one.finalImage == legacy.finalImage);
}

TEST(GoldenParity, MixedModeServingMatchesHandWired)
{
    const ParityPair &p = parityPair();
    ServerConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxWaitMicros = 1000;
    cfg.workers = 1;
    DenoiseServer server(p.compiled.compiled(), cfg);
    std::vector<DenoiseRequest> reqs;
    for (int i = 0; i < 8; ++i) {
        DenoiseRequest req;
        req.seed = 900 + static_cast<uint64_t>(i);
        req.steps = 3 + i % 3;
        req.mode =
            i % 3 == 2 ? RunMode::QuantDirect : RunMode::QuantDitto;
        reqs.push_back(req);
    }
    std::vector<uint64_t> ids;
    for (const DenoiseRequest &req : reqs)
        ids.push_back(server.submit(req));
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RolloutResult want = p.legacy.rollout(
            reqs[i].mode, p.legacy.requestNoise(reqs[i].seed),
            reqs[i].steps);
        EXPECT_TRUE(want.finalImage == res.image)
            << "request " << i << " diverged from the hand-wired path";
    }
}

TEST(GoldenParity, MiniUnetSpecUsesTheDependencyAnalysis)
{
    const ParityPair &p = parityPair();
    // Weight-stationary hand-overs: PV -> proj, crossQ -> crossQK,
    // crossPV -> crossOut. Dynamic-attention operand hand-overs: the
    // q/k/v convolutions feed the QK/PV operands their requantized
    // code diffs directly (and skip their float materialization).
    EXPECT_EQ(p.compiled.compiled().numDiffBypassNodes(), 6);
    EXPECT_EQ(p.compiled.compiled().numSumSkipNodes(), 6);
}

/** input -> tokens -> fc1 -> fc2 -> fc3 -> nchw: a diff-transparent
 *  chain whose interior boundaries the dependency analysis elides. */
ModelSpec
fcChainSpec()
{
    const int64_t res = 4;
    const int64_t c = 6;
    const int64_t f = 12;
    GraphBuilder b("fc_chain");
    b.setSeed(11);
    b.setSteps(4);
    const int x = b.input(c, res);
    const int tok = b.nchwToTokens("tok", x);
    const int fc1 = b.fc("fc1", tok, f, b.newScale());
    const int fc2 = b.fc("fc2", fc1, f, b.newScale());
    const int fc3 = b.fc("fc3", fc2, c, b.newScale());
    b.tokensToNchw("out", fc3, res, res);
    return b.build();
}

TEST(DependencySkip, VerdictsOnTransparentChain)
{
    const ModelSpec spec = fcChainSpec();
    const ModelGraph graph = spec.toGraph();
    const std::vector<LayerDependency> deps =
        graph.analyzeDependencies();
    const int fc1 = graph.findLayer("fc1");
    const int fc2 = graph.findLayer("fc2");
    const int fc3 = graph.findLayer("fc3");
    ASSERT_TRUE(fc1 >= 0 && fc2 >= 0 && fc3 >= 0);
    // fc1 reads the graph input: difference calculation required; its
    // consumer is fc2, so no summation. Interior fc2 needs neither.
    // fc3 feeds the graph output: summation required.
    EXPECT_TRUE(deps[fc1].diffCalcNeeded);
    EXPECT_FALSE(deps[fc1].summationNeeded);
    EXPECT_FALSE(deps[fc2].diffCalcNeeded);
    EXPECT_FALSE(deps[fc2].summationNeeded);
    EXPECT_FALSE(deps[fc3].diffCalcNeeded);
    EXPECT_TRUE(deps[fc3].summationNeeded);
}

TEST(DependencySkip, ProvablySkipsEncodeAndSummationWork)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    const ModelSpec spec = fcChainSpec();
    CompileOptions with;
    with.policy = DiffPolicy::ForceDiff;
    CompileOptions without = with;
    without.useDependencyAnalysis = false;
    const CompiledModel analyzed = compile(spec, with);
    const CompiledModel naive = compile(spec, without);

    EXPECT_EQ(analyzed.numDiffBypassNodes(), 2); // fc2, fc3
    EXPECT_EQ(analyzed.numSumSkipNodes(), 2);    // fc1, fc2
    EXPECT_EQ(naive.numDiffBypassNodes(), 0);

    const RolloutResult a = analyzed.rollout(RunMode::QuantDitto);
    const RolloutResult n = naive.rollout(RunMode::QuantDitto);
    const RolloutResult d = analyzed.rollout(RunMode::QuantDirect);

    // The rewiring is bitwise neutral...
    EXPECT_TRUE(a.finalImage == n.finalImage);
    EXPECT_TRUE(a.finalImage == d.finalImage);
    EXPECT_EQ(a.dittoOps.zeroSkipped, n.dittoOps.zeroSkipped);
    EXPECT_EQ(a.dittoOps.low4, n.dittoOps.low4);
    EXPECT_EQ(a.dittoOps.full8, n.dittoOps.full8);

    // ...but provably skips the work: with the analysis only fc1
    // subtracts against stored input codes and only fc3 materializes
    // full values; without it every layer does both, every primed
    // step.
    const int64_t primed = spec.steps - 1;
    const int64_t tokens = 4 * 4;
    const int64_t c = 6, f = 12;
    EXPECT_EQ(a.dittoOps.diffCalcElems, primed * tokens * c);
    EXPECT_EQ(a.dittoOps.summationElems, primed * tokens * c);
    EXPECT_EQ(n.dittoOps.diffCalcElems,
              primed * tokens * (c + f + f));
    EXPECT_EQ(n.dittoOps.summationElems,
              primed * tokens * (f + f + c));
}

TEST(DependencySkip, BatchedChainMatchesSequential)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    CompileOptions opts;
    opts.policy = DiffPolicy::ForceDiff;
    const CompiledModel model = compile(fcChainSpec(), opts);
    std::vector<FloatTensor> noises;
    for (uint64_t s = 0; s < 3; ++s)
        noises.push_back(model.requestNoise(70 + s));
    const std::vector<RolloutResult> batched =
        model.rolloutBatch(RunMode::QuantDitto, noises);
    for (size_t i = 0; i < noises.size(); ++i) {
        const RolloutResult solo =
            model.rollout(RunMode::QuantDitto, noises[i]);
        EXPECT_TRUE(solo.finalImage == batched[i].finalImage);
        EXPECT_EQ(solo.dittoOps.diffCalcElems,
                  batched[i].dittoOps.diffCalcElems);
        EXPECT_EQ(solo.dittoOps.summationElems,
                  batched[i].dittoOps.summationElems);
    }
}

// ---- Junction requant-delta algebra ----------------------------------

/** Find a node report by name; fails the test when absent. */
CompiledModel::NodeReport
reportOf(const CompiledModel &m, const std::string &name)
{
    for (const CompiledModel::NodeReport &r : m.nodeReports())
        if (r.name == name)
            return r;
    ADD_FAILURE() << "no node named " << name;
    return {};
}

/**
 * Compile with and without the analysis (ForceDiff so Defo reversion
 * never hides a broken plan) and assert bitwise identity in every
 * mode, batched and single, plus identical multiplier-lane tallies.
 * Returns {analyzed, naive} rollout results for count assertions.
 */
std::pair<RolloutResult, RolloutResult>
expectJunctionBitwise(const ModelSpec &spec)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    CompileOptions with;
    with.policy = DiffPolicy::ForceDiff;
    CompileOptions without = with;
    without.useDependencyAnalysis = false;
    const CompiledModel analyzed = compile(spec, with);
    const CompiledModel naive = compile(spec, without);

    for (RunMode mode :
         {RunMode::Fp32, RunMode::QuantDirect, RunMode::QuantDitto}) {
        const RolloutResult a = analyzed.rollout(mode);
        const RolloutResult n = naive.rollout(mode);
        EXPECT_TRUE(a.finalImage == n.finalImage)
            << spec.name << " diverged in mode "
            << static_cast<int>(mode);
        EXPECT_EQ(a.dittoOps.zeroSkipped, n.dittoOps.zeroSkipped);
        EXPECT_EQ(a.dittoOps.low4, n.dittoOps.low4);
        EXPECT_EQ(a.dittoOps.full8, n.dittoOps.full8);
    }
    for (int64_t batch : {1, 3, 4}) {
        std::vector<FloatTensor> noises;
        for (int64_t b = 0; b < batch; ++b)
            noises.push_back(
                analyzed.requestNoise(static_cast<uint64_t>(7 + b)));
        for (RunMode mode :
             {RunMode::QuantDirect, RunMode::QuantDitto}) {
            const std::vector<RolloutResult> a =
                analyzed.rolloutBatch(mode, noises);
            const std::vector<RolloutResult> n =
                naive.rolloutBatch(mode, noises);
            for (size_t i = 0; i < a.size(); ++i)
                EXPECT_TRUE(a[i].finalImage == n[i].finalImage)
                    << spec.name << " batched slab " << i
                    << " diverged";
        }
    }
    return {analyzed.rollout(RunMode::QuantDitto),
            naive.rollout(RunMode::QuantDitto)};
}

/**
 * Two convolutions with *different* quantization scales (distinct
 * activation points, distinct weight draws) feeding an Add junction
 * consumed by a third convolution — the minimal mismatched-scale
 * requant-delta fold. A GroupNorm head keeps the consumer
 * summation-live.
 */
ModelSpec
addJunctionSpec()
{
    GraphBuilder b("add_junction");
    b.setSeed(5);
    b.setSteps(5);
    const int x = b.input(4, 6);
    const int a = b.conv2d("convA", x, 6, 3, 1, 1, b.newScale());
    const int c = b.conv2d("convB", x, 6, 1, 1, 0, b.newScale());
    const int j = b.add("junction", a, c);
    const int f = b.conv2d("convC", j, 6, 3, 1, 1, b.newScale());
    const int g = b.groupNorm("gn", f, 2);
    const int s = b.silu("silu", g);
    b.conv2d("conv_out", s, 4, 3, 1, 1, b.newScale());
    return b.build();
}

TEST(JunctionAlgebra, MismatchedProducerScalesOnAdd)
{
    const ModelSpec spec = addJunctionSpec();
    auto [a, n] = expectJunctionBitwise(spec);

    setenv("DITTO_NO_CACHE", "1", 0);
    const CompiledModel m = compile(spec);
    const CompiledModel::NodeReport convC = reportOf(m, "convC");
    EXPECT_TRUE(convC.junction);
    EXPECT_TRUE(convC.diffBypass);
    EXPECT_TRUE(reportOf(m, "convA").sumSkip);
    EXPECT_TRUE(reportOf(m, "convB").sumSkip);
    EXPECT_TRUE(reportOf(m, "junction").deadStructural);

    // Exact work deltas: convC's diff-calc (6ch x 6x6 input) is folded
    // away; convA/convB (6ch x 6x6 outputs) never materialize floats.
    const int64_t primed = spec.steps - 1;
    const int64_t plane = 6 * 6;
    EXPECT_EQ(n.dittoOps.diffCalcElems - a.dittoOps.diffCalcElems,
              primed * 6 * plane);
    EXPECT_EQ(n.dittoOps.summationElems - a.dittoOps.summationElems,
              primed * 2 * 6 * plane);
}

/** Concat junction whose 5 + 3 channel split lands the region seams
 *  off every panel boundary (kDiffPanelK = 64; regions are 180 and
 *  108 elements per slab). */
ModelSpec
concatJunctionSpec()
{
    GraphBuilder b("concat_junction");
    b.setSeed(6);
    b.setSteps(5);
    const int x = b.input(4, 6);
    const int a = b.conv2d("convA", x, 5, 3, 1, 1, b.newScale());
    const int c = b.conv2d("convB", x, 3, 1, 1, 0, b.newScale());
    const int j = b.concat("junction", a, c);
    const int f = b.conv2d("convC", j, 6, 3, 1, 1, b.newScale());
    const int g = b.groupNorm("gn", f, 2);
    const int s = b.silu("silu", g);
    b.conv2d("conv_out", s, 4, 3, 1, 1, b.newScale());
    return b.build();
}

TEST(JunctionAlgebra, ConcatWithOddPanelBoundarySplit)
{
    const ModelSpec spec = concatJunctionSpec();
    expectJunctionBitwise(spec);
    setenv("DITTO_NO_CACHE", "1", 0);
    const CompiledModel m = compile(spec);
    EXPECT_TRUE(reportOf(m, "convC").junction);
    EXPECT_TRUE(reportOf(m, "convA").sumSkip);
    EXPECT_TRUE(reportOf(m, "convB").sumSkip);
}

/** Junction feeding a consumer whose own summation is skippable: the
 *  fold target convC hands its output straight on to convD. */
ModelSpec
chainedJunctionSpec()
{
    GraphBuilder b("chained_junction");
    b.setSeed(7);
    b.setSteps(5);
    const int x = b.input(4, 6);
    const int a = b.conv2d("convA", x, 6, 3, 1, 1, b.newScale());
    const int c = b.conv2d("convB", x, 6, 1, 1, 0, b.newScale());
    const int j = b.add("junction", a, c);
    const int f = b.conv2d("convC", j, 6, 1, 1, 0, b.newScale());
    const int f2 = b.conv2d("convD", f, 6, 1, 1, 0, b.newScale());
    const int g = b.groupNorm("gn", f2, 2);
    const int s = b.silu("silu", g);
    b.conv2d("conv_out", s, 4, 3, 1, 1, b.newScale());
    return b.build();
}

TEST(JunctionAlgebra, JunctionFeedsSummationSkippableConsumer)
{
    const ModelSpec spec = chainedJunctionSpec();
    expectJunctionBitwise(spec);
    setenv("DITTO_NO_CACHE", "1", 0);
    const CompiledModel m = compile(spec);
    const CompiledModel::NodeReport convC = reportOf(m, "convC");
    // convC folds the junction AND hands its own output to convD
    // without ever materializing floats.
    EXPECT_TRUE(convC.junction);
    EXPECT_TRUE(convC.sumSkip);
    EXPECT_TRUE(convC.emitsPayload);
    EXPECT_TRUE(reportOf(m, "convD").diffBypass);
}

TEST(JunctionAlgebra, ThreadCountInvariance)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    CompileOptions opts;
    opts.policy = DiffPolicy::ForceDiff;
    const CompiledModel m = compile(concatJunctionSpec(), opts);
    setThreadCount(1);
    const RolloutResult one = m.rollout(RunMode::QuantDitto);
    setThreadCount(3);
    const RolloutResult three = m.rollout(RunMode::QuantDitto);
    setThreadCount(1);
    EXPECT_TRUE(one.finalImage == three.finalImage);
}

/** The two new executable presets, compiled once for the suite. */
const CompiledModel &
deepUnet()
{
    static const CompiledModel *m = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        DeepUnetConfig cfg;
        cfg.resolution = 8;
        cfg.baseChannels = 8;
        cfg.steps = 5;
        return new CompiledModel(compile(deepUnetSpec(cfg)));
    }();
    return *m;
}

const CompiledModel &
ditBlock()
{
    static const CompiledModel *m = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        DitBlockConfig cfg;
        cfg.resolution = 8;
        cfg.embedDim = 16;
        cfg.steps = 5;
        return new CompiledModel(compile(ditBlockSpec(cfg)));
    }();
    return *m;
}

void
expectSpecRunsEndToEnd(const CompiledModel &model)
{
    // Table II's "accuracy preserved" stand-in: Ditto bit-exact
    // against direct quantized execution on arbitrary graphs.
    const RolloutResult ditto = model.rollout(RunMode::QuantDitto);
    const RolloutResult direct = model.rollout(RunMode::QuantDirect);
    EXPECT_TRUE(ditto.finalImage == direct.finalImage);
    EXPECT_GT(ditto.dittoOps.total(), 0);
    EXPECT_GT(ditto.dittoOps.zeroSkipped + ditto.dittoOps.low4, 0);

    // Batched == sequential, mixed batch sizes.
    std::vector<FloatTensor> noises;
    for (uint64_t s = 0; s < 3; ++s)
        noises.push_back(model.requestNoise(20 + s));
    const std::vector<RolloutResult> batched =
        model.rolloutBatch(RunMode::QuantDitto, noises);
    for (size_t i = 0; i < noises.size(); ++i)
        EXPECT_TRUE(model.rollout(RunMode::QuantDitto, noises[i])
                        .finalImage == batched[i].finalImage);
}

TEST(NewSpecs, DeepUnetRunsEndToEnd)
{
    expectSpecRunsEndToEnd(deepUnet());
    // The decoder's fuse -> mix pair is a compute-to-compute edge the
    // analysis bypasses.
    EXPECT_GE(deepUnet().numDiffBypassNodes(), 1);
}

TEST(JunctionFlow, DeepUnetFoldsSkipConcatAndPoolJunctions)
{
    DeepUnetConfig cfg;
    cfg.resolution = 8;
    cfg.baseChannels = 8;
    cfg.steps = 5;
    const ModelSpec spec = deepUnetSpec(cfg);
    auto [a, n] = expectJunctionBitwise(spec);

    // Nonzero junction savings on the bypass-edge and skip-concat
    // layers: folding down_conv's pooled-Add operand and dec_fuse's
    // upsample+skip Concat operand removes their diff-calc, and the
    // encoder-side skip conv + attention operand producers stop
    // materializing floats.
    EXPECT_LT(a.dittoOps.diffCalcElems, n.dittoOps.diffCalcElems);
    EXPECT_LT(a.dittoOps.summationElems, n.dittoOps.summationElems);

    const CompiledModel &m = deepUnet();
    EXPECT_TRUE(reportOf(m, "down_conv").junction);
    EXPECT_TRUE(reportOf(m, "dec_fuse").junction);
    EXPECT_TRUE(reportOf(m, "enc_conv2").sumSkip);
    EXPECT_TRUE(reportOf(m, "mid_proj").sumSkip);
    EXPECT_TRUE(reportOf(m, "dec_concat").deadStructural);
    EXPECT_TRUE(reportOf(m, "dec_up").deadStructural);
    EXPECT_TRUE(reportOf(m, "down_pool").deadStructural);
    // Dynamic-attention operand hand-over: the q/k/v convolutions emit
    // payloads; both score operands and the PV value operand arrive as
    // code diffs.
    EXPECT_TRUE(reportOf(m, "mid_attn_q").emitsPayload);
    EXPECT_TRUE(reportOf(m, "mid_attn_q").sumSkip);
    const CompiledModel::NodeReport qk = reportOf(m, "mid_qk");
    EXPECT_TRUE(qk.diffBypass && qk.diffBypass2);
    EXPECT_TRUE(reportOf(m, "mid_pv").diffBypass2);
}

TEST(JunctionFlow, BatchMixedPrimedSlabsMatchPerRequestHistories)
{
    // Continuous-batching shape: three requests advance together, one
    // is replaced mid-flight (resetSlab), so a single forwardBatch
    // mixes primed slabs (difference path through junction folds and
    // hand-overs) with an unprimed slab (direct path). Every slab must
    // reproduce its own single-request history bitwise.
    const CompiledModel &m = deepUnet();
    const Shape one = m.inputShape();
    const int64_t slab = one.numel();
    const int64_t bsz = 3;

    std::vector<FloatTensor> x(static_cast<size_t>(bsz));
    std::vector<CompiledModel::DittoState> ref(static_cast<size_t>(bsz));
    for (int64_t b = 0; b < bsz; ++b)
        x[static_cast<size_t>(b)] =
            m.requestNoise(static_cast<uint64_t>(100 + b));

    CompiledModel::BatchDittoState st;
    st.primed.assign(static_cast<size_t>(bsz), 0);
    FloatTensor xb(slab::withDim0(one, bsz));
    auto stack = [&] {
        for (int64_t b = 0; b < bsz; ++b)
            std::copy(x[static_cast<size_t>(b)].data().begin(),
                      x[static_cast<size_t>(b)].data().end(),
                      xb.data().begin() + b * slab);
    };
    auto step = [&] {
        stack();
        const FloatTensor eps =
            m.forwardBatch(xb, RunMode::QuantDitto, &st, nullptr);
        for (int64_t b = 0; b < bsz; ++b) {
            FloatTensor &xi = x[static_cast<size_t>(b)];
            FloatTensor ei(one);
            std::copy(eps.data().begin() + b * slab,
                      eps.data().begin() + (b + 1) * slab,
                      ei.data().begin());
            const FloatTensor want = m.forward(
                xi, RunMode::QuantDitto,
                &ref[static_cast<size_t>(b)], nullptr);
            ASSERT_TRUE(want == ei)
                << "slab " << b << " diverged from its own history";
            xi = add(xi, affine(ei, -0.15f, 0.0f));
        }
    };

    step();
    step();
    // Request 1 finishes; a new one takes its slot.
    st.resetSlab(1);
    ref[1] = CompiledModel::DittoState{};
    x[1] = m.requestNoise(555);
    step(); // slab 1 unprimed/direct, slabs 0 and 2 primed/diff
    step();
}

TEST(NewSpecs, DitBlockRunsEndToEnd)
{
    expectSpecRunsEndToEnd(ditBlock());
    // o -> proj at minimum.
    EXPECT_GE(ditBlock().numDiffBypassNodes(), 1);
}

const CompiledModel &
mhsaBlock()
{
    static const CompiledModel *m = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        MhsaBlockConfig cfg;
        cfg.resolution = 8;
        cfg.embedDim = 16;
        cfg.heads = 2;
        cfg.steps = 5;
        return new CompiledModel(compile(mhsaBlockSpec(cfg)));
    }();
    return *m;
}

const CompiledModel &
ditAdaLn()
{
    static const CompiledModel *m = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        DitAdaLnConfig cfg;
        cfg.resolution = 8;
        cfg.embedDim = 16;
        cfg.steps = 5;
        return new CompiledModel(compile(ditAdaLnSpec(cfg)));
    }();
    return *m;
}

TEST(NewSpecs, MhsaBlockRunsEndToEnd)
{
    expectSpecRunsEndToEnd(mhsaBlock());
    // The head-sum Add and the residual chain are token-domain
    // junction folds.
    EXPECT_TRUE(reportOf(mhsaBlock(), "head_merge").junction);
    EXPECT_TRUE(reportOf(mhsaBlock(), "unembed").junction);
    EXPECT_TRUE(reportOf(mhsaBlock(), "mlp_fc2").sumSkip);
}

TEST(NewSpecs, MhsaBlockJunctionBitwise)
{
    MhsaBlockConfig cfg;
    cfg.resolution = 8;
    cfg.embedDim = 16;
    cfg.heads = 2;
    cfg.steps = 5;
    expectJunctionBitwise(mhsaBlockSpec(cfg));
}

TEST(NewSpecs, DitAdaLnRunsEndToEnd)
{
    expectSpecRunsEndToEnd(ditAdaLn());
    // The adaLN gate Affine sits between mlp_fc2 and the residual: the
    // layer verdict stays diff-transparent but the software fold
    // declines the wire — junction-blocking, visible as a full-value
    // unembed (this is what --verdicts makes distinguishable from a
    // run-time Defo reversion).
    const CompiledModel &m = ditAdaLn();
    const CompiledModel::NodeReport un = reportOf(m, "unembed");
    EXPECT_FALSE(un.junction);
    EXPECT_FALSE(un.diffBypass);
    ASSERT_GE(un.layer, 0);
    EXPECT_FALSE(m.dependencies()[static_cast<size_t>(un.layer)]
                     .diffCalcNeeded);
}

TEST(NewSpecs, DitAdaLnJunctionBitwise)
{
    DitAdaLnConfig cfg;
    cfg.resolution = 8;
    cfg.embedDim = 16;
    cfg.steps = 5;
    expectJunctionBitwise(ditAdaLnSpec(cfg));
}

void
expectServedBitwise(const CompiledModel &model)
{
    ServerConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxWaitMicros = 500;
    cfg.workers = 1;
    DenoiseServer server(model, cfg);
    std::vector<DenoiseRequest> reqs;
    for (int i = 0; i < 6; ++i) {
        DenoiseRequest req;
        req.seed = 40 + static_cast<uint64_t>(i);
        req.steps = model.defaultSteps() - i % 2;
        req.mode =
            i % 4 == 3 ? RunMode::QuantDirect : RunMode::QuantDitto;
        reqs.push_back(req);
    }
    std::vector<uint64_t> ids;
    for (const DenoiseRequest &req : reqs)
        ids.push_back(server.submit(req));
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RolloutResult want = model.rollout(
            reqs[i].mode, model.requestNoise(reqs[i].seed),
            reqs[i].steps);
        EXPECT_TRUE(want.finalImage == res.image)
            << "served request " << i << " diverged";
    }
}

TEST(NewSpecs, DeepUnetServesThroughDenoiseServer)
{
    expectServedBitwise(deepUnet());
}

TEST(NewSpecs, DitBlockServesThroughDenoiseServer)
{
    expectServedBitwise(ditBlock());
}

TEST(NewSpecs, MhsaBlockServesThroughDenoiseServer)
{
    expectServedBitwise(mhsaBlock());
}

TEST(NewSpecs, DitAdaLnServesThroughDenoiseServer)
{
    expectServedBitwise(ditAdaLn());
}

/**
 * ApproxDitto (docs/approx_reuse.md): cross-step block reuse. At
 * threshold 0 only bitwise-identical inputs skip, so the mode must
 * equal QuantDitto exactly; at any threshold the decisions must be
 * deterministic across thread counts and batch compositions, the
 * skip accounting must add up, and fidelity must not improve as the
 * threshold loosens.
 */

/** The five executable preset specs at test geometry. */
std::vector<ModelSpec>
approxPresetSpecs()
{
    setenv("DITTO_NO_CACHE", "1", 0);
    std::vector<ModelSpec> specs;
    specs.push_back(miniUnetSpec(parityConfig()));
    DeepUnetConfig du;
    du.resolution = 8;
    du.baseChannels = 8;
    du.steps = 5;
    specs.push_back(deepUnetSpec(du));
    DitBlockConfig db;
    db.resolution = 8;
    db.embedDim = 16;
    db.steps = 5;
    specs.push_back(ditBlockSpec(db));
    MhsaBlockConfig mh;
    mh.resolution = 8;
    mh.embedDim = 16;
    mh.heads = 2;
    mh.steps = 5;
    specs.push_back(mhsaBlockSpec(mh));
    DitAdaLnConfig da;
    da.resolution = 8;
    da.embedDim = 16;
    da.steps = 5;
    specs.push_back(ditAdaLnSpec(da));
    return specs;
}

TEST(ApproxMode, ThresholdZeroBitwiseIdenticalOnEveryPreset)
{
    for (const ModelSpec &spec : approxPresetSpecs()) {
        CompiledModel m = compile(spec);
        m.setApproxPolicy(0.0, 3);
        const RolloutResult exact = m.rollout(RunMode::QuantDitto);
        const RolloutResult approx = m.rollout(RunMode::ApproxDitto);
        EXPECT_TRUE(exact.finalImage == approx.finalImage)
            << spec.name << " diverged at threshold 0";
        // The exact modes never report reuse or skip logs.
        EXPECT_EQ(exact.dittoOps.reusedElems, 0);
        EXPECT_TRUE(exact.nodeSkips.empty());
        ASSERT_EQ(approx.nodeSkips.size(), m.nodeReports().size());
    }
}

TEST(ApproxMode, SkipDecisionsDeterministicAcrossThreadCounts)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    DeepUnetConfig du;
    du.resolution = 8;
    du.baseChannels = 8;
    du.steps = 5;
    CompiledModel m = compile(deepUnetSpec(du));
    m.setApproxPolicy(1.0, 2); // skip aggressively: decisions matter
    setThreadCount(1);
    const RolloutResult one = m.rollout(RunMode::ApproxDitto);
    setThreadCount(3);
    const RolloutResult three = m.rollout(RunMode::ApproxDitto);
    setThreadCount(1);
    EXPECT_TRUE(one.finalImage == three.finalImage);
    EXPECT_EQ(one.dittoOps.reusedElems, three.dittoOps.reusedElems);
    EXPECT_GT(one.dittoOps.reusedElems, 0);
    ASSERT_EQ(one.nodeSkips.size(), three.nodeSkips.size());
    EXPECT_EQ(one.nodeSkips, three.nodeSkips);
}

TEST(ApproxMode, BatchedSkipDecisionsMatchSequential)
{
    // The probes see per-slab regions of the same codes a sequential
    // rollout sees, so every slab must reproduce its single-request
    // images, skip log and reuse tally at any batch size. (Full
    // OpCounts lane tallies are NOT compared: a sequential skip
    // bypasses the engine while a batched skip runs it over a zeroed
    // region — same bits, different probe bookkeeping.)
    setenv("DITTO_NO_CACHE", "1", 0);
    DeepUnetConfig du;
    du.resolution = 8;
    du.baseChannels = 8;
    du.steps = 5;
    CompiledModel m = compile(deepUnetSpec(du));
    m.setApproxPolicy(1.0, 2);
    for (int64_t batch : {1, 3, 4}) {
        std::vector<FloatTensor> noises;
        for (int64_t b = 0; b < batch; ++b)
            noises.push_back(
                m.requestNoise(static_cast<uint64_t>(300 + b)));
        const std::vector<RolloutResult> got =
            m.rolloutBatch(RunMode::ApproxDitto, noises);
        ASSERT_EQ(got.size(), noises.size());
        for (size_t i = 0; i < noises.size(); ++i) {
            const RolloutResult want =
                m.rollout(RunMode::ApproxDitto, noises[i]);
            EXPECT_TRUE(want.finalImage == got[i].finalImage)
                << "batch " << batch << " slab " << i;
            EXPECT_EQ(want.nodeSkips, got[i].nodeSkips);
            EXPECT_EQ(want.dittoOps.reusedElems,
                      got[i].dittoOps.reusedElems);
        }
    }
}

TEST(ApproxMode, ReusedElemsMatchesPerNodeSkipLog)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    DeepUnetConfig du;
    du.resolution = 8;
    du.baseChannels = 8;
    du.steps = 5;
    CompiledModel m = compile(deepUnetSpec(du));
    m.setApproxPolicy(1.0, 2);
    const RolloutResult r = m.rollout(RunMode::ApproxDitto);
    const std::vector<CompiledModel::NodeReport> reports =
        m.nodeReports();
    ASSERT_EQ(r.nodeSkips.size(), reports.size());
    int64_t want = 0;
    for (size_t i = 0; i < reports.size(); ++i) {
        if (!reports[i].compute)
            EXPECT_EQ(r.nodeSkips[i], 0) << reports[i].name;
        want += r.nodeSkips[i] * reports[i].outElems;
    }
    EXPECT_GT(want, 0);
    EXPECT_EQ(r.dittoOps.reusedElems, want);
}

TEST(ApproxMode, FidelityMonotoneNonImprovingInThreshold)
{
    setenv("DITTO_NO_CACHE", "1", 0);
    DeepUnetConfig du;
    du.resolution = 8;
    du.baseChannels = 8;
    du.steps = 5;
    CompiledModel m = compile(deepUnetSpec(du));
    double prev_psnr = std::numeric_limits<double>::infinity();
    double prev_cos = 1.0;
    for (double thresh : {0.0, 0.5, 1.0}) {
        m.setApproxPolicy(thresh, 3);
        const RolloutResult r =
            m.rolloutWithFidelity(RunMode::ApproxDitto);
        ASSERT_TRUE(r.hasFidelity);
        ASSERT_EQ(r.stepFidelity.size(),
                  static_cast<size_t>(m.defaultSteps()));
        // rolloutWithFidelity must not perturb the rollout itself.
        EXPECT_TRUE(r.finalImage ==
                    m.rollout(RunMode::ApproxDitto).finalImage);
        EXPECT_LE(r.fidelity.psnrDb, prev_psnr) << "thresh " << thresh;
        EXPECT_LE(r.fidelity.cosine, prev_cos) << "thresh " << thresh;
        prev_psnr = r.fidelity.psnrDb;
        prev_cos = r.fidelity.cosine;
        if (thresh == 0.0) // exact by construction
            EXPECT_TRUE(r.fidelity.exact());
    }
    // The loosest policy actually degrades the image.
    EXPECT_LT(prev_psnr, std::numeric_limits<double>::infinity());
}

TEST(ApproxMode, ResetSlabClearsApproxReuseState)
{
    // Regression: resetSlab() must clear the consecutive-skip
    // counters along with the primed/approx flags. A replaced slab's
    // first (unprimed) step never touches the counters, so a stale
    // consecutive-skip run from the previous occupant would force the
    // new request's first primed step to execute where a fresh
    // rollout skips — different bits.
    setenv("DITTO_NO_CACHE", "1", 0);
    DeepUnetConfig du;
    du.resolution = 8;
    du.baseChannels = 8;
    du.steps = 5;
    CompiledModel m = compile(deepUnetSpec(du));
    m.setApproxPolicy(1.0, 2); // every primed step skips, cap 2
    const Shape one = m.inputShape();
    const int64_t slab = one.numel();
    const int64_t bsz = 2;

    FloatTensor xb(slab::withDim0(one, bsz));
    for (int64_t b = 0; b < bsz; ++b) {
        const FloatTensor n =
            m.requestNoise(static_cast<uint64_t>(400 + b));
        std::copy(n.data().begin(), n.data().end(),
                  xb.data().begin() + b * slab);
    }
    CompiledModel::BatchDittoState st;
    st.primed.assign(static_cast<size_t>(bsz), 0);
    st.approx.assign(static_cast<size_t>(bsz), 1);
    auto step = [&] {
        const FloatTensor eps =
            m.forwardBatch(xb, RunMode::ApproxDitto, &st, nullptr);
        xb = add(xb, affine(eps, -0.15f, 0.0f));
    };
    // Three steps drive slab 1's skip counters to the cap.
    step();
    step();
    step();
    // Slab 1 finishes; a new approx request takes the slot
    // mid-rollout (resetSlab also clears the approx flag — the
    // engine re-arms it per request, as BatchEngine::replaceSlot
    // does).
    st.resetSlab(1);
    st.approx[1] = 1;
    const FloatTensor fresh_noise = m.requestNoise(777);
    std::copy(fresh_noise.data().begin(), fresh_noise.data().end(),
              xb.data().begin() + 1 * slab);
    step(); // unprimed: must not consult stale counters
    step(); // first primed step: skips iff the counters were cleared
    FloatTensor got(one);
    std::copy(xb.data().begin() + 1 * slab,
              xb.data().begin() + 2 * slab, got.data().begin());
    const RolloutResult want =
        m.rollout(RunMode::ApproxDitto, fresh_noise, 2);
    EXPECT_TRUE(want.finalImage == got);
}

TEST(SpecHash, ContentHashDistinguishesGeometryAndSeed)
{
    MiniUnetConfig a = parityConfig();
    const uint64_t ha = miniUnetSpec(a).hash();
    EXPECT_EQ(ha, miniUnetSpec(a).hash());
    MiniUnetConfig b = a;
    b.seed = a.seed + 1;
    EXPECT_NE(ha, miniUnetSpec(b).hash());
    MiniUnetConfig c = a;
    c.channels = a.channels * 2;
    EXPECT_NE(ha, miniUnetSpec(c).hash());
}

TEST(SpecGraph, MiniUnetLowersToTheLayerIr)
{
    const ModelSpec spec = miniUnetSpec(parityConfig());
    const ModelGraph graph = spec.toGraph();
    // 12 compute layers: 8 convs, 2 FCs... plus QK/PV/CrossQK/CrossPV.
    EXPECT_EQ(graph.numComputeLayers(), 14);
    EXPECT_GT(graph.totalMacs(), 0);
    EXPECT_EQ(graph.findLayer("attn_qk") >= 0, true);
    // Reshape nodes are collapsed: proj's producer is the PV matmul.
    const int proj = graph.findLayer("attn_proj");
    ASSERT_GE(proj, 0);
    ASSERT_EQ(graph.layer(proj).inputs.size(), 1u);
    EXPECT_EQ(graph.layer(graph.layer(proj).inputs[0]).name, "attn_pv");
}

TEST(ShapeValidation, RolloutRejectsWrongNoiseShape)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const ParityPair &p = parityPair();
    const FloatTensor bad(Shape{1, 3, 4, 4});
    EXPECT_EXIT(p.compiled.rollout(RunMode::QuantDirect, bad),
                testing::ExitedWithCode(1), "does not match model input");
    EXPECT_EXIT(p.compiled.rollout(RunMode::QuantDirect,
                                   p.compiled.requestNoise(1), -2),
                testing::ExitedWithCode(1), "negative step count");
}

TEST(ShapeValidation, ForwardBatchRejectsWrongGeometry)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const ParityPair &p = parityPair();
    const FloatTensor bad(Shape{2, 5, 8, 8}); // wrong channel count
    EXPECT_EXIT(p.compiled.compiled().forwardBatch(
                    bad, RunMode::QuantDirect, nullptr, nullptr),
                testing::ExitedWithCode(1),
                "does not stack model inputs");
}

TEST(ShapeValidation, ServerRejectsMalformedRequests)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const ParityPair &p = parityPair();
    EXPECT_EXIT(
        {
            ServerConfig cfg;
            cfg.workers = 1;
            DenoiseServer server(p.compiled.compiled(), cfg);
            DenoiseRequest req;
            req.steps = -1;
            server.submit(req);
        },
        testing::ExitedWithCode(1), "negative step count");
}

TEST(EnvRegistry, TypedReadersApplyFallbacksAndRanges)
{
    setenv("DITTO_SERVE_MAX_BATCH", "17", 1);
    EXPECT_EQ(env::readInt64("DITTO_SERVE_MAX_BATCH", 8, 1, 4096), 17);
    setenv("DITTO_SERVE_MAX_BATCH", "not-a-number", 1);
    EXPECT_EQ(env::readInt64("DITTO_SERVE_MAX_BATCH", 8, 1, 4096), 8);
    setenv("DITTO_SERVE_MAX_BATCH", "100000", 1);
    EXPECT_EQ(env::readInt64("DITTO_SERVE_MAX_BATCH", 8, 1, 4096), 8);
    unsetenv("DITTO_SERVE_MAX_BATCH");
    EXPECT_EQ(env::readInt64("DITTO_SERVE_MAX_BATCH", 8, 1, 4096), 8);

    unsetenv("DITTO_NO_CACHE");
    EXPECT_FALSE(env::readFlag("DITTO_NO_CACHE"));
    setenv("DITTO_NO_CACHE", "0", 1);
    EXPECT_FALSE(env::readFlag("DITTO_NO_CACHE"));
    setenv("DITTO_NO_CACHE", "1", 1);
    EXPECT_TRUE(env::readFlag("DITTO_NO_CACHE"));

    setenv("DITTO_CACHE_DIR", "", 1);
    EXPECT_EQ(env::readString("DITTO_CACHE_DIR", "fallback"),
              "fallback");
    setenv("DITTO_CACHE_DIR", "/tmp/x", 1);
    EXPECT_EQ(env::readString("DITTO_CACHE_DIR", "fallback"), "/tmp/x");
    unsetenv("DITTO_CACHE_DIR");
}

TEST(EnvRegistry, UnregisteredKnobFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(env::readInt64("DITTO_NOT_A_KNOB", 1, 0, 10),
                 "not in the env registry");
}

TEST(EnvRegistry, ConfigDocListsExactlyTheRegistry)
{
    // docs/config.md is generated from the same registry the readers
    // enforce: every registered knob appears, and every DITTO_* token
    // the doc mentions is registered (no stale rows).
    std::ifstream in(std::string(DITTO_SOURCE_DIR) + "/docs/config.md");
    ASSERT_TRUE(in.good()) << "docs/config.md not found";
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();

    std::set<std::string> documented;
    for (size_t pos = doc.find("DITTO_"); pos != std::string::npos;
         pos = doc.find("DITTO_", pos + 1)) {
        size_t end = pos;
        while (end < doc.size() &&
               (std::isupper(static_cast<unsigned char>(doc[end])) ||
                std::isdigit(static_cast<unsigned char>(doc[end])) ||
                doc[end] == '_'))
            ++end;
        documented.insert(doc.substr(pos, end - pos));
    }
    std::set<std::string> registered;
    for (const env::Knob &k : env::knobs())
        registered.insert(k.name);
    EXPECT_EQ(documented, registered);
}

} // namespace
} // namespace ditto
