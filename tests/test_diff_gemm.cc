/**
 * @file
 * Tests for the software Encoding Unit (quant/encoder.h) and the
 * plan-driven sparse diff GEMM (tensor/diff_gemm.h + the ops.h entry
 * points): plan well-formedness, exact element tallies, bitwise parity
 * against the dense int16 diff kernels and the retained naive:: dense
 * engines, extreme all-zero / all-wide populations, odd shapes, and
 * thread-count invariance.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/attention_diff.h"
#include "core/diff_linear.h"
#include "quant/bitwidth.h"
#include "quant/encoder.h"
#include "tensor/diff_gemm.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace ditto {
namespace {

Int8Tensor
randomInt8(const Shape &shape, uint64_t seed, int lo = -127, int hi = 127)
{
    Rng rng(seed);
    Int8Tensor t(shape);
    t.fillUniformInt(rng, lo, hi);
    return t;
}

Int32Tensor
randomInt32(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    Int32Tensor t(shape);
    t.fillUniformInt(rng, -100000, 100000);
    return t;
}

/**
 * Difference matrix with a controlled zero / low4 / full8 element mix
 * (percentages; the remainder is full8).
 */
Int16Tensor
mixDiff(const Shape &shape, int zero_pct, int low4_pct, uint64_t seed)
{
    Rng rng(seed);
    Int16Tensor t(shape);
    for (auto &v : t.data()) {
        const int u = static_cast<int>(rng.uniformInt(100));
        if (u < zero_pct) {
            v = 0;
        } else if (u < zero_pct + low4_pct) {
            // Nonzero signed 4-bit value in [-8, 7].
            const int64_t m = 1 + static_cast<int64_t>(rng.uniformInt(8));
            v = static_cast<int16_t>(rng.bernoulli(0.5) ? m : -m);
            if (v == 8)
                v = 7;
        } else {
            // Wide value in +/-[8, 254].
            const int64_t m = 8 + static_cast<int64_t>(rng.uniformInt(247));
            v = static_cast<int16_t>(rng.bernoulli(0.5) ? m : -m);
        }
    }
    return t;
}

/** Reconstruct the dense difference matrix a plan describes. */
Int16Tensor
decodePlan(const DiffGemmPlan &plan)
{
    Int16Tensor out(Shape{plan.rows, plan.cols});
    for (int64_t r = 0; r < plan.rows; ++r) {
        for (int64_t pi = 0; pi < plan.panelsPerRow; ++pi) {
            const PanelRef &p =
                plan.panels[static_cast<size_t>(r * plan.panelsPerRow + pi)];
            const int64_t k0 = pi * kDiffPanelK;
            for (int64_t e = p.low4Begin; e < p.low4Begin + p.low4Count;
                 ++e) {
                out.at(r, k0 + plan.low4Offsets[static_cast<size_t>(e)]) =
                    static_cast<int16_t>(plan.low4Value(e));
            }
            for (int64_t e = p.full8Begin; e < p.full8Begin + p.full8Count;
                 ++e) {
                out.at(r, k0 + plan.full8Offsets[static_cast<size_t>(e)]) =
                    plan.full8Values[static_cast<size_t>(e)];
            }
        }
    }
    return out;
}

// ---- Encoder ------------------------------------------------------------

TEST(Encoder, PlanRoundTripsAndTalliesExactly)
{
    const struct
    {
        int zero, low4;
    } mixes[] = {{90, 9}, {70, 25}, {0, 0}, {100, 0}, {0, 100}, {40, 40}};
    int64_t seed = 1;
    for (const auto &mix : mixes) {
        const Int16Tensor diff =
            mixDiff(Shape{13, 150}, mix.zero, mix.low4, seed++);
        const DiffGemmPlan plan = encodeDiff(diff);
        // Lossless: the plan describes exactly the source matrix.
        EXPECT_TRUE(decodePlan(plan) == diff);
        // Element tallies equal the scalar classifier's.
        int64_t zero = 0, low4 = 0, full8 = 0;
        for (int16_t v : diff.data()) {
            switch (classifyValue(v)) {
              case BitClass::Zero: ++zero; break;
              case BitClass::Low4: ++low4; break;
              case BitClass::Full8: ++full8; break;
            }
        }
        EXPECT_EQ(plan.zeroElems, zero);
        EXPECT_EQ(plan.low4Elems, low4);
        EXPECT_EQ(plan.full8Elems, full8);
        EXPECT_EQ(plan.totalElems(), diff.numel());
    }
}

TEST(Encoder, PanelLaneCountsAreConsistent)
{
    const Int16Tensor diff = mixDiff(Shape{7, 260}, 80, 15, 42);
    const DiffGemmPlan plan = encodeDiff(diff);
    for (int64_t r = 0; r < plan.rows; ++r) {
        for (int64_t pi = 0; pi < plan.panelsPerRow; ++pi) {
            const PanelRef &p =
                plan.panels[static_cast<size_t>(r * plan.panelsPerRow + pi)];
            const int64_t k0 = pi * kDiffPanelK;
            const int64_t kw =
                std::min<int64_t>(kDiffPanelK, plan.cols - k0);
            int64_t lane = 0;
            int64_t wide = 0;
            for (int64_t kk = 0; kk < kw; ++kk) {
                const int16_t v = diff.at(r, k0 + kk);
                lane += v != 0 && v >= -8 && v <= 7;
                wide += v < -8 || v > 7;
            }
            EXPECT_EQ(static_cast<int64_t>(p.low4Count), lane);
            EXPECT_EQ(static_cast<int64_t>(p.full8Count), wide);
            const PanelClass want =
                lane == 0 && wide == 0
                    ? PanelClass::Zero
                    : (wide == 0 ? PanelClass::Low4
                                 : (lane == 0 ? PanelClass::Full8
                                              : PanelClass::Mixed));
            EXPECT_EQ(p.cls(), want);
        }
    }
}

TEST(Encoder, FusedTemporalSubtractMatchesExplicitDiff)
{
    const Int8Tensor prev = randomInt8(Shape{9, 77}, 2);
    const Int8Tensor cur = randomInt8(Shape{9, 77}, 3);
    const DiffGemmPlan fused = encodeTemporalDiff(cur, prev);
    const DiffGemmPlan explicit_ =
        encodeDiff(subtractInt8(cur, prev));
    EXPECT_TRUE(decodePlan(fused) == decodePlan(explicit_));
    EXPECT_EQ(fused.zeroElems, explicit_.zeroElems);
    EXPECT_EQ(fused.low4Elems, explicit_.low4Elems);
    EXPECT_EQ(fused.full8Elems, explicit_.full8Elems);
}

TEST(Encoder, TransposedEncodeMatchesManualTranspose)
{
    const Int8Tensor prev = randomInt8(Shape{11, 5}, 4);
    const Int8Tensor cur = randomInt8(Shape{11, 5}, 5);
    const DiffGemmPlan plan = encodeTemporalDiffTransposed(cur, prev);
    const Int16Tensor diff = subtractInt8(cur, prev);
    Int16Tensor diff_t(Shape{5, 11});
    for (int64_t r = 0; r < 11; ++r)
        for (int64_t c = 0; c < 5; ++c)
            diff_t.at(c, r) = diff.at(r, c);
    EXPECT_TRUE(decodePlan(plan) == diff_t);
}

TEST(Encoder, PlanOpCountsMatchTallyOps)
{
    const Int16Tensor diff = mixDiff(Shape{6, 90}, 60, 30, 7);
    const DiffGemmPlan plan = encodeDiff(diff);
    const OpCounts via_plan = planOpCounts(plan, 17);
    const OpCounts via_tally = tallyOps(diff, 17);
    EXPECT_EQ(via_plan.zeroSkipped, via_tally.zeroSkipped);
    EXPECT_EQ(via_plan.low4, via_tally.low4);
    EXPECT_EQ(via_plan.full8, via_tally.full8);
}

// ---- Sparse diff GEMM ---------------------------------------------------

/** Odd, fringe-heavy shapes (m, k, n). */
struct MatShape
{
    int64_t m, k, n;
};

const MatShape kMatShapes[] = {
    {1, 1, 1},   {3, 5, 7},     {5, 17, 33}, {17, 64, 19},
    {2, 300, 9}, {33, 129, 65}, {8, 65, 32},
};

TEST(DiffGemm, MatchesDenseDiffKernelBitwise)
{
    int64_t seed = 100;
    for (const auto &s : kMatShapes) {
        for (int zero_pct : {0, 50, 95}) {
            const Int16Tensor diff =
                mixDiff(Shape{s.m, s.k}, zero_pct, (100 - zero_pct) / 2,
                        seed++);
            const DiffGemmPlan plan = encodeDiff(diff);
            const Int32Tensor prev =
                randomInt32(Shape{s.m, s.n}, seed++);
            // Non-transposed B.
            const Int8Tensor b = randomInt8(Shape{s.k, s.n}, seed++);
            const Int32Tensor want =
                addInt32(prev, naive::matmulDiffInt16(diff, b));
            EXPECT_TRUE(matmulDiffPlan(plan, b, &prev) == want)
                << "m=" << s.m << " k=" << s.k << " n=" << s.n;
            // Transposed B (weight-stationary convention).
            const Int8Tensor bt = randomInt8(Shape{s.n, s.k}, seed++);
            const Int32Tensor want_t = addInt32(
                prev, naive::matmulTransposedDiffInt16(diff, bt));
            EXPECT_TRUE(matmulTransposedDiffPlan(plan, bt, &prev) ==
                        want_t);
        }
    }
}

TEST(DiffGemm, NullPrevYieldsBareDelta)
{
    const Int16Tensor diff = mixDiff(Shape{5, 40}, 70, 20, 200);
    const Int8Tensor b = randomInt8(Shape{9, 40}, 201);
    const DiffGemmPlan plan = encodeDiff(diff);
    EXPECT_TRUE(matmulTransposedDiffPlan(plan, b) ==
                naive::matmulTransposedDiffInt16(diff, b));
}

TEST(DiffGemm, AllZeroDiffReturnsPrevUntouched)
{
    const Int16Tensor diff(Shape{6, 130});
    const DiffGemmPlan plan = encodeDiff(diff);
    EXPECT_EQ(plan.zeroElems, diff.numel());
    EXPECT_EQ(plan.nonzeroElems(), 0);
    for (const PanelRef &p : plan.panels)
        EXPECT_TRUE(p.empty());
    const Int8Tensor b = randomInt8(Shape{130, 21}, 202);
    const Int32Tensor prev = randomInt32(Shape{6, 21}, 203);
    EXPECT_TRUE(matmulDiffPlan(plan, b, &prev) == prev);
}

TEST(DiffGemm, AllFull8DiffStaysExact)
{
    Int16Tensor diff(Shape{4, 70});
    Rng rng(204);
    diff.fillUniformInt(rng, -254, 254);
    for (auto &v : diff.data())
        if (v >= -8 && v <= 7)
            v = 200; // force every element onto the wide path
    const DiffGemmPlan plan = encodeDiff(diff);
    EXPECT_EQ(plan.full8Elems, diff.numel());
    const Int8Tensor b = randomInt8(Shape{70, 13}, 205);
    EXPECT_TRUE(matmulDiffPlan(plan, b) == naive::matmulDiffInt16(diff, b));
}

TEST(DiffGemm, ThreadCountInvariance)
{
    const Int16Tensor diff = mixDiff(Shape{37, 129}, 75, 20, 206);
    const Int8Tensor b = randomInt8(Shape{53, 129}, 207);
    const Int32Tensor prev = randomInt32(Shape{37, 53}, 208);
    setThreadCount(1);
    const DiffGemmPlan plan1 = encodeTemporalDiff(
        randomInt8(Shape{37, 129}, 209), randomInt8(Shape{37, 129}, 210));
    const Int32Tensor r1 = matmulTransposedDiffPlan(plan1, b, &prev);
    setThreadCount(4);
    const DiffGemmPlan plan4 = encodeTemporalDiff(
        randomInt8(Shape{37, 129}, 209), randomInt8(Shape{37, 129}, 210));
    const Int32Tensor r4 = matmulTransposedDiffPlan(plan4, b, &prev);
    setThreadCount(1);
    EXPECT_TRUE(decodePlan(plan1) == decodePlan(plan4))
        << "encoder output depends on thread count";
    EXPECT_TRUE(r1 == r4) << "diff GEMM depends on thread count";
}

// ---- Engine-level parity ------------------------------------------------

/** Perturb codes slightly, like an adjacent time step would. */
Int8Tensor
perturb(const Int8Tensor &base, uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor out = base;
    for (auto &v : out.data()) {
        if (rng.bernoulli(0.4)) {
            const int delta =
                static_cast<int>(rng.uniformInt(10)) - 5;
            v = static_cast<int8_t>(
                std::clamp(static_cast<int>(v) + delta, -127, 127));
        }
    }
    return out;
}

TEST(DiffEngines, FcSparseMatchesNaiveDense)
{
    const Int8Tensor w = randomInt8(Shape{19, 33}, 300);
    DiffFcEngine engine(w);
    const Int8Tensor x_prev = randomInt8(Shape{7, 33}, 301);
    const Int8Tensor x_cur = perturb(x_prev, 302);
    const Int32Tensor out_prev = engine.runDirect(x_prev);
    OpCounts sparse_counts, dense_counts;
    const Int32Tensor sparse =
        engine.runDiff(x_cur, x_prev, out_prev, &sparse_counts,
                       DiffPolicy::ForceDiff);
    const Int32Tensor dense =
        naive::fcRunDiff(x_cur, x_prev, out_prev, w, &dense_counts);
    EXPECT_TRUE(sparse == dense);
    EXPECT_TRUE(sparse == engine.runDirect(x_cur));
    EXPECT_EQ(sparse_counts.zeroSkipped, dense_counts.zeroSkipped);
    EXPECT_EQ(sparse_counts.low4, dense_counts.low4);
    EXPECT_EQ(sparse_counts.full8, dense_counts.full8);
}

TEST(DiffEngines, ConvSparseMatchesNaiveDense)
{
    const struct
    {
        int64_t cin, cout, h, w, kernel, stride, padding;
    } cases[] = {
        {3, 5, 6, 6, 3, 1, 1},  {2, 4, 8, 8, 3, 2, 1},
        {1, 1, 5, 5, 1, 1, 0},  {2, 7, 9, 5, 5, 2, 3},
        {4, 3, 7, 7, 3, 3, 0},
    };
    uint64_t seed = 400;
    for (const auto &cc : cases) {
        const Conv2dParams p{cc.cin, cc.cout, cc.kernel, cc.stride,
                             cc.padding};
        const Int8Tensor w = randomInt8(
            Shape{cc.cout, cc.cin, cc.kernel, cc.kernel}, seed++);
        DiffConvEngine engine(w, p);
        const Int8Tensor x_prev =
            randomInt8(Shape{2, cc.cin, cc.h, cc.w}, seed++);
        const Int8Tensor x_cur = perturb(x_prev, seed++);
        const Int32Tensor out_prev = engine.runDirect(x_prev);
        OpCounts sparse_counts, dense_counts;
        const Int32Tensor sparse =
            engine.runDiff(x_cur, x_prev, out_prev, &sparse_counts,
                       DiffPolicy::ForceDiff);
        EXPECT_TRUE(sparse == naive::convRunDiff(x_cur, x_prev, out_prev,
                                                 w, p, &dense_counts));
        EXPECT_TRUE(sparse == engine.runDirect(x_cur));
        // Same per-input-element tally convention as the dense path.
        EXPECT_EQ(sparse_counts.zeroSkipped, dense_counts.zeroSkipped);
        EXPECT_EQ(sparse_counts.low4, dense_counts.low4);
        EXPECT_EQ(sparse_counts.full8, dense_counts.full8);
    }
}

TEST(DiffEngines, AttentionScoresSparseMatchesNaive)
{
    const Int8Tensor q_prev = randomInt8(Shape{21, 18}, 500);
    const Int8Tensor k_prev = randomInt8(Shape{13, 18}, 501);
    const Int8Tensor q_cur = perturb(q_prev, 502);
    const Int8Tensor k_cur = perturb(k_prev, 503);
    const Int32Tensor s_prev = attentionScoresDirect(q_prev, k_prev);
    OpCounts sparse_counts, dense_counts;
    const Int32Tensor sparse = attentionScoresDiff(
        q_cur, q_prev, k_cur, k_prev, s_prev, &sparse_counts,
        DiffPolicy::ForceDiff);
    const Int32Tensor dense = naive::attentionScoresDiff(
        q_cur, q_prev, k_cur, k_prev, s_prev, &dense_counts);
    EXPECT_TRUE(sparse == dense);
    EXPECT_TRUE(sparse == attentionScoresDirect(q_cur, k_cur));
    EXPECT_EQ(sparse_counts.total(), dense_counts.total());
    EXPECT_EQ(sparse_counts.zeroSkipped, dense_counts.zeroSkipped);
}

TEST(DiffEngines, AttentionOutputSparseMatchesNaive)
{
    const Int8Tensor p_prev = randomInt8(Shape{15, 11}, 504, 0, 127);
    const Int8Tensor v_prev = randomInt8(Shape{11, 23}, 505);
    const Int8Tensor p_cur = perturb(p_prev, 506);
    const Int8Tensor v_cur = perturb(v_prev, 507);
    const Int32Tensor o_prev = attentionOutputDirect(p_prev, v_prev);
    OpCounts sparse_counts, dense_counts;
    const Int32Tensor sparse = attentionOutputDiff(
        p_cur, p_prev, v_cur, v_prev, o_prev, &sparse_counts,
        DiffPolicy::ForceDiff);
    const Int32Tensor dense = naive::attentionOutputDiff(
        p_cur, p_prev, v_cur, v_prev, o_prev, &dense_counts);
    EXPECT_TRUE(sparse == dense);
    EXPECT_TRUE(sparse == attentionOutputDirect(p_cur, v_cur));
    EXPECT_EQ(sparse_counts.total(), dense_counts.total());
    EXPECT_EQ(sparse_counts.low4, dense_counts.low4);
}

TEST(DiffEngines, CrossAttentionSparseMatchesNaive)
{
    const Int8Tensor k_const = randomInt8(Shape{7, 29}, 508);
    CrossAttentionEngine engine(k_const);
    const Int8Tensor q_prev = randomInt8(Shape{12, 29}, 509);
    const Int8Tensor q_cur = perturb(q_prev, 510);
    const Int32Tensor s_prev = engine.runDirect(q_prev);
    const Int32Tensor sparse =
        engine.runDiff(q_cur, q_prev, s_prev, nullptr,
                       DiffPolicy::ForceDiff);
    EXPECT_TRUE(sparse == naive::crossAttentionScoresDiff(
                              q_cur, q_prev, k_const, s_prev));
    EXPECT_TRUE(sparse == engine.runDirect(q_cur));
}

TEST(DiffEngines, EngineThreadCountInvariance)
{
    const Conv2dParams p{3, 6, 3, 1, 1};
    const Int8Tensor w = randomInt8(Shape{6, 3, 3, 3}, 600);
    DiffConvEngine engine(w, p);
    const Int8Tensor x_prev = randomInt8(Shape{1, 3, 9, 9}, 601);
    const Int8Tensor x_cur = perturb(x_prev, 602);
    const Int32Tensor out_prev = engine.runDirect(x_prev);
    setThreadCount(1);
    const Int32Tensor r1 = engine.runDiff(x_cur, x_prev, out_prev,
                                          nullptr, DiffPolicy::ForceDiff);
    setThreadCount(4);
    const Int32Tensor r4 = engine.runDiff(x_cur, x_prev, out_prev,
                                          nullptr, DiffPolicy::ForceDiff);
    setThreadCount(1);
    EXPECT_TRUE(r1 == r4);
}

// ---- Fold-back helpers --------------------------------------------------

TEST(DiffGemmHelpers, AddTransposedInt32)
{
    const Int32Tensor prev = randomInt32(Shape{5, 9}, 700);
    const Int32Tensor delta = randomInt32(Shape{9, 5}, 701);
    const Int32Tensor out = addTransposedInt32(prev, delta);
    for (int64_t r = 0; r < 5; ++r)
        for (int64_t c = 0; c < 9; ++c)
            EXPECT_EQ(out.at(r, c), prev.at(r, c) + delta.at(c, r));
}

} // namespace
} // namespace ditto
