/**
 * @file
 * Integration tests across module boundaries:
 *
 *  - the functional Compute Unit (Encoding Unit + adder-tree PEs) must
 *    reproduce the algorithm-level difference engines bit-exactly,
 *    closing the algorithm/hardware loop;
 *  - the hardware Defo Unit table (quantized 16-bit counters) must
 *    agree with the full-precision Defo controller on realistic cycle
 *    magnitudes;
 *  - the simulator's mode decisions must be consistent with the graph
 *    dependency analysis and the trace statistics it consumes.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/defo.h"
#include "core/attention_diff.h"
#include "core/diff_linear.h"
#include "hw/accelerator.h"
#include "hw/compute_unit.h"
#include "hw/defo_unit.h"
#include "model/zoo.h"
#include "quant/quantizer.h"
#include "trace/calibrate.h"
#include "trace/provider.h"
#include "trace/sampler.h"

namespace ditto {
namespace {

Int8Tensor
randomCodes(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(shape);
    t.fillUniformInt(rng, -127, 127);
    return t;
}

/** Realistically-similar adjacent-step code pair from the SDM mixture. */
std::pair<Int8Tensor, Int8Tensor>
similarPair(int64_t rows, int64_t cols, uint64_t seed)
{
    MixtureSampler sampler(calibratedParams(ModelId::SDM), seed);
    const auto seq = sampler.sampleSequence(rows * cols, 2);
    QuantParams qp;
    qp.scale = static_cast<float>(quantScale(calibratedParams(
        ModelId::SDM)));
    Int8Tensor a(Shape{rows, cols});
    Int8Tensor b(Shape{rows, cols});
    const Int8Tensor qa = quantize(seq[0], qp);
    const Int8Tensor qb = quantize(seq[1], qp);
    for (int64_t i = 0; i < rows * cols; ++i) {
        a.at(i) = qa.at(i);
        b.at(i) = qb.at(i);
    }
    return {a, b};
}

// ---- Compute Unit vs algorithm engines ---------------------------------

TEST(ComputeUnitIntegration, DiffModeMatchesAlgorithmEngine)
{
    const Int8Tensor weight = randomCodes(Shape{24, 40}, 1);
    const auto [prev_x, x] = similarPair(5, 40, 2);
    const DiffFcEngine algo(weight);
    const Int32Tensor prev_out = algo.runDirect(prev_x);

    const ComputeUnit cu(8, 4);
    const ComputeUnitRun hw = cu.runFcDiff(x, prev_x, prev_out, weight);
    const Int32Tensor expect = algo.runDiff(x, prev_x, prev_out);
    EXPECT_TRUE(hw.output == expect);
    // And both equal direct execution on the new input.
    EXPECT_TRUE(hw.output == algo.runDirect(x));
}

TEST(ComputeUnitIntegration, ActModeMatchesDirectExecution)
{
    const Int8Tensor weight = randomCodes(Shape{16, 32}, 3);
    const Int8Tensor x = randomCodes(Shape{4, 32}, 4);
    const DiffFcEngine algo(weight);
    const ComputeUnit cu(4, 4);
    const ComputeUnitRun hw = cu.runFcAct(x, weight);
    EXPECT_TRUE(hw.output == algo.runDirect(x));
}

TEST(ComputeUnitIntegration, SpatialRowRecurrenceMatchesDirect)
{
    const Int8Tensor weight = randomCodes(Shape{12, 24}, 5);
    const auto [x, unused] = similarPair(8, 24, 6);
    (void)unused;
    const DiffFcEngine algo(weight);
    const ComputeUnit cu(6, 4);
    const ComputeUnitRun hw = cu.runFcSpatial(x, weight);
    EXPECT_TRUE(hw.output == algo.runDirect(x));
}

TEST(ComputeUnitIntegration, SimilarInputsCostFewerCycles)
{
    const Int8Tensor weight = randomCodes(Shape{32, 64}, 7);
    const auto [prev_x, x] = similarPair(4, 64, 8);
    const DiffFcEngine algo(weight);
    const Int32Tensor prev_out = algo.runDirect(prev_x);
    const ComputeUnit cu(8, 4);
    const ComputeUnitRun diff = cu.runFcDiff(x, prev_x, prev_out, weight);
    const ComputeUnitRun act = cu.runFcAct(x, weight);
    // The narrow, sparse difference stream needs fewer lane slots and
    // cycles than the full-bit-width act stream — the premise of the
    // whole design.
    EXPECT_LT(diff.laneSlots, act.laneSlots);
    EXPECT_LT(diff.cycles, act.cycles);
    EXPECT_GT(diff.zeroSkipped, 0);
}

TEST(ComputeUnitIntegration, MorePesFewerCycles)
{
    const Int8Tensor weight = randomCodes(Shape{64, 32}, 9);
    const Int8Tensor x = randomCodes(Shape{2, 32}, 10);
    const ComputeUnit small(4, 4);
    const ComputeUnit big(64, 4);
    const ComputeUnitRun rs = small.runFcAct(x, weight);
    const ComputeUnitRun rb = big.runFcAct(x, weight);
    EXPECT_TRUE(rs.output == rb.output);
    EXPECT_GT(rs.cycles, rb.cycles);
}

TEST(ComputeUnitIntegration, MultiStepChainThroughHardware)
{
    const Int8Tensor weight = randomCodes(Shape{20, 30}, 11);
    const DiffFcEngine algo(weight);
    const ComputeUnit cu(10, 4);
    auto [x, next] = similarPair(3, 30, 12);
    Int32Tensor out = algo.runDirect(x);
    for (int t = 0; t < 3; ++t) {
        const ComputeUnitRun hw = cu.runFcDiff(next, x, out, weight);
        EXPECT_TRUE(hw.output == algo.runDirect(next)) << "step " << t;
        out = hw.output;
        x = next;
        auto pair = similarPair(3, 30, 20 + static_cast<uint64_t>(t));
        next = pair.second;
    }
}

TEST(ComputeUnitIntegration, AttentionDecompositionMatchesAlgorithm)
{
    const auto [prev_q, q] = similarPair(6, 16, 30);
    const auto [prev_k, k] = similarPair(6, 16, 31);
    const Int32Tensor prev_scores =
        attentionScoresDirect(prev_q, prev_k);
    const ComputeUnit cu(6, 4);
    const ComputeUnitRun hw =
        cu.runAttnScoresDiff(q, prev_q, k, prev_k, prev_scores);
    EXPECT_TRUE(hw.output == attentionScoresDirect(q, k));
    EXPECT_TRUE(hw.output == attentionScoresDiff(q, prev_q, k, prev_k,
                                                 prev_scores));
}

TEST(ComputeUnitIntegration, AttentionChainThroughHardware)
{
    auto [q, q2] = similarPair(4, 12, 32);
    auto [k, k2] = similarPair(4, 12, 33);
    Int32Tensor scores = attentionScoresDirect(q, k);
    const ComputeUnit cu(4, 4);
    for (int t = 0; t < 3; ++t) {
        const ComputeUnitRun hw =
            cu.runAttnScoresDiff(q2, q, k2, k, scores);
        EXPECT_TRUE(hw.output == attentionScoresDirect(q2, k2))
            << "step " << t;
        scores = hw.output;
        q = q2;
        k = k2;
        q2 = similarPair(4, 12, 40 + static_cast<uint64_t>(t)).second;
        k2 = similarPair(4, 12, 50 + static_cast<uint64_t>(t)).second;
    }
}

// ---- Defo Unit table vs full-precision controller ------------------------

TEST(DefoUnitIntegration, AgreesWithControllerOnClearMargins)
{
    DefoUnitTable table(6);
    DefoController ctrl(FlowPolicy::Defo, 4);
    struct Case
    {
        double act, diff;
    };
    const Case cases[4] = {
        {50000.0, 20000.0}, // diff clearly wins
        {20000.0, 50000.0}, // act clearly wins
        {900000.0, 100000.0},
        {1000.0, 4000.0},
    };
    for (int l = 0; l < 4; ++l) {
        table.recordFirstStep(l, cases[l].act);
        table.recordSecondStep(l, cases[l].diff);
        ctrl.observe(l, 0, ExecMode::Act, cases[l].act);
        ctrl.observe(l, 1, ExecMode::TemporalDiff, cases[l].diff);
        EXPECT_EQ(table.lockedMode(l), ctrl.chooseMode(l, 2))
            << "layer " << l;
    }
}

TEST(DefoUnitIntegration, SaturationPreservesLargeMarginDecisions)
{
    // Cycle counts beyond 16 bits saturate; the decision survives as
    // long as one side saturates and the other does not.
    DefoUnitTable table(6);
    table.recordFirstStep(0, 1.0e9);  // saturates
    table.recordSecondStep(0, 5.0e5); // fits
    EXPECT_EQ(table.lockedMode(0), ExecMode::TemporalDiff);
    EXPECT_EQ(table.storedActCount(0), DefoUnitTable::kMaxCount);
}

TEST(DefoUnitIntegration, QuantizationGranularityBounds)
{
    DefoUnitTable table(6);
    // Differences below one granule (64 cycles) can be lost...
    table.recordFirstStep(0, 1000.0);
    table.recordSecondStep(0, 1010.0);
    EXPECT_EQ(table.storedActCount(0), table.storedDiffCount(0));
    // ...but anything beyond a granule is preserved.
    table.recordFirstStep(1, 1000.0);
    table.recordSecondStep(1, 1200.0);
    EXPECT_EQ(table.lockedMode(1), ExecMode::Act);
}

TEST(DefoUnitIntegration, CapacityCoversEveryBenchmarkModel)
{
    for (ModelId id : allModels()) {
        EXPECT_LE(buildModel(id).numComputeLayers(),
                  DefoUnitTable::kEntries)
            << modelAbbr(id);
    }
    EXPECT_EQ(DefoUnitTable::entryBits(), 33);
}

TEST(DefoUnitIntegration, SixteenBitCountersSufficeForRealLayers)
{
    // Paper: "first time step and second time step cycle can be
    // represented with 16-bit". Verify with the simulator's actual
    // per-layer magnitudes at the chosen granularity.
    const ModelGraph g = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, g);
    const auto deps = g.analyzeDependencies();
    const auto onchip = deriveOnChipFlags(g);
    const HwConfig cfg = makeConfig(HwDesign::Ditto);
    const EnergyTable et;
    int saturated = 0;
    int layers = 0;
    for (const Layer &l : g.layers()) {
        if (!l.isCompute() || l.constPerRun)
            continue;
        const LayerCost c = computeLayerCost(
            cfg, et, l, deps[l.id], onchip[l.id], trace.stats(l.id, 0),
            ExecMode::Act, true);
        ++layers;
        if (c.totalCycles / 64.0 > DefoUnitTable::kMaxCount)
            ++saturated;
    }
    // With 64-cycle granularity the counters cover ~4.2M cycles; no
    // SDM layer exceeds that.
    EXPECT_EQ(saturated, 0);
    EXPECT_GT(layers, 300);
}

// ---- Simulator / dependency / trace consistency --------------------------

TEST(SimIntegration, DepCheckLowersDiffTraffic)
{
    const ModelGraph g = buildModel(ModelId::BED);
    const TraceProvider trace(ModelId::BED, g);
    HwConfig with = makeConfig(HwDesign::CambriconD);
    HwConfig without = with;
    without.depCheck = false;
    const RunResult rw = simulate(with, g, trace);
    const RunResult rwo = simulate(without, g, trace);
    EXPECT_LT(rw.dramBytes, rwo.dramBytes);
}

TEST(SimIntegration, AttnDiffNeverHurtsUnderDefoAndRescuesCamD)
{
    const ModelGraph g = buildModel(ModelId::DiT);
    const TraceProvider trace(ModelId::DiT, g);
    // On Ditto, Defo legalises memory-bound attention layers either
    // way, so attention-difference support must never hurt...
    HwConfig with = makeConfig(HwDesign::Ditto);
    HwConfig without = with;
    without.attnDiff = false;
    EXPECT_LE(simulate(with, g, trace).totalCycles,
              simulate(without, g, trace).totalCycles * 1.001);
    // ...while on Cambricon-D, whose act-mode attention falls back to
    // the outlier lanes, it is the dominant rescue (Fig. 15).
    HwConfig camd = makeConfig(HwDesign::CambriconD);
    HwConfig camd_without = camd;
    camd_without.attnDiff = false;
    EXPECT_LT(simulate(camd, g, trace).totalCycles,
              simulate(camd_without, g, trace).totalCycles);
}

TEST(SimIntegration, ZeroSkipMattersMostWhereZerosAre)
{
    // DDPM has the largest temporal zero fraction; removing zero
    // skipping must hurt it proportionally more than DiT.
    auto penalty = [](ModelId id) {
        const ModelGraph g = buildModel(id);
        const TraceProvider trace(id, g);
        HwConfig with = makeConfig(HwDesign::Ditto);
        HwConfig without = with;
        without.zeroSkip = false;
        return simulate(without, g, trace).totalCycles /
               simulate(with, g, trace).totalCycles;
    };
    EXPECT_GT(penalty(ModelId::DDPM), penalty(ModelId::DiT));
}

TEST(SimIntegration, ConstPerRunLayersChargedOnce)
{
    // SDM's cross-attention K'/V' projections execute only at the
    // first step; zeroing them out of the graph must not change any
    // later-step costs. Verify indirectly: their total MACs are a tiny
    // fraction, and a 2x longer schedule scales total cycles by ~2x
    // minus the fixed first-step share.
    const ModelGraph g = buildModel(ModelId::SDM);
    int64_t const_macs = 0;
    for (const Layer &l : g.layers())
        if (l.constPerRun)
            const_macs += l.macs;
    EXPECT_GT(const_macs, 0);
    EXPECT_LT(static_cast<double>(const_macs) /
                  static_cast<double>(g.totalMacs()),
              0.02);
}

TEST(SimIntegration, IdealNeverSlowerThanDefo)
{
    for (ModelId id : {ModelId::DDPM, ModelId::SDM, ModelId::Latte}) {
        const ModelGraph g = buildModel(id);
        const TraceProvider trace(id, g);
        const RunResult defo =
            simulate(makeConfig(HwDesign::Ditto), g, trace);
        HwConfig ideal_cfg = makeConfig(HwDesign::Ditto);
        ideal_cfg.policy = FlowPolicy::Ideal;
        const RunResult ideal = simulate(ideal_cfg, g, trace);
        EXPECT_LE(ideal.totalCycles, defo.totalCycles * 1.0000001)
            << modelAbbr(id);
    }
}

TEST(SimIntegration, DriftHurtsStaticDefoMoreThanOracle)
{
    const ModelGraph g = buildModel(ModelId::Latte);
    TraceOptions drift;
    drift.driftSimilarity = true;
    const TraceProvider trace(ModelId::Latte, g, drift);
    const RunResult defo =
        simulate(makeConfig(HwDesign::Ditto), g, trace);
    HwConfig ideal_cfg = makeConfig(HwDesign::Ditto);
    ideal_cfg.policy = FlowPolicy::Ideal;
    const RunResult ideal = simulate(ideal_cfg, g, trace);
    EXPECT_LT(ideal.totalCycles, defo.totalCycles);
}

} // namespace
} // namespace ditto
