/**
 * @file
 * Parity tests: blocked/parallel kernels vs the scalar naive::
 * references.
 *
 * Integer kernels must match bitwise at any thread count (their
 * accumulation order is fixed by the serial K-block loop); float
 * kernels must match the references within a tight epsilon and must be
 * run-to-run deterministic at any thread count.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/diff_linear.h"
#include "quant/encoder.h"
#include "tensor/diff_gemm.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/simd/simd.h"
#include "tensor/tensor.h"

namespace ditto {
namespace {

FloatTensor
randomFloat(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    FloatTensor t(shape);
    t.fillNormal(rng, 0.0, 1.0);
    return t;
}

Int8Tensor
randomInt8(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    Int8Tensor t(shape);
    t.fillUniformInt(rng, -127, 127);
    return t;
}

Int16Tensor
randomInt16Diff(const Shape &shape, uint64_t seed)
{
    Rng rng(seed);
    Int16Tensor t(shape);
    t.fillUniformInt(rng, -254, 254);
    return t;
}

void
expectNear(const FloatTensor &got, const FloatTensor &want, float tol)
{
    ASSERT_EQ(got.shape(), want.shape());
    for (int64_t i = 0; i < got.numel(); ++i)
        ASSERT_NEAR(got.at(i), want.at(i), tol) << "at flat index " << i;
}

/** Odd, fringe-heavy shapes: not multiples of the 4x16 micro-tile. */
struct MatShape
{
    int64_t m, k, n;
};

const MatShape kMatShapes[] = {
    {1, 1, 1},   {3, 5, 7},    {4, 16, 16},  {5, 17, 33},
    {17, 3, 19}, {16, 64, 16}, {33, 129, 65}, {2, 300, 9},
};

TEST(KernelsParity, MatmulFloat)
{
    for (const auto &s : kMatShapes) {
        const FloatTensor a = randomFloat(Shape{s.m, s.k}, 1);
        const FloatTensor b = randomFloat(Shape{s.k, s.n}, 2);
        expectNear(matmul(a, b), naive::matmul(a, b),
                   1e-4f * static_cast<float>(std::sqrt(s.k)));
    }
}

TEST(KernelsParity, MatmulTransposedFloat)
{
    for (const auto &s : kMatShapes) {
        const FloatTensor a = randomFloat(Shape{s.m, s.k}, 3);
        const FloatTensor b = randomFloat(Shape{s.n, s.k}, 4);
        expectNear(matmulTransposed(a, b), naive::matmulTransposed(a, b),
                   1e-4f * static_cast<float>(std::sqrt(s.k)));
    }
}

TEST(KernelsParity, MatmulInt8Bitwise)
{
    for (const auto &s : kMatShapes) {
        const Int8Tensor a = randomInt8(Shape{s.m, s.k}, 5);
        const Int8Tensor b = randomInt8(Shape{s.k, s.n}, 6);
        EXPECT_TRUE(matmulInt8(a, b) == naive::matmulInt8(a, b));
        const Int8Tensor bt = randomInt8(Shape{s.n, s.k}, 7);
        EXPECT_TRUE(matmulTransposedInt8(a, bt) ==
                    naive::matmulTransposedInt8(a, bt));
    }
}

TEST(KernelsParity, MatmulDiffInt16Bitwise)
{
    for (const auto &s : kMatShapes) {
        const Int16Tensor a = randomInt16Diff(Shape{s.m, s.k}, 8);
        const Int8Tensor b = randomInt8(Shape{s.k, s.n}, 9);
        EXPECT_TRUE(matmulDiffInt16(a, b) == naive::matmulDiffInt16(a, b));
        const Int8Tensor bt = randomInt8(Shape{s.n, s.k}, 10);
        EXPECT_TRUE(matmulTransposedDiffInt16(a, bt) ==
                    naive::matmulTransposedDiffInt16(a, bt));
    }
}

TEST(KernelsParity, FullyConnectedWithBias)
{
    const FloatTensor x = randomFloat(Shape{7, 23}, 11);
    const FloatTensor w = randomFloat(Shape{19, 23}, 12);
    const FloatTensor bias = randomFloat(Shape{19}, 13);
    expectNear(fullyConnected(x, w, &bias),
               naive::fullyConnected(x, w, &bias), 1e-3f);
    EXPECT_TRUE(fullyConnectedInt8(randomInt8(Shape{7, 23}, 14),
                                   randomInt8(Shape{19, 23}, 15)) ==
                naive::fullyConnectedInt8(randomInt8(Shape{7, 23}, 14),
                                          randomInt8(Shape{19, 23}, 15)));
}

/** Stride/padding/kernel combinations, including non-square inputs. */
struct ConvCase
{
    int64_t cin, cout, h, w, kernel, stride, padding;
};

const ConvCase kConvCases[] = {
    {1, 1, 5, 5, 1, 1, 0},   {2, 3, 7, 9, 3, 1, 1},
    {3, 5, 8, 6, 3, 2, 1},   {4, 4, 9, 9, 5, 1, 2},
    {5, 2, 11, 7, 3, 3, 0},  {8, 16, 6, 6, 1, 1, 0},
    {2, 7, 10, 4, 5, 2, 3},  {6, 3, 12, 12, 7, 2, 3},
};

TEST(KernelsParity, Conv2dFloatStridePadding)
{
    for (const auto &cc : kConvCases) {
        const Conv2dParams p{cc.cin, cc.cout, cc.kernel, cc.stride,
                             cc.padding};
        const FloatTensor x =
            randomFloat(Shape{2, cc.cin, cc.h, cc.w}, 16);
        const FloatTensor wgt = randomFloat(
            Shape{cc.cout, cc.cin, cc.kernel, cc.kernel}, 17);
        const FloatTensor bias = randomFloat(Shape{cc.cout}, 18);
        expectNear(conv2d(x, wgt, &bias, p),
                   naive::conv2d(x, wgt, &bias, p), 1e-3f);
    }
}

TEST(KernelsParity, Conv2dIntBitwiseStridePadding)
{
    for (const auto &cc : kConvCases) {
        const Conv2dParams p{cc.cin, cc.cout, cc.kernel, cc.stride,
                             cc.padding};
        const Int8Tensor x8 = randomInt8(Shape{2, cc.cin, cc.h, cc.w}, 19);
        const Int8Tensor wgt = randomInt8(
            Shape{cc.cout, cc.cin, cc.kernel, cc.kernel}, 20);
        EXPECT_TRUE(conv2dInt8(x8, wgt, p) ==
                    naive::conv2dInt8(x8, wgt, p));
        const Int16Tensor x16 =
            randomInt16Diff(Shape{2, cc.cin, cc.h, cc.w}, 21);
        EXPECT_TRUE(conv2dDiffInt16(x16, wgt, p) ==
                    naive::conv2dDiffInt16(x16, wgt, p));
    }
}

TEST(KernelsParity, FusedEpiloguesMatchSeparateOps)
{
    const FloatTensor x = randomFloat(Shape{9, 31}, 22);
    const FloatTensor w = randomFloat(Shape{21, 31}, 23);
    const FloatTensor bias = randomFloat(Shape{21}, 24);
    const FloatTensor plain = fullyConnected(x, w, &bias);
    expectNear(kernels::gemm(x, w, true, &bias,
                             kernels::Activation::kSiLU),
               silu(plain), 1e-4f);
    expectNear(kernels::gemm(x, w, true, &bias,
                             kernels::Activation::kGELU),
               gelu(plain), 1e-4f);

    const Conv2dParams p{3, 5, 3, 1, 1};
    const FloatTensor cx = randomFloat(Shape{1, 3, 8, 8}, 25);
    const FloatTensor cw = randomFloat(Shape{5, 3, 3, 3}, 26);
    const FloatTensor cb = randomFloat(Shape{5}, 27);
    expectNear(kernels::conv2d(cx, cw, &cb, p,
                               kernels::Activation::kSiLU),
               silu(conv2d(cx, cw, &cb, p)), 1e-4f);
}

TEST(KernelsParity, NormsAndActivations)
{
    const FloatTensor x4 = randomFloat(Shape{2, 6, 5, 7}, 28);
    expectNear(groupNorm(x4, 3, 1e-5f), naive::groupNorm(x4, 3, 1e-5f),
               1e-3f);
    const FloatTensor x2 = randomFloat(Shape{9, 37}, 29);
    expectNear(layerNorm(x2, 1e-5f), naive::layerNorm(x2, 1e-5f), 1e-3f);
    expectNear(softmaxRows(x2), naive::softmaxRows(x2), 1e-5f);
    expectNear(silu(x2), naive::silu(x2), 1e-6f);
    expectNear(gelu(x2), naive::gelu(x2), 1e-6f);
}

/** Run `fn` at 1 thread and at N threads; results must agree. */
template <typename Fn>
void
checkThreadInvariance(Fn fn, bool bitwise)
{
    setThreadCount(1);
    const auto r1 = fn();
    setThreadCount(4);
    const auto rn = fn();
    setThreadCount(1);
    const auto r1b = fn();
    EXPECT_TRUE(r1 == r1b) << "kernel not run-to-run deterministic";
    if (bitwise)
        EXPECT_TRUE(r1 == rn) << "thread count changed integer result";
    else
        EXPECT_TRUE(r1 == rn)
            << "thread count changed float result (accumulation order "
               "must not depend on the partition)";
}

TEST(KernelsDeterminism, ThreadCountInvariance)
{
    const Int8Tensor a8 = randomInt8(Shape{37, 129}, 30);
    const Int8Tensor b8 = randomInt8(Shape{129, 53}, 31);
    checkThreadInvariance([&] { return matmulInt8(a8, b8); }, true);

    const Int16Tensor a16 = randomInt16Diff(Shape{37, 129}, 32);
    checkThreadInvariance([&] { return matmulDiffInt16(a16, b8); }, true);

    const Conv2dParams p{3, 7, 3, 2, 1};
    const Int8Tensor cx = randomInt8(Shape{2, 3, 13, 11}, 33);
    const Int8Tensor cw = randomInt8(Shape{7, 3, 3, 3}, 34);
    checkThreadInvariance([&] { return conv2dInt8(cx, cw, p); }, true);

    // Float kernels: the K-block loop is serial, so even float results
    // are identical across thread counts.
    const FloatTensor af = randomFloat(Shape{37, 129}, 35);
    const FloatTensor bf = randomFloat(Shape{129, 53}, 36);
    checkThreadInvariance([&] { return matmul(af, bf); }, false);
    const FloatTensor x4 = randomFloat(Shape{2, 6, 9, 9}, 37);
    checkThreadInvariance([&] { return groupNorm(x4, 2, 1e-5f); }, false);
    setThreadCount(1);
}

TEST(KernelsParallel, NestedParallelForFromCallerIsSafe)
{
    setThreadCount(4);
    // Outer job whose body issues another parallelFor (as a batching
    // layer calling public kernels would). The inner calls must run
    // inline instead of clobbering the live outer job.
    std::vector<int> hits(256, 0);
    parallelFor(0, 4, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t o = lo; o < hi; ++o) {
            parallelFor(0, 64, 8, [&](int64_t ilo, int64_t ihi) {
                for (int64_t i = ilo; i < ihi; ++i)
                    ++hits[static_cast<size_t>(o * 64 + i)];
            });
        }
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
    setThreadCount(1);
}

TEST(KernelsParity, ConvBatchParallelPathMatchesNaive)
{
    // More batches than threads exercises the batch-parallel branch of
    // convBlocked (inner GEMMs run inline on the workers).
    setThreadCount(2);
    const Conv2dParams p{3, 5, 3, 1, 1};
    const Int8Tensor x = randomInt8(Shape{4, 3, 9, 9}, 40);
    const Int8Tensor w = randomInt8(Shape{5, 3, 3, 3}, 41);
    EXPECT_TRUE(conv2dInt8(x, w, p) == naive::conv2dInt8(x, w, p));
    const FloatTensor xf = randomFloat(Shape{4, 3, 9, 9}, 42);
    const FloatTensor wf = randomFloat(Shape{5, 3, 3, 3}, 43);
    expectNear(conv2d(xf, wf, nullptr, p),
               naive::conv2d(xf, wf, nullptr, p), 1e-3f);
    setThreadCount(1);
}

TEST(KernelsParallel, ParallelForCoversRangeExactlyOnce)
{
    setThreadCount(4);
    std::vector<int> hits(1000, 0);
    parallelFor(0, 1000, 37, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            ++hits[static_cast<size_t>(i)];
    });
    for (int h : hits)
        EXPECT_EQ(h, 1);
    // Empty and single-element ranges.
    parallelFor(5, 5, 1, [&](int64_t, int64_t) { FAIL(); });
    int calls = 0;
    parallelFor(0, 1, 1, [&](int64_t lo, int64_t hi) {
        EXPECT_EQ(lo, 0);
        EXPECT_EQ(hi, 1);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
    setThreadCount(1);
}

// ---- Runtime SIMD dispatch parity --------------------------------------
//
// Every hand-written variant (avx2 / avx512 / neon, whichever this
// host can execute) must produce bitwise-identical integer results to
// the generic level — the dispatched primitives are pure integer
// arithmetic, so there is no tolerance, only equality. Each check runs
// the same workload pinned to each level via simd::setLevel and
// compares against the generic baseline.

/** Difference matrix with a zero / low4 / full8 mix (percentages). */
Int16Tensor
mixDiff(const Shape &shape, int zero_pct, int low4_pct, uint64_t seed)
{
    Rng rng(seed);
    Int16Tensor t(shape);
    for (auto &v : t.data()) {
        const int u = static_cast<int>(rng.uniformInt(100));
        if (u < zero_pct) {
            v = 0;
        } else if (u < zero_pct + low4_pct) {
            const int64_t m = 1 + static_cast<int64_t>(rng.uniformInt(7));
            v = static_cast<int16_t>(rng.bernoulli(0.5) ? m : -m);
        } else {
            const int64_t m = 8 + static_cast<int64_t>(rng.uniformInt(247));
            v = static_cast<int16_t>(rng.bernoulli(0.5) ? m : -m);
        }
    }
    return t;
}

/**
 * Run `fn` once per level this host can execute and compare each
 * result bitwise against the generic level's. Restores the dispatch
 * afterwards.
 */
template <typename Fn>
void
expectBitwiseAcrossLevels(Fn fn)
{
    simd::setLevel(simd::Level::kGeneric);
    const auto want = fn();
    for (simd::Level level : simd::availableLevels()) {
        if (level == simd::Level::kGeneric)
            continue;
        simd::setLevel(level);
        EXPECT_TRUE(fn() == want)
            << "SIMD level '" << simd::levelName(level)
            << "' diverges from generic";
    }
    simd::resetLevel();
}

TEST(SimdDispatch, GenericAlwaysAvailableAndComplete)
{
    const std::vector<simd::Level> levels = simd::availableLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), simd::Level::kGeneric);
    for (simd::Level level : levels) {
        const simd::KernelTable &t = simd::tableFor(level);
        EXPECT_EQ(t.level, level);
        // Every level implements the axpy primitives; only hand-written
        // levels provide the pair micro-kernel (generic keeps the
        // driver's historic widened path).
        EXPECT_NE(t.low4GroupAxpy, nullptr);
        EXPECT_NE(t.diffAxpy, nullptr);
        if (level == simd::Level::kGeneric)
            EXPECT_EQ(t.gemmMicroPairs, nullptr);
        else
            EXPECT_NE(t.gemmMicroPairs, nullptr);
        EXPECT_STRNE(simd::levelName(level), "unknown");
    }
    // Pinning and resetting round-trips.
    simd::setLevel(levels.back());
    EXPECT_EQ(simd::activeLevel(), levels.back());
    simd::resetLevel();
}

TEST(SimdDispatch, IntegerGemmBitwiseAcrossLevels)
{
    // kMatShapes' odd sizes plus K extents straddling the kKc = 256
    // panel boundary and odd K (the pair packing pads a zero pair).
    const MatShape shapes[] = {
        {1, 1, 1},   {3, 5, 7},     {5, 17, 33},  {2, 300, 9},
        {4, 255, 7}, {4, 256, 17},  {4, 257, 16}, {3, 511, 9},
        {5, 512, 33}, {2, 513, 1},
    };
    int64_t seed = 100;
    for (const auto &s : shapes) {
        const Int8Tensor a8 = randomInt8(Shape{s.m, s.k}, seed++);
        const Int8Tensor b8 = randomInt8(Shape{s.k, s.n}, seed++);
        const Int8Tensor b8t = randomInt8(Shape{s.n, s.k}, seed++);
        const Int16Tensor a16 = randomInt16Diff(Shape{s.m, s.k}, seed++);
        expectBitwiseAcrossLevels([&] { return matmulInt8(a8, b8); });
        expectBitwiseAcrossLevels(
            [&] { return matmulTransposedInt8(a8, b8t); });
        expectBitwiseAcrossLevels([&] { return matmulDiffInt16(a16, b8); });
        expectBitwiseAcrossLevels(
            [&] { return matmulTransposedDiffInt16(a16, b8t); });
    }
}

TEST(SimdDispatch, ConvIntBitwiseAcrossLevels)
{
    int64_t seed = 200;
    for (const auto &cc : kConvCases) {
        const Conv2dParams p{cc.cin, cc.cout, cc.kernel, cc.stride,
                             cc.padding};
        const Int8Tensor x8 =
            randomInt8(Shape{2, cc.cin, cc.h, cc.w}, seed++);
        const Int8Tensor wgt = randomInt8(
            Shape{cc.cout, cc.cin, cc.kernel, cc.kernel}, seed++);
        const Int16Tensor x16 =
            randomInt16Diff(Shape{2, cc.cin, cc.h, cc.w}, seed++);
        expectBitwiseAcrossLevels([&] { return conv2dInt8(x8, wgt, p); });
        expectBitwiseAcrossLevels(
            [&] { return conv2dDiffInt16(x16, wgt, p); });
    }
}

TEST(SimdDispatch, DiffGemmPlanBitwiseAcrossLevels)
{
    // Mixes cover zero-panel plans (all-zero rows leave prev rows
    // untouched), all-low4 (group axpy + tails), all-full8 (wide
    // axpy), and blends; K extents straddle the kDiffPanelK = 64
    // panel edge and N hits the vector-tail sizes.
    const struct
    {
        int zero, low4;
        int64_t k, n;
    } cases[] = {
        {100, 0, 64, 16},  {0, 100, 63, 19}, {0, 0, 65, 33},
        {70, 25, 128, 1},  {40, 40, 150, 40}, {90, 9, 257, 31},
    };
    int64_t seed = 300;
    for (const auto &c : cases) {
        const Int16Tensor diff =
            mixDiff(Shape{9, c.k}, c.zero, c.low4, seed++);
        const DiffGemmPlan plan = encodeDiff(diff);
        const Int8Tensor b = randomInt8(Shape{c.k, c.n}, seed++);
        Int32Tensor prev(Shape{9, c.n});
        {
            Rng rng(static_cast<uint64_t>(seed++));
            prev.fillUniformInt(rng, -1000, 1000);
        }
        expectBitwiseAcrossLevels([&] {
            return kernels::diffGemm(plan, b.data().data(), c.n,
                            /*transpose_b=*/false, &prev);
        });
    }
}

TEST(SimdDispatch, ConvScatterBitwiseAcrossLevels)
{
    // ForceDiff drives the scatter engine: 3x3/stride-1 exercises the
    // interior fast path (reversed-weight row axpy), 1x1 the pointwise
    // scatter, 5x5/stride-2 the windowed scatterEntry path.
    const ConvCase cases[] = {
        {3, 5, 9, 9, 3, 1, 1},
        {4, 6, 8, 8, 1, 1, 0},
        {2, 7, 11, 9, 5, 2, 2},
    };
    int64_t seed = 400;
    for (const auto &cc : cases) {
        const Conv2dParams p{cc.cin, cc.cout, cc.kernel, cc.stride,
                             cc.padding};
        const DiffConvEngine engine(
            randomInt8(Shape{cc.cout, cc.cin, cc.kernel, cc.kernel},
                       seed++),
            p);
        const Int8Tensor prev_x =
            randomInt8(Shape{1, cc.cin, cc.h, cc.w}, seed++);
        Int8Tensor x = prev_x;
        {
            // Sparse perturbation so the difference has all classes.
            Rng rng(static_cast<uint64_t>(seed++));
            for (auto &v : x.data())
                if (rng.bernoulli(0.2))
                    v = static_cast<int8_t>(
                        std::clamp<int64_t>(
                            v + rng.uniformInt(31) - 15, -127, 127));
        }
        const Int32Tensor prev_out = engine.runDirect(prev_x);
        expectBitwiseAcrossLevels([&] {
            return engine.runDiff(x, prev_x, prev_out, nullptr,
                                  DiffPolicy::ForceDiff);
        });
    }
}

TEST(SimdDispatch, ThreadInvarianceAtEveryLevel)
{
    const Int8Tensor a8 = randomInt8(Shape{37, 129}, 500);
    const Int8Tensor b8 = randomInt8(Shape{129, 53}, 501);
    const Int16Tensor diff = mixDiff(Shape{21, 129}, 60, 25, 502);
    const DiffGemmPlan plan = encodeDiff(diff);
    const Int8Tensor pb = randomInt8(Shape{129, 53}, 503);
    for (simd::Level level : simd::availableLevels()) {
        simd::setLevel(level);
        checkThreadInvariance([&] { return matmulInt8(a8, b8); }, true);
        checkThreadInvariance(
            [&] {
                return kernels::diffGemm(plan, pb.data().data(), 53,
                                /*transpose_b=*/false, nullptr);
            },
            true);
    }
    simd::resetLevel();
    setThreadCount(1);
}

} // namespace
} // namespace ditto
