/**
 * @file
 * Unit tests for src/tensor: shapes, tensors and the reference kernels.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {
namespace {

TEST(Shape, RankAndDims)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s[0], 2);
    EXPECT_EQ(s[1], 3);
    EXPECT_EQ(s[2], 4);
    EXPECT_EQ(s.numel(), 24);
}

TEST(Shape, EmptyShapeHasZeroElements)
{
    Shape s;
    EXPECT_EQ(s.rank(), 0);
    EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, ToString)
{
    EXPECT_EQ(Shape({2, 3}).toString(), "[2, 3]");
}

TEST(Tensor, FillAndAccess)
{
    FloatTensor t(Shape{2, 3}, 1.5f);
    EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
    t.at(0, 1) = 2.0f;
    EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(t.at(1), 2.0f); // flat index 1 aliases (0, 1)
    EXPECT_FLOAT_EQ(t.at(3), 1.5f); // flat index 3 aliases (1, 0)
}

TEST(Tensor, FourDimAccessorRowMajor)
{
    Int32Tensor t(Shape{1, 2, 3, 4});
    t.at(0, 1, 2, 3) = 42;
    EXPECT_EQ(t.at(1 * 3 * 4 + 2 * 4 + 3), 42);
}

TEST(Tensor, EqualityIncludesShape)
{
    FloatTensor a(Shape{2, 2}, 1.0f);
    FloatTensor b(Shape{4}, 1.0f);
    EXPECT_FALSE(a == b);
    FloatTensor c(Shape{2, 2}, 1.0f);
    EXPECT_TRUE(a == c);
}

TEST(Tensor, FillNormalProducesVariedValues)
{
    Rng rng(1);
    FloatTensor t(Shape{1000});
    t.fillNormal(rng, 0.0, 1.0);
    double sum = 0.0;
    for (float v : t.data())
        sum += v;
    EXPECT_NEAR(sum / 1000.0, 0.0, 0.15);
}

TEST(Tensor, FillUniformIntInRange)
{
    Rng rng(2);
    Int8Tensor t(Shape{1000});
    t.fillUniformInt(rng, -5, 5);
    for (int8_t v : t.data()) {
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Ops, MatmulHandComputed)
{
    FloatTensor a(Shape{2, 3});
    FloatTensor b(Shape{3, 2});
    for (int64_t i = 0; i < 6; ++i) {
        a.at(i) = static_cast<float>(i + 1);     // 1..6
        b.at(i) = static_cast<float>(6 - i);     // 6..1
    }
    const FloatTensor c = matmul(a, b);
    // a = [[1,2,3],[4,5,6]], b = [[6,5],[4,3],[2,1]]
    EXPECT_FLOAT_EQ(c.at(0, 0), 1 * 6 + 2 * 4 + 3 * 2);
    EXPECT_FLOAT_EQ(c.at(0, 1), 1 * 5 + 2 * 3 + 3 * 1);
    EXPECT_FLOAT_EQ(c.at(1, 0), 4 * 6 + 5 * 4 + 6 * 2);
    EXPECT_FLOAT_EQ(c.at(1, 1), 4 * 5 + 5 * 3 + 6 * 1);
}

TEST(Ops, MatmulTransposedMatchesMatmul)
{
    Rng rng(3);
    FloatTensor a(Shape{4, 5});
    FloatTensor b(Shape{5, 6});
    a.fillNormal(rng);
    b.fillNormal(rng);
    FloatTensor bt(Shape{6, 5});
    for (int64_t i = 0; i < 5; ++i)
        for (int64_t j = 0; j < 6; ++j)
            bt.at(j, i) = b.at(i, j);
    const FloatTensor c1 = matmul(a, b);
    const FloatTensor c2 = matmulTransposed(a, bt);
    for (int64_t i = 0; i < c1.numel(); ++i)
        EXPECT_NEAR(c1.at(i), c2.at(i), 1e-4f);
}

TEST(Ops, ConvIdentityKernelPreservesInput)
{
    Rng rng(4);
    FloatTensor x(Shape{1, 2, 5, 5});
    x.fillNormal(rng);
    FloatTensor w(Shape{2, 2, 1, 1}, 0.0f);
    w.at(0, 0, 0, 0) = 1.0f;
    w.at(1, 1, 0, 0) = 1.0f;
    const Conv2dParams p{2, 2, 1, 1, 0};
    const FloatTensor y = conv2d(x, w, nullptr, p);
    EXPECT_EQ(y.shape(), x.shape());
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(Ops, ConvAveragingKernel)
{
    FloatTensor x(Shape{1, 1, 3, 3}, 1.0f);
    FloatTensor w(Shape{1, 1, 3, 3}, 1.0f);
    const Conv2dParams p{1, 1, 3, 1, 1};
    const FloatTensor y = conv2d(x, w, nullptr, p);
    // Centre pixel sees all 9 ones; corners see 4.
    EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);
}

TEST(Ops, ConvStrideHalvesExtent)
{
    FloatTensor x(Shape{1, 1, 8, 8}, 1.0f);
    FloatTensor w(Shape{1, 1, 3, 3}, 1.0f);
    const Conv2dParams p{1, 1, 3, 2, 1};
    const FloatTensor y = conv2d(x, w, nullptr, p);
    EXPECT_EQ(y.shape(), Shape({1, 1, 4, 4}));
}

TEST(Ops, ConvBiasApplied)
{
    FloatTensor x(Shape{1, 1, 2, 2}, 0.0f);
    FloatTensor w(Shape{1, 1, 1, 1}, 1.0f);
    FloatTensor bias(Shape{1}, 2.5f);
    const Conv2dParams p{1, 1, 1, 1, 0};
    const FloatTensor y = conv2d(x, w, &bias, p);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(y.at(i), 2.5f);
}

TEST(Ops, FullyConnectedWithBias)
{
    FloatTensor x(Shape{1, 3});
    x.at(0, 0) = 1.0f;
    x.at(0, 1) = 2.0f;
    x.at(0, 2) = 3.0f;
    FloatTensor w(Shape{2, 3}, 1.0f);
    FloatTensor bias(Shape{2});
    bias.at(0) = 10.0f;
    bias.at(1) = -10.0f;
    const FloatTensor y = fullyConnected(x, w, &bias);
    EXPECT_FLOAT_EQ(y.at(0, 0), 16.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), -4.0f);
}

TEST(Ops, ElementwiseAddSubMul)
{
    FloatTensor a(Shape{4}, 3.0f);
    FloatTensor b(Shape{4}, 2.0f);
    EXPECT_FLOAT_EQ(add(a, b).at(0), 5.0f);
    EXPECT_FLOAT_EQ(subtract(a, b).at(0), 1.0f);
    EXPECT_FLOAT_EQ(multiply(a, b).at(0), 6.0f);
}

TEST(Ops, AffineScaleShift)
{
    FloatTensor a(Shape{2}, 2.0f);
    const FloatTensor y = affine(a, 3.0f, 1.0f);
    EXPECT_FLOAT_EQ(y.at(0), 7.0f);
}

TEST(Ops, SiluKnownValues)
{
    FloatTensor x(Shape{3});
    x.at(0) = 0.0f;
    x.at(1) = 10.0f;
    x.at(2) = -10.0f;
    const FloatTensor y = silu(x);
    EXPECT_FLOAT_EQ(y.at(0), 0.0f);
    EXPECT_NEAR(y.at(1), 10.0f, 1e-3f);
    EXPECT_NEAR(y.at(2), 0.0f, 1e-3f);
}

TEST(Ops, GeluKnownValues)
{
    FloatTensor x(Shape{2});
    x.at(0) = 0.0f;
    x.at(1) = 3.0f;
    const FloatTensor y = gelu(x);
    EXPECT_FLOAT_EQ(y.at(0), 0.0f);
    EXPECT_NEAR(y.at(1), 2.996f, 1e-2f);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(5);
    FloatTensor x(Shape{4, 7});
    x.fillNormal(rng, 0.0, 3.0);
    const FloatTensor y = softmaxRows(x);
    for (int64_t r = 0; r < 4; ++r) {
        float sum = 0.0f;
        for (int64_t c = 0; c < 7; ++c) {
            EXPECT_GT(y.at(r, c), 0.0f);
            sum += y.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Ops, SoftmaxNumericallyStableOnLargeInputs)
{
    FloatTensor x(Shape{1, 3});
    x.at(0, 0) = 1000.0f;
    x.at(0, 1) = 1001.0f;
    x.at(0, 2) = 999.0f;
    const FloatTensor y = softmaxRows(x);
    EXPECT_FALSE(std::isnan(y.at(0, 0)));
    EXPECT_GT(y.at(0, 1), y.at(0, 0));
}

TEST(Ops, GroupNormZeroMeanUnitVarPerGroup)
{
    Rng rng(6);
    FloatTensor x(Shape{1, 4, 4, 4});
    x.fillNormal(rng, 3.0, 2.0);
    const FloatTensor y = groupNorm(x, 2);
    for (int g = 0; g < 2; ++g) {
        double mean = 0.0;
        double var = 0.0;
        for (int64_t c = g * 2; c < (g + 1) * 2; ++c)
            for (int64_t i = 0; i < 4; ++i)
                for (int64_t j = 0; j < 4; ++j)
                    mean += y.at(0, c, i, j);
        mean /= 32.0;
        for (int64_t c = g * 2; c < (g + 1) * 2; ++c)
            for (int64_t i = 0; i < 4; ++i)
                for (int64_t j = 0; j < 4; ++j)
                    var += (y.at(0, c, i, j) - mean) *
                           (y.at(0, c, i, j) - mean);
        var /= 32.0;
        EXPECT_NEAR(mean, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(Ops, LayerNormZeroMeanPerRow)
{
    Rng rng(7);
    FloatTensor x(Shape{3, 16});
    x.fillNormal(rng, -1.0, 4.0);
    const FloatTensor y = layerNorm(x);
    for (int64_t r = 0; r < 3; ++r) {
        double mean = 0.0;
        for (int64_t c = 0; c < 16; ++c)
            mean += y.at(r, c);
        EXPECT_NEAR(mean / 16.0, 0.0, 1e-5);
    }
}

TEST(Ops, IntMatmulMatchesFloatOnSmallIntegers)
{
    Rng rng(8);
    Int8Tensor a(Shape{3, 4});
    Int8Tensor b(Shape{4, 5});
    a.fillUniformInt(rng, -10, 10);
    b.fillUniformInt(rng, -10, 10);
    const Int32Tensor c = matmulInt8(a, b);
    for (int64_t i = 0; i < 3; ++i) {
        for (int64_t j = 0; j < 5; ++j) {
            int32_t acc = 0;
            for (int64_t k = 0; k < 4; ++k)
                acc += static_cast<int32_t>(a.at(i, k)) * b.at(k, j);
            EXPECT_EQ(c.at(i, j), acc);
        }
    }
}

TEST(Ops, IntConvMatchesManual)
{
    Int8Tensor x(Shape{1, 1, 2, 2});
    x.at(0) = 1;
    x.at(1) = 2;
    x.at(2) = 3;
    x.at(3) = 4;
    Int8Tensor w(Shape{1, 1, 2, 2});
    w.at(0) = 1;
    w.at(1) = 1;
    w.at(2) = 1;
    w.at(3) = 1;
    const Conv2dParams p{1, 1, 2, 1, 0};
    const Int32Tensor y = conv2dInt8(x, w, p);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_EQ(y.at(0), 10);
}

TEST(Ops, SubtractInt8WidensWithoutOverflow)
{
    Int8Tensor a(Shape{2});
    Int8Tensor b(Shape{2});
    a.at(0) = 127;
    b.at(0) = -127;
    a.at(1) = -127;
    b.at(1) = 127;
    const Int16Tensor d = subtractInt8(a, b);
    EXPECT_EQ(d.at(0), 254);
    EXPECT_EQ(d.at(1), -254);
}

TEST(Ops, DiffInt16KernelsMatchInt8OnSmallValues)
{
    Rng rng(9);
    Int8Tensor a8(Shape{3, 4});
    Int8Tensor b(Shape{5, 4});
    a8.fillUniformInt(rng, -50, 50);
    b.fillUniformInt(rng, -50, 50);
    Int16Tensor a16(Shape{3, 4});
    for (int64_t i = 0; i < a8.numel(); ++i)
        a16.at(i) = a8.at(i);
    const Int32Tensor c8 = matmulTransposedInt8(a8, b);
    const Int32Tensor c16 = matmulTransposedDiffInt16(a16, b);
    EXPECT_TRUE(c8 == c16);
}

TEST(Ops, AddInt32Elementwise)
{
    Int32Tensor a(Shape{3}, 5);
    Int32Tensor b(Shape{3}, -2);
    const Int32Tensor c = addInt32(a, b);
    for (int64_t i = 0; i < 3; ++i)
        EXPECT_EQ(c.at(i), 3);
}

} // namespace
} // namespace ditto
