/**
 * @file
 * Tests for src/core: exactness of difference processing (the heart of
 * the Ditto algorithm), BOPs accounting, the Defo controller and the
 * functional MiniUnet pipeline.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/attention_diff.h"
#include "core/bops.h"
#include "core/defo.h"
#include "core/diff_linear.h"
#include "core/mini_unet.h"
#include "stats/similarity.h"

namespace ditto {
namespace {

Int8Tensor
randomCodes(const Shape &shape, uint64_t seed, int lo = -127,
            int hi = 127)
{
    Rng rng(seed);
    Int8Tensor t(shape);
    t.fillUniformInt(rng, lo, hi);
    return t;
}

/** Perturb codes slightly, like an adjacent time step would. */
Int8Tensor
perturb(const Int8Tensor &base, uint64_t seed, double flip_prob = 0.4,
        int max_delta = 5)
{
    Rng rng(seed);
    Int8Tensor out = base;
    auto span = out.data();
    for (auto &v : span) {
        if (rng.bernoulli(flip_prob)) {
            const int delta = static_cast<int>(
                rng.uniformInt(static_cast<uint64_t>(2 * max_delta))) -
                max_delta;
            const int nv = std::clamp(static_cast<int>(v) + delta, -127,
                                      127);
            v = static_cast<int8_t>(nv);
        }
    }
    return out;
}

// ---- Weight-stationary difference processing --------------------------

TEST(DiffFc, BitExactAgainstDirect)
{
    DiffFcEngine engine(randomCodes(Shape{16, 32}, 1));
    const Int8Tensor x_prev = randomCodes(Shape{4, 32}, 2);
    const Int8Tensor x_cur = perturb(x_prev, 3);
    const Int32Tensor out_prev = engine.runDirect(x_prev);
    const Int32Tensor via_diff = engine.runDiff(x_cur, x_prev, out_prev);
    const Int32Tensor direct = engine.runDirect(x_cur);
    EXPECT_TRUE(via_diff == direct);
}

TEST(DiffFc, ExactEvenForExtremeDifferences)
{
    // Differences of int8 codes can span [-254, 254]; exactness must
    // not depend on similarity.
    DiffFcEngine engine(randomCodes(Shape{8, 8}, 4));
    Int8Tensor x_prev(Shape{1, 8}, static_cast<int8_t>(-127));
    Int8Tensor x_cur(Shape{1, 8}, static_cast<int8_t>(127));
    const Int32Tensor out_prev = engine.runDirect(x_prev);
    EXPECT_TRUE(engine.runDiff(x_cur, x_prev, out_prev) ==
                engine.runDirect(x_cur));
}

TEST(DiffFc, OpCountsMatchClassifier)
{
    DiffFcEngine engine(randomCodes(Shape{10, 16}, 5));
    const Int8Tensor x_prev = randomCodes(Shape{2, 16}, 6);
    const Int8Tensor x_cur = perturb(x_prev, 7);
    const Int32Tensor out_prev = engine.runDirect(x_prev);
    OpCounts counts;
    engine.runDiff(x_cur, x_prev, out_prev, &counts);
    const BitClassHistogram h = classifyTemporalDiff(x_cur, x_prev);
    // Each input element drives out_features (=10) multiplies.
    EXPECT_EQ(counts.total(), 2 * 16 * 10);
    EXPECT_EQ(counts.zeroSkipped,
              static_cast<int64_t>(h.zeroFrac * 32 + 0.5) * 10);
}

TEST(DiffConv, BitExactAgainstDirect)
{
    const Conv2dParams p{3, 5, 3, 1, 1};
    DiffConvEngine engine(randomCodes(Shape{5, 3, 3, 3}, 8), p);
    const Int8Tensor x_prev = randomCodes(Shape{1, 3, 6, 6}, 9);
    const Int8Tensor x_cur = perturb(x_prev, 10);
    const Int32Tensor out_prev = engine.runDirect(x_prev);
    EXPECT_TRUE(engine.runDiff(x_cur, x_prev, out_prev) ==
                engine.runDirect(x_cur));
}

TEST(DiffConv, BitExactWithStride)
{
    const Conv2dParams p{2, 4, 3, 2, 1};
    DiffConvEngine engine(randomCodes(Shape{4, 2, 3, 3}, 11), p);
    const Int8Tensor x_prev = randomCodes(Shape{1, 2, 8, 8}, 12);
    const Int8Tensor x_cur = perturb(x_prev, 13);
    const Int32Tensor out_prev = engine.runDirect(x_prev);
    EXPECT_TRUE(engine.runDiff(x_cur, x_prev, out_prev) ==
                engine.runDirect(x_cur));
}

/** Property sweep over shapes and seeds: exactness is unconditional. */
class DiffExactness
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(DiffExactness, FcChainStaysExactAcrossSteps)
{
    const auto [rows, features, seed] = GetParam();
    DiffFcEngine engine(
        randomCodes(Shape{features, features},
                    static_cast<uint64_t>(seed)));
    Int8Tensor x = randomCodes(Shape{rows, features},
                               static_cast<uint64_t>(seed) + 1);
    Int32Tensor out = engine.runDirect(x);
    // Five chained steps: state threads exactly.
    for (int t = 0; t < 5; ++t) {
        const Int8Tensor next =
            perturb(x, static_cast<uint64_t>(seed) + 10 + t);
        out = engine.runDiff(next, x, out);
        EXPECT_TRUE(out == engine.runDirect(next))
            << "step " << t << " diverged";
        x = next;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, DiffExactness,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(4, 16, 33),
                       ::testing::Values(100, 200)));

// ---- Attention difference processing -----------------------------------

TEST(AttnDiff, ScoresBitExact)
{
    const Int8Tensor q_prev = randomCodes(Shape{6, 8}, 20);
    const Int8Tensor k_prev = randomCodes(Shape{6, 8}, 21);
    const Int8Tensor q_cur = perturb(q_prev, 22);
    const Int8Tensor k_cur = perturb(k_prev, 23);
    const Int32Tensor s_prev = attentionScoresDirect(q_prev, k_prev);
    const Int32Tensor via_diff =
        attentionScoresDiff(q_cur, q_prev, k_cur, k_prev, s_prev);
    EXPECT_TRUE(via_diff == attentionScoresDirect(q_cur, k_cur));
}

TEST(AttnDiff, ScoresExactWhenOnlyOneOperandChanges)
{
    const Int8Tensor q_prev = randomCodes(Shape{4, 8}, 24);
    const Int8Tensor k = randomCodes(Shape{4, 8}, 25);
    const Int8Tensor q_cur = perturb(q_prev, 26);
    const Int32Tensor s_prev = attentionScoresDirect(q_prev, k);
    EXPECT_TRUE(attentionScoresDiff(q_cur, q_prev, k, k, s_prev) ==
                attentionScoresDirect(q_cur, k));
}

TEST(AttnDiff, OutputBitExact)
{
    const Int8Tensor p_prev = randomCodes(Shape{5, 5}, 27, 0, 127);
    const Int8Tensor v_prev = randomCodes(Shape{5, 8}, 28);
    const Int8Tensor p_cur = perturb(p_prev, 29);
    const Int8Tensor v_cur = perturb(v_prev, 30);
    const Int32Tensor o_prev = attentionOutputDirect(p_prev, v_prev);
    EXPECT_TRUE(attentionOutputDiff(p_cur, p_prev, v_cur, v_prev,
                                    o_prev) ==
                attentionOutputDirect(p_cur, v_cur));
}

TEST(AttnDiff, MultiStepChainExact)
{
    Int8Tensor q = randomCodes(Shape{4, 6}, 31);
    Int8Tensor k = randomCodes(Shape{4, 6}, 32);
    Int32Tensor s = attentionScoresDirect(q, k);
    for (int t = 0; t < 4; ++t) {
        const Int8Tensor qn = perturb(q, 40 + t);
        const Int8Tensor kn = perturb(k, 50 + t);
        s = attentionScoresDiff(qn, q, kn, k, s);
        EXPECT_TRUE(s == attentionScoresDirect(qn, kn));
        q = qn;
        k = kn;
    }
}

TEST(AttnDiff, OpCountsCoverBothSubOperations)
{
    const Int8Tensor q_prev = randomCodes(Shape{6, 8}, 33);
    const Int8Tensor k_prev = randomCodes(Shape{6, 8}, 34);
    const Int8Tensor q_cur = perturb(q_prev, 35);
    const Int8Tensor k_cur = perturb(k_prev, 36);
    const Int32Tensor s_prev = attentionScoresDirect(q_prev, k_prev);
    OpCounts counts;
    attentionScoresDiff(q_cur, q_prev, k_cur, k_prev, s_prev, &counts);
    // Two sub-operations, each tokens x tokens x d multiplies.
    EXPECT_EQ(counts.total(), 2 * 6 * 6 * 8);
}

TEST(CrossAttn, DiffBitExactWithConstantContext)
{
    CrossAttentionEngine engine(randomCodes(Shape{7, 8}, 37));
    const Int8Tensor q_prev = randomCodes(Shape{5, 8}, 38);
    const Int8Tensor q_cur = perturb(q_prev, 39);
    const Int32Tensor s_prev = engine.runDirect(q_prev);
    EXPECT_TRUE(engine.runDiff(q_cur, q_prev, s_prev) ==
                engine.runDirect(q_cur));
}

// ---- BOPs accounting ----------------------------------------------------

TEST(Bops, ActModeCosts64PerMac)
{
    Layer l;
    l.kind = OpKind::Fc;
    l.macs = 100;
    BitFractions f;
    EXPECT_DOUBLE_EQ(layerBops(l, ExecMode::Act, f), 6400.0);
}

TEST(Bops, DiffModeWeightsByBitClass)
{
    Layer l;
    l.kind = OpKind::Conv2d;
    l.macs = 100;
    BitFractions f;
    f.zero = 0.5;
    f.low4 = 0.4;
    f.full8 = 0.1;
    // 0.4*32 + 0.1*64 per MAC.
    EXPECT_DOUBLE_EQ(layerBops(l, ExecMode::TemporalDiff, f), 1920.0);
}

TEST(Bops, DynamicAttentionDoublesForTwoSubOps)
{
    Layer fc;
    fc.kind = OpKind::Fc;
    fc.macs = 100;
    Layer qk = fc;
    qk.kind = OpKind::AttnQK;
    BitFractions f;
    f.low4 = 1.0;
    EXPECT_DOUBLE_EQ(layerBops(qk, ExecMode::TemporalDiff, f),
                     2.0 * layerBops(fc, ExecMode::TemporalDiff, f));
}

TEST(Bops, LaneSlotsZeroSkippedAndDoubleFor8Bit)
{
    Layer l;
    l.kind = OpKind::Fc;
    l.macs = 10;
    BitFractions f;
    f.zero = 0.5;
    f.low4 = 0.3;
    f.full8 = 0.2;
    EXPECT_DOUBLE_EQ(layerLaneSlots(l, ExecMode::TemporalDiff, f),
                     10.0 * (0.3 + 0.4));
    EXPECT_DOUBLE_EQ(layerLaneSlots(l, ExecMode::Act, f), 20.0);
}

// ---- Defo controller -----------------------------------------------------

TEST(Defo, AlwaysActNeverChoosesDiff)
{
    DefoController c(FlowPolicy::AlwaysAct, 4);
    for (int t = 0; t < 5; ++t)
        EXPECT_EQ(c.chooseMode(0, t), ExecMode::Act);
}

TEST(Defo, AlwaysDiffPrimesWithActFirstStep)
{
    DefoController c(FlowPolicy::AlwaysDiff, 4);
    EXPECT_EQ(c.chooseMode(1, 0), ExecMode::Act);
    EXPECT_EQ(c.chooseMode(1, 1), ExecMode::TemporalDiff);
    EXPECT_EQ(c.chooseMode(1, 7), ExecMode::TemporalDiff);
}

TEST(Defo, LocksCheaperModeAtSecondStep)
{
    DefoController c(FlowPolicy::Defo, 2);
    // Layer 0: act cheap (10) vs diff expensive (20) -> revert.
    c.observe(0, 0, ExecMode::Act, 10.0);
    c.observe(0, 1, ExecMode::TemporalDiff, 20.0);
    // Layer 1: diff cheap -> keep diff.
    c.observe(1, 0, ExecMode::Act, 10.0);
    c.observe(1, 1, ExecMode::TemporalDiff, 5.0);
    EXPECT_EQ(c.chooseMode(0, 2), ExecMode::Act);
    EXPECT_EQ(c.chooseMode(1, 2), ExecMode::TemporalDiff);
    EXPECT_TRUE(c.revertedToAct(0));
    EXPECT_FALSE(c.revertedToAct(1));
}

TEST(Defo, DefoPlusUsesSpatialAsActStyle)
{
    DefoController c(FlowPolicy::DefoPlus, 1);
    EXPECT_EQ(c.chooseMode(0, 0), ExecMode::SpatialDiff);
    c.observe(0, 0, ExecMode::SpatialDiff, 10.0);
    c.observe(0, 1, ExecMode::TemporalDiff, 20.0);
    EXPECT_EQ(c.chooseMode(0, 2), ExecMode::SpatialDiff);
}

TEST(Defo, DynamicDemotesOnSustainedRegression)
{
    DefoController c(FlowPolicy::DynamicDefo, 1);
    c.observe(0, 0, ExecMode::Act, 10.0);
    c.observe(0, 1, ExecMode::TemporalDiff, 5.0);
    EXPECT_EQ(c.chooseMode(0, 2), ExecMode::TemporalDiff);
    // A single expensive step does not demote...
    c.observe(0, 2, ExecMode::TemporalDiff, 30.0);
    EXPECT_EQ(c.chooseMode(0, 3), ExecMode::TemporalDiff);
    // ...but a sustained regression does.
    for (int t = 3; t < 7; ++t)
        c.observe(0, t, ExecMode::TemporalDiff, 30.0);
    EXPECT_EQ(c.chooseMode(0, 7), ExecMode::Act);
    EXPECT_TRUE(c.revertedToAct(0));
}

TEST(Defo, IdealFollowsOracle)
{
    DefoController c(FlowPolicy::Ideal, 1);
    c.observeOracle(0, 1, 10.0, 20.0, 15.0);
    EXPECT_EQ(c.chooseMode(0, 1), ExecMode::Act);
    c.observeOracle(0, 2, 10.0, 5.0, 15.0);
    EXPECT_EQ(c.chooseMode(0, 2), ExecMode::TemporalDiff);
}

TEST(Defo, PolicyNamesStable)
{
    EXPECT_STREQ(flowPolicyName(FlowPolicy::Defo), "Defo");
    EXPECT_STREQ(flowPolicyName(FlowPolicy::DefoPlus), "Defo+");
    EXPECT_STREQ(flowPolicyName(FlowPolicy::Ideal), "Ideal");
}

// ---- Functional pipeline (Table II proxy) -------------------------------

TEST(MiniUnet, DittoBitExactAgainstQuantizedDirect)
{
    MiniUnetConfig cfg;
    cfg.steps = 4;
    const MiniUnet net(cfg);
    const RolloutResult direct = net.rollout(RunMode::QuantDirect);
    const RolloutResult ditto = net.rollout(RunMode::QuantDitto);
    EXPECT_TRUE(direct.finalImage == ditto.finalImage);
}

TEST(MiniUnet, QuantizationPreservesSignal)
{
    MiniUnetConfig cfg;
    cfg.steps = 4;
    const MiniUnet net(cfg);
    const RolloutResult fp = net.rollout(RunMode::Fp32);
    const RolloutResult q = net.rollout(RunMode::QuantDirect);
    EXPECT_GT(sqnrDb(fp.finalImage, q.finalImage), 25.0);
}

TEST(MiniUnet, DittoOpsShowSparsityAndNarrowness)
{
    MiniUnetConfig cfg;
    cfg.steps = 5;
    const MiniUnet net(cfg);
    const RolloutResult r = net.rollout(RunMode::QuantDitto);
    EXPECT_GT(r.dittoOps.total(), 0);
    // The toy trajectory converges, so most diff multiplies should be
    // skippable or narrow — the premise of the whole paper.
    const double zero_frac =
        static_cast<double>(r.dittoOps.zeroSkipped) / r.dittoOps.total();
    const double full_frac =
        static_cast<double>(r.dittoOps.full8) / r.dittoOps.total();
    EXPECT_GT(zero_frac, 0.05);
    EXPECT_LT(full_frac, 0.30);
}

TEST(MiniUnet, DifferentSeedsDifferentImages)
{
    MiniUnetConfig a;
    a.steps = 3;
    MiniUnetConfig b = a;
    b.seed = 77;
    const MiniUnet na(a);
    const MiniUnet nb(b);
    EXPECT_FALSE(na.rollout(RunMode::Fp32).finalImage ==
                 nb.rollout(RunMode::Fp32).finalImage);
}

TEST(MiniUnet, BitExactAcrossConfigSweep)
{
    for (int64_t channels : {4, 8}) {
        for (int64_t res : {4, 8}) {
            MiniUnetConfig cfg;
            cfg.channels = channels;
            cfg.resolution = res;
            cfg.steps = 3;
            const MiniUnet net(cfg);
            EXPECT_TRUE(net.rollout(RunMode::QuantDirect).finalImage ==
                        net.rollout(RunMode::QuantDitto).finalImage)
                << "channels=" << channels << " res=" << res;
        }
    }
}

} // namespace
} // namespace ditto
