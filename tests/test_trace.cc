/**
 * @file
 * Tests for src/trace: the analytic mixture statistics, their Monte
 * Carlo validation, the calibration fits and the per-layer provider.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "model/zoo.h"
#include "quant/bitwidth.h"
#include "quant/quantizer.h"
#include "stats/similarity.h"
#include "trace/calibrate.h"
#include "trace/mixture.h"
#include "trace/provider.h"
#include "trace/sampler.h"
#include "trace/targets.h"

namespace ditto {
namespace {

TEST(Mixture, FractionsSumToOne)
{
    MixtureParams p;
    for (const BitFractions &f :
         {activationFractions(p), temporalDiffFractions(p),
          spatialDiffFractions(p)}) {
        EXPECT_NEAR(f.zero + f.low4 + f.full8, 1.0, 1e-9);
        EXPECT_GE(f.zero, 0.0);
        EXPECT_GE(f.low4, 0.0);
        EXPECT_GE(f.full8, 0.0);
    }
}

TEST(Mixture, HigherTemporalCorrelationMoreZeroDiffs)
{
    MixtureParams lo;
    lo.rhoT0 = lo.rhoT1 = lo.rhoT2 = 0.9;
    MixtureParams hi;
    hi.rhoT0 = hi.rhoT1 = hi.rhoT2 = 0.999;
    EXPECT_GT(temporalDiffFractions(hi).zero,
              temporalDiffFractions(lo).zero);
}

TEST(Mixture, RangeRatioClosedForm)
{
    MixtureParams p;
    p.rhoT2 = 1.0 - 1.0 / (2.0 * 10.0 * 10.0);
    // With the outlier component dominating both ranges, the ratio is
    // 1/sqrt(2(1-rho2)) = 10.
    p.rhoT0 = p.rhoT1 = p.rhoT2;
    EXPECT_NEAR(rangeRatio(p), 10.0, 1e-6);
}

TEST(Mixture, ZeroProbQuantDiffLimits)
{
    const double s = 0.1;
    EXPECT_NEAR(zeroProbQuantDiff(1e-15, s), 1.0, 1e-9);
    EXPECT_LT(zeroProbQuantDiff(10.0 * s, s), 0.05);
    // Monotone in sigma_d.
    EXPECT_GT(zeroProbQuantDiff(0.5 * s, s),
              zeroProbQuantDiff(2.0 * s, s));
}

TEST(Mixture, JumpsAddFullBitWidthTail)
{
    MixtureParams p;
    p.rhoT0 = p.rhoT1 = 0.995;
    p.rhoT2 = 0.999;
    const BitFractions base = temporalDiffFractions(p);
    p.jumpProb = 0.2;
    const BitFractions jumped = temporalDiffFractions(p);
    EXPECT_GT(jumped.full8, base.full8);
    EXPECT_LT(jumped.zero, base.zero + 1e-12);
}

TEST(Mixture, CosineIsVarianceWeightedCorrelation)
{
    MixtureParams p;
    p.w0 = 0.0;
    p.w2 = 0.5;
    p.beta = 1.0; // both components unit variance
    p.rhoT0 = p.rhoT1 = 0.9;
    p.rhoT2 = 0.5;
    EXPECT_NEAR(temporalCosine(p), 0.7, 1e-9);
}

// ---- Monte Carlo validation of the analytic model ---------------------

class MixtureMonteCarlo : public ::testing::TestWithParam<ModelId>
{};

TEST_P(MixtureMonteCarlo, SampledStatsMatchAnalytic)
{
    const MixtureParams &p = calibratedParams(GetParam());
    MixtureSampler sampler(p, 99);
    const int64_t elems = 1 << 17;
    const auto seq = sampler.sampleSequence(elems, 4);

    // Temporal cosine similarity.
    double cos_t = 0.0;
    for (int t = 1; t < 4; ++t)
        cos_t += cosineSimilarity(seq[t - 1], seq[t]) / 3.0;
    // Heavy-tail jumps decorrelate the sampled process slightly below
    // the analytic (jump-free) cosine, so the band is one-sided wide.
    EXPECT_NEAR(cos_t, temporalCosine(p), 0.045)
        << "temporal cosine mismatch for " << modelAbbr(GetParam());

    // Quantized temporal-difference bit classes: quantize with the
    // analytic scale (dynamic max-abs differs slightly because the
    // sampled max is a random extreme).
    QuantParams qp;
    qp.scale = static_cast<float>(quantScale(p));
    const Int8Tensor q0 = quantize(seq[2], qp);
    const Int8Tensor q1 = quantize(seq[3], qp);
    const BitClassHistogram h = classifyTemporalDiff(q1, q0);
    const BitFractions f = temporalDiffFractions(p);
    EXPECT_NEAR(h.zeroFrac, f.zero, 0.05);
    EXPECT_NEAR(h.zeroFrac + h.low4Frac, f.atMost4(), 0.05);

    // Quantized activation bit classes.
    const BitClassHistogram ha = classifyTensor(q1);
    const BitFractions fa = activationFractions(p);
    EXPECT_NEAR(ha.zeroFrac, fa.zero, 0.05);
    EXPECT_NEAR(ha.zeroFrac + ha.low4Frac, fa.atMost4(), 0.06);

    // Quantized spatial-difference bit classes. The sampler restarts
    // its spatial chain at component-block boundaries, which the
    // analytic model ignores: the band is wider.
    const BitClassHistogram hs = classifySpatialDiff(q1);
    const BitFractions fs = spatialDiffFractions(p);
    EXPECT_NEAR(hs.zeroFrac, fs.zero, 0.11);
    EXPECT_NEAR(hs.zeroFrac + hs.low4Frac, fs.atMost4(), 0.11);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, MixtureMonteCarlo, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelId> &info) {
        return modelAbbr(info.param);
    });

// ---- Calibration fits --------------------------------------------------

class CalibrationFit : public ::testing::TestWithParam<ModelId>
{};

TEST_P(CalibrationFit, FittedStatsNearTargets)
{
    const StatTargets &t = statTargets(GetParam());
    const MixtureParams &p = calibratedParams(GetParam());
    EXPECT_NEAR(temporalCosine(p), t.cosT, 0.012);
    EXPECT_NEAR(rangeRatio(p), t.rangeRatio, 0.05 * t.rangeRatio);
    EXPECT_NEAR(temporalDiffFractions(p).zero, t.zeroT, 0.05);
    EXPECT_NEAR(temporalDiffFractions(p).atMost4(), t.le4T, 0.035);
    EXPECT_NEAR(activationFractions(p).zero, t.zeroA, 0.03);
    EXPECT_NEAR(activationFractions(p).atMost4(), t.le4A, 0.05);
    EXPECT_NEAR(spatialDiffFractions(p).zero, t.zeroS, 0.06);
    EXPECT_NEAR(spatialDiffFractions(p).atMost4(), t.le4S, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CalibrationFit, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelId> &info) {
        return modelAbbr(info.param);
    });

TEST(Calibration, SevenModelAveragesMatchPaperHeadlines)
{
    double cos_t = 0.0;
    double zero_t = 0.0;
    double le4_t = 0.0;
    double ratio = 0.0;
    for (ModelId id : allModels()) {
        const MixtureParams &p = calibratedParams(id);
        cos_t += temporalCosine(p) / 7.0;
        zero_t += temporalDiffFractions(p).zero / 7.0;
        le4_t += temporalDiffFractions(p).atMost4() / 7.0;
        ratio += rangeRatio(p) / 7.0;
    }
    EXPECT_NEAR(cos_t, 0.983, 0.01);   // Sec. II-B
    EXPECT_NEAR(zero_t, 0.4448, 0.03); // Sec. III-B
    EXPECT_NEAR(le4_t, 0.9601, 0.02);  // Sec. III-B
    EXPECT_NEAR(ratio, 8.96, 0.45);    // Sec. III-A
}

// ---- Scale cache --------------------------------------------------------

TEST(ScaleCache, RoundTripsExactlyAndRejectsMismatch)
{
    char tmpl[] = "/tmp/ditto-cache-test-XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    setenv("DITTO_CACHE_DIR", tmpl, 1);
    unsetenv("DITTO_NO_CACHE");

    const uint64_t key = hashMix(hashMix(0x5EED, 1), 42);
    const std::vector<float> scales = {1.25f, 3.0e-7f, 0.1f, 127.0f,
                                       5.960464e-08f};
    std::vector<float> loaded;
    EXPECT_FALSE(loadCachedScales(key, scales.size(), &loaded));
    storeCachedScales(key, scales);
    ASSERT_TRUE(loadCachedScales(key, scales.size(), &loaded));
    // Hexfloat serialization must round-trip bit-exactly: cached and
    // freshly calibrated models would otherwise diverge.
    ASSERT_EQ(loaded.size(), scales.size());
    for (size_t i = 0; i < scales.size(); ++i)
        EXPECT_EQ(loaded[i], scales[i]);

    // Count mismatch and unknown keys are misses, not errors.
    EXPECT_FALSE(loadCachedScales(key, scales.size() + 1, &loaded));
    EXPECT_FALSE(loadCachedScales(key + 1, scales.size(), &loaded));

    // A corrupt file is a miss.
    const std::string dir(tmpl);
    char name[64];
    std::snprintf(name, sizeof(name), "scales-%016llx.txt",
                  static_cast<unsigned long long>(key));
    FILE *f = fopen((dir + "/" + name).c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("garbage\n", f);
    fclose(f);
    EXPECT_FALSE(loadCachedScales(key, scales.size(), &loaded));

    // DITTO_NO_CACHE disables everything.
    setenv("DITTO_NO_CACHE", "1", 1);
    storeCachedScales(key, scales);
    EXPECT_FALSE(loadCachedScales(key, scales.size(), &loaded));
    unsetenv("DITTO_NO_CACHE");
    unsetenv("DITTO_CACHE_DIR");
}

TEST(ScaleCache, HashMixSeparatesConfigs)
{
    const uint64_t base = hashMix(0xD1770ACC, 1);
    EXPECT_NE(hashMix(base, 8), hashMix(base, 16));
    EXPECT_NE(hashMix(hashMix(base, 8), 16),
              hashMix(hashMix(base, 16), 8));
}

// ---- Sampler structure -------------------------------------------------

TEST(Sampler, DeterministicPerSeed)
{
    const MixtureParams &p = calibratedParams(ModelId::SDM);
    MixtureSampler a(p, 5);
    MixtureSampler b(p, 5);
    const auto sa = a.sampleSequence(1024, 2);
    const auto sb = b.sampleSequence(1024, 2);
    EXPECT_TRUE(sa[1] == sb[1]);
}

TEST(Sampler, AmplitudeScalesValues)
{
    const MixtureParams &p = calibratedParams(ModelId::SDM);
    MixtureSampler a(p, 6);
    MixtureSampler b(p, 6);
    const auto s1 = a.sampleSequence(1024, 1, 1.0);
    const auto s2 = b.sampleSequence(1024, 1, 3.0);
    for (int64_t i = 0; i < 1024; ++i)
        EXPECT_NEAR(s2[0].at(i), 3.0f * s1[0].at(i), 1e-4f);
}

TEST(Sampler, SpatialCorrelationPresent)
{
    const MixtureParams &p = calibratedParams(ModelId::Latte);
    MixtureSampler s(p, 7);
    const auto seq = s.sampleSequence(1 << 16, 1);
    EXPECT_NEAR(spatialSimilarity(seq[0]), spatialCosine(p), 0.05);
}

// ---- Provider ----------------------------------------------------------

TEST(Provider, StatsVaryAcrossLayersAndSteps)
{
    const ModelGraph g = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, g);
    const int conv_in = g.findLayer("conv-in");
    const int skip = g.findLayer("up.0.0.skip");
    ASSERT_GE(conv_in, 0);
    ASSERT_GE(skip, 0);
    const LayerStepStats &a = trace.stats(conv_in, 5);
    const LayerStepStats &b = trace.stats(skip, 5);
    EXPECT_NE(a.temp.zero, b.temp.zero);
    // Wider layers carry larger value ranges (Fig. 4a).
    EXPECT_LT(a.actRange, b.actRange);
}

TEST(Provider, FinalStepsLessSimilar)
{
    const ModelGraph g = buildModel(ModelId::DDPM);
    const TraceProvider trace(ModelId::DDPM, g);
    const int layer = g.findLayer("conv-in");
    ASSERT_GE(layer, 0);
    // Average early vs late zero fractions: denoising intensifies at
    // the end of the reverse process, shrinking similarity.
    double early = 0.0;
    double late = 0.0;
    for (int t = 0; t < 10; ++t)
        early += trace.stats(layer, t).temp.zero / 10.0;
    for (int t = trace.steps() - 10; t < trace.steps(); ++t)
        late += trace.stats(layer, t).temp.zero / 10.0;
    EXPECT_GT(early, late);
}

TEST(Provider, StepCountFollowsSampler)
{
    const ModelGraph g = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, g);
    EXPECT_EQ(trace.steps(), 51); // PLMS 50 + 1 extra step
}

TEST(Provider, DriftModeChangesStatistics)
{
    const ModelGraph g = buildModel(ModelId::BED);
    const TraceProvider stationary(ModelId::BED, g);
    TraceOptions opts;
    opts.driftSimilarity = true;
    const TraceProvider drifted(ModelId::BED, g, opts);
    const int layer = g.findLayer("conv-in");
    ASSERT_GE(layer, 0);
    double max_delta = 0.0;
    for (int t = 0; t < stationary.steps(); ++t) {
        max_delta = std::max(
            max_delta, std::fabs(stationary.stats(layer, t).temp.zero -
                                 drifted.stats(layer, t).temp.zero));
    }
    EXPECT_GT(max_delta, 0.05);
}

TEST(Provider, DeterministicAcrossInstances)
{
    const ModelGraph g = buildModel(ModelId::CHUR);
    const TraceProvider a(ModelId::CHUR, g);
    const TraceProvider b(ModelId::CHUR, g);
    const LayerStepStats &sa = a.stats(20, 3);
    const LayerStepStats &sb = b.stats(20, 3);
    EXPECT_DOUBLE_EQ(sa.temp.zero, sb.temp.zero);
    EXPECT_DOUBLE_EQ(sa.actRange, sb.actRange);
}

TEST(Provider, LayerAmplitudesReproduceNamedLayerContrast)
{
    // Paper Fig. 4a: SDM's conv-in has a far smaller range than
    // up.0.0.skip.
    const ModelGraph g = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, g);
    const double a = trace.layerAmplitude(g.findLayer("conv-in"));
    const double b = trace.layerAmplitude(g.findLayer("up.0.0.skip"));
    EXPECT_LT(a * 2.0, b);
}

} // namespace
} // namespace ditto
