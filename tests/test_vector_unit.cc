/**
 * @file
 * Tests for the Vector Processing Unit functional model.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "hw/vector_unit.h"

namespace ditto {
namespace {

FloatTensor
randomFloats(int64_t n, uint64_t seed, double sigma = 1.0)
{
    Rng rng(seed);
    FloatTensor t(Shape{n});
    t.fillNormal(rng, 0.0, sigma);
    return t;
}

TEST(VectorUnit, QuantizeMatchesScalarQuantizer)
{
    const FloatTensor x = randomFloats(512, 1, 2.0);
    const QuantParams p = chooseDynamicScale(x);
    const VectorUnit vpu;
    VectorUnitRun run;
    const Int8Tensor hw = vpu.quantize(x, p, &run);
    const Int8Tensor ref = quantize(x, p);
    EXPECT_TRUE(hw == ref);
    EXPECT_EQ(run.elementOps, 512);
}

TEST(VectorUnit, DequantizeMatchesScalar)
{
    Rng rng(2);
    Int32Tensor acc(Shape{128});
    acc.fillUniformInt(rng, -100000, 100000);
    const VectorUnit vpu;
    const FloatTensor hw = vpu.dequantize(acc, 0.001f);
    const FloatTensor ref = dequantizeAccum(acc, 0.001f);
    EXPECT_TRUE(hw == ref);
}

TEST(VectorUnit, SummationIsExactIntAdd)
{
    Rng rng(3);
    Int32Tensor a(Shape{64});
    Int32Tensor b(Shape{64});
    a.fillUniformInt(rng, -1000, 1000);
    b.fillUniformInt(rng, -1000, 1000);
    const VectorUnit vpu;
    VectorUnitRun run;
    const Int32Tensor sum = vpu.summation(a, b, &run);
    for (int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(sum.at(i), a.at(i) + b.at(i));
    EXPECT_EQ(run.elementOps, 64);
}

TEST(VectorUnit, NonLinearsMatchKernels)
{
    const FloatTensor x = randomFloats(256, 4, 3.0);
    const VectorUnit vpu;
    EXPECT_TRUE(vpu.silu(x) == silu(x));
    EXPECT_TRUE(vpu.gelu(x) == gelu(x));
    Rng rng(5);
    FloatTensor m(Shape{8, 32});
    m.fillNormal(rng);
    EXPECT_TRUE(vpu.softmax(m) == softmaxRows(m));
}

TEST(VectorUnit, CyclesScaleInverselyWithLanes)
{
    const FloatTensor x = randomFloats(1 << 16, 6);
    const QuantParams p = chooseDynamicScale(x);
    VectorUnit narrow(1024);
    VectorUnit wide(16384);
    VectorUnitRun rn, rw;
    narrow.quantize(x, p, &rn);
    wide.quantize(x, p, &rw);
    EXPECT_EQ(rn.cycles, 64);
    EXPECT_EQ(rw.cycles, 4);
}

TEST(VectorUnit, SoftmaxChargesFourPasses)
{
    Rng rng(7);
    FloatTensor m(Shape{16, 64});
    m.fillNormal(rng);
    const VectorUnit vpu(256);
    VectorUnitRun run;
    vpu.softmax(m, &run);
    EXPECT_EQ(run.elementOps, 4 * 16 * 64);
    EXPECT_EQ(run.cycles, 16);
}

TEST(VectorUnit, RunAccumulatesAcrossCalls)
{
    const FloatTensor x = randomFloats(100, 8);
    const QuantParams p = chooseDynamicScale(x);
    const VectorUnit vpu(64);
    VectorUnitRun run;
    vpu.quantize(x, p, &run);
    vpu.quantize(x, p, &run);
    EXPECT_EQ(run.elementOps, 200);
    EXPECT_EQ(run.cycles, 2 * 2); // ceil(100/64) per call
}

} // namespace
} // namespace ditto
