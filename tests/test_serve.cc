/**
 * @file
 * Tests for the batched denoising serving layer: bitwise parity of
 * batched execution against independent sequential rollouts (the
 * serving guarantee), mixed timesteps and modes inside one batch,
 * thread-count determinism, the batched ops/engine entry points, and
 * the DenoiseServer queue/deadline behavior.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include <string>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/diff_linear.h"
#include "core/mini_unet.h"
#include "quant/encoder.h"
#include "runtime/presets.h"
#include "serve/batch_rollout.h"
#include "serve/faultpoints.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace ditto {
namespace {

MiniUnetConfig
smallConfig()
{
    MiniUnetConfig cfg;
    cfg.channels = 8;
    cfg.resolution = 8;
    cfg.steps = 5;
    return cfg;
}

/** Shared test model (calibration runs once per process). */
const MiniUnet &
testNet()
{
    static const MiniUnet *net = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        return new MiniUnet(smallConfig());
    }();
    return *net;
}

void
expectBitwiseEqual(const FloatTensor &a, const FloatTensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_TRUE(a == b) << "images are not bitwise identical";
}

void
expectCountsEqual(const OpCounts &a, const OpCounts &b)
{
    EXPECT_EQ(a.zeroSkipped, b.zeroSkipped);
    EXPECT_EQ(a.low4, b.low4);
    EXPECT_EQ(a.full8, b.full8);
}

TEST(ServeParity, BatchedRolloutMatchesSequentialBitwise)
{
    const MiniUnet &net = testNet();
    std::vector<FloatTensor> noises;
    for (uint64_t s = 1; s <= 6; ++s)
        noises.push_back(net.requestNoise(s));
    for (RunMode mode : {RunMode::QuantDitto, RunMode::QuantDirect}) {
        const std::vector<RolloutResult> batched =
            net.rolloutBatch(mode, noises);
        ASSERT_EQ(batched.size(), noises.size());
        for (size_t i = 0; i < noises.size(); ++i) {
            const RolloutResult seq = net.rollout(mode, noises[i]);
            expectBitwiseEqual(seq.finalImage, batched[i].finalImage);
            expectCountsEqual(seq.dittoOps, batched[i].dittoOps);
        }
    }
}

TEST(ServeParity, BatchedRolloutThreadCountInvariant)
{
    const MiniUnet &net = testNet();
    std::vector<FloatTensor> noises;
    for (uint64_t s = 11; s <= 15; ++s)
        noises.push_back(net.requestNoise(s));

    setThreadCount(1);
    const std::vector<RolloutResult> one =
        net.rolloutBatch(RunMode::QuantDitto, noises);
    setThreadCount(4);
    const std::vector<RolloutResult> four =
        net.rolloutBatch(RunMode::QuantDitto, noises);
    setThreadCount(1);
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i) {
        expectBitwiseEqual(one[i].finalImage, four[i].finalImage);
        expectCountsEqual(one[i].dittoOps, four[i].dittoOps);
    }
}

TEST(ServeParity, OddResolutionFallbackPaths)
{
    // resolution 6 -> 36 pixels: exercises non-multiple-of-panel
    // shapes through the whole batched stack.
    setenv("DITTO_NO_CACHE", "1", 0);
    MiniUnetConfig cfg = smallConfig();
    cfg.resolution = 6;
    const MiniUnet net(cfg);
    std::vector<FloatTensor> noises;
    for (uint64_t s = 21; s <= 24; ++s)
        noises.push_back(net.requestNoise(s));
    const std::vector<RolloutResult> batched =
        net.rolloutBatch(RunMode::QuantDitto, noises);
    for (size_t i = 0; i < noises.size(); ++i) {
        const RolloutResult seq =
            net.rollout(RunMode::QuantDitto, noises[i]);
        expectBitwiseEqual(seq.finalImage, batched[i].finalImage);
    }
}

TEST(BatchEngineTest, MixedTimestepsShareABatch)
{
    const MiniUnet &net = testNet();
    BatchEngine engine(net.compiled(), /*max_batch=*/4);

    // Three requests with different step counts join together ...
    const int steps[4] = {3, 5, 7, 4};
    for (uint64_t i = 0; i < 3; ++i) {
        DenoiseRequest req;
        req.seed = 100 + i;
        req.steps = steps[i];
        engine.admit(i, req);
    }
    // ... and a fourth joins two steps later (continuous batching),
    // so the batch holds slabs at timesteps {2, 2, 2, 0}.
    engine.step();
    engine.step();
    {
        DenoiseRequest req;
        req.seed = 103;
        req.steps = steps[3];
        engine.admit(3, req);
    }

    std::vector<BatchEngine::Finished> all;
    while (!engine.empty()) {
        engine.step();
        std::vector<BatchEngine::Finished> done = engine.retire();
        std::move(done.begin(), done.end(), std::back_inserter(all));
    }
    ASSERT_EQ(all.size(), 4u);
    for (const BatchEngine::Finished &f : all) {
        const uint64_t i = f.id;
        EXPECT_EQ(f.steps, steps[i]);
        const RolloutResult seq = net.rollout(
            RunMode::QuantDitto, net.requestNoise(100 + i), steps[i]);
        expectBitwiseEqual(seq.finalImage, f.image);
        expectCountsEqual(seq.dittoOps, f.ops);
    }
}

TEST(BatchEngineTest, DirectAndDittoRequestsShareABatch)
{
    const MiniUnet &net = testNet();
    BatchEngine engine(net.compiled(), /*max_batch=*/3);
    const RunMode modes[3] = {RunMode::QuantDitto, RunMode::QuantDirect,
                              RunMode::QuantDitto};
    for (uint64_t i = 0; i < 3; ++i) {
        DenoiseRequest req;
        req.seed = 200 + i;
        req.mode = modes[i];
        engine.admit(i, req);
    }
    std::vector<BatchEngine::Finished> all;
    while (!engine.empty()) {
        engine.step();
        std::vector<BatchEngine::Finished> done = engine.retire();
        std::move(done.begin(), done.end(), std::back_inserter(all));
    }
    ASSERT_EQ(all.size(), 3u);
    for (const BatchEngine::Finished &f : all) {
        const RolloutResult seq =
            net.rollout(modes[f.id], net.requestNoise(200 + f.id));
        expectBitwiseEqual(seq.finalImage, f.image);
    }
}

TEST(BatchedOpsTest, MatmulDiffPlanBatchMatchesPerPlan)
{
    Rng rng(7);
    const int64_t rows = 13, k = 40, n = 24, slabs = 5;
    const Int8Tensor b = [&] {
        Int8Tensor t(Shape{k, n});
        t.fillUniformInt(rng, -127, 127);
        return t;
    }();
    std::vector<DiffGemmPlan> plans;
    std::vector<Int32Tensor> prevs;
    Int32Tensor prev_stacked(Shape{slabs * rows, n});
    for (int64_t s = 0; s < slabs; ++s) {
        Int16Tensor diff(Shape{rows, k});
        for (auto &v : diff.data()) {
            const int u = static_cast<int>(rng.uniformInt(100));
            v = u < 60 ? 0
                       : static_cast<int16_t>(
                             static_cast<int64_t>(rng.uniformInt(509)) -
                             254);
        }
        plans.push_back(encodeDiff(diff));
        Int32Tensor prev(Shape{rows, n});
        prev.fillUniformInt(rng, -100000, 100000);
        std::copy(prev.data().begin(), prev.data().end(),
                  prev_stacked.data().begin() + s * rows * n);
        prevs.push_back(std::move(prev));
    }
    const Int32Tensor batched =
        matmulDiffPlanBatch(plans, b, &prev_stacked);
    for (int64_t s = 0; s < slabs; ++s) {
        const Int32Tensor single =
            matmulDiffPlan(plans[static_cast<size_t>(s)], b,
                           &prevs[static_cast<size_t>(s)]);
        for (int64_t i = 0; i < rows * n; ++i)
            ASSERT_EQ(single.at(i), batched.at(s * rows * n + i))
                << "slab " << s << " element " << i;
    }
}

TEST(BatchedOpsTest, FcEngineRunBatchMatchesRunDiffForceDiff)
{
    Rng rng(9);
    const int64_t slabs = 4, rows = 9, in = 32, out = 16;
    Int8Tensor w(Shape{out, in});
    w.fillUniformInt(rng, -127, 127);
    const DiffFcEngine engine(w);

    Int8Tensor x(Shape{slabs * rows, in});
    Int8Tensor prev_x(Shape{slabs * rows, in});
    x.fillUniformInt(rng, -50, 50);
    // Mostly-similar previous step so the diff stream is sparse.
    for (int64_t i = 0; i < prev_x.numel(); ++i)
        prev_x.at(i) = static_cast<int8_t>(
            x.at(i) + (rng.uniformInt(10) == 0 ? 3 : 0));
    Int32Tensor prev_out(Shape{slabs * rows, out});
    prev_out.fillUniformInt(rng, -100000, 100000);
    std::vector<uint8_t> primed(static_cast<size_t>(slabs), 1);

    for (DiffPolicy policy : {DiffPolicy::Auto, DiffPolicy::ForceDiff}) {
        std::vector<OpCounts> counts(static_cast<size_t>(slabs));
        const Int32Tensor batched =
            engine.runBatch(x, slabs, &prev_x, &prev_out, primed.data(),
                            counts.data(), policy);
        for (int64_t s = 0; s < slabs; ++s) {
            Int8Tensor xs(Shape{rows, in}), ps(Shape{rows, in});
            Int32Tensor os(Shape{rows, out});
            for (int64_t i = 0; i < rows * in; ++i) {
                xs.at(i) = x.at(s * rows * in + i);
                ps.at(i) = prev_x.at(s * rows * in + i);
            }
            for (int64_t i = 0; i < rows * out; ++i)
                os.at(i) = prev_out.at(s * rows * out + i);
            OpCounts seq_counts;
            const Int32Tensor single =
                engine.runDiff(xs, ps, os, &seq_counts, policy);
            for (int64_t i = 0; i < rows * out; ++i)
                ASSERT_EQ(single.at(i), batched.at(s * rows * out + i));
            expectCountsEqual(seq_counts,
                              counts[static_cast<size_t>(s)]);
        }
    }
}

TEST(ServerTest, CompletesBurstWithBatchFormation)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxWaitMicros = 200'000; // generous window: the burst fills it
    cfg.workers = 1;
    DenoiseServer server(net.compiled(), cfg);
    std::vector<uint64_t> ids;
    for (uint64_t s = 0; s < 8; ++s) {
        DenoiseRequest req;
        req.seed = 300 + s;
        ids.push_back(server.submit(req));
    }
    // Tickets are FIFO and results retrievable in any order.
    for (size_t i = ids.size(); i-- > 0;) {
        const DenoiseResult res = server.wait(ids[i]);
        EXPECT_EQ(res.id, ids[i]);
        EXPECT_EQ(res.steps, net.config().steps);
        const RolloutResult seq = net.rollout(
            RunMode::QuantDitto, net.requestNoise(300 + i));
        expectBitwiseEqual(seq.finalImage, res.image);
        EXPECT_GE(res.queueMicros, 0.0);
        EXPECT_GT(res.serviceMicros, 0.0);
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_GE(stats.batchesFormed, 1u);
    // The formation window plus continuous batching must have packed
    // more than one request per step on average for an 8-burst.
    EXPECT_GT(stats.avgOccupancy(), 1.0);
}

TEST(ServerTest, ZeroWaitRequestDispatchesImmediately)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxWaitMicros = 30'000'000; // 30s default window ...
    cfg.workers = 1;
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest req;
    req.seed = 400;
    req.maxWaitMicros = 0; // ... which this request opts out of
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t id = server.submit(req);
    const DenoiseResult res = server.wait(id);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    // Completion far below the 30s window proves the deadline logic
    // dispatched the lone request instead of holding the batch open.
    EXPECT_LT(elapsed, 10.0);
    const RolloutResult seq =
        net.rollout(RunMode::QuantDitto, net.requestNoise(400));
    expectBitwiseEqual(seq.finalImage, res.image);
}

TEST(ServerTest, PollDeliversTheResultNonBlocking)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 2;
    cfg.maxWaitMicros = 0;
    cfg.workers = 2; // two engines draining the same queue
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest req;
    req.seed = 500;
    const uint64_t id = server.submit(req);
    DenoiseResult res;
    // False while pending, true exactly once when ready; a second poll
    // on the consumed ticket would abort loudly (DITTO_ASSERT) rather
    // than spin a caller forever, so it is not exercised here.
    while (!server.poll(id, &res))
        std::this_thread::yield();
    EXPECT_EQ(res.id, id);
    const RolloutResult seq =
        net.rollout(RunMode::QuantDitto, net.requestNoise(500));
    expectBitwiseEqual(seq.finalImage, res.image);
}

TEST(ServerTest, ManyRequestsAcrossWorkersAllBitwiseCorrect)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxWaitMicros = 1000;
    cfg.workers = 2;
    DenoiseServer server(net.compiled(), cfg);
    std::vector<uint64_t> ids;
    std::vector<int> steps;
    for (uint64_t s = 0; s < 12; ++s) {
        DenoiseRequest req;
        req.seed = 600 + s;
        req.steps = 3 + static_cast<int>(s % 3);
        req.mode =
            s % 4 == 3 ? RunMode::QuantDirect : RunMode::QuantDitto;
        steps.push_back(req.steps);
        ids.push_back(server.submit(req));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RunMode mode =
            i % 4 == 3 ? RunMode::QuantDirect : RunMode::QuantDitto;
        const RolloutResult seq = net.rollout(
            mode, net.requestNoise(600 + i), steps[i]);
        expectBitwiseEqual(seq.finalImage, res.image);
    }
    EXPECT_EQ(server.stats().completed, 12u);
}

TEST(ServerTest, JunctionSpecSlotReuseStaysBitwise)
{
    // The deep UNet routes difference state through junction folds and
    // attention operand hand-overs; serving it with more requests than
    // batch slots exercises continuous batching's slot reuse against
    // the junction code caches (a reset slab re-primes its fold from
    // scratch while its neighbors keep their diff streams).
    setenv("DITTO_NO_CACHE", "1", 0);
    DeepUnetConfig dcfg;
    dcfg.resolution = 8;
    dcfg.baseChannels = 8;
    dcfg.steps = 5;
    const CompiledModel model = compile(deepUnetSpec(dcfg));
    ServerConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxWaitMicros = 500;
    cfg.workers = 1;
    DenoiseServer server(model, cfg);
    std::vector<uint64_t> ids;
    std::vector<DenoiseRequest> reqs;
    for (uint64_t s = 0; s < 9; ++s) {
        DenoiseRequest req;
        req.seed = 700 + s;
        req.steps = 3 + static_cast<int>(s % 3);
        req.mode =
            s % 3 == 2 ? RunMode::QuantDirect : RunMode::QuantDitto;
        reqs.push_back(req);
        ids.push_back(server.submit(req));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RolloutResult seq =
            model.rollout(reqs[i].mode,
                          model.requestNoise(reqs[i].seed),
                          reqs[i].steps);
        expectBitwiseEqual(seq.finalImage, res.image);
    }
}

// ---------------------------------------------------------------------------
// Serving hardening: lifecycle edges, cancellation, deadlines,
// preemption parity, admission control, shedding, fault injection and
// the metrics surface.
// ---------------------------------------------------------------------------

/** Disarms every fault point when a test scope ends. */
struct FaultGuard
{
    ~FaultGuard() { faults::reset(); }
};

/**
 * A small single-engine config with shedding watermarks parked far
 * away, so lifecycle tests see only the behavior they arrange.
 */
ServerConfig
quietConfig()
{
    ServerConfig cfg;
    cfg.maxBatch = 1;
    cfg.maxWaitMicros = 0;
    cfg.workers = 1;
    cfg.queueCapacity = 100;
    cfg.shedHighWater = 90;
    cfg.shedLowWater = 10;
    return cfg;
}

/** Poll `pred` until true; false after a 30s wall-clock budget. */
template <typename Pred>
bool
spinUntil(Pred pred)
{
    const auto limit = std::chrono::steady_clock::now() +
                       std::chrono::seconds(30);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > limit)
            return false;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    return true;
}

const FloatTensor
referenceImage(RunMode mode, uint64_t seed, int steps)
{
    return testNet()
        .rollout(mode, testNet().requestNoise(seed), steps)
        .finalImage;
}

TEST(ServerDeathTest, SubmitAfterShutdownFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    DenoiseServer server(testNet().compiled(), quietConfig());
    server.shutdown();
    EXPECT_EXIT(server.submit(DenoiseRequest{}),
                testing::ExitedWithCode(1), "submit after");
}

TEST(ServerDeathTest, DoubleWaitFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    DenoiseServer server(testNet().compiled(), quietConfig());
    DenoiseRequest req;
    req.seed = 1;
    req.steps = 1;
    const uint64_t id = server.submit(req);
    (void)server.wait(id);
    EXPECT_EXIT(server.wait(id), testing::ExitedWithCode(1),
                "already-consumed");
}

TEST(ServerDeathTest, PollUnknownTicketFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    DenoiseServer server(testNet().compiled(), quietConfig());
    DenoiseResult out;
    EXPECT_EXIT(server.poll(12345, &out), testing::ExitedWithCode(1),
                "unknown");
    EXPECT_EXIT(server.queryState(12345), testing::ExitedWithCode(1),
                "unknown");
}

TEST(ServerDeathTest, MalformedRequestFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    DenoiseServer server(testNet().compiled(), quietConfig());
    DenoiseRequest fp32;
    fp32.mode = RunMode::Fp32;
    EXPECT_EXIT(server.submit(fp32), testing::ExitedWithCode(1),
                "quantized");
    DenoiseRequest bad_deadline;
    bad_deadline.deadlineMicros = -2;
    EXPECT_EXIT(server.submit(bad_deadline), testing::ExitedWithCode(1),
                "deadlineMicros");
}

TEST(FaultPointsDeathTest, MalformedSpecFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(faults::configure("bogus"), testing::ExitedWithCode(1),
                "fault spec");
    EXPECT_EXIT(faults::configure("step_end:fail:every=1"),
                testing::ExitedWithCode(1), "only meaningful");
    EXPECT_EXIT(faults::configure("submit:delay:every=0:10"),
                testing::ExitedWithCode(1), "bad schedule");
}

TEST(LifecycleTest, CancelWorksInQueuedAndRunningStates)
{
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    DenoiseRequest busy;
    busy.seed = 30;
    busy.steps = 400;
    busy.slo = SloClass::Interactive; // nothing may preempt it
    const uint64_t a = server.submit(busy);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));

    DenoiseRequest queued;
    queued.seed = 31;
    const uint64_t b = server.submit(queued);
    EXPECT_EQ(server.queryState(b), RequestStatus::Queued);
    EXPECT_TRUE(server.cancel(b));
    const DenoiseResult rb = server.wait(b);
    EXPECT_EQ(rb.status, RequestStatus::Cancelled);
    EXPECT_EQ(rb.steps, 0);
    EXPECT_EQ(rb.serviceMicros, 0.0);
    EXPECT_FALSE(server.cancel(b)); // consumed: unknown ticket

    EXPECT_TRUE(server.cancel(a)); // running: evicted between steps
    const DenoiseResult ra = server.wait(a);
    EXPECT_EQ(ra.status, RequestStatus::Cancelled);
    EXPECT_GT(ra.steps, 0);
    EXPECT_LT(ra.steps, 400);

    const ServeMetrics m = server.metrics();
    EXPECT_EQ(m.total(&ClassMetrics::cancelled), 2u);
}

TEST(LifecycleTest, PreemptionParksLowerClassAndParkedCancelWorks)
{
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    DenoiseRequest low;
    low.seed = 35;
    low.steps = 400;
    low.slo = SloClass::BestEffort;
    const uint64_t a = server.submit(low);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));

    DenoiseRequest high;
    high.seed = 36;
    high.steps = 3;
    high.slo = SloClass::Interactive;
    const uint64_t i = server.submit(high);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Parked;
    }));

    EXPECT_TRUE(server.cancel(a));
    const DenoiseResult ra = server.wait(a);
    EXPECT_EQ(ra.status, RequestStatus::Cancelled);
    EXPECT_EQ(ra.preemptions, 1);
    EXPECT_GT(ra.steps, 0);
    EXPECT_LT(ra.steps, 400);

    const DenoiseResult ri = server.wait(i);
    EXPECT_EQ(ri.status, RequestStatus::Done);
    expectBitwiseEqual(referenceImage(RunMode::QuantDitto, 36, 3),
                       ri.image);

    const ServeMetrics m = server.metrics();
    EXPECT_EQ(m.perClass[static_cast<size_t>(SloClass::BestEffort)]
                  .preempted,
              1u);
}

TEST(LifecycleTest, ShutdownDrainsParkedRequestsToCompletion)
{
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    DenoiseRequest low;
    low.seed = 40;
    low.steps = 60;
    low.slo = SloClass::BestEffort;
    const uint64_t a = server.submit(low);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    DenoiseRequest high;
    high.seed = 41;
    high.steps = 40;
    high.slo = SloClass::Interactive;
    const uint64_t i = server.submit(high);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Parked;
    }));

    server.shutdown(); // drains: resumes and finishes the parked work

    const DenoiseResult ra = server.wait(a);
    EXPECT_EQ(ra.status, RequestStatus::Done);
    EXPECT_GE(ra.preemptions, 1);
    EXPECT_EQ(ra.steps, 60);
    expectBitwiseEqual(referenceImage(RunMode::QuantDitto, 40, 60),
                       ra.image);
    const DenoiseResult ri = server.wait(i);
    EXPECT_EQ(ri.status, RequestStatus::Done);
    expectBitwiseEqual(referenceImage(RunMode::QuantDitto, 41, 40),
                       ri.image);
}

TEST(PreemptResume, ResumedRolloutsAreBitwiseIdentical)
{
    const MiniUnet &net = testNet();
    for (RunMode mode : {RunMode::QuantDitto, RunMode::QuantDirect}) {
        for (int64_t max_batch : {int64_t{1}, int64_t{2}}) {
            ServerConfig cfg = quietConfig();
            cfg.maxBatch = max_batch;
            DenoiseServer server(net.compiled(), cfg);
            // Fill the engine with low-class work ...
            std::vector<uint64_t> low;
            for (int64_t j = 0; j < max_batch; ++j) {
                DenoiseRequest req;
                req.seed = 800 + static_cast<uint64_t>(j);
                req.steps = 60;
                req.mode = mode;
                req.slo = SloClass::BestEffort;
                low.push_back(server.submit(req));
            }
            ASSERT_TRUE(spinUntil([&] {
                for (uint64_t id : low)
                    if (server.queryState(id) != RequestStatus::Running)
                        return false;
                return true;
            }));
            // ... then preempt all of it with high-class work.
            std::vector<uint64_t> high;
            for (int64_t j = 0; j < max_batch; ++j) {
                DenoiseRequest req;
                req.seed = 900 + static_cast<uint64_t>(j);
                req.steps = 5;
                req.mode = mode;
                req.slo = SloClass::Interactive;
                high.push_back(server.submit(req));
            }
            for (size_t j = 0; j < high.size(); ++j) {
                const DenoiseResult r = server.wait(high[j]);
                ASSERT_EQ(r.status, RequestStatus::Done);
                expectBitwiseEqual(
                    referenceImage(mode, 900 + j, 5), r.image);
            }
            for (size_t j = 0; j < low.size(); ++j) {
                const DenoiseResult r = server.wait(low[j]);
                ASSERT_EQ(r.status, RequestStatus::Done);
                EXPECT_GE(r.preemptions, 1)
                    << "mode " << static_cast<int>(mode) << " batch "
                    << max_batch << " slot " << j;
                EXPECT_EQ(r.steps, 60);
                // The hardening guarantee: a parked-and-resumed
                // rollout is bit-identical to an uninterrupted one.
                expectBitwiseEqual(
                    referenceImage(mode, 800 + j, 60), r.image);
            }
        }
    }
}

TEST(PreemptResume, ParityAcrossWorkerAndThreadCounts)
{
    const MiniUnet &net = testNet();
    setThreadCount(3);
    ServerConfig cfg = quietConfig();
    cfg.workers = 3; // three single-slot engines; parked work may
    cfg.maxBatch = 1; // resume on a different engine than it left
    DenoiseServer server(net.compiled(), cfg);
    std::vector<uint64_t> low;
    for (uint64_t j = 0; j < 3; ++j) {
        DenoiseRequest req;
        req.seed = 820 + j;
        req.steps = 60;
        req.mode = j == 1 ? RunMode::QuantDirect : RunMode::QuantDitto;
        req.slo = SloClass::BestEffort;
        low.push_back(server.submit(req));
    }
    ASSERT_TRUE(spinUntil([&] {
        for (uint64_t id : low)
            if (server.queryState(id) != RequestStatus::Running)
                return false;
        return true;
    }));
    std::vector<uint64_t> high;
    for (uint64_t j = 0; j < 3; ++j) {
        DenoiseRequest req;
        req.seed = 920 + j;
        req.steps = 4;
        req.slo = SloClass::Interactive;
        high.push_back(server.submit(req));
    }
    for (size_t j = 0; j < high.size(); ++j) {
        const DenoiseResult r = server.wait(high[j]);
        ASSERT_EQ(r.status, RequestStatus::Done);
        expectBitwiseEqual(
            referenceImage(RunMode::QuantDitto, 920 + j, 4), r.image);
    }
    for (size_t j = 0; j < low.size(); ++j) {
        const DenoiseResult r = server.wait(low[j]);
        ASSERT_EQ(r.status, RequestStatus::Done);
        const RunMode mode =
            j == 1 ? RunMode::QuantDirect : RunMode::QuantDitto;
        expectBitwiseEqual(referenceImage(mode, 820 + j, 60), r.image);
    }
    setThreadCount(1);
}

TEST(DeadlineTest, ZeroBudgetTimesOutAtTheFirstCheckpoint)
{
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    DenoiseRequest req;
    req.seed = 50;
    req.deadlineMicros = 0; // legal: expires at the first checkpoint
    const DenoiseResult r = server.wait(server.submit(req));
    EXPECT_EQ(r.status, RequestStatus::TimedOut);
    EXPECT_EQ(r.steps, 0);

    // The server survives and a deadline with headroom completes.
    DenoiseRequest ok;
    ok.seed = 51;
    ok.steps = 3;
    ok.deadlineMicros = 60'000'000;
    const DenoiseResult r2 = server.wait(server.submit(ok));
    EXPECT_EQ(r2.status, RequestStatus::Done);
    expectBitwiseEqual(referenceImage(RunMode::QuantDitto, 51, 3),
                       r2.image);
    EXPECT_EQ(server.metrics().total(&ClassMetrics::timedOut), 1u);
}

TEST(DeadlineTest, QueuedRequestTimesOutWhileTheEngineIsBusy)
{
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    DenoiseRequest busy;
    busy.seed = 55;
    busy.steps = 400;
    busy.slo = SloClass::Interactive;
    const uint64_t a = server.submit(busy);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    DenoiseRequest doomed;
    doomed.seed = 56;
    doomed.deadlineMicros = 1000; // 1ms; the 400-step run outlasts it
    const DenoiseResult r = server.wait(server.submit(doomed));
    EXPECT_EQ(r.status, RequestStatus::TimedOut);
    EXPECT_EQ(r.steps, 0);
    server.cancel(a);
}

TEST(DeadlineTest, ParkedRequestTimesOutUnderInjectedStepDelay)
{
    FaultGuard guard;
    // Pin every step to >= 2ms so the wall-clock arithmetic below is
    // schedule-independent: the high-class run alone outlasts the
    // low-class deadline.
    faults::configure("step_begin:delay:every=1:2000");
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    DenoiseRequest low;
    low.seed = 60;
    low.steps = 400;
    low.slo = SloClass::BestEffort;
    low.deadlineMicros = 100'000; // 100ms
    const uint64_t a = server.submit(low);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    DenoiseRequest high;
    high.seed = 61;
    high.steps = 100; // >= 200ms of injected delay
    high.slo = SloClass::Interactive;
    const uint64_t i = server.submit(high);
    const DenoiseResult ra = server.wait(a);
    EXPECT_EQ(ra.status, RequestStatus::TimedOut);
    EXPECT_EQ(ra.preemptions, 1);
    EXPECT_GT(ra.steps, 0);
    EXPECT_LT(ra.steps, 400);
    const DenoiseResult ri = server.wait(i);
    EXPECT_EQ(ri.status, RequestStatus::Done);
    expectBitwiseEqual(referenceImage(RunMode::QuantDitto, 61, 100),
                       ri.image);
}

TEST(FaultPointsTest, SubmitFailScheduleRejectsDeterministically)
{
    FaultGuard guard;
    faults::configure("submit:fail:every=2");
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    std::vector<uint64_t> ids;
    for (uint64_t s = 0; s < 4; ++s) {
        DenoiseRequest req;
        req.seed = 70 + s;
        req.steps = 2;
        ids.push_back(server.submit(req));
    }
    const RequestStatus expected[4] = {
        RequestStatus::Done, RequestStatus::Rejected,
        RequestStatus::Done, RequestStatus::Rejected};
    for (size_t s = 0; s < ids.size(); ++s) {
        const DenoiseResult r = server.wait(ids[s]);
        EXPECT_EQ(r.status, expected[s]) << "submit " << s;
    }
    EXPECT_EQ(faults::hitCount(faults::Point::Submit), 4u);
    EXPECT_EQ(server.metrics().total(&ClassMetrics::rejectedFault), 2u);
}

TEST(FaultPointsTest, AdmissionFailRejectsAfterQueueing)
{
    FaultGuard guard;
    faults::configure("admission:fail:every=1");
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    DenoiseRequest req;
    req.seed = 75;
    const DenoiseResult r = server.wait(server.submit(req));
    EXPECT_EQ(r.status, RequestStatus::Rejected);
    const ServeMetrics m = server.metrics();
    EXPECT_EQ(m.total(&ClassMetrics::submitted), 1u);
    EXPECT_EQ(m.total(&ClassMetrics::admitted), 0u);
    EXPECT_EQ(m.total(&ClassMetrics::rejectedFault), 1u);
}

TEST(FaultPointsTest, SeededDelaysLeaveEveryResultBitwise)
{
    FaultGuard guard;
    faults::configure("step_begin:delay:prob=0.5:300;"
                      "step_end:delay:prob=0.5:300;"
                      "batch_form:delay:every=2:1000;"
                      "submit:delay:every=3:500;"
                      "park:delay:every=1:200;"
                      "resume:delay:every=1:200",
                      1234);
    const MiniUnet &net = testNet();
    ServerConfig cfg = quietConfig();
    cfg.maxBatch = 2;
    cfg.workers = 2;
    cfg.maxWaitMicros = 500;
    DenoiseServer server(net.compiled(), cfg);
    std::vector<uint64_t> ids;
    std::vector<DenoiseRequest> reqs;
    for (uint64_t s = 0; s < 6; ++s) {
        DenoiseRequest req;
        req.seed = 80 + s;
        req.steps = 3 + static_cast<int>(s % 3);
        req.mode =
            s % 3 == 2 ? RunMode::QuantDirect : RunMode::QuantDitto;
        req.slo = static_cast<SloClass>(s % kNumSloClasses);
        reqs.push_back(req);
        ids.push_back(server.submit(req));
    }
    for (size_t s = 0; s < ids.size(); ++s) {
        const DenoiseResult r = server.wait(ids[s]);
        ASSERT_EQ(r.status, RequestStatus::Done);
        expectBitwiseEqual(
            referenceImage(reqs[s].mode, reqs[s].seed, reqs[s].steps),
            r.image);
    }
    EXPECT_GT(faults::hitCount(faults::Point::StepBegin), 0u);
}

TEST(AdmissionTest, BoundedQueueRejectsWhenFull)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg = quietConfig();
    cfg.queueCapacity = 2;
    cfg.shedHighWater = 50; // keep shedding out of this test
    cfg.shedLowWater = 10;
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest busy;
    busy.seed = 90;
    busy.steps = 400;
    busy.slo = SloClass::Interactive;
    const uint64_t a = server.submit(busy);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    DenoiseRequest req;
    req.seed = 91;
    const uint64_t b1 = server.submit(req);
    req.seed = 92;
    const uint64_t b2 = server.submit(req);
    req.seed = 93;
    const uint64_t d = server.submit(req); // queue full: rejected
    EXPECT_EQ(server.queryState(d), RequestStatus::Rejected);
    const DenoiseResult rd = server.wait(d);
    EXPECT_EQ(rd.status, RequestStatus::Rejected);
    const ServeMetrics m = server.metrics();
    EXPECT_EQ(m.total(&ClassMetrics::rejectedCapacity), 1u);
    EXPECT_EQ(m.queueDepth, 2u);
    server.cancel(a);
    server.cancel(b1);
    server.cancel(b2);
}

TEST(AdmissionTest, BlockingSubmitRejectsAfterItsBudget)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg = quietConfig();
    cfg.queueCapacity = 1;
    cfg.admitBlockMicros = 100'000; // 100ms of backpressure
    cfg.shedHighWater = 50;
    cfg.shedLowWater = 10;
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest busy;
    busy.seed = 95;
    busy.steps = 2000;
    busy.slo = SloClass::Interactive;
    const uint64_t a = server.submit(busy);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    DenoiseRequest req;
    req.seed = 96;
    const uint64_t b = server.submit(req); // fills the queue
    const auto t0 = std::chrono::steady_clock::now();
    req.seed = 97;
    const uint64_t c = server.submit(req); // blocks, then rejects
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_EQ(server.queryState(c), RequestStatus::Rejected);
    EXPECT_GE(waited, 0.05); // it really blocked for the budget
    server.cancel(a);
    server.cancel(b);
    (void)server.wait(c);
}

TEST(AdmissionTest, BlockingSubmitAdmitsWhenSpaceFreesUp)
{
    FaultGuard guard;
    faults::configure("step_begin:delay:every=1:1000");
    const MiniUnet &net = testNet();
    ServerConfig cfg = quietConfig();
    cfg.queueCapacity = 1;
    cfg.admitBlockMicros = 20'000'000; // far beyond the busy run
    cfg.shedHighWater = 50;
    cfg.shedLowWater = 10;
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest busy;
    busy.seed = 100;
    busy.steps = 20; // ~20ms under the injected step delay
    busy.slo = SloClass::Interactive;
    const uint64_t a = server.submit(busy);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    DenoiseRequest req;
    req.seed = 101;
    req.steps = 2;
    const uint64_t b = server.submit(req); // fills the queue
    req.seed = 102;
    const uint64_t c = server.submit(req); // blocks until b is admitted
    for (uint64_t id : {a, b, c}) {
        const DenoiseResult r = server.wait(id);
        EXPECT_EQ(r.status, RequestStatus::Done);
    }
    EXPECT_EQ(server.metrics().total(&ClassMetrics::rejectedCapacity),
              0u);
}

TEST(ShedTest, OverloadShedsByClassWithHysteresis)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg = quietConfig();
    cfg.queueCapacity = 100;
    cfg.shedHighWater = 4;
    cfg.shedLowWater = 1;
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest busy;
    busy.seed = 110;
    busy.steps = 500;
    busy.slo = SloClass::Interactive; // nothing preempts it
    const uint64_t a = server.submit(busy);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    // Queue four Standard requests: depth reaches the high watermark.
    std::vector<uint64_t> backlog;
    for (uint64_t s = 0; s < 4; ++s) {
        DenoiseRequest req;
        req.seed = 111 + s;
        req.steps = 3;
        backlog.push_back(server.submit(req));
    }
    // Shedding engages: Standard is force-degraded ...
    DenoiseRequest std_req;
    std_req.seed = 120;
    std_req.steps = 4;
    std_req.mode = RunMode::QuantDirect; // degraded to ApproxDitto
    const uint64_t deg = server.submit(std_req);
    // ... and BestEffort is rejected outright.
    DenoiseRequest be_req;
    be_req.seed = 121;
    be_req.slo = SloClass::BestEffort;
    const uint64_t shed = server.submit(be_req);
    EXPECT_EQ(server.queryState(shed), RequestStatus::Rejected);
    EXPECT_EQ(server.wait(shed).status, RequestStatus::Rejected);

    server.cancel(a); // release the engine and drain the backlog
    for (uint64_t id : backlog)
        EXPECT_EQ(server.wait(id).status, RequestStatus::Done);
    const DenoiseResult rdeg = server.wait(deg);
    EXPECT_EQ(rdeg.status, RequestStatus::Done);
    EXPECT_TRUE(rdeg.degraded);
    // Degradation sheds quality, not steps: the full trajectory runs
    // in ApproxDitto and is bitwise the sequential ApproxDitto rollout
    // of the same seed, whatever batch it landed in.
    EXPECT_EQ(rdeg.steps, 4);
    expectBitwiseEqual(referenceImage(RunMode::ApproxDitto, 120, 4),
                       rdeg.image);

    const ServeMetrics m = server.metrics();
    EXPECT_EQ(m.perClass[static_cast<size_t>(SloClass::BestEffort)]
                  .rejectedShed,
              1u);
    EXPECT_EQ(
        m.perClass[static_cast<size_t>(SloClass::Standard)].degraded,
        1u);
    EXPECT_EQ(m.shedEntered, 1u);
    EXPECT_EQ(m.shedExited, 1u); // hysteresis released on drain
    EXPECT_FALSE(m.shedding);
    EXPECT_GE(m.queueDepthPeak, 5u);

    // Out of overload, BestEffort is served again.
    DenoiseRequest ok;
    ok.seed = 122;
    ok.steps = 2;
    ok.slo = SloClass::BestEffort;
    EXPECT_EQ(server.wait(server.submit(ok)).status,
              RequestStatus::Done);
}

/**
 * ApproxDitto through the serving layer (docs/approx_reuse.md): the
 * approximate mode joins the same batches as the exact modes, its
 * per-slab reuse decisions are independent of batch composition, and
 * parking a request mid-rollout carries the reuse state (cached
 * codes/outputs + consecutive-skip counters) so the resumed
 * trajectory is bitwise the uninterrupted one.
 */

/** MiniUnet at test geometry with an aggressive skip policy. */
const CompiledModel &
approxNet()
{
    static const CompiledModel *m = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        auto *model =
            new CompiledModel(compile(miniUnetSpec(smallConfig())));
        // Skip whenever the refresh cap allows: every primed step
        // reuses, so drift, counters and refresh all get exercised.
        model->setApproxPolicy(1.0, 3);
        return model;
    }();
    return *m;
}

TEST(ApproxServe, MixedModesShareABatch)
{
    const CompiledModel &m = approxNet();
    BatchEngine engine(m, /*max_batch=*/3);
    const RunMode modes[3] = {RunMode::ApproxDitto, RunMode::QuantDitto,
                              RunMode::QuantDirect};
    for (uint64_t i = 0; i < 3; ++i) {
        DenoiseRequest req;
        req.seed = 700 + i;
        req.mode = modes[i];
        engine.admit(i, req);
    }
    std::vector<BatchEngine::Finished> all;
    while (!engine.empty()) {
        engine.step();
        std::vector<BatchEngine::Finished> done = engine.retire();
        std::move(done.begin(), done.end(), std::back_inserter(all));
    }
    ASSERT_EQ(all.size(), 3u);
    for (const BatchEngine::Finished &f : all) {
        // Each slab reproduces its own sequential rollout — the exact
        // slabs stay exact even though the batch ran in approx mode.
        const RolloutResult seq =
            m.rollout(modes[f.id], m.requestNoise(700 + f.id));
        expectBitwiseEqual(seq.finalImage, f.image);
        if (modes[f.id] != RunMode::ApproxDitto)
            EXPECT_EQ(f.ops.reusedElems, 0);
        else
            EXPECT_GT(f.ops.reusedElems, 0);
    }
}

TEST(ApproxServe, ParkAndResumePreservesReuseStateBitwise)
{
    const CompiledModel &m = approxNet();
    const int kSteps = 6;
    DenoiseRequest req;
    req.seed = 710;
    req.steps = kSteps;
    req.mode = RunMode::ApproxDitto;

    BatchEngine first(m, /*max_batch=*/2);
    first.admit(1, req);
    // Three steps in, the request sits mid-skip-run (counters at 2 of
    // cap 3) with live cached codes and outputs.
    for (int t = 0; t < 3; ++t)
        first.step();
    const BatchEngine::Parked p = first.park(0);
    EXPECT_TRUE(p.approx);
    EXPECT_TRUE(p.hasState);
    EXPECT_EQ(p.stepsDone, 3);

    // Resume on a different engine over the same model, sharing the
    // batch with an unrelated exact request.
    BatchEngine second(m, /*max_batch=*/2);
    DenoiseRequest other;
    other.seed = 711;
    other.steps = kSteps;
    second.admit(2, other);
    second.admitParked(p);
    while (!second.empty()) {
        second.step();
        for (const BatchEngine::Finished &f : second.retire()) {
            const uint64_t seed = f.id == 1 ? 710 : 711;
            const RunMode mode = f.id == 1 ? RunMode::ApproxDitto
                                           : RunMode::QuantDitto;
            const RolloutResult seq =
                m.rollout(mode, m.requestNoise(seed), kSteps);
            expectBitwiseEqual(seq.finalImage, f.image);
        }
    }
}

TEST(ApproxServe, ReplaceSlotParkedRestoresState)
{
    const CompiledModel &m = approxNet();
    DenoiseRequest req;
    req.seed = 720;
    req.steps = 6;
    req.mode = RunMode::ApproxDitto;
    BatchEngine engine(m, /*max_batch=*/1);
    engine.admit(1, req);
    for (int t = 0; t < 3; ++t)
        engine.step();
    const BatchEngine::Parked p = engine.park(0);

    // A short request borrows the engine, finishes, and the parked
    // approx request resumes into its slot in place.
    DenoiseRequest filler;
    filler.seed = 721;
    filler.steps = 2;
    engine.admit(2, filler);
    engine.step();
    engine.step();
    ASSERT_TRUE(engine.slotFinished(0));
    expectBitwiseEqual(
        m.rollout(RunMode::QuantDitto, m.requestNoise(721), 2)
            .finalImage,
        engine.extract(0).image);
    engine.replaceSlotParked(0, p);
    while (!engine.empty()) {
        engine.step();
        for (const BatchEngine::Finished &f : engine.retire())
            expectBitwiseEqual(
                m.rollout(RunMode::ApproxDitto, m.requestNoise(720), 6)
                    .finalImage,
                f.image);
    }
}

TEST(ApproxServe, ReplaceSlotClearsPriorApproxState)
{
    // Regression companion to ApproxMode.ResetSlabClearsApproxReuseState:
    // through the engine surface, a slot that served an approx request
    // must hand a fresh request (approx or exact) a clean slate.
    const CompiledModel &m = approxNet();
    BatchEngine engine(m, /*max_batch=*/1);
    DenoiseRequest a;
    a.seed = 730;
    a.steps = 5;
    a.mode = RunMode::ApproxDitto;
    engine.admit(1, a);
    while (engine.finishedSlots().empty())
        engine.step();

    DenoiseRequest b;
    b.seed = 731;
    b.steps = 5;
    b.mode = RunMode::ApproxDitto;
    engine.replaceSlot(0, 2, b);
    while (engine.finishedSlots().empty())
        engine.step();
    expectBitwiseEqual(
        m.rollout(RunMode::ApproxDitto, m.requestNoise(731), 5)
            .finalImage,
        engine.extract(0).image);

    DenoiseRequest c;
    c.seed = 732;
    c.steps = 5;
    c.mode = RunMode::QuantDitto; // exact after approx: no reuse leaks
    engine.replaceSlot(0, 3, c);
    while (engine.finishedSlots().empty())
        engine.step();
    const BatchEngine::Finished f = engine.extract(0);
    EXPECT_EQ(f.ops.reusedElems, 0);
    expectBitwiseEqual(
        m.rollout(RunMode::QuantDitto, m.requestNoise(732), 5)
            .finalImage,
        f.image);
}

TEST(ApproxServe, ExplicitApproxRequestServedBitwise)
{
    DenoiseServer server(testNet().compiled(), quietConfig());
    DenoiseRequest req;
    req.seed = 740;
    req.steps = 4;
    req.mode = RunMode::ApproxDitto;
    const DenoiseResult r = server.wait(server.submit(req));
    EXPECT_EQ(r.status, RequestStatus::Done);
    EXPECT_FALSE(r.degraded); // asked for, not shed into
    expectBitwiseEqual(referenceImage(RunMode::ApproxDitto, 740, 4),
                       r.image);
}

TEST(ApproxServe, ShedNeverDegradesInteractive)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg = quietConfig();
    cfg.queueCapacity = 100;
    cfg.shedHighWater = 4;
    cfg.shedLowWater = 1;
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest busy;
    busy.seed = 750;
    busy.steps = 500;
    busy.slo = SloClass::Interactive;
    const uint64_t a = server.submit(busy);
    ASSERT_TRUE(spinUntil([&] {
        return server.queryState(a) == RequestStatus::Running;
    }));
    std::vector<uint64_t> backlog;
    for (uint64_t s = 0; s < 4; ++s) {
        DenoiseRequest req;
        req.seed = 751 + s;
        req.steps = 3;
        backlog.push_back(server.submit(req)); // engages shedding
    }
    // Interactive work submitted during overload is untouched: full
    // steps, exact mode, no degraded flag.
    DenoiseRequest vip;
    vip.seed = 760;
    vip.steps = 4;
    vip.slo = SloClass::Interactive;
    const uint64_t v = server.submit(vip);
    server.cancel(a);
    const DenoiseResult rv = server.wait(v);
    EXPECT_EQ(rv.status, RequestStatus::Done);
    EXPECT_FALSE(rv.degraded);
    EXPECT_EQ(rv.steps, 4);
    expectBitwiseEqual(referenceImage(RunMode::QuantDitto, 760, 4),
                       rv.image);
    for (uint64_t id : backlog)
        (void)server.wait(id);
    EXPECT_EQ(server.metrics()
                  .perClass[static_cast<size_t>(SloClass::Interactive)]
                  .degraded,
              0u);
}

TEST(MetricsTest, JsonExportCoversTheDocumentedSurface)
{
    const MiniUnet &net = testNet();
    DenoiseServer server(net.compiled(), quietConfig());
    for (uint64_t s = 0; s < 2; ++s) {
        DenoiseRequest req;
        req.seed = 130 + s;
        req.steps = 2;
        (void)server.wait(server.submit(req));
    }
    const std::string json = server.metricsJson();
    for (const char *key :
         {"\"classes\"", "\"interactive\"", "\"standard\"",
          "\"best_effort\"", "\"p50_us\"", "\"p95_us\"", "\"p99_us\"",
          "\"queue_depth\"", "\"shedding\":false", "\"steps\"",
          "\"avg_occupancy\"", "\"preempted\"", "\"rejected_capacity\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    const ServeMetrics m = server.metrics();
    EXPECT_EQ(m.total(&ClassMetrics::completed), 2u);
    EXPECT_EQ(m.total(&ClassMetrics::submitted), 2u);
    const ClassMetrics &std_class =
        m.perClass[static_cast<size_t>(SloClass::Standard)];
    EXPECT_EQ(std_class.e2eUs.count(), 2u);
    EXPECT_GT(std_class.e2eUs.meanUs(), 0.0);
    EXPECT_GE(std_class.e2eUs.percentileUs(0.95),
              std_class.e2eUs.percentileUs(0.50));
}

} // namespace
} // namespace ditto
