/**
 * @file
 * Tests for the batched denoising serving layer: bitwise parity of
 * batched execution against independent sequential rollouts (the
 * serving guarantee), mixed timesteps and modes inside one batch,
 * thread-count determinism, the batched ops/engine entry points, and
 * the DenoiseServer queue/deadline behavior.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/diff_linear.h"
#include "core/mini_unet.h"
#include "quant/encoder.h"
#include "runtime/presets.h"
#include "serve/batch_rollout.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace ditto {
namespace {

MiniUnetConfig
smallConfig()
{
    MiniUnetConfig cfg;
    cfg.channels = 8;
    cfg.resolution = 8;
    cfg.steps = 5;
    return cfg;
}

/** Shared test model (calibration runs once per process). */
const MiniUnet &
testNet()
{
    static const MiniUnet *net = [] {
        setenv("DITTO_NO_CACHE", "1", 0);
        return new MiniUnet(smallConfig());
    }();
    return *net;
}

void
expectBitwiseEqual(const FloatTensor &a, const FloatTensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_TRUE(a == b) << "images are not bitwise identical";
}

void
expectCountsEqual(const OpCounts &a, const OpCounts &b)
{
    EXPECT_EQ(a.zeroSkipped, b.zeroSkipped);
    EXPECT_EQ(a.low4, b.low4);
    EXPECT_EQ(a.full8, b.full8);
}

TEST(ServeParity, BatchedRolloutMatchesSequentialBitwise)
{
    const MiniUnet &net = testNet();
    std::vector<FloatTensor> noises;
    for (uint64_t s = 1; s <= 6; ++s)
        noises.push_back(net.requestNoise(s));
    for (RunMode mode : {RunMode::QuantDitto, RunMode::QuantDirect}) {
        const std::vector<RolloutResult> batched =
            net.rolloutBatch(mode, noises);
        ASSERT_EQ(batched.size(), noises.size());
        for (size_t i = 0; i < noises.size(); ++i) {
            const RolloutResult seq = net.rollout(mode, noises[i]);
            expectBitwiseEqual(seq.finalImage, batched[i].finalImage);
            expectCountsEqual(seq.dittoOps, batched[i].dittoOps);
        }
    }
}

TEST(ServeParity, BatchedRolloutThreadCountInvariant)
{
    const MiniUnet &net = testNet();
    std::vector<FloatTensor> noises;
    for (uint64_t s = 11; s <= 15; ++s)
        noises.push_back(net.requestNoise(s));

    setThreadCount(1);
    const std::vector<RolloutResult> one =
        net.rolloutBatch(RunMode::QuantDitto, noises);
    setThreadCount(4);
    const std::vector<RolloutResult> four =
        net.rolloutBatch(RunMode::QuantDitto, noises);
    setThreadCount(1);
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i) {
        expectBitwiseEqual(one[i].finalImage, four[i].finalImage);
        expectCountsEqual(one[i].dittoOps, four[i].dittoOps);
    }
}

TEST(ServeParity, OddResolutionFallbackPaths)
{
    // resolution 6 -> 36 pixels: exercises non-multiple-of-panel
    // shapes through the whole batched stack.
    setenv("DITTO_NO_CACHE", "1", 0);
    MiniUnetConfig cfg = smallConfig();
    cfg.resolution = 6;
    const MiniUnet net(cfg);
    std::vector<FloatTensor> noises;
    for (uint64_t s = 21; s <= 24; ++s)
        noises.push_back(net.requestNoise(s));
    const std::vector<RolloutResult> batched =
        net.rolloutBatch(RunMode::QuantDitto, noises);
    for (size_t i = 0; i < noises.size(); ++i) {
        const RolloutResult seq =
            net.rollout(RunMode::QuantDitto, noises[i]);
        expectBitwiseEqual(seq.finalImage, batched[i].finalImage);
    }
}

TEST(BatchEngineTest, MixedTimestepsShareABatch)
{
    const MiniUnet &net = testNet();
    BatchEngine engine(net.compiled(), /*max_batch=*/4);

    // Three requests with different step counts join together ...
    const int steps[4] = {3, 5, 7, 4};
    for (uint64_t i = 0; i < 3; ++i) {
        DenoiseRequest req;
        req.seed = 100 + i;
        req.steps = steps[i];
        engine.admit(i, req);
    }
    // ... and a fourth joins two steps later (continuous batching),
    // so the batch holds slabs at timesteps {2, 2, 2, 0}.
    engine.step();
    engine.step();
    {
        DenoiseRequest req;
        req.seed = 103;
        req.steps = steps[3];
        engine.admit(3, req);
    }

    std::vector<BatchEngine::Finished> all;
    while (!engine.empty()) {
        engine.step();
        std::vector<BatchEngine::Finished> done = engine.retire();
        std::move(done.begin(), done.end(), std::back_inserter(all));
    }
    ASSERT_EQ(all.size(), 4u);
    for (const BatchEngine::Finished &f : all) {
        const uint64_t i = f.id;
        EXPECT_EQ(f.steps, steps[i]);
        const RolloutResult seq = net.rollout(
            RunMode::QuantDitto, net.requestNoise(100 + i), steps[i]);
        expectBitwiseEqual(seq.finalImage, f.image);
        expectCountsEqual(seq.dittoOps, f.ops);
    }
}

TEST(BatchEngineTest, DirectAndDittoRequestsShareABatch)
{
    const MiniUnet &net = testNet();
    BatchEngine engine(net.compiled(), /*max_batch=*/3);
    const RunMode modes[3] = {RunMode::QuantDitto, RunMode::QuantDirect,
                              RunMode::QuantDitto};
    for (uint64_t i = 0; i < 3; ++i) {
        DenoiseRequest req;
        req.seed = 200 + i;
        req.mode = modes[i];
        engine.admit(i, req);
    }
    std::vector<BatchEngine::Finished> all;
    while (!engine.empty()) {
        engine.step();
        std::vector<BatchEngine::Finished> done = engine.retire();
        std::move(done.begin(), done.end(), std::back_inserter(all));
    }
    ASSERT_EQ(all.size(), 3u);
    for (const BatchEngine::Finished &f : all) {
        const RolloutResult seq =
            net.rollout(modes[f.id], net.requestNoise(200 + f.id));
        expectBitwiseEqual(seq.finalImage, f.image);
    }
}

TEST(BatchedOpsTest, MatmulDiffPlanBatchMatchesPerPlan)
{
    Rng rng(7);
    const int64_t rows = 13, k = 40, n = 24, slabs = 5;
    const Int8Tensor b = [&] {
        Int8Tensor t(Shape{k, n});
        t.fillUniformInt(rng, -127, 127);
        return t;
    }();
    std::vector<DiffGemmPlan> plans;
    std::vector<Int32Tensor> prevs;
    Int32Tensor prev_stacked(Shape{slabs * rows, n});
    for (int64_t s = 0; s < slabs; ++s) {
        Int16Tensor diff(Shape{rows, k});
        for (auto &v : diff.data()) {
            const int u = static_cast<int>(rng.uniformInt(100));
            v = u < 60 ? 0
                       : static_cast<int16_t>(
                             static_cast<int64_t>(rng.uniformInt(509)) -
                             254);
        }
        plans.push_back(encodeDiff(diff));
        Int32Tensor prev(Shape{rows, n});
        prev.fillUniformInt(rng, -100000, 100000);
        std::copy(prev.data().begin(), prev.data().end(),
                  prev_stacked.data().begin() + s * rows * n);
        prevs.push_back(std::move(prev));
    }
    const Int32Tensor batched =
        matmulDiffPlanBatch(plans, b, &prev_stacked);
    for (int64_t s = 0; s < slabs; ++s) {
        const Int32Tensor single =
            matmulDiffPlan(plans[static_cast<size_t>(s)], b,
                           &prevs[static_cast<size_t>(s)]);
        for (int64_t i = 0; i < rows * n; ++i)
            ASSERT_EQ(single.at(i), batched.at(s * rows * n + i))
                << "slab " << s << " element " << i;
    }
}

TEST(BatchedOpsTest, FcEngineRunBatchMatchesRunDiffForceDiff)
{
    Rng rng(9);
    const int64_t slabs = 4, rows = 9, in = 32, out = 16;
    Int8Tensor w(Shape{out, in});
    w.fillUniformInt(rng, -127, 127);
    const DiffFcEngine engine(w);

    Int8Tensor x(Shape{slabs * rows, in});
    Int8Tensor prev_x(Shape{slabs * rows, in});
    x.fillUniformInt(rng, -50, 50);
    // Mostly-similar previous step so the diff stream is sparse.
    for (int64_t i = 0; i < prev_x.numel(); ++i)
        prev_x.at(i) = static_cast<int8_t>(
            x.at(i) + (rng.uniformInt(10) == 0 ? 3 : 0));
    Int32Tensor prev_out(Shape{slabs * rows, out});
    prev_out.fillUniformInt(rng, -100000, 100000);
    std::vector<uint8_t> primed(static_cast<size_t>(slabs), 1);

    for (DiffPolicy policy : {DiffPolicy::Auto, DiffPolicy::ForceDiff}) {
        std::vector<OpCounts> counts(static_cast<size_t>(slabs));
        const Int32Tensor batched =
            engine.runBatch(x, slabs, &prev_x, &prev_out, primed.data(),
                            counts.data(), policy);
        for (int64_t s = 0; s < slabs; ++s) {
            Int8Tensor xs(Shape{rows, in}), ps(Shape{rows, in});
            Int32Tensor os(Shape{rows, out});
            for (int64_t i = 0; i < rows * in; ++i) {
                xs.at(i) = x.at(s * rows * in + i);
                ps.at(i) = prev_x.at(s * rows * in + i);
            }
            for (int64_t i = 0; i < rows * out; ++i)
                os.at(i) = prev_out.at(s * rows * out + i);
            OpCounts seq_counts;
            const Int32Tensor single =
                engine.runDiff(xs, ps, os, &seq_counts, policy);
            for (int64_t i = 0; i < rows * out; ++i)
                ASSERT_EQ(single.at(i), batched.at(s * rows * out + i));
            expectCountsEqual(seq_counts,
                              counts[static_cast<size_t>(s)]);
        }
    }
}

TEST(ServerTest, CompletesBurstWithBatchFormation)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxWaitMicros = 200'000; // generous window: the burst fills it
    cfg.workers = 1;
    DenoiseServer server(net.compiled(), cfg);
    std::vector<uint64_t> ids;
    for (uint64_t s = 0; s < 8; ++s) {
        DenoiseRequest req;
        req.seed = 300 + s;
        ids.push_back(server.submit(req));
    }
    // Tickets are FIFO and results retrievable in any order.
    for (size_t i = ids.size(); i-- > 0;) {
        const DenoiseResult res = server.wait(ids[i]);
        EXPECT_EQ(res.id, ids[i]);
        EXPECT_EQ(res.steps, net.config().steps);
        const RolloutResult seq = net.rollout(
            RunMode::QuantDitto, net.requestNoise(300 + i));
        expectBitwiseEqual(seq.finalImage, res.image);
        EXPECT_GE(res.queueMicros, 0.0);
        EXPECT_GT(res.serviceMicros, 0.0);
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_GE(stats.batchesFormed, 1u);
    // The formation window plus continuous batching must have packed
    // more than one request per step on average for an 8-burst.
    EXPECT_GT(stats.avgOccupancy(), 1.0);
}

TEST(ServerTest, ZeroWaitRequestDispatchesImmediately)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxWaitMicros = 30'000'000; // 30s default window ...
    cfg.workers = 1;
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest req;
    req.seed = 400;
    req.maxWaitMicros = 0; // ... which this request opts out of
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t id = server.submit(req);
    const DenoiseResult res = server.wait(id);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    // Completion far below the 30s window proves the deadline logic
    // dispatched the lone request instead of holding the batch open.
    EXPECT_LT(elapsed, 10.0);
    const RolloutResult seq =
        net.rollout(RunMode::QuantDitto, net.requestNoise(400));
    expectBitwiseEqual(seq.finalImage, res.image);
}

TEST(ServerTest, PollDeliversTheResultNonBlocking)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 2;
    cfg.maxWaitMicros = 0;
    cfg.workers = 2; // two engines draining the same queue
    DenoiseServer server(net.compiled(), cfg);
    DenoiseRequest req;
    req.seed = 500;
    const uint64_t id = server.submit(req);
    DenoiseResult res;
    // False while pending, true exactly once when ready; a second poll
    // on the consumed ticket would abort loudly (DITTO_ASSERT) rather
    // than spin a caller forever, so it is not exercised here.
    while (!server.poll(id, &res))
        std::this_thread::yield();
    EXPECT_EQ(res.id, id);
    const RolloutResult seq =
        net.rollout(RunMode::QuantDitto, net.requestNoise(500));
    expectBitwiseEqual(seq.finalImage, res.image);
}

TEST(ServerTest, ManyRequestsAcrossWorkersAllBitwiseCorrect)
{
    const MiniUnet &net = testNet();
    ServerConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxWaitMicros = 1000;
    cfg.workers = 2;
    DenoiseServer server(net.compiled(), cfg);
    std::vector<uint64_t> ids;
    std::vector<int> steps;
    for (uint64_t s = 0; s < 12; ++s) {
        DenoiseRequest req;
        req.seed = 600 + s;
        req.steps = 3 + static_cast<int>(s % 3);
        req.mode =
            s % 4 == 3 ? RunMode::QuantDirect : RunMode::QuantDitto;
        steps.push_back(req.steps);
        ids.push_back(server.submit(req));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RunMode mode =
            i % 4 == 3 ? RunMode::QuantDirect : RunMode::QuantDitto;
        const RolloutResult seq = net.rollout(
            mode, net.requestNoise(600 + i), steps[i]);
        expectBitwiseEqual(seq.finalImage, res.image);
    }
    EXPECT_EQ(server.stats().completed, 12u);
}

TEST(ServerTest, JunctionSpecSlotReuseStaysBitwise)
{
    // The deep UNet routes difference state through junction folds and
    // attention operand hand-overs; serving it with more requests than
    // batch slots exercises continuous batching's slot reuse against
    // the junction code caches (a reset slab re-primes its fold from
    // scratch while its neighbors keep their diff streams).
    setenv("DITTO_NO_CACHE", "1", 0);
    DeepUnetConfig dcfg;
    dcfg.resolution = 8;
    dcfg.baseChannels = 8;
    dcfg.steps = 5;
    const CompiledModel model = compile(deepUnetSpec(dcfg));
    ServerConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxWaitMicros = 500;
    cfg.workers = 1;
    DenoiseServer server(model, cfg);
    std::vector<uint64_t> ids;
    std::vector<DenoiseRequest> reqs;
    for (uint64_t s = 0; s < 9; ++s) {
        DenoiseRequest req;
        req.seed = 700 + s;
        req.steps = 3 + static_cast<int>(s % 3);
        req.mode =
            s % 3 == 2 ? RunMode::QuantDirect : RunMode::QuantDitto;
        reqs.push_back(req);
        ids.push_back(server.submit(req));
    }
    for (size_t i = 0; i < ids.size(); ++i) {
        const DenoiseResult res = server.wait(ids[i]);
        const RolloutResult seq =
            model.rollout(reqs[i].mode,
                          model.requestNoise(reqs[i].seed),
                          reqs[i].steps);
        expectBitwiseEqual(seq.finalImage, res.image);
    }
}

} // namespace
} // namespace ditto
