/**
 * @file
 * Adder-tree PE implementation.
 */
#include "hw/pe.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ditto {

AdderTreePe::AdderTreePe(int lanes) : lanes_(lanes)
{
    DITTO_ASSERT(lanes_ > 0 && lanes_ % 2 == 0,
                 "PE lanes must be a positive even count (shifter pairs)");
}

PeRunResult
AdderTreePe::run(const EncodedStream &stream,
                 const std::function<int8_t(int32_t)> &weight_of) const
{
    PeRunResult result;
    // Lanes execute in groups; each group is one cycle. Multiplies are
    // 4/5-bit x 8-bit; the shifter applies <<4 to high slices before
    // the adder tree, and the tree output accumulates in the partial
    // sum register.
    int64_t i = 0;
    const auto n = static_cast<int64_t>(stream.lanes.size());
    while (i < n) {
        int64_t tree_sum = 0;
        for (int l = 0; l < lanes_ && i < n; ++l, ++i) {
            const LaneOperand &op = stream.lanes[static_cast<size_t>(i)];
            const int64_t product =
                static_cast<int64_t>(op.nibble) * weight_of(op.index);
            tree_sum += op.highPart ? (product << 4) : product;
        }
        result.accumulator += tree_sum;
        ++result.cycles;
    }
    return result;
}

} // namespace ditto
