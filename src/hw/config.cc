/**
 * @file
 * Accelerator configuration tables.
 */
#include "hw/config.h"

#include "common/logging.h"

namespace ditto {

const std::vector<HwDesign> &
allDesigns()
{
    static const std::vector<HwDesign> kAll = {
        HwDesign::ITC, HwDesign::Diffy, HwDesign::CambriconD,
        HwDesign::Ditto, HwDesign::DittoPlus,
    };
    return kAll;
}

const char *
designName(HwDesign design)
{
    switch (design) {
      case HwDesign::ITC: return "ITC";
      case HwDesign::Diffy: return "Diffy";
      case HwDesign::CambriconD: return "Cambricon-D";
      case HwDesign::Ditto: return "Ditto";
      case HwDesign::DittoPlus: return "Ditto+";
    }
    DITTO_PANIC("unknown HwDesign");
}

HwConfig
makeConfig(HwDesign design)
{
    HwConfig c;
    c.name = designName(design);
    switch (design) {
      case HwDesign::ITC:
        c.lanes8 = 27648;
        c.peDescription = "A8W8";
        c.powerW = 36.9;
        c.policy = FlowPolicy::AlwaysAct;
        break;
      case HwDesign::Diffy:
        c.lanes4 = 39398;
        c.peDescription = "A4W8";
        c.powerW = 33.6;
        c.policy = FlowPolicy::AlwaysSpatial;
        c.spatialMode = true;
        // Diffy's zero-length delta encoding skips zero spatial
        // differences, and its per-group precision narrows the rest.
        c.zeroSkip = true;
        break;
      case HwDesign::CambriconD:
        c.lanes4 = 38280;
        c.lanes8 = 2552;
        c.peDescription = "A4W8 + outlier A8W8";
        c.powerW = 33.3;
        c.policy = FlowPolicy::AlwaysDiff;
        c.signMask = true;
        // Cambricon-D's normal PEs have no paired-lane 8-bit path;
        // original-activation execution runs on the outlier PEs alone
        // (Sec. VI-B: "performing original activation execution with a
        // smaller number of PEs").
        c.actOnLanes4 = false;
        // Fairness additions from the paper's methodology: dependency
        // check and attention difference processing are integrated.
        c.attnDiff = true;
        break;
      case HwDesign::Ditto:
        c.lanes4 = 39398;
        c.peDescription = "A4W8";
        c.powerW = 33.6;
        c.policy = FlowPolicy::Defo;
        c.zeroSkip = true;
        c.attnDiff = true;
        break;
      case HwDesign::DittoPlus:
        c.lanes4 = 39398;
        c.peDescription = "A4W8";
        c.powerW = 33.6;
        c.policy = FlowPolicy::DefoPlus;
        c.zeroSkip = true;
        c.attnDiff = true;
        c.spatialMode = true;
        break;
    }
    return c;
}

HwConfig
makeAblationConfig(const std::string &variant)
{
    // All ablation designs share Ditto's lane budget and the layer
    // dependency check (Fig. 16 caption).
    HwConfig c = makeConfig(HwDesign::Ditto);
    c.name = variant;
    if (variant == "DB") {
        // Dynamic bit-width only (Bit Fusion / DRQ style): narrow
        // differences run on one lane, but zeros still execute and the
        // difference tensor spills (no inline encoder).
        c.zeroSkip = false;
        c.attnDiff = false;
        c.policy = FlowPolicy::AlwaysDiff;
        c.streamDiff = false;
    } else if (variant == "DS") {
        // Dynamic sparsity only (SparTen / SpAtten style): zero
        // differences are skipped, but every survivor runs at full
        // bit-width on A8W8 lanes (iso-area lane count of ITC).
        c.lanes4 = 0;
        c.lanes8 = 27648;
        c.zeroSkip = true;
        c.attnDiff = false;
        c.policy = FlowPolicy::AlwaysDiff;
        c.streamDiff = false;
    } else if (variant == "DB&DS") {
        c.zeroSkip = true;
        c.attnDiff = false;
        c.policy = FlowPolicy::AlwaysDiff;
        c.streamDiff = false;
    } else if (variant == "DB&DS&Attn") {
        c.zeroSkip = true;
        c.attnDiff = true;
        c.policy = FlowPolicy::AlwaysDiff;
        c.streamDiff = false;
    } else if (variant == "Ditto") {
        // Full design (Defo).
    } else if (variant == "Ditto+") {
        c = makeConfig(HwDesign::DittoPlus);
        c.name = variant;
    } else {
        DITTO_FATAL("unknown ablation variant '" << variant << "'");
    }
    return c;
}

} // namespace ditto
