/**
 * @file
 * Functional model of the Ditto Compute Unit PE (paper Section V-B,
 * Fig. 12).
 *
 * Each PE is an adder-tree MAC unit with four 4-bit x 8-bit multiplier
 * lanes; a shifter per lane pair applies <<4 to high slices so an 8-bit
 * (or difference) operand occupies two lanes. Accumulation order is
 * irrelevant for a dot product, so high/low slices of one value need
 * not meet in the same tree stage — they combine in the partial-sum
 * register, exactly as the hardware argues.
 *
 * The model consumes the lane stream an EncodingUnit produced plus a
 * weight-lookup callback and returns both the numeric result (verified
 * bit-exact against reference dot products in the tests) and the cycle
 * count (ceil(lanes / laneCount)).
 */
#ifndef DITTO_HW_PE_H
#define DITTO_HW_PE_H

#include <cstdint>
#include <functional>

#include "hw/encoding_unit.h"

namespace ditto {

/** Result of draining one lane stream through a PE. */
struct PeRunResult
{
    int64_t accumulator = 0; //!< dot product of differences and weights
    int64_t cycles = 0;      //!< ceil(laneSlots / lanes)
};

/** Adder-tree PE with a configurable lane count (4 in the paper). */
class AdderTreePe
{
  public:
    explicit AdderTreePe(int lanes = 4);

    /**
     * Drain a lane stream.
     *
     * @param stream encoded operands.
     * @param weight_of maps an element index to its int8 weight operand.
     */
    PeRunResult run(const EncodedStream &stream,
                    const std::function<int8_t(int32_t)> &weight_of) const;

    int lanes() const { return lanes_; }

  private:
    int lanes_;
};

} // namespace ditto

#endif // DITTO_HW_PE_H
