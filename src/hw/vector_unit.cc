/**
 * @file
 * Vector Processing Unit implementation.
 */
#include "hw/vector_unit.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ditto {

VectorUnit::VectorUnit(int64_t lanes) : lanes_(lanes)
{
    DITTO_ASSERT(lanes_ > 0, "VPU needs at least one lane");
}

void
VectorUnit::charge(VectorUnitRun *run, int64_t ops) const
{
    if (!run)
        return;
    run->elementOps += ops;
    run->cycles += ceilDiv(ops, lanes_);
}

FloatTensor
VectorUnit::dequantize(const Int32Tensor &acc, float combined_scale,
                       VectorUnitRun *run) const
{
    charge(run, acc.numel());
    return dequantizeAccum(acc, combined_scale);
}

Int8Tensor
VectorUnit::quantize(const FloatTensor &x, const QuantParams &params,
                     VectorUnitRun *run) const
{
    charge(run, x.numel());
    return ditto::quantize(x, params);
}

Int32Tensor
VectorUnit::summation(const Int32Tensor &prev, const Int32Tensor &delta,
                      VectorUnitRun *run) const
{
    charge(run, prev.numel());
    return addInt32(prev, delta);
}

FloatTensor
VectorUnit::silu(const FloatTensor &x, VectorUnitRun *run) const
{
    charge(run, 2 * x.numel()); // sigmoid + multiply
    return ditto::silu(x);
}

FloatTensor
VectorUnit::gelu(const FloatTensor &x, VectorUnitRun *run) const
{
    charge(run, 2 * x.numel());
    return ditto::gelu(x);
}

FloatTensor
VectorUnit::softmax(const FloatTensor &x, VectorUnitRun *run) const
{
    charge(run, 4 * x.numel()); // max + exp + sum + divide passes
    return softmaxRows(x);
}

} // namespace ditto
