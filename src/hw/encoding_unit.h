/**
 * @file
 * Functional model of the Ditto Encoding Unit (paper Section V-B,
 * Fig. 11).
 *
 * The Encoding Unit sits between the activation buffers and the
 * Compute Unit. Per element pair (previous, current) it:
 *
 *  1. subtracts to form the temporal difference,
 *  2. classifies the difference by comparing its high and low 4-bit
 *     parts against zero (2-bit control signal),
 *  3. reorders: zero differences are dropped (zero skipping); 4-bit
 *     differences enqueue one lane operand; full 8-bit differences
 *     enqueue their low and high nibbles as two lane operands with the
 *     high nibble flagged for the shifter.
 *
 * This functional model produces the exact lane stream a cycle-true
 * encoder would, and is verified against the scalar bit-class oracle
 * (quant/bitwidth.h) and against reference dot products through the PE
 * model in pe.h. A spatial mode replaces the previous-step operand with
 * the left neighbour (offset register + multiplexer in hardware).
 */
#ifndef DITTO_HW_ENCODING_UNIT_H
#define DITTO_HW_ENCODING_UNIT_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ditto {

/** One operand enqueued toward a Compute Unit lane. */
struct LaneOperand
{
    int8_t nibble = 0;   //!< signed 4-bit value in [-8, 7]
    bool highPart = false; //!< apply <<4 after multiplying
    int32_t index = 0;   //!< element index (selects the weight operand)
};

/** Output of encoding one tensor: the reordered lane stream. */
struct EncodedStream
{
    std::vector<LaneOperand> lanes;
    int64_t zeroSkipped = 0;  //!< differences dropped
    int64_t low4Count = 0;    //!< one-lane differences
    int64_t full8Count = 0;   //!< two-lane differences

    /** Total lane-slots the Compute Unit must execute. */
    int64_t laneSlots() const
    {
        return static_cast<int64_t>(lanes.size());
    }
};

/** Functional Encoding Unit. */
class EncodingUnit
{
  public:
    /**
     * Encode temporal differences current - previous.
     * Differences of int8 codes fit in 9 bits; values outside the
     * signed 8-bit range are split with a saturating high nibble model
     * (see encode() implementation notes).
     */
    EncodedStream encodeTemporal(const Int8Tensor &current,
                                 const Int8Tensor &previous) const;

    /** Encode spatial differences along the last dimension. */
    EncodedStream encodeSpatial(const Int8Tensor &current) const;

    /** Encode original activations (full bit-width path, no skipping). */
    EncodedStream encodeAct(const Int8Tensor &current) const;

    /**
     * Encode an arbitrary int16 difference stream (already subtracted).
     */
    EncodedStream encodeValues(const std::vector<int16_t> &values) const;
};

} // namespace ditto

#endif // DITTO_HW_ENCODING_UNIT_H
