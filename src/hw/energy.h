/**
 * @file
 * Energy and area model (45 nm constants; paper Table III and the
 * Fig. 13 energy breakdown).
 *
 * Relative energy between designs is driven by the operation mix
 * (4-bit vs 8-bit multiplies, skipped zeros, SRAM/DRAM traffic) plus
 * the constant overheads of the encoder, vector unit and Defo table.
 * Constants are literature values for a 45 nm node (Horowitz ISSCC'14
 * scaling, CACTI-class SRAM energies, DDR-class DRAM energies), the
 * same toolchain class the paper uses (Synopsys DC + FreePDK45 +
 * CACTI).
 */
#ifndef DITTO_HW_ENERGY_H
#define DITTO_HW_ENERGY_H

#include <cstdint>
#include <string>

namespace ditto {

/** Per-operation energy constants in picojoules. */
struct EnergyTable
{
    // Compute Unit.
    double mult4x8 = 0.10;    //!< 4-bit x 8-bit multiply + tree share
    double mult8x8 = 0.20;    //!< 8-bit multiply (two lanes + shift)
    double accumulate = 0.03; //!< partial-sum register update per lane

    // Encoding Unit: subtract + two comparators + reorder, per element.
    double encodePerElem = 0.25;

    // Vector Processing Unit: per elementwise op (incl. quant/dequant).
    double vectorOp = 0.5;

    // Defo Unit: per table access.
    double defoAccess = 0.005;

    // Memory.
    double sramPerByte = 1.2;  //!< large-bank SRAM access
    double dramPerByte = 160.0; //!< DDR-class DRAM access (~20 pJ/bit)

    /**
     * Fraction of the design's nominal power drawn regardless of
     * activity (clock tree, leakage, control). Charged per cycle and
     * reported as the staticIdle component.
     */
    double staticFraction = 0.45;
};

/** Energy consumption of one run, by component (Fig. 13 breakdown). */
struct EnergyBreakdown
{
    double computeUnit = 0.0;
    double encodingUnit = 0.0;
    double vectorUnit = 0.0;
    double defoUnit = 0.0;
    double sram = 0.0;
    double dram = 0.0;
    double staticIdle = 0.0;

    double
    total() const
    {
        return computeUnit + encodingUnit + vectorUnit + defoUnit +
               sram + dram + staticIdle;
    }

    void
    merge(const EnergyBreakdown &o)
    {
        computeUnit += o.computeUnit;
        encodingUnit += o.encodingUnit;
        vectorUnit += o.vectorUnit;
        defoUnit += o.defoUnit;
        sram += o.sram;
        dram += o.dram;
        staticIdle += o.staticIdle;
    }
};

/** Default 45 nm energy table. */
const EnergyTable &defaultEnergyTable();

/**
 * Area estimate of a lane configuration in mm^2 (45 nm): multiplier
 * lanes, adder trees, encoder share and SRAM macro. Used to reproduce
 * the iso-area lane counts of Table III.
 */
double estimateCoreAreaMm2(int64_t lanes4, int64_t lanes8,
                           bool with_encoder);

} // namespace ditto

#endif // DITTO_HW_ENERGY_H
