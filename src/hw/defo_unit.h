/**
 * @file
 * Hardware-faithful model of the Defo Unit table (paper Section V-B).
 *
 * The Defo Unit stores per-layer cycle measurements in a 512-entry
 * table (sized for the 347-layer maximum across the benchmark, rounded
 * to a power of two). Each entry is 33 bits: 16 bits for the first-step
 * cycles, 16 bits for the second-step cycles, and 1 bit for the locked
 * later-step decision. Real layer cycle counts exceed 16 bits, so the
 * unit records them at a coarser granularity (a configurable right
 * shift) with saturation — this model quantifies how little that
 * quantization costs (tests compare its decisions against the
 * full-precision DefoController).
 */
#ifndef DITTO_HW_DEFO_UNIT_H
#define DITTO_HW_DEFO_UNIT_H

#include <cstdint>
#include <vector>

#include "core/bops.h"

namespace ditto {

/** The 512-entry, 33-bit-per-entry Defo table. */
class DefoUnitTable
{
  public:
    static constexpr int kEntries = 512;
    static constexpr uint32_t kMaxCount = 0xFFFF; //!< 16-bit saturation

    /**
     * @param shift right shift applied to cycle counts before storage
     *        (granularity of 2^shift cycles).
     */
    explicit DefoUnitTable(int shift = 6);

    /** Record a layer's first-step (act-mode) cycles. */
    void recordFirstStep(int layer, double cycles);

    /** Record the second-step (diff-mode) cycles and lock the bit. */
    void recordSecondStep(int layer, double cycles);

    /** Locked decision for steps >= 2. */
    ExecMode lockedMode(int layer) const;

    /** True when the layer reverts to act-style execution. */
    bool revertedToAct(int layer) const;

    /** Stored (quantized) first-step count. */
    uint32_t storedActCount(int layer) const;

    /** Stored (quantized) second-step count. */
    uint32_t storedDiffCount(int layer) const;

    /** Bits per entry (16 + 16 + 1 as in the paper). */
    static constexpr int entryBits() { return 33; }

    /** Total table capacity in bits. */
    static constexpr int tableBits() { return kEntries * entryBits(); }

  private:
    struct Entry
    {
        uint32_t actCount = 0;
        uint32_t diffCount = 0;
        bool useDiff = true;
    };

    int shift_;
    std::vector<Entry> table_;

    uint32_t quantize(double cycles) const;
    const Entry &entry(int layer) const;
};

} // namespace ditto

#endif // DITTO_HW_DEFO_UNIT_H
