/**
 * @file
 * Energy/area constants.
 */
#include "hw/energy.h"

namespace ditto {

const EnergyTable &
defaultEnergyTable()
{
    static const EnergyTable kTable{};
    return kTable;
}

double
estimateCoreAreaMm2(int64_t lanes4, int64_t lanes8, bool with_encoder)
{
    // 45 nm synthesis-class estimates per lane, including the adder
    // tree share: a 4x8 multiplier lane ~520 um^2, an 8x8 lane
    // ~740 um^2. The encoder adds ~12% on top of the 4-bit lanes
    // (subtractor, comparators, reorder queues).
    const double lane4_um2 = 520.0;
    const double lane8_um2 = 740.0;
    double area = static_cast<double>(lanes4) * lane4_um2 +
                  static_cast<double>(lanes8) * lane8_um2;
    if (with_encoder)
        area += static_cast<double>(lanes4) * lane4_um2 * 0.12;
    return area / 1.0e6;
}

} // namespace ditto
