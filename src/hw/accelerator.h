/**
 * @file
 * Cycle-level accelerator simulator.
 *
 * Drives one hardware configuration through the full reverse-diffusion
 * schedule of one model: for every (step, layer) it derives the
 * execution mode from the design's flow policy (via the Defo
 * controller), prices the execution with the analytic cost model and
 * accumulates cycles, traffic and energy. Oracle per-mode costs are
 * computed alongside to support the Ideal configurations and the Defo
 * decision-accuracy metric (Figs. 17-19).
 *
 * This plays the role of the modified Sparse-DySta simulator in the
 * paper's methodology, with the TraceProvider standing in for the
 * PyTorch activation hooks.
 */
#ifndef DITTO_HW_ACCELERATOR_H
#define DITTO_HW_ACCELERATOR_H

#include <string>
#include <vector>

#include "core/defo.h"
#include "hw/config.h"
#include "hw/cost_model.h"
#include "model/graph.h"
#include "trace/provider.h"

namespace ditto {

/** Aggregate result of simulating one (hardware, model) pair. */
struct RunResult
{
    std::string hwName;
    std::string modelName;

    double totalCycles = 0.0;
    double computeCycles = 0.0;   //!< MAC-array busy cycles
    double vectorCycles = 0.0;    //!< VPU busy cycles
    double memStallCycles = 0.0;  //!< exposed memory stalls
    double dramBytes = 0.0;
    EnergyBreakdown energy;

    int computeLayers = 0;     //!< compute layers in the model
    int revertedLayers = 0;    //!< layers Defo locked to act-style mode
    double defoAccuracy = 1.0; //!< locked decision vs oracle optimum

    double timeMs = 0.0; //!< totalCycles / frequency

    double totalEnergyJ() const { return energy.total() * 1e-12; }
};

/** Simulate one hardware configuration over one model's full schedule. */
RunResult simulate(const HwConfig &cfg, const ModelGraph &graph,
                   const TraceProvider &trace,
                   const EnergyTable &et = defaultEnergyTable());

} // namespace ditto

#endif // DITTO_HW_ACCELERATOR_H
