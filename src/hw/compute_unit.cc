/**
 * @file
 * Functional Compute Unit implementation.
 */
#include "hw/compute_unit.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ditto {

namespace {

/** Copy one row of a [rows, cols] int8 matrix into a flat tensor. */
Int8Tensor
rowSlice(const Int8Tensor &m, int64_t row)
{
    const int64_t cols = m.shape()[1];
    Int8Tensor out(Shape{cols});
    for (int64_t c = 0; c < cols; ++c)
        out.at(c) = m.at(row, c);
    return out;
}

} // namespace

ComputeUnit::ComputeUnit(int num_pes, int lanes)
    : numPes_(num_pes), lanes_(lanes)
{
    DITTO_ASSERT(num_pes > 0, "Compute Unit needs at least one PE");
}

ComputeUnitRun
ComputeUnit::runStream(const EncodedStream &stream,
                       const Int8Tensor &weight) const
{
    // Every PE consumes the broadcast stream with its own output
    // neuron's weights; outputs beyond the PE count run in additional
    // waves over the same stream.
    ComputeUnitRun run;
    run.laneSlots = stream.laneSlots();
    run.zeroSkipped = stream.zeroSkipped;
    const int64_t out_features = weight.shape()[0];
    const AdderTreePe pe(lanes_);
    run.output = Int32Tensor(Shape{out_features});
    const int64_t waves = ceilDiv<int64_t>(out_features, numPes_);
    int64_t wave_cycles = 0;
    for (int64_t o = 0; o < out_features; ++o) {
        const PeRunResult r = pe.run(stream, [&](int32_t i) {
            return weight.at(o, i);
        });
        run.output.at(o) = static_cast<int32_t>(r.accumulator);
        wave_cycles = r.cycles; // identical for every PE (same stream)
    }
    run.cycles = waves * wave_cycles;
    return run;
}

ComputeUnitRun
ComputeUnit::runFcDiff(const Int8Tensor &x, const Int8Tensor &prev_x,
                       const Int32Tensor &prev_out,
                       const Int8Tensor &weight) const
{
    DITTO_ASSERT(x.shape().rank() == 2 && x.shape() == prev_x.shape(),
                 "fc diff operands must be equal matrices");
    const int64_t rows = x.shape()[0];
    const int64_t out_features = weight.shape()[0];
    DITTO_ASSERT(prev_out.shape() == Shape({rows, out_features}),
                 "previous output shape mismatch");
    ComputeUnitRun total;
    total.output = Int32Tensor(Shape{rows, out_features});
    for (int64_t r = 0; r < rows; ++r) {
        const EncodedStream stream = encoder_.encodeTemporal(
            rowSlice(x, r), rowSlice(prev_x, r));
        const ComputeUnitRun row = runStream(stream, weight);
        for (int64_t o = 0; o < out_features; ++o)
            total.output.at(r, o) = prev_out.at(r, o) + row.output.at(o);
        total.cycles += row.cycles;
        total.laneSlots += row.laneSlots;
        total.zeroSkipped += row.zeroSkipped;
    }
    return total;
}

ComputeUnitRun
ComputeUnit::runFcAct(const Int8Tensor &x, const Int8Tensor &weight) const
{
    DITTO_ASSERT(x.shape().rank() == 2, "fc input must be a matrix");
    const int64_t rows = x.shape()[0];
    const int64_t out_features = weight.shape()[0];
    ComputeUnitRun total;
    total.output = Int32Tensor(Shape{rows, out_features});
    for (int64_t r = 0; r < rows; ++r) {
        const EncodedStream stream = encoder_.encodeAct(rowSlice(x, r));
        const ComputeUnitRun row = runStream(stream, weight);
        for (int64_t o = 0; o < out_features; ++o)
            total.output.at(r, o) = row.output.at(o);
        total.cycles += row.cycles;
        total.laneSlots += row.laneSlots;
    }
    return total;
}

ComputeUnitRun
ComputeUnit::runAttnScoresDiff(const Int8Tensor &q,
                               const Int8Tensor &prev_q,
                               const Int8Tensor &k,
                               const Int8Tensor &prev_k,
                               const Int32Tensor &prev_scores) const
{
    DITTO_ASSERT(q.shape().rank() == 2 && q.shape() == prev_q.shape() &&
                 k.shape() == prev_k.shape(),
                 "attention operands must be equal matrices");
    const int64_t tokens = q.shape()[0];
    const int64_t ctx = k.shape()[0];
    DITTO_ASSERT(prev_scores.shape() == Shape({tokens, ctx}),
                 "previous scores shape mismatch");
    ComputeUnitRun total;
    total.output = prev_scores;

    // Sub-operation 1: Q_t dK^T — for each context row j, encode dK_j
    // once and let the PEs hold Q_t rows as their weight side.
    for (int64_t j = 0; j < ctx; ++j) {
        const EncodedStream stream = encoder_.encodeTemporal(
            rowSlice(k, j), rowSlice(prev_k, j));
        const ComputeUnitRun part = runStream(stream, q);
        for (int64_t i = 0; i < tokens; ++i)
            total.output.at(i, j) += part.output.at(i);
        total.cycles += part.cycles;
        total.laneSlots += part.laneSlots;
        total.zeroSkipped += part.zeroSkipped;
    }
    // Sub-operation 2: dQ K_prev^T — encode dQ_i, weights are K_prev.
    for (int64_t i = 0; i < tokens; ++i) {
        const EncodedStream stream = encoder_.encodeTemporal(
            rowSlice(q, i), rowSlice(prev_q, i));
        const ComputeUnitRun part = runStream(stream, prev_k);
        for (int64_t j = 0; j < ctx; ++j)
            total.output.at(i, j) += part.output.at(j);
        total.cycles += part.cycles;
        total.laneSlots += part.laneSlots;
        total.zeroSkipped += part.zeroSkipped;
    }
    return total;
}

ComputeUnitRun
ComputeUnit::runFcSpatial(const Int8Tensor &x,
                          const Int8Tensor &weight) const
{
    DITTO_ASSERT(x.shape().rank() == 2, "fc input must be a matrix");
    const int64_t rows = x.shape()[0];
    const int64_t out_features = weight.shape()[0];
    ComputeUnitRun total;
    total.output = Int32Tensor(Shape{rows, out_features});
    Int8Tensor zero_row(Shape{x.shape()[1]});
    for (int64_t r = 0; r < rows; ++r) {
        // Row recurrence: the offset register supplies the previous
        // row (zero for the first), the summation reuses y_{r-1}.
        const Int8Tensor prev =
            r == 0 ? zero_row : rowSlice(x, r - 1);
        const EncodedStream stream =
            encoder_.encodeTemporal(rowSlice(x, r), prev);
        const ComputeUnitRun row = runStream(stream, weight);
        for (int64_t o = 0; o < out_features; ++o) {
            const int32_t base =
                r == 0 ? 0 : total.output.at(r - 1, o);
            total.output.at(r, o) = base + row.output.at(o);
        }
        total.cycles += row.cycles;
        total.laneSlots += row.laneSlots;
        total.zeroSkipped += row.zeroSkipped;
    }
    return total;
}

} // namespace ditto
