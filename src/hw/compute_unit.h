/**
 * @file
 * Functional model of the Compute Unit at layer granularity.
 *
 * Wires the Encoding Unit to an array of adder-tree PEs the way the
 * hardware does for a weight-stationary layer: the encoder runs once
 * over the dynamic operand and broadcasts the reordered lane stream;
 * each PE holds one output neuron's weights and accumulates its dot
 * product; outputs beyond the PE count execute in waves. The cycle
 * count is therefore
 *
 *     ceil(out_features / num_pes) * ceil(lane_slots / lanes_per_pe),
 *
 * and the numeric result is bit-exact against the algorithm-level
 * difference engines (asserted in tests/test_integration.cc) — closing
 * the loop between the Ditto algorithm and the Ditto hardware.
 */
#ifndef DITTO_HW_COMPUTE_UNIT_H
#define DITTO_HW_COMPUTE_UNIT_H

#include <cstdint>

#include "hw/encoding_unit.h"
#include "hw/pe.h"
#include "tensor/tensor.h"

namespace ditto {

/** Result of one layer execution on the functional Compute Unit. */
struct ComputeUnitRun
{
    Int32Tensor output;     //!< int32 accumulator outputs
    int64_t cycles = 0;     //!< PE-array busy cycles
    int64_t laneSlots = 0;  //!< lane slots executed per wave
    int64_t zeroSkipped = 0; //!< differences skipped by the encoder
};

/** A PE array fed by one Encoding Unit. */
class ComputeUnit
{
  public:
    /**
     * @param num_pes parallel adder-tree PEs (output neurons per wave).
     * @param lanes multiplier lanes per PE (4 in the paper).
     */
    explicit ComputeUnit(int num_pes = 64, int lanes = 4);

    /**
     * Fully-connected layer in temporal-difference mode:
     * y = prev_out + W (x - prev_x); x:[rows,in], W:[out,in].
     */
    ComputeUnitRun runFcDiff(const Int8Tensor &x,
                             const Int8Tensor &prev_x,
                             const Int32Tensor &prev_out,
                             const Int8Tensor &weight) const;

    /** Fully-connected layer on original activations (full bit-width). */
    ComputeUnitRun runFcAct(const Int8Tensor &x,
                            const Int8Tensor &weight) const;

    /**
     * Fully-connected layer in spatial-difference mode: the encoder
     * differences along each input row; the row recurrence
     * y_r = y_{r-1} + W (x_r - x_{r-1}) reconstructs exact outputs.
     */
    ComputeUnitRun runFcSpatial(const Int8Tensor &x,
                                const Int8Tensor &weight) const;

    /**
     * Attention scores in temporal-difference mode (Section IV-A):
     * S_t = prev_scores + Q_t dK^T + dQ K_prev^T. Each sub-operation
     * streams one encoded difference operand against one full
     * bit-width operand held as the weight side of the lanes — exactly
     * how the paper maps the decomposition onto the A4W8 PEs.
     * Q,K:[tokens,d]; prev_scores:[tokens,tokens].
     */
    ComputeUnitRun runAttnScoresDiff(const Int8Tensor &q,
                                     const Int8Tensor &prev_q,
                                     const Int8Tensor &k,
                                     const Int8Tensor &prev_k,
                                     const Int32Tensor &prev_scores) const;

    int numPes() const { return numPes_; }
    int lanes() const { return lanes_; }

  private:
    int numPes_;
    int lanes_;
    EncodingUnit encoder_;

    /** Drain one encoded row stream through the PE array. */
    ComputeUnitRun runStream(const EncodedStream &stream,
                             const Int8Tensor &weight) const;
};

} // namespace ditto

#endif // DITTO_HW_COMPUTE_UNIT_H
