/**
 * @file
 * Functional model of the Vector Processing Unit (paper Section V-B).
 *
 * The VPU owns everything the MAC array does not: non-linear functions,
 * quantization and dequantization, and the summation that merges a
 * difference-processed partial result with the previous step's output.
 * This functional model executes those operations on real tensors with
 * the unit's lane-parallel cycle accounting, and is verified against
 * the scalar quantizer and float kernels.
 */
#ifndef DITTO_HW_VECTOR_UNIT_H
#define DITTO_HW_VECTOR_UNIT_H

#include <cstdint>

#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ditto {

/** Result of one VPU operation. */
struct VectorUnitRun
{
    int64_t cycles = 0;
    int64_t elementOps = 0;
};

/** Lane-parallel vector unit for non-linear and (de)quant operations. */
class VectorUnit
{
  public:
    explicit VectorUnit(int64_t lanes = 16384);

    /**
     * Dequantize an int32 accumulator tensor with a combined scale.
     */
    FloatTensor dequantize(const Int32Tensor &acc, float combined_scale,
                           VectorUnitRun *run = nullptr) const;

    /** Quantize a float tensor to int8 codes. */
    Int8Tensor quantize(const FloatTensor &x, const QuantParams &params,
                        VectorUnitRun *run = nullptr) const;

    /**
     * Difference-processing summation: out = prev + delta on int32
     * accumulators (the third stage of Fig. 7).
     */
    Int32Tensor summation(const Int32Tensor &prev,
                          const Int32Tensor &delta,
                          VectorUnitRun *run = nullptr) const;

    /** SiLU on dequantized values. */
    FloatTensor silu(const FloatTensor &x,
                     VectorUnitRun *run = nullptr) const;

    /** GeLU on dequantized values. */
    FloatTensor gelu(const FloatTensor &x,
                     VectorUnitRun *run = nullptr) const;

    /** Row-wise softmax. */
    FloatTensor softmax(const FloatTensor &x,
                        VectorUnitRun *run = nullptr) const;

    int64_t lanes() const { return lanes_; }

  private:
    int64_t lanes_;

    void charge(VectorUnitRun *run, int64_t ops) const;
};

} // namespace ditto

#endif // DITTO_HW_VECTOR_UNIT_H
