/**
 * @file
 * GPU roofline model implementation.
 */
#include "hw/gpu_model.h"

#include <algorithm>

#include "hw/cost_model.h"

namespace ditto {

GpuResult
simulateGpu(const ModelGraph &graph, int steps, const GpuConfig &cfg)
{
    double step_seconds = 0.0;
    for (const Layer &l : graph.layers()) {
        if (l.kind == OpKind::Input)
            continue;
        const double compute_s = l.isCompute()
            ? static_cast<double>(l.macs) /
                  (cfg.macTeraPerSec * 1.0e12 * cfg.utilization)
            : static_cast<double>(l.vectorOps) /
                  (cfg.vectorTeraPerSec * 1.0e12 * cfg.utilization);
        const double bytes =
            static_cast<double>(l.weightElems + l.inputElems +
                                l.inputElems2 + l.outputElems);
        const double mem_s = bytes / (cfg.bwGBs * 1.0e9);
        step_seconds +=
            std::max(compute_s, mem_s) + cfg.launchUs * 1.0e-6;
    }
    GpuResult r;
    r.timeMs = step_seconds * 1.0e3 * steps;
    r.energyJ = cfg.powerW * step_seconds * steps;
    return r;
}

} // namespace ditto
