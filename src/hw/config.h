/**
 * @file
 * Accelerator configurations (paper Table III) and capability flags.
 *
 * All designs share the memory system (192 MB SRAM, HBM-class DRAM) and
 * 1 GHz clock; they differ in multiplier-lane organisation and in which
 * Ditto mechanisms they support:
 *
 *  - ITC: integer Tensor-Core-like baseline, 27648 A8W8 lanes, original
 *    activations only.
 *  - Diffy: 39398 A4W8 lanes, per-element dynamic bit-width on
 *    *spatial* differences (extended, like the paper, to FC and
 *    attention row differences), no zero skipping.
 *  - Cambricon-D: 38280 normal A4W8 lanes + 2552 outlier A8W8 lanes on
 *    temporal differences; no zero skipping; sign-mask data flow
 *    bypasses prev-step traffic at SiLU/GroupNorm boundaries only.
 *    (As in the paper's evaluation, the Fig. 13 configuration also
 *    carries Ditto's dependency check and attention difference
 *    processing for fairness.)
 *  - Ditto: 39398 A4W8 lanes, zero skipping + dynamic bit-width in a
 *    single PE design, Defo runtime flow control.
 *  - Ditto+: Ditto with spatial differences in place of act-mode
 *    execution.
 *
 * Every 4-bit-lane design can execute an 8-bit operand as two lane
 * slots (double multiplier + shift), so "act mode" halves its
 * throughput rather than collapsing onto a handful of outlier PEs.
 */
#ifndef DITTO_HW_CONFIG_H
#define DITTO_HW_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/defo.h"

namespace ditto {

/** One accelerator configuration. */
struct HwConfig
{
    std::string name;

    // Compute organisation.
    int64_t lanes4 = 0;  //!< A4W8 multiplier lanes
    int64_t lanes8 = 0;  //!< native A8W8 multiplier lanes (ITC, outliers)

    // Mechanism support.
    bool zeroSkip = false;     //!< dynamic sparsity (skip zero diffs)
    bool attnDiff = false;     //!< Section IV-A attention decomposition
    bool signMask = false;     //!< Cambricon-D sign-mask data flow
    bool depCheck = true;      //!< static dependency check (Defo static)
    bool spatialMode = false;  //!< Encoding Unit spatial offset support

    /**
     * True when the PE array can execute an 8-bit activation as two
     * 4-bit lane slots (paired multipliers + shifter in the adder
     * tree). This is part of the Ditto PE design; Cambricon-D's normal
     * PEs lack it, so its act-mode work falls back to the outlier
     * lanes alone.
     */
    bool actOnLanes4 = true;

    /**
     * True when an inline Encoding Unit computes differences on the fly
     * (Ditto, Cambricon-D). Generic sparse/bit-width accelerators (the
     * DB/DS ablations) must instead produce the difference tensor in a
     * separate pass, spilling it to DRAM and reloading it.
     */
    bool streamDiff = true;

    /** Runtime execution-flow policy. */
    FlowPolicy policy = FlowPolicy::AlwaysAct;

    // Shared platform parameters (Table III).
    double freqGhz = 1.0;
    double sramMB = 192.0;
    double dramGBs = 512.0;       //!< DRAM bandwidth
    int64_t vpuLanes = 16384;     //!< vector elementwise ops per cycle

    /**
     * Difference-mode pipeline efficiency: the Encoding Unit's reorder
     * queues introduce bubbles and the adder trees see load imbalance
     * when consecutive values straddle the 4/8-bit classes, so the
     * effective lane throughput in difference modes is derated.
     */
    double diffPipelineEff = 0.78;

    /**
     * Images generated per batch. The evaluation workloads produce
     * image batches (FID/IS need thousands of samples), so streamed
     * weight traffic amortises across the batch while activation
     * traffic — including every temporal-difference overhead — scales
     * per image. All per-image results divide weight DRAM traffic by
     * this factor.
     */
    int64_t genBatch = 16;

    // Table III reporting fields.
    std::string peDescription;   //!< e.g. "A4W8"
    double powerW = 0.0;
    double areaMm2 = 64.48;

    /** Act-mode MAC throughput per cycle (8-bit activations). */
    double
    actMacsPerCycle() const
    {
        return static_cast<double>(lanes8) +
               (actOnLanes4 ? static_cast<double>(lanes4) / 2.0 : 0.0);
    }
};

/** The evaluated hardware designs, Fig. 13 order. */
enum class HwDesign
{
    ITC,
    Diffy,
    CambriconD,
    Ditto,
    DittoPlus,
};

/** All designs in Fig. 13 order. */
const std::vector<HwDesign> &allDesigns();

/** Table III configuration of one design. */
HwConfig makeConfig(HwDesign design);

/** Short display name of one design. */
const char *designName(HwDesign design);

/**
 * Ablation configurations of Fig. 16: dynamic-bit-width-only (DB),
 * dynamic-sparsity-only (DS), DB&DS, DB&DS with attention differences,
 * full Ditto and Ditto+. All carry the dependency-check technique, as
 * the figure caption states.
 */
HwConfig makeAblationConfig(const std::string &variant);

} // namespace ditto

#endif // DITTO_HW_CONFIG_H
