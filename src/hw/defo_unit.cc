/**
 * @file
 * Defo Unit table implementation.
 */
#include "hw/defo_unit.h"

#include <cmath>

#include "common/logging.h"

namespace ditto {

DefoUnitTable::DefoUnitTable(int shift)
    : shift_(shift), table_(kEntries)
{
    DITTO_ASSERT(shift_ >= 0 && shift_ < 31, "bad cycle-count shift");
}

uint32_t
DefoUnitTable::quantize(double cycles) const
{
    DITTO_ASSERT(cycles >= 0.0, "negative cycle count");
    const double shifted = cycles / static_cast<double>(1u << shift_);
    const double rounded = std::nearbyint(shifted);
    return rounded >= static_cast<double>(kMaxCount)
        ? kMaxCount : static_cast<uint32_t>(rounded);
}

const DefoUnitTable::Entry &
DefoUnitTable::entry(int layer) const
{
    DITTO_ASSERT(layer >= 0 && layer < kEntries,
                 "layer exceeds the Defo table capacity");
    return table_[static_cast<size_t>(layer)];
}

void
DefoUnitTable::recordFirstStep(int layer, double cycles)
{
    DITTO_ASSERT(layer >= 0 && layer < kEntries,
                 "layer exceeds the Defo table capacity");
    table_[static_cast<size_t>(layer)].actCount = quantize(cycles);
}

void
DefoUnitTable::recordSecondStep(int layer, double cycles)
{
    DITTO_ASSERT(layer >= 0 && layer < kEntries,
                 "layer exceeds the Defo table capacity");
    Entry &e = table_[static_cast<size_t>(layer)];
    e.diffCount = quantize(cycles);
    // The compare logic writes the decision bit once, exactly like
    // Fig. 9's runtime flow.
    e.useDiff = e.actCount > e.diffCount;
}

ExecMode
DefoUnitTable::lockedMode(int layer) const
{
    return entry(layer).useDiff ? ExecMode::TemporalDiff : ExecMode::Act;
}

bool
DefoUnitTable::revertedToAct(int layer) const
{
    return !entry(layer).useDiff;
}

uint32_t
DefoUnitTable::storedActCount(int layer) const
{
    return entry(layer).actCount;
}

uint32_t
DefoUnitTable::storedDiffCount(int layer) const
{
    return entry(layer).diffCount;
}

} // namespace ditto
