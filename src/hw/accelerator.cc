/**
 * @file
 * Accelerator simulator implementation.
 */
#include "hw/accelerator.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace ditto {

namespace {

/**
 * DRAM service-time jitter for one (layer, step): row-buffer locality
 * and refresh interference make achieved bandwidth vary around its
 * mean. Applied identically to every candidate mode of the same
 * execution (same memory conditions), it still flips the comparison of
 * a memory-bound mode against a compute-bound one — the source of
 * Defo's imperfect locked decisions (Fig. 17).
 */
double
memJitter(uint64_t seed, int layer, int step)
{
    Rng rng = Rng::fromKeys(seed ^ 0xD3A9, static_cast<uint64_t>(layer),
                            static_cast<uint64_t>(step));
    return std::exp(rng.normal(0.0, 0.12));
}

/** Re-derive the overlap totals after scaling the memory time. */
void
applyMemJitter(LayerCost &cost, double factor)
{
    cost.memoryCycles *= factor;
    const double busy = cost.computeCycles + cost.vectorCycles;
    cost.totalCycles = std::max(busy, cost.memoryCycles);
    cost.stallCycles = cost.totalCycles - busy;
}

} // namespace

RunResult
simulate(const HwConfig &cfg, const ModelGraph &graph,
         const TraceProvider &trace, const EnergyTable &et)
{
    RunResult result;
    result.hwName = cfg.name;
    result.modelName = graph.name();

    const std::vector<LayerDependency> deps = graph.analyzeDependencies();
    const std::vector<OnChipFlags> onchip = deriveOnChipFlags(graph);
    const int steps = trace.steps();

    // Weight residency: small models keep all weights in SRAM after the
    // first step.
    const double weight_bytes =
        static_cast<double>(graph.totalWeightElems());
    const bool weights_resident =
        weight_bytes <= 0.7 * cfg.sramMB * 1.0e6;

    DefoController controller(cfg.policy, graph.numLayers());

    // Oracle cost sums over the locked region (steps >= 2), for the
    // Fig. 17 decision-accuracy metric.
    std::vector<double> sum_act(graph.numLayers(), 0.0);
    std::vector<double> sum_temp(graph.numLayers(), 0.0);
    std::vector<double> sum_spat(graph.numLayers(), 0.0);

    for (int t = 0; t < steps; ++t) {
        for (const Layer &l : graph.layers()) {
            if (l.kind == OpKind::Input)
                continue;
            if (l.constPerRun && t > 0)
                continue; // K'/V' projections execute once per image
            if (!l.isCompute()) {
                const LayerCost c =
                    vectorLayerCost(cfg, et, l, onchip[l.id]);
                result.totalCycles += c.totalCycles;
                result.vectorCycles += c.vectorCycles;
                result.memStallCycles += c.stallCycles;
                result.dramBytes += c.dramBytes;
                result.energy.merge(c.energy);
                continue;
            }

            const bool charge_weight = !(weights_resident && t > 0);
            const LayerStepStats &st = trace.stats(l.id, t);
            auto price = [&](ExecMode m) {
                return computeLayerCost(cfg, et, l, deps[l.id],
                                        onchip[l.id], st,
                                        legaliseMode(cfg, l, m),
                                        charge_weight);
            };
            LayerCost cost_act = price(ExecMode::Act);
            LayerCost cost_temp = price(ExecMode::TemporalDiff);
            LayerCost cost_spat = price(ExecMode::SpatialDiff);
            const double jitter = memJitter(7, l.id, t);
            applyMemJitter(cost_act, jitter);
            applyMemJitter(cost_temp, jitter);
            applyMemJitter(cost_spat, jitter);
            controller.observeOracle(l.id, t, cost_act.totalCycles,
                                     cost_temp.totalCycles,
                                     cost_spat.totalCycles);
            if (t >= 2) {
                sum_act[l.id] += cost_act.totalCycles;
                sum_temp[l.id] += cost_temp.totalCycles;
                sum_spat[l.id] += cost_spat.totalCycles;
            }

            const ExecMode requested = controller.chooseMode(l.id, t);
            const LayerCost &cost =
                requested == ExecMode::Act ? cost_act
                : requested == ExecMode::TemporalDiff ? cost_temp
                                                      : cost_spat;
            controller.observe(l.id, t, requested, cost.totalCycles);

            result.totalCycles += cost.totalCycles;
            result.computeCycles += cost.computeCycles;
            result.memStallCycles += cost.stallCycles;
            result.dramBytes += cost.dramBytes;
            result.energy.merge(cost.energy);
        }
    }

    // Defo statistics: reversion ratio and decision accuracy against
    // the oracle-optimal locked mode.
    const bool has_defo = cfg.policy == FlowPolicy::Defo ||
                          cfg.policy == FlowPolicy::DefoPlus ||
                          cfg.policy == FlowPolicy::DynamicDefo;
    int correct = 0;
    for (const Layer &l : graph.layers()) {
        if (!l.isCompute() || l.constPerRun)
            continue;
        ++result.computeLayers;
        if (!has_defo)
            continue;
        const bool reverted = controller.revertedToAct(l.id);
        if (reverted)
            ++result.revertedLayers;
        const double act_style_cost =
            cfg.policy == FlowPolicy::DefoPlus ? sum_spat[l.id]
                                               : sum_act[l.id];
        const bool oracle_reverts = act_style_cost < sum_temp[l.id];
        if (reverted == oracle_reverts)
            ++correct;
    }
    if (has_defo && result.computeLayers > 0) {
        result.defoAccuracy =
            static_cast<double>(correct) / result.computeLayers;
    }

    // Static/leakage energy over the whole run.
    result.energy.staticIdle = et.staticFraction * cfg.powerW *
                               result.totalCycles /
                               (cfg.freqGhz * 1.0e9) * 1.0e12;

    result.timeMs = result.totalCycles / (cfg.freqGhz * 1.0e6);
    return result;
}

} // namespace ditto
