/**
 * @file
 * Roofline model of the A100 GPU baseline.
 *
 * The paper measures real GPU latency (method of SpAtten [87]); a
 * dedicated 1 GHz ASIC outruns the GPU on these small-batch diffusion
 * workloads because the GPU reaches only a small fraction of its INT8
 * tensor-core peak and pays a launch overhead per kernel. We model
 * exactly those effects: a utilisation-derated roofline over compute
 * and HBM bandwidth plus a fixed per-layer launch cost. Attention
 * scores are materialised through HBM (the measurement predates
 * fused-attention kernels in these pipelines).
 */
#ifndef DITTO_HW_GPU_MODEL_H
#define DITTO_HW_GPU_MODEL_H

#include "model/graph.h"

namespace ditto {

/** A100-class GPU parameters. */
struct GpuConfig
{
    double macTeraPerSec = 312.0; //!< INT8 tensor-core peak (624 TOPS)
    double utilization = 0.03;    //!< achieved fraction at batch 1
    double vectorTeraPerSec = 19.5; //!< CUDA-core elementwise peak
    double bwGBs = 1555.0;        //!< HBM2e bandwidth
    double powerW = 300.0;        //!< average board power
    double launchUs = 12.0;       //!< per-kernel launch + framework cost
};

/** GPU execution estimate for a full generation run. */
struct GpuResult
{
    double timeMs = 0.0;
    double energyJ = 0.0;
};

/** Estimate GPU latency/energy for `steps` denoising steps. */
GpuResult simulateGpu(const ModelGraph &graph, int steps,
                      const GpuConfig &cfg = {});

} // namespace ditto

#endif // DITTO_HW_GPU_MODEL_H
