/**
 * @file
 * Functional Encoding Unit implementation.
 *
 * Nibble convention (Bit Fusion-style slicing): a multi-lane value v is
 * split as v = hi * 16 + lo with an *unsigned* low slice lo in [0, 15]
 * and a signed high slice. For 8-bit activations the high slice fits 4
 * signed bits; temporal differences of int8 codes span 9 bits, so their
 * high slice needs 5 signed bits ([-16, 15]). We model the high-lane
 * multiplier as 5-bit x 8-bit — a small widening over the paper's
 * description that keeps the difference path exact for all code pairs.
 */
#include "hw/encoding_unit.h"

#include "common/logging.h"
#include "quant/bitwidth.h"

namespace ditto {

namespace {

/** Append the lane operands of one value to a stream. */
void
enqueueValue(EncodedStream &out, int16_t v, int32_t index)
{
    switch (classifyValue(v)) {
      case BitClass::Zero:
        ++out.zeroSkipped;
        return;
      case BitClass::Low4:
        ++out.low4Count;
        out.lanes.push_back({static_cast<int8_t>(v), false, index});
        return;
      case BitClass::Full8: {
        ++out.full8Count;
        const int lo = v & 0xF;
        const int hi = (v - lo) >> 4;
        DITTO_ASSERT(hi >= -16 && hi <= 15,
                     "high slice out of the 5-bit range");
        out.lanes.push_back({static_cast<int8_t>(lo), false, index});
        out.lanes.push_back({static_cast<int8_t>(hi), true, index});
        return;
      }
    }
}

} // namespace

EncodedStream
EncodingUnit::encodeTemporal(const Int8Tensor &current,
                             const Int8Tensor &previous) const
{
    DITTO_ASSERT(current.shape() == previous.shape(),
                 "temporal encode shape mismatch");
    EncodedStream out;
    auto sc = current.data();
    auto sp = previous.data();
    for (size_t i = 0; i < sc.size(); ++i) {
        const auto d = static_cast<int16_t>(static_cast<int16_t>(sc[i]) -
                                            static_cast<int16_t>(sp[i]));
        enqueueValue(out, d, static_cast<int32_t>(i));
    }
    return out;
}

EncodedStream
EncodingUnit::encodeSpatial(const Int8Tensor &current) const
{
    const Shape &s = current.shape();
    DITTO_ASSERT(s.rank() >= 1 && s.numel() > 0, "empty tensor");
    const int64_t cols = s.dim(s.rank() - 1);
    const int64_t rows = s.numel() / cols;
    EncodedStream out;
    auto sd = current.data();
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            const int64_t i = r * cols + c;
            // The leftmost element of each row has no neighbour: the
            // offset register supplies zero, so it encodes at its own
            // magnitude.
            const int16_t v = c == 0
                ? static_cast<int16_t>(sd[i])
                : static_cast<int16_t>(static_cast<int16_t>(sd[i]) -
                                       static_cast<int16_t>(sd[i - 1]));
            enqueueValue(out, v, static_cast<int32_t>(i));
        }
    }
    return out;
}

EncodedStream
EncodingUnit::encodeAct(const Int8Tensor &current) const
{
    EncodedStream out;
    auto sc = current.data();
    for (size_t i = 0; i < sc.size(); ++i) {
        const auto v = static_cast<int16_t>(sc[i]);
        // The act path performs no skipping or narrowing: every value
        // occupies both lanes of a multiplier pair (Fig. 12, left).
        ++out.full8Count;
        const int lo = v & 0xF;
        const int hi = (v - lo) >> 4;
        out.lanes.push_back(
            {static_cast<int8_t>(lo), false, static_cast<int32_t>(i)});
        out.lanes.push_back(
            {static_cast<int8_t>(hi), true, static_cast<int32_t>(i)});
    }
    return out;
}

EncodedStream
EncodingUnit::encodeValues(const std::vector<int16_t> &values) const
{
    EncodedStream out;
    for (size_t i = 0; i < values.size(); ++i)
        enqueueValue(out, values[i], static_cast<int32_t>(i));
    return out;
}

} // namespace ditto
