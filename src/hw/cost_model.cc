/**
 * @file
 * Analytic layer cost model implementation.
 */
#include "hw/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace ditto {

namespace {

/** Bytes the DRAM can serve per core cycle. */
double
bytesPerCycle(const HwConfig &cfg)
{
    return cfg.dramGBs / cfg.freqGhz;
}

/** True when every non-linear boundary of the layer is SiLU/GroupNorm
 *  (the only functions Cambricon-D's sign-mask data flow covers). */
bool
signMaskCovers(const LayerDependency &dep)
{
    if (dep.boundaryNonLinears.empty())
        return false;
    for (OpKind k : dep.boundaryNonLinears)
        if (k != OpKind::SiLU && k != OpKind::GroupNorm)
            return false;
    return true;
}

} // namespace

std::vector<OnChipFlags>
deriveOnChipFlags(const ModelGraph &graph)
{
    std::vector<OnChipFlags> flags(graph.numLayers());
    for (const Layer &l : graph.layers()) {
        if (l.kind == OpKind::AttnQK || l.kind == OpKind::CrossQK) {
            flags[l.id].output = true;
            // The softmax fed by these scores stays on chip too.
            for (int c : graph.consumers(l.id)) {
                if (graph.layer(c).kind == OpKind::Softmax) {
                    flags[c].input1 = true;
                    flags[c].output = true;
                }
            }
        }
        if (l.kind == OpKind::AttnPV || l.kind == OpKind::CrossPV)
            flags[l.id].input1 = true;
    }
    return flags;
}

ExecMode
legaliseMode(const HwConfig &cfg, const Layer &layer, ExecMode mode)
{
    if (mode == ExecMode::TemporalDiff && isDynamicAttention(layer.kind) &&
        !cfg.attnDiff) {
        return ExecMode::Act;
    }
    if (mode == ExecMode::SpatialDiff && !cfg.spatialMode)
        return ExecMode::Act;
    return mode;
}

LayerCost
computeLayerCost(const HwConfig &cfg, const EnergyTable &et,
                 const Layer &layer, const LayerDependency &dep,
                 const OnChipFlags &onchip, const LayerStepStats &stats,
                 ExecMode mode, bool charge_weight)
{
    DITTO_ASSERT(layer.isCompute(), "compute cost of a vector layer");
    LayerCost cost;
    const double macs = static_cast<double>(layer.macs);
    const double in1 = static_cast<double>(layer.inputElems);
    const double in2 = static_cast<double>(layer.inputElems2);
    const double out = static_cast<double>(layer.outputElems);
    const double w = charge_weight
        ? static_cast<double>(layer.weightElems) /
              static_cast<double>(cfg.genBatch)
        : 0.0;

    // ---- Compute cycles and Compute Unit energy -----------------------
    double d4 = 0.0; //!< 4-bit lane ops
    double d8 = 0.0; //!< 8-bit ops
    bool act_style = false;
    if (mode == ExecMode::Act) {
        act_style = true;
    } else {
        const BitFractions &f =
            mode == ExecMode::TemporalDiff ? stats.temp : stats.spat;
        const double factor =
            (mode == ExecMode::TemporalDiff &&
             isDynamicAttention(layer.kind)) ? 2.0 : 1.0;
        d4 = (f.zero * (cfg.zeroSkip ? 0.0 : 1.0) + f.low4) * macs *
             factor;
        d8 = f.full8 * macs * factor;
    }

    const double eff = cfg.diffPipelineEff;
    if (act_style && !cfg.actOnLanes4 && cfg.lanes4 > 0 &&
        cfg.lanes8 > 0) {
        // Heterogeneous design without the paired-lane 8-bit path
        // (Cambricon-D): full-precision data is processed as a
        // difference against a zero baseline, so the activation's own
        // bit classes split across the normal and outlier partitions.
        const double a4 = (stats.act.zero + stats.act.low4) * macs;
        const double a8 = stats.act.full8 * macs;
        cost.computeCycles =
            std::max(a4 / static_cast<double>(cfg.lanes4),
                     a8 / static_cast<double>(cfg.lanes8)) / eff;
        cost.energy.computeUnit = a4 * (et.mult4x8 + et.accumulate) +
                                  a8 * (et.mult8x8 + et.accumulate);
    } else if (act_style) {
        const double thr = cfg.actMacsPerCycle();
        DITTO_ASSERT(thr > 0.0, "design has no act-mode throughput");
        cost.computeCycles = macs / thr;
        cost.energy.computeUnit =
            macs * (et.mult8x8 + 2.0 * et.accumulate);
    } else if (cfg.lanes4 > 0 && cfg.lanes8 > 0) {
        // Heterogeneous (Cambricon-D): parallel partitions.
        cost.computeCycles =
            std::max(d4 / static_cast<double>(cfg.lanes4),
                     d8 / static_cast<double>(cfg.lanes8)) / eff;
        cost.energy.computeUnit = d4 * (et.mult4x8 + et.accumulate) +
                                  d8 * (et.mult8x8 + et.accumulate);
    } else if (cfg.lanes4 > 0) {
        cost.computeCycles =
            (d4 + 2.0 * d8) / static_cast<double>(cfg.lanes4) / eff;
        cost.energy.computeUnit =
            d4 * (et.mult4x8 + et.accumulate) +
            d8 * (et.mult8x8 + 2.0 * et.accumulate);
    } else {
        // 8-bit-lane design with zero skipping (DS ablation): every
        // surviving op costs one full-width slot.
        cost.computeCycles =
            (d4 + d8) / static_cast<double>(cfg.lanes8) / eff;
        cost.energy.computeUnit =
            (d4 + d8) * (et.mult8x8 + et.accumulate);
    }

    // ---- DRAM traffic -------------------------------------------------
    double bytes = w + in2 + (onchip.input1 ? 0.0 : in1) +
                   (onchip.output ? 0.0 : out);
    if (mode == ExecMode::TemporalDiff) {
        // Sign-mask data flow (Cambricon-D) propagates differences
        // through SiLU/GroupNorm, avoiding the full-value summation at
        // those boundaries; the previous-step input must still stream
        // in for the difference, and the sign masks themselves move
        // (one bit per element).
        const bool waived = cfg.signMask && signMaskCovers(dep);
        const bool diff_calc = cfg.depCheck ? dep.diffCalcNeeded : true;
        const bool summation = cfg.depCheck ? dep.summationNeeded : true;
        if (diff_calc) {
            // Previous-step inputs stream through the Encoding Unit;
            // on-chip operands must additionally persist to DRAM now to
            // be available next step.
            bytes += in1 + in2;
            if (onchip.input1)
                bytes += in1;
        }
        if (summation) {
            if (!waived) {
                bytes += out; // previous-step output for the summation
            } else {
                bytes += out / 8.0; // sign-mask bits
            }
            if (onchip.output)
                bytes += out; // persist this step's scores
        }
        // Without an inline Encoding Unit the difference tensor is
        // produced by a separate pass: one spill write plus one reload
        // for every DRAM-resident dynamic operand.
        if (!cfg.streamDiff)
            bytes += 2.0 * ((onchip.input1 ? 0.0 : in1) + in2);
    }
    cost.dramBytes = bytes;
    cost.memoryCycles = bytes / bytesPerCycle(cfg);

    // ---- Other units ---------------------------------------------------
    // Encoding Unit processes the dynamic operands in difference modes.
    if (!act_style && cfg.lanes4 > 0)
        cost.energy.encodingUnit = (in1 + in2) * et.encodePerElem;
    // VPU re-quantizes outputs always; temporal summation adds a pass.
    cost.energy.vectorUnit = 0.5 * out * et.vectorOp;
    if (mode == ExecMode::TemporalDiff &&
        (cfg.depCheck ? dep.summationNeeded : true)) {
        cost.energy.vectorUnit += out * et.vectorOp;
    }
    if (cfg.policy == FlowPolicy::Defo ||
        cfg.policy == FlowPolicy::DefoPlus ||
        cfg.policy == FlowPolicy::DynamicDefo) {
        cost.energy.defoUnit = et.defoAccess;
    }

    // Memory energy: SRAM sees fill+drain of DRAM traffic plus operand
    // streaming from the tiled GEMM (about one byte per eight MACs).
    const double slots = act_style ? 2.0 * macs : d4 + 2.0 * d8;
    cost.energy.sram = (2.0 * bytes + 0.125 * slots) * et.sramPerByte;
    cost.energy.dram = bytes * et.dramPerByte;

    cost.totalCycles = std::max(cost.computeCycles, cost.memoryCycles);
    cost.stallCycles = cost.totalCycles - cost.computeCycles;
    return cost;
}

LayerCost
vectorLayerCost(const HwConfig &cfg, const EnergyTable &et,
                const Layer &layer, const OnChipFlags &onchip)
{
    LayerCost cost;
    if (layer.kind == OpKind::Input)
        return cost;
    const double ops = static_cast<double>(layer.vectorOps);
    const double in1 = static_cast<double>(layer.inputElems);
    const double out = static_cast<double>(layer.outputElems);
    cost.vectorCycles = ops / static_cast<double>(cfg.vpuLanes);
    const double bytes = (onchip.input1 ? 0.0 : in1) +
                         (onchip.output ? 0.0 : out);
    cost.dramBytes = bytes;
    cost.memoryCycles = bytes / bytesPerCycle(cfg);
    cost.energy.vectorUnit = ops * et.vectorOp;
    cost.energy.sram = 2.0 * bytes * et.sramPerByte;
    cost.energy.dram = bytes * et.dramPerByte;
    cost.totalCycles = std::max(cost.vectorCycles, cost.memoryCycles);
    cost.stallCycles = cost.totalCycles - cost.vectorCycles;
    return cost;
}

double
actBytes(const Layer &layer)
{
    // Weight traffic is identical under both processing schemes, so the
    // Fig. 8 comparison isolates the activation-related accesses.
    return static_cast<double>(layer.inputElems + layer.inputElems2 +
                               layer.outputElems);
}

double
naiveDiffBytes(const Layer &layer)
{
    // Generic-substrate accounting: read both current and previous
    // operands, spill the difference tensor and reload it (partially
    // fused with the subtraction), read the previous output for the
    // summation and write the new one.
    const double in = static_cast<double>(layer.inputElems +
                                          layer.inputElems2);
    const double out = static_cast<double>(layer.outputElems);
    return 3.5 * in + 2.0 * out;
}

} // namespace ditto
