/**
 * @file
 * Analytic per-layer cost model: cycles, DRAM traffic and energy for
 * one layer execution at one step in one mode.
 *
 * Modelling decisions (each recorded in DESIGN.md):
 *
 *  - Lane-slot compute model: a 4-bit difference occupies one A4W8
 *    lane-slot, an 8-bit value two (double multiplier + shift), zeros
 *    none when the design skips them. Heterogeneous designs
 *    (Cambricon-D) run 4-bit work on normal lanes and 8-bit work on
 *    outlier lanes in parallel; their bound is the slower partition.
 *  - Dynamic attention in temporal-difference mode executes the two
 *    sub-operations of Section IV-A (twice the nominal MACs, each on
 *    narrow differences); in spatial mode the row-recurrence needs a
 *    single pass.
 *  - Attention score matrices are tiled through SRAM (QK output,
 *    softmax, PV probability input never touch DRAM within a step);
 *    temporal-difference processing however must persist them across
 *    steps, paying a write now plus a read next step — the dominant
 *    memory overhead of naive temporal attention processing.
 *  - Weight residency: when a model's total weights fit in 70% of
 *    SRAM, weight DRAM traffic is charged only at the first step.
 *  - Per-layer time is max(compute, DRAM service) — double-buffered
 *    pipelining — and layers execute sequentially (data dependences).
 */
#ifndef DITTO_HW_COST_MODEL_H
#define DITTO_HW_COST_MODEL_H

#include "core/bops.h"
#include "hw/config.h"
#include "hw/energy.h"
#include "model/graph.h"
#include "trace/provider.h"

namespace ditto {

/** Per-layer on-chip operand flags (attention score tiling). */
struct OnChipFlags
{
    bool input1 = false; //!< primary input stays in SRAM (PV's P)
    bool output = false; //!< output stays in SRAM (QK's scores)
};

/** Cost of one layer execution. */
struct LayerCost
{
    double computeCycles = 0.0; //!< MAC-array busy cycles
    double vectorCycles = 0.0;  //!< VPU busy cycles (vector layers)
    double memoryCycles = 0.0;  //!< DRAM service time in cycles
    double totalCycles = 0.0;   //!< max(compute+vector, memory)
    double stallCycles = 0.0;   //!< totalCycles - busy cycles
    double dramBytes = 0.0;
    EnergyBreakdown energy;
};

/** Derive the on-chip flags for every layer of a graph. */
std::vector<OnChipFlags> deriveOnChipFlags(const ModelGraph &graph);

/**
 * Cost of one compute layer.
 *
 * @param dep static dependency analysis of the layer.
 * @param onchip score-tiling flags of the layer.
 * @param stats trace statistics of the layer at this step.
 * @param mode execution mode (already legalised for the design).
 * @param charge_weight false when weights are SRAM-resident after the
 *        first step.
 */
LayerCost computeLayerCost(const HwConfig &cfg, const EnergyTable &et,
                           const Layer &layer, const LayerDependency &dep,
                           const OnChipFlags &onchip,
                           const LayerStepStats &stats, ExecMode mode,
                           bool charge_weight);

/** Cost of one vector / structural layer (mode-independent). */
LayerCost vectorLayerCost(const HwConfig &cfg, const EnergyTable &et,
                          const Layer &layer, const OnChipFlags &onchip);

/**
 * Algorithm-level memory accesses of naive temporal difference
 * processing (Fig. 8): on a generic substrate the difference tensor
 * spills and reloads, and both previous operands stream in.
 */
double naiveDiffBytes(const Layer &layer);

/** Algorithm-level memory accesses of original-activation processing. */
double actBytes(const Layer &layer);

/**
 * Legalise a requested mode for a design and layer: designs without
 * attention-difference support run dynamic attention with original
 * activations; designs without spatial support fall back likewise.
 */
ExecMode legaliseMode(const HwConfig &cfg, const Layer &layer,
                      ExecMode mode);

} // namespace ditto

#endif // DITTO_HW_COST_MODEL_H
