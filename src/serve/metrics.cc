/**
 * @file
 * Serving metrics implementation and the request-type name tables.
 */
#include "serve/metrics.h"

#include <cmath>
#include <sstream>

namespace ditto {

const char *
sloClassName(SloClass slo)
{
    switch (slo) {
      case SloClass::Interactive:
        return "interactive";
      case SloClass::Standard:
        return "standard";
      case SloClass::BestEffort:
        return "best_effort";
    }
    return "?";
}

const char *
requestStatusName(RequestStatus st)
{
    switch (st) {
      case RequestStatus::Queued:
        return "queued";
      case RequestStatus::Running:
        return "running";
      case RequestStatus::Parked:
        return "parked";
      case RequestStatus::Done:
        return "done";
      case RequestStatus::Cancelled:
        return "cancelled";
      case RequestStatus::TimedOut:
        return "timed_out";
      case RequestStatus::Rejected:
        return "rejected";
      case RequestStatus::Migrated:
        return "migrated";
    }
    return "?";
}

void
LatencyHistogram::record(double us)
{
    if (!(us >= 0.0)) // negative or NaN: clock misuse, clamp to zero
        us = 0.0;
    ++count_;
    sumUs_ += us;
    if (us > maxUs_)
        maxUs_ = us;
    int b = 0;
    for (uint64_t v = static_cast<uint64_t>(us);
         v > 1 && b < kBuckets - 1; v >>= 1)
        ++b;
    ++buckets_[static_cast<size_t>(b)];
}

double
LatencyHistogram::percentileUs(double q) const
{
    if (count_ == 0)
        return 0.0;
    const uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
        cum += buckets_[static_cast<size_t>(b)];
        if (cum >= rank) {
            const double upper = std::ldexp(1.0, b + 1); // 2^(b+1)
            return maxUs_ > 0.0 ? std::min(upper, maxUs_) : upper;
        }
    }
    return maxUs_;
}

uint64_t
ServeMetrics::total(uint64_t ClassMetrics::*counter) const
{
    uint64_t sum = 0;
    for (const ClassMetrics &c : perClass)
        sum += c.*counter;
    return sum;
}

namespace {

void
appendHistogram(std::ostringstream &os, const char *name,
                const LatencyHistogram &h)
{
    os << "\"" << name << "\":{\"count\":" << h.count()
       << ",\"mean_us\":" << h.meanUs()
       << ",\"p50_us\":" << h.percentileUs(0.50)
       << ",\"p95_us\":" << h.percentileUs(0.95)
       << ",\"p99_us\":" << h.percentileUs(0.99)
       << ",\"max_us\":" << h.maxUs() << "}";
}

} // namespace

std::string
ServeMetrics::toJson() const
{
    std::ostringstream os;
    os << "{\"steps\":" << steps << ",\"step_requests\":" << stepRequests
       << ",\"avg_occupancy\":" << avgOccupancy()
       << ",\"batches_formed\":" << batchesFormed
       << ",\"queue_depth\":" << queueDepth
       << ",\"queue_depth_peak\":" << queueDepthPeak
       << ",\"parked\":" << parked << ",\"parked_peak\":" << parkedPeak
       << ",\"shedding\":" << (shedding ? "true" : "false")
       << ",\"shed_entered\":" << shedEntered
       << ",\"shed_exited\":" << shedExited
       << ",\"migrated_out\":" << migratedOut
       << ",\"migrated_in\":" << migratedIn
       << ",\"reuse\":{\"hits\":" << reuseHits
       << ",\"misses\":" << reuseMisses << ",\"stores\":" << reuseStores
       << ",\"evictions\":" << reuseEvictions
       << ",\"steps_saved\":" << reuseStepsSaved
       << ",\"bytes\":" << reuseBytes << ",\"entries\":" << reuseEntries
       << ",\"generation\":" << reuseGeneration
       << ",\"hit_rate\":" << reuseHitRate() << "}"
       << ",\"classes\":{";
    for (int c = 0; c < kNumSloClasses; ++c) {
        const ClassMetrics &m = perClass[static_cast<size_t>(c)];
        if (c)
            os << ",";
        os << "\"" << sloClassName(static_cast<SloClass>(c)) << "\":{"
           << "\"submitted\":" << m.submitted
           << ",\"admitted\":" << m.admitted
           << ",\"completed\":" << m.completed
           << ",\"rejected_capacity\":" << m.rejectedCapacity
           << ",\"rejected_shed\":" << m.rejectedShed
           << ",\"rejected_fault\":" << m.rejectedFault
           << ",\"degraded\":" << m.degraded
           << ",\"cancelled\":" << m.cancelled
           << ",\"timed_out\":" << m.timedOut
           << ",\"preempted\":" << m.preempted
           << ",\"resumed\":" << m.resumed << ",";
        appendHistogram(os, "queue", m.queueUs);
        os << ",";
        appendHistogram(os, "service", m.serviceUs);
        os << ",";
        appendHistogram(os, "e2e", m.e2eUs);
        os << "}";
    }
    os << "}}";
    return os.str();
}

} // namespace ditto
