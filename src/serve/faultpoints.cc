/**
 * @file
 * Fault-point registry: spec parsing, deterministic schedules, the
 * injection fast path.
 *
 * Concurrency: the registry is guarded by one mutex. Injection sites
 * first check a relaxed atomic "anything armed?" flag so the unarmed
 * hot path never takes the lock; armed points count hits and draw
 * schedule decisions under it (the serving path is millisecond-scale,
 * a microsecond of lock traffic on an armed chaos run is noise).
 * Delays sleep *outside* the lock.
 */
#include "serve/faultpoints.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/logging.h"
#include "common/rng.h"

namespace ditto {
namespace faults {

namespace {

struct Rule
{
    bool fail = false;     //!< action: fail (else delay)
    int64_t delayUs = 0;   //!< action: delay argument
    uint64_t every = 0;    //!< schedule: fire on hits N, 2N, ... (0: off)
    double prob = -1.0;    //!< schedule: per-hit probability (<0: off)
};

struct PointState
{
    std::vector<Rule> rules;
    uint64_t hits = 0;
    Rng rng{0};
};

struct Registry
{
    std::mutex mu;
    PointState points[kNumPoints];
    bool configured = false; //!< configure() pinned; skip env arming
    std::atomic<bool> armed{false};
    std::atomic<bool> resolved{false}; //!< some arming source consulted
};

Registry &
registry()
{
    static Registry *r = new Registry();
    return *r;
}

const char *const kPointNames[kNumPoints] = {
    "submit",   "admission", "batch_form",  "step_begin",   "step_end",
    "park",     "resume",    "reuse_store", "reuse_install",
};

int
pointFromName(const std::string &name)
{
    for (int i = 0; i < kNumPoints; ++i)
        if (name == kPointNames[i])
            return i;
    return -1;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t end = s.find(sep, start);
        if (end == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

/** Parse one `point:action:schedule[:arg]` clause into (point, rule). */
void
parseClause(const std::string &clause, Registry &reg)
{
    const std::vector<std::string> f = split(clause, ':');
    if (f.size() < 3 || f.size() > 4)
        DITTO_FATAL("fault spec clause '"
                    << clause << "': want point:action:schedule[:arg]");
    const int p = pointFromName(f[0]);
    if (p < 0)
        DITTO_FATAL("fault spec clause '" << clause
                                          << "': unknown point '" << f[0]
                                          << "'");
    Rule rule;
    if (f[1] == "fail") {
        rule.fail = true;
        if (p != static_cast<int>(Point::Submit) &&
            p != static_cast<int>(Point::Admission) &&
            p != static_cast<int>(Point::ReuseStore) &&
            p != static_cast<int>(Point::ReuseInstall))
            DITTO_FATAL("fault spec clause '"
                        << clause << "': 'fail' is only meaningful at "
                        << "submit/admission/reuse_store/reuse_install");
        if (f.size() == 4)
            DITTO_FATAL("fault spec clause '" << clause
                                              << "': 'fail' takes no arg");
    } else if (f[1] == "delay") {
        if (f.size() != 4)
            DITTO_FATAL("fault spec clause '"
                        << clause
                        << "': 'delay' needs a microsecond arg");
        char *end = nullptr;
        rule.delayUs = std::strtoll(f[3].c_str(), &end, 10);
        if (end == f[3].c_str() || *end != '\0' || rule.delayUs < 0 ||
            rule.delayUs > 60'000'000)
            DITTO_FATAL("fault spec clause '"
                        << clause << "': bad delay '" << f[3] << "'");
    } else {
        DITTO_FATAL("fault spec clause '" << clause
                                          << "': unknown action '" << f[1]
                                          << "'");
    }
    if (f[2].rfind("every=", 0) == 0) {
        char *end = nullptr;
        const long long n =
            std::strtoll(f[2].c_str() + 6, &end, 10);
        if (*end != '\0' || n < 1)
            DITTO_FATAL("fault spec clause '" << clause
                                              << "': bad schedule '"
                                              << f[2] << "'");
        rule.every = static_cast<uint64_t>(n);
    } else if (f[2].rfind("prob=", 0) == 0) {
        char *end = nullptr;
        rule.prob = std::strtod(f[2].c_str() + 5, &end);
        if (*end != '\0' || rule.prob < 0.0 || rule.prob > 1.0)
            DITTO_FATAL("fault spec clause '" << clause
                                              << "': bad schedule '"
                                              << f[2] << "'");
    } else {
        DITTO_FATAL("fault spec clause '" << clause
                                          << "': bad schedule '" << f[2]
                                          << "' (want every=N or prob=P)");
    }
    reg.points[p].rules.push_back(rule);
}

/** Arm `reg` from a spec under its lock. */
void
armLocked(Registry &reg, const std::string &spec, uint64_t seed)
{
    bool any = false;
    for (int i = 0; i < kNumPoints; ++i) {
        reg.points[i].rules.clear();
        reg.points[i].hits = 0;
        reg.points[i].rng =
            Rng::fromKeys(seed, static_cast<uint64_t>(i));
    }
    if (!spec.empty()) {
        for (const std::string &clause : split(spec, ';'))
            if (!clause.empty())
                parseClause(clause, reg);
        for (int i = 0; i < kNumPoints; ++i)
            any = any || !reg.points[i].rules.empty();
    }
    reg.armed.store(any, std::memory_order_release);
}

/** One-time env arming, unless configure() already pinned the registry. */
void
armFromEnvLocked(Registry &reg)
{
    if (reg.configured)
        return;
    reg.configured = true;
    const std::string spec = env::readString("DITTO_FAULT_POINTS", "");
    const uint64_t seed = static_cast<uint64_t>(
        env::readInt64("DITTO_FAULT_SEED", 0, 0, INT64_MAX));
    armLocked(reg, spec, seed);
}

} // namespace

const char *
pointName(Point p)
{
    return kPointNames[static_cast<int>(p)];
}

void
configure(const std::string &spec, uint64_t seed)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.configured = true;
    armLocked(reg, spec, seed);
    reg.resolved.store(true, std::memory_order_release);
}

void
reset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.configured = false;
    armLocked(reg, "", 0);
    reg.resolved.store(false, std::memory_order_release);
}

bool
inject(Point p)
{
    Registry &reg = registry();
    // Fast path: once an arming source (env or configure) has been
    // consulted and nothing is armed, a hit is two relaxed loads.
    if (reg.resolved.load(std::memory_order_acquire) &&
        !reg.armed.load(std::memory_order_acquire))
        return false;
    int64_t delay_us = 0;
    bool fail = false;
    {
        std::lock_guard<std::mutex> lock(reg.mu);
        armFromEnvLocked(reg);
        reg.resolved.store(true, std::memory_order_release);
        if (!reg.armed.load(std::memory_order_acquire))
            return false;
        PointState &ps = reg.points[static_cast<int>(p)];
        ++ps.hits;
        for (const Rule &rule : ps.rules) {
            const bool fires =
                rule.every ? (ps.hits % rule.every == 0)
                           : (rule.prob >= 0.0 &&
                              ps.rng.uniform() < rule.prob);
            if (!fires)
                continue;
            if (rule.fail)
                fail = true;
            else if (rule.delayUs > delay_us)
                delay_us = rule.delayUs;
        }
    }
    if (delay_us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    return fail;
}

uint64_t
hitCount(Point p)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    return reg.points[static_cast<int>(p)].hits;
}

} // namespace faults
} // namespace ditto
