/**
 * @file
 * Inter-request reuse cache: resident DittoState handed across
 * near-duplicate requests.
 *
 * Production diffusion traffic is heavily redundant — many requests
 * share (seed, conditioning, mode) and therefore share a bitwise-
 * identical timestep prefix. During rollout the server checkpoints a
 * slot's portable state (partial image + extracted BatchDittoState
 * slab + step counter) into this cache every
 * `ReuseCacheConfig::checkpointEvery` steps; when a matching request
 * is admitted later, the deepest cached prefix with steps < the
 * request's own step count is installed into its slot and the request
 * starts at step k instead of 0.
 *
 * Correctness (docs/reuse_cache.md):
 *  - Exact modes: difference execution equals direct execution bit
 *    for bit, and a checkpoint after k steps is independent of the
 *    total step count, so a warm start is bitwise identical to the
 *    cold rollout — at every preset, batch shape and thread count
 *    (tests/test_reuse.cc).
 *  - ApproxDitto: the checkpoint carries the skip counters and cached
 *    codes/outputs, so the warm trajectory replays the cold
 *    ApproxDitto trajectory exactly (fidelity accounting unchanged).
 *
 * Lifecycle:
 *  - Entries are immutable once stored and shared as
 *    `shared_ptr<const ReuseEntry>`; installSlab copies the bytes
 *    into the slot (copy-on-install), so concurrent hits on one entry
 *    are safe and an eviction only drops the cache's reference —
 *    in-flight installs keep the entry alive through
 *    SlabState::backRef, and slot-recycle paths drop that reference
 *    (BatchDittoState::resetSlab/removeSlab).
 *  - Eviction is LRU under a byte budget (DITTO_REUSE_CAP_BYTES);
 *    0 disables the cache entirely.
 *  - Invalidation on spec or calibration change is by construction:
 *    the key's model digest (src/serve/prefix_key.h) never matches
 *    across either, and clear() drops everything explicitly.
 *
 * Thread-safety: every method is safe to call concurrently; one
 * mutex guards the map/LRU, entries themselves are immutable.
 */
#ifndef DITTO_SERVE_REUSE_CACHE_H
#define DITTO_SERVE_REUSE_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "runtime/compiled.h"
#include "serve/prefix_key.h"

namespace ditto {

/** Reuse-cache tuning; every field has an environment override. */
struct ReuseCacheConfig
{
    /**
     * Byte budget for resident entries (DITTO_REUSE_CAP_BYTES).
     * 0 — the default — disables inter-request reuse entirely: no
     * checkpoints are taken and no lookups run.
     */
    int64_t capBytes = 0;

    /**
     * Checkpoint cadence in steps (DITTO_REUSE_CHECKPOINT_EVERY): a
     * running slot's state is stored after steps N, 2N, ... Smaller
     * is more reusable prefix depth per hit, larger is less store
     * bandwidth and fewer resident bytes.
     */
    int checkpointEvery = 2;

    /** Defaults with the DITTO_REUSE_* environment overrides applied. */
    static ReuseCacheConfig fromEnv();

    bool enabled() const { return capBytes > 0; }
};

/** Monotonic counters + resident gauges (a snapshot when copied). */
struct ReuseCacheStats
{
    uint64_t hits = 0;       //!< lookups that returned an entry
    uint64_t misses = 0;     //!< lookups that returned nothing
    uint64_t stores = 0;     //!< entries accepted (dedup refreshes excluded)
    uint64_t evictions = 0;  //!< entries dropped by the byte budget
    uint64_t stepsSaved = 0; //!< steps skipped by installed prefixes
    uint64_t bytes = 0;      //!< resident bytes (gauge)
    uint64_t entries = 0;    //!< resident entries (gauge)

    /**
     * Bumped by every clear(). Counters survive a clear, so without
     * this a metrics consumer cannot tell a deliberately cleared cache
     * (generation advanced, counters monotonic) from a cold one in a
     * restarted worker (generation back to 0, counters reset) — and a
     * multi-worker merge that re-adds a restarted worker's counters
     * would double-count. The shard router keys its cross-worker
     * roll-up on (generation, counters) epochs (src/shard/router.cc).
     */
    uint64_t generation = 0;

    double
    hitRate() const
    {
        const uint64_t lookups = hits + misses;
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** One immutable cached prefix. */
struct ReuseEntry
{
    PrefixKey key;
    FloatTensor image; //!< [1, C, H, W] state after key.steps steps
    CompiledModel::BatchDittoState::SlabState state;
    bool hasState = false; //!< false: QuantDirect (no resident state)
    int64_t bytes = 0;     //!< accounted footprint of this entry
};

/** LRU + byte-budget cache of rollout prefixes. */
class ReuseCache
{
  public:
    using EntryPtr = std::shared_ptr<const ReuseEntry>;

    explicit ReuseCache(ReuseCacheConfig cfg);

    const ReuseCacheConfig &config() const { return cfg_; }

    /**
     * Store a checkpoint. The tensors are adopted; `state.backRef` is
     * cleared so entries never chain to one another. A key already
     * resident is refreshed (LRU) instead of duplicated. Eviction
     * runs immediately: least-recently-used entries are dropped until
     * the budget holds (an entry alone above the budget is dropped
     * outright — and counted — rather than pinned forever).
     */
    void store(const PrefixKey &key, FloatTensor image,
               CompiledModel::BatchDittoState::SlabState state,
               bool has_state);

    /**
     * Deepest resident prefix of `base` with steps <= maxSteps, or
     * null. Pass the request's step count minus one so a warm slot
     * always has at least one step left to run. Counts a hit or miss
     * and refreshes the returned entry's LRU position.
     */
    EntryPtr lookup(const PrefixBase &base, int maxSteps);

    /** Account an actually-installed prefix of `steps` steps. */
    void recordInstalled(int steps);

    /** Drop every resident entry (counters survive; generation++). */
    void clear();

    ReuseCacheStats stats() const;

  private:
    using Lru = std::list<EntryPtr>; //!< most recently used at front

    /** Drop LRU-back entries until the byte budget holds. */
    void evictLocked();

    const ReuseCacheConfig cfg_;
    mutable std::mutex mu_;
    Lru lru_;
    /** base.hash() -> (steps -> LRU position). Full-equality checked. */
    std::unordered_map<uint64_t, std::map<int, Lru::iterator>> index_;
    ReuseCacheStats stats_;
};

} // namespace ditto

#endif // DITTO_SERVE_REUSE_CACHE_H
