/**
 * @file
 * BatchEngine implementation.
 */
#include "serve/batch_rollout.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/ops.h"
#include "tensor/slab.h"

namespace ditto {

namespace {

/** Remove slab `i` from a stacked NCHW tensor (empty when last). */
FloatTensor
removeImageSlab(const FloatTensor &x, int64_t i)
{
    const int64_t n = x.shape()[0];
    return n == 1 ? FloatTensor() : slab::removed(x, n, i);
}

/** Copy slab `i` out of a stacked NCHW tensor as a [1,C,H,W] map. */
FloatTensor
extractImageSlab(const FloatTensor &x, int64_t i)
{
    FloatTensor out(Shape{1, x.shape()[1], x.shape()[2], x.shape()[3]});
    const int64_t slab = out.numel();
    std::copy(x.data().begin() + i * slab,
              x.data().begin() + (i + 1) * slab, out.data().begin());
    return out;
}

} // namespace

BatchEngine::BatchEngine(const CompiledModel &model, int64_t max_batch)
    : model_(model), maxBatch_(max_batch)
{
    DITTO_ASSERT(max_batch >= 1, "batch engine needs capacity >= 1");
}

void
BatchEngine::admit(uint64_t id, const DenoiseRequest &req)
{
    admitBatch(std::span<const uint64_t>(&id, 1),
               std::span<const DenoiseRequest>(&req, 1));
}

void
BatchEngine::admitBatch(std::span<const uint64_t> ids,
                        std::span<const DenoiseRequest> reqs)
{
    const int64_t k = static_cast<int64_t>(ids.size());
    DITTO_ASSERT(k == static_cast<int64_t>(reqs.size()),
                 "admitBatch id/request count mismatch");
    if (k == 0)
        return;
    DITTO_ASSERT(active() + k <= maxBatch_,
                 "admitBatch exceeds engine capacity");
    for (const DenoiseRequest &req : reqs)
        DITTO_ASSERT(req.mode == RunMode::QuantDitto ||
                     req.mode == RunMode::QuantDirect ||
                     req.mode == RunMode::ApproxDitto,
                     "only quantized modes are served batched");
    const int64_t n0 = active();
    // One grow for the image stack and one per state tensor, then
    // fill the new slabs in place.
    const FloatTensor first = model_.requestNoise(reqs[0].seed);
    if (n0 > 0) {
        x_ = slab::appended(x_, n0, k);
    } else {
        x_ = FloatTensor(slab::withDim0(first.shape(), k));
    }
    const int64_t slab_elems = first.numel();
    state_.appendSlabs(k); // joins unprimed: first step runs direct
    for (int64_t j = 0; j < k; ++j) {
        const FloatTensor noise =
            j == 0 ? first : model_.requestNoise(reqs[j].seed);
        std::copy(noise.data().begin(), noise.data().end(),
                  x_.data().begin() + (n0 + j) * slab_elems);
        Slot slot;
        slot.id = ids[j];
        slot.stepsTotal =
            reqs[j].steps > 0 ? reqs[j].steps : model_.defaultSteps();
        slot.ditto = reqs[j].mode != RunMode::QuantDirect;
        slot.approx = reqs[j].mode == RunMode::ApproxDitto;
        state_.approx[static_cast<size_t>(n0 + j)] = slot.approx;
        slots_.push_back(slot);
    }
}

void
BatchEngine::step()
{
    DITTO_ASSERT(!empty(), "step on an empty batch engine");
    stepCounts_.assign(slots_.size(), OpCounts{});
    // The per-slab approx flags gate reuse, so running the batch in
    // ApproxDitto mode when any slot asked for it leaves the exact
    // slots' arithmetic untouched (their flags stay 0).
    bool any_approx = false;
    for (const Slot &s : slots_)
        any_approx = any_approx || s.approx;
    const FloatTensor eps = model_.forwardBatch(
        x_, any_approx ? RunMode::ApproxDitto : RunMode::QuantDitto,
        &state_, stepCounts_.data());
    x_ = add(x_, affine(eps, -0.15f, 0.0f));
    for (size_t i = 0; i < slots_.size(); ++i) {
        slots_[i].ops.merge(stepCounts_[i]);
        ++slots_[i].stepsDone;
        // QuantDirect slabs never prime: every step stays direct,
        // exactly like sequential QuantDirect execution.
        if (!slots_[i].ditto)
            state_.primed[i] = 0;
    }
}

std::vector<int64_t>
BatchEngine::finishedSlots() const
{
    std::vector<int64_t> done;
    for (int64_t i = active() - 1; i >= 0; --i) {
        const Slot &slot = slots_[static_cast<size_t>(i)];
        if (slot.stepsDone >= slot.stepsTotal)
            done.push_back(i);
    }
    return done;
}

BatchEngine::Finished
BatchEngine::extract(int64_t i) const
{
    const Slot &slot = slots_[static_cast<size_t>(i)];
    DITTO_ASSERT(slot.stepsDone >= slot.stepsTotal,
                 "extract on an unfinished slot");
    Finished f;
    f.id = slot.id;
    f.image = extractImageSlab(x_, i);
    f.ops = slot.ops;
    f.steps = slot.stepsDone;
    return f;
}

void
BatchEngine::replaceSlot(int64_t i, uint64_t id, const DenoiseRequest &req)
{
    DITTO_ASSERT(req.mode == RunMode::QuantDitto ||
                 req.mode == RunMode::QuantDirect ||
                 req.mode == RunMode::ApproxDitto,
                 "only quantized modes are served batched");
    Slot &slot = slots_[static_cast<size_t>(i)];
    DITTO_ASSERT(slot.stepsDone >= slot.stepsTotal,
                 "replacing an unfinished slot");
    slot.id = id;
    slot.stepsDone = 0;
    slot.stepsTotal = req.steps > 0 ? req.steps : model_.defaultSteps();
    slot.ditto = req.mode != RunMode::QuantDirect;
    slot.approx = req.mode == RunMode::ApproxDitto;
    slot.ops = OpCounts{};
    const FloatTensor noise = model_.requestNoise(req.seed);
    std::copy(noise.data().begin(), noise.data().end(),
              x_.data().begin() + i * noise.numel());
    // resetSlab also clears the approx flag and the consecutive-skip
    // counters left by the slot's previous occupant.
    state_.resetSlab(i);
    state_.approx[static_cast<size_t>(i)] = slot.approx;
}

void
BatchEngine::removeSlot(int64_t i)
{
    x_ = removeImageSlab(x_, i);
    state_.removeSlab(i);
    slots_.erase(slots_.begin() + i);
}

BatchEngine::Parked
BatchEngine::park(int64_t i)
{
    const Slot &slot = slots_[static_cast<size_t>(i)];
    Parked p;
    p.id = slot.id;
    p.image = extractImageSlab(x_, i);
    p.ops = slot.ops;
    p.stepsDone = slot.stepsDone;
    p.stepsTotal = slot.stepsTotal;
    p.ditto = slot.ditto;
    p.approx = slot.approx;
    if (slot.approx) {
        // Exact modes resume unprimed bit-for-bit; approx reuse does
        // not, so the slab's cached codes/outputs and skip counters
        // travel with the request.
        p.state = state_.extractSlab(i);
        p.hasState = true;
    }
    removeSlot(i);
    return p;
}

BatchEngine::Parked
BatchEngine::snapshot(int64_t i) const
{
    const Slot &slot = slots_[static_cast<size_t>(i)];
    Parked p;
    p.id = slot.id;
    p.image = extractImageSlab(x_, i);
    p.stepsDone = slot.stepsDone;
    p.stepsTotal = slot.stepsTotal;
    p.ditto = slot.ditto;
    p.approx = slot.approx;
    if (slot.ditto && slot.stepsDone > 0) {
        p.state = state_.extractSlab(i);
        p.hasState = true;
    }
    return p;
}

void
BatchEngine::admitParked(const Parked &p)
{
    DITTO_ASSERT(!full(), "admitParked on a full engine");
    const int64_t n0 = active();
    if (n0 > 0) {
        x_ = slab::appended(x_, n0, 1);
    } else {
        x_ = FloatTensor(slab::withDim0(p.image.shape(), 1));
    }
    std::copy(p.image.data().begin(), p.image.data().end(),
              x_.data().begin() + n0 * p.image.numel());
    state_.appendSlabs(1); // unprimed: the resumed step runs direct
    if (p.hasState)
        state_.installSlab(n0, p.state);
    else
        state_.approx[static_cast<size_t>(n0)] = p.approx;
    Slot slot;
    slot.id = p.id;
    slot.stepsDone = p.stepsDone;
    slot.stepsTotal = p.stepsTotal;
    slot.ditto = p.ditto;
    slot.approx = p.approx;
    slot.ops = p.ops;
    slots_.push_back(slot);
}

void
BatchEngine::replaceSlotParked(int64_t i, const Parked &p)
{
    Slot &slot = slots_[static_cast<size_t>(i)];
    DITTO_ASSERT(slot.stepsDone >= slot.stepsTotal,
                 "replacing an unfinished slot");
    slot.id = p.id;
    slot.stepsDone = p.stepsDone;
    slot.stepsTotal = p.stepsTotal;
    slot.ditto = p.ditto;
    slot.approx = p.approx;
    slot.ops = p.ops;
    std::copy(p.image.data().begin(), p.image.data().end(),
              x_.data().begin() + i * p.image.numel());
    state_.resetSlab(i); // stale state is never read while unprimed
    if (p.hasState)
        state_.installSlab(i, p.state);
    else
        state_.approx[static_cast<size_t>(i)] = p.approx;
}

std::vector<BatchEngine::Finished>
BatchEngine::retire()
{
    std::vector<Finished> done;
    for (int64_t i : finishedSlots()) {
        done.push_back(extract(i));
        removeSlot(i);
    }
    // finishedSlots is descending; hand back in slot order.
    std::reverse(done.begin(), done.end());
    return done;
}

} // namespace ditto
