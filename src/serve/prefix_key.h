/**
 * @file
 * Prefix identity for inter-request reuse.
 *
 * Two requests can share a rollout prefix exactly when the first k
 * steps of their trajectories are bitwise identical. For this runtime
 * that is a *decidable* property: a trajectory is a pure function of
 * (compiled model, initial noise, execution mode), the initial noise
 * is a pure function of the request seed (CompiledModel::requestNoise)
 * and the step update carries no timestep embedding — so the state
 * after k steps never depends on how many steps the request intends to
 * run in total. PrefixBase captures that identity:
 *
 *  - `model`: the spec content hash mixed with the calibration digest
 *    (equal pair => bitwise-identical execution), plus — for
 *    ApproxDitto only — the resolved skip policy, because skip
 *    decisions change which bits a prefix contains.
 *  - `seed`:  the request's noise seed.
 *  - `conditioning`: the caller's opaque conditioning digest
 *    (DenoiseRequest::conditioning).
 *  - `mode`:  the execution mode. QuantDitto and QuantDirect produce
 *    the same images, but their resident difference state differs
 *    (direct slabs never prime), so prefixes are not shared across
 *    modes — correctness over hit-rate.
 *
 * PrefixKey pins a PrefixBase at a concrete step depth; it is the
 * reuse-cache key (src/serve/reuse_cache.h). Hashes are 64-bit mixes;
 * lookups always confirm full equality, so a hash collision costs a
 * miss, never a wrong prefix.
 */
#ifndef DITTO_SERVE_PREFIX_KEY_H
#define DITTO_SERVE_PREFIX_KEY_H

#include <cstdint>

#include "core/run_mode.h"

namespace ditto {

class CompiledModel;

/** Step-count-independent identity of a rollout trajectory. */
struct PrefixBase
{
    uint64_t model = 0;        //!< spec hash + calibration (+ policy)
    uint64_t seed = 0;         //!< request noise seed
    uint64_t conditioning = 0; //!< caller's conditioning digest
    RunMode mode = RunMode::QuantDitto;

    bool operator==(const PrefixBase &o) const = default;

    /** Deterministic 64-bit mix of all four components. */
    uint64_t hash() const;
};

/** A PrefixBase at a concrete step depth — the reuse-cache key. */
struct PrefixKey
{
    PrefixBase base;
    int steps = 0; //!< completed steps the cached state represents

    bool operator==(const PrefixKey &o) const = default;

    uint64_t hash() const;
};

/**
 * Build the prefix identity of a request against a compiled model.
 * For RunMode::ApproxDitto the model digest additionally folds in the
 * resolved skip threshold and consecutive-skip cap (bit patterns), so
 * a policy change — setApproxPolicy or the environment knobs — can
 * never serve a prefix computed under a different schedule.
 */
PrefixBase makePrefixBase(const CompiledModel &model, uint64_t seed,
                          uint64_t conditioning, RunMode mode);

} // namespace ditto

#endif // DITTO_SERVE_PREFIX_KEY_H
