/**
 * @file
 * Serving observability: latency histograms, lifecycle counters and a
 * JSON export.
 *
 * DenoiseServer maintains one ServeMetrics under its lock and hands
 * out consistent snapshots (DenoiseServer::metrics). Histograms are
 * fixed-size log2 bucket arrays — recording is O(1), allocation-free
 * and cheap enough to sit inside the server's critical section;
 * percentiles are read from the bucket boundaries (upper bound of the
 * bucket that crosses the requested rank), which is exact enough for
 * SLO dashboards and the load_gen latency-under-load curves while
 * keeping the server path free of per-request latency vectors.
 *
 * The JSON export (ServeMetrics::toJson) is the machine-readable
 * surface: examples/load_gen prints it after a run, and the field set
 * is documented in docs/serving.md.
 */
#ifndef DITTO_SERVE_METRICS_H
#define DITTO_SERVE_METRICS_H

#include <array>
#include <cstdint>
#include <string>

#include "serve/request.h"

namespace ditto {

/**
 * Log2-bucketed latency histogram over microseconds. Bucket b counts
 * samples in [2^b, 2^(b+1)) us (bucket 0 also takes everything below
 * 1 us); the last bucket is open-ended. 48 buckets cover ~8.9 years.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 48;

    void record(double us);

    uint64_t count() const { return count_; }
    double sumUs() const { return sumUs_; }
    double maxUs() const { return maxUs_; }
    double meanUs() const
    {
        return count_ ? sumUs_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * Latency below which a fraction `q` (in (0, 1]) of samples fall:
     * the upper boundary of the bucket containing the q-th ranked
     * sample, clamped to the observed maximum. 0 when empty.
     */
    double percentileUs(double q) const;

  private:
    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    double sumUs_ = 0.0;
    double maxUs_ = 0.0;
};

/** Lifecycle counters and latency distributions of one SLO class. */
struct ClassMetrics
{
    uint64_t submitted = 0;        //!< submit() calls (any outcome)
    uint64_t admitted = 0;         //!< first admission into an engine
    uint64_t completed = 0;        //!< terminal Done
    uint64_t rejectedCapacity = 0; //!< queue full at submit
    uint64_t rejectedShed = 0;     //!< overload policy rejection
    uint64_t rejectedFault = 0;    //!< injected submit/admission fault
    uint64_t degraded = 0;         //!< overload policy downgraded work
    uint64_t cancelled = 0;        //!< terminal Cancelled
    uint64_t timedOut = 0;         //!< terminal TimedOut
    uint64_t preempted = 0;        //!< Running -> Parked transitions
    uint64_t resumed = 0;          //!< Parked -> Running transitions

    LatencyHistogram queueUs;   //!< submit -> first admission
    LatencyHistogram serviceUs; //!< first admission -> Done
    LatencyHistogram e2eUs;     //!< submit -> Done
};

/** Full serving metrics (a consistent snapshot when copied out). */
struct ServeMetrics
{
    std::array<ClassMetrics, kNumSloClasses> perClass;

    uint64_t steps = 0;          //!< forwardBatch calls across engines
    uint64_t stepRequests = 0;   //!< sum of batch occupancy over steps
    uint64_t batchesFormed = 0;  //!< idle -> running transitions
    uint64_t shedEntered = 0;    //!< load watcher engaged shedding
    uint64_t shedExited = 0;     //!< load watcher released shedding
    uint64_t queueDepth = 0;     //!< gauge at snapshot time
    uint64_t queueDepthPeak = 0; //!< high-water mark since start
    uint64_t parked = 0;         //!< gauge at snapshot time
    uint64_t parkedPeak = 0;     //!< high-water mark since start
    bool shedding = false;       //!< gauge at snapshot time

    /**
     * Cross-worker migration (src/shard/, docs/sharding.md):
     * requests this server exported to another worker
     * (exportForMigration) and requests it adopted from one
     * (importMigrated). A migrated-out ticket terminates here as
     * RequestStatus::Migrated; the adopted copy runs to its own
     * terminal state under a fresh ticket.
     */
    uint64_t migratedOut = 0;
    uint64_t migratedIn = 0;

    /**
     * Inter-request reuse-cache counters (src/serve/reuse_cache.h),
     * copied from the server's cache at snapshot time. All zero when
     * the cache is disabled (DITTO_REUSE_CAP_BYTES=0); the "reuse"
     * JSON object is emitted either way so dashboards need no
     * presence check.
     */
    uint64_t reuseHits = 0;       //!< lookups served from the cache
    uint64_t reuseMisses = 0;     //!< lookups with no usable prefix
    uint64_t reuseStores = 0;     //!< checkpoints accepted
    uint64_t reuseEvictions = 0;  //!< entries dropped by byte budget
    uint64_t reuseStepsSaved = 0; //!< steps skipped via warm starts
    uint64_t reuseBytes = 0;      //!< resident bytes (gauge)
    uint64_t reuseEntries = 0;    //!< resident entries (gauge)

    /**
     * ReuseCacheStats::generation: bumped by every ReuseCache::clear().
     * Lets a metrics merger (the shard router's cross-worker roll-up)
     * tell a *cleared* cache (generation advanced, counters continue)
     * from a *restarted* worker (generation and counters both reset) —
     * without it, re-aggregating after a restart double-counts.
     */
    uint64_t reuseGeneration = 0;

    /** Fraction of reuse lookups that hit (0 with no lookups). */
    double
    reuseHitRate() const
    {
        const uint64_t lookups = reuseHits + reuseMisses;
        return lookups ? static_cast<double>(reuseHits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }

    /** Sum of a counter over classes (e.g. &ClassMetrics::preempted). */
    uint64_t total(uint64_t ClassMetrics::*counter) const;

    /** Mean requests per executed step. */
    double
    avgOccupancy() const
    {
        return steps ? static_cast<double>(stepRequests) /
                           static_cast<double>(steps)
                     : 0.0;
    }

    /**
     * The whole snapshot as a single JSON object (single line): the
     * global counters/gauges plus one object per class with counters
     * and p50/p95/p99 of the queue, service and end-to-end histograms.
     * Field names are documented in docs/serving.md.
     */
    std::string toJson() const;
};

} // namespace ditto

#endif // DITTO_SERVE_METRICS_H
