/**
 * @file
 * Prefix-identity hashing (see prefix_key.h for the derivation).
 */
#include "serve/prefix_key.h"

#include <cstring>

#include "runtime/compiled.h"
#include "trace/calibrate.h"

namespace ditto {

uint64_t
PrefixBase::hash() const
{
    uint64_t h = hashMix(0x9EF1'C0DE, model);
    h = hashMix(h, seed);
    h = hashMix(h, conditioning);
    h = hashMix(h, static_cast<uint64_t>(static_cast<int>(mode)));
    return h;
}

uint64_t
PrefixKey::hash() const
{
    return hashMix(base.hash(), static_cast<uint64_t>(steps));
}

PrefixBase
makePrefixBase(const CompiledModel &model, uint64_t seed,
               uint64_t conditioning, RunMode mode)
{
    uint64_t digest =
        hashMix(model.spec().hash(), model.calibrationDigest());
    if (mode == RunMode::ApproxDitto) {
        // Skip decisions are part of the trajectory's bits under
        // ApproxDitto; fold the resolved policy in so two policies
        // never share entries. Exact modes stay policy-independent.
        const double thresh = model.approxSkipThresh();
        uint64_t bits;
        std::memcpy(&bits, &thresh, sizeof(bits));
        digest = hashMix(digest, bits);
        digest = hashMix(
            digest, static_cast<uint64_t>(model.approxMaxConsec()));
    }
    PrefixBase base;
    base.model = digest;
    base.seed = seed;
    base.conditioning = conditioning;
    base.mode = mode;
    return base;
}

} // namespace ditto
