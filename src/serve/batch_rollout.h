/**
 * @file
 * BatchEngine: the execution core of the denoising server.
 *
 * One engine owns one in-flight batch: the stacked image tensor, the
 * stacked Ditto state (CompiledModel::BatchDittoState) and one slot
 * record per request. The engine serves any CompiledModel — the
 * MiniUnet preset, the deep UNet, the DiT block or a custom spec. Requests join between steps (continuous batching), run
 * however many steps they individually asked for, and retire as they
 * finish — so slabs at different timesteps share every forwardBatch
 * call. Each slab's arithmetic is exactly the single-request
 * rollout's, which keeps results bitwise independent of batch
 * composition; tests/test_serve.cc asserts this under mixed step
 * counts, modes and thread counts.
 */
#ifndef DITTO_SERVE_BATCH_ROLLOUT_H
#define DITTO_SERVE_BATCH_ROLLOUT_H

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/compiled.h"
#include "serve/request.h"

namespace ditto {

/** A batch of concurrent denoising requests advancing in lock-step. */
class BatchEngine
{
  public:
    /** A request that finished all its steps, ready to hand back. */
    struct Finished
    {
        uint64_t id = 0;
        FloatTensor image;
        OpCounts ops;
        int steps = 0;
    };

    BatchEngine(const CompiledModel &model, int64_t max_batch);

    int64_t capacity() const { return maxBatch_; }
    int64_t active() const
    {
        return static_cast<int64_t>(slots_.size());
    }
    bool empty() const { return slots_.empty(); }
    bool full() const { return active() >= maxBatch_; }

    /**
     * Join a request to the batch as a fresh (unprimed) slab seeded
     * with requestNoise(req.seed). Only the quantized modes
     * (QuantDirect, QuantDitto, ApproxDitto) are served batched.
     * Must not be called on a full engine.
     */
    void admit(uint64_t id, const DenoiseRequest &req);

    /**
     * Join a burst of requests with a single reallocation of the
     * image stack and every stacked state tensor (admit() pays a full
     * grow-copy per request). ids and reqs run in parallel; the burst
     * must fit the remaining capacity.
     */
    void admitBatch(std::span<const uint64_t> ids,
                    std::span<const DenoiseRequest> reqs);

    /** Advance every active request by one denoising step. */
    void step();

    /**
     * Slots whose request has completed all its steps, in descending
     * slot order (safe to extract/remove/replace while iterating).
     */
    std::vector<int64_t> finishedSlots() const;

    /** Copy slot `i`'s result out (the slot stays in the batch). */
    Finished extract(int64_t i) const;

    /**
     * Hand slot `i` to a new request in place — the continuous-
     * batching fast path: writes the new noise into the slab and
     * clears its primed flag instead of copying the stacked state
     * twice for a remove + admit.
     */
    void replaceSlot(int64_t i, uint64_t id, const DenoiseRequest &req);

    /** Remove slot `i` wholesale (no replacement queued). */
    void removeSlot(int64_t i);

    /**
     * A preempted request's portable partial state. Because QuantDitto
     * difference execution is bitwise identical to direct execution,
     * the partial image plus the step counters are *all* the state a
     * rollout needs to move between engines: the resumed slab joins
     * unprimed, its next step runs direct, and every later step
     * re-primes — bit-for-bit the uninterrupted trajectory
     * (tests/test_serve.cc PreemptResume suite). Note the OpCounts do
     * change: a resumed step that would have run as a sparse diff runs
     * direct instead, so lane tallies reflect the actual execution.
     */
    struct Parked
    {
        uint64_t id = 0;
        FloatTensor image; //!< [1, C, H, W] partial denoising state
        OpCounts ops;
        int stepsDone = 0;
        int stepsTotal = 0;
        bool ditto = true;
        /**
         * ApproxDitto requests additionally carry their full reuse
         * state (cached codes, cached outputs, consecutive-skip
         * counters). Unlike the exact modes, an approx slab cannot
         * simply resume unprimed: the skip decisions depend on the
         * cached previous step, so dropping the state would change
         * which blocks skip — and therefore the bits. park() captures
         * it, admitParked()/replaceSlotParked() reinstall it, and the
         * resumed trajectory is bitwise the uninterrupted one
         * (tests/test_serve.cc ApproxServe suite).
         */
        bool approx = false;
        bool hasState = false;
        CompiledModel::BatchDittoState::SlabState state;
    };

    /**
     * Evict slot `i` between steps (any progress, finished or not)
     * and return its portable state. The server parks preempted
     * requests and re-admits them later — on this engine or any other
     * engine over the same model.
     */
    Parked park(int64_t i);

    /**
     * Copy slot `i`'s portable state out *without* evicting it — the
     * reuse-cache checkpoint path (src/serve/reuse_cache.h). Unlike
     * park(), the slot keeps running, `ops` is left zeroed (the work
     * already done belongs to the executing request, not to whoever
     * installs the copy), and the Ditto slab state travels for *all*
     * stateful modes — a warm QuantDitto start installs a primed slab
     * and continues difference execution immediately, which is the
     * whole speedup — while QuantDirect (stateless by construction)
     * carries the image only. The copy owns its buffers and carries no
     * backRef.
     */
    Parked snapshot(int64_t i) const;

    /** Re-join a parked request as a fresh-appended (unprimed) slab. */
    void admitParked(const Parked &p);

    /**
     * Re-join a parked request into finished slot `i` in place (the
     * continuous-batching fast path, like replaceSlot).
     */
    void replaceSlotParked(int64_t i, const Parked &p);

    /** Ticket occupying slot `i`. */
    uint64_t
    slotId(int64_t i) const
    {
        return slots_[static_cast<size_t>(i)].id;
    }

    /** Steps slot `i` has completed so far. */
    int
    slotStepsDone(int64_t i) const
    {
        return slots_[static_cast<size_t>(i)].stepsDone;
    }

    /** True when slot `i` has completed all its steps. */
    bool
    slotFinished(int64_t i) const
    {
        const Slot &s = slots_[static_cast<size_t>(i)];
        return s.stepsDone >= s.stepsTotal;
    }

    /**
     * Convenience for non-server callers: extract and remove every
     * finished request. Remaining requests keep running.
     */
    std::vector<Finished> retire();

  private:
    struct Slot
    {
        uint64_t id = 0;
        int stepsDone = 0;
        int stepsTotal = 0;
        bool ditto = true;  //!< false: QuantDirect (never primes)
        bool approx = false; //!< RunMode::ApproxDitto (block reuse on)
        OpCounts ops;
    };

    const CompiledModel &model_;
    const int64_t maxBatch_;
    FloatTensor x_; //!< stacked [active, inChannels, res, res]
    CompiledModel::BatchDittoState state_;
    std::vector<Slot> slots_;
    std::vector<OpCounts> stepCounts_; //!< per-step scratch
};

} // namespace ditto

#endif // DITTO_SERVE_BATCH_ROLLOUT_H
