/**
 * @file
 * Deterministic fault injection for the serving layer.
 *
 * Named fault points sit on the server's request path: submit, worker
 * admission, batch formation, the two step boundaries, park, resume
 * and the reuse-cache store/install sites. Each point can be armed with a delay (microseconds) and/or
 * a failure, firing on a deterministic counter schedule (`every=N`:
 * every Nth hit) or a seeded pseudo-random one (`prob=P`: probability
 * P per hit from a per-point SplitMix64 stream, reproducible for a
 * fixed seed). The hooks are compiled in unconditionally — an
 * unarmed point is one relaxed atomic load — and armed either
 * programmatically (tests: faults::configure) or from the environment
 * (DITTO_FAULT_POINTS / DITTO_FAULT_SEED, see docs/config.md), so the
 * same nasty interleavings are reachable in unit tests, load_gen runs
 * and sanitizer jobs.
 *
 * Spec grammar (semicolon-separated clauses):
 *
 *   point:action:schedule[:arg]
 *
 *   point    = submit | admission | batch_form | step_begin
 *            | step_end | park | resume | reuse_store
 *            | reuse_install
 *   action   = delay (arg = microseconds) | fail
 *   schedule = every=N (1-based: hits N, 2N, ...) | prob=P (0..1)
 *
 * Examples:
 *   step_end:delay:every=1:500      500us stall after every step
 *   submit:fail:every=3             every 3rd submit is rejected
 *   batch_form:delay:prob=0.5:2000  seeded coin-flip formation stall
 *   reuse_install:fail:prob=0.1     10% of warm starts forced cold
 *
 * `fail` is honored where a failure has defined semantics — submit
 * and admission, where the request's result becomes Rejected, and
 * the reuse-cache points, where the checkpoint store (reuse_store)
 * or the prefix install (reuse_install) is skipped and the request
 * proceeds cold with no correctness impact; at other points
 * configure() refuses it loudly.
 */
#ifndef DITTO_SERVE_FAULTPOINTS_H
#define DITTO_SERVE_FAULTPOINTS_H

#include <cstdint>
#include <string>

namespace ditto {
namespace faults {

/** The named injection sites, in request-path order. */
enum class Point : int
{
    Submit = 0, //!< DenoiseServer::submit, before admission control
    Admission,  //!< worker admitting a request into its engine
    BatchForm,  //!< after batch formation, before the first step
    StepBegin,  //!< before each engine.step()
    StepEnd,    //!< after each engine.step()
    Park,       //!< before parking a preempted slot
    Resume,     //!< before resuming a parked request
    ReuseStore, //!< before storing a reuse-cache checkpoint
    ReuseInstall, //!< before installing a cached prefix at admission
};

inline constexpr int kNumPoints = 9;

/** Stable spec-grammar name of a point ("submit", ...). */
const char *pointName(Point p);

/**
 * Arm the registry from a spec string (grammar above); "" disarms
 * everything. Counters restart. A malformed spec fails loudly
 * (DITTO_FATAL) — a typo must not silently disable a chaos schedule.
 * Calling configure() also pins the registry: the environment is no
 * longer consulted. Thread-safe.
 */
void configure(const std::string &spec, uint64_t seed = 0);

/** Disarm all points, clear counters, and re-enable env arming. */
void reset();

/**
 * Hit a fault point: applies the armed delay (if the schedule fires),
 * then reports whether an armed failure fires. On first use with no
 * prior configure(), arms itself from DITTO_FAULT_POINTS /
 * DITTO_FAULT_SEED. Unarmed points return false without blocking.
 */
bool inject(Point p);

/** Total hits of a point since the last configure()/reset(). */
uint64_t hitCount(Point p);

} // namespace faults
} // namespace ditto

#endif // DITTO_SERVE_FAULTPOINTS_H
