/**
 * @file
 * LRU + byte-budget cache of rollout prefixes (see reuse_cache.h).
 */
#include "serve/reuse_cache.h"

#include <utility>

#include "common/env.h"

namespace ditto {

namespace {

int64_t
entryBytes(const ReuseEntry &e)
{
    // Accounted footprint: tensor payloads plus a fixed per-entry
    // overhead for the key/containers, so byte budgets behave sanely
    // even for degenerate tiny states. The state's share is the same
    // number the shard codec accounts (SlabState::payloadBytes), so
    // budgets mean the same thing for resident and relocated slabs.
    int64_t b = 256;
    b += e.image.numel() * static_cast<int64_t>(sizeof(float));
    b += e.state.payloadBytes();
    return b;
}

} // namespace

ReuseCacheConfig
ReuseCacheConfig::fromEnv()
{
    ReuseCacheConfig cfg;
    cfg.capBytes = env::readInt64("DITTO_REUSE_CAP_BYTES", cfg.capBytes,
                                  0, INT64_MAX);
    cfg.checkpointEvery = static_cast<int>(
        env::readInt64("DITTO_REUSE_CHECKPOINT_EVERY",
                       cfg.checkpointEvery, 1, 1 << 20));
    return cfg;
}

ReuseCache::ReuseCache(ReuseCacheConfig cfg) : cfg_(cfg) {}

void
ReuseCache::store(const PrefixKey &key, FloatTensor image,
                  CompiledModel::BatchDittoState::SlabState state,
                  bool has_state)
{
    if (!cfg_.enabled() || key.steps <= 0)
        return;
    // Entries must never chain: the cached state is a root owner, not
    // a borrower of the entry it was itself warmed from.
    state.backRef.reset();

    auto entry = std::make_shared<ReuseEntry>();
    entry->key = key;
    entry->image = std::move(image);
    entry->state = std::move(state);
    entry->hasState = has_state;
    entry->bytes = entryBytes(*entry);

    std::lock_guard<std::mutex> lk(mu_);
    auto &depths = index_[key.base.hash()];
    auto it = depths.find(key.steps);
    if (it != depths.end() && (*it->second)->key == key) {
        // Same prefix already resident: refresh its LRU position
        // rather than storing a duplicate copy.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(std::move(entry));
    depths[key.steps] = lru_.begin();
    stats_.bytes += static_cast<uint64_t>(lru_.front()->bytes);
    stats_.entries++;
    stats_.stores++;
    evictLocked();
}

ReuseCache::EntryPtr
ReuseCache::lookup(const PrefixBase &base, int maxSteps)
{
    if (!cfg_.enabled())
        return nullptr;
    std::lock_guard<std::mutex> lk(mu_);
    auto bucket = index_.find(base.hash());
    if (bucket != index_.end() && maxSteps > 0) {
        auto &depths = bucket->second;
        auto it = depths.upper_bound(maxSteps);
        // Deepest resident prefix first; full equality confirmed so a
        // 64-bit hash collision costs a miss, never a wrong prefix.
        while (it != depths.begin()) {
            --it;
            const EntryPtr &e = *it->second;
            if (e->key.base == base) {
                lru_.splice(lru_.begin(), lru_, it->second);
                stats_.hits++;
                return e;
            }
        }
    }
    stats_.misses++;
    return nullptr;
}

void
ReuseCache::recordInstalled(int steps)
{
    if (steps <= 0)
        return;
    std::lock_guard<std::mutex> lk(mu_);
    stats_.stepsSaved += static_cast<uint64_t>(steps);
}

void
ReuseCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    lru_.clear();
    index_.clear();
    stats_.bytes = 0;
    stats_.entries = 0;
    ++stats_.generation;
}

ReuseCacheStats
ReuseCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

void
ReuseCache::evictLocked()
{
    while (stats_.bytes > static_cast<uint64_t>(cfg_.capBytes) &&
           !lru_.empty()) {
        const EntryPtr &victim = lru_.back();
        auto bucket = index_.find(victim->key.base.hash());
        if (bucket != index_.end()) {
            bucket->second.erase(victim->key.steps);
            if (bucket->second.empty())
                index_.erase(bucket);
        }
        stats_.bytes -= static_cast<uint64_t>(victim->bytes);
        stats_.entries--;
        stats_.evictions++;
        lru_.pop_back();
    }
}

} // namespace ditto
