/**
 * @file
 * DenoiseServer implementation.
 *
 * Threading model: submit()/poll()/wait() and the worker loops share
 * one mutex guarding the queue, the result map and the stats. The
 * engines themselves run outside the lock — their kernels dispatch
 * onto the global parallelFor pool, which serializes whole jobs across
 * concurrent callers, so multiple workers interleave at kernel-call
 * granularity without data races.
 */
#include "serve/server.h"

#include "common/env.h"
#include "common/logging.h"

namespace ditto {

ServerConfig
ServerConfig::fromEnv()
{
    ServerConfig cfg;
    cfg.maxBatch =
        env::readInt64("DITTO_SERVE_MAX_BATCH", cfg.maxBatch, 1, 4096);
    cfg.maxWaitMicros = env::readInt64("DITTO_SERVE_MAX_WAIT_US",
                                       cfg.maxWaitMicros, 0, 60'000'000);
    cfg.workers = static_cast<int>(
        env::readInt64("DITTO_SERVE_WORKERS", cfg.workers, 1, 256));
    return cfg;
}

DenoiseServer::DenoiseServer(const CompiledModel &model, ServerConfig cfg)
    : model_(model), cfg_(cfg)
{
    workers_.reserve(static_cast<size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

DenoiseServer::~DenoiseServer()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

uint64_t
DenoiseServer::submit(const DenoiseRequest &req)
{
    // Reject malformed requests at the API boundary, in the caller's
    // thread — a bad request must not take down a worker mid-batch.
    DITTO_ASSERT(req.mode == RunMode::QuantDitto ||
                 req.mode == RunMode::QuantDirect,
                 "only quantized modes are served batched");
    if (req.steps < 0)
        DITTO_FATAL("submit: negative step count " << req.steps);
    if (req.maxWaitMicros < -1)
        DITTO_FATAL("submit: malformed maxWaitMicros "
                    << req.maxWaitMicros << " (want -1, 0 or a window)");
    std::unique_lock<std::mutex> lock(mutex_);
    DITTO_ASSERT(!stopping_, "submit on a stopping server");
    Pending p;
    p.id = nextId_++;
    p.req = req;
    p.submitted = Clock::now();
    queue_.push_back(p);
    outstanding_.insert(p.id);
    ++stats_.submitted;
    lock.unlock();
    workAvailable_.notify_one();
    return p.id;
}

bool
DenoiseServer::poll(uint64_t id, DenoiseResult *out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = results_.find(id);
    if (it == results_.end()) {
        // A ticket that was never issued, or whose result was already
        // retrieved, can never become ready — fail loudly instead of
        // letting a poll loop spin forever.
        DITTO_ASSERT(outstanding_.count(id) > 0,
                     "poll on an unknown or already-consumed ticket");
        return false;
    }
    *out = std::move(it->second);
    results_.erase(it);
    outstanding_.erase(id);
    // Wake any waiter racing on the same ticket so it asserts loudly
    // instead of sleeping forever on a consumed id.
    lock.unlock();
    resultReady_.notify_all();
    return true;
}

DenoiseResult
DenoiseServer::wait(uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    DITTO_ASSERT(results_.count(id) > 0 || outstanding_.count(id) > 0,
                 "wait on an unknown or already-consumed ticket");
    // Also wake when the ticket stops being outstanding: a concurrent
    // poll()/wait() that consumed it must turn this wait into a loud
    // failure, not an endless sleep.
    resultReady_.wait(lock, [&] {
        return results_.count(id) > 0 || outstanding_.count(id) == 0;
    });
    DITTO_ASSERT(results_.count(id) > 0,
                 "ticket consumed by a concurrent caller");
    DenoiseResult out = std::move(results_[id]);
    results_.erase(id);
    outstanding_.erase(id);
    lock.unlock();
    resultReady_.notify_all();
    return out;
}

ServerStats
DenoiseServer::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

void
DenoiseServer::workerLoop()
{
    BatchEngine engine(model_, cfg_.maxBatch);
    for (;;) {
        // Queue pops, timing and stats happen under the lock; the
        // engine mutations they lead to (noise generation, stacked
        // state edits, the step itself) run outside it so submit/
        // poll/wait callers and other workers never wait on them.
        std::vector<Pending> to_admit;
        auto roomLeft = [&] {
            return engine.active() +
                       static_cast<int64_t>(to_admit.size()) <
                   cfg_.maxBatch;
        };
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (engine.empty()) {
                workAvailable_.wait(lock, [&] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty()) {
                    DITTO_ASSERT(stopping_, "spurious worker wake");
                    return;
                }
                // Deadline-aware batch formation: take the oldest
                // request, then hold the batch open for co-batchable
                // arrivals until it fills or the earliest taken
                // window expires.
                Clock::time_point deadline = Clock::time_point::max();
                auto takeFromQueue = [&] {
                    while (roomLeft() && !queue_.empty()) {
                        Pending p = std::move(queue_.front());
                        queue_.pop_front();
                        const int64_t wait_us = p.req.maxWaitMicros >= 0
                            ? p.req.maxWaitMicros
                            : cfg_.maxWaitMicros;
                        deadline = std::min(
                            deadline, p.submitted +
                                          std::chrono::microseconds(
                                              wait_us));
                        inFlight_[p.id] = {p.submitted, Clock::now()};
                        to_admit.push_back(std::move(p));
                    }
                };
                takeFromQueue();
                ++stats_.batchesFormed;
                while (roomLeft() && !stopping_ &&
                       Clock::now() < deadline) {
                    if (workAvailable_.wait_until(lock, deadline) ==
                        std::cv_status::timeout)
                        break;
                    takeFromQueue();
                }
            } else {
                // Continuous batching: grab whatever is queued, no
                // waiting — running requests must not stall.
                while (roomLeft() && !queue_.empty()) {
                    Pending p = std::move(queue_.front());
                    queue_.pop_front();
                    inFlight_[p.id] = {p.submitted, Clock::now()};
                    to_admit.push_back(std::move(p));
                }
            }
            stats_.stepRequests += static_cast<uint64_t>(
                engine.active() +
                static_cast<int64_t>(to_admit.size()));
            ++stats_.steps;
        }
        if (!to_admit.empty()) {
            std::vector<uint64_t> ids;
            std::vector<DenoiseRequest> reqs;
            ids.reserve(to_admit.size());
            reqs.reserve(to_admit.size());
            for (Pending &p : to_admit) {
                ids.push_back(p.id);
                reqs.push_back(p.req);
            }
            engine.admitBatch(ids, reqs);
        }

        engine.step();
        const std::vector<int64_t> finished = engine.finishedSlots();
        std::vector<BatchEngine::Finished> done;
        if (!finished.empty()) {
            // Pair finished slots with replacement requests popped
            // under the lock; the slot edits run outside it.
            std::vector<Pending> repl;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                while (repl.size() < finished.size() &&
                       !queue_.empty()) {
                    Pending p = std::move(queue_.front());
                    queue_.pop_front();
                    inFlight_[p.id] = {p.submitted, Clock::now()};
                    repl.push_back(std::move(p));
                }
            }
            size_t r = 0;
            for (int64_t i : finished) {
                done.push_back(engine.extract(i));
                // Continuous batching fast path: hand the finished
                // slab straight to the next queued request instead of
                // shrinking and regrowing the stacked state.
                if (r < repl.size()) {
                    engine.replaceSlot(i, repl[r].id, repl[r].req);
                    ++r;
                } else {
                    engine.removeSlot(i);
                }
            }
            const Clock::time_point now = Clock::now();
            std::unique_lock<std::mutex> lock(mutex_);
            for (BatchEngine::Finished &f : done) {
                const InFlight timing = inFlight_[f.id];
                inFlight_.erase(f.id);
                DenoiseResult r;
                r.id = f.id;
                r.image = std::move(f.image);
                r.dittoOps = f.ops;
                r.steps = f.steps;
                r.queueMicros =
                    std::chrono::duration<double, std::micro>(
                        timing.admitted - timing.submitted)
                        .count();
                r.serviceMicros =
                    std::chrono::duration<double, std::micro>(
                        now - timing.admitted)
                        .count();
                results_[f.id] = std::move(r);
                ++stats_.completed;
            }
            lock.unlock();
            resultReady_.notify_all();
        }
    }
}

} // namespace ditto
