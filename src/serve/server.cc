/**
 * @file
 * DenoiseServer implementation: the hardened request lifecycle.
 *
 * Threading model: submit()/poll()/wait()/cancel() and the worker
 * loops share one mutex guarding the class queues, the parked pool,
 * the ticket table, the result map and the metrics. The engines
 * themselves run outside the lock — their kernels dispatch onto the
 * global parallelFor pool, which serializes whole jobs across
 * concurrent callers, so multiple workers interleave at kernel-call
 * granularity without data races. Each engine is touched only by the
 * worker that owns it; the lock covers every decision *about* the
 * engine (admission, preemption, eviction), never the step itself.
 *
 * Time handling: every deadline and wait computation uses
 * std::chrono::steady_clock (never the wall clock — a settable clock
 * would turn an NTP step into a mass timeout), and all "base + budget"
 * arithmetic goes through deadlineAfter(), which saturates at
 * time_point::max() instead of overflowing and treats a 0-length
 * budget as an already-expired deadline (dispatch/time-out
 * immediately, never an infinite wait).
 */
#include "serve/server.h"

#include <algorithm>

#include "common/env.h"
#include "common/logging.h"
#include "serve/faultpoints.h"

namespace ditto {

namespace {

/** Microseconds between two steady-clock points, as a double. */
double
microsBetween(std::chrono::steady_clock::time_point a,
              std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::micro>(b - a).count();
}

/**
 * Shape a cached prefix as the park/resume transport so the engine
 * installs it through the one battle-tested join path (admitParked /
 * replaceSlotParked). The image and state bytes are copied out of the
 * immutable entry; `state.backRef` adopts the entry itself so it stays
 * alive while its copy is resident in a slab even if the cache evicts
 * it concurrently (the slot-recycle paths drop the reference). `ops`
 * stays zeroed: the warm start's whole point is that this request did
 * not execute those steps.
 */
BatchEngine::Parked
makeWarmParked(uint64_t id, const DenoiseRequest &req,
               const ReuseCache::EntryPtr &entry, int steps_total)
{
    BatchEngine::Parked p;
    p.id = id;
    p.image = entry->image;
    p.stepsDone = entry->key.steps;
    p.stepsTotal = steps_total;
    p.ditto = req.mode != RunMode::QuantDirect;
    p.approx = req.mode == RunMode::ApproxDitto;
    if (entry->hasState) {
        p.state = entry->state;
        p.state.backRef = entry;
        p.hasState = true;
    }
    return p;
}

} // namespace

ServerConfig
ServerConfig::fromEnv()
{
    ServerConfig cfg;
    cfg.maxBatch =
        env::readInt64("DITTO_SERVE_MAX_BATCH", cfg.maxBatch, 1, 4096);
    cfg.maxWaitMicros = env::readInt64("DITTO_SERVE_MAX_WAIT_US",
                                       cfg.maxWaitMicros, 0, 60'000'000);
    cfg.workers = static_cast<int>(
        env::readInt64("DITTO_SERVE_WORKERS", cfg.workers, 1, 256));
    cfg.queueCapacity = env::readInt64("DITTO_SERVE_QUEUE_CAP",
                                       cfg.queueCapacity, 1, 1'000'000);
    cfg.admitBlockMicros =
        env::readInt64("DITTO_SERVE_ADMIT_BLOCK_US", cfg.admitBlockMicros,
                       0, 60'000'000);
    cfg.shedHighWater = env::readInt64("DITTO_SERVE_SHED_HIGH",
                                       cfg.shedHighWater, 0, 1'000'000);
    cfg.shedLowWater = env::readInt64("DITTO_SERVE_SHED_LOW",
                                      cfg.shedLowWater, 0, 1'000'000);
    cfg.reuse = ReuseCacheConfig::fromEnv();
    return cfg;
}

DenoiseServer::DenoiseServer(const CompiledModel &model, ServerConfig cfg,
                             std::shared_ptr<ReuseCache> cache)
    : model_(model), cfg_(cfg), cache_(std::move(cache))
{
    DITTO_ASSERT(cfg_.effectiveShedLow() < cfg_.effectiveShedHigh(),
                 "shed low watermark must sit below the high watermark");
    if (!cache_ && cfg_.reuse.enabled())
        cache_ = std::make_shared<ReuseCache>(cfg_.reuse);
    workers_.reserve(static_cast<size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

DenoiseServer::~DenoiseServer()
{
    shutdown();
}

void
DenoiseServer::shutdown()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (shutdown_)
            return;
        stopping_ = true;
        // Cancel pending migrations: a held parked entry would
        // otherwise be work no worker may take, deadlocking the drain.
        // The exporter (if any) observes stopping_ and reports failure;
        // the request completes locally instead.
        for (auto &kv : tickets_)
            kv.second.migrateRequested = false;
    }
    workAvailable_.notify_all();
    spaceAvailable_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
}

DenoiseServer::Clock::time_point
DenoiseServer::deadlineAfter(Clock::time_point base, int64_t micros)
{
    if (micros < 0)
        return Clock::time_point::max();
    const auto room = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::time_point::max() - base);
    if (micros >= room.count())
        return Clock::time_point::max();
    return base + std::chrono::microseconds(micros);
}

int
DenoiseServer::effectiveSteps(const DenoiseRequest &req) const
{
    return req.steps > 0 ? req.steps : model_.defaultSteps();
}

int64_t
DenoiseServer::queueDepthLocked() const
{
    int64_t depth = 0;
    for (const std::deque<Pending> &q : queues_)
        depth += static_cast<int64_t>(q.size());
    return depth;
}

bool
DenoiseServer::parkedHeldLocked(const ParkedEntry &e) const
{
    // A parked entry whose ticket has a migration pending belongs to
    // the exporter: admission must not resume it, a worker must not
    // count it as runnable work (else idle workers would spin on it).
    return tickets_.at(e.state.id).migrateRequested;
}

bool
DenoiseServer::haveWorkLocked() const
{
    if (queueDepthLocked() > 0)
        return true;
    for (const ParkedEntry &p : parked_) {
        if (!parkedHeldLocked(p))
            return true;
    }
    return false;
}

void
DenoiseServer::updateShedLocked()
{
    const int64_t depth = queueDepthLocked();
    if (!shedding_ && depth >= cfg_.effectiveShedHigh()) {
        shedding_ = true;
        ++metrics_.shedEntered;
    } else if (shedding_ && depth <= cfg_.effectiveShedLow()) {
        shedding_ = false;
        ++metrics_.shedExited;
    }
}

DenoiseResult
DenoiseServer::makeResultLocked(uint64_t id) const
{
    const Ticket &t = tickets_.at(id);
    const Clock::time_point now = Clock::now();
    DenoiseResult r;
    r.id = id;
    r.slo = t.slo;
    r.degraded = t.degraded;
    r.preemptions = t.preemptions;
    r.reusedSteps = t.reusedSteps;
    if (t.state == RequestStatus::Queued) {
        r.queueMicros = microsBetween(t.submitted, now);
        r.serviceMicros = 0.0;
    } else {
        r.queueMicros = microsBetween(t.submitted, t.admitted);
        r.serviceMicros = microsBetween(t.admitted, now);
    }
    return r;
}

void
DenoiseServer::finalizeLocked(uint64_t id, RequestStatus status,
                              DenoiseResult &&result)
{
    Ticket &t = tickets_.at(id);
    DITTO_ASSERT(!isTerminal(t.state), "finalizing a terminal ticket");
    t.state = status;
    result.status = status;
    ClassMetrics &cm = metrics_.perClass[static_cast<size_t>(t.slo)];
    switch (status) {
      case RequestStatus::Done:
        ++cm.completed;
        ++stats_.completed;
        cm.serviceUs.record(result.serviceMicros);
        cm.e2eUs.record(result.queueMicros + result.serviceMicros);
        break;
      case RequestStatus::Cancelled:
        ++cm.cancelled;
        break;
      case RequestStatus::TimedOut:
        ++cm.timedOut;
        break;
      case RequestStatus::Rejected:
        // Cause-specific counters (capacity / shed / fault) are
        // incremented at the rejection site.
        break;
      case RequestStatus::Migrated:
        ++metrics_.migratedOut;
        break;
      default:
        DITTO_PANIC("finalize to non-terminal state");
    }
    reuseBase_.erase(id); // checkpoint identity dies with the request
    results_[id] = std::move(result);
}

void
DenoiseServer::finalizeEmptyLocked(uint64_t id, RequestStatus status)
{
    DenoiseResult r = makeResultLocked(id);
    finalizeLocked(id, status, std::move(r));
}

uint64_t
DenoiseServer::submit(const DenoiseRequest &req)
{
    // Reject malformed requests at the API boundary, in the caller's
    // thread — a bad request must not take down a worker mid-batch.
    if (req.mode != RunMode::QuantDitto &&
        req.mode != RunMode::QuantDirect &&
        req.mode != RunMode::ApproxDitto)
        DITTO_FATAL("submit: only quantized modes are served batched");
    if (req.steps < 0)
        DITTO_FATAL("submit: negative step count " << req.steps);
    if (req.maxWaitMicros < -1)
        DITTO_FATAL("submit: malformed maxWaitMicros "
                    << req.maxWaitMicros << " (want -1, 0 or a window)");
    if (req.deadlineMicros < -1)
        DITTO_FATAL("submit: malformed deadlineMicros "
                    << req.deadlineMicros << " (want -1, 0 or a budget)");
    if (static_cast<int>(req.slo) < 0 ||
        static_cast<int>(req.slo) >= kNumSloClasses)
        DITTO_FATAL("submit: unknown SLO class "
                    << static_cast<int>(req.slo));

    const bool fault_reject = faults::inject(faults::Point::Submit);

    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || shutdown_)
        DITTO_FATAL("submit after DenoiseServer::shutdown()");
    const Clock::time_point now = Clock::now();
    const uint64_t id = nextId_++;
    Ticket t;
    t.slo = req.slo;
    t.submitted = now;
    t.deadline = deadlineAfter(now, req.deadlineMicros);
    tickets_[id] = t;
    ClassMetrics &cm = metrics_.perClass[static_cast<size_t>(req.slo)];
    ++cm.submitted;

    if (fault_reject) {
        ++cm.rejectedFault;
        finalizeEmptyLocked(id, RequestStatus::Rejected);
        lock.unlock();
        resultReady_.notify_all();
        return id;
    }

    // Overload shedding, deterministic and class-ordered: reject the
    // lowest class outright, force-degrade the middle class, leave the
    // highest class untouched (docs/serving.md).
    updateShedLocked();
    DenoiseRequest effective = req;
    if (shedding_) {
        if (req.slo == SloClass::BestEffort) {
            ++cm.rejectedShed;
            finalizeEmptyLocked(id, RequestStatus::Rejected);
            lock.unlock();
            resultReady_.notify_all();
            return id;
        }
        if (req.slo == SloClass::Standard) {
            // Degrade quality, not step count: the request runs its
            // full trajectory in ApproxDitto, which sheds compute by
            // skipping temporally stable blocks (docs/approx_reuse.md)
            // instead of truncating the denoise.
            effective.mode = RunMode::ApproxDitto;
            tickets_[id].degraded = true;
            ++cm.degraded;
        }
    }

    // Admission control: bounded queue; block-then-reject or reject
    // immediately, per configuration.
    if (queueDepthLocked() >= cfg_.queueCapacity &&
        cfg_.admitBlockMicros > 0) {
        const Clock::time_point block_until =
            deadlineAfter(now, cfg_.admitBlockMicros);
        spaceAvailable_.wait_until(lock, block_until, [&] {
            return stopping_ ||
                   queueDepthLocked() < cfg_.queueCapacity;
        });
    }
    if (stopping_ || queueDepthLocked() >= cfg_.queueCapacity) {
        ++cm.rejectedCapacity;
        finalizeEmptyLocked(id, RequestStatus::Rejected);
        lock.unlock();
        resultReady_.notify_all();
        return id;
    }

    tickets_[id].req = effective; // for exportForMigration
    Pending p;
    p.id = id;
    p.req = effective;
    p.submitted = now;
    queues_[static_cast<size_t>(req.slo)].push_back(std::move(p));
    ++stats_.submitted;
    metrics_.queueDepthPeak =
        std::max(metrics_.queueDepthPeak,
                 static_cast<uint64_t>(queueDepthLocked()));
    lock.unlock();
    workAvailable_.notify_one();
    return id;
}

bool
DenoiseServer::cancel(uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = tickets_.find(id);
    if (it == tickets_.end() || isTerminal(it->second.state))
        return false;
    Ticket &t = it->second;
    switch (t.state) {
      case RequestStatus::Queued: {
        // Usually still in its class queue — remove and finalize
        // synchronously. A worker may have popped it already (it is
        // being admitted right now); then the flag is honored at the
        // admission recheck, before any step runs.
        std::deque<Pending> &q =
            queues_[static_cast<size_t>(t.slo)];
        for (auto qi = q.begin(); qi != q.end(); ++qi) {
            if (qi->id == id) {
                q.erase(qi);
                finalizeEmptyLocked(id, RequestStatus::Cancelled);
                lock.unlock();
                resultReady_.notify_all();
                spaceAvailable_.notify_all();
                return true;
            }
        }
        t.cancelRequested = true;
        return true;
      }
      case RequestStatus::Parked: {
        for (auto pi = parked_.begin(); pi != parked_.end(); ++pi) {
            if (pi->state.id == id) {
                DenoiseResult r = makeResultLocked(id);
                r.steps = pi->state.stepsDone;
                r.dittoOps = pi->state.ops;
                parked_.erase(pi);
                finalizeLocked(id, RequestStatus::Cancelled,
                               std::move(r));
                lock.unlock();
                resultReady_.notify_all();
                return true;
            }
        }
        t.cancelRequested = true; // being resumed right now
        return true;
      }
      case RequestStatus::Running:
        // Step-granular: the owning worker evicts the slot at the
        // next step boundary.
        t.cancelRequested = true;
        return true;
      default:
        return false;
    }
}

RequestStatus
DenoiseServer::queryState(uint64_t id) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = tickets_.find(id);
    if (it == tickets_.end())
        DITTO_FATAL("queryState on an unknown or consumed ticket " << id);
    return it->second.state;
}

bool
DenoiseServer::poll(uint64_t id, DenoiseResult *out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = results_.find(id);
    if (it == results_.end()) {
        // A ticket that was never issued, or whose result was already
        // retrieved, can never become ready — fail loudly instead of
        // letting a poll loop spin forever.
        if (tickets_.find(id) == tickets_.end())
            DITTO_FATAL("poll on an unknown or already-consumed ticket "
                        << id);
        return false;
    }
    *out = std::move(it->second);
    results_.erase(it);
    tickets_.erase(id);
    // Wake any waiter racing on the same ticket so it fails loudly
    // instead of sleeping forever on a consumed id.
    lock.unlock();
    resultReady_.notify_all();
    return true;
}

DenoiseResult
DenoiseServer::wait(uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (results_.find(id) == results_.end() &&
        tickets_.find(id) == tickets_.end())
        DITTO_FATAL("wait on an unknown or already-consumed ticket "
                    << id);
    // Also wake when the ticket disappears: a concurrent poll()/wait()
    // that consumed it must turn this wait into a loud failure, not an
    // endless sleep.
    resultReady_.wait(lock, [&] {
        return results_.find(id) != results_.end() ||
               tickets_.find(id) == tickets_.end();
    });
    auto it = results_.find(id);
    if (it == results_.end())
        DITTO_FATAL("ticket " << id << " consumed by a concurrent caller");
    DenoiseResult out = std::move(it->second);
    results_.erase(it);
    tickets_.erase(id);
    lock.unlock();
    resultReady_.notify_all();
    return out;
}

ServerStats
DenoiseServer::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

ServeMetrics
DenoiseServer::metrics() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    ServeMetrics snap = metrics_;
    snap.queueDepth = static_cast<uint64_t>(queueDepthLocked());
    snap.parked = static_cast<uint64_t>(parked_.size());
    snap.shedding = shedding_;
    if (cache_) {
        const ReuseCacheStats rs = cache_->stats();
        snap.reuseHits = rs.hits;
        snap.reuseMisses = rs.misses;
        snap.reuseStores = rs.stores;
        snap.reuseEvictions = rs.evictions;
        snap.reuseStepsSaved = rs.stepsSaved;
        snap.reuseBytes = rs.bytes;
        snap.reuseEntries = rs.entries;
        snap.reuseGeneration = rs.generation;
    }
    return snap;
}

std::string
DenoiseServer::metricsJson() const
{
    return metrics().toJson();
}

bool
DenoiseServer::exportForMigration(uint64_t id, MigratedRequest *out,
                                  int64_t waitMicros)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = tickets_.find(id);
    if (it == tickets_.end() || isTerminal(it->second.state) || stopping_)
        return false;
    const Clock::time_point now = Clock::now();

    // The portable identity: the effective request with its deadline
    // re-expressed as the remaining budget (absolute steady-clock
    // points do not cross processes).
    const auto portableReq = [&](const Ticket &t) {
        DenoiseRequest r = t.req;
        r.deadlineMicros =
            t.deadline == Clock::time_point::max()
                ? -1
                : std::max<int64_t>(
                      0, static_cast<int64_t>(microsBetween(now,
                                                            t.deadline)));
        return r;
    };

    // Queued and still in its class queue: export cold — the rollout
    // never started, and by the determinism contract the importer's
    // cold run is bitwise the same trajectory.
    if (it->second.state == RequestStatus::Queued) {
        std::deque<Pending> &q =
            queues_[static_cast<size_t>(it->second.slo)];
        for (auto qi = q.begin(); qi != q.end(); ++qi) {
            if (qi->id != id)
                continue;
            const Ticket &t = it->second;
            out->req = portableReq(t);
            out->state = BatchEngine::Parked{};
            out->state.id = id;
            out->state.stepsTotal = effectiveSteps(t.req);
            out->state.ditto = t.req.mode != RunMode::QuantDirect;
            out->state.approx = t.req.mode == RunMode::ApproxDitto;
            q.erase(qi);
            finalizeEmptyLocked(id, RequestStatus::Migrated);
            lock.unlock();
            resultReady_.notify_all();
            spaceAvailable_.notify_all();
            return true;
        }
        // Popped by a worker — it is being admitted right now; fall
        // through to the flag-and-wait path and take it at the next
        // step boundary.
    }

    // Running (or mid-admission): flag it; the owning worker parks it
    // at the next step boundary and the entry arrives in the parked
    // pool *held* (admission skips it). Already-parked requests
    // satisfy the predicate immediately.
    it->second.migrateRequested = true;
    const Clock::time_point give_up = deadlineAfter(now, waitMicros);
    const auto parkedIt = [&] {
        for (auto pi = parked_.begin(); pi != parked_.end(); ++pi) {
            if (pi->state.id == id)
                return pi;
        }
        return parked_.end();
    };
    resultReady_.wait_until(lock, give_up, [&] {
        if (stopping_)
            return true;
        auto ti = tickets_.find(id);
        if (ti == tickets_.end() || isTerminal(ti->second.state))
            return true;
        return ti->second.state == RequestStatus::Parked &&
               parkedIt() != parked_.end();
    });

    auto ti = tickets_.find(id);
    bool ok = false;
    if (!stopping_ && ti != tickets_.end() &&
        ti->second.state == RequestStatus::Parked) {
        auto pi = parkedIt();
        if (pi != parked_.end()) {
            Ticket &t = ti->second;
            out->req = portableReq(t);
            out->state = std::move(pi->state);
            parked_.erase(pi);
            DenoiseResult r = makeResultLocked(id);
            r.steps = out->state.stepsDone;
            r.dittoOps = out->state.ops;
            finalizeLocked(id, RequestStatus::Migrated, std::move(r));
            ok = true;
        }
    }
    if (!ok && ti != tickets_.end())
        ti->second.migrateRequested = false; // resume locally
    lock.unlock();
    resultReady_.notify_all();
    workAvailable_.notify_all(); // an un-held entry is runnable again
    return ok;
}

uint64_t
DenoiseServer::importMigrated(const MigratedRequest &m)
{
    if (m.req.mode != RunMode::QuantDitto &&
        m.req.mode != RunMode::QuantDirect &&
        m.req.mode != RunMode::ApproxDitto)
        DITTO_FATAL("importMigrated: only quantized modes are served");
    const bool has_progress = m.state.stepsDone > 0 || m.state.hasState;

    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || shutdown_)
        DITTO_FATAL("importMigrated after DenoiseServer::shutdown()");
    const Clock::time_point now = Clock::now();
    const uint64_t id = nextId_++;
    Ticket t;
    t.slo = m.req.slo;
    t.submitted = now;
    t.deadline = deadlineAfter(now, m.req.deadlineMicros);
    t.req = m.req;
    ClassMetrics &cm = metrics_.perClass[static_cast<size_t>(m.req.slo)];
    ++cm.submitted;
    ++stats_.submitted;
    ++metrics_.migratedIn;
    if (has_progress) {
        // Partial progress re-enters through the parked pool exactly
        // like a preempted local request; the next admission resumes
        // it through the one battle-tested join path (admitParked).
        t.state = RequestStatus::Parked;
        t.admitted = now; // its queue time was spent on the exporter
        tickets_[id] = t;
        ParkedEntry entry;
        entry.slo = m.req.slo;
        entry.parkedAt = now;
        entry.state = m.state;
        entry.state.id = id;
        entry.state.state.backRef = nullptr; // owns its bytes outright
        parked_.push_back(std::move(entry));
        metrics_.parkedPeak = std::max(
            metrics_.parkedPeak, static_cast<uint64_t>(parked_.size()));
    } else {
        // Never started: queue it normally (deliberately bypassing the
        // capacity bound — migration rebalances work that was already
        // admitted somewhere; the source's bound still applies).
        tickets_[id] = t;
        Pending p;
        p.id = id;
        p.req = m.req;
        p.submitted = now;
        queues_[static_cast<size_t>(m.req.slo)].push_back(std::move(p));
        metrics_.queueDepthPeak =
            std::max(metrics_.queueDepthPeak,
                     static_cast<uint64_t>(queueDepthLocked()));
    }
    lock.unlock();
    workAvailable_.notify_one();
    return id;
}

SloClass
DenoiseServer::bestWaitingClassLocked(bool *any) const
{
    int best = kNumSloClasses;
    for (int c = 0; c < kNumSloClasses; ++c) {
        if (!queues_[static_cast<size_t>(c)].empty()) {
            best = c;
            break;
        }
    }
    for (const ParkedEntry &p : parked_) {
        if (!parkedHeldLocked(p))
            best = std::min(best, static_cast<int>(p.slo));
    }
    *any = best < kNumSloClasses;
    return static_cast<SloClass>(best < kNumSloClasses ? best : 0);
}

bool
DenoiseServer::popCandidateLocked(Candidate *out)
{
    for (;;) {
        // Highest-priority source: strict class order; at equal class
        // a parked request (older, already admitted once) beats a
        // queued one.
        int queued_class = kNumSloClasses;
        for (int c = 0; c < kNumSloClasses; ++c) {
            if (!queues_[static_cast<size_t>(c)].empty()) {
                queued_class = c;
                break;
            }
        }
        size_t parked_at = parked_.size();
        int parked_class = kNumSloClasses;
        for (size_t i = 0; i < parked_.size(); ++i) {
            if (parkedHeldLocked(parked_[i]))
                continue; // reserved for an exporter, not for us
            const int c = static_cast<int>(parked_[i].slo);
            if (c < parked_class) {
                parked_class = c;
                parked_at = i;
            }
        }
        if (queued_class == kNumSloClasses &&
            parked_class == kNumSloClasses) {
            updateShedLocked();
            return false;
        }
        const Clock::time_point now = Clock::now();
        if (parked_class <= queued_class) {
            ParkedEntry entry = std::move(parked_[parked_at]);
            parked_.erase(parked_.begin() +
                          static_cast<int64_t>(parked_at));
            const Ticket &t = tickets_.at(entry.state.id);
            if (t.cancelRequested || now >= t.deadline) {
                DenoiseResult r = makeResultLocked(entry.state.id);
                r.steps = entry.state.stepsDone;
                r.dittoOps = entry.state.ops;
                finalizeLocked(entry.state.id,
                               t.cancelRequested
                                   ? RequestStatus::Cancelled
                                   : RequestStatus::TimedOut,
                               std::move(r));
                continue;
            }
            out->fromParked = true;
            out->parked = std::move(entry);
            return true;
        }
        std::deque<Pending> &q =
            queues_[static_cast<size_t>(queued_class)];
        Pending p = std::move(q.front());
        q.pop_front();
        updateShedLocked();
        const Ticket &t = tickets_.at(p.id);
        if (t.cancelRequested || now >= t.deadline) {
            finalizeEmptyLocked(p.id, t.cancelRequested
                                          ? RequestStatus::Cancelled
                                          : RequestStatus::TimedOut);
            continue;
        }
        out->fromParked = false;
        out->pending = std::move(p);
        return true;
    }
}

void
DenoiseServer::workerLoop()
{
    BatchEngine engine(model_, cfg_.maxBatch);
    // Queue pops, lifecycle decisions, timing and stats happen under
    // the lock; the engine mutations they lead to (noise generation,
    // stacked state edits, parking, the step itself) run outside it so
    // submit/poll/wait/cancel callers and other workers never wait on
    // them. Slot indices planned under the lock stay valid outside it
    // because only this worker mutates this engine.
    for (;;) {
        std::vector<Candidate> selected;
        std::vector<int64_t> parks; // descending slot indices
        bool formed = false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            const auto roomLeft = [&] {
                return cfg_.maxBatch -
                       (engine.active() +
                        static_cast<int64_t>(selected.size()) -
                        static_cast<int64_t>(parks.size()));
            };
            if (engine.empty()) {
                workAvailable_.wait(lock, [&] {
                    return stopping_ || haveWorkLocked();
                });
                if (!haveWorkLocked()) {
                    DITTO_ASSERT(stopping_, "spurious worker wake");
                    return;
                }
                // Deadline-aware batch formation: take the oldest
                // highest-class request, then hold the batch open for
                // co-batchable arrivals until it fills or the earliest
                // taken window expires. Parked work collapses the
                // window — a preempted request must not wait again.
                Clock::time_point window = Clock::time_point::max();
                const auto take = [&] {
                    Candidate c;
                    while (roomLeft() > 0 && popCandidateLocked(&c)) {
                        if (c.fromParked) {
                            window = Clock::now();
                        } else {
                            const int64_t wait_us =
                                c.pending.req.maxWaitMicros >= 0
                                    ? c.pending.req.maxWaitMicros
                                    : cfg_.maxWaitMicros;
                            window = std::min(
                                window,
                                deadlineAfter(c.pending.submitted,
                                              wait_us));
                        }
                        selected.push_back(std::move(c));
                    }
                };
                take();
                if (selected.empty()) {
                    // Everything eligible was pruned (cancelled or
                    // expired in the queue) — publish those
                    // finalizations before sleeping again.
                    lock.unlock();
                    resultReady_.notify_all();
                    spaceAvailable_.notify_all();
                    continue;
                }
                formed = true;
                ++stats_.batchesFormed;
                ++metrics_.batchesFormed;
                while (roomLeft() > 0 && !stopping_ &&
                       Clock::now() < window) {
                    if (workAvailable_.wait_until(lock, window) ==
                        std::cv_status::timeout)
                        break;
                    take();
                }
            } else {
                // Continuous batching: grab whatever is eligible, no
                // waiting — running requests must not stall.
                Candidate c;
                while (roomLeft() > 0 && popCandidateLocked(&c))
                    selected.push_back(std::move(c));
                // SLO-aware preemption: while a strictly higher class
                // waits and the batch is full, park the worst running
                // slot (lowest class; ties: least progress lost, then
                // highest index) between steps.
                bool any = false;
                SloClass want = bestWaitingClassLocked(&any);
                while (any && roomLeft() <= 0) {
                    int64_t victim = -1;
                    int victim_class = static_cast<int>(want);
                    int victim_steps = 0;
                    for (int64_t i = 0; i < engine.active(); ++i) {
                        if (std::find(parks.begin(), parks.end(), i) !=
                            parks.end())
                            continue;
                        const Ticket &t =
                            tickets_.at(engine.slotId(i));
                        const int c = static_cast<int>(t.slo);
                        const int steps = engine.slotStepsDone(i);
                        if (c > victim_class ||
                            (victim >= 0 && c == victim_class &&
                             (steps < victim_steps ||
                              (steps == victim_steps && i > victim)))) {
                            victim = i;
                            victim_class = c;
                            victim_steps = steps;
                        }
                    }
                    if (victim < 0)
                        break; // nothing lower-class than the waiter
                    parks.push_back(victim);
                    Candidate c2;
                    if (!popCandidateLocked(&c2)) {
                        parks.pop_back(); // waiter vanished (pruned)
                        break;
                    }
                    selected.push_back(std::move(c2));
                    want = bestWaitingClassLocked(&any);
                }
                std::sort(parks.rbegin(), parks.rend());
            }
        }
        spaceAvailable_.notify_all();
        resultReady_.notify_all(); // pruning may have finalized tickets

        // Preemptions: evict between steps, park the partial state.
        for (int64_t i : parks) {
            faults::inject(faults::Point::Park);
            BatchEngine::Parked p = engine.park(i);
            {
                std::unique_lock<std::mutex> lock(mutex_);
                Ticket &t = tickets_.at(p.id);
                t.state = RequestStatus::Parked;
                ++t.preemptions;
                ++metrics_.perClass[static_cast<size_t>(t.slo)]
                      .preempted;
                ParkedEntry entry;
                entry.slo = t.slo;
                entry.parkedAt = Clock::now();
                entry.state = std::move(p);
                parked_.push_back(std::move(entry));
                metrics_.parkedPeak =
                    std::max(metrics_.parkedPeak,
                             static_cast<uint64_t>(parked_.size()));
            }
            workAvailable_.notify_one(); // another engine may resume it
        }

        // Admissions and resumes, with the admission fault point and a
        // final lifecycle recheck (cancel/timeout may have landed
        // while the candidate was in flight).
        std::vector<uint64_t> admit_ids;
        std::vector<DenoiseRequest> admit_reqs;
        for (Candidate &c : selected) {
            const uint64_t id =
                c.fromParked ? c.parked.state.id : c.pending.id;
            const bool fault_reject = faults::inject(
                c.fromParked ? faults::Point::Resume
                             : faults::Point::Admission);
            // Inter-request reuse: look up the deepest cached prefix
            // before the recheck (the lookup itself never blocks the
            // server lock). A reuse_install fault forces a cold start
            // — never an error; resumes keep their own state.
            ReuseCache::EntryPtr warm;
            PrefixBase base{};
            if (!c.fromParked && cache_) {
                const DenoiseRequest &req = c.pending.req;
                base = makePrefixBase(model_, req.seed,
                                      req.conditioning, req.mode);
                if (!faults::inject(faults::Point::ReuseInstall))
                    warm = cache_->lookup(base,
                                          effectiveSteps(req) - 1);
            }
            bool dropped = false;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                Ticket &t = tickets_.at(id);
                const Clock::time_point now = Clock::now();
                RequestStatus drop_as = RequestStatus::Queued;
                if (t.cancelRequested)
                    drop_as = RequestStatus::Cancelled;
                else if (now >= t.deadline)
                    drop_as = RequestStatus::TimedOut;
                else if (fault_reject)
                    drop_as = RequestStatus::Rejected;
                if (drop_as != RequestStatus::Queued) {
                    ClassMetrics &cm =
                        metrics_.perClass[static_cast<size_t>(t.slo)];
                    if (drop_as == RequestStatus::Rejected)
                        ++cm.rejectedFault;
                    DenoiseResult r = makeResultLocked(id);
                    if (c.fromParked) {
                        r.steps = c.parked.state.stepsDone;
                        r.dittoOps = c.parked.state.ops;
                    }
                    finalizeLocked(id, drop_as, std::move(r));
                    dropped = true;
                } else {
                    ClassMetrics &cm =
                        metrics_.perClass[static_cast<size_t>(t.slo)];
                    if (t.state == RequestStatus::Queued) {
                        t.admitted = now;
                        ++cm.admitted;
                        cm.queueUs.record(
                            microsBetween(t.submitted, now));
                    } else {
                        ++cm.resumed;
                    }
                    if (!c.fromParked && cache_) {
                        reuseBase_[id] = base;
                        t.reusedSteps = warm ? warm->key.steps : 0;
                    }
                    t.state = RequestStatus::Running;
                }
            }
            if (dropped) {
                resultReady_.notify_all();
                continue;
            }
            if (c.fromParked) {
                engine.admitParked(c.parked.state);
            } else if (warm) {
                engine.admitParked(
                    makeWarmParked(id, c.pending.req, warm,
                                   effectiveSteps(c.pending.req)));
                cache_->recordInstalled(warm->key.steps);
            } else {
                admit_ids.push_back(c.pending.id);
                admit_reqs.push_back(c.pending.req);
            }
        }
        if (!admit_ids.empty())
            engine.admitBatch(admit_ids, admit_reqs);

        if (engine.empty())
            continue; // every candidate dropped at the recheck

        if (formed)
            faults::inject(faults::Point::BatchForm);
        faults::inject(faults::Point::StepBegin);
        engine.step();
        faults::inject(faults::Point::StepEnd);

        // Post-step bookkeeping: retire finished slots, evict
        // cancelled and expired ones, prune the parked pool, and plan
        // replacements (the continuous-batching fast path hands a
        // finished slab straight to the next request).
        struct Removal
        {
            int64_t slot;
            uint64_t id;
            RequestStatus status;
        };
        std::vector<Removal> removals; // descending slot order
        std::vector<Candidate> repl;
        struct Checkpoint
        {
            int64_t slot;
            PrefixKey key;
        };
        std::vector<Checkpoint> checkpoints;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ++stats_.steps;
            ++metrics_.steps;
            stats_.stepRequests +=
                static_cast<uint64_t>(engine.active());
            metrics_.stepRequests +=
                static_cast<uint64_t>(engine.active());
            const Clock::time_point now = Clock::now();
            // Plan reuse checkpoints under the lock (key identity and
            // cancel flags live here); the state copies run outside
            // it, before any slot is removed or replaced, so the slot
            // indices stay valid. Finished slots checkpoint too — a
            // completed 8-step prefix warm-starts a later 12-step
            // request.
            if (cache_) {
                const int every = cache_->config().checkpointEvery;
                for (int64_t i = 0; i < engine.active(); ++i) {
                    const Ticket &t = tickets_.at(engine.slotId(i));
                    const int done = engine.slotStepsDone(i);
                    if (t.cancelRequested || done % every != 0 ||
                        done <= t.reusedSteps)
                        continue;
                    auto bi = reuseBase_.find(engine.slotId(i));
                    if (bi == reuseBase_.end())
                        continue;
                    checkpoints.push_back(
                        {i, PrefixKey{bi->second, done}});
                }
            }
            for (int64_t i = engine.active() - 1; i >= 0; --i) {
                const uint64_t id = engine.slotId(i);
                const Ticket &t = tickets_.at(id);
                if (engine.slotFinished(i))
                    removals.push_back({i, id, RequestStatus::Done});
                else if (t.cancelRequested)
                    removals.push_back(
                        {i, id, RequestStatus::Cancelled});
                else if (now >= t.deadline)
                    removals.push_back(
                        {i, id, RequestStatus::TimedOut});
                else if (t.migrateRequested)
                    // Park-out for migration: Parked is the plan's
                    // non-terminal sentinel — the slot is parked into
                    // the pool (held for the exporter), not finalized.
                    removals.push_back({i, id, RequestStatus::Parked});
            }
            // Expired or cancelled parked requests must not linger
            // until a pop considers them: prune once per step.
            for (size_t i = parked_.size(); i-- > 0;) {
                const Ticket &t = tickets_.at(parked_[i].state.id);
                if (!t.cancelRequested && now < t.deadline)
                    continue;
                DenoiseResult r = makeResultLocked(parked_[i].state.id);
                r.steps = parked_[i].state.stepsDone;
                r.dittoOps = parked_[i].state.ops;
                finalizeLocked(parked_[i].state.id,
                               t.cancelRequested
                                   ? RequestStatus::Cancelled
                                   : RequestStatus::TimedOut,
                               std::move(r));
                parked_.erase(parked_.begin() +
                              static_cast<int64_t>(i));
            }
            Candidate c;
            while (repl.size() < removals.size() &&
                   popCandidateLocked(&c))
                repl.push_back(std::move(c));
        }
        spaceAvailable_.notify_all();
        resultReady_.notify_all(); // parked-pool pruning may finalize

        // Store planned checkpoints while every planned slot index is
        // still valid (nothing has mutated the engine since the plan).
        // A reuse_store fault skips the store — checkpoints are pure
        // acceleration, losing one can only cost future hits.
        for (const Checkpoint &cp : checkpoints) {
            if (faults::inject(faults::Point::ReuseStore))
                continue;
            BatchEngine::Parked snap = engine.snapshot(cp.slot);
            cache_->store(cp.key, std::move(snap.image),
                          std::move(snap.state), snap.hasState);
        }

        size_t r_idx = 0;
        for (const Removal &rm : removals) {
            bool slot_gone = false;
            if (rm.status == RequestStatus::Parked) {
                // Park-out for migration: capture the portable state
                // into the parked pool, where the entry stays *held*
                // (admission skips it) until the exporter takes it —
                // or until the flag is cleared and it resumes here.
                faults::inject(faults::Point::Park);
                BatchEngine::Parked p = engine.park(rm.slot);
                slot_gone = true;
                {
                    std::unique_lock<std::mutex> lock(mutex_);
                    Ticket &t = tickets_.at(rm.id);
                    t.state = RequestStatus::Parked;
                    ParkedEntry entry;
                    entry.slo = t.slo;
                    entry.parkedAt = Clock::now();
                    entry.state = std::move(p);
                    parked_.push_back(std::move(entry));
                    metrics_.parkedPeak =
                        std::max(metrics_.parkedPeak,
                                 static_cast<uint64_t>(parked_.size()));
                }
                resultReady_.notify_all();   // the exporter waits here
                workAvailable_.notify_all(); // flag may have cleared
            } else if (rm.status == RequestStatus::Done) {
                BatchEngine::Finished f = engine.extract(rm.slot);
                std::unique_lock<std::mutex> lock(mutex_);
                DenoiseResult r = makeResultLocked(rm.id);
                r.image = std::move(f.image);
                r.dittoOps = f.ops;
                r.steps = f.steps;
                finalizeLocked(rm.id, RequestStatus::Done,
                               std::move(r));
            } else {
                const int steps_done = engine.slotStepsDone(rm.slot);
                std::unique_lock<std::mutex> lock(mutex_);
                DenoiseResult r = makeResultLocked(rm.id);
                r.steps = steps_done;
                finalizeLocked(rm.id, rm.status, std::move(r));
            }
            // Replacement fast path: hand the slab to the next
            // candidate instead of shrinking and regrowing the stacked
            // state — with the same fault point and recheck as any
            // other admission.
            bool replaced = false;
            if (r_idx < repl.size()) {
                Candidate &c = repl[r_idx++];
                const uint64_t cid =
                    c.fromParked ? c.parked.state.id : c.pending.id;
                const bool fault_reject = faults::inject(
                    c.fromParked ? faults::Point::Resume
                                 : faults::Point::Admission);
                // Same reuse lookup as the main admission site: the
                // replacement fast path must not cost warm starts.
                ReuseCache::EntryPtr warm;
                PrefixBase base{};
                if (!c.fromParked && cache_) {
                    const DenoiseRequest &req = c.pending.req;
                    base = makePrefixBase(model_, req.seed,
                                          req.conditioning, req.mode);
                    if (!faults::inject(faults::Point::ReuseInstall))
                        warm = cache_->lookup(
                            base, effectiveSteps(req) - 1);
                }
                bool dropped = false;
                {
                    std::unique_lock<std::mutex> lock(mutex_);
                    Ticket &t = tickets_.at(cid);
                    const Clock::time_point now = Clock::now();
                    RequestStatus drop_as = RequestStatus::Queued;
                    if (t.cancelRequested)
                        drop_as = RequestStatus::Cancelled;
                    else if (now >= t.deadline)
                        drop_as = RequestStatus::TimedOut;
                    else if (fault_reject)
                        drop_as = RequestStatus::Rejected;
                    if (drop_as != RequestStatus::Queued) {
                        ClassMetrics &cm = metrics_.perClass
                            [static_cast<size_t>(t.slo)];
                        if (drop_as == RequestStatus::Rejected)
                            ++cm.rejectedFault;
                        DenoiseResult r = makeResultLocked(cid);
                        if (c.fromParked) {
                            r.steps = c.parked.state.stepsDone;
                            r.dittoOps = c.parked.state.ops;
                        }
                        finalizeLocked(cid, drop_as, std::move(r));
                        dropped = true;
                    } else {
                        ClassMetrics &cm = metrics_.perClass
                            [static_cast<size_t>(t.slo)];
                        if (t.state == RequestStatus::Queued) {
                            t.admitted = now;
                            ++cm.admitted;
                            cm.queueUs.record(
                                microsBetween(t.submitted, now));
                        } else {
                            ++cm.resumed;
                        }
                        if (!c.fromParked && cache_) {
                            reuseBase_[cid] = base;
                            t.reusedSteps =
                                warm ? warm->key.steps : 0;
                        }
                        t.state = RequestStatus::Running;
                    }
                }
                if (!dropped) {
                    if (rm.status == RequestStatus::Done) {
                        if (c.fromParked)
                            engine.replaceSlotParked(rm.slot,
                                                     c.parked.state);
                        else if (warm)
                            engine.replaceSlotParked(
                                rm.slot,
                                makeWarmParked(
                                    cid, c.pending.req, warm,
                                    effectiveSteps(c.pending.req)));
                        else
                            engine.replaceSlot(rm.slot, c.pending.id,
                                               c.pending.req);
                    } else {
                        // Evicted slots are mid-rollout (and a
                        // migrate-park already removed its slot); the
                        // in-place overwrite is reserved for finished
                        // slabs.
                        if (!slot_gone)
                            engine.removeSlot(rm.slot);
                        slot_gone = true;
                        if (c.fromParked)
                            engine.admitParked(c.parked.state);
                        else if (warm)
                            engine.admitParked(makeWarmParked(
                                cid, c.pending.req, warm,
                                effectiveSteps(c.pending.req)));
                        else
                            engine.admit(c.pending.id, c.pending.req);
                    }
                    if (warm)
                        cache_->recordInstalled(warm->key.steps);
                    replaced = true;
                }
            }
            if (!replaced && !slot_gone)
                engine.removeSlot(rm.slot);
        }
        resultReady_.notify_all();
    }
}

} // namespace ditto
