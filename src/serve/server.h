/**
 * @file
 * Asynchronous batched denoising server with a hardened request
 * lifecycle.
 *
 * submit() enqueues a request and returns a ticket; poll()/wait()
 * retrieve the finished result. A fixed pool of worker threads each
 * drives one BatchEngine. On top of the continuous-batching execution
 * core (PR 3), the server implements the full production lifecycle:
 *
 *   Queued -> Running <-> Parked -> {Done, Cancelled, TimedOut}
 *   submit() -> Rejected
 *
 *  - Admission control / backpressure: the queue is bounded
 *    (queueCapacity). A submit against a full queue either rejects
 *    immediately (result status Rejected) or, with admitBlockMicros
 *    set, blocks the caller up to that budget waiting for space.
 *  - Priorities: three SLO classes with strict-priority admission
 *    (Interactive > Standard > BestEffort, FIFO within a class).
 *  - Deadlines: per-request end-to-end deadlines (steady-clock
 *    absolute once submitted) enforced in the queue, at admission,
 *    between steps and while parked.
 *  - Step-granular preemption: when a higher class waits and every
 *    slot is busy, the worst lower-class slot is parked between steps
 *    (its partial image + counters; see BatchEngine::Parked) and
 *    resumed later — results stay bitwise identical to uninterrupted
 *    rollouts because difference execution equals direct execution
 *    bit for bit.
 *  - Cancellation: cancel(ticket) works in every non-terminal state.
 *  - Overload shedding with hysteresis: past shedHighWater queued
 *    requests the load watcher rejects incoming BestEffort work and
 *    force-degrades Standard work to RunMode::ApproxDitto — the full
 *    step count runs, but temporally stable blocks are skipped
 *    (docs/approx_reuse.md); it releases only below shedLowWater.
 *    Interactive traffic is never touched.
 *  - Inter-request reuse: with a reuse cache enabled
 *    (DITTO_REUSE_CAP_BYTES), running requests checkpoint their
 *    partial state and near-duplicate requests — same (model, seed,
 *    conditioning, mode) — warm-start from the deepest cached prefix
 *    instead of step 0, bitwise identical to a cold rollout for the
 *    exact modes (docs/reuse_cache.md).
 *  - Observability: per-class latency histograms and lifecycle
 *    counters (serve/metrics.h), exported as JSON.
 *  - Fault injection: deterministic delay/failure hooks on the whole
 *    request path (serve/faultpoints.h) drive the lifecycle tests.
 *
 * Batch formation stays deadline-aware (max-wait windows) and batching
 * continuous; results are bitwise identical to sequential rollouts
 * regardless of batch composition, admission order, preemption
 * schedule, worker count or thread count (docs/serving.md).
 */
#ifndef DITTO_SERVE_SERVER_H
#define DITTO_SERVE_SERVER_H

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/batch_rollout.h"
#include "serve/metrics.h"
#include "serve/prefix_key.h"
#include "serve/request.h"
#include "serve/reuse_cache.h"

namespace ditto {

/** Server tuning knobs; every field has an environment override. */
struct ServerConfig
{
    /** Max requests per engine batch (DITTO_SERVE_MAX_BATCH). */
    int64_t maxBatch = 8;

    /**
     * Default batch-formation window in microseconds
     * (DITTO_SERVE_MAX_WAIT_US): how long an idle engine holds its
     * first request open for co-batchable arrivals.
     */
    int64_t maxWaitMicros = 2000;

    /** Worker threads, one engine each (DITTO_SERVE_WORKERS). */
    int workers = 1;

    /**
     * Most requests allowed to wait in the class queues
     * (DITTO_SERVE_QUEUE_CAP). Running and parked requests don't
     * count. Beyond it submit() rejects (or blocks, below) — the
     * server's memory is bounded no matter the arrival rate.
     */
    int64_t queueCapacity = 64;

    /**
     * Backpressure mode (DITTO_SERVE_ADMIT_BLOCK_US): 0 rejects a
     * submit against a full queue immediately; > 0 blocks the caller
     * up to this many microseconds for space first, then rejects.
     */
    int64_t admitBlockMicros = 0;

    /**
     * Queue depth at which the load watcher starts shedding
     * (DITTO_SERVE_SHED_HIGH); 0 derives 3/4 of queueCapacity.
     */
    int64_t shedHighWater = 0;

    /**
     * Queue depth at which shedding is released
     * (DITTO_SERVE_SHED_LOW); 0 derives 1/4 of queueCapacity. The gap
     * to shedHighWater is the hysteresis band.
     */
    int64_t shedLowWater = 0;

    /**
     * Inter-request reuse cache (DITTO_REUSE_CAP_BYTES /
     * DITTO_REUSE_CHECKPOINT_EVERY; src/serve/reuse_cache.h). Off by
     * default. Ignored when the constructor is handed an external
     * cache — then the cache's own config governs.
     */
    ReuseCacheConfig reuse;

    /** Defaults with the DITTO_SERVE_* environment overrides applied. */
    static ServerConfig fromEnv();

    /** shedHighWater with the 0-derivation applied. */
    int64_t
    effectiveShedHigh() const
    {
        return shedHighWater > 0 ? shedHighWater
                                 : std::max<int64_t>(1, queueCapacity * 3 / 4);
    }

    /** shedLowWater with the 0-derivation applied. */
    int64_t
    effectiveShedLow() const
    {
        const int64_t low =
            shedLowWater > 0 ? shedLowWater : queueCapacity / 4;
        return std::min(low, effectiveShedHigh() - 1);
    }
};

/**
 * Aggregate serving counters (monotonic since construction). The
 * richer per-class surface lives in DenoiseServer::metrics().
 */
struct ServerStats
{
    uint64_t submitted = 0;    //!< requests accepted into the queue
    uint64_t completed = 0;    //!< results delivered to the result map
    uint64_t steps = 0;        //!< forwardBatch calls across engines
    uint64_t stepRequests = 0; //!< sum of batch occupancy over steps
    uint64_t batchesFormed = 0; //!< idle->running transitions

    /** Mean requests per executed step. */
    double
    avgOccupancy() const
    {
        return steps ? static_cast<double>(stepRequests) /
                           static_cast<double>(steps)
                     : 0.0;
    }
};

/** Asynchronous multi-request denoising server over one CompiledModel. */
class DenoiseServer
{
  public:
    /**
     * `cache` shares an inter-request reuse cache across servers (the
     * cross-server reuse topology; entries self-invalidate across
     * models via the prefix key). Null creates a private cache when
     * cfg.reuse enables one, else serves without reuse.
     */
    explicit DenoiseServer(const CompiledModel &model,
                           ServerConfig cfg = ServerConfig::fromEnv(),
                           std::shared_ptr<ReuseCache> cache = nullptr);

    /** shutdown(), then destroys the result map (unretrieved results
     *  are dropped). */
    ~DenoiseServer();

    DenoiseServer(const DenoiseServer &) = delete;
    DenoiseServer &operator=(const DenoiseServer &) = delete;

    /**
     * Enqueue a request; returns its ticket. Every submit yields a
     * retrievable result — a rejected request's result (status
     * Rejected) is available immediately. Malformed requests (bad
     * mode/steps/window) and submit() after shutdown() fail loudly
     * (DITTO_FATAL) in the caller's thread.
     */
    uint64_t submit(const DenoiseRequest &req);

    /**
     * Non-blocking result retrieval: true exactly once per finished
     * ticket, moving the result into *out. A ticket that was never
     * issued or whose result was already consumed fails loudly
     * (DITTO_FATAL) instead of returning false forever.
     */
    bool poll(uint64_t id, DenoiseResult *out);

    /**
     * Block until ticket `id` reaches a terminal state and return its
     * result. Fails loudly (DITTO_FATAL, instead of deadlocking) on a
     * ticket that was never issued or already consumed — including a
     * concurrent poll()/wait() racing on the same ticket.
     */
    DenoiseResult wait(uint64_t id);

    /**
     * Request cancellation in any lifecycle state. Queued and parked
     * requests cancel synchronously; a running request is flagged and
     * evicted at the next step boundary (if it completes its final
     * step first, the result stays Done — the terminal status is
     * authoritative). Returns false for unknown/consumed tickets and
     * for requests already in a terminal state.
     */
    bool cancel(uint64_t id);

    /**
     * Current lifecycle state of a ticket. Terminal states are
     * reported until the result is consumed; an unknown or consumed
     * ticket fails loudly.
     */
    RequestStatus queryState(uint64_t id) const;

    /**
     * Stop accepting work, finish everything already accepted
     * (queued, running and parked requests all reach a terminal
     * state), and join the workers. Idempotent; called by the
     * destructor. Results stay retrievable afterwards.
     */
    void shutdown();

    ServerStats stats() const;

    /** Consistent snapshot of the full metrics surface. */
    ServeMetrics metrics() const;

    /** metrics().toJson() — the machine-readable export. */
    std::string metricsJson() const;

    /** The reuse cache in use (null when reuse is disabled). */
    std::shared_ptr<ReuseCache> reuseCache() const { return cache_; }

    /**
     * A request's portable identity + progress: everything another
     * DenoiseServer needs to continue it (src/shard/, docs/sharding.md).
     * `req` is the *effective* request (post-shedding mode) with its
     * deadline re-expressed as the remaining budget in microseconds —
     * absolute steady-clock points do not cross processes. `state` is
     * the park/resume transport; stepsDone == 0 && !hasState means the
     * rollout never started and the importer runs it cold (bitwise
     * identical by the determinism contract — the trajectory is a pure
     * function of (model, seed, mode, steps)).
     */
    struct MigratedRequest
    {
        DenoiseRequest req;
        BatchEngine::Parked state;
    };

    /**
     * Relinquish ticket `id` for migration to another worker. A queued
     * request is removed from its class queue and exported cold; a
     * parked one is exported as parked; a running one is flagged and
     * parked at its next step boundary (this call blocks up to
     * `waitMicros` for that). On success the local ticket terminates
     * as RequestStatus::Migrated (empty image) and *out carries the
     * portable state. False — with the request untouched and still
     * progressing locally — when the ticket is unknown, already
     * terminal, finishes before the boundary, or the server is
     * draining.
     */
    bool exportForMigration(uint64_t id, MigratedRequest *out,
                            int64_t waitMicros = 5'000'000);

    /**
     * Adopt a migrated request under a fresh ticket (returned).
     * Partial progress re-enters through the parked pool and resumes
     * at the next admission; never-started work queues normally.
     * Admission control is bypassed — migration rebalances work that
     * was already admitted somewhere — but deadlines keep counting:
     * the remaining budget in `m.req.deadlineMicros` re-anchors to
     * now. Fails loudly after shutdown(), like submit().
     */
    uint64_t importMigrated(const MigratedRequest &m);

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        uint64_t id = 0;
        DenoiseRequest req;
        Clock::time_point submitted;
    };

    /** Server-side lifecycle record, alive until the result is consumed. */
    struct Ticket
    {
        RequestStatus state = RequestStatus::Queued;
        SloClass slo = SloClass::Standard;
        bool cancelRequested = false;

        /**
         * exportForMigration wants this request parked at the next
         * step boundary. While set, a parked entry is *held*: the
         * admission paths skip it so the exporter — not a worker —
         * takes it. Cleared on export failure/timeout and by
         * shutdown() (a drain completes held work locally).
         */
        bool migrateRequested = false;
        bool degraded = false;
        int preemptions = 0;
        int reusedSteps = 0; //!< warm-start depth (0: cold)
        Clock::time_point submitted;
        Clock::time_point admitted;  //!< first admission (valid once
                                     //!< state has left Queued)
        Clock::time_point deadline;  //!< time_point::max(): none

        /**
         * The effective request (post-shedding mode), kept so
         * exportForMigration can reconstruct the portable identity of
         * a request in any lifecycle state. Only populated for
         * accepted requests (never for rejects).
         */
        DenoiseRequest req;
    };

    /** A parked (preempted) request waiting to resume. */
    struct ParkedEntry
    {
        BatchEngine::Parked state;
        SloClass slo = SloClass::Standard;
        Clock::time_point parkedAt;
    };

    /** One admission candidate popped from the queues or parked pool. */
    struct Candidate
    {
        bool fromParked = false;
        Pending pending;    //!< valid when !fromParked
        ParkedEntry parked; //!< valid when fromParked
    };

    void workerLoop();

    /** `base + micros`, saturating at Clock::time_point::max(). */
    static Clock::time_point deadlineAfter(Clock::time_point base,
                                           int64_t micros);

    // All *Locked helpers require mutex_ held.
    bool haveWorkLocked() const;
    bool parkedHeldLocked(const ParkedEntry &e) const;
    int64_t queueDepthLocked() const;
    void updateShedLocked();
    SloClass bestWaitingClassLocked(bool *any) const;
    bool popCandidateLocked(Candidate *out);
    void finalizeLocked(uint64_t id, RequestStatus status,
                        DenoiseResult &&result);
    void finalizeEmptyLocked(uint64_t id, RequestStatus status);
    DenoiseResult makeResultLocked(uint64_t id) const;
    int effectiveSteps(const DenoiseRequest &req) const;

    const CompiledModel &model_;
    const ServerConfig cfg_;
    std::shared_ptr<ReuseCache> cache_; //!< null: reuse disabled

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;  //!< queue -> workers
    std::condition_variable resultReady_;    //!< results -> waiters
    std::condition_variable spaceAvailable_; //!< queue -> blocked submits
    std::array<std::deque<Pending>, kNumSloClasses> queues_;
    std::deque<ParkedEntry> parked_;
    std::unordered_map<uint64_t, Ticket> tickets_;
    /**
     * Prefix identity of every live admitted request, registered at
     * first admission and erased with the ticket's terminal transition
     * (finalizeLocked) — the checkpoint path derives store keys from
     * it without rehashing the model per step.
     */
    std::unordered_map<uint64_t, PrefixBase> reuseBase_;
    std::unordered_map<uint64_t, DenoiseResult> results_;
    ServerStats stats_;
    ServeMetrics metrics_;
    uint64_t nextId_ = 1;
    bool shedding_ = false;
    bool stopping_ = false; //!< drain mode: shutdown() in progress
    bool shutdown_ = false; //!< workers joined; submit() is an error

    std::vector<std::thread> workers_;
};

} // namespace ditto

#endif // DITTO_SERVE_SERVER_H
