/**
 * @file
 * Asynchronous batched denoising server.
 *
 * submit() enqueues a request and returns a ticket; poll()/wait()
 * retrieve the finished result. A fixed pool of worker threads each
 * drives one BatchEngine:
 *
 *  - Batch formation is deadline-aware: an idle worker admits the
 *    oldest queued request, then keeps the batch open up to the
 *    max-wait window (the minimum of the admitted requests' own
 *    windows) hoping to fill it; the batch launches early when full or
 *    when any admitted request's window expires.
 *  - Once running, the engine admits newly queued requests between
 *    steps into free slots (continuous batching) — requests at
 *    different timesteps share every forwardBatch call, tracked per
 *    slot.
 *  - Results are bitwise identical to sequential single-request
 *    rollouts regardless of batch composition, admission order,
 *    worker count or thread count (docs/serving.md).
 *
 * The full request lifecycle is documented in docs/serving.md.
 */
#ifndef DITTO_SERVE_SERVER_H
#define DITTO_SERVE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serve/batch_rollout.h"
#include "serve/request.h"

namespace ditto {

/** Server tuning knobs; every field has an environment override. */
struct ServerConfig
{
    /** Max requests per engine batch (DITTO_SERVE_MAX_BATCH). */
    int64_t maxBatch = 8;

    /**
     * Default batch-formation window in microseconds
     * (DITTO_SERVE_MAX_WAIT_US): how long an idle engine holds its
     * first request open for co-batchable arrivals.
     */
    int64_t maxWaitMicros = 2000;

    /** Worker threads, one engine each (DITTO_SERVE_WORKERS). */
    int workers = 1;

    /** Defaults with the DITTO_SERVE_* environment overrides applied. */
    static ServerConfig fromEnv();
};

/** Aggregate serving counters (monotonic since construction). */
struct ServerStats
{
    uint64_t submitted = 0;    //!< requests accepted by submit()
    uint64_t completed = 0;    //!< results delivered to the result map
    uint64_t steps = 0;        //!< forwardBatch calls across engines
    uint64_t stepRequests = 0; //!< sum of batch occupancy over steps
    uint64_t batchesFormed = 0; //!< idle->running transitions

    /** Mean requests per executed step. */
    double
    avgOccupancy() const
    {
        return steps ? static_cast<double>(stepRequests) /
                           static_cast<double>(steps)
                     : 0.0;
    }
};

/** Asynchronous multi-request denoising server over one CompiledModel. */
class DenoiseServer
{
  public:
    explicit DenoiseServer(const CompiledModel &model,
                           ServerConfig cfg = ServerConfig::fromEnv());

    /** Completes all submitted work, then stops the workers. */
    ~DenoiseServer();

    DenoiseServer(const DenoiseServer &) = delete;
    DenoiseServer &operator=(const DenoiseServer &) = delete;

    /** Enqueue a request; returns its ticket. */
    uint64_t submit(const DenoiseRequest &req);

    /**
     * Non-blocking result retrieval: true exactly once per finished
     * ticket, moving the result into *out. Unknown or already-consumed
     * tickets fail loudly instead of returning false forever.
     */
    bool poll(uint64_t id, DenoiseResult *out);

    /**
     * Block until ticket `id` finishes and return its result. Asserts
     * (instead of deadlocking) on a ticket that was never issued or
     * whose result was already retrieved.
     */
    DenoiseResult wait(uint64_t id);

    ServerStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        uint64_t id = 0;
        DenoiseRequest req;
        Clock::time_point submitted;
    };

    /** Timing carried through an engine alongside its slots. */
    struct InFlight
    {
        Clock::time_point submitted;
        Clock::time_point admitted;
    };

    void workerLoop();

    const CompiledModel &model_;
    const ServerConfig cfg_;

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_; //!< queue -> workers
    std::condition_variable resultReady_;   //!< results -> waiters
    std::deque<Pending> queue_;
    std::unordered_map<uint64_t, DenoiseResult> results_;
    std::unordered_map<uint64_t, InFlight> inFlight_;
    /** Issued but not yet retrieved (poll/wait validity checks). */
    std::unordered_set<uint64_t> outstanding_;
    ServerStats stats_;
    uint64_t nextId_ = 1;
    bool stopping_ = false;

    std::vector<std::thread> workers_;
};

} // namespace ditto

#endif // DITTO_SERVE_SERVER_H
