/**
 * @file
 * Request and result types of the batched denoising server.
 *
 * A request is a pure value: (seed, steps, mode). Its *image* is a
 * pure function of that value and the served model — never of batch
 * composition, queueing order, worker count or thread count. That is
 * the serving layer's bitwise-equivalence guarantee (docs/serving.md):
 * serving a request batched — including preempting it mid-rollout and
 * resuming it later — is bit-for-bit the same as running
 * model.rollout(mode, model.requestNoise(seed)) alone, for any
 * CompiledModel.
 *
 * Whether the request runs at all is a different question: requests
 * carry an SLO class and an optional deadline, and the server may
 * reject, shed, degrade, preempt, time out or cancel them. The
 * terminal status of that lifecycle is part of the result
 * (RequestStatus); docs/serving.md documents the state machine.
 */
#ifndef DITTO_SERVE_REQUEST_H
#define DITTO_SERVE_REQUEST_H

#include <cstdint>

#include "core/run_mode.h"

namespace ditto {

/**
 * Service classes, in strict priority order (lower value = higher
 * priority). Admission pops Interactive before Standard before
 * BestEffort; preemption may park a running lower class to make room
 * for a waiting higher class; overload shedding rejects BestEffort
 * first and force-degrades Standard (docs/serving.md).
 */
enum class SloClass : uint8_t
{
    Interactive = 0,
    Standard = 1,
    BestEffort = 2,
};

inline constexpr int kNumSloClasses = 3;

/** Stable lower-case name ("interactive", ...) for logs and JSON. */
const char *sloClassName(SloClass slo);

/**
 * Lifecycle state of a submitted request. Non-terminal states are
 * observable through DenoiseServer::queryState; every result carries
 * its terminal state.
 *
 *   Queued -> Running <-> Parked
 *   Queued/Running/Parked -> {Done, Cancelled, TimedOut, Migrated}
 *   submit() -> Rejected (admission control, shedding, fault points)
 */
enum class RequestStatus : uint8_t
{
    Queued = 0,   //!< accepted, waiting for an engine slot
    Running,      //!< occupies a batch slot
    Parked,       //!< preempted between steps; partial state saved
    Done,         //!< completed all steps; image is valid
    Cancelled,    //!< cancel() took effect before completion
    TimedOut,     //!< deadline expired before completion
    Rejected,     //!< never admitted (overload / shed / fault)

    /**
     * Exported to another worker (DenoiseServer::exportForMigration):
     * this server relinquished the request; its portable state —
     * partial image plus DittoState slab — continues elsewhere under a
     * new ticket (src/shard/, docs/sharding.md). Terminal here, with
     * an empty image.
     */
    Migrated,
};

/** Stable lower-case name ("queued", ...) for logs and JSON. */
const char *requestStatusName(RequestStatus st);

/** True for states in which the request will make no further progress. */
inline bool
isTerminal(RequestStatus st)
{
    return st == RequestStatus::Done || st == RequestStatus::Cancelled ||
           st == RequestStatus::TimedOut || st == RequestStatus::Rejected ||
           st == RequestStatus::Migrated;
}

/** One denoising request submitted to the server. */
struct DenoiseRequest
{
    /** Seed of the request's initial noise (CompiledModel::requestNoise). */
    uint64_t seed = 0;

    /** Reverse-diffusion steps; 0 uses the model's configured count. */
    int steps = 0;

    /**
     * Execution mode. QuantDitto and QuantDirect requests may share a
     * batch (a direct request is simply a slab that never primes);
     * Fp32 is not served batched.
     */
    RunMode mode = RunMode::QuantDitto;

    /**
     * Opaque digest of the request's conditioning (prompt embedding,
     * guidance scale, ... — whatever the caller hashes). It does not
     * affect the synthetic compute at all; it is part of the request's
     * *identity* for inter-request reuse (src/serve/prefix_key.h): two
     * requests may share a cached rollout prefix only when their
     * (model, seed, conditioning, mode) all match. Callers that never
     * enable the reuse cache can ignore it.
     */
    uint64_t conditioning = 0;

    /**
     * Longest time this request may sit in an empty engine's batch
     * formation window waiting for co-batchable requests, in
     * microseconds. -1 uses the server's configured window; 0 demands
     * immediate dispatch. Once any request's window expires the batch
     * launches with whatever has arrived (deadline-aware formation).
     */
    int64_t maxWaitMicros = -1;

    /** Service class (admission order, preemption, shedding). */
    SloClass slo = SloClass::Standard;

    /**
     * End-to-end deadline relative to submit(), in microseconds; -1
     * means none. The deadline is absolute (steady-clock) once
     * submitted: a request that cannot finish by it is timed out — in
     * the queue, between steps while running, or while parked — and
     * its result carries RequestStatus::TimedOut. 0 is legal and times
     * the request out at the first checkpoint unless it completes
     * instantly.
     */
    int64_t deadlineMicros = -1;
};

/** Completed request, handed back through poll()/wait(). */
struct DenoiseResult
{
    uint64_t id = 0;          //!< ticket returned by submit()
    RequestStatus status = RequestStatus::Done; //!< terminal state
    SloClass slo = SloClass::Standard; //!< class it was served at
    FloatTensor image;        //!< final image (Done only; else empty)
    OpCounts dittoOps;        //!< multiplier-lane tallies (Ditto mode)
    int steps = 0;            //!< total rollout steps (incl. reused)
    int preemptions = 0;      //!< times parked and resumed

    /**
     * Steps installed from the inter-request reuse cache instead of
     * executed (<= steps; 0 on a cold start or with the cache
     * disabled). The image is bitwise identical either way for exact
     * modes (docs/reuse_cache.md).
     */
    int reusedSteps = 0;
    bool degraded = false;    //!< overload policy downgraded the work
    double queueMicros = 0;   //!< submit -> first admitted
    double serviceMicros = 0; //!< first admitted -> terminal state
};

} // namespace ditto

#endif // DITTO_SERVE_REQUEST_H
