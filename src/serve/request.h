/**
 * @file
 * Request and result types of the batched denoising server.
 *
 * A request is a pure value: (seed, steps, mode). Its result is a pure
 * function of that value and the served model — never of batch
 * composition, queueing order, worker count or thread count. That is
 * the serving layer's bitwise-equivalence guarantee (docs/serving.md):
 * serving a request batched is bit-for-bit the same as running
 * model.rollout(mode, model.requestNoise(seed)) alone, for any
 * CompiledModel.
 */
#ifndef DITTO_SERVE_REQUEST_H
#define DITTO_SERVE_REQUEST_H

#include <cstdint>

#include "core/run_mode.h"

namespace ditto {

/** One denoising request submitted to the server. */
struct DenoiseRequest
{
    /** Seed of the request's initial noise (CompiledModel::requestNoise). */
    uint64_t seed = 0;

    /** Reverse-diffusion steps; 0 uses the model's configured count. */
    int steps = 0;

    /**
     * Execution mode. QuantDitto and QuantDirect requests may share a
     * batch (a direct request is simply a slab that never primes);
     * Fp32 is not served batched.
     */
    RunMode mode = RunMode::QuantDitto;

    /**
     * Longest time this request may sit in an empty engine's batch
     * formation window waiting for co-batchable requests, in
     * microseconds. -1 uses the server's configured window; 0 demands
     * immediate dispatch. Once any request's window expires the batch
     * launches with whatever has arrived (deadline-aware formation).
     */
    int64_t maxWaitMicros = -1;
};

/** Completed request, handed back through poll()/wait(). */
struct DenoiseResult
{
    uint64_t id = 0;          //!< ticket returned by submit()
    FloatTensor image;        //!< final denoised image
    OpCounts dittoOps;        //!< multiplier-lane tallies (Ditto mode)
    int steps = 0;            //!< steps actually executed
    double queueMicros = 0;   //!< submit -> admitted into an engine
    double serviceMicros = 0; //!< admitted -> last step retired
};

} // namespace ditto

#endif // DITTO_SERVE_REQUEST_H
