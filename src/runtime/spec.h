/**
 * @file
 * ModelSpec: numeric layer descriptions the graph runtime compiles.
 *
 * A ModelSpec is a complete, executable description of a denoising
 * model: nodes in topological order (shapes, operand wiring,
 * quantization points), a deterministic weight program (every weight
 * drawn from one seeded RNG stream), and the rollout step count. It is
 * the executable twin of the layer IR in src/model/ — `toGraph()`
 * lowers a spec to a ModelGraph so Defo's static dependency analysis
 * (ModelGraph::analyzeDependencies) can drive the compiled execution,
 * and so the cost/BOPs machinery sees the same topology the runtime
 * actually runs.
 *
 * Specs are built through GraphBuilder (shape inference, quant-point
 * bookkeeping, validation) and compiled by runtime/compiled.h. The
 * presets in runtime/presets.h cover the MiniUnet compatibility model,
 * a deeper multi-scale UNet and a DiT-style transformer block.
 */
#ifndef DITTO_RUNTIME_SPEC_H
#define DITTO_RUNTIME_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/graph.h"
#include "tensor/ops.h"
#include "tensor/shape.h"

namespace ditto {

/** Executable op kinds of the graph runtime. */
enum class RtOp
{
    Input,        //!< the noisy image x_t, NCHW
    // Compute Unit layers (difference-processing candidates).
    Conv2d,       //!< weight-stationary convolution
    Fc,           //!< weight-stationary fully-connected layer
    AttnScores,   //!< Q x K^T, both operands dynamic
    AttnOutput,   //!< P x V, both operands dynamic
    CrossScores,  //!< Q' x K'^T with constant context projection K'
    CrossOutput,  //!< P' x V' with constant context projection V'
    // Vector Processing Unit layers (full-value boundaries).
    GroupNorm,
    LayerNorm,
    SiLU,
    GeLU,
    Softmax,
    // Structural / elementwise ops; linear w.r.t. differences.
    Add,
    Affine,       //!< x * scale + shift with compile-time constants
    Concat,       //!< channel concatenation of NCHW maps
    Upsample2x,   //!< nearest-neighbour spatial doubling
    AvgPool2x,    //!< 2x2 average pooling
    // Layout-only reshapes (element bijections).
    NchwToTokens, //!< (N,C,H,W) -> [N*H*W, C] token matrix
    TokensToNchw, //!< token matrix -> (N,C,H,W)
};

/** Human-readable name of an RtOp. */
const char *rtOpName(RtOp op);

/** True for ops executed on the Compute Unit (MAC arrays). */
bool rtIsCompute(RtOp op);

/** True for the layout-only reshapes payloads pass through. */
bool rtIsReshape(RtOp op);

/**
 * One tensor of the spec's deterministic weight program.
 *
 * At compile time all weights are drawn from a single RNG stream
 * (Rng::fromKeys(spec.seed, 0x11B5)) in list order: first every
 * fan-in-scaled weight (He-style normal with std 1/sqrt(fanIn)), then
 * every constant context tensor (fanIn == 0, unit normal), then the
 * model's own initial noise. This fixed phase order is what lets the
 * MiniUnet preset reproduce the legacy hand-wired model bit for bit.
 */
struct WeightSpec
{
    Shape shape;
    int64_t fanIn = 0; //!< 0: unit-normal constant (context tensors)
};

/** One node of a ModelSpec (see GraphBuilder for invariants). */
struct NodeSpec
{
    int id = -1;
    RtOp op = RtOp::Input;
    std::string name;
    std::vector<int> inputs; //!< producer node ids
    Shape outShape;          //!< inferred by the builder

    /**
     * WeightSpec index: the layer weight (Conv2d/Fc), or the context
     * *projection* weight (CrossScores: K-projection, CrossOutput:
     * V-projection).
     */
    int weight = -1;
    /** WeightSpec index of the constant context tensor (Cross*). */
    int context = -1;
    Conv2dParams conv;  //!< Conv2d geometry
    int scaleIn = -1;   //!< quantization point of the dynamic operand
    int scaleIn2 = -1;  //!< second dynamic operand (AttnScores/AttnOutput)
    float affineScale = 1.0f;
    float affineShift = 0.0f;
    int64_t groups = 2; //!< GroupNorm group count
};

/** A complete executable model description. */
struct ModelSpec
{
    std::string name;
    uint64_t seed = 42;
    int steps = 6;     //!< default reverse-diffusion step count
    Shape inputShape;  //!< [1, C, H, W]
    std::vector<WeightSpec> weights;
    std::vector<NodeSpec> nodes; //!< topological; back() is the output
    int numScales = 0;           //!< activation quantization points

    /**
     * Content hash over everything that determines execution: node
     * topology and geometry, weight program, seed, steps and input
     * shape. Keys the calibrated-scale disk cache
     * (src/trace/calibrate.h) so two structurally identical specs
     * share a calibration entry and any change invalidates it.
     */
    uint64_t hash() const;

    /**
     * Lower to the layer IR: one Layer per node with kinds, operand
     * geometry and dependencies, reshape nodes collapsed into their
     * producer edge (they are element bijections the dependency walk
     * treats as wire). `nodeToLayer`, when given, receives the node id
     * -> layer id mapping (reshapes map to their producer's layer).
     */
    ModelGraph toGraph(std::vector<int> *nodeToLayer = nullptr) const;
};

/**
 * Incremental ModelSpec builder with shape inference and validation.
 *
 * Node methods return the new node's id; weight-bearing methods append
 * the node's weights to the weight program in call order (the draw
 * phases are described on WeightSpec). Quantization points are
 * allocated with newScale() and may be shared between nodes that
 * quantize the same producer tensor (e.g. a Q/K/V triple).
 */
class GraphBuilder
{
  public:
    explicit GraphBuilder(std::string name);

    void setSeed(uint64_t seed) { spec_.seed = seed; }
    void setSteps(int steps);

    /** Allocate an activation quantization point. */
    int newScale();

    /** Register a constant context tensor [tokens, dim]. */
    int contextWeight(int64_t tokens, int64_t dim);

    /** The graph input (exactly one per spec): NCHW [1, ch, res, res]. */
    int input(int64_t channels, int64_t resolution);

    int conv2d(const std::string &name, int in, int64_t outChannels,
               int64_t kernel, int64_t stride, int64_t padding, int scale);
    int fc(const std::string &name, int in, int64_t outFeatures, int scale);

    /** Self-attention Q x K^T over token matrices q, k: [T, d]. */
    int attnScores(const std::string &name, int q, int k, int scaleQ,
                   int scaleK);
    /** Self-attention P x V: p [T, T], v [T, d]. */
    int attnOutput(const std::string &name, int p, int v, int scaleP,
                   int scaleV);

    /**
     * Cross-attention scores Q' x K'^T against context `ctx`
     * (contextWeight): registers the K-projection weight
     * [d, ctxDim] and treats its output K' as a constant weight.
     */
    int crossScores(const std::string &name, int q, int ctx, int scaleQ);
    /** Cross-attention output P' x V' (V-projection [outDim, ctxDim]). */
    int crossOutput(const std::string &name, int p, int ctx,
                    int64_t outDim, int scaleP);

    int groupNorm(const std::string &name, int in, int64_t groups);
    int layerNorm(const std::string &name, int in);
    int silu(const std::string &name, int in);
    int gelu(const std::string &name, int in);
    int softmax(const std::string &name, int in);

    int add(const std::string &name, int a, int b);
    int affine(const std::string &name, int in, float scale, float shift);
    int concat(const std::string &name, int a, int b);
    int upsample2x(const std::string &name, int in);
    int avgPool2x(const std::string &name, int in);

    int nchwToTokens(const std::string &name, int in);
    /** Token matrix [n*h*w, c] back to NCHW [n, c, h, w]. */
    int tokensToNchw(const std::string &name, int in, int64_t h, int64_t w);

    /** Output shape of node `id`. */
    const Shape &shapeOf(int id) const;

    /**
     * Finalize: validates that the last node's shape matches the input
     * shape (the rollout recurrence x += -0.15 * eps needs it) and
     * returns the spec.
     */
    ModelSpec build();

  private:
    int addNode(NodeSpec node);
    const NodeSpec &node(int id) const;

    ModelSpec spec_;
    bool haveInput_ = false;
};

} // namespace ditto

#endif // DITTO_RUNTIME_SPEC_H
