/**
 * @file
 * Preset ModelSpecs: the models the graph runtime ships ready to
 * compile.
 *
 *  - miniUnetSpec: the historic MiniUnet slice, node for node and
 *    weight draw for weight draw — compiled execution is bitwise
 *    identical to the legacy hand-wired implementation
 *    (core/legacy_unet.h), the golden parity suite's subject.
 *  - deepUnetSpec: a deeper multi-scale UNet (downsample, bottleneck
 *    attention, upsample, skip concat) — the workload shape the
 *    encoder/decoder UNets of Table I have and the hand-wired model
 *    could not express. Its fuse -> mix convolution pair is a direct
 *    compute-to-compute edge the dependency analysis bypasses.
 *  - ditBlockSpec: a DiT-style transformer block (patch embed,
 *    LayerNorm, self attention, GeLU MLP, unembed) — the
 *    transformer-family workload (DiT/Latte in Table I; the targets of
 *    Δ-DiT and BlockDance).
 *
 * All three run end to end through CompiledModel and the serving
 * layer; QuantDitto is bitwise identical to QuantDirect on every one
 * (the distributive identity is exact in the integer domain).
 */
#ifndef DITTO_RUNTIME_PRESETS_H
#define DITTO_RUNTIME_PRESETS_H

#include <cstdint>

#include "runtime/spec.h"

namespace ditto {

/** MiniUnet configuration (the historic core/mini_unet.h knobs). */
struct MiniUnetConfig
{
    int64_t channels = 8;    //!< working channel width
    int64_t resolution = 8;  //!< spatial extent
    int64_t inChannels = 3;  //!< input/output channels
    int64_t ctxTokens = 4;   //!< cross-attention context length
    int64_t ctxDim = 8;      //!< cross-attention context width
    int steps = 6;           //!< reverse-diffusion steps
    uint64_t seed = 42;      //!< weight/init RNG seed
};

/** The MiniUnet slice as a spec (legacy-bitwise when compiled). */
ModelSpec miniUnetSpec(const MiniUnetConfig &cfg);

/** Deep multi-scale UNet configuration. */
struct DeepUnetConfig
{
    int64_t baseChannels = 16; //!< level-0 width (doubles at level 1)
    int64_t resolution = 16;   //!< input extent (must be even)
    int64_t inChannels = 3;
    int steps = 8;
    uint64_t seed = 77;
};

/** Two-level UNet: down / bottleneck attention / up / skip concat. */
ModelSpec deepUnetSpec(const DeepUnetConfig &cfg);

/** DiT-style transformer block configuration. */
struct DitBlockConfig
{
    int64_t embedDim = 24;  //!< token embedding width
    int64_t resolution = 8; //!< input extent (tokens = resolution^2)
    int64_t inChannels = 4; //!< latent channels
    int64_t mlpRatio = 2;   //!< MLP hidden width multiplier
    int steps = 8;
    uint64_t seed = 99;
};

/** Patch embed + LayerNorm self-attention block + GeLU MLP + unembed. */
ModelSpec ditBlockSpec(const DitBlockConfig &cfg);

} // namespace ditto

#endif // DITTO_RUNTIME_PRESETS_H
