/**
 * @file
 * Preset ModelSpecs: the models the graph runtime ships ready to
 * compile.
 *
 *  - miniUnetSpec: the historic MiniUnet slice, node for node and
 *    weight draw for weight draw — compiled execution is bitwise
 *    identical to the legacy hand-wired implementation
 *    (core/legacy_unet.h), the golden parity suite's subject.
 *  - deepUnetSpec: a deeper multi-scale UNet (downsample, bottleneck
 *    attention, upsample, skip concat) — the workload shape the
 *    encoder/decoder UNets of Table I have and the hand-wired model
 *    could not express. Its fuse -> mix convolution pair is a direct
 *    compute-to-compute edge the dependency analysis bypasses.
 *  - ditBlockSpec: a DiT-style transformer block (patch embed,
 *    LayerNorm, self attention, GeLU MLP, unembed) — the
 *    transformer-family workload (DiT/Latte in Table I; the targets of
 *    Δ-DiT and BlockDance).
 *  - mhsaBlockSpec: the multi-head variant — per-head q/k/v
 *    projections and attention, per-head output projections combined
 *    by a head-sum Add (algebraically identical to concat-then-project
 *    since W [concat_h o_h] = sum_h W_h o_h). Both the head-sum and
 *    the final residual are token-domain junctions the compiler folds
 *    into multi-producer requant-deltas.
 *  - ditAdaLnSpec: the adaLN-conditioned DiT block — LayerNorms
 *    followed by per-model constant scale/shift modulation and gated
 *    residual branches (Affine nodes standing in for the conditioning
 *    MLP output at a fixed timestep embedding). The gate Affine sits
 *    between compute and the residual Add, so the analysis verdict
 *    stays diff-transparent but the software junction fold declines it
 *    — the reference case for telling junction-blocking from Defo
 *    reversion in the --verdicts dump.
 *
 * All presets run end to end through CompiledModel and the serving
 * layer; QuantDitto is bitwise identical to QuantDirect on every one
 * (the distributive identity is exact in the integer domain).
 */
#ifndef DITTO_RUNTIME_PRESETS_H
#define DITTO_RUNTIME_PRESETS_H

#include <cstdint>

#include "runtime/spec.h"

namespace ditto {

/** MiniUnet configuration (the historic core/mini_unet.h knobs). */
struct MiniUnetConfig
{
    int64_t channels = 8;    //!< working channel width
    int64_t resolution = 8;  //!< spatial extent
    int64_t inChannels = 3;  //!< input/output channels
    int64_t ctxTokens = 4;   //!< cross-attention context length
    int64_t ctxDim = 8;      //!< cross-attention context width
    int steps = 6;           //!< reverse-diffusion steps
    uint64_t seed = 42;      //!< weight/init RNG seed
};

/** The MiniUnet slice as a spec (legacy-bitwise when compiled). */
ModelSpec miniUnetSpec(const MiniUnetConfig &cfg);

/** Deep multi-scale UNet configuration. */
struct DeepUnetConfig
{
    int64_t baseChannels = 16; //!< level-0 width (doubles at level 1)
    int64_t resolution = 16;   //!< input extent (must be even)
    int64_t inChannels = 3;
    int steps = 8;
    uint64_t seed = 77;
};

/** Two-level UNet: down / bottleneck attention / up / skip concat. */
ModelSpec deepUnetSpec(const DeepUnetConfig &cfg);

/** DiT-style transformer block configuration. */
struct DitBlockConfig
{
    int64_t embedDim = 24;  //!< token embedding width
    int64_t resolution = 8; //!< input extent (tokens = resolution^2)
    int64_t inChannels = 4; //!< latent channels
    int64_t mlpRatio = 2;   //!< MLP hidden width multiplier
    int steps = 8;
    uint64_t seed = 99;
};

/** Patch embed + LayerNorm self-attention block + GeLU MLP + unembed. */
ModelSpec ditBlockSpec(const DitBlockConfig &cfg);

/** Multi-head self-attention block configuration. */
struct MhsaBlockConfig
{
    int64_t embedDim = 24;  //!< token embedding width
    int64_t heads = 2;      //!< attention heads (must divide embedDim)
    int64_t resolution = 8; //!< input extent (tokens = resolution^2)
    int64_t inChannels = 4; //!< latent channels
    int64_t mlpRatio = 2;   //!< MLP hidden width multiplier
    int steps = 8;
    uint64_t seed = 1234;
};

/** Multi-head DiT-style block with head-sum and residual junctions. */
ModelSpec mhsaBlockSpec(const MhsaBlockConfig &cfg);

/** adaLN-conditioned DiT block configuration. */
struct DitAdaLnConfig
{
    int64_t embedDim = 24;
    int64_t resolution = 8;
    int64_t inChannels = 4;
    int64_t mlpRatio = 2;
    float scale1 = 1.3f;  //!< adaLN scale after ln1
    float shift1 = 0.2f;  //!< adaLN shift after ln1
    float gate1 = 0.7f;   //!< attention-branch residual gate
    float scale2 = 0.9f;  //!< adaLN scale after ln2
    float shift2 = -0.1f; //!< adaLN shift after ln2
    float gate2 = 0.8f;   //!< MLP-branch residual gate
    int steps = 8;
    uint64_t seed = 4321;
};

/** DiT block with adaLN scale/shift modulation and gated residuals. */
ModelSpec ditAdaLnSpec(const DitAdaLnConfig &cfg);

} // namespace ditto

#endif // DITTO_RUNTIME_PRESETS_H
