/**
 * @file
 * Preset spec builders.
 *
 * miniUnetSpec reproduces the legacy hand-wired model exactly: the
 * node topology mirrors the legacy forward pass, quantization points
 * share exactly where the legacy enum shared them (the attention
 * q/k/v triple reads one scale), and the weight registration order
 * matches the legacy constructor's draw order (the builder's phase
 * rule — fan-in weights first, contexts second, noise last — does the
 * rest). tests/test_runtime.cc asserts the result is bitwise
 * identical to core/legacy_unet.h in every mode.
 */
#include "runtime/presets.h"

#include <cmath>
#include <string>

#include "common/logging.h"

namespace ditto {

ModelSpec
miniUnetSpec(const MiniUnetConfig &cfg)
{
    const int64_t c = cfg.channels;
    const int64_t res = cfg.resolution;
    const int64_t ic = cfg.inChannels;
    const float inv_sqrt_c = 1.0f / std::sqrt(static_cast<float>(c));

    GraphBuilder b("mini_unet");
    b.setSeed(cfg.seed);
    b.setSteps(cfg.steps);

    const int x = b.input(ic, res);
    const int s_conv_in = b.newScale();
    const int h0 = b.conv2d("conv_in", x, c, 3, 1, 1, s_conv_in);

    // Residual block.
    const int gn1 = b.groupNorm("res_gn1", h0, 2);
    const int a1 = b.silu("res_silu1", gn1);
    const int s_res1 = b.newScale();
    const int r1 = b.conv2d("res_conv1", a1, c, 3, 1, 1, s_res1);
    const int gn2 = b.groupNorm("res_gn2", r1, 2);
    const int a2 = b.silu("res_silu2", gn2);
    const int s_res2 = b.newScale();
    const int r2 = b.conv2d("res_conv2", a2, c, 3, 1, 1, s_res2);
    const int h1 = b.add("res_add", h0, r2);

    // Self attention: the q/k/v convolutions share one quantization
    // point — they quantize the same normalized feature map.
    const int g = b.groupNorm("attn_gn", h1, 2);
    const int s_attn_in = b.newScale();
    const int qc = b.conv2d("attn_q", g, c, 1, 1, 0, s_attn_in);
    const int kc = b.conv2d("attn_k", g, c, 1, 1, 0, s_attn_in);
    const int vc = b.conv2d("attn_v", g, c, 1, 1, 0, s_attn_in);
    const int qt = b.nchwToTokens("attn_q_tok", qc);
    const int kt = b.nchwToTokens("attn_k_tok", kc);
    const int vt = b.nchwToTokens("attn_v_tok", vc);
    const int s_q = b.newScale();
    const int s_k = b.newScale();
    const int qk = b.attnScores("attn_qk", qt, kt, s_q, s_k);
    const int qks = b.affine("attn_scale", qk, inv_sqrt_c, 0.0f);
    const int prob = b.softmax("attn_softmax", qks);
    const int s_p = b.newScale();
    const int s_v = b.newScale();
    const int o = b.attnOutput("attn_pv", prob, vt, s_p, s_v);
    const int on = b.tokensToNchw("attn_o_nchw", o, res, res);
    const int s_proj = b.newScale();
    const int proj = b.conv2d("attn_proj", on, c, 1, 1, 0, s_proj);
    const int h2 = b.add("attn_add", h1, proj);

    // Cross attention with a constant context.
    const int tok = b.nchwToTokens("cross_tok", h2);
    const int ctx = b.contextWeight(cfg.ctxTokens, cfg.ctxDim);
    const int s_cross_in = b.newScale();
    const int q2 = b.fc("cross_q", tok, c, s_cross_in);
    const int s_cross_q = b.newScale();
    const int s2 = b.crossScores("cross_qk", q2, ctx, s_cross_q);
    const int s2s = b.affine("cross_scale", s2, inv_sqrt_c, 0.0f);
    const int prob2 = b.softmax("cross_softmax", s2s);
    const int s_cross_p = b.newScale();
    const int o2 = b.crossOutput("cross_pv", prob2, ctx, c, s_cross_p);
    const int s_cross_o = b.newScale();
    const int co = b.fc("cross_out", o2, c, s_cross_o);
    const int con = b.tokensToNchw("cross_out_nchw", co, res, res);
    const int h3 = b.add("cross_add", h2, con);

    // Output head.
    const int gn3 = b.groupNorm("out_gn", h3, 2);
    const int a3 = b.silu("out_silu", gn3);
    const int s_conv_out = b.newScale();
    b.conv2d("conv_out", a3, ic, 3, 1, 1, s_conv_out);
    return b.build();
}

ModelSpec
deepUnetSpec(const DeepUnetConfig &cfg)
{
    const int64_t c0 = cfg.baseChannels;
    const int64_t c1 = c0 * 2;
    const int64_t res = cfg.resolution;
    const int64_t ic = cfg.inChannels;
    const float inv_sqrt_c1 = 1.0f / std::sqrt(static_cast<float>(c1));

    GraphBuilder b("deep_unet");
    b.setSeed(cfg.seed);
    b.setSteps(cfg.steps);

    const int x = b.input(ic, res);
    const int h0 = b.conv2d("enc_conv_in", x, c0, 3, 1, 1, b.newScale());

    // Level-0 residual block.
    const int e_gn1 = b.groupNorm("enc_gn1", h0, 2);
    const int e_a1 = b.silu("enc_silu1", e_gn1);
    const int e_c1 =
        b.conv2d("enc_conv1", e_a1, c0, 3, 1, 1, b.newScale());
    const int e_gn2 = b.groupNorm("enc_gn2", e_c1, 2);
    const int e_a2 = b.silu("enc_silu2", e_gn2);
    const int e_c2 =
        b.conv2d("enc_conv2", e_a2, c0, 3, 1, 1, b.newScale());
    const int skip = b.add("enc_add", h0, e_c2); // kept for the decoder

    // Downsample to level 1 and widen.
    const int pooled = b.avgPool2x("down_pool", skip);
    const int d0 =
        b.conv2d("down_conv", pooled, c1, 3, 1, 1, b.newScale());

    // Bottleneck residual block + self attention at half resolution.
    const int b_gn1 = b.groupNorm("mid_gn1", d0, 2);
    const int b_a1 = b.silu("mid_silu1", b_gn1);
    const int b_c1 =
        b.conv2d("mid_conv1", b_a1, c1, 3, 1, 1, b.newScale());
    const int mid = b.add("mid_add", d0, b_c1);

    const int m_gn = b.groupNorm("mid_attn_gn", mid, 2);
    const int s_attn_in = b.newScale();
    const int mq = b.conv2d("mid_attn_q", m_gn, c1, 1, 1, 0, s_attn_in);
    const int mk = b.conv2d("mid_attn_k", m_gn, c1, 1, 1, 0, s_attn_in);
    const int mv = b.conv2d("mid_attn_v", m_gn, c1, 1, 1, 0, s_attn_in);
    const int mqt = b.nchwToTokens("mid_q_tok", mq);
    const int mkt = b.nchwToTokens("mid_k_tok", mk);
    const int mvt = b.nchwToTokens("mid_v_tok", mv);
    const int s_mq = b.newScale();
    const int s_mk = b.newScale();
    const int ms = b.attnScores("mid_qk", mqt, mkt, s_mq, s_mk);
    const int mss = b.affine("mid_scale", ms, inv_sqrt_c1, 0.0f);
    const int mp = b.softmax("mid_softmax", mss);
    const int s_mp = b.newScale();
    const int s_mv = b.newScale();
    const int mo = b.attnOutput("mid_pv", mp, mvt, s_mp, s_mv);
    const int mon = b.tokensToNchw("mid_o_nchw", mo, res / 2, res / 2);
    const int mproj =
        b.conv2d("mid_proj", mon, c1, 1, 1, 0, b.newScale());
    const int bott = b.add("mid_attn_add", mid, mproj);

    // Decoder: upsample, concat the level-0 skip, fuse.
    const int up = b.upsample2x("dec_up", bott);
    const int cat = b.concat("dec_concat", up, skip);
    const int fuse =
        b.conv2d("dec_fuse", cat, c0, 3, 1, 1, b.newScale());
    // fuse -> mix is a direct compute-to-compute edge: the dependency
    // analysis bypasses mix's difference calculation and fuse's
    // summation (the deep-UNet instance of the Section IV-B skip).
    const int mix = b.conv2d("dec_mix", fuse, c0, 1, 1, 0, b.newScale());
    const int d_gn = b.groupNorm("dec_gn", mix, 2);
    const int d_a = b.silu("dec_silu", d_gn);
    b.conv2d("dec_conv_out", d_a, ic, 3, 1, 1, b.newScale());
    return b.build();
}

ModelSpec
ditBlockSpec(const DitBlockConfig &cfg)
{
    const int64_t d = cfg.embedDim;
    const int64_t res = cfg.resolution;
    const int64_t ic = cfg.inChannels;
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

    GraphBuilder b("dit_block");
    b.setSeed(cfg.seed);
    b.setSteps(cfg.steps);

    const int x = b.input(ic, res);
    const int tok = b.nchwToTokens("patchify", x);
    const int e = b.fc("embed", tok, d, b.newScale());

    // Self-attention sub-block.
    const int ln1 = b.layerNorm("ln1", e);
    const int s_qkv = b.newScale(); // q/k/v quantize the same rows
    const int q = b.fc("attn_q", ln1, d, s_qkv);
    const int k = b.fc("attn_k", ln1, d, s_qkv);
    const int v = b.fc("attn_v", ln1, d, s_qkv);
    const int s_aq = b.newScale();
    const int s_ak = b.newScale();
    const int s = b.attnScores("attn_qk", q, k, s_aq, s_ak);
    const int ss = b.affine("attn_scale", s, inv_sqrt_d, 0.0f);
    const int p = b.softmax("attn_softmax", ss);
    const int s_ap = b.newScale();
    const int s_av = b.newScale();
    const int o = b.attnOutput("attn_pv", p, v, s_ap, s_av);
    // o -> proj is a direct compute-to-compute edge (diff-calc
    // bypass), the transformer instance of the Section IV-B skip.
    const int proj = b.fc("attn_proj", o, d, b.newScale());
    const int h1 = b.add("attn_residual", e, proj);

    // GeLU MLP sub-block.
    const int ln2 = b.layerNorm("ln2", h1);
    const int m1 =
        b.fc("mlp_fc1", ln2, d * cfg.mlpRatio, b.newScale());
    const int gg = b.gelu("mlp_gelu", m1);
    const int m2 = b.fc("mlp_fc2", gg, d, b.newScale());
    const int h2 = b.add("mlp_residual", h1, m2);

    const int un = b.fc("unembed", h2, ic, b.newScale());
    b.tokensToNchw("unpatchify", un, res, res);
    return b.build();
}

ModelSpec
mhsaBlockSpec(const MhsaBlockConfig &cfg)
{
    const int64_t d = cfg.embedDim;
    const int64_t nh = cfg.heads;
    DITTO_ASSERT(nh >= 1 && d % nh == 0,
                 "heads must divide the embedding width");
    const int64_t dh = d / nh;
    const int64_t res = cfg.resolution;
    const int64_t ic = cfg.inChannels;
    const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

    GraphBuilder b("mhsa_block");
    b.setSeed(cfg.seed);
    b.setSteps(cfg.steps);

    const int x = b.input(ic, res);
    const int tok = b.nchwToTokens("patchify", x);
    const int e = b.fc("embed", tok, d, b.newScale());

    // Multi-head self attention: per-head q/k/v projections of the
    // shared normalized rows, per-head attention, per-head output
    // projections back to width d combined by a head-sum Add chain
    // (the algebraic form of concat-heads-then-project). The head sum
    // is a token-domain junction: head_merge consumes the per-head
    // projections' requantized deltas through one JunctionPlan.
    const int ln1 = b.layerNorm("ln1", e);
    const int s_qkv = b.newScale(); // all heads quantize the same rows
    int head_sum = -1;
    for (int64_t hh = 0; hh < nh; ++hh) {
        const std::string tag = "h" + std::to_string(hh);
        const int q = b.fc("attn_q_" + tag, ln1, dh, s_qkv);
        const int k = b.fc("attn_k_" + tag, ln1, dh, s_qkv);
        const int v = b.fc("attn_v_" + tag, ln1, dh, s_qkv);
        const int s = b.attnScores("attn_qk_" + tag, q, k, b.newScale(),
                                   b.newScale());
        const int ss =
            b.affine("attn_scale_" + tag, s, inv_sqrt_dh, 0.0f);
        const int p = b.softmax("attn_softmax_" + tag, ss);
        const int o = b.attnOutput("attn_pv_" + tag, p, v, b.newScale(),
                                   b.newScale());
        const int proj = b.fc("attn_proj_" + tag, o, d, b.newScale());
        head_sum = hh == 0
                       ? proj
                       : b.add("head_sum_" + std::to_string(hh),
                               head_sum, proj);
    }
    const int merge = b.fc("head_merge", head_sum, d, b.newScale());
    const int h1 = b.add("attn_residual", e, merge);

    // GeLU MLP sub-block.
    const int ln2 = b.layerNorm("ln2", h1);
    const int m1 = b.fc("mlp_fc1", ln2, d * cfg.mlpRatio, b.newScale());
    const int gg = b.gelu("mlp_gelu", m1);
    const int m2 = b.fc("mlp_fc2", gg, d, b.newScale());
    // unembed consumes add(add(embed, head_merge), mlp_fc2): the
    // residual chain is a second junction fold (sources embed,
    // head_merge, mlp_fc2 — mlp_fc2 never materializes float output).
    const int h2 = b.add("mlp_residual", h1, m2);

    const int un = b.fc("unembed", h2, ic, b.newScale());
    b.tokensToNchw("unpatchify", un, res, res);
    return b.build();
}

ModelSpec
ditAdaLnSpec(const DitAdaLnConfig &cfg)
{
    const int64_t d = cfg.embedDim;
    const int64_t res = cfg.resolution;
    const int64_t ic = cfg.inChannels;
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

    GraphBuilder b("dit_adaln");
    b.setSeed(cfg.seed);
    b.setSteps(cfg.steps);

    const int x = b.input(ic, res);
    const int tok = b.nchwToTokens("patchify", x);
    const int e = b.fc("embed", tok, d, b.newScale());

    // adaLN-Zero-style modulation with per-model constants standing in
    // for the conditioning MLP's output at a fixed timestep embedding:
    // scale/shift after each LayerNorm, a gate on each residual
    // branch. Scale ops are diff-transparent to the analysis, but the
    // gate Affine between attn_proj and the residual Add keeps the
    // software junction fold conservative here (see presets.h).
    const int ln1 = b.layerNorm("ln1", e);
    const int mod1 = b.affine("adaln_mod1", ln1, cfg.scale1, cfg.shift1);
    const int s_qkv = b.newScale();
    const int q = b.fc("attn_q", mod1, d, s_qkv);
    const int k = b.fc("attn_k", mod1, d, s_qkv);
    const int v = b.fc("attn_v", mod1, d, s_qkv);
    const int s = b.attnScores("attn_qk", q, k, b.newScale(),
                               b.newScale());
    const int ss = b.affine("attn_scale", s, inv_sqrt_d, 0.0f);
    const int p = b.softmax("attn_softmax", ss);
    const int o = b.attnOutput("attn_pv", p, v, b.newScale(),
                               b.newScale());
    const int proj = b.fc("attn_proj", o, d, b.newScale());
    const int gated1 = b.affine("adaln_gate1", proj, cfg.gate1, 0.0f);
    const int h1 = b.add("attn_residual", e, gated1);

    const int ln2 = b.layerNorm("ln2", h1);
    const int mod2 = b.affine("adaln_mod2", ln2, cfg.scale2, cfg.shift2);
    const int m1 = b.fc("mlp_fc1", mod2, d * cfg.mlpRatio, b.newScale());
    const int gg = b.gelu("mlp_gelu", m1);
    const int m2 = b.fc("mlp_fc2", gg, d, b.newScale());
    const int gated2 = b.affine("adaln_gate2", m2, cfg.gate2, 0.0f);
    const int h2 = b.add("mlp_residual", h1, gated2);

    const int un = b.fc("unembed", h2, ic, b.newScale());
    b.tokensToNchw("unpatchify", un, res, res);
    return b.build();
}

} // namespace ditto
