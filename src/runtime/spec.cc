/**
 * @file
 * ModelSpec builder, content hashing and lowering to the layer IR.
 */
#include "runtime/spec.h"

#include <bit>

#include "common/logging.h"
#include "trace/calibrate.h"

namespace ditto {

const char *
rtOpName(RtOp op)
{
    switch (op) {
      case RtOp::Input: return "Input";
      case RtOp::Conv2d: return "Conv2d";
      case RtOp::Fc: return "FC";
      case RtOp::AttnScores: return "AttnScores";
      case RtOp::AttnOutput: return "AttnOutput";
      case RtOp::CrossScores: return "CrossScores";
      case RtOp::CrossOutput: return "CrossOutput";
      case RtOp::GroupNorm: return "GroupNorm";
      case RtOp::LayerNorm: return "LayerNorm";
      case RtOp::SiLU: return "SiLU";
      case RtOp::GeLU: return "GeLU";
      case RtOp::Softmax: return "Softmax";
      case RtOp::Add: return "Add";
      case RtOp::Affine: return "Affine";
      case RtOp::Concat: return "Concat";
      case RtOp::Upsample2x: return "Upsample2x";
      case RtOp::AvgPool2x: return "AvgPool2x";
      case RtOp::NchwToTokens: return "NchwToTokens";
      case RtOp::TokensToNchw: return "TokensToNchw";
    }
    DITTO_PANIC("unknown RtOp");
}

bool
rtIsCompute(RtOp op)
{
    switch (op) {
      case RtOp::Conv2d:
      case RtOp::Fc:
      case RtOp::AttnScores:
      case RtOp::AttnOutput:
      case RtOp::CrossScores:
      case RtOp::CrossOutput:
        return true;
      default:
        return false;
    }
}

bool
rtIsReshape(RtOp op)
{
    return op == RtOp::NchwToTokens || op == RtOp::TokensToNchw;
}

namespace {

/** Layer IR kind of a runtime op; reshapes never reach this. */
OpKind
layerKind(RtOp op)
{
    switch (op) {
      case RtOp::Input: return OpKind::Input;
      case RtOp::Conv2d: return OpKind::Conv2d;
      case RtOp::Fc: return OpKind::Fc;
      case RtOp::AttnScores: return OpKind::AttnQK;
      case RtOp::AttnOutput: return OpKind::AttnPV;
      case RtOp::CrossScores: return OpKind::CrossQK;
      case RtOp::CrossOutput: return OpKind::CrossPV;
      case RtOp::GroupNorm: return OpKind::GroupNorm;
      case RtOp::LayerNorm: return OpKind::LayerNorm;
      case RtOp::SiLU: return OpKind::SiLU;
      case RtOp::GeLU: return OpKind::GeLU;
      case RtOp::Softmax: return OpKind::Softmax;
      case RtOp::Add: return OpKind::Add;
      case RtOp::Affine: return OpKind::Scale;
      case RtOp::Concat: return OpKind::Concat;
      case RtOp::Upsample2x: return OpKind::Upsample;
      case RtOp::AvgPool2x: return OpKind::Pool;
      case RtOp::NchwToTokens:
      case RtOp::TokensToNchw:
        break;
    }
    DITTO_PANIC("reshape nodes have no layer kind");
}

uint64_t
hashShape(uint64_t h, const Shape &s)
{
    h = hashMix(h, static_cast<uint64_t>(s.rank()));
    for (int i = 0; i < s.rank(); ++i)
        h = hashMix(h, static_cast<uint64_t>(s[i]));
    return h;
}

} // namespace

uint64_t
ModelSpec::hash() const
{
    uint64_t h = hashMix(0xD177'09A9, seed);
    h = hashMix(h, static_cast<uint64_t>(steps));
    h = hashShape(h, inputShape);
    h = hashMix(h, static_cast<uint64_t>(numScales));
    h = hashMix(h, static_cast<uint64_t>(weights.size()));
    for (const WeightSpec &w : weights) {
        h = hashShape(h, w.shape);
        h = hashMix(h, static_cast<uint64_t>(w.fanIn));
    }
    h = hashMix(h, static_cast<uint64_t>(nodes.size()));
    for (const NodeSpec &n : nodes) {
        h = hashMix(h, static_cast<uint64_t>(n.op));
        for (int in : n.inputs)
            h = hashMix(h, static_cast<uint64_t>(in));
        h = hashShape(h, n.outShape);
        h = hashMix(h, static_cast<uint64_t>(n.weight));
        h = hashMix(h, static_cast<uint64_t>(n.context));
        h = hashMix(h, static_cast<uint64_t>(n.conv.inChannels));
        h = hashMix(h, static_cast<uint64_t>(n.conv.outChannels));
        h = hashMix(h, static_cast<uint64_t>(n.conv.kernel));
        h = hashMix(h, static_cast<uint64_t>(n.conv.stride));
        h = hashMix(h, static_cast<uint64_t>(n.conv.padding));
        h = hashMix(h, static_cast<uint64_t>(n.scaleIn));
        h = hashMix(h, static_cast<uint64_t>(n.scaleIn2));
        h = hashMix(h, std::bit_cast<uint32_t>(n.affineScale));
        h = hashMix(h, std::bit_cast<uint32_t>(n.affineShift));
        h = hashMix(h, static_cast<uint64_t>(n.groups));
    }
    return h;
}

ModelGraph
ModelSpec::toGraph(std::vector<int> *nodeToLayer) const
{
    ModelGraph graph(name);
    std::vector<int> map(nodes.size(), -1);
    for (const NodeSpec &n : nodes) {
        if (rtIsReshape(n.op)) {
            // Reshapes are element bijections: collapse into the
            // producer edge so the dependency walk sees wire.
            map[static_cast<size_t>(n.id)] =
                map[static_cast<size_t>(n.inputs[0])];
            continue;
        }
        Layer l;
        l.name = n.name;
        l.kind = layerKind(n.op);
        for (int in : n.inputs)
            l.inputs.push_back(map[static_cast<size_t>(in)]);
        l.outputElems = n.outShape.numel();
        if (!n.inputs.empty())
            l.inputElems =
                nodes[static_cast<size_t>(n.inputs[0])].outShape.numel();
        switch (n.op) {
          case RtOp::Conv2d: {
            const int64_t oh = n.outShape[2];
            const int64_t ow = n.outShape[3];
            l.weightElems = n.conv.outChannels * n.conv.inChannels *
                            n.conv.kernel * n.conv.kernel;
            l.macs = n.outShape[0] * n.conv.outChannels *
                     n.conv.inChannels * n.conv.kernel * n.conv.kernel *
                     oh * ow;
            break;
          }
          case RtOp::Fc: {
            const Shape &in =
                nodes[static_cast<size_t>(n.inputs[0])].outShape;
            l.weightElems = n.outShape[1] * in[1];
            l.macs = in[0] * in[1] * n.outShape[1];
            break;
          }
          case RtOp::AttnScores:
          case RtOp::AttnOutput: {
            const Shape &a =
                nodes[static_cast<size_t>(n.inputs[0])].outShape;
            const Shape &b =
                nodes[static_cast<size_t>(n.inputs[1])].outShape;
            l.inputElems2 = b.numel();
            l.tokens = a[0];
            l.dim = n.op == RtOp::AttnScores ? a[1] : b[1];
            l.heads = 1;
            l.macs = n.outShape[0] * n.outShape[1] *
                     (n.op == RtOp::AttnScores ? a[1] : b[0]);
            break;
          }
          case RtOp::CrossScores:
          case RtOp::CrossOutput: {
            const Shape &a =
                nodes[static_cast<size_t>(n.inputs[0])].outShape;
            const Shape &ctx = weights[static_cast<size_t>(n.context)]
                                   .shape;
            l.tokens = a[0];
            l.ctxTokens = ctx[0];
            l.dim = n.op == RtOp::CrossScores ? a[1] : n.outShape[1];
            l.heads = 1;
            // K'/V' is a weight from the hardware's point of view.
            l.weightElems = ctx[0] * l.dim;
            l.macs = n.outShape[0] * n.outShape[1] * a[1];
            break;
          }
          default:
            l.vectorOps = n.outShape.numel();
            break;
        }
        map[static_cast<size_t>(n.id)] = graph.addLayer(std::move(l));
    }
    if (nodeToLayer)
        *nodeToLayer = std::move(map);
    return graph;
}

GraphBuilder::GraphBuilder(std::string name)
{
    spec_.name = std::move(name);
}

void
GraphBuilder::setSteps(int steps)
{
    DITTO_ASSERT(steps >= 1, "a spec needs at least one step");
    spec_.steps = steps;
}

int
GraphBuilder::newScale()
{
    return spec_.numScales++;
}

int
GraphBuilder::contextWeight(int64_t tokens, int64_t dim)
{
    DITTO_ASSERT(tokens >= 1 && dim >= 1, "bad context geometry");
    spec_.weights.push_back({Shape{tokens, dim}, 0});
    return static_cast<int>(spec_.weights.size()) - 1;
}

const NodeSpec &
GraphBuilder::node(int id) const
{
    DITTO_ASSERT(id >= 0 &&
                 id < static_cast<int>(spec_.nodes.size()),
                 "node id out of range");
    return spec_.nodes[static_cast<size_t>(id)];
}

const Shape &
GraphBuilder::shapeOf(int id) const
{
    return node(id).outShape;
}

int
GraphBuilder::addNode(NodeSpec n)
{
    n.id = static_cast<int>(spec_.nodes.size());
    for (int in : n.inputs)
        DITTO_ASSERT(in >= 0 && in < n.id,
                     "node '" << n.name
                              << "' references a later/unknown producer");
    spec_.nodes.push_back(std::move(n));
    return spec_.nodes.back().id;
}

int
GraphBuilder::input(int64_t channels, int64_t resolution)
{
    DITTO_ASSERT(!haveInput_, "a spec has exactly one input");
    haveInput_ = true;
    spec_.inputShape = Shape{1, channels, resolution, resolution};
    NodeSpec n;
    n.op = RtOp::Input;
    n.name = "input";
    n.outShape = spec_.inputShape;
    return addNode(std::move(n));
}

int
GraphBuilder::conv2d(const std::string &name, int in, int64_t outChannels,
                     int64_t kernel, int64_t stride, int64_t padding,
                     int scale)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 4, "conv2d input must be NCHW");
    NodeSpec n;
    n.op = RtOp::Conv2d;
    n.name = name;
    n.inputs = {in};
    n.conv = Conv2dParams{s[1], outChannels, kernel, stride, padding};
    n.outShape = Shape{s[0], outChannels, n.conv.outExtent(s[2]),
                       n.conv.outExtent(s[3])};
    n.scaleIn = scale;
    spec_.weights.push_back(
        {Shape{outChannels, s[1], kernel, kernel}, s[1] * kernel * kernel});
    n.weight = static_cast<int>(spec_.weights.size()) - 1;
    return addNode(std::move(n));
}

int
GraphBuilder::fc(const std::string &name, int in, int64_t outFeatures,
                 int scale)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 2, "fc input must be a token matrix");
    NodeSpec n;
    n.op = RtOp::Fc;
    n.name = name;
    n.inputs = {in};
    n.outShape = Shape{s[0], outFeatures};
    n.scaleIn = scale;
    spec_.weights.push_back({Shape{outFeatures, s[1]}, s[1]});
    n.weight = static_cast<int>(spec_.weights.size()) - 1;
    return addNode(std::move(n));
}

int
GraphBuilder::attnScores(const std::string &name, int q, int k, int scaleQ,
                         int scaleK)
{
    const Shape &sq = shapeOf(q);
    const Shape &sk = shapeOf(k);
    DITTO_ASSERT(sq.rank() == 2 && sk.rank() == 2 && sq[1] == sk[1],
                 "attention operands must share the feature dimension");
    NodeSpec n;
    n.op = RtOp::AttnScores;
    n.name = name;
    n.inputs = {q, k};
    n.outShape = Shape{sq[0], sk[0]};
    n.scaleIn = scaleQ;
    n.scaleIn2 = scaleK;
    return addNode(std::move(n));
}

int
GraphBuilder::attnOutput(const std::string &name, int p, int v, int scaleP,
                         int scaleV)
{
    const Shape &sp = shapeOf(p);
    const Shape &sv = shapeOf(v);
    DITTO_ASSERT(sp.rank() == 2 && sv.rank() == 2 && sp[1] == sv[0],
                 "attention P/V geometry mismatch");
    NodeSpec n;
    n.op = RtOp::AttnOutput;
    n.name = name;
    n.inputs = {p, v};
    n.outShape = Shape{sp[0], sv[1]};
    n.scaleIn = scaleP;
    n.scaleIn2 = scaleV;
    return addNode(std::move(n));
}

int
GraphBuilder::crossScores(const std::string &name, int q, int ctx,
                          int scaleQ)
{
    const Shape &sq = shapeOf(q);
    DITTO_ASSERT(sq.rank() == 2, "cross scores input must be tokens");
    DITTO_ASSERT(ctx >= 0 &&
                 ctx < static_cast<int>(spec_.weights.size()) &&
                 spec_.weights[static_cast<size_t>(ctx)].fanIn == 0,
                 "cross attention needs a contextWeight() index");
    const Shape &sc = spec_.weights[static_cast<size_t>(ctx)].shape;
    NodeSpec n;
    n.op = RtOp::CrossScores;
    n.name = name;
    n.inputs = {q};
    n.outShape = Shape{sq[0], sc[0]};
    n.scaleIn = scaleQ;
    n.context = ctx;
    // K-projection: K' = context x W^T, W [d, ctxDim].
    spec_.weights.push_back({Shape{sq[1], sc[1]}, sc[1]});
    n.weight = static_cast<int>(spec_.weights.size()) - 1;
    return addNode(std::move(n));
}

int
GraphBuilder::crossOutput(const std::string &name, int p, int ctx,
                          int64_t outDim, int scaleP)
{
    const Shape &sp = shapeOf(p);
    DITTO_ASSERT(ctx >= 0 &&
                 ctx < static_cast<int>(spec_.weights.size()) &&
                 spec_.weights[static_cast<size_t>(ctx)].fanIn == 0,
                 "cross attention needs a contextWeight() index");
    const Shape &sc = spec_.weights[static_cast<size_t>(ctx)].shape;
    DITTO_ASSERT(sp.rank() == 2 && sp[1] == sc[0],
                 "cross P operand must span the context tokens");
    NodeSpec n;
    n.op = RtOp::CrossOutput;
    n.name = name;
    n.inputs = {p};
    n.outShape = Shape{sp[0], outDim};
    n.scaleIn = scaleP;
    n.context = ctx;
    // V-projection: V' = context x W^T, W [outDim, ctxDim].
    spec_.weights.push_back({Shape{outDim, sc[1]}, sc[1]});
    n.weight = static_cast<int>(spec_.weights.size()) - 1;
    return addNode(std::move(n));
}

int
GraphBuilder::groupNorm(const std::string &name, int in, int64_t groups)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 4 && s[1] % groups == 0,
                 "groupNorm groups must divide the channels");
    NodeSpec n;
    n.op = RtOp::GroupNorm;
    n.name = name;
    n.inputs = {in};
    n.outShape = s;
    n.groups = groups;
    return addNode(std::move(n));
}

int
GraphBuilder::layerNorm(const std::string &name, int in)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 2, "layerNorm input must be a matrix");
    NodeSpec n;
    n.op = RtOp::LayerNorm;
    n.name = name;
    n.inputs = {in};
    n.outShape = s;
    return addNode(std::move(n));
}

int
GraphBuilder::silu(const std::string &name, int in)
{
    NodeSpec n;
    n.op = RtOp::SiLU;
    n.name = name;
    n.inputs = {in};
    n.outShape = shapeOf(in);
    return addNode(std::move(n));
}

int
GraphBuilder::gelu(const std::string &name, int in)
{
    NodeSpec n;
    n.op = RtOp::GeLU;
    n.name = name;
    n.inputs = {in};
    n.outShape = shapeOf(in);
    return addNode(std::move(n));
}

int
GraphBuilder::softmax(const std::string &name, int in)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 2, "softmax input must be a matrix");
    NodeSpec n;
    n.op = RtOp::Softmax;
    n.name = name;
    n.inputs = {in};
    n.outShape = s;
    return addNode(std::move(n));
}

int
GraphBuilder::add(const std::string &name, int a, int b)
{
    DITTO_ASSERT(shapeOf(a) == shapeOf(b), "add operand shape mismatch");
    NodeSpec n;
    n.op = RtOp::Add;
    n.name = name;
    n.inputs = {a, b};
    n.outShape = shapeOf(a);
    return addNode(std::move(n));
}

int
GraphBuilder::affine(const std::string &name, int in, float scale,
                     float shift)
{
    NodeSpec n;
    n.op = RtOp::Affine;
    n.name = name;
    n.inputs = {in};
    n.outShape = shapeOf(in);
    n.affineScale = scale;
    n.affineShift = shift;
    return addNode(std::move(n));
}

int
GraphBuilder::concat(const std::string &name, int a, int b)
{
    const Shape &sa = shapeOf(a);
    const Shape &sb = shapeOf(b);
    DITTO_ASSERT(sa.rank() == 4 && sb.rank() == 4 && sa[0] == sb[0] &&
                 sa[2] == sb[2] && sa[3] == sb[3],
                 "concat needs NCHW maps of equal extent");
    NodeSpec n;
    n.op = RtOp::Concat;
    n.name = name;
    n.inputs = {a, b};
    n.outShape = Shape{sa[0], sa[1] + sb[1], sa[2], sa[3]};
    return addNode(std::move(n));
}

int
GraphBuilder::upsample2x(const std::string &name, int in)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 4, "upsample input must be NCHW");
    NodeSpec n;
    n.op = RtOp::Upsample2x;
    n.name = name;
    n.inputs = {in};
    n.outShape = Shape{s[0], s[1], s[2] * 2, s[3] * 2};
    return addNode(std::move(n));
}

int
GraphBuilder::avgPool2x(const std::string &name, int in)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 4 && s[2] % 2 == 0 && s[3] % 2 == 0,
                 "avgPool2x needs even spatial extents");
    NodeSpec n;
    n.op = RtOp::AvgPool2x;
    n.name = name;
    n.inputs = {in};
    n.outShape = Shape{s[0], s[1], s[2] / 2, s[3] / 2};
    return addNode(std::move(n));
}

int
GraphBuilder::nchwToTokens(const std::string &name, int in)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 4, "nchwToTokens input must be NCHW");
    NodeSpec n;
    n.op = RtOp::NchwToTokens;
    n.name = name;
    n.inputs = {in};
    n.outShape = Shape{s[0] * s[2] * s[3], s[1]};
    return addNode(std::move(n));
}

int
GraphBuilder::tokensToNchw(const std::string &name, int in, int64_t h,
                           int64_t w)
{
    const Shape &s = shapeOf(in);
    DITTO_ASSERT(s.rank() == 2 && s[0] % (h * w) == 0,
                 "tokensToNchw row count must be a multiple of h*w");
    NodeSpec n;
    n.op = RtOp::TokensToNchw;
    n.name = name;
    n.inputs = {in};
    n.outShape = Shape{s[0] / (h * w), s[1], h, w};
    return addNode(std::move(n));
}

ModelSpec
GraphBuilder::build()
{
    DITTO_ASSERT(haveInput_, "a spec needs an input node");
    DITTO_ASSERT(!spec_.nodes.empty(), "a spec needs nodes");
    DITTO_ASSERT(spec_.nodes.back().outShape == spec_.inputShape,
                 "the output node must predict noise of the input shape "
                     << spec_.inputShape.toString() << ", got "
                     << spec_.nodes.back().outShape.toString());
    return std::move(spec_);
}

} // namespace ditto
