/**
 * @file
 * CompiledModel: a ModelSpec compiled into a runnable Ditto program.
 *
 * compile() lowers a spec to the layer IR (ModelSpec::toGraph), runs
 * Defo's static dependency analysis (ModelGraph::analyzeDependencies,
 * paper Section IV-B) and builds a topologically-ordered program of
 * engine nodes: every weight-stationary layer owns a persistent
 * DiffConvEngine / DiffFcEngine / CrossAttentionEngine, attention
 * layers route through the two-term difference expansion, and the
 * per-node dependency verdict decides how difference state flows:
 *
 *  - diffCalcNeeded == false and the operand arrives from a single
 *    compute producer through reshape-only wire: the node stores *no*
 *    previous-input codes. Its producer requantizes its own resident
 *    accumulator pair into the consumer's code domain and hands the
 *    code difference over (runDiffPre) — the software realization of
 *    "the producer's output is already a difference".
 *  - diffCalcNeeded == false and the operand arrives through a
 *    junction subtree (Add / Concat, optionally one Upsample2x /
 *    AvgPool2x hop) of compute producers: the node owns a
 *    JunctionPlan. At run time the plan folds the producers' resident
 *    accumulator pairs straight into consumer-scale codes plus a code
 *    difference (the multi-producer requant-delta primitives in
 *    quant/encoder.h) — the junction itself never materializes float
 *    values and the consumer still stores no previous-input codes.
 *  - dynamic-attention operands arriving from a compute producer
 *    through reshape-only wire are handed over the same way, per
 *    operand: the attention node quantizes nothing from float for
 *    that operand and stores no previous codes for it (the expansion's
 *    previous operand is reconstructed exactly as codes - diff).
 *  - a node materializes its float output only when some executed
 *    consumer actually reads it (the f-liveness pass): producers whose
 *    every consumer takes the difference skip summation, and junction
 *    subtrees that are fully plan-covered never execute at all.
 *    OpCounts::diffCalcElems / summationElems record exactly the work
 *    that was and wasn't done, which is what the dependency-skip and
 *    junction tests assert on.
 *
 * All transformations are bitwise-exact: the requantized (combined)
 * difference equals the subtraction of the codes the consumer would
 * have stored, element for element, so compiled execution of the
 * MiniUnet preset reproduces the legacy hand-wired model bit for bit
 * in every mode (the golden parity suite in tests/test_runtime.cc),
 * and every spec runs bit-identical with useDependencyAnalysis on and
 * off. See docs/graph_runtime.md for the scale-alignment algebra.
 *
 * The compiled surface mirrors the historic MiniUnet API: forward /
 * forwardBatch / rollout / rolloutBatch / requestNoise with
 * DittoState / BatchDittoState, so the serving layer (src/serve/)
 * drives any compiled spec. Activation scales are calibrated by an
 * FP32 rollout and disk-cached keyed on the spec's content hash
 * (src/trace/calibrate.h).
 */
#ifndef DITTO_RUNTIME_COMPILED_H
#define DITTO_RUNTIME_COMPILED_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/attention_diff.h"
#include "core/diff_linear.h"
#include "core/run_mode.h"
#include "quant/quantizer.h"
#include "runtime/spec.h"
#include "tensor/tensor.h"

namespace ditto {

/** Compilation options. */
struct CompileOptions
{
    /**
     * Honor the static dependency analysis (diff-calc bypass and
     * summation skip). Off compiles every boundary as a full-value
     * boundary — the naive algorithm the paper's Fig. 8 compares
     * against; results are bitwise identical either way.
     */
    bool useDependencyAnalysis = true;

    /** Engine policy: Auto (Defo reversion) or ForceDiff (tests). */
    DiffPolicy policy = DiffPolicy::Auto;

    /**
     * RunMode::ApproxDitto stability threshold: a block is skipped
     * when the activity fraction of its Defo probe,
     * (0.5*low4 + full8)/total, is at or below this value. 0 skips
     * only bitwise-identical steps (ApproxDitto == QuantDitto);
     * negative resolves DITTO_APPROX_SKIP_THRESH at compile().
     */
    double approxSkipThresh = -1.0;

    /**
     * Most consecutive ApproxDitto skips of one block before it must
     * execute; <= 0 resolves DITTO_APPROX_MAX_CONSEC at compile().
     */
    int approxMaxConsec = 0;
};

/** A ModelSpec compiled into an executable engine program. */
class CompiledModel
{
  public:
    /** Per-layer state for difference processing across steps. */
    struct DittoState
    {
        std::vector<Int8Tensor> prevIn;   //!< previous input codes
        std::vector<Int32Tensor> prevOut; //!< previous int32 outputs
        bool primed = false;

        /**
         * ApproxDitto bookkeeping, one entry per program node (lazily
         * sized by the first approx pass; exact modes never touch it):
         * the node's current consecutive-skip run and its total skips.
         */
        std::vector<int32_t> consec;
        std::vector<int64_t> skips;
    };

    /**
     * Per-layer state for a *batch* of concurrent Ditto requests:
     * every slot holds the requests' tensors stacked along the batch
     * (NCHW) or row (token-matrix) dimension, one primed flag per
     * slab. Slab b of every slot always belongs to the same request;
     * the serving layer edits the batch with appendSlabs / removeSlab
     * / resetSlab as requests join or finish (see src/serve/).
     */
    struct BatchDittoState
    {
        std::vector<Int8Tensor> prevIn;
        std::vector<Int32Tensor> prevOut;
        std::vector<uint8_t> primed;

        /**
         * Per-slab ApproxDitto enable: slab b may only be skipped when
         * approx[b] is set (the serving layer batches exact and approx
         * requests together; exact slabs keep the bitwise guarantee).
         * Maintained slab-parallel to `primed`.
         */
        std::vector<uint8_t> approx;

        /**
         * ApproxDitto bookkeeping in [slab][node] layout (stride =
         * node count), lazily sized by the first approx pass: per-slab
         * consecutive-skip runs and total skip counts.
         */
        std::vector<int32_t> consec;
        std::vector<int64_t> skips;

        int64_t batch() const
        {
            return static_cast<int64_t>(primed.size());
        }

        /** Append one unprimed slab (a request joining the batch). */
        void appendSlab() { appendSlabs(1); }

        /** Append `count` unprimed slabs in one reallocation. */
        void appendSlabs(int64_t count);

        /** Remove slab `i`; later slabs shift down. */
        void removeSlab(int64_t i);

        /**
         * Hand slab `i` to a new request in place: clears its primed
         * and approx flags and zeroes its consecutive-skip counters —
         * stale approx reuse state from the previous occupant must not
         * leak into the new request's skip decisions. The stale
         * tensors themselves are never read while unprimed (the
         * continuous-batching fast path).
         */
        void resetSlab(int64_t i);

        /**
         * Everything one slab contributes to the batch state, in
         * standalone (batch-of-one) shapes — the park/resume transport
         * for ApproxDitto requests, whose reuse caches and skip
         * counters must survive preemption bitwise (src/serve/).
         */
        struct SlabState
        {
            std::vector<Int8Tensor> prevIn;
            std::vector<Int32Tensor> prevOut;
            uint8_t primed = 0;
            uint8_t approx = 0;
            std::vector<int32_t> consec;
            std::vector<int64_t> skips;

            /**
             * Opaque shared owner of whatever this state was built
             * from — e.g. an inter-request reuse-cache entry
             * (src/serve/reuse_cache.h). installSlab copies the
             * tensors byte for byte but parks this reference
             * slab-parallel in `backRefs`, so the source object stays
             * alive for exactly as long as some slab claims descent
             * from it. Null for states extracted from a batch.
             */
            std::shared_ptr<const void> backRef;

            /**
             * Heap footprint of the tensors and counters, in bytes.
             * The one accounting number shared by the reuse cache's
             * byte budget (src/serve/reuse_cache.cc) and the shard
             * codec's wire-size estimate (src/shard/slab_codec.cc) —
             * budgets mean the same thing for resident and relocated
             * slabs.
             */
            int64_t payloadBytes() const;
        };

        /**
         * Slab-parallel back-references to the external objects the
         * slabs were installed from (SlabState::backRef). resetSlab,
         * removeSlab and every slot-recycle path built on them MUST
         * drop the slab's reference: a cache entry evicted elsewhere
         * must never be kept alive by — or alias — a live slot's
         * buffers (tests/test_reuse.cc BackRef suite).
         */
        std::vector<std::shared_ptr<const void>> backRefs;

        /**
         * Copy slab `i` out into standalone shapes. The copy owns its
         * buffers outright, so the returned state carries no backRef.
         */
        SlabState extractSlab(int64_t i) const;

        /**
         * Install `s` into slab `i` (which must exist), materializing
         * any still-empty slot tensors as zero-filled stacks. Adopts
         * `s.backRef` into `backRefs[i]`.
         */
        void installSlab(int64_t i, const SlabState &s);
    };

    const ModelSpec &spec() const { return spec_; }
    const ModelGraph &graph() const { return graph_; }

    /** Dependency verdicts per graph layer (compile-time analysis). */
    const std::vector<LayerDependency> &dependencies() const
    {
        return deps_;
    }

    /**
     * Operands that consume their producer's difference directly:
     * weight-stationary single-producer hand-overs, junction-plan
     * folds, and per-operand dynamic-attention hand-overs (an
     * attention node with both operands handed over counts twice).
     */
    int numDiffBypassNodes() const { return numBypass_; }
    /** Nodes that never materialize a float output in quant modes. */
    int numSumSkipNodes() const { return numSumSkip_; }

    /** One row of the per-node compiled-wiring report. */
    struct NodeReport
    {
        std::string name;
        RtOp op;
        int layer = -1;       //!< graph layer id (-1: reshape wire)
        bool compute = false;
        bool diffBypass = false;  //!< operand 0 handed over / folded
        bool diffBypass2 = false; //!< attention operand 1 handed over
        bool junction = false;    //!< operand built by a JunctionPlan
        bool sumSkip = false;     //!< float output never materialized
        bool emitsPayload = false;
        bool deadStructural = false; //!< plan-covered, never executes
        /**
         * Per-slab output elements of a compute node (0 otherwise):
         * the elements one ApproxDitto skip of this node replays, so
         * sum(nodeSkips[i] * outElems[i]) == OpCounts::reusedElems.
         */
        int64_t outElems = 0;
    };

    /**
     * Per-node compiled wiring, in program order — what the dependency
     * verdicts actually turned into in software. graph_models
     * --verdicts prints this next to the per-layer analysis so a layer
     * that reverted at run time (Defo) is distinguishable from one the
     * compiler could not wire through a junction.
     */
    std::vector<NodeReport> nodeReports() const;

    const Shape &inputShape() const { return spec_.inputShape; }
    int defaultSteps() const { return spec_.steps; }

    /**
     * Slot counts of the compiled difference program's DittoState
     * (previous-input code slots / previous-output slots). A relocated
     * slab (src/shard/slab_codec.h) is only installable into a model
     * with the same slot geometry; the shard worker validates these —
     * plus the spec hash and calibration digest — *before* install, so
     * a mismatched slab is rejected gracefully at the wire instead of
     * tripping installSlab's assertions.
     */
    int numStateInSlots() const { return numInSlots_; }
    int numStateOutSlots() const { return numOutSlots_; }

    /** MACs of one denoising step (all steady-state compute layers). */
    int64_t macsPerStep() const { return macsPerStep_; }

    /**
     * One denoising-model evaluation (predicted noise), x shaped
     * inputShape(). `state` is required (and used) only for
     * RunMode::QuantDitto; pass the same object for consecutive steps.
     */
    FloatTensor forward(const FloatTensor &x, RunMode mode,
                        DittoState *state, OpCounts *counts) const;

    /**
     * One evaluation for a stacked batch of requests: x is
     * [B, C, H, W] and every request's slab is computed with exactly
     * the arithmetic of forward() on its own tensors — batched results
     * are bitwise identical to per-request rollouts at any thread
     * count and batch size.
     *
     * @param state required for RunMode::QuantDitto; its batch() must
     *        equal x's batch dimension.
     * @param counts per-request tallies (array of B, or null).
     */
    FloatTensor forwardBatch(const FloatTensor &x, RunMode mode,
                             BatchDittoState *state,
                             OpCounts *counts) const;

    /** Full reverse diffusion from the model's own seeded noise. */
    RolloutResult rollout(RunMode mode) const;

    /**
     * Reverse diffusion from caller-provided noise (shape-checked
     * loudly). @param steps 0 uses defaultSteps().
     */
    RolloutResult rollout(RunMode mode, const FloatTensor &noise,
                          int steps = 0) const;

    /**
     * Per-step rollout checkpoint hook: invoked after each step's
     * image update with the number of completed steps (1-based), the
     * current image and the resident difference state. Because the
     * update rule carries no timestep embedding, (x, state) after k
     * steps is a pure function of (model, noise, mode, k) — never of
     * the total step count — which is exactly what makes a checkpoint
     * a reusable prefix for any longer request with the same identity
     * (docs/reuse_cache.md). The state reference is only valid inside
     * the call.
     */
    using StepObserver = std::function<void(
        int stepsDone, const FloatTensor &x, const DittoState &state)>;

    /** rollout() with a checkpoint observer on every step boundary. */
    RolloutResult rollout(RunMode mode, const FloatTensor &noise,
                          int steps, const StepObserver &obs) const;

    /**
     * Run N full reverse diffusions as one batch; results are bitwise
     * identical to rollout(mode, noises[i]) for every i.
     */
    std::vector<RolloutResult>
    rolloutBatch(RunMode mode, std::span<const FloatTensor> noises) const;

    /**
     * Like rollout(), but additionally runs an exact (QuantDitto)
     * reference rollout in lockstep and fills the result's fidelity
     * fields (per-step + end-to-end PSNR and cosine — see
     * docs/approx_reuse.md). Roughly doubles the work; the returned
     * finalImage is bitwise identical to rollout(mode, ...)'s.
     */
    RolloutResult rolloutWithFidelity(RunMode mode) const;
    RolloutResult rolloutWithFidelity(RunMode mode,
                                      const FloatTensor &noise,
                                      int steps = 0) const;

    /** The resolved ApproxDitto skip threshold / consecutive cap. */
    double approxSkipThresh() const { return approxThresh_; }
    int approxMaxConsec() const { return approxCap_; }

    /**
     * Override the resolved ApproxDitto skip policy after compile()
     * (benches sweep the threshold without recompiling; calibration
     * is threshold-independent). Clamps to [0, 1] and >= 1.
     */
    void setApproxPolicy(double thresh, int max_consec);

    /**
     * Deterministic per-request initial noise: a request's trajectory
     * is a pure function of (spec, seed, steps), never of batch
     * composition.
     */
    FloatTensor requestNoise(uint64_t seed) const;

    /**
     * Content digest of the calibrated activation scales (the exact
     * float bit patterns). Two CompiledModels with equal spec hash
     * *and* equal calibration digest execute bitwise identically, so
     * the pair is the model-identity component of the inter-request
     * reuse-cache key (src/serve/prefix_key.h) — a recalibration
     * invalidates cached prefixes by simply never matching them.
     */
    uint64_t calibrationDigest() const { return calibDigest_; }

  private:
    friend CompiledModel compile(const ModelSpec &spec,
                                 const CompileOptions &opts);

    /**
     * One stitched region of a junction operand fold: a left-
     * associated Add chain of compute producers, optionally behind one
     * spatial transform, emitted at a fixed per-slab offset of the
     * consumer's operand (Concat stacks regions).
     */
    struct JunctionRegion
    {
        enum class Transform
        {
            Identity,
            Upsample2x,
            AvgPool2x,
        };
        Transform transform = Transform::Identity;
        std::vector<int> sources; //!< producer node ids, sum order
        int64_t c = 0, h = 0, w = 0; //!< source-map geometry (NCHW)
        int64_t srcElems = 0;  //!< per-slab source elements
        int64_t outElems = 0;  //!< per-slab emitted elements
        int64_t outOffset = 0; //!< per-slab offset into the operand
    };

    /** A consumer operand assembled from multiple producers' state. */
    struct JunctionPlan
    {
        std::vector<JunctionRegion> regions;
        int64_t slabElems = 0; //!< per-slab operand elements
    };

    /** One compiled node: spec + engines + state/dependency wiring. */
    struct Node
    {
        NodeSpec spec;
        std::optional<DiffConvEngine> conv;
        std::optional<DiffFcEngine> fc; //!< Fc and CrossOutput (V'^T)
        std::optional<CrossAttentionEngine> cross;
        float wScale = 1.0f;  //!< weight / K' / V' quantization scale
        FloatTensor wF;       //!< FP32 weight (FP32 path)
        FloatTensor constF;   //!< FP32 K'/V' constant (cross nodes)
        int inSlot = -1;      //!< previous-input slot; -1 when bypassed
        int inSlot2 = -1;     //!< second operand slot (attention)
        int outSlot = -1;     //!< previous-output (accumulator) slot
        bool diffBypass = false; //!< operand 0 diff handed over (payload
                                 //!< or junction plan)
        bool diffBypass2 = false; //!< attention operand 1 handed over
        bool emitPayload = false; //!< requantizes its accumulator pair
                                  //!< for a hand-over consumer
        int emitScale = -1;   //!< the consumer's quantization point
        bool fLive = true;    //!< quant modes materialize float output
        bool keepAcc = false; //!< junction source: accumulator kept in
                              //!< the value table for QuantDirect
                              //!< passes (no persistent state there)
        bool skipExec = false; //!< plan-covered structural node
        std::optional<JunctionPlan> junction; //!< operand fold
        int emitSlot = -1; //!< code cache of the emitted payload: the
                           //!< previous step's emission, subtracted to
                           //!< form the hand-over delta without a
                           //!< float recomputation
        int jSlot = -1;    //!< code cache of this node's junction fold
        int srcProducer = -1;  //!< producer node id behind a
                               //!< diffBypass hand-over (operand 0);
                               //!< -1 for junction folds
        int srcProducer2 = -1; //!< same for attention operand 1
        int layer = -1;    //!< graph layer id (dependency verdict)
    };

    /** Activation values flowing through one forward pass. */
    struct Value
    {
        FloatTensor f;     //!< full values (absent on skipped edges)
        Int8Tensor codes;  //!< consumer-scale codes (bypass payload)
        Int16Tensor d16;   //!< consumer-scale code delta (primed steps)
        Int32Tensor acc;   //!< junction sources' resident accumulator
    };

    CompiledModel() = default;

    void validateSingle(const FloatTensor &x, const char *what) const;
    void calibrate();
    float combinedScale(const Node &nd) const;

    /**
     * Evaluate a junction plan: fold the source nodes' current
     * accumulators into consumer-scale codes (+ per-slab code deltas
     * against `prevCodes`, the fold's previous emission, for primed
     * slabs) through the encoder's multi-producer requant-delta
     * primitives. A source's current accumulator is read from
     * `prevOut` (the Ditto state's slot vector — the producer already
     * stored this step's accumulator there) or, when null
     * (QuantDirect has no state), from the value table's `acc` field.
     * `primed` is per-slab (bsz entries, or null for an all-unprimed
     * pass, in which case `d16` stays empty).
     */
    void runJunction(const Node &nd, const std::vector<Value> &vals,
                     const std::vector<Int32Tensor> *prevOut,
                     const int8_t *prevCodes, const uint8_t *primed,
                     int64_t bsz, Int8Tensor *codes,
                     Int16Tensor *d16) const;

    /**
     * Execute one vector / structural / reshape node (everything the
     * engines don't own) on the pass's value table. Shared verbatim
     * by the single and batched quant executors: every op here is
     * batch-general (stacked NCHW and row-stacked token matrices are
     * handled identically), and reshapes carry the bypass payload.
     */
    void runStructural(const Node &nd, std::vector<Value> &vals,
                       const FloatTensor &x) const;

    FloatTensor
    forwardFp32(const FloatTensor &x,
                const std::function<void(int, const FloatTensor &)> *obs)
        const;
    FloatTensor forwardQuant(const FloatTensor &x, bool use_ditto,
                             bool approx, DittoState *state,
                             OpCounts *counts) const;
    FloatTensor forwardQuantBatch(const FloatTensor &x, bool use_ditto,
                                  bool approx, BatchDittoState *state,
                                  OpCounts *counts) const;

    ModelSpec spec_;
    CompileOptions opts_;
    ModelGraph graph_{""};
    std::vector<LayerDependency> deps_;
    std::vector<Node> nodes_;
    std::vector<float> actScale_;
    FloatTensor noiseInit_;
    int numInSlots_ = 0;
    int numOutSlots_ = 0;
    int numBypass_ = 0;
    int numSumSkip_ = 0;
    int64_t macsPerStep_ = 0;
    double approxThresh_ = 0.0;
    int approxCap_ = 1;
    uint64_t calibDigest_ = 0;
};

/**
 * Compile a ModelSpec into a runnable program: draw the weight
 * program, lower to the layer IR, run the dependency analysis, build
 * the engines and calibrate activation scales (disk-cached on the
 * spec's content hash).
 */
CompiledModel compile(const ModelSpec &spec,
                      const CompileOptions &opts = {});

} // namespace ditto

#endif // DITTO_RUNTIME_COMPILED_H
