/**
 * @file
 * CompiledModel implementation: compile() and the three executors
 * (FP32, quantized single, quantized batch).
 *
 * The quantized executors mirror the historic hand-wired MiniUnet
 * paths call for call — quantize, engine entry point, dequantize, the
 * same float ops between — which is what makes compiled execution of
 * the MiniUnet preset bitwise identical to the legacy implementation
 * (core/legacy_unet.h, kept as the parity reference). On top of that,
 * the dependency-analysis verdicts rewire difference state flow on
 * eligible edges; the requantized payload is elementwise equal to the
 * subtraction the consumer would have performed, so the rewiring is
 * bitwise neutral too (see the header and docs/graph_runtime.md).
 */
#include "runtime/compiled.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "quant/encoder.h"
#include "tensor/ops.h"
#include "tensor/slab.h"
#include "trace/calibrate.h"

namespace ditto {

namespace {

/** He-style random weight init (the legacy MiniUnet draw). */
FloatTensor
randomWeight(Rng &rng, const Shape &shape, int64_t fan_in)
{
    FloatTensor w(shape);
    const double std = 1.0 / std::sqrt(static_cast<double>(fan_in));
    for (auto &v : w.data())
        v = static_cast<float>(rng.normal(0.0, std));
    return w;
}

/** Per-tensor symmetric weight quantization (legacy quantw). */
struct QuantW
{
    Int8Tensor codes;
    float scale = 1.0f;
};

QuantW
quantW(const FloatTensor &w)
{
    const QuantParams p = chooseDynamicScale(w);
    return {quantize(w, p), p.scale};
}

/**
 * Stacked NCHW [B,C,H,W] -> stacked token matrix [B*H*W, C]; slab b
 * holds exactly the single-map conversion of slab b (B == 1 is the
 * single-request layout). Works for float values, int8 codes and
 * int16 deltas alike — it is a pure element bijection.
 */
template <typename T>
Tensor<T>
toTokens(const Tensor<T> &x)
{
    DITTO_ASSERT(x.shape().rank() == 4, "expected NCHW feature maps");
    const int64_t bsz = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    Tensor<T> out(Shape{bsz * h * w, c});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at((b * h + y) * w + xw, ci) = x.at(b, ci, y, xw);
    return out;
}

/** Stacked token matrix [B*H*W, C] -> stacked NCHW [B,C,H,W]. */
template <typename T>
Tensor<T>
toNchw(const Tensor<T> &t, int64_t h, int64_t w)
{
    DITTO_ASSERT(t.shape().rank() == 2 && t.shape()[0] % (h * w) == 0,
                 "token count mismatch");
    const int64_t bsz = t.shape()[0] / (h * w);
    const int64_t c = t.shape()[1];
    Tensor<T> out(Shape{bsz, c, h, w});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at(b, ci, y, xw) = t.at((b * h + y) * w + xw, ci);
    return out;
}

/** Nearest-neighbour 2x spatial upsampling of stacked NCHW maps. */
FloatTensor
upsample2xF(const FloatTensor &x)
{
    const int64_t bsz = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    FloatTensor out(Shape{bsz, c, h * 2, w * 2});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h * 2; ++y)
                for (int64_t xw = 0; xw < w * 2; ++xw)
                    out.at(b, ci, y, xw) = x.at(b, ci, y / 2, xw / 2);
    return out;
}

/** 2x2 average pooling of stacked NCHW maps. */
FloatTensor
avgPool2xF(const FloatTensor &x)
{
    const int64_t bsz = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2] / 2;
    const int64_t w = x.shape()[3] / 2;
    FloatTensor out(Shape{bsz, c, h, w});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at(b, ci, y, xw) =
                        (x.at(b, ci, 2 * y, 2 * xw) +
                         x.at(b, ci, 2 * y, 2 * xw + 1) +
                         x.at(b, ci, 2 * y + 1, 2 * xw) +
                         x.at(b, ci, 2 * y + 1, 2 * xw + 1)) *
                        0.25f;
    return out;
}

/** Channel concatenation of stacked NCHW maps (per-slab). */
FloatTensor
concatChannelsF(const FloatTensor &a, const FloatTensor &b)
{
    const int64_t bsz = a.shape()[0];
    const int64_t ca = a.shape()[1];
    const int64_t cb = b.shape()[1];
    const int64_t h = a.shape()[2];
    const int64_t w = a.shape()[3];
    FloatTensor out(Shape{bsz, ca + cb, h, w});
    const int64_t plane = h * w;
    for (int64_t bb = 0; bb < bsz; ++bb) {
        std::copy(a.data().begin() + bb * ca * plane,
                  a.data().begin() + (bb + 1) * ca * plane,
                  out.data().begin() + bb * (ca + cb) * plane);
        std::copy(b.data().begin() + bb * cb * plane,
                  b.data().begin() + (bb + 1) * cb * plane,
                  out.data().begin() + (bb * (ca + cb) + ca) * plane);
    }
    return out;
}

/**
 * Requantize an int32 accumulator into int8 codes at a consumer's
 * quantization point: elementwise exactly
 * quantize(dequantizeAccum(acc, combined), qp) — the same two float
 * multiplications in the same order — without the intermediate float
 * tensor.
 */
int8_t
requantOne(int32_t acc, float combined, float inv, float lo, float hi)
{
    const float v = static_cast<float>(acc) * combined;
    return static_cast<int8_t>(std::clamp(std::nearbyint(v * inv), lo, hi));
}

Int8Tensor
requantCodes(const Int32Tensor &acc, float combined, const QuantParams &qp)
{
    Int8Tensor out(acc.shape());
    const float inv = 1.0f / qp.scale;
    const float lo = static_cast<float>(qp.minCode());
    const float hi = static_cast<float>(qp.maxCode());
    auto sa = acc.data();
    auto so = out.data();
    for (size_t i = 0; i < sa.size(); ++i)
        so[i] = requantOne(sa[i], combined, inv, lo, hi);
    return out;
}

/**
 * Requantize the accumulator pair (current, previous) and emit both
 * the current codes and their difference — the diff-calc-bypass
 * payload. `d16` equals subtractInt8(codes_t, codes_prev) element for
 * element, so a consumer running on it is bitwise identical to one
 * that stored the previous codes itself.
 */
void
requantCodesDelta(const Int32Tensor &acc, const Int32Tensor &prev,
                  float combined, const QuantParams &qp, Int8Tensor *codes,
                  Int16Tensor *d16)
{
    DITTO_ASSERT(prev.shape() == acc.shape(),
                 "payload accumulator shape mismatch");
    *codes = Int8Tensor(acc.shape());
    *d16 = Int16Tensor(acc.shape());
    const float inv = 1.0f / qp.scale;
    const float lo = static_cast<float>(qp.minCode());
    const float hi = static_cast<float>(qp.maxCode());
    auto sa = acc.data();
    auto sp = prev.data();
    auto sc = codes->data();
    auto sd = d16->data();
    for (size_t i = 0; i < sa.size(); ++i) {
        const int8_t ct = requantOne(sa[i], combined, inv, lo, hi);
        const int8_t cp = requantOne(sp[i], combined, inv, lo, hi);
        sc[i] = ct;
        sd[i] = static_cast<int16_t>(static_cast<int16_t>(ct) -
                                     static_cast<int16_t>(cp));
    }
}

/**
 * Batched payload: per-slab primed flags — unprimed slabs get codes
 * only (their `d16` region stays zero and is never read, exactly like
 * an unprimed slab's engine state).
 */
void
requantCodesDeltaBatch(const Int32Tensor &acc, const Int32Tensor *prev,
                       float combined, const QuantParams &qp,
                       const uint8_t *primed, int64_t slabs,
                       Int8Tensor *codes, Int16Tensor *d16)
{
    *codes = Int8Tensor(acc.shape());
    *d16 = Int16Tensor(acc.shape());
    const float inv = 1.0f / qp.scale;
    const float lo = static_cast<float>(qp.minCode());
    const float hi = static_cast<float>(qp.maxCode());
    const int64_t slab_elems = acc.numel() / slabs;
    auto sa = acc.data();
    auto sc = codes->data();
    auto sd = d16->data();
    for (int64_t s = 0; s < slabs; ++s) {
        const int64_t base = s * slab_elems;
        if (primed && primed[s]) {
            DITTO_ASSERT(prev && prev->numel() == acc.numel(),
                         "primed payload slab needs previous output");
            auto sp = prev->data();
            for (int64_t i = base; i < base + slab_elems; ++i) {
                const int8_t ct = requantOne(sa[static_cast<size_t>(i)],
                                             combined, inv, lo, hi);
                const int8_t cp = requantOne(sp[static_cast<size_t>(i)],
                                             combined, inv, lo, hi);
                sc[static_cast<size_t>(i)] = ct;
                sd[static_cast<size_t>(i)] =
                    static_cast<int16_t>(static_cast<int16_t>(ct) -
                                         static_cast<int16_t>(cp));
            }
        } else {
            for (int64_t i = base; i < base + slab_elems; ++i)
                sc[static_cast<size_t>(i)] = requantOne(
                    sa[static_cast<size_t>(i)], combined, inv, lo, hi);
        }
    }
}

} // namespace

void
CompiledModel::BatchDittoState::appendSlabs(int64_t count)
{
    DITTO_ASSERT(count > 0, "appendSlabs needs a positive count");
    const int64_t b = batch();
    if (b > 0) {
        for (Int8Tensor &t : prevIn)
            if (t.numel() > 0)
                t = slab::appended(t, b, count);
        for (Int32Tensor &t : prevOut)
            if (t.numel() > 0)
                t = slab::appended(t, b, count);
    }
    primed.insert(primed.end(), static_cast<size_t>(count), 0);
}

void
CompiledModel::BatchDittoState::removeSlab(int64_t i)
{
    const int64_t b = batch();
    DITTO_ASSERT(i >= 0 && i < b, "removeSlab index out of range");
    if (b == 1) {
        prevIn.clear();
        prevOut.clear();
        primed.clear();
        return;
    }
    for (Int8Tensor &t : prevIn)
        if (t.numel() > 0)
            t = slab::removed(t, b, i);
    for (Int32Tensor &t : prevOut)
        if (t.numel() > 0)
            t = slab::removed(t, b, i);
    primed.erase(primed.begin() + i);
}

float
CompiledModel::combinedScale(const Node &nd) const
{
    const NodeSpec &ns = nd.spec;
    if (ns.op == RtOp::AttnScores || ns.op == RtOp::AttnOutput)
        return actScale_[static_cast<size_t>(ns.scaleIn)] *
               actScale_[static_cast<size_t>(ns.scaleIn2)];
    return actScale_[static_cast<size_t>(ns.scaleIn)] * nd.wScale;
}

void
CompiledModel::validateSingle(const FloatTensor &x, const char *what) const
{
    if (x.shape() != spec_.inputShape)
        DITTO_FATAL(what << ": tensor shape " << x.shape().toString()
                         << " does not match model input "
                         << spec_.inputShape.toString() << " of spec '"
                         << spec_.name << "'");
}

FloatTensor
CompiledModel::forwardFp32(
    const FloatTensor &x,
    const std::function<void(int, const FloatTensor &)> *obs) const
{
    auto observe = [&](int idx, const FloatTensor &t) {
        if (obs && *obs)
            (*obs)(idx, t);
    };
    std::vector<Value> vals(nodes_.size());
    for (const Node &nd : nodes_) {
        const NodeSpec &ns = nd.spec;
        Value &out = vals[static_cast<size_t>(ns.id)];
        auto in = [&](int j) -> const FloatTensor & {
            return vals[static_cast<size_t>(ns.inputs[static_cast<size_t>(
                            j)])]
                .f;
        };
        switch (ns.op) {
          case RtOp::Input:
            out.f = x;
            break;
          case RtOp::Conv2d:
            observe(ns.scaleIn, in(0));
            out.f = conv2d(in(0), nd.wF, nullptr, ns.conv);
            break;
          case RtOp::Fc:
            observe(ns.scaleIn, in(0));
            out.f = fullyConnected(in(0), nd.wF, nullptr);
            break;
          case RtOp::AttnScores:
            observe(ns.scaleIn, in(0));
            observe(ns.scaleIn2, in(1));
            out.f = matmulTransposed(in(0), in(1));
            break;
          case RtOp::AttnOutput:
            observe(ns.scaleIn, in(0));
            observe(ns.scaleIn2, in(1));
            out.f = matmul(in(0), in(1));
            break;
          case RtOp::CrossScores:
            observe(ns.scaleIn, in(0));
            out.f = matmulTransposed(in(0), nd.constF);
            break;
          case RtOp::CrossOutput:
            observe(ns.scaleIn, in(0));
            out.f = matmul(in(0), nd.constF);
            break;
          case RtOp::GroupNorm:
            out.f = groupNorm(in(0), ns.groups);
            break;
          case RtOp::LayerNorm:
            out.f = layerNorm(in(0));
            break;
          case RtOp::SiLU:
            out.f = silu(in(0));
            break;
          case RtOp::GeLU:
            out.f = gelu(in(0));
            break;
          case RtOp::Softmax:
            out.f = softmaxRows(in(0));
            break;
          case RtOp::Add:
            out.f = add(in(0), in(1));
            break;
          case RtOp::Affine:
            out.f = affine(in(0), ns.affineScale, ns.affineShift);
            break;
          case RtOp::Concat:
            out.f = concatChannelsF(in(0), in(1));
            break;
          case RtOp::Upsample2x:
            out.f = upsample2xF(in(0));
            break;
          case RtOp::AvgPool2x:
            out.f = avgPool2xF(in(0));
            break;
          case RtOp::NchwToTokens:
            out.f = toTokens(in(0));
            break;
          case RtOp::TokensToNchw:
            out.f = toNchw(in(0), ns.outShape[2], ns.outShape[3]);
            break;
        }
    }
    return std::move(vals.back().f);
}

void
CompiledModel::runStructural(const Node &nd, std::vector<Value> &vals,
                             const FloatTensor &x) const
{
    const NodeSpec &ns = nd.spec;
    Value &out = vals[static_cast<size_t>(ns.id)];
    auto inVal = [&](int j) -> Value & {
        return vals[static_cast<size_t>(
            ns.inputs[static_cast<size_t>(j)])];
    };
    switch (ns.op) {
      case RtOp::Input:
        out.f = x;
        break;
      case RtOp::GroupNorm:
        out.f = groupNorm(inVal(0).f, ns.groups);
        break;
      case RtOp::LayerNorm:
        out.f = layerNorm(inVal(0).f);
        break;
      case RtOp::SiLU:
        out.f = silu(inVal(0).f);
        break;
      case RtOp::GeLU:
        out.f = gelu(inVal(0).f);
        break;
      case RtOp::Softmax:
        out.f = softmaxRows(inVal(0).f);
        break;
      case RtOp::Add:
        out.f = add(inVal(0).f, inVal(1).f);
        break;
      case RtOp::Affine:
        out.f = affine(inVal(0).f, ns.affineScale, ns.affineShift);
        break;
      case RtOp::Concat:
        out.f = concatChannelsF(inVal(0).f, inVal(1).f);
        break;
      case RtOp::Upsample2x:
        out.f = upsample2xF(inVal(0).f);
        break;
      case RtOp::AvgPool2x:
        out.f = avgPool2xF(inVal(0).f);
        break;
      case RtOp::NchwToTokens: {
        Value &in = inVal(0);
        if (in.f.numel() > 0)
            out.f = toTokens(in.f);
        if (in.codes.numel() > 0)
            out.codes = toTokens(in.codes);
        if (in.d16.numel() > 0)
            out.d16 = toTokens(in.d16);
        break;
      }
      case RtOp::TokensToNchw: {
        Value &in = inVal(0);
        const int64_t h = ns.outShape[2];
        const int64_t w = ns.outShape[3];
        if (in.f.numel() > 0)
            out.f = toNchw(in.f, h, w);
        if (in.codes.numel() > 0)
            out.codes = toNchw(in.codes, h, w);
        if (in.d16.numel() > 0)
            out.d16 = toNchw(in.d16, h, w);
        break;
      }
      default:
        DITTO_PANIC("compute op in the structural interpreter");
    }
}

FloatTensor
CompiledModel::forwardQuant(const FloatTensor &x, bool use_ditto,
                            DittoState *state, OpCounts *counts) const
{
    DITTO_ASSERT(!use_ditto || state != nullptr,
                 "Ditto mode needs persistent state");
    const bool primed = use_ditto && state->primed;
    if (use_ditto && state->prevIn.empty()) {
        state->prevIn.resize(static_cast<size_t>(numInSlots_));
        state->prevOut.resize(static_cast<size_t>(numOutSlots_));
    }

    std::vector<Value> vals(nodes_.size());
    for (const Node &nd : nodes_) {
        const NodeSpec &ns = nd.spec;
        Value &out = vals[static_cast<size_t>(ns.id)];
        auto inVal = [&](int j) -> Value & {
            return vals[static_cast<size_t>(
                ns.inputs[static_cast<size_t>(j)])];
        };

        // Weight-stationary compute: one engine, one dynamic operand.
        if (ns.op == RtOp::Conv2d || ns.op == RtOp::Fc ||
            ns.op == RtOp::CrossScores || ns.op == RtOp::CrossOutput) {
            Value &in = inVal(0);
            const QuantParams qp{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            // A bypass consumer's operand arrives pre-quantized in its
            // own code domain; everyone else quantizes the float input.
            Int8Tensor codes;
            if (nd.diffBypass) {
                DITTO_ASSERT(in.codes.numel() > 0,
                             "bypass payload missing codes");
                codes = std::move(in.codes);
            } else {
                codes = quantize(in.f, qp);
            }

            Int32Tensor acc;
            if (!primed) {
                if (nd.conv)
                    acc = nd.conv->runDirect(codes);
                else if (nd.cross)
                    acc = nd.cross->runDirect(codes);
                else
                    acc = nd.fc->runDirect(codes);
            } else if (nd.diffBypass) {
                DITTO_ASSERT(in.d16.numel() > 0,
                             "bypass payload missing difference");
                const Int32Tensor &prev =
                    state->prevOut[static_cast<size_t>(nd.outSlot)];
                if (nd.conv)
                    acc = nd.conv->runDiffPre(codes, in.d16, prev, counts,
                                              opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runDiffPre(codes, in.d16, prev,
                                               counts, opts_.policy);
                else
                    acc = nd.fc->runDiffPre(codes, in.d16, prev, counts,
                                            opts_.policy);
            } else {
                const Int8Tensor &prev_in =
                    state->prevIn[static_cast<size_t>(nd.inSlot)];
                const Int32Tensor &prev_out =
                    state->prevOut[static_cast<size_t>(nd.outSlot)];
                if (nd.conv)
                    acc = nd.conv->runDiff(codes, prev_in, prev_out,
                                           counts, opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runDiff(codes, prev_in, prev_out,
                                            counts, opts_.policy);
                else
                    acc = nd.fc->runDiff(codes, prev_in, prev_out, counts,
                                         opts_.policy);
                if (counts)
                    counts->diffCalcElems += codes.numel();
            }

            const float combined = combinedScale(nd);
            // Emit the bypass payload for this node's consumer before
            // the accumulator state is overwritten.
            if (nd.emitPayload) {
                const QuantParams eqp{
                    actScale_[static_cast<size_t>(nd.emitScale)], 8};
                if (primed)
                    requantCodesDelta(
                        acc,
                        state->prevOut[static_cast<size_t>(nd.outSlot)],
                        combined, eqp, &out.codes, &out.d16);
                else
                    out.codes = requantCodes(acc, combined, eqp);
            }
            if (use_ditto) {
                if (nd.inSlot >= 0)
                    state->prevIn[static_cast<size_t>(nd.inSlot)] =
                        std::move(codes);
                state->prevOut[static_cast<size_t>(nd.outSlot)] =
                    std::move(acc);
            }
            if (!nd.emitPayload) {
                const Int32Tensor &acc_ref =
                    use_ditto
                        ? state->prevOut[static_cast<size_t>(nd.outSlot)]
                        : acc;
                out.f = dequantizeAccum(acc_ref, combined);
                if (counts && primed)
                    counts->summationElems += acc_ref.numel();
            }
            continue;
        }

        // Dynamic-dynamic attention: two operands, two-term expansion.
        if (ns.op == RtOp::AttnScores || ns.op == RtOp::AttnOutput) {
            Value &av = inVal(0);
            Value &bv = inVal(1);
            const QuantParams qpa{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            const QuantParams qpb{
                actScale_[static_cast<size_t>(ns.scaleIn2)], 8};
            Int8Tensor a_codes = quantize(av.f, qpa);
            Int8Tensor b_codes = quantize(bv.f, qpb);
            Int32Tensor acc;
            if (!primed) {
                acc = ns.op == RtOp::AttnScores
                          ? attentionScoresDirect(a_codes, b_codes)
                          : attentionOutputDirect(a_codes, b_codes);
            } else {
                const Int8Tensor &prev_a =
                    state->prevIn[static_cast<size_t>(nd.inSlot)];
                const Int8Tensor &prev_b =
                    state->prevIn[static_cast<size_t>(nd.inSlot2)];
                const Int32Tensor &prev_out =
                    state->prevOut[static_cast<size_t>(nd.outSlot)];
                acc = ns.op == RtOp::AttnScores
                          ? attentionScoresDiff(a_codes, prev_a, b_codes,
                                                prev_b, prev_out, counts,
                                                opts_.policy)
                          : attentionOutputDiff(a_codes, prev_a, b_codes,
                                                prev_b, prev_out, counts,
                                                opts_.policy);
                if (counts)
                    counts->diffCalcElems +=
                        a_codes.numel() + b_codes.numel();
            }
            const float combined = combinedScale(nd);
            if (nd.emitPayload) {
                const QuantParams eqp{
                    actScale_[static_cast<size_t>(nd.emitScale)], 8};
                if (primed)
                    requantCodesDelta(
                        acc,
                        state->prevOut[static_cast<size_t>(nd.outSlot)],
                        combined, eqp, &out.codes, &out.d16);
                else
                    out.codes = requantCodes(acc, combined, eqp);
            }
            if (use_ditto) {
                state->prevIn[static_cast<size_t>(nd.inSlot)] =
                    std::move(a_codes);
                state->prevIn[static_cast<size_t>(nd.inSlot2)] =
                    std::move(b_codes);
                state->prevOut[static_cast<size_t>(nd.outSlot)] =
                    std::move(acc);
            }
            if (!nd.emitPayload) {
                const Int32Tensor &acc_ref =
                    use_ditto
                        ? state->prevOut[static_cast<size_t>(nd.outSlot)]
                        : acc;
                out.f = dequantizeAccum(acc_ref, combined);
                if (counts && primed)
                    counts->summationElems += acc_ref.numel();
            }
            continue;
        }

        // Vector / structural ops on full values; reshapes also carry
        // the bypass payload through unchanged (element bijections).
        runStructural(nd, vals, x);
    }
    if (use_ditto)
        state->primed = true;
    DITTO_ASSERT(vals.back().f.numel() > 0,
                 "output node must materialize full values");
    return std::move(vals.back().f);
}

FloatTensor
CompiledModel::forwardQuantBatch(const FloatTensor &x, bool use_ditto,
                                 BatchDittoState *state,
                                 OpCounts *counts) const
{
    DITTO_ASSERT(x.shape().rank() == 4, "batched input must be NCHW");
    const int64_t bsz = x.shape()[0];
    DITTO_ASSERT(!use_ditto || state != nullptr,
                 "Ditto mode needs persistent batch state");
    DITTO_ASSERT(!use_ditto || state->batch() == bsz,
                 "batch state size mismatch");
    if (use_ditto && state->prevIn.empty()) {
        state->prevIn.resize(static_cast<size_t>(numInSlots_));
        state->prevOut.resize(static_cast<size_t>(numOutSlots_));
    }
    const uint8_t *primed = use_ditto ? state->primed.data() : nullptr;
    auto anyPrimed = [&] {
        if (!primed)
            return false;
        for (int64_t s = 0; s < bsz; ++s)
            if (primed[s])
                return true;
        return false;
    };
    const bool have_primed = anyPrimed();

    // Previous-state slot pointer, or null while not materialized (the
    // engines only dereference state for primed slabs).
    auto prevIn = [&](int slot) -> const Int8Tensor * {
        return use_ditto &&
                       state->prevIn[static_cast<size_t>(slot)].numel() > 0
                   ? &state->prevIn[static_cast<size_t>(slot)]
                   : nullptr;
    };
    auto prevOut = [&](int slot) -> const Int32Tensor * {
        return use_ditto &&
                       state->prevOut[static_cast<size_t>(slot)].numel() >
                           0
                   ? &state->prevOut[static_cast<size_t>(slot)]
                   : nullptr;
    };
    // Per-slab tallies for work done against stored previous state.
    auto countDiffCalc = [&](int64_t elems_per_slab) {
        if (!counts || !primed)
            return;
        for (int64_t s = 0; s < bsz; ++s)
            if (primed[s])
                counts[s].diffCalcElems += elems_per_slab;
    };
    auto countSummation = [&](int64_t elems_per_slab) {
        if (!counts || !primed)
            return;
        for (int64_t s = 0; s < bsz; ++s)
            if (primed[s])
                counts[s].summationElems += elems_per_slab;
    };

    std::vector<Value> vals(nodes_.size());
    for (const Node &nd : nodes_) {
        const NodeSpec &ns = nd.spec;
        Value &out = vals[static_cast<size_t>(ns.id)];
        auto inVal = [&](int j) -> Value & {
            return vals[static_cast<size_t>(
                ns.inputs[static_cast<size_t>(j)])];
        };

        if (ns.op == RtOp::Conv2d || ns.op == RtOp::Fc ||
            ns.op == RtOp::CrossScores || ns.op == RtOp::CrossOutput) {
            Value &in = inVal(0);
            const QuantParams qp{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            Int8Tensor codes;
            if (nd.diffBypass) {
                DITTO_ASSERT(in.codes.numel() > 0,
                             "bypass payload missing codes");
                codes = std::move(in.codes);
            } else {
                codes = quantize(in.f, qp);
            }

            Int32Tensor acc;
            if (nd.diffBypass && have_primed) {
                DITTO_ASSERT(in.d16.numel() > 0,
                             "bypass payload missing difference");
                const Int16Tensor d = std::move(in.d16);
                if (nd.conv)
                    acc = nd.conv->runBatchPre(codes, d,
                                               prevOut(nd.outSlot),
                                               primed, counts,
                                               opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runBatchPre(codes, d, bsz,
                                                prevOut(nd.outSlot),
                                                primed, counts,
                                                opts_.policy);
                else
                    acc = nd.fc->runBatchPre(codes, d, bsz,
                                             prevOut(nd.outSlot), primed,
                                             counts, opts_.policy);
            } else if (nd.diffBypass) {
                // No slab is primed yet: no payload difference exists
                // and none is needed — every slab runs direct through
                // the ordinary batched entry point (which skips all
                // unprimed slabs' state entirely).
                if (nd.conv)
                    acc = nd.conv->runBatch(codes, nullptr, nullptr,
                                            primed, counts,
                                            opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runBatch(codes, bsz, nullptr,
                                             nullptr, primed, counts,
                                             opts_.policy);
                else
                    acc = nd.fc->runBatch(codes, bsz, nullptr, nullptr,
                                          primed, counts, opts_.policy);
            } else {
                if (nd.conv)
                    acc = nd.conv->runBatch(codes, prevIn(nd.inSlot),
                                            prevOut(nd.outSlot), primed,
                                            counts, opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runBatch(codes, bsz,
                                             prevIn(nd.inSlot),
                                             prevOut(nd.outSlot), primed,
                                             counts, opts_.policy);
                else
                    acc = nd.fc->runBatch(codes, bsz, prevIn(nd.inSlot),
                                          prevOut(nd.outSlot), primed,
                                          counts, opts_.policy);
                countDiffCalc(codes.numel() / bsz);
            }

            const float combined = combinedScale(nd);
            if (nd.emitPayload) {
                const QuantParams eqp{
                    actScale_[static_cast<size_t>(nd.emitScale)], 8};
                if (have_primed)
                    requantCodesDeltaBatch(acc, prevOut(nd.outSlot),
                                           combined, eqp, primed, bsz,
                                           &out.codes, &out.d16);
                else
                    out.codes = requantCodes(acc, combined, eqp);
            }
            if (use_ditto) {
                if (nd.inSlot >= 0)
                    state->prevIn[static_cast<size_t>(nd.inSlot)] =
                        std::move(codes);
                state->prevOut[static_cast<size_t>(nd.outSlot)] =
                    std::move(acc);
            }
            if (!nd.emitPayload) {
                const Int32Tensor &acc_ref =
                    use_ditto
                        ? state->prevOut[static_cast<size_t>(nd.outSlot)]
                        : acc;
                out.f = dequantizeAccum(acc_ref, combined);
                countSummation(acc_ref.numel() / bsz);
            }
            continue;
        }

        if (ns.op == RtOp::AttnScores || ns.op == RtOp::AttnOutput) {
            Value &av = inVal(0);
            Value &bv = inVal(1);
            const QuantParams qpa{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            const QuantParams qpb{
                actScale_[static_cast<size_t>(ns.scaleIn2)], 8};
            Int8Tensor a_codes = quantize(av.f, qpa);
            Int8Tensor b_codes = quantize(bv.f, qpb);
            Int32Tensor acc =
                ns.op == RtOp::AttnScores
                    ? attentionScoresBatch(a_codes, b_codes, bsz,
                                           prevIn(nd.inSlot),
                                           prevIn(nd.inSlot2),
                                           prevOut(nd.outSlot), primed,
                                           counts, opts_.policy)
                    : attentionOutputBatch(a_codes, b_codes, bsz,
                                           prevIn(nd.inSlot),
                                           prevIn(nd.inSlot2),
                                           prevOut(nd.outSlot), primed,
                                           counts, opts_.policy);
            countDiffCalc((a_codes.numel() + b_codes.numel()) / bsz);
            const float combined = combinedScale(nd);
            if (nd.emitPayload) {
                const QuantParams eqp{
                    actScale_[static_cast<size_t>(nd.emitScale)], 8};
                if (have_primed)
                    requantCodesDeltaBatch(acc, prevOut(nd.outSlot),
                                           combined, eqp, primed, bsz,
                                           &out.codes, &out.d16);
                else
                    out.codes = requantCodes(acc, combined, eqp);
            }
            if (use_ditto) {
                state->prevIn[static_cast<size_t>(nd.inSlot)] =
                    std::move(a_codes);
                state->prevIn[static_cast<size_t>(nd.inSlot2)] =
                    std::move(b_codes);
                state->prevOut[static_cast<size_t>(nd.outSlot)] =
                    std::move(acc);
            }
            if (!nd.emitPayload) {
                const Int32Tensor &acc_ref =
                    use_ditto
                        ? state->prevOut[static_cast<size_t>(nd.outSlot)]
                        : acc;
                out.f = dequantizeAccum(acc_ref, combined);
                countSummation(acc_ref.numel() / bsz);
            }
            continue;
        }

        runStructural(nd, vals, x);
    }
    if (use_ditto)
        std::fill(state->primed.begin(), state->primed.end(), 1);
    DITTO_ASSERT(vals.back().f.numel() > 0,
                 "output node must materialize full values");
    return std::move(vals.back().f);
}

FloatTensor
CompiledModel::forward(const FloatTensor &x, RunMode mode,
                       DittoState *state, OpCounts *counts) const
{
    validateSingle(x, "forward");
    switch (mode) {
      case RunMode::Fp32:
        return forwardFp32(x, nullptr);
      case RunMode::QuantDirect:
        return forwardQuant(x, /*use_ditto=*/false, nullptr, nullptr);
      case RunMode::QuantDitto:
        return forwardQuant(x, /*use_ditto=*/true, state, counts);
    }
    DITTO_PANIC("unknown RunMode");
}

FloatTensor
CompiledModel::forwardBatch(const FloatTensor &x, RunMode mode,
                            BatchDittoState *state, OpCounts *counts) const
{
    const Shape &want = spec_.inputShape;
    if (x.shape().rank() != 4 || x.shape()[1] != want[1] ||
        x.shape()[2] != want[2] || x.shape()[3] != want[3])
        DITTO_FATAL("forwardBatch: tensor shape "
                    << x.shape().toString()
                    << " does not stack model inputs "
                    << want.toString() << " of spec '" << spec_.name
                    << "'");
    switch (mode) {
      case RunMode::Fp32: {
        // FP32 has no quantized state to batch; run per slab.
        const int64_t bsz = x.shape()[0];
        const int64_t slab = want.numel();
        FloatTensor out(x.shape());
        for (int64_t b = 0; b < bsz; ++b) {
            FloatTensor one(want);
            std::copy(x.data().begin() + b * slab,
                      x.data().begin() + (b + 1) * slab,
                      one.data().begin());
            const FloatTensor eps = forwardFp32(one, nullptr);
            std::copy(eps.data().begin(), eps.data().end(),
                      out.data().begin() + b * slab);
        }
        return out;
      }
      case RunMode::QuantDirect:
        return forwardQuantBatch(x, /*use_ditto=*/false, nullptr,
                                 nullptr);
      case RunMode::QuantDitto:
        return forwardQuantBatch(x, /*use_ditto=*/true, state, counts);
    }
    DITTO_PANIC("unknown RunMode");
}

RolloutResult
CompiledModel::rollout(RunMode mode) const
{
    return rollout(mode, noiseInit_);
}

RolloutResult
CompiledModel::rollout(RunMode mode, const FloatTensor &noise,
                       int steps) const
{
    validateSingle(noise, "rollout");
    if (steps < 0)
        DITTO_FATAL("rollout: negative step count " << steps);
    if (steps == 0)
        steps = spec_.steps;
    RolloutResult result;
    DittoState state;
    FloatTensor x = noise;
    for (int t = 0; t < steps; ++t) {
        const FloatTensor eps =
            forward(x, mode, &state, &result.dittoOps);
        x = add(x, affine(eps, -0.15f, 0.0f));
    }
    result.finalImage = std::move(x);
    result.totalMacsPerStep = macsPerStep_;
    return result;
}

std::vector<RolloutResult>
CompiledModel::rolloutBatch(RunMode mode,
                            std::span<const FloatTensor> noises) const
{
    const int64_t bsz = static_cast<int64_t>(noises.size());
    if (bsz == 0)
        return {};
    const int64_t slab = spec_.inputShape.numel();
    FloatTensor x(slab::withDim0(spec_.inputShape, bsz));
    for (int64_t b = 0; b < bsz; ++b) {
        validateSingle(noises[static_cast<size_t>(b)], "rolloutBatch");
        std::copy(noises[static_cast<size_t>(b)].data().begin(),
                  noises[static_cast<size_t>(b)].data().end(),
                  x.data().begin() + b * slab);
    }

    BatchDittoState state;
    state.primed.assign(static_cast<size_t>(bsz), 0);
    std::vector<OpCounts> counts(static_cast<size_t>(bsz));
    for (int t = 0; t < spec_.steps; ++t) {
        const FloatTensor eps =
            forwardBatch(x, mode, &state, counts.data());
        x = add(x, affine(eps, -0.15f, 0.0f));
    }

    std::vector<RolloutResult> results(static_cast<size_t>(bsz));
    for (int64_t b = 0; b < bsz; ++b) {
        RolloutResult &r = results[static_cast<size_t>(b)];
        r.finalImage = FloatTensor(spec_.inputShape);
        std::copy(x.data().begin() + b * slab,
                  x.data().begin() + (b + 1) * slab,
                  r.finalImage.data().begin());
        r.dittoOps = counts[static_cast<size_t>(b)];
        r.totalMacsPerStep = macsPerStep_;
    }
    return results;
}

FloatTensor
CompiledModel::requestNoise(uint64_t seed) const
{
    // A distinct key stream from the weight/init RNG so request noise
    // never correlates with model parameters.
    Rng rng = Rng::fromKeys(seed, 0x5EED'D177);
    FloatTensor noise(spec_.inputShape);
    noise.fillNormal(rng, 0.0, 1.0);
    return noise;
}

void
CompiledModel::calibrate()
{
    // Keyed on the spec content hash: two structurally identical specs
    // share the entry, any geometry/seed/steps change misses. The salt
    // versions the runtime calibration algorithm itself.
    uint64_t key = hashMix(0xC0D1'770A, 1);
    key = hashMix(key, spec_.hash());
    key = hashMix(key, static_cast<uint64_t>(spec_.numScales));
    if (loadCachedScales(key, static_cast<size_t>(spec_.numScales),
                         &actScale_))
        return;

    // Offline calibration: FP32 rollout, max-abs at every quantization
    // point across all steps, 10% safety margin (Q-Diffusion style).
    std::vector<float> maxabs(static_cast<size_t>(spec_.numScales), 0.0f);
    const std::function<void(int, const FloatTensor &)> obs =
        [&maxabs](int idx, const FloatTensor &t) {
            float m = maxabs[static_cast<size_t>(idx)];
            for (float v : t.data())
                m = std::max(m, std::fabs(v));
            maxabs[static_cast<size_t>(idx)] = m;
        };
    FloatTensor x = noiseInit_;
    for (int t = 0; t < spec_.steps; ++t) {
        const FloatTensor eps = forwardFp32(x, &obs);
        x = add(x, affine(eps, -0.15f, 0.0f));
    }
    actScale_.resize(static_cast<size_t>(spec_.numScales));
    for (int i = 0; i < spec_.numScales; ++i)
        actScale_[static_cast<size_t>(i)] =
            std::max(maxabs[static_cast<size_t>(i)], 1e-6f) * 1.1f /
            127.0f;
    storeCachedScales(key, actScale_);
}

CompiledModel
compile(const ModelSpec &spec, const CompileOptions &opts)
{
    DITTO_ASSERT(!spec.nodes.empty(), "cannot compile an empty spec");
    DITTO_ASSERT(spec.inputShape.rank() == 4,
                 "spec input must be an NCHW map");
    CompiledModel m;
    m.spec_ = spec;
    m.opts_ = opts;

    std::vector<int> n2l;
    m.graph_ = spec.toGraph(&n2l);
    m.deps_ = m.graph_.analyzeDependencies();
    m.macsPerStep_ = m.graph_.totalMacs();

    // The weight program: one deterministic stream, fan-in-scaled
    // weights first, then constant contexts, then the initial noise
    // (the phase order WeightSpec documents).
    Rng rng = Rng::fromKeys(spec.seed, 0x11B5);
    std::vector<FloatTensor> wF(spec.weights.size());
    for (size_t i = 0; i < spec.weights.size(); ++i)
        if (spec.weights[i].fanIn > 0)
            wF[i] = randomWeight(rng, spec.weights[i].shape,
                                 spec.weights[i].fanIn);
    for (size_t i = 0; i < spec.weights.size(); ++i)
        if (spec.weights[i].fanIn == 0) {
            wF[i] = FloatTensor(spec.weights[i].shape);
            wF[i].fillNormal(rng, 0.0, 1.0);
        }
    m.noiseInit_ = FloatTensor(spec.inputShape);
    m.noiseInit_.fillNormal(rng, 0.0, 1.0);

    // Engines.
    m.nodes_.reserve(spec.nodes.size());
    for (const NodeSpec &ns : spec.nodes) {
        CompiledModel::Node nd;
        nd.spec = ns;
        nd.layer = n2l[static_cast<size_t>(ns.id)];
        switch (ns.op) {
          case RtOp::Conv2d: {
            QuantW q = quantW(wF[static_cast<size_t>(ns.weight)]);
            nd.conv.emplace(std::move(q.codes), ns.conv);
            nd.wScale = q.scale;
            nd.wF = wF[static_cast<size_t>(ns.weight)];
            break;
          }
          case RtOp::Fc: {
            QuantW q = quantW(wF[static_cast<size_t>(ns.weight)]);
            nd.fc.emplace(std::move(q.codes));
            nd.wScale = q.scale;
            nd.wF = wF[static_cast<size_t>(ns.weight)];
            break;
          }
          case RtOp::CrossScores: {
            // K' = context x W^T is constant across steps: a weight
            // from the hardware's point of view (computed in FP32 and
            // quantized per-tensor, exactly like the legacy model).
            nd.constF = fullyConnected(
                wF[static_cast<size_t>(ns.context)],
                wF[static_cast<size_t>(ns.weight)], nullptr);
            QuantW q = quantW(nd.constF);
            nd.cross.emplace(std::move(q.codes));
            nd.wScale = q.scale;
            break;
          }
          case RtOp::CrossOutput: {
            // P' x V' with constant V' is weight-stationary with V'^T
            // as the weight: O = P' V' = P' (V'^T)^T.
            nd.constF = fullyConnected(
                wF[static_cast<size_t>(ns.context)],
                wF[static_cast<size_t>(ns.weight)], nullptr);
            QuantW q = quantW(nd.constF);
            nd.fc.emplace(transposeInt8(q.codes));
            nd.wScale = q.scale;
            break;
          }
          default:
            break;
        }
        m.nodes_.push_back(std::move(nd));
    }

    // Dependency-driven state flow: a weight-stationary node whose
    // verdict says difference calculation is bypassable consumes its
    // producer's requantized difference when the producer is a single
    // compute node reached through reshape-only wire (the software-
    // realizable subset; Add/Concat/Pool junctions and dynamic
    // attention operands conservatively stay full-value boundaries).
    if (opts.useDependencyAnalysis) {
        std::vector<int> consumers(spec.nodes.size(), 0);
        for (const NodeSpec &ns : spec.nodes)
            for (int in : ns.inputs)
                ++consumers[static_cast<size_t>(in)];
        for (const NodeSpec &ns : spec.nodes) {
            if (ns.op != RtOp::Conv2d && ns.op != RtOp::Fc &&
                ns.op != RtOp::CrossScores && ns.op != RtOp::CrossOutput)
                continue;
            const int layer = n2l[static_cast<size_t>(ns.id)];
            if (m.deps_[static_cast<size_t>(layer)].diffCalcNeeded)
                continue;
            // Walk to the producer through reshape-only, single-
            // consumer wire.
            int p = ns.inputs[0];
            bool eligible = true;
            while (rtIsReshape(spec.nodes[static_cast<size_t>(p)].op)) {
                if (consumers[static_cast<size_t>(p)] != 1) {
                    eligible = false;
                    break;
                }
                p = spec.nodes[static_cast<size_t>(p)].inputs[0];
            }
            if (!eligible ||
                !rtIsCompute(spec.nodes[static_cast<size_t>(p)].op) ||
                consumers[static_cast<size_t>(p)] != 1)
                continue;
            CompiledModel::Node &prod =
                m.nodes_[static_cast<size_t>(p)];
            if (prod.emitPayload)
                continue; // one payload target per producer
            // The producer's only consumer takes the difference, so
            // the analysis must agree its summation is skippable.
            DITTO_ASSERT(
                !m.deps_[static_cast<size_t>(prod.layer)]
                     .summationNeeded,
                "bypass producer unexpectedly needs summation");
            m.nodes_[static_cast<size_t>(ns.id)].diffBypass = true;
            prod.emitPayload = true;
            prod.emitScale = ns.scaleIn;
            ++m.numBypass_;
            ++m.numSumSkip_;
        }
        DITTO_ASSERT(!m.nodes_.back().emitPayload,
                     "the output node cannot skip summation");
    }

    // Difference-state slots: every compute node keeps its previous
    // accumulator; previous input codes only where diff-calc really
    // happens (bypassed nodes hold no input state at all).
    for (CompiledModel::Node &nd : m.nodes_) {
        const RtOp op = nd.spec.op;
        if (!rtIsCompute(op))
            continue;
        nd.outSlot = m.numOutSlots_++;
        if (op == RtOp::AttnScores || op == RtOp::AttnOutput) {
            nd.inSlot = m.numInSlots_++;
            nd.inSlot2 = m.numInSlots_++;
        } else if (!nd.diffBypass) {
            nd.inSlot = m.numInSlots_++;
        }
    }

    m.calibrate();
    return m;
}

} // namespace ditto
