/**
 * @file
 * CompiledModel implementation: compile() and the three executors
 * (FP32, quantized single, quantized batch).
 *
 * The quantized executors mirror the historic hand-wired MiniUnet
 * paths call for call — quantize, engine entry point, dequantize, the
 * same float ops between — which is what makes compiled execution of
 * the MiniUnet preset bitwise identical to the legacy implementation
 * (core/legacy_unet.h, kept as the parity reference). On top of that,
 * the dependency-analysis verdicts rewire difference state flow on
 * eligible edges; the requantized payload is elementwise equal to the
 * subtraction the consumer would have performed, so the rewiring is
 * bitwise neutral too (see the header and docs/graph_runtime.md).
 */
#include "runtime/compiled.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"
#include "common/rng.h"
#include "quant/encoder.h"
#include "tensor/ops.h"
#include "tensor/slab.h"
#include "trace/calibrate.h"

namespace ditto {

namespace {

/** He-style random weight init (the legacy MiniUnet draw). */
FloatTensor
randomWeight(Rng &rng, const Shape &shape, int64_t fan_in)
{
    FloatTensor w(shape);
    const double std = 1.0 / std::sqrt(static_cast<double>(fan_in));
    for (auto &v : w.data())
        v = static_cast<float>(rng.normal(0.0, std));
    return w;
}

/** Per-tensor symmetric weight quantization (legacy quantw). */
struct QuantW
{
    Int8Tensor codes;
    float scale = 1.0f;
};

QuantW
quantW(const FloatTensor &w)
{
    const QuantParams p = chooseDynamicScale(w);
    return {quantize(w, p), p.scale};
}

/**
 * Stacked NCHW [B,C,H,W] -> stacked token matrix [B*H*W, C]; slab b
 * holds exactly the single-map conversion of slab b (B == 1 is the
 * single-request layout). Works for float values, int8 codes and
 * int16 deltas alike — it is a pure element bijection.
 */
template <typename T>
Tensor<T>
toTokens(const Tensor<T> &x)
{
    DITTO_ASSERT(x.shape().rank() == 4, "expected NCHW feature maps");
    const int64_t bsz = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    Tensor<T> out(Shape{bsz * h * w, c});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at((b * h + y) * w + xw, ci) = x.at(b, ci, y, xw);
    return out;
}

/** Stacked token matrix [B*H*W, C] -> stacked NCHW [B,C,H,W]. */
template <typename T>
Tensor<T>
toNchw(const Tensor<T> &t, int64_t h, int64_t w)
{
    DITTO_ASSERT(t.shape().rank() == 2 && t.shape()[0] % (h * w) == 0,
                 "token count mismatch");
    const int64_t bsz = t.shape()[0] / (h * w);
    const int64_t c = t.shape()[1];
    Tensor<T> out(Shape{bsz, c, h, w});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at(b, ci, y, xw) = t.at((b * h + y) * w + xw, ci);
    return out;
}

/** Nearest-neighbour 2x spatial upsampling of stacked NCHW maps. */
FloatTensor
upsample2xF(const FloatTensor &x)
{
    const int64_t bsz = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2];
    const int64_t w = x.shape()[3];
    FloatTensor out(Shape{bsz, c, h * 2, w * 2});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h * 2; ++y)
                for (int64_t xw = 0; xw < w * 2; ++xw)
                    out.at(b, ci, y, xw) = x.at(b, ci, y / 2, xw / 2);
    return out;
}

/** 2x2 average pooling of stacked NCHW maps. */
FloatTensor
avgPool2xF(const FloatTensor &x)
{
    const int64_t bsz = x.shape()[0];
    const int64_t c = x.shape()[1];
    const int64_t h = x.shape()[2] / 2;
    const int64_t w = x.shape()[3] / 2;
    FloatTensor out(Shape{bsz, c, h, w});
    for (int64_t b = 0; b < bsz; ++b)
        for (int64_t ci = 0; ci < c; ++ci)
            for (int64_t y = 0; y < h; ++y)
                for (int64_t xw = 0; xw < w; ++xw)
                    out.at(b, ci, y, xw) =
                        (x.at(b, ci, 2 * y, 2 * xw) +
                         x.at(b, ci, 2 * y, 2 * xw + 1) +
                         x.at(b, ci, 2 * y + 1, 2 * xw) +
                         x.at(b, ci, 2 * y + 1, 2 * xw + 1)) *
                        0.25f;
    return out;
}

/** Channel concatenation of stacked NCHW maps (per-slab). */
FloatTensor
concatChannelsF(const FloatTensor &a, const FloatTensor &b)
{
    const int64_t bsz = a.shape()[0];
    const int64_t ca = a.shape()[1];
    const int64_t cb = b.shape()[1];
    const int64_t h = a.shape()[2];
    const int64_t w = a.shape()[3];
    FloatTensor out(Shape{bsz, ca + cb, h, w});
    const int64_t plane = h * w;
    for (int64_t bb = 0; bb < bsz; ++bb) {
        std::copy(a.data().begin() + bb * ca * plane,
                  a.data().begin() + (bb + 1) * ca * plane,
                  out.data().begin() + bb * (ca + cb) * plane);
        std::copy(b.data().begin() + bb * cb * plane,
                  b.data().begin() + (bb + 1) * cb * plane,
                  out.data().begin() + (bb * (ca + cb) + ca) * plane);
    }
    return out;
}

/**
 * Requantize an int32 accumulator into int8 codes at a consumer's
 * quantization point: elementwise exactly
 * quantize(dequantizeAccum(acc, combined), qp) — the same two float
 * multiplications in the same order — without the intermediate float
 * tensor.
 */
int8_t
requantOne(int32_t acc, float combined, float inv, float lo, float hi)
{
    const float v = static_cast<float>(acc) * combined;
    return static_cast<int8_t>(std::clamp(std::nearbyint(v * inv), lo, hi));
}

Int8Tensor
requantCodes(const Int32Tensor &acc, float combined, const QuantParams &qp)
{
    Int8Tensor out(acc.shape());
    const float inv = 1.0f / qp.scale;
    const float lo = static_cast<float>(qp.minCode());
    const float hi = static_cast<float>(qp.maxCode());
    auto sa = acc.data();
    auto so = out.data();
    for (size_t i = 0; i < sa.size(); ++i)
        so[i] = requantOne(sa[i], combined, inv, lo, hi);
    return out;
}

/**
 * Requantize the current accumulator and emit both the codes and
 * their difference against the previous step's emission (the
 * producer-resident code cache) — the diff-calc-bypass payload.
 * `prev` is the same requantization of the previous accumulator, so
 * `d16` equals subtractInt8(codes_t, codes_prev) element for element
 * and a consumer running on it is bitwise identical to one that
 * stored the previous codes itself — without re-running the float
 * requantization of the previous step.
 */
void
requantCodesDelta(const Int32Tensor &acc, const Int8Tensor &prev,
                  float combined, const QuantParams &qp, Int8Tensor *codes,
                  Int16Tensor *d16)
{
    DITTO_ASSERT(prev.shape() == acc.shape(),
                 "payload code-cache shape mismatch");
    *codes = Int8Tensor(acc.shape());
    *d16 = Int16Tensor(acc.shape());
    const float inv = 1.0f / qp.scale;
    const float lo = static_cast<float>(qp.minCode());
    const float hi = static_cast<float>(qp.maxCode());
    auto sa = acc.data();
    auto sp = prev.data();
    auto sc = codes->data();
    auto sd = d16->data();
    for (size_t i = 0; i < sa.size(); ++i) {
        const int8_t ct = requantOne(sa[i], combined, inv, lo, hi);
        sc[i] = ct;
        sd[i] = static_cast<int16_t>(static_cast<int16_t>(ct) -
                                     static_cast<int16_t>(sp[i]));
    }
}

/**
 * Batched payload: per-slab primed flags — unprimed slabs get codes
 * only (their `d16` region stays zero and is never read, exactly like
 * an unprimed slab's engine state).
 */
void
requantCodesDeltaBatch(const Int32Tensor &acc, const Int8Tensor *prev,
                       float combined, const QuantParams &qp,
                       const uint8_t *primed, int64_t slabs,
                       Int8Tensor *codes, Int16Tensor *d16)
{
    *codes = Int8Tensor(acc.shape());
    *d16 = Int16Tensor(acc.shape());
    const float inv = 1.0f / qp.scale;
    const float lo = static_cast<float>(qp.minCode());
    const float hi = static_cast<float>(qp.maxCode());
    const int64_t slab_elems = acc.numel() / slabs;
    auto sa = acc.data();
    auto sc = codes->data();
    auto sd = d16->data();
    for (int64_t s = 0; s < slabs; ++s) {
        const int64_t base = s * slab_elems;
        if (primed && primed[s]) {
            DITTO_ASSERT(prev && prev->numel() == acc.numel(),
                         "primed payload slab needs its code cache");
            auto sp = prev->data();
            for (int64_t i = base; i < base + slab_elems; ++i) {
                const int8_t ct = requantOne(sa[static_cast<size_t>(i)],
                                             combined, inv, lo, hi);
                sc[static_cast<size_t>(i)] = ct;
                sd[static_cast<size_t>(i)] = static_cast<int16_t>(
                    static_cast<int16_t>(ct) -
                    static_cast<int16_t>(sp[static_cast<size_t>(i)]));
            }
        } else {
            for (int64_t i = base; i < base + slab_elems; ++i)
                sc[static_cast<size_t>(i)] = requantOne(
                    sa[static_cast<size_t>(i)], combined, inv, lo, hi);
        }
    }
}

/**
 * ApproxDitto stability signal of a Defo probe: the activity fraction
 * of the difference stream, weighting a 4-bit element half of an
 * 8-bit one ((0.5*low4 + full8)/total). 0 means the operand did not
 * change at all; the skip test `activity <= thresh` therefore makes
 * threshold 0 skip only bitwise-identical steps. Pure integer-derived
 * double arithmetic — deterministic at any thread count and batch
 * composition.
 */
double
approxActivity(const DiffClassCounts &c)
{
    const int64_t total = c.total();
    if (total == 0)
        return 0.0;
    return (0.5 * static_cast<double>(c.low4) +
            static_cast<double>(c.full8)) /
           static_cast<double>(total);
}

/** Copy slab `s` of `src` into the same region of `dst`. */
template <typename T>
void
copySlabRegion(const Tensor<T> &src, Tensor<T> *dst, int64_t s,
               int64_t slab_elems)
{
    std::copy(src.data().begin() + s * slab_elems,
              src.data().begin() + (s + 1) * slab_elems,
              dst->data().begin() + s * slab_elems);
}

/** Zero slab `s` of `t`. */
template <typename T>
void
zeroSlabRegion(Tensor<T> *t, int64_t s, int64_t slab_elems)
{
    std::fill(t->data().begin() + s * slab_elems,
              t->data().begin() + (s + 1) * slab_elems, T{});
}

/** Standalone (batch-of-one) shape of one slab of a stacked tensor. */
Shape
slabShape(const Shape &stacked, int64_t b)
{
    if (stacked.rank() == 4)
        return slab::withDim0(stacked, 1);
    DITTO_ASSERT(stacked.rank() == 2 && stacked[0] % b == 0,
                 "unsupported slab layout");
    return Shape{stacked[0] / b, stacked[1]};
}

/** Stacked shape holding `b` slabs of a standalone-slab tensor. */
Shape
stackedShape(const Shape &one, int64_t b)
{
    if (one.rank() == 4)
        return slab::withDim0(one, b);
    DITTO_ASSERT(one.rank() == 2, "unsupported slab layout");
    return Shape{one[0] * b, one[1]};
}

/**
 * Shared per-node epilogue of the four quant-executor compute paths
 * (single/batch x weight-stationary/attention): payload emission plus
 * code-cache refresh, f-liveness-gated float materialization, the
 * mode-specific operand code-state stores, and the accumulator's
 * disposition (value table for QuantDirect junction sources, prevOut
 * slot in Ditto mode). The call sites differ only in how a primed
 * payload delta is produced (single vs per-slab) and how summation
 * work is counted, passed in as lambdas — one definition to keep the
 * single and batched modes from silently diverging.
 *
 * `emit_stash` (ApproxDitto passes only) parks the pre-update emission
 * cache, indexed by slot: a hand-over consumer that decides to skip
 * this step must roll its producer's cache back to the emission its
 * replayed output corresponds to, so the next executed step's delta
 * telescopes across the skipped one exactly.
 */
template <typename Node, typename Value, typename State,
          typename EmitDeltaFn, typename CountSumFn, typename StoreFn>
void
nodeEpilogue(const Node &nd, Value &out, Int32Tensor &acc, float combined,
             bool use_ditto, State *state,
             const std::vector<float> &act_scale, bool any_primed,
             Int8Tensor *emit_stash, EmitDeltaFn &&emitDelta,
             CountSumFn &&countSum, StoreFn &&storeCodes)
{
    if (nd.emitPayload) {
        const QuantParams eqp{
            act_scale[static_cast<size_t>(nd.emitScale)], 8};
        if (any_primed)
            emitDelta(eqp, combined);
        else
            out.codes = requantCodes(acc, combined, eqp);
        // The emission becomes the next step's subtrahend.
        if (use_ditto) {
            Int8Tensor &cache =
                state->prevIn[static_cast<size_t>(nd.emitSlot)];
            if (emit_stash)
                emit_stash[static_cast<size_t>(nd.emitSlot)] =
                    std::move(cache);
            cache = out.codes;
        }
    }
    if (nd.fLive) {
        out.f = dequantizeAccum(acc, combined);
        countSum();
    }
    storeCodes();
    if (nd.keepAcc && !use_ditto)
        out.acc = std::move(acc);
    else if (use_ditto)
        state->prevOut[static_cast<size_t>(nd.outSlot)] = std::move(acc);
}

} // namespace

void
CompiledModel::BatchDittoState::appendSlabs(int64_t count)
{
    DITTO_ASSERT(count > 0, "appendSlabs needs a positive count");
    const int64_t b = batch();
    if (b > 0) {
        for (Int8Tensor &t : prevIn)
            if (t.numel() > 0)
                t = slab::appended(t, b, count);
        for (Int32Tensor &t : prevOut)
            if (t.numel() > 0)
                t = slab::appended(t, b, count);
        if (!consec.empty()) {
            const size_t stride = consec.size() / static_cast<size_t>(b);
            consec.insert(consec.end(),
                          static_cast<size_t>(count) * stride, 0);
            skips.insert(skips.end(),
                         static_cast<size_t>(count) * stride, 0);
        }
    }
    primed.insert(primed.end(), static_cast<size_t>(count), 0);
    approx.insert(approx.end(), static_cast<size_t>(count), 0);
    backRefs.insert(backRefs.end(), static_cast<size_t>(count),
                    nullptr);
}

void
CompiledModel::BatchDittoState::removeSlab(int64_t i)
{
    const int64_t b = batch();
    DITTO_ASSERT(i >= 0 && i < b, "removeSlab index out of range");
    if (b == 1) {
        prevIn.clear();
        prevOut.clear();
        primed.clear();
        approx.clear();
        consec.clear();
        skips.clear();
        backRefs.clear();
        return;
    }
    for (Int8Tensor &t : prevIn)
        if (t.numel() > 0)
            t = slab::removed(t, b, i);
    for (Int32Tensor &t : prevOut)
        if (t.numel() > 0)
            t = slab::removed(t, b, i);
    if (!consec.empty()) {
        const size_t stride = consec.size() / static_cast<size_t>(b);
        consec.erase(consec.begin() +
                         static_cast<int64_t>(stride) * i,
                     consec.begin() +
                         static_cast<int64_t>(stride) * (i + 1));
        skips.erase(skips.begin() + static_cast<int64_t>(stride) * i,
                    skips.begin() +
                        static_cast<int64_t>(stride) * (i + 1));
    }
    primed.erase(primed.begin() + i);
    if (i < static_cast<int64_t>(approx.size()))
        approx.erase(approx.begin() + i);
    if (i < static_cast<int64_t>(backRefs.size()))
        backRefs.erase(backRefs.begin() + i);
}

void
CompiledModel::BatchDittoState::resetSlab(int64_t i)
{
    const int64_t b = batch();
    DITTO_ASSERT(i >= 0 && i < b, "resetSlab index out of range");
    primed[static_cast<size_t>(i)] = 0;
    if (i < static_cast<int64_t>(approx.size()))
        approx[static_cast<size_t>(i)] = 0;
    // Hand-over severs descent: the new occupant owes nothing to
    // whatever external object (reuse-cache entry) the previous one
    // was installed from, and keeping the reference would pin evicted
    // entries to live slots.
    if (i < static_cast<int64_t>(backRefs.size()))
        backRefs[static_cast<size_t>(i)].reset();
    // Stale ApproxDitto reuse state from the slab's previous occupant
    // must not leak into the next request's skip decisions: its first
    // (unprimed) step never touches the counters, so a surviving
    // consecutive-skip run would gate the second step differently
    // from a fresh rollout.
    if (!consec.empty()) {
        const size_t stride = consec.size() / static_cast<size_t>(b);
        std::fill_n(consec.begin() + static_cast<int64_t>(stride) * i,
                    stride, 0);
        std::fill_n(skips.begin() + static_cast<int64_t>(stride) * i,
                    stride, int64_t{0});
    }
}

int64_t
CompiledModel::BatchDittoState::SlabState::payloadBytes() const
{
    int64_t b = 0;
    for (const auto &t : prevIn)
        b += t.numel() * static_cast<int64_t>(sizeof(int8_t));
    for (const auto &t : prevOut)
        b += t.numel() * static_cast<int64_t>(sizeof(int32_t));
    b += static_cast<int64_t>(consec.size()) *
         static_cast<int64_t>(sizeof(int32_t));
    b += static_cast<int64_t>(skips.size()) *
         static_cast<int64_t>(sizeof(int64_t));
    return b;
}

CompiledModel::BatchDittoState::SlabState
CompiledModel::BatchDittoState::extractSlab(int64_t i) const
{
    const int64_t b = batch();
    DITTO_ASSERT(i >= 0 && i < b, "extractSlab index out of range");
    SlabState s;
    s.prevIn.resize(prevIn.size());
    for (size_t k = 0; k < prevIn.size(); ++k) {
        const Int8Tensor &t = prevIn[k];
        if (t.numel() == 0)
            continue;
        const int64_t elems = t.numel() / b;
        Int8Tensor one(slabShape(t.shape(), b));
        std::copy(t.data().begin() + i * elems,
                  t.data().begin() + (i + 1) * elems,
                  one.data().begin());
        s.prevIn[k] = std::move(one);
    }
    s.prevOut.resize(prevOut.size());
    for (size_t k = 0; k < prevOut.size(); ++k) {
        const Int32Tensor &t = prevOut[k];
        if (t.numel() == 0)
            continue;
        const int64_t elems = t.numel() / b;
        Int32Tensor one(slabShape(t.shape(), b));
        std::copy(t.data().begin() + i * elems,
                  t.data().begin() + (i + 1) * elems,
                  one.data().begin());
        s.prevOut[k] = std::move(one);
    }
    s.primed = primed[static_cast<size_t>(i)];
    s.approx = i < static_cast<int64_t>(approx.size())
                   ? approx[static_cast<size_t>(i)]
                   : 0;
    if (!consec.empty()) {
        const size_t stride = consec.size() / static_cast<size_t>(b);
        s.consec.assign(consec.begin() +
                            static_cast<int64_t>(stride) * i,
                        consec.begin() +
                            static_cast<int64_t>(stride) * (i + 1));
        s.skips.assign(skips.begin() + static_cast<int64_t>(stride) * i,
                       skips.begin() +
                           static_cast<int64_t>(stride) * (i + 1));
    }
    return s;
}

void
CompiledModel::BatchDittoState::installSlab(int64_t i, const SlabState &s)
{
    const int64_t b = batch();
    DITTO_ASSERT(i >= 0 && i < b, "installSlab index out of range");
    if (prevIn.empty() && !s.prevIn.empty())
        prevIn.resize(s.prevIn.size());
    if (prevOut.empty() && !s.prevOut.empty())
        prevOut.resize(s.prevOut.size());
    for (size_t k = 0; k < s.prevIn.size(); ++k) {
        const Int8Tensor &one = s.prevIn[k];
        if (one.numel() == 0)
            continue;
        Int8Tensor &t = prevIn[k];
        if (t.numel() == 0)
            t = Int8Tensor(stackedShape(one.shape(), b));
        const int64_t elems = one.numel();
        DITTO_ASSERT(t.numel() == elems * b,
                     "installSlab slot geometry mismatch");
        std::copy(one.data().begin(), one.data().end(),
                  t.data().begin() + i * elems);
    }
    for (size_t k = 0; k < s.prevOut.size(); ++k) {
        const Int32Tensor &one = s.prevOut[k];
        if (one.numel() == 0)
            continue;
        Int32Tensor &t = prevOut[k];
        if (t.numel() == 0)
            t = Int32Tensor(stackedShape(one.shape(), b));
        const int64_t elems = one.numel();
        DITTO_ASSERT(t.numel() == elems * b,
                     "installSlab slot geometry mismatch");
        std::copy(one.data().begin(), one.data().end(),
                  t.data().begin() + i * elems);
    }
    primed[static_cast<size_t>(i)] = s.primed;
    if (approx.size() != primed.size())
        approx.resize(primed.size(), 0);
    approx[static_cast<size_t>(i)] = s.approx;
    if (backRefs.size() != primed.size())
        backRefs.resize(primed.size());
    backRefs[static_cast<size_t>(i)] = s.backRef;
    if (!s.consec.empty()) {
        const size_t stride = s.consec.size();
        if (consec.size() != stride * static_cast<size_t>(b)) {
            consec.assign(stride * static_cast<size_t>(b), 0);
            skips.assign(stride * static_cast<size_t>(b), 0);
        }
        std::copy(s.consec.begin(), s.consec.end(),
                  consec.begin() + static_cast<int64_t>(stride) * i);
        std::copy(s.skips.begin(), s.skips.end(),
                  skips.begin() + static_cast<int64_t>(stride) * i);
    }
}

float
CompiledModel::combinedScale(const Node &nd) const
{
    const NodeSpec &ns = nd.spec;
    if (ns.op == RtOp::AttnScores || ns.op == RtOp::AttnOutput)
        return actScale_[static_cast<size_t>(ns.scaleIn)] *
               actScale_[static_cast<size_t>(ns.scaleIn2)];
    return actScale_[static_cast<size_t>(ns.scaleIn)] * nd.wScale;
}

void
CompiledModel::runJunction(const Node &nd, const std::vector<Value> &vals,
                           const std::vector<Int32Tensor> *prevOut,
                           const int8_t *prevCodes, const uint8_t *primed,
                           int64_t bsz, Int8Tensor *codes,
                           Int16Tensor *d16) const
{
    const JunctionPlan &plan = *nd.junction;
    const Shape &one =
        spec_.nodes[static_cast<size_t>(nd.spec.inputs[0])].outShape;
    const Shape stacked = one.rank() == 4
                              ? slab::withDim0(one, bsz)
                              : Shape{one[0] * bsz, one[1]};
    *codes = Int8Tensor(stacked);
    bool any_primed = false;
    for (int64_t s = 0; primed && s < bsz; ++s)
        any_primed |= primed[s] != 0;
    if (any_primed)
        *d16 = Int16Tensor(stacked); // unprimed regions stay zero
    const QuantParams qp{
        actScale_[static_cast<size_t>(nd.spec.scaleIn)], 8};

    std::vector<RequantSource> srcs;
    for (const JunctionRegion &r : plan.regions) {
        srcs.resize(r.sources.size());
        for (int64_t s = 0; s < bsz; ++s) {
            const bool sp = primed && primed[s];
            DITTO_ASSERT(!sp || prevCodes,
                         "primed junction fold needs its code cache");
            for (size_t i = 0; i < r.sources.size(); ++i) {
                const int src = r.sources[i];
                // prevOut slots hold the *current* accumulator here:
                // the producer ran earlier in this pass.
                const Int32Tensor *acc =
                    prevOut ? &(*prevOut)[static_cast<size_t>(
                                  nodes_[static_cast<size_t>(src)]
                                      .outSlot)]
                            : &vals[static_cast<size_t>(src)].acc;
                DITTO_ASSERT(acc->numel() == r.srcElems * bsz,
                             "junction source accumulator missing");
                srcs[i].acc = acc->data().data() + s * r.srcElems;
                srcs[i].scale =
                    combinedScale(nodes_[static_cast<size_t>(src)]);
            }
            const int64_t off = s * plan.slabElems + r.outOffset;
            int8_t *oc = codes->data().data() + off;
            const int8_t *pc = sp ? prevCodes + off : nullptr;
            int16_t *od = sp ? d16->data().data() + off : nullptr;
            switch (r.transform) {
              case JunctionRegion::Transform::Identity:
                requantSumDelta(srcs, r.outElems, qp, pc, oc, od);
                break;
              case JunctionRegion::Transform::Upsample2x:
                requantUpsample2xSumDelta(srcs, r.c, r.h, r.w, qp, pc,
                                          oc, od);
                break;
              case JunctionRegion::Transform::AvgPool2x:
                requantAvgPool2xSumDelta(srcs, r.c, r.h, r.w, qp, pc,
                                         oc, od);
                break;
            }
        }
    }
}

std::vector<CompiledModel::NodeReport>
CompiledModel::nodeReports() const
{
    std::vector<NodeReport> out;
    out.reserve(nodes_.size());
    for (const Node &nd : nodes_) {
        NodeReport r;
        r.name = nd.spec.name;
        r.op = nd.spec.op;
        r.layer = nd.layer;
        r.compute = rtIsCompute(nd.spec.op);
        r.diffBypass = nd.diffBypass;
        r.diffBypass2 = nd.diffBypass2;
        r.junction = nd.junction.has_value();
        r.sumSkip = r.compute && !nd.fLive;
        r.emitsPayload = nd.emitPayload;
        r.deadStructural = nd.skipExec;
        r.outElems = r.compute ? nd.spec.outShape.numel() : 0;
        out.push_back(std::move(r));
    }
    return out;
}

void
CompiledModel::validateSingle(const FloatTensor &x, const char *what) const
{
    if (x.shape() != spec_.inputShape)
        DITTO_FATAL(what << ": tensor shape " << x.shape().toString()
                         << " does not match model input "
                         << spec_.inputShape.toString() << " of spec '"
                         << spec_.name << "'");
}

FloatTensor
CompiledModel::forwardFp32(
    const FloatTensor &x,
    const std::function<void(int, const FloatTensor &)> *obs) const
{
    auto observe = [&](int idx, const FloatTensor &t) {
        if (obs && *obs)
            (*obs)(idx, t);
    };
    std::vector<Value> vals(nodes_.size());
    for (const Node &nd : nodes_) {
        const NodeSpec &ns = nd.spec;
        Value &out = vals[static_cast<size_t>(ns.id)];
        auto in = [&](int j) -> const FloatTensor & {
            return vals[static_cast<size_t>(ns.inputs[static_cast<size_t>(
                            j)])]
                .f;
        };
        switch (ns.op) {
          case RtOp::Input:
            out.f = x;
            break;
          case RtOp::Conv2d:
            observe(ns.scaleIn, in(0));
            out.f = conv2d(in(0), nd.wF, nullptr, ns.conv);
            break;
          case RtOp::Fc:
            observe(ns.scaleIn, in(0));
            out.f = fullyConnected(in(0), nd.wF, nullptr);
            break;
          case RtOp::AttnScores:
            observe(ns.scaleIn, in(0));
            observe(ns.scaleIn2, in(1));
            out.f = matmulTransposed(in(0), in(1));
            break;
          case RtOp::AttnOutput:
            observe(ns.scaleIn, in(0));
            observe(ns.scaleIn2, in(1));
            out.f = matmul(in(0), in(1));
            break;
          case RtOp::CrossScores:
            observe(ns.scaleIn, in(0));
            out.f = matmulTransposed(in(0), nd.constF);
            break;
          case RtOp::CrossOutput:
            observe(ns.scaleIn, in(0));
            out.f = matmul(in(0), nd.constF);
            break;
          case RtOp::GroupNorm:
            out.f = groupNorm(in(0), ns.groups);
            break;
          case RtOp::LayerNorm:
            out.f = layerNorm(in(0));
            break;
          case RtOp::SiLU:
            out.f = silu(in(0));
            break;
          case RtOp::GeLU:
            out.f = gelu(in(0));
            break;
          case RtOp::Softmax:
            out.f = softmaxRows(in(0));
            break;
          case RtOp::Add:
            out.f = add(in(0), in(1));
            break;
          case RtOp::Affine:
            out.f = affine(in(0), ns.affineScale, ns.affineShift);
            break;
          case RtOp::Concat:
            out.f = concatChannelsF(in(0), in(1));
            break;
          case RtOp::Upsample2x:
            out.f = upsample2xF(in(0));
            break;
          case RtOp::AvgPool2x:
            out.f = avgPool2xF(in(0));
            break;
          case RtOp::NchwToTokens:
            out.f = toTokens(in(0));
            break;
          case RtOp::TokensToNchw:
            out.f = toNchw(in(0), ns.outShape[2], ns.outShape[3]);
            break;
        }
    }
    return std::move(vals.back().f);
}

void
CompiledModel::runStructural(const Node &nd, std::vector<Value> &vals,
                             const FloatTensor &x) const
{
    const NodeSpec &ns = nd.spec;
    Value &out = vals[static_cast<size_t>(ns.id)];
    auto inVal = [&](int j) -> Value & {
        return vals[static_cast<size_t>(
            ns.inputs[static_cast<size_t>(j)])];
    };
    switch (ns.op) {
      case RtOp::Input:
        out.f = x;
        break;
      case RtOp::GroupNorm:
        out.f = groupNorm(inVal(0).f, ns.groups);
        break;
      case RtOp::LayerNorm:
        out.f = layerNorm(inVal(0).f);
        break;
      case RtOp::SiLU:
        out.f = silu(inVal(0).f);
        break;
      case RtOp::GeLU:
        out.f = gelu(inVal(0).f);
        break;
      case RtOp::Softmax:
        out.f = softmaxRows(inVal(0).f);
        break;
      case RtOp::Add:
        out.f = add(inVal(0).f, inVal(1).f);
        break;
      case RtOp::Affine:
        out.f = affine(inVal(0).f, ns.affineScale, ns.affineShift);
        break;
      case RtOp::Concat:
        out.f = concatChannelsF(inVal(0).f, inVal(1).f);
        break;
      case RtOp::Upsample2x:
        out.f = upsample2xF(inVal(0).f);
        break;
      case RtOp::AvgPool2x:
        out.f = avgPool2xF(inVal(0).f);
        break;
      case RtOp::NchwToTokens: {
        Value &in = inVal(0);
        if (in.f.numel() > 0 && nd.fLive)
            out.f = toTokens(in.f);
        if (in.codes.numel() > 0)
            out.codes = toTokens(in.codes);
        if (in.d16.numel() > 0)
            out.d16 = toTokens(in.d16);
        break;
      }
      case RtOp::TokensToNchw: {
        Value &in = inVal(0);
        const int64_t h = ns.outShape[2];
        const int64_t w = ns.outShape[3];
        if (in.f.numel() > 0 && nd.fLive)
            out.f = toNchw(in.f, h, w);
        if (in.codes.numel() > 0)
            out.codes = toNchw(in.codes, h, w);
        if (in.d16.numel() > 0)
            out.d16 = toNchw(in.d16, h, w);
        break;
      }
      default:
        DITTO_PANIC("compute op in the structural interpreter");
    }
}

FloatTensor
CompiledModel::forwardQuant(const FloatTensor &x, bool use_ditto,
                            bool approx, DittoState *state,
                            OpCounts *counts) const
{
    DITTO_ASSERT(!use_ditto || state != nullptr,
                 "Ditto mode needs persistent state");
    DITTO_ASSERT(!approx || use_ditto,
                 "ApproxDitto runs on the Ditto state machinery");
    const bool primed = use_ditto && state->primed;
    if (use_ditto && state->prevIn.empty()) {
        state->prevIn.resize(static_cast<size_t>(numInSlots_));
        state->prevOut.resize(static_cast<size_t>(numOutSlots_));
    }
    if (approx && state->consec.size() != nodes_.size()) {
        state->consec.assign(nodes_.size(), 0);
        state->skips.assign(nodes_.size(), 0);
    }
    // Skips are only legal on primed steps (there is a cached output
    // to replay). The stash holds every emitting producer's pre-update
    // code cache so a skipping consumer can roll it back.
    const bool approx_pass = approx && primed;
    std::vector<Int8Tensor> emit_stash(
        approx_pass ? static_cast<size_t>(numInSlots_) : 0);
    Int8Tensor *stash = approx_pass ? emit_stash.data() : nullptr;

    std::vector<Value> vals(nodes_.size());
    for (const Node &nd : nodes_) {
        const NodeSpec &ns = nd.spec;
        Value &out = vals[static_cast<size_t>(ns.id)];
        auto inVal = [&](int j) -> Value & {
            return vals[static_cast<size_t>(
                ns.inputs[static_cast<size_t>(j)])];
        };

        // Weight-stationary compute: one engine, one dynamic operand.
        if (ns.op == RtOp::Conv2d || ns.op == RtOp::Fc ||
            ns.op == RtOp::CrossScores || ns.op == RtOp::CrossOutput) {
            Value &in = inVal(0);
            const QuantParams qp{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            // The operand arrives pre-quantized in this node's code
            // domain from a junction fold or a single-producer
            // payload; everyone else quantizes the float input.
            Int8Tensor codes;
            Int16Tensor jd16;
            const Int16Tensor *dptr = nullptr;
            if (nd.junction) {
                const uint8_t one = 1;
                runJunction(nd, vals,
                            use_ditto ? &state->prevOut : nullptr,
                            primed ? state
                                         ->prevIn[static_cast<size_t>(
                                             nd.jSlot)]
                                         .data()
                                         .data()
                                   : nullptr,
                            primed ? &one : nullptr, 1, &codes, &jd16);
                if (primed)
                    dptr = &jd16;
            } else if (nd.diffBypass) {
                DITTO_ASSERT(in.codes.numel() > 0,
                             "bypass payload missing codes");
                codes = std::move(in.codes);
                if (primed) {
                    DITTO_ASSERT(in.d16.numel() > 0,
                                 "bypass payload missing difference");
                    dptr = &in.d16;
                }
            } else {
                codes = quantize(in.f, qp);
            }

            // ApproxDitto: probe the operand's temporal difference and
            // replay the cached previous output when it is stable
            // enough. Every operand form reuses its step's difference
            // reference: a handed-over delta, a junction fold's delta,
            // or the stored previous codes.
            bool skipped = false;
            if (approx_pass) {
                int32_t &consec =
                    state->consec[static_cast<size_t>(ns.id)];
                if (consec < approxCap_) {
                    const DiffClassCounts pc =
                        dptr ? countDiffClasses(*dptr)
                             : countTemporalDiffClasses(
                                   codes,
                                   state->prevIn[static_cast<size_t>(
                                       nd.inSlot)]);
                    skipped = approxActivity(pc) <= approxThresh_;
                }
                if (skipped) {
                    ++consec;
                    ++state->skips[static_cast<size_t>(ns.id)];
                } else {
                    consec = 0;
                }
            }

            Int32Tensor acc;
            if (skipped) {
                // Replay, and freeze the difference reference to the
                // operand this output corresponds to: the next
                // executed step's delta then telescopes across the
                // skipped one exactly (out = prevOut + W(x_{t+1} -
                // x_{t-1})), so the error stays confined to skipped
                // steps.
                acc = state->prevOut[static_cast<size_t>(nd.outSlot)];
                if (nd.junction) {
                    codes =
                        state->prevIn[static_cast<size_t>(nd.jSlot)];
                } else if (nd.diffBypass) {
                    const Node &prod =
                        nodes_[static_cast<size_t>(nd.srcProducer)];
                    Int8Tensor &old = emit_stash[static_cast<size_t>(
                        prod.emitSlot)];
                    DITTO_ASSERT(old.numel() > 0,
                                 "skip needs the producer's stashed "
                                 "emission cache");
                    state->prevIn[static_cast<size_t>(prod.emitSlot)] =
                        std::move(old);
                } else {
                    codes =
                        state->prevIn[static_cast<size_t>(nd.inSlot)];
                }
                if (counts)
                    counts->reusedElems += acc.numel();
            } else if (!primed) {
                if (nd.conv)
                    acc = nd.conv->runDirect(codes);
                else if (nd.cross)
                    acc = nd.cross->runDirect(codes);
                else
                    acc = nd.fc->runDirect(codes);
            } else if (dptr) {
                const Int32Tensor &prev =
                    state->prevOut[static_cast<size_t>(nd.outSlot)];
                if (nd.conv)
                    acc = nd.conv->runDiffPre(codes, *dptr, prev, counts,
                                              opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runDiffPre(codes, *dptr, prev,
                                               counts, opts_.policy);
                else
                    acc = nd.fc->runDiffPre(codes, *dptr, prev, counts,
                                            opts_.policy);
            } else {
                const Int8Tensor &prev_in =
                    state->prevIn[static_cast<size_t>(nd.inSlot)];
                const Int32Tensor &prev_out =
                    state->prevOut[static_cast<size_t>(nd.outSlot)];
                if (nd.conv)
                    acc = nd.conv->runDiff(codes, prev_in, prev_out,
                                           counts, opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runDiff(codes, prev_in, prev_out,
                                            counts, opts_.policy);
                else
                    acc = nd.fc->runDiff(codes, prev_in, prev_out, counts,
                                         opts_.policy);
                if (counts)
                    counts->diffCalcElems += codes.numel();
            }

            nodeEpilogue(
                nd, out, acc, combinedScale(nd), use_ditto, state,
                actScale_, primed, stash,
                [&](const QuantParams &eqp, float combined) {
                    requantCodesDelta(
                        acc,
                        state->prevIn[static_cast<size_t>(nd.emitSlot)],
                        combined, eqp, &out.codes, &out.d16);
                },
                [&] {
                    if (counts && primed)
                        counts->summationElems += acc.numel();
                },
                [&] {
                    if (!use_ditto)
                        return;
                    if (nd.inSlot >= 0)
                        state->prevIn[static_cast<size_t>(nd.inSlot)] =
                            std::move(codes);
                    else if (nd.junction)
                        state->prevIn[static_cast<size_t>(nd.jSlot)] =
                            std::move(codes);
                });
            continue;
        }

        // Dynamic-dynamic attention: two operands, two-term expansion,
        // either operand possibly handed over by its producer.
        if (ns.op == RtOp::AttnScores || ns.op == RtOp::AttnOutput) {
            Value &av = inVal(0);
            Value &bv = inVal(1);
            const QuantParams qpa{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            const QuantParams qpb{
                actScale_[static_cast<size_t>(ns.scaleIn2)], 8};
            Int8Tensor a_codes, b_codes;
            if (nd.diffBypass) {
                DITTO_ASSERT(av.codes.numel() > 0,
                             "operand payload missing codes");
                a_codes = std::move(av.codes);
            } else {
                a_codes = quantize(av.f, qpa);
            }
            if (nd.diffBypass2) {
                DITTO_ASSERT(bv.codes.numel() > 0,
                             "operand payload missing codes");
                b_codes = std::move(bv.codes);
            } else {
                b_codes = quantize(bv.f, qpb);
            }

            // ApproxDitto is all-or-nothing per attention node: both
            // operands must be stable (every expansion term carries a
            // difference factor of one operand or the other).
            bool skipped = false;
            if (approx_pass) {
                int32_t &consec =
                    state->consec[static_cast<size_t>(ns.id)];
                if (consec < approxCap_) {
                    const DiffClassCounts ca =
                        nd.diffBypass
                            ? countDiffClasses(av.d16)
                            : countTemporalDiffClasses(
                                  a_codes,
                                  state->prevIn[static_cast<size_t>(
                                      nd.inSlot)]);
                    const DiffClassCounts cb =
                        nd.diffBypass2
                            ? countDiffClasses(bv.d16)
                            : countTemporalDiffClasses(
                                  b_codes,
                                  state->prevIn[static_cast<size_t>(
                                      nd.inSlot2)]);
                    skipped = approxActivity(ca) <= approxThresh_ &&
                              approxActivity(cb) <= approxThresh_;
                }
                if (skipped) {
                    ++consec;
                    ++state->skips[static_cast<size_t>(ns.id)];
                } else {
                    consec = 0;
                }
            }

            Int32Tensor acc;
            if (skipped) {
                acc = state->prevOut[static_cast<size_t>(nd.outSlot)];
                if (nd.diffBypass) {
                    const Node &prod =
                        nodes_[static_cast<size_t>(nd.srcProducer)];
                    state->prevIn[static_cast<size_t>(prod.emitSlot)] =
                        std::move(emit_stash[static_cast<size_t>(
                            prod.emitSlot)]);
                } else {
                    a_codes =
                        state->prevIn[static_cast<size_t>(nd.inSlot)];
                }
                if (nd.diffBypass2) {
                    const Node &prod =
                        nodes_[static_cast<size_t>(nd.srcProducer2)];
                    state->prevIn[static_cast<size_t>(prod.emitSlot)] =
                        std::move(emit_stash[static_cast<size_t>(
                            prod.emitSlot)]);
                } else {
                    b_codes =
                        state->prevIn[static_cast<size_t>(nd.inSlot2)];
                }
                if (counts)
                    counts->reusedElems += acc.numel();
            } else if (!primed) {
                acc = ns.op == RtOp::AttnScores
                          ? attentionScoresDirect(a_codes, b_codes)
                          : attentionOutputDirect(a_codes, b_codes);
            } else {
                const Int16Tensor *da = nullptr;
                const Int8Tensor *pa = nullptr;
                if (nd.diffBypass) {
                    DITTO_ASSERT(av.d16.numel() > 0,
                                 "operand payload missing difference");
                    da = &av.d16;
                } else {
                    pa = &state->prevIn[static_cast<size_t>(nd.inSlot)];
                }
                const Int16Tensor *db = nullptr;
                const Int8Tensor *pb = nullptr;
                if (nd.diffBypass2) {
                    DITTO_ASSERT(bv.d16.numel() > 0,
                                 "operand payload missing difference");
                    db = &bv.d16;
                } else {
                    pb = &state->prevIn[static_cast<size_t>(nd.inSlot2)];
                }
                const Int32Tensor &prev_out =
                    state->prevOut[static_cast<size_t>(nd.outSlot)];
                acc = ns.op == RtOp::AttnScores
                          ? attentionScoresPre(a_codes, da, pa, b_codes,
                                               db, pb, prev_out, counts,
                                               opts_.policy)
                          : attentionOutputPre(a_codes, da, pa, b_codes,
                                               db, pb, prev_out, counts,
                                               opts_.policy);
                if (counts)
                    counts->diffCalcElems +=
                        (pa ? a_codes.numel() : 0) +
                        (pb ? b_codes.numel() : 0);
            }
            nodeEpilogue(
                nd, out, acc, combinedScale(nd), use_ditto, state,
                actScale_, primed, stash,
                [&](const QuantParams &eqp, float combined) {
                    requantCodesDelta(
                        acc,
                        state->prevIn[static_cast<size_t>(nd.emitSlot)],
                        combined, eqp, &out.codes, &out.d16);
                },
                [&] {
                    if (counts && primed)
                        counts->summationElems += acc.numel();
                },
                [&] {
                    if (!use_ditto)
                        return;
                    if (nd.inSlot >= 0)
                        state->prevIn[static_cast<size_t>(nd.inSlot)] =
                            std::move(a_codes);
                    if (nd.inSlot2 >= 0)
                        state->prevIn[static_cast<size_t>(nd.inSlot2)] =
                            std::move(b_codes);
                });
            continue;
        }

        // Vector / structural ops on full values; reshapes also carry
        // the bypass payload through unchanged (element bijections).
        // Plan-covered junction subtrees never execute.
        if (!nd.skipExec)
            runStructural(nd, vals, x);
    }
    if (use_ditto)
        state->primed = true;
    DITTO_ASSERT(vals.back().f.numel() > 0,
                 "output node must materialize full values");
    return std::move(vals.back().f);
}

FloatTensor
CompiledModel::forwardQuantBatch(const FloatTensor &x, bool use_ditto,
                                 bool approx, BatchDittoState *state,
                                 OpCounts *counts) const
{
    DITTO_ASSERT(x.shape().rank() == 4, "batched input must be NCHW");
    const int64_t bsz = x.shape()[0];
    DITTO_ASSERT(!use_ditto || state != nullptr,
                 "Ditto mode needs persistent batch state");
    DITTO_ASSERT(!use_ditto || state->batch() == bsz,
                 "batch state size mismatch");
    DITTO_ASSERT(!approx || use_ditto,
                 "ApproxDitto runs on the Ditto state machinery");
    if (use_ditto && state->prevIn.empty()) {
        state->prevIn.resize(static_cast<size_t>(numInSlots_));
        state->prevOut.resize(static_cast<size_t>(numOutSlots_));
    }
    const uint8_t *primed = use_ditto ? state->primed.data() : nullptr;
    auto anyPrimed = [&] {
        if (!primed)
            return false;
        for (int64_t s = 0; s < bsz; ++s)
            if (primed[s])
                return true;
        return false;
    };
    const bool have_primed = anyPrimed();

    // ApproxDitto bookkeeping: per-slab enables (the serving layer
    // mixes exact and approx requests in one batch; exact slabs are
    // never skipped) and [slab][node] skip counters.
    if (approx) {
        DITTO_ASSERT(state->approx.size() == static_cast<size_t>(bsz),
                     "approx batch needs per-slab approx flags");
        if (state->consec.size() !=
            nodes_.size() * static_cast<size_t>(bsz)) {
            state->consec.assign(
                nodes_.size() * static_cast<size_t>(bsz), 0);
            state->skips.assign(
                nodes_.size() * static_cast<size_t>(bsz), 0);
        }
    }
    const uint8_t *approx_flags = approx ? state->approx.data() : nullptr;
    auto slabApprox = [&](int64_t s) {
        return approx_flags && approx_flags[s] && primed[s];
    };
    bool any_approx = false;
    for (int64_t s = 0; approx_flags && s < bsz; ++s)
        any_approx |= slabApprox(s);
    std::vector<Int8Tensor> emit_stash(
        any_approx ? static_cast<size_t>(numInSlots_) : 0);
    Int8Tensor *stash = any_approx ? emit_stash.data() : nullptr;
    const size_t nnodes = nodes_.size();

    // Previous-state slot pointer, or null while not materialized (the
    // engines only dereference state for primed slabs).
    auto prevIn = [&](int slot) -> const Int8Tensor * {
        return use_ditto &&
                       state->prevIn[static_cast<size_t>(slot)].numel() > 0
                   ? &state->prevIn[static_cast<size_t>(slot)]
                   : nullptr;
    };
    auto prevOut = [&](int slot) -> const Int32Tensor * {
        return use_ditto &&
                       state->prevOut[static_cast<size_t>(slot)].numel() >
                           0
                   ? &state->prevOut[static_cast<size_t>(slot)]
                   : nullptr;
    };
    // Per-slab tallies for work done against stored previous state.
    auto countDiffCalc = [&](int64_t elems_per_slab) {
        if (!counts || !primed)
            return;
        for (int64_t s = 0; s < bsz; ++s)
            if (primed[s])
                counts[s].diffCalcElems += elems_per_slab;
    };
    auto countSummation = [&](int64_t elems_per_slab) {
        if (!counts || !primed)
            return;
        for (int64_t s = 0; s < bsz; ++s)
            if (primed[s])
                counts[s].summationElems += elems_per_slab;
    };

    std::vector<Value> vals(nodes_.size());
    for (const Node &nd : nodes_) {
        const NodeSpec &ns = nd.spec;
        Value &out = vals[static_cast<size_t>(ns.id)];
        auto inVal = [&](int j) -> Value & {
            return vals[static_cast<size_t>(
                ns.inputs[static_cast<size_t>(j)])];
        };

        if (ns.op == RtOp::Conv2d || ns.op == RtOp::Fc ||
            ns.op == RtOp::CrossScores || ns.op == RtOp::CrossOutput) {
            Value &in = inVal(0);
            const QuantParams qp{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            Int8Tensor codes;
            Int16Tensor jd16;
            const Int16Tensor *dptr = nullptr;
            if (nd.junction) {
                runJunction(nd, vals,
                            use_ditto ? &state->prevOut : nullptr,
                            have_primed
                                ? state
                                      ->prevIn[static_cast<size_t>(
                                          nd.jSlot)]
                                      .data()
                                      .data()
                                : nullptr,
                            primed, bsz, &codes, &jd16);
                if (have_primed)
                    dptr = &jd16;
            } else if (nd.diffBypass) {
                DITTO_ASSERT(in.codes.numel() > 0,
                             "bypass payload missing codes");
                codes = std::move(in.codes);
                if (have_primed) {
                    DITTO_ASSERT(in.d16.numel() > 0,
                                 "bypass payload missing difference");
                    jd16 = std::move(in.d16);
                    dptr = &jd16;
                }
            } else {
                codes = quantize(in.f, qp);
            }

            // ApproxDitto per-slab skip decisions: a skipped slab's
            // difference region is forced to zero (and its frozen
            // codes re-stored), which makes the batched engines
            // reproduce the replay bitwise — out = prevOut + W*0 —
            // while non-skipped slabs run unchanged. When every slab
            // skips, the engine call is bypassed entirely.
            std::vector<uint8_t> skip_slab;
            bool any_skip = false;
            bool all_skip = false;
            if (any_approx) {
                skip_slab.assign(static_cast<size_t>(bsz), 0);
                all_skip = true;
                const int64_t in_elems = codes.numel() / bsz;
                for (int64_t s = 0; s < bsz; ++s) {
                    bool sk = false;
                    if (slabApprox(s)) {
                        int32_t &consec = state->consec
                            [static_cast<size_t>(s) * nnodes +
                             static_cast<size_t>(ns.id)];
                        if (consec < approxCap_) {
                            const DiffClassCounts pc =
                                dptr ? countDiffClasses(*dptr,
                                                        s * in_elems,
                                                        in_elems)
                                     : countTemporalDiffClasses(
                                           codes,
                                           state->prevIn
                                               [static_cast<size_t>(
                                                   nd.inSlot)],
                                           s * in_elems, in_elems);
                            sk = approxActivity(pc) <= approxThresh_;
                        }
                        if (sk) {
                            ++consec;
                            ++state->skips
                                  [static_cast<size_t>(s) * nnodes +
                                   static_cast<size_t>(ns.id)];
                        } else {
                            consec = 0;
                        }
                    }
                    skip_slab[static_cast<size_t>(s)] = sk;
                    any_skip |= sk;
                    all_skip &= sk;
                }
            }
            if (any_skip) {
                const int64_t in_elems = codes.numel() / bsz;
                const int64_t out_elems = ns.outShape.numel();
                for (int64_t s = 0; s < bsz; ++s) {
                    if (!skip_slab[static_cast<size_t>(s)])
                        continue;
                    if (nd.junction) {
                        // Freeze the fold: re-emit the previous
                        // cached codes, zero the delta region.
                        copySlabRegion(
                            state->prevIn[static_cast<size_t>(
                                nd.jSlot)],
                            &codes, s, in_elems);
                        zeroSlabRegion(&jd16, s, in_elems);
                    } else if (nd.diffBypass) {
                        zeroSlabRegion(&jd16, s, in_elems);
                        const Node &prod = nodes_[static_cast<size_t>(
                            nd.srcProducer)];
                        copySlabRegion(
                            emit_stash[static_cast<size_t>(
                                prod.emitSlot)],
                            &state->prevIn[static_cast<size_t>(
                                prod.emitSlot)],
                            s, in_elems);
                    } else {
                        copySlabRegion(
                            state->prevIn[static_cast<size_t>(
                                nd.inSlot)],
                            &codes, s, in_elems);
                    }
                    if (counts)
                        counts[s].reusedElems += out_elems;
                }
            }

            Int32Tensor acc;
            if (all_skip) {
                acc = *prevOut(nd.outSlot);
            } else if (dptr) {
                if (nd.conv)
                    acc = nd.conv->runBatchPre(codes, *dptr,
                                               prevOut(nd.outSlot),
                                               primed, counts,
                                               opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runBatchPre(codes, *dptr, bsz,
                                                prevOut(nd.outSlot),
                                                primed, counts,
                                                opts_.policy);
                else
                    acc = nd.fc->runBatchPre(codes, *dptr, bsz,
                                             prevOut(nd.outSlot), primed,
                                             counts, opts_.policy);
            } else if (nd.diffBypass || nd.junction) {
                // No slab is primed yet: no payload difference exists
                // and none is needed — every slab runs direct through
                // the ordinary batched entry point (which skips all
                // unprimed slabs' state entirely).
                if (nd.conv)
                    acc = nd.conv->runBatch(codes, nullptr, nullptr,
                                            primed, counts,
                                            opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runBatch(codes, bsz, nullptr,
                                             nullptr, primed, counts,
                                             opts_.policy);
                else
                    acc = nd.fc->runBatch(codes, bsz, nullptr, nullptr,
                                          primed, counts, opts_.policy);
            } else {
                if (nd.conv)
                    acc = nd.conv->runBatch(codes, prevIn(nd.inSlot),
                                            prevOut(nd.outSlot), primed,
                                            counts, opts_.policy);
                else if (nd.cross)
                    acc = nd.cross->runBatch(codes, bsz,
                                             prevIn(nd.inSlot),
                                             prevOut(nd.outSlot), primed,
                                             counts, opts_.policy);
                else
                    acc = nd.fc->runBatch(codes, bsz, prevIn(nd.inSlot),
                                          prevOut(nd.outSlot), primed,
                                          counts, opts_.policy);
                countDiffCalc(codes.numel() / bsz);
            }

            nodeEpilogue(
                nd, out, acc, combinedScale(nd), use_ditto, state,
                actScale_, have_primed, stash,
                [&](const QuantParams &eqp, float combined) {
                    requantCodesDeltaBatch(
                        acc,
                        &state->prevIn[static_cast<size_t>(nd.emitSlot)],
                        combined, eqp, primed, bsz, &out.codes,
                        &out.d16);
                },
                [&] { countSummation(acc.numel() / bsz); },
                [&] {
                    if (!use_ditto)
                        return;
                    if (nd.inSlot >= 0)
                        state->prevIn[static_cast<size_t>(nd.inSlot)] =
                            std::move(codes);
                    else if (nd.junction)
                        state->prevIn[static_cast<size_t>(nd.jSlot)] =
                            std::move(codes);
                });
            continue;
        }

        if (ns.op == RtOp::AttnScores || ns.op == RtOp::AttnOutput) {
            Value &av = inVal(0);
            Value &bv = inVal(1);
            const QuantParams qpa{
                actScale_[static_cast<size_t>(ns.scaleIn)], 8};
            const QuantParams qpb{
                actScale_[static_cast<size_t>(ns.scaleIn2)], 8};
            Int8Tensor a_codes, b_codes;
            if (nd.diffBypass) {
                DITTO_ASSERT(av.codes.numel() > 0,
                             "operand payload missing codes");
                a_codes = std::move(av.codes);
            } else {
                a_codes = quantize(av.f, qpa);
            }
            if (nd.diffBypass2) {
                DITTO_ASSERT(bv.codes.numel() > 0,
                             "operand payload missing codes");
                b_codes = std::move(bv.codes);
            } else {
                b_codes = quantize(bv.f, qpb);
            }
            // ApproxDitto: all-or-nothing per slab across both
            // operands, then zero the skipped slabs' difference
            // regions (every expansion term carries a difference
            // factor, so the batched engine reproduces the replay
            // bitwise for those slabs).
            std::vector<uint8_t> skip_slab;
            bool any_skip = false;
            bool all_skip = false;
            if (any_approx) {
                skip_slab.assign(static_cast<size_t>(bsz), 0);
                all_skip = true;
                const int64_t a_elems = a_codes.numel() / bsz;
                const int64_t b_elems = b_codes.numel() / bsz;
                for (int64_t s = 0; s < bsz; ++s) {
                    bool sk = false;
                    if (slabApprox(s)) {
                        int32_t &consec = state->consec
                            [static_cast<size_t>(s) * nnodes +
                             static_cast<size_t>(ns.id)];
                        if (consec < approxCap_) {
                            const DiffClassCounts ca =
                                nd.diffBypass
                                    ? countDiffClasses(av.d16,
                                                       s * a_elems,
                                                       a_elems)
                                    : countTemporalDiffClasses(
                                          a_codes,
                                          state->prevIn
                                              [static_cast<size_t>(
                                                  nd.inSlot)],
                                          s * a_elems, a_elems);
                            const DiffClassCounts cb =
                                nd.diffBypass2
                                    ? countDiffClasses(bv.d16,
                                                       s * b_elems,
                                                       b_elems)
                                    : countTemporalDiffClasses(
                                          b_codes,
                                          state->prevIn
                                              [static_cast<size_t>(
                                                  nd.inSlot2)],
                                          s * b_elems, b_elems);
                            sk = approxActivity(ca) <= approxThresh_ &&
                                 approxActivity(cb) <= approxThresh_;
                        }
                        if (sk) {
                            ++consec;
                            ++state->skips
                                  [static_cast<size_t>(s) * nnodes +
                                   static_cast<size_t>(ns.id)];
                        } else {
                            consec = 0;
                        }
                    }
                    skip_slab[static_cast<size_t>(s)] = sk;
                    any_skip |= sk;
                    all_skip &= sk;
                }
            }
            if (any_skip) {
                const int64_t a_elems = a_codes.numel() / bsz;
                const int64_t b_elems = b_codes.numel() / bsz;
                const int64_t out_elems = ns.outShape.numel();
                for (int64_t s = 0; s < bsz; ++s) {
                    if (!skip_slab[static_cast<size_t>(s)])
                        continue;
                    if (nd.diffBypass) {
                        zeroSlabRegion(&av.d16, s, a_elems);
                        const Node &prod = nodes_[static_cast<size_t>(
                            nd.srcProducer)];
                        copySlabRegion(
                            emit_stash[static_cast<size_t>(
                                prod.emitSlot)],
                            &state->prevIn[static_cast<size_t>(
                                prod.emitSlot)],
                            s, a_elems);
                    } else {
                        copySlabRegion(
                            state->prevIn[static_cast<size_t>(
                                nd.inSlot)],
                            &a_codes, s, a_elems);
                    }
                    if (nd.diffBypass2) {
                        zeroSlabRegion(&bv.d16, s, b_elems);
                        const Node &prod = nodes_[static_cast<size_t>(
                            nd.srcProducer2)];
                        copySlabRegion(
                            emit_stash[static_cast<size_t>(
                                prod.emitSlot)],
                            &state->prevIn[static_cast<size_t>(
                                prod.emitSlot)],
                            s, b_elems);
                    } else {
                        copySlabRegion(
                            state->prevIn[static_cast<size_t>(
                                nd.inSlot2)],
                            &b_codes, s, b_elems);
                    }
                    if (counts)
                        counts[s].reusedElems += out_elems;
                }
            }

            Int32Tensor acc;
            if (all_skip) {
                acc = *prevOut(nd.outSlot);
            } else if (have_primed) {
                DITTO_ASSERT(!nd.diffBypass || av.d16.numel() > 0,
                             "operand payload missing difference");
                DITTO_ASSERT(!nd.diffBypass2 || bv.d16.numel() > 0,
                             "operand payload missing difference");
                const Int16Tensor *da =
                    nd.diffBypass ? &av.d16 : nullptr;
                const Int8Tensor *pa =
                    nd.diffBypass ? nullptr : prevIn(nd.inSlot);
                const Int16Tensor *db =
                    nd.diffBypass2 ? &bv.d16 : nullptr;
                const Int8Tensor *pb =
                    nd.diffBypass2 ? nullptr : prevIn(nd.inSlot2);
                acc = ns.op == RtOp::AttnScores
                          ? attentionScoresBatchPre(
                                a_codes, da, pa, b_codes, db, pb, bsz,
                                prevOut(nd.outSlot), primed, counts,
                                opts_.policy)
                          : attentionOutputBatchPre(
                                a_codes, da, pa, b_codes, db, pb, bsz,
                                prevOut(nd.outSlot), primed, counts,
                                opts_.policy);
                if (counts && primed) {
                    const int64_t per_slab =
                        (pa ? a_codes.numel() / bsz : 0) +
                        (pb ? b_codes.numel() / bsz : 0);
                    for (int64_t s = 0; s < bsz; ++s)
                        if (primed[s])
                            counts[s].diffCalcElems += per_slab;
                }
            } else {
                acc = ns.op == RtOp::AttnScores
                          ? attentionScoresBatch(a_codes, b_codes, bsz,
                                                 nullptr, nullptr,
                                                 nullptr, primed, counts,
                                                 opts_.policy)
                          : attentionOutputBatch(a_codes, b_codes, bsz,
                                                 nullptr, nullptr,
                                                 nullptr, primed, counts,
                                                 opts_.policy);
            }
            nodeEpilogue(
                nd, out, acc, combinedScale(nd), use_ditto, state,
                actScale_, have_primed, stash,
                [&](const QuantParams &eqp, float combined) {
                    requantCodesDeltaBatch(
                        acc,
                        &state->prevIn[static_cast<size_t>(nd.emitSlot)],
                        combined, eqp, primed, bsz, &out.codes,
                        &out.d16);
                },
                [&] { countSummation(acc.numel() / bsz); },
                [&] {
                    if (!use_ditto)
                        return;
                    if (nd.inSlot >= 0)
                        state->prevIn[static_cast<size_t>(nd.inSlot)] =
                            std::move(a_codes);
                    if (nd.inSlot2 >= 0)
                        state->prevIn[static_cast<size_t>(nd.inSlot2)] =
                            std::move(b_codes);
                });
            continue;
        }

        if (!nd.skipExec)
            runStructural(nd, vals, x);
    }
    if (use_ditto)
        std::fill(state->primed.begin(), state->primed.end(), 1);
    DITTO_ASSERT(vals.back().f.numel() > 0,
                 "output node must materialize full values");
    return std::move(vals.back().f);
}

FloatTensor
CompiledModel::forward(const FloatTensor &x, RunMode mode,
                       DittoState *state, OpCounts *counts) const
{
    validateSingle(x, "forward");
    switch (mode) {
      case RunMode::Fp32:
        return forwardFp32(x, nullptr);
      case RunMode::QuantDirect:
        return forwardQuant(x, /*use_ditto=*/false, /*approx=*/false,
                            nullptr, nullptr);
      case RunMode::QuantDitto:
        return forwardQuant(x, /*use_ditto=*/true, /*approx=*/false,
                            state, counts);
      case RunMode::ApproxDitto:
        return forwardQuant(x, /*use_ditto=*/true, /*approx=*/true,
                            state, counts);
    }
    DITTO_PANIC("unknown RunMode");
}

FloatTensor
CompiledModel::forwardBatch(const FloatTensor &x, RunMode mode,
                            BatchDittoState *state, OpCounts *counts) const
{
    const Shape &want = spec_.inputShape;
    if (x.shape().rank() != 4 || x.shape()[1] != want[1] ||
        x.shape()[2] != want[2] || x.shape()[3] != want[3])
        DITTO_FATAL("forwardBatch: tensor shape "
                    << x.shape().toString()
                    << " does not stack model inputs "
                    << want.toString() << " of spec '" << spec_.name
                    << "'");
    switch (mode) {
      case RunMode::Fp32: {
        // FP32 has no quantized state to batch; run per slab.
        const int64_t bsz = x.shape()[0];
        const int64_t slab = want.numel();
        FloatTensor out(x.shape());
        for (int64_t b = 0; b < bsz; ++b) {
            FloatTensor one(want);
            std::copy(x.data().begin() + b * slab,
                      x.data().begin() + (b + 1) * slab,
                      one.data().begin());
            const FloatTensor eps = forwardFp32(one, nullptr);
            std::copy(eps.data().begin(), eps.data().end(),
                      out.data().begin() + b * slab);
        }
        return out;
      }
      case RunMode::QuantDirect:
        return forwardQuantBatch(x, /*use_ditto=*/false,
                                 /*approx=*/false, nullptr, nullptr);
      case RunMode::QuantDitto:
        return forwardQuantBatch(x, /*use_ditto=*/true,
                                 /*approx=*/false, state, counts);
      case RunMode::ApproxDitto:
        return forwardQuantBatch(x, /*use_ditto=*/true,
                                 /*approx=*/true, state, counts);
    }
    DITTO_PANIC("unknown RunMode");
}

RolloutResult
CompiledModel::rollout(RunMode mode) const
{
    return rollout(mode, noiseInit_);
}

RolloutResult
CompiledModel::rollout(RunMode mode, const FloatTensor &noise,
                       int steps) const
{
    return rollout(mode, noise, steps, StepObserver());
}

RolloutResult
CompiledModel::rollout(RunMode mode, const FloatTensor &noise, int steps,
                       const StepObserver &obs) const
{
    validateSingle(noise, "rollout");
    if (steps < 0)
        DITTO_FATAL("rollout: negative step count " << steps);
    if (steps == 0)
        steps = spec_.steps;
    RolloutResult result;
    DittoState state;
    FloatTensor x = noise;
    for (int t = 0; t < steps; ++t) {
        const FloatTensor eps =
            forward(x, mode, &state, &result.dittoOps);
        x = add(x, affine(eps, -0.15f, 0.0f));
        if (obs)
            obs(t + 1, x, state);
    }
    result.finalImage = std::move(x);
    result.totalMacsPerStep = macsPerStep_;
    if (mode == RunMode::ApproxDitto)
        result.nodeSkips = state.skips.empty()
                               ? std::vector<int64_t>(nodes_.size(), 0)
                               : state.skips;
    return result;
}

RolloutResult
CompiledModel::rolloutWithFidelity(RunMode mode) const
{
    return rolloutWithFidelity(mode, noiseInit_);
}

RolloutResult
CompiledModel::rolloutWithFidelity(RunMode mode,
                                   const FloatTensor &noise,
                                   int steps) const
{
    validateSingle(noise, "rolloutWithFidelity");
    if (steps < 0)
        DITTO_FATAL("rolloutWithFidelity: negative step count "
                    << steps);
    if (steps == 0)
        steps = spec_.steps;
    RolloutResult result;
    DittoState state;
    DittoState ref_state;
    FloatTensor x = noise;
    FloatTensor x_ref = noise;
    result.stepFidelity.reserve(static_cast<size_t>(steps));
    for (int t = 0; t < steps; ++t) {
        const FloatTensor eps =
            forward(x, mode, &state, &result.dittoOps);
        x = add(x, affine(eps, -0.15f, 0.0f));
        const FloatTensor eps_ref =
            forward(x_ref, RunMode::QuantDitto, &ref_state, nullptr);
        x_ref = add(x_ref, affine(eps_ref, -0.15f, 0.0f));
        result.stepFidelity.push_back(compareImages(x_ref, x));
    }
    result.fidelity = result.stepFidelity.back();
    result.hasFidelity = true;
    result.finalImage = std::move(x);
    result.totalMacsPerStep = macsPerStep_;
    if (mode == RunMode::ApproxDitto)
        result.nodeSkips = state.skips.empty()
                               ? std::vector<int64_t>(nodes_.size(), 0)
                               : state.skips;
    return result;
}

void
CompiledModel::setApproxPolicy(double thresh, int max_consec)
{
    approxThresh_ = std::clamp(thresh, 0.0, 1.0);
    approxCap_ = std::max(1, max_consec);
}

std::vector<RolloutResult>
CompiledModel::rolloutBatch(RunMode mode,
                            std::span<const FloatTensor> noises) const
{
    const int64_t bsz = static_cast<int64_t>(noises.size());
    if (bsz == 0)
        return {};
    const int64_t slab = spec_.inputShape.numel();
    FloatTensor x(slab::withDim0(spec_.inputShape, bsz));
    for (int64_t b = 0; b < bsz; ++b) {
        validateSingle(noises[static_cast<size_t>(b)], "rolloutBatch");
        std::copy(noises[static_cast<size_t>(b)].data().begin(),
                  noises[static_cast<size_t>(b)].data().end(),
                  x.data().begin() + b * slab);
    }

    BatchDittoState state;
    state.primed.assign(static_cast<size_t>(bsz), 0);
    state.approx.assign(static_cast<size_t>(bsz),
                        mode == RunMode::ApproxDitto ? 1 : 0);
    std::vector<OpCounts> counts(static_cast<size_t>(bsz));
    for (int t = 0; t < spec_.steps; ++t) {
        const FloatTensor eps =
            forwardBatch(x, mode, &state, counts.data());
        x = add(x, affine(eps, -0.15f, 0.0f));
    }

    const size_t nnodes = nodes_.size();
    std::vector<RolloutResult> results(static_cast<size_t>(bsz));
    for (int64_t b = 0; b < bsz; ++b) {
        RolloutResult &r = results[static_cast<size_t>(b)];
        r.finalImage = FloatTensor(spec_.inputShape);
        std::copy(x.data().begin() + b * slab,
                  x.data().begin() + (b + 1) * slab,
                  r.finalImage.data().begin());
        r.dittoOps = counts[static_cast<size_t>(b)];
        r.totalMacsPerStep = macsPerStep_;
        if (mode == RunMode::ApproxDitto) {
            r.nodeSkips.assign(nnodes, 0);
            if (!state.skips.empty())
                std::copy(state.skips.begin() +
                              static_cast<int64_t>(nnodes) * b,
                          state.skips.begin() +
                              static_cast<int64_t>(nnodes) * (b + 1),
                          r.nodeSkips.begin());
        }
    }
    return results;
}

FloatTensor
CompiledModel::requestNoise(uint64_t seed) const
{
    // A distinct key stream from the weight/init RNG so request noise
    // never correlates with model parameters.
    Rng rng = Rng::fromKeys(seed, 0x5EED'D177);
    FloatTensor noise(spec_.inputShape);
    noise.fillNormal(rng, 0.0, 1.0);
    return noise;
}

namespace {

/** Digest of a scale vector's exact float bit patterns. */
uint64_t
scalesDigest(const std::vector<float> &scales)
{
    uint64_t h = hashMix(0xD16E'57CA, scales.size());
    for (float s : scales) {
        uint32_t bits;
        std::memcpy(&bits, &s, sizeof(bits));
        h = hashMix(h, bits);
    }
    return h;
}

} // namespace

void
CompiledModel::calibrate()
{
    // Keyed on the spec content hash: two structurally identical specs
    // share the entry, any geometry/seed/steps change misses. The salt
    // versions the runtime calibration algorithm itself.
    uint64_t key = hashMix(0xC0D1'770A, 1);
    key = hashMix(key, spec_.hash());
    key = hashMix(key, static_cast<uint64_t>(spec_.numScales));
    if (loadCachedScales(key, static_cast<size_t>(spec_.numScales),
                         &actScale_)) {
        calibDigest_ = scalesDigest(actScale_);
        return;
    }

    // Offline calibration: FP32 rollout, max-abs at every quantization
    // point across all steps, 10% safety margin (Q-Diffusion style).
    std::vector<float> maxabs(static_cast<size_t>(spec_.numScales), 0.0f);
    const std::function<void(int, const FloatTensor &)> obs =
        [&maxabs](int idx, const FloatTensor &t) {
            float m = maxabs[static_cast<size_t>(idx)];
            for (float v : t.data())
                m = std::max(m, std::fabs(v));
            maxabs[static_cast<size_t>(idx)] = m;
        };
    FloatTensor x = noiseInit_;
    for (int t = 0; t < spec_.steps; ++t) {
        const FloatTensor eps = forwardFp32(x, &obs);
        x = add(x, affine(eps, -0.15f, 0.0f));
    }
    actScale_.resize(static_cast<size_t>(spec_.numScales));
    for (int i = 0; i < spec_.numScales; ++i)
        actScale_[static_cast<size_t>(i)] =
            std::max(maxabs[static_cast<size_t>(i)], 1e-6f) * 1.1f /
            127.0f;
    storeCachedScales(key, actScale_);
    calibDigest_ = scalesDigest(actScale_);
}

CompiledModel
compile(const ModelSpec &spec, const CompileOptions &opts)
{
    DITTO_ASSERT(!spec.nodes.empty(), "cannot compile an empty spec");
    DITTO_ASSERT(spec.inputShape.rank() == 4,
                 "spec input must be an NCHW map");
    CompiledModel m;
    m.spec_ = spec;
    m.opts_ = opts;

    // ApproxDitto skip policy: explicit options win, otherwise the
    // environment knobs (docs/approx_reuse.md). Resolved once here so
    // every forward of this model sees one consistent policy.
    m.approxThresh_ =
        opts.approxSkipThresh >= 0.0
            ? std::clamp(opts.approxSkipThresh, 0.0, 1.0)
            : env::readDouble("DITTO_APPROX_SKIP_THRESH", 0.5, 0.0,
                              1.0);
    m.approxCap_ =
        opts.approxMaxConsec > 0
            ? opts.approxMaxConsec
            : static_cast<int>(env::readInt64("DITTO_APPROX_MAX_CONSEC",
                                              3, 1, 4096));

    std::vector<int> n2l;
    m.graph_ = spec.toGraph(&n2l);
    m.deps_ = m.graph_.analyzeDependencies();
    m.macsPerStep_ = m.graph_.totalMacs();

    // The weight program: one deterministic stream, fan-in-scaled
    // weights first, then constant contexts, then the initial noise
    // (the phase order WeightSpec documents).
    Rng rng = Rng::fromKeys(spec.seed, 0x11B5);
    std::vector<FloatTensor> wF(spec.weights.size());
    for (size_t i = 0; i < spec.weights.size(); ++i)
        if (spec.weights[i].fanIn > 0)
            wF[i] = randomWeight(rng, spec.weights[i].shape,
                                 spec.weights[i].fanIn);
    for (size_t i = 0; i < spec.weights.size(); ++i)
        if (spec.weights[i].fanIn == 0) {
            wF[i] = FloatTensor(spec.weights[i].shape);
            wF[i].fillNormal(rng, 0.0, 1.0);
        }
    m.noiseInit_ = FloatTensor(spec.inputShape);
    m.noiseInit_.fillNormal(rng, 0.0, 1.0);

    // Engines.
    m.nodes_.reserve(spec.nodes.size());
    for (const NodeSpec &ns : spec.nodes) {
        CompiledModel::Node nd;
        nd.spec = ns;
        nd.layer = n2l[static_cast<size_t>(ns.id)];
        switch (ns.op) {
          case RtOp::Conv2d: {
            QuantW q = quantW(wF[static_cast<size_t>(ns.weight)]);
            nd.conv.emplace(std::move(q.codes), ns.conv);
            nd.wScale = q.scale;
            nd.wF = wF[static_cast<size_t>(ns.weight)];
            break;
          }
          case RtOp::Fc: {
            QuantW q = quantW(wF[static_cast<size_t>(ns.weight)]);
            nd.fc.emplace(std::move(q.codes));
            nd.wScale = q.scale;
            nd.wF = wF[static_cast<size_t>(ns.weight)];
            break;
          }
          case RtOp::CrossScores: {
            // K' = context x W^T is constant across steps: a weight
            // from the hardware's point of view (computed in FP32 and
            // quantized per-tensor, exactly like the legacy model).
            nd.constF = fullyConnected(
                wF[static_cast<size_t>(ns.context)],
                wF[static_cast<size_t>(ns.weight)], nullptr);
            QuantW q = quantW(nd.constF);
            nd.cross.emplace(std::move(q.codes));
            nd.wScale = q.scale;
            break;
          }
          case RtOp::CrossOutput: {
            // P' x V' with constant V' is weight-stationary with V'^T
            // as the weight: O = P' V' = P' (V'^T)^T.
            nd.constF = fullyConnected(
                wF[static_cast<size_t>(ns.context)],
                wF[static_cast<size_t>(ns.weight)], nullptr);
            QuantW q = quantW(nd.constF);
            nd.fc.emplace(transposeInt8(q.codes));
            nd.wScale = q.scale;
            break;
          }
          default:
            break;
        }
        m.nodes_.push_back(std::move(nd));
    }

    // Dependency-driven state flow, three passes:
    //
    //  A. single-producer hand-over: an operand reached from one
    //     compute producer through reshape-only single-consumer wire
    //     consumes that producer's requantized code difference —
    //     weight-stationary operands (the PR4 mechanism) and, new,
    //     each dynamic-attention operand independently.
    //  B. junction folds: a weight-stationary operand fed by an
    //     Add/Concat subtree of compute producers (optionally behind
    //     one Upsample2x/AvgPool2x hop) gets a JunctionPlan — the
    //     multi-producer requant-delta replaces the full-value round
    //     trip through the junction.
    //  C. f-liveness: a node materializes float output only if some
    //     executed consumer reads it; plan-covered structural nodes
    //     never execute at all.
    if (opts.useDependencyAnalysis) {
        std::vector<int> consumers(spec.nodes.size(), 0);
        for (const NodeSpec &ns : spec.nodes)
            for (int in : ns.inputs)
                ++consumers[static_cast<size_t>(in)];

        // Reshape-only single-consumer wire to a single compute
        // producer; -1 when the wire is anything else.
        auto traceProducer = [&](int start) -> int {
            int p = start;
            while (rtIsReshape(spec.nodes[static_cast<size_t>(p)].op)) {
                if (consumers[static_cast<size_t>(p)] != 1)
                    return -1;
                p = spec.nodes[static_cast<size_t>(p)].inputs[0];
            }
            if (!rtIsCompute(spec.nodes[static_cast<size_t>(p)].op) ||
                consumers[static_cast<size_t>(p)] != 1)
                return -1;
            return p;
        };

        // Pass A.
        for (const NodeSpec &ns : spec.nodes) {
            const bool ws = ns.op == RtOp::Conv2d || ns.op == RtOp::Fc ||
                            ns.op == RtOp::CrossScores ||
                            ns.op == RtOp::CrossOutput;
            const bool attn = ns.op == RtOp::AttnScores ||
                              ns.op == RtOp::AttnOutput;
            if (!ws && !attn)
                continue;
            const int layer = n2l[static_cast<size_t>(ns.id)];
            // Weight-stationary operands follow the layer verdict; an
            // attention node's verdict is a property of both operands
            // together, so its operands qualify individually by the
            // wire walk alone (the walk only ever lands on a compute
            // producer, which is exactly the diff-domain condition).
            if (ws &&
                m.deps_[static_cast<size_t>(layer)].diffCalcNeeded)
                continue;
            const int nops = attn ? 2 : 1;
            for (int j = 0; j < nops; ++j) {
                const int p = traceProducer(
                    ns.inputs[static_cast<size_t>(j)]);
                if (p < 0)
                    continue;
                CompiledModel::Node &prod =
                    m.nodes_[static_cast<size_t>(p)];
                if (prod.emitPayload)
                    continue; // one payload target per producer
                prod.emitPayload = true;
                prod.emitScale = j == 0 ? ns.scaleIn : ns.scaleIn2;
                if (j == 0) {
                    m.nodes_[static_cast<size_t>(ns.id)].diffBypass =
                        true;
                    m.nodes_[static_cast<size_t>(ns.id)].srcProducer = p;
                } else {
                    m.nodes_[static_cast<size_t>(ns.id)].diffBypass2 =
                        true;
                    m.nodes_[static_cast<size_t>(ns.id)].srcProducer2 =
                        p;
                }
                ++m.numBypass_;
            }
        }

        // Pass B. Flatten a left-leaning Add chain of compute leaves
        // into a source list; the left-associated runtime sum then
        // reproduces the dense float adds term for term.
        auto flattenAdd = [&](int id, std::vector<int> *out,
                              auto &&self) -> bool {
            const NodeSpec &n = spec.nodes[static_cast<size_t>(id)];
            if (rtIsCompute(n.op)) {
                out->push_back(id);
                return true;
            }
            if (n.op != RtOp::Add)
                return false;
            if (!self(n.inputs[0], out, self))
                return false;
            const NodeSpec &r =
                spec.nodes[static_cast<size_t>(n.inputs[1])];
            if (!rtIsCompute(r.op))
                return false; // right-leaning adds would re-associate
            out->push_back(r.id);
            return true;
        };
        auto buildRegions = [&](int id,
                                std::vector<CompiledModel::JunctionRegion>
                                    *regs,
                                auto &&self) -> bool {
            const NodeSpec &n = spec.nodes[static_cast<size_t>(id)];
            if (n.op == RtOp::Concat)
                return self(n.inputs[0], regs, self) &&
                       self(n.inputs[1], regs, self);
            CompiledModel::JunctionRegion r;
            if (n.op == RtOp::Upsample2x || n.op == RtOp::AvgPool2x) {
                const NodeSpec &c =
                    spec.nodes[static_cast<size_t>(n.inputs[0])];
                if (c.outShape.rank() != 4 || c.outShape[0] != 1)
                    return false;
                if (!flattenAdd(c.id, &r.sources, flattenAdd))
                    return false;
                r.transform =
                    n.op == RtOp::Upsample2x
                        ? CompiledModel::JunctionRegion::Transform::
                              Upsample2x
                        : CompiledModel::JunctionRegion::Transform::
                              AvgPool2x;
                r.c = c.outShape[1];
                r.h = c.outShape[2];
                r.w = c.outShape[3];
                r.srcElems = c.outShape.numel();
                r.outElems = n.op == RtOp::Upsample2x
                                 ? r.srcElems * 4
                                 : r.srcElems / 4;
            } else {
                // Add chain or (inside a Concat) a lone compute leaf —
                // the top-level operand is never a bare leaf (that is
                // the single-producer pass-A case, gated by op kind).
                if (!flattenAdd(id, &r.sources, flattenAdd))
                    return false;
                r.srcElems = n.outShape.numel();
                r.outElems = r.srcElems;
            }
            regs->push_back(std::move(r));
            return true;
        };
        for (const NodeSpec &ns : spec.nodes) {
            if (ns.op != RtOp::Conv2d && ns.op != RtOp::Fc &&
                ns.op != RtOp::CrossScores && ns.op != RtOp::CrossOutput)
                continue;
            CompiledModel::Node &nd =
                m.nodes_[static_cast<size_t>(ns.id)];
            if (nd.diffBypass)
                continue;
            const int layer = n2l[static_cast<size_t>(ns.id)];
            if (m.deps_[static_cast<size_t>(layer)].diffCalcNeeded)
                continue;
            const NodeSpec &in0 =
                spec.nodes[static_cast<size_t>(ns.inputs[0])];
            if (in0.op != RtOp::Add && in0.op != RtOp::Concat &&
                in0.op != RtOp::Upsample2x && in0.op != RtOp::AvgPool2x)
                continue;
            CompiledModel::JunctionPlan plan;
            if (!buildRegions(in0.id, &plan.regions, buildRegions))
                continue;
            int64_t off = 0;
            for (CompiledModel::JunctionRegion &r : plan.regions) {
                r.outOffset = off;
                off += r.outElems;
            }
            plan.slabElems = off;
            DITTO_ASSERT(off == in0.outShape.numel(),
                         "junction plan does not tile the operand");
            for (const CompiledModel::JunctionRegion &r : plan.regions)
                for (int src : r.sources)
                    m.nodes_[static_cast<size_t>(src)].keepAcc = true;
            nd.junction = std::move(plan);
            nd.diffBypass = true;
            ++m.numBypass_;
        }
        DITTO_ASSERT(!m.nodes_.back().emitPayload,
                     "the output node cannot hand its output over");
    }

    // Pass C: f-liveness, walked against topological order so every
    // node's own liveness is final before its inputs are marked. The
    // output node is live by definition; a consumer marks an input
    // live exactly when its executed form reads that input's float
    // value. With the analysis off nothing is bypassed and everything
    // consumed comes out live — the naive full-value dataflow.
    {
        std::vector<uint8_t> flive(spec.nodes.size(), 0);
        flive[spec.nodes.back().id] = 1;
        for (size_t i = spec.nodes.size(); i-- > 0;) {
            const NodeSpec &ns = spec.nodes[i];
            const CompiledModel::Node &nd = m.nodes_[i];
            auto need = [&](int j) {
                flive[static_cast<size_t>(
                    ns.inputs[static_cast<size_t>(j)])] = 1;
            };
            switch (ns.op) {
              case RtOp::Input:
                break;
              case RtOp::Conv2d:
              case RtOp::Fc:
              case RtOp::CrossScores:
              case RtOp::CrossOutput:
                if (!nd.diffBypass)
                    need(0);
                break;
              case RtOp::AttnScores:
              case RtOp::AttnOutput:
                if (!nd.diffBypass)
                    need(0);
                if (!nd.diffBypass2)
                    need(1);
                break;
              default:
                // Structural / vector ops read every operand's float
                // value — but only if they execute themselves.
                if (flive[i])
                    for (size_t j = 0; j < ns.inputs.size(); ++j)
                        need(static_cast<int>(j));
                break;
            }
        }
        for (size_t i = 0; i < m.nodes_.size(); ++i) {
            CompiledModel::Node &nd = m.nodes_[i];
            nd.fLive = flive[i] != 0;
            const RtOp op = nd.spec.op;
            if (rtIsCompute(op)) {
                if (!nd.fLive)
                    ++m.numSumSkip_;
            } else if (!nd.fLive && op != RtOp::Input &&
                       !rtIsReshape(op)) {
                // Reshapes stay executable (they may carry a payload);
                // everything else with a dead output is plan-covered
                // junction wire and never runs.
                nd.skipExec = true;
            }
        }
    }

    // Difference-state slots: every compute node keeps its previous
    // accumulator; previous input codes only where diff-calc really
    // happens (handed-over operands hold no input state at all).
    // Payload emissions and junction folds keep their previous
    // *emitted codes* in the same int8 state pool — next step's delta
    // is a subtraction against that cache, never a float
    // recomputation of the previous step.
    for (CompiledModel::Node &nd : m.nodes_) {
        const RtOp op = nd.spec.op;
        if (!rtIsCompute(op))
            continue;
        nd.outSlot = m.numOutSlots_++;
        if (op == RtOp::AttnScores || op == RtOp::AttnOutput) {
            if (!nd.diffBypass)
                nd.inSlot = m.numInSlots_++;
            if (!nd.diffBypass2)
                nd.inSlot2 = m.numInSlots_++;
        } else if (!nd.diffBypass) {
            nd.inSlot = m.numInSlots_++;
        }
        if (nd.emitPayload)
            nd.emitSlot = m.numInSlots_++;
        if (nd.junction)
            nd.jSlot = m.numInSlots_++;
    }

    m.calibrate();
    return m;
}

} // namespace ditto
