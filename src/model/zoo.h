/**
 * @file
 * The evaluated model zoo (paper Table I).
 *
 * Seven diffusion models spanning pixel-space unconditional (DDPM),
 * latent-space unconditional (BED, CHUR), latent-space conditional
 * (IMG, SDM) and diffusion transformers (DiT, Latte), each with the
 * sampler and step count the paper uses.
 */
#ifndef DITTO_MODEL_ZOO_H
#define DITTO_MODEL_ZOO_H

#include <string>
#include <vector>

#include "model/graph.h"

namespace ditto {

/** The seven evaluated models. */
enum class ModelId
{
    DDPM,
    BED,
    CHUR,
    IMG,
    SDM,
    DiT,
    Latte,
};

/** All model ids in Table I order. */
const std::vector<ModelId> &allModels();

/** Sampler configuration. */
struct SamplerSpec
{
    std::string name;  //!< "DDIM" or "PLMS"
    int steps = 0;     //!< denoising steps
    int extraSteps = 0; //!< PLMS warm-up steps (the 50' step in Fig. 4a)

    int totalSteps() const { return steps + extraSteps; }
};

/** Quantization method applied in the paper's evaluation. */
enum class QuantMethod
{
    QDiffusion, //!< offline-calibrated, time-step-clustered scales
    Dynamic,    //!< simple per-tensor dynamic quantization (DiT, Latte)
};

/** One row of Table I plus build metadata. */
struct ModelInfo
{
    ModelId id;
    std::string abbr;     //!< DDPM / BED / CHUR / IMG / SDM / DiT / Latte
    std::string model;    //!< architecture name
    std::string dataset;
    SamplerSpec sampler;
    QuantMethod quant;
    bool videoTask = false; //!< Latte: frames carry spatial similarity
};

/** Metadata for one model. */
const ModelInfo &modelInfo(ModelId id);

/** Short name (abbr) of a model. */
const std::string &modelAbbr(ModelId id);

/** Build the denoising-model layer graph for a model. */
ModelGraph buildModel(ModelId id);

} // namespace ditto

#endif // DITTO_MODEL_ZOO_H
