/**
 * @file
 * Convenience builder for denoising-model graphs.
 *
 * Wraps ModelGraph::addLayer with per-kind helpers that derive element
 * counts, MACs and weight sizes from natural layer parameters, so the
 * model definitions in unet.cc / transformer.cc read like network
 * configuration files.
 */
#ifndef DITTO_MODEL_BUILDER_H
#define DITTO_MODEL_BUILDER_H

#include <string>
#include <utility>

#include "model/graph.h"

namespace ditto {

/** Fluent layer-graph construction helper. */
class LayerGraphBuilder
{
  public:
    explicit LayerGraphBuilder(std::string name) : graph_(std::move(name)) {}

    /** Graph input (noisy latent, time embedding, context). */
    int input(const std::string &name, int64_t elems);

    /**
     * 2-D convolution with square kernel.
     *
     * @param h,w input spatial extent; output extent follows from
     *        stride/padding like Conv2dParams::outExtent.
     * @return layer id.
     */
    int conv2d(const std::string &name, int in, int64_t cin, int64_t cout,
               int64_t kernel, int64_t stride, int64_t padding, int64_t h,
               int64_t w);

    /** Fully-connected layer on `rows` independent rows. */
    int fc(const std::string &name, int in, int64_t rows, int64_t in_f,
           int64_t out_f, bool const_per_run = false);

    /** Self-attention Q x K^T (batch x heads x tokens x tokens output). */
    int attnQK(const std::string &name, int q, int k, int64_t tokens,
               int64_t dim, int64_t heads, int64_t batch = 1);

    /** Self-attention P x V. */
    int attnPV(const std::string &name, int p, int v, int64_t tokens,
               int64_t dim, int64_t heads, int64_t batch = 1);

    /** Cross-attention Q x K'^T with constant K' treated as weight. */
    int crossQK(const std::string &name, int q, int64_t tokens,
                int64_t ctx_tokens, int64_t dim, int64_t heads,
                int64_t batch = 1);

    /** Cross-attention P x V' with constant V' treated as weight. */
    int crossPV(const std::string &name, int p, int64_t tokens,
                int64_t ctx_tokens, int64_t dim, int64_t heads,
                int64_t batch = 1);

    /** Non-linear function over `elems` elements. */
    int nonLinear(const std::string &name, OpKind kind, int in,
                  int64_t elems);

    /** Elementwise sum of two producers. */
    int add(const std::string &name, int a, int b, int64_t elems);

    /** adaLN-style modulation x * (1 + scale) + shift. */
    int scale(const std::string &name, int in, int64_t elems);

    /** Channel concatenation of two producers. */
    int concat(const std::string &name, int a, int b, int64_t out_elems);

    /** Nearest-neighbour 2x upsample. */
    int upsample(const std::string &name, int in, int64_t out_elems);

    /** Average pooling. */
    int pool(const std::string &name, int in, int64_t out_elems);

    ModelGraph take() { return std::move(graph_); }

    const ModelGraph &graph() const { return graph_; }

  private:
    ModelGraph graph_;
};

} // namespace ditto

#endif // DITTO_MODEL_BUILDER_H
