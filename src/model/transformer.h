/**
 * @file
 * Diffusion-transformer denoising-model builders (DiT, Latte).
 *
 * Both models follow the adaLN transformer block of Fig. 2 (right): a
 * per-block FC produces six modulation vectors from the conditioning
 * embedding; each half-block is LN -> modulate -> linear stack ->
 * gate -> residual add. Latte additionally alternates spatial blocks
 * (attention within each video frame) with temporal blocks (attention
 * across frames at each spatial location).
 */
#ifndef DITTO_MODEL_TRANSFORMER_H
#define DITTO_MODEL_TRANSFORMER_H

#include <cstdint>
#include <string>

#include "model/graph.h"

namespace ditto {

/** Configuration of a DiT-style diffusion transformer. */
struct DitConfig
{
    std::string name = "DiT-XL/2";
    int64_t latentRes = 32;    //!< latent spatial extent
    int64_t latentCh = 4;      //!< latent channels
    int64_t patch = 2;         //!< patch size
    int64_t hidden = 1152;     //!< model width
    int64_t depth = 28;        //!< transformer blocks
    int64_t heads = 16;
    int64_t mlpRatio = 4;
    int64_t frames = 1;        //!< >1 enables Latte's factorised attention
};

/** Build a DiT / Latte layer graph. */
ModelGraph buildDit(const DitConfig &cfg);

} // namespace ditto

#endif // DITTO_MODEL_TRANSFORMER_H
