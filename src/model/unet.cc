/**
 * @file
 * UNet builder implementation.
 */
#include "model/unet.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"
#include "model/builder.h"

namespace ditto {

namespace {

/** A saved skip-connection operand. */
struct SkipEntry
{
    int id;
    int64_t ch;
    int64_t res;
};

/** Mutable build state threaded through the helper functions. */
struct UnetBuild
{
    const UnetConfig &cfg;
    LayerGraphBuilder b;
    int temb = -1;        //!< time-embedding layer id
    int64_t tembDim = 0;
    int context = -1;     //!< cross-attention context input id (or -1)

    explicit UnetBuild(const UnetConfig &cfg_)
        : cfg(cfg_), b(cfg_.name)
    {}
};

/**
 * Residual block: GN-SiLU-conv3x3, time-embedding injection,
 * GN-SiLU-conv3x3, and a 1x1 skip convolution when channels change.
 */
int
resBlock(UnetBuild &u, const std::string &name, int x, int64_t cin,
         int64_t cout, int64_t res)
{
    const int64_t in_elems = cin * res * res;
    const int64_t out_elems = cout * res * res;
    int h = u.b.nonLinear(name + ".norm1", OpKind::GroupNorm, x, in_elems);
    h = u.b.nonLinear(name + ".silu1", OpKind::SiLU, h, in_elems);
    h = u.b.conv2d(name + ".conv1", h, cin, cout, 3, 1, 1, res, res);

    // Per-block time-embedding projection, broadcast-added per channel.
    int t = u.b.nonLinear(name + ".temb_silu", OpKind::SiLU, u.temb,
                          u.tembDim);
    t = u.b.fc(name + ".temb_proj", t, 1, u.tembDim, cout);
    h = u.b.add(name + ".temb_add", h, t, out_elems);

    h = u.b.nonLinear(name + ".norm2", OpKind::GroupNorm, h, out_elems);
    h = u.b.nonLinear(name + ".silu2", OpKind::SiLU, h, out_elems);
    h = u.b.conv2d(name + ".conv2", h, cout, cout, 3, 1, 1, res, res);

    int skip = x;
    if (cin != cout)
        skip = u.b.conv2d(name + ".skip", x, cin, cout, 1, 1, 0, res, res);
    return u.b.add(name + ".out", h, skip, out_elems);
}

/** Plain single-head attention block (DDPM / unconditional LDM). */
int
plainAttnBlock(UnetBuild &u, const std::string &name, int x, int64_t ch,
               int64_t res)
{
    const int64_t elems = ch * res * res;
    const int64_t tokens = res * res;
    int h = u.b.nonLinear(name + ".norm", OpKind::GroupNorm, x, elems);
    const int q = u.b.conv2d(name + ".q", h, ch, ch, 1, 1, 0, res, res);
    const int k = u.b.conv2d(name + ".k", h, ch, ch, 1, 1, 0, res, res);
    const int v = u.b.conv2d(name + ".v", h, ch, ch, 1, 1, 0, res, res);
    int a = u.b.attnQK(name + ".qk", q, k, tokens, ch, 1);
    a = u.b.nonLinear(name + ".softmax", OpKind::Softmax, a,
                      tokens * tokens);
    a = u.b.attnPV(name + ".pv", a, v, tokens, ch, 1);
    a = u.b.conv2d(name + ".proj", a, ch, ch, 1, 1, 0, res, res);
    return u.b.add(name + ".out", a, x, elems);
}

/**
 * Conditional latent diffusion transformer block (Fig. 2, second
 * column): GN + proj-in, self attention, cross attention against a
 * constant context, GeLU MLP, proj-out. The context K'/V' projections
 * are constant across time steps (constPerRun) and the cross-attention
 * matmuls treat them as weights (Section IV-A).
 */
int
transformerBlock(UnetBuild &u, const std::string &name, int x, int64_t ch,
                 int64_t res)
{
    const UnetConfig &cfg = u.cfg;
    const int64_t elems = ch * res * res;
    const int64_t tokens = res * res;
    const int64_t heads = std::max<int64_t>(1, ch / cfg.headDim);

    int h = u.b.nonLinear(name + ".norm", OpKind::GroupNorm, x, elems);
    h = u.b.conv2d(name + ".proj_in", h, ch, ch, 1, 1, 0, res, res);
    const int inner = h;

    // Self attention.
    int s = u.b.nonLinear(name + ".ln1", OpKind::LayerNorm, h, elems);
    const int q = u.b.fc(name + ".self.q", s, tokens, ch, ch);
    const int k = u.b.fc(name + ".self.k", s, tokens, ch, ch);
    const int v = u.b.fc(name + ".self.v", s, tokens, ch, ch);
    int a = u.b.attnQK(name + ".self.qk", q, k, tokens, ch, heads);
    a = u.b.nonLinear(name + ".self.softmax", OpKind::Softmax, a,
                      heads * tokens * tokens);
    a = u.b.attnPV(name + ".self.pv", a, v, tokens, ch, heads);
    a = u.b.fc(name + ".self.out", a, tokens, ch, ch);
    h = u.b.add(name + ".self.res", a, h, elems);

    // Cross attention; K'/V' constant across steps.
    int c = u.b.nonLinear(name + ".ln2", OpKind::LayerNorm, h, elems);
    const int cq = u.b.fc(name + ".cross.q", c, tokens, ch, ch);
    u.b.fc(name + ".cross.k", u.context, cfg.ctxTokens, cfg.ctxDim, ch,
           /*const_per_run=*/true);
    u.b.fc(name + ".cross.v", u.context, cfg.ctxTokens, cfg.ctxDim, ch,
           /*const_per_run=*/true);
    int ca = u.b.crossQK(name + ".cross.qk", cq, tokens, cfg.ctxTokens,
                         ch, heads);
    ca = u.b.nonLinear(name + ".cross.softmax", OpKind::Softmax, ca,
                       heads * tokens * cfg.ctxTokens);
    ca = u.b.crossPV(name + ".cross.pv", ca, tokens, cfg.ctxTokens, ch,
                     heads);
    ca = u.b.fc(name + ".cross.out", ca, tokens, ch, ch);
    h = u.b.add(name + ".cross.res", ca, h, elems);

    // Feed-forward MLP.
    int f = u.b.nonLinear(name + ".ln3", OpKind::LayerNorm, h, elems);
    f = u.b.fc(name + ".ff1", f, tokens, ch, 4 * ch);
    f = u.b.nonLinear(name + ".gelu", OpKind::GeLU, f,
                      tokens * 4 * ch);
    f = u.b.fc(name + ".ff2", f, tokens, 4 * ch, ch);
    h = u.b.add(name + ".ff.res", f, h, elems);

    h = u.b.conv2d(name + ".proj_out", h, ch, ch, 1, 1, 0, res, res);
    return u.b.add(name + ".out", h, inner, elems);
}

/** Dispatch to the configured attention style. */
int
attnStage(UnetBuild &u, const std::string &name, int x, int64_t ch,
          int64_t res)
{
    if (u.cfg.transformerBlocks)
        return transformerBlock(u, name, x, ch, res);
    return plainAttnBlock(u, name, x, ch, res);
}

bool
hasAttnAt(const UnetConfig &cfg, int64_t res)
{
    return std::find(cfg.attnResolutions.begin(),
                     cfg.attnResolutions.end(),
                     res) != cfg.attnResolutions.end();
}

} // namespace

ModelGraph
buildUnet(const UnetConfig &cfg)
{
    DITTO_ASSERT(!cfg.chMult.empty(), "UNet needs at least one level");
    DITTO_ASSERT(!cfg.transformerBlocks ||
                 (cfg.ctxTokens > 0 && cfg.ctxDim > 0),
                 "transformer blocks need a context");
    UnetBuild u(cfg);

    // Time embedding: sinusoidal input -> MLP, shared by all res blocks.
    u.tembDim = 4 * cfg.baseCh;
    int t = u.b.input("temb_in", cfg.baseCh);
    t = u.b.fc("temb.fc1", t, 1, cfg.baseCh, u.tembDim);
    t = u.b.nonLinear("temb.silu", OpKind::SiLU, t, u.tembDim);
    u.temb = u.b.fc("temb.fc2", t, 1, u.tembDim, u.tembDim);

    if (cfg.transformerBlocks)
        u.context = u.b.input("context", cfg.ctxTokens * cfg.ctxDim);

    const int x_in =
        u.b.input("x", cfg.inChannels * cfg.resolution * cfg.resolution);

    const int levels = static_cast<int>(cfg.chMult.size());
    int64_t res = cfg.resolution;
    int64_t ch = cfg.baseCh;
    int h = u.b.conv2d("conv-in", x_in, cfg.inChannels, cfg.baseCh, 3, 1, 1,
                       res, res);

    // Down path; remember every block output for the up-path skips.
    std::deque<SkipEntry> skips;
    skips.push_back({h, ch, res});
    for (int lvl = 0; lvl < levels; ++lvl) {
        const int64_t out_ch = cfg.baseCh * cfg.chMult[lvl];
        for (int blk = 0; blk < cfg.numResBlocks; ++blk) {
            const std::string nm =
                "down." + std::to_string(lvl) + "." + std::to_string(blk);
            h = resBlock(u, nm, h, ch, out_ch, res);
            ch = out_ch;
            if (hasAttnAt(cfg, res))
                h = attnStage(u, nm + ".attn", h, ch, res);
            skips.push_back({h, ch, res});
        }
        if (lvl < levels - 1) {
            h = u.b.conv2d("down." + std::to_string(lvl) + ".downsample",
                           h, ch, ch, 3, 2, 1, res, res);
            res /= 2;
            skips.push_back({h, ch, res});
        }
    }

    // Middle: res block, attention, res block.
    h = resBlock(u, "mid.0", h, ch, ch, res);
    h = attnStage(u, "mid.attn", h, ch, res);
    h = resBlock(u, "mid.1", h, ch, ch, res);

    // Up path: one more block per level than the down path, each
    // consuming one skip. up.0.0 is the deepest block, matching the
    // paper's naming of the SDM layer "up.0.0.skip".
    for (int lvl = levels - 1; lvl >= 0; --lvl) {
        const int64_t out_ch = cfg.baseCh * cfg.chMult[lvl];
        const int up_idx = levels - 1 - lvl;
        for (int blk = 0; blk <= cfg.numResBlocks; ++blk) {
            DITTO_ASSERT(!skips.empty(), "UNet skip bookkeeping broken");
            const SkipEntry skip = skips.back();
            skips.pop_back();
            DITTO_ASSERT(skip.res == res, "skip resolution mismatch");
            const std::string nm =
                "up." + std::to_string(up_idx) + "." + std::to_string(blk);
            const int64_t cat_ch = ch + skip.ch;
            const int cat =
                u.b.concat(nm + ".cat", h, skip.id, cat_ch * res * res);
            h = resBlock(u, nm, cat, cat_ch, out_ch, res);
            ch = out_ch;
            if (hasAttnAt(cfg, res))
                h = attnStage(u, nm + ".attn", h, ch, res);
        }
        if (lvl > 0) {
            res *= 2;
            const int up = u.b.upsample(
                "up." + std::to_string(up_idx) + ".upsample", h,
                ch * res * res);
            h = u.b.conv2d("up." + std::to_string(up_idx) + ".conv", up,
                           ch, ch, 3, 1, 1, res, res);
        }
    }
    DITTO_ASSERT(skips.empty(), "unconsumed UNet skips");

    // Output head.
    const int64_t elems = ch * res * res;
    h = u.b.nonLinear("out.norm", OpKind::GroupNorm, h, elems);
    h = u.b.nonLinear("out.silu", OpKind::SiLU, h, elems);
    u.b.conv2d("conv-out", h, ch, cfg.outChannels, 3, 1, 1, res, res);

    return u.b.take();
}

} // namespace ditto
