/**
 * @file
 * Layer-level intermediate representation of denoising models.
 *
 * The Ditto algorithm and hardware only need each layer's *kind*
 * (linear / attention / non-linear), its operand geometry (element
 * counts, MACs), and its dependencies. This IR captures exactly that;
 * the seven evaluated models (Table I of the paper) are built as graphs
 * of these layers by the builders in unet.h and transformer.h.
 */
#ifndef DITTO_MODEL_LAYER_H
#define DITTO_MODEL_LAYER_H

#include <cstdint>
#include <string>
#include <vector>

namespace ditto {

/**
 * Operation kinds.
 *
 * Linear kinds execute on the Compute Unit and are candidates for
 * difference processing; non-linear kinds execute on the Vector
 * Processing Unit and force full-value materialisation at their
 * boundaries. Structural kinds (Add/Concat/Chunk) are linear in the
 * algebraic sense — a difference flows through them unchanged — and are
 * modelled on the VPU with negligible cost.
 */
enum class OpKind
{
    // Weight-stationary linear layers (difference processing, Fig. 7).
    Conv2d,
    Fc,
    // Attention matmuls between two dynamic operands (Section IV-A).
    AttnQK,     //!< Q x K^T, both operands change across time steps
    AttnPV,     //!< P x V, both operands change across time steps
    // Cross-attention matmuls whose K'/V' context operand is constant
    // across time steps and is therefore treated as a weight.
    CrossQK,
    CrossPV,
    // Non-linear functions (Vector Processing Unit).
    GroupNorm,
    LayerNorm,
    SiLU,
    GeLU,
    Softmax,
    // Structural / elementwise ops; linear w.r.t. differences.
    Add,
    Scale,      //!< adaLN modulation: x * (1 + scale) + shift
    Concat,
    Upsample,
    Pool,
    Input,      //!< graph input placeholder (x_t, time embedding, context)
};

/** Human-readable name of an OpKind. */
const char *opKindName(OpKind k);

/** True for layers executed on the Compute Unit (MAC arrays). */
bool isComputeOp(OpKind k);

/** True for weight-stationary linear layers (Conv2d/Fc/CrossQK/CrossPV). */
bool isWeightStationary(OpKind k);

/** True for the dynamic-dynamic attention matmuls (AttnQK/AttnPV). */
bool isDynamicAttention(OpKind k);

/** True for non-linear functions that require full (original) values. */
bool isNonLinear(OpKind k);

/** True for structural ops through which a difference passes unchanged. */
bool isDiffTransparent(OpKind k);

/**
 * One layer (node) of a denoising-model graph.
 *
 * Element counts are per network evaluation (one denoising step, batch
 * already applied). `macs` counts multiply-accumulates for compute ops;
 * `vectorOps` counts elementwise operations for VPU ops.
 */
struct Layer
{
    int id = -1;
    std::string name;
    OpKind kind = OpKind::Input;

    /** Producer layer ids. Empty for graph inputs. */
    std::vector<int> inputs;

    int64_t inputElems = 0;   //!< elements of the primary dynamic operand
    int64_t inputElems2 = 0;  //!< second dynamic operand (AttnQK/AttnPV)
    int64_t outputElems = 0;  //!< elements produced
    int64_t weightElems = 0;  //!< static operand elements (incl. K'/V')
    int64_t macs = 0;         //!< multiply-accumulates (compute ops)
    int64_t vectorOps = 0;    //!< elementwise operations (VPU ops)

    /** Attention geometry; only meaningful for attention kinds. */
    int64_t tokens = 0;
    int64_t dim = 0;
    int64_t heads = 0;
    int64_t ctxTokens = 0;

    /**
     * True for layers whose output is constant across time steps (e.g.
     * the FC layers projecting the cross-attention context to K'/V').
     * They execute once per image generation, not once per step.
     */
    bool constPerRun = false;

    bool isCompute() const { return isComputeOp(kind); }
    bool isVector() const { return !isComputeOp(kind); }
};

} // namespace ditto

#endif // DITTO_MODEL_LAYER_H
