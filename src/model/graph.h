/**
 * @file
 * Denoising-model graph: layers in topological order plus the
 * dependency analysis Defo's static pass relies on (Section IV-B).
 */
#ifndef DITTO_MODEL_GRAPH_H
#define DITTO_MODEL_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/layer.h"

namespace ditto {

/**
 * Per-layer results of the static dependency analysis.
 *
 * For a compute layer executed with temporal differences:
 *  - `diffCalcNeeded`: its dynamic input arrives as full values (from a
 *    non-linear function or a graph input), so the Encoding Unit must
 *    load the previous step's input and subtract. If the input instead
 *    arrives from another compute layer (possibly through structural
 *    ops), the producer's output *is already a difference* and the
 *    subtraction — and its memory traffic — is bypassed.
 *  - `summationNeeded`: at least one consumer requires full values (a
 *    non-linear function, a dynamic attention operand, or the graph
 *    output), so the previous step's output must be loaded and added.
 *
 * The naive algorithm (no dependency check) performs both around every
 * compute layer; the difference between the two policies is the memory
 * overhead Fig. 8 and Fig. 14 quantify.
 *
 * Diff-transparent structural layers (Add/Concat/Scale/Upsample/Pool)
 * carry the same two-sided verdict: `diffCalcNeeded` means the
 * junction's operands arrive as full values, `summationNeeded` means
 * some consumer downstream requires full values. A junction with both
 * flags false lives entirely in the difference domain, which is the
 * precondition for the graph runtime's multi-producer requant-delta
 * fold (docs/graph_runtime.md). Non-transparent layers keep the
 * default (full-value) verdict.
 */
struct LayerDependency
{
    bool diffCalcNeeded = true;
    bool summationNeeded = true;
    /** Non-linear kinds adjacent to this layer (for sign-mask modelling:
     *  Cambricon-D can only bypass SiLU and GroupNorm boundaries). */
    std::vector<OpKind> boundaryNonLinears;
};

/**
 * A complete denoising model graph in topological order.
 */
class ModelGraph
{
  public:
    explicit ModelGraph(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Append a layer; returns its id. Inputs must already exist. */
    int addLayer(Layer layer);

    const std::vector<Layer> &layers() const { return layers_; }
    const Layer &layer(int id) const;
    int numLayers() const { return static_cast<int>(layers_.size()); }

    /** Ids of layers consuming layer `id`'s output. */
    const std::vector<int> &consumers(int id) const;

    /** Total MACs over all compute layers (one denoising step). */
    int64_t totalMacs() const;

    /** Total elementwise ops over all vector layers. */
    int64_t totalVectorOps() const;

    /** Number of compute (Compute Unit) layers. */
    int numComputeLayers() const;

    /** Total weight elements (model size in A8W8 bytes). */
    int64_t totalWeightElems() const;

    /**
     * Static dependency analysis (Defo's compile-time pass).
     *
     * Walks producers/consumers through diff-transparent structural ops
     * and decides, per compute layer, whether difference calculation and
     * summation are really required at its boundaries.
     */
    std::vector<LayerDependency> analyzeDependencies() const;

    /** Find a layer id by exact name; -1 when absent. */
    int findLayer(const std::string &name) const;

  private:
    std::string name_;
    std::vector<Layer> layers_;
    std::vector<std::vector<int>> consumers_;
};

} // namespace ditto

#endif // DITTO_MODEL_GRAPH_H
