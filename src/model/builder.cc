/**
 * @file
 * LayerGraphBuilder implementation.
 */
#include "model/builder.h"

#include "common/logging.h"

namespace ditto {

namespace {

/** VPU cost multipliers per elementwise op (relative to one element). */
constexpr int64_t kNormCost = 4;     // mean + var + normalise passes
constexpr int64_t kSoftmaxCost = 4;  // max + exp + sum + divide
constexpr int64_t kActCost = 2;      // sigmoid/tanh lookup + multiply

int64_t
nonLinearCost(OpKind kind, int64_t elems)
{
    switch (kind) {
      case OpKind::GroupNorm:
      case OpKind::LayerNorm:
        return elems * kNormCost;
      case OpKind::Softmax:
        return elems * kSoftmaxCost;
      case OpKind::SiLU:
      case OpKind::GeLU:
        return elems * kActCost;
      default:
        DITTO_PANIC("nonLinear() called with non-VPU kind "
                    << opKindName(kind));
    }
}

} // namespace

int
LayerGraphBuilder::input(const std::string &name, int64_t elems)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Input;
    l.outputElems = elems;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::conv2d(const std::string &name, int in, int64_t cin,
                     int64_t cout, int64_t kernel, int64_t stride,
                     int64_t padding, int64_t h, int64_t w)
{
    DITTO_ASSERT(cin > 0 && cout > 0 && kernel > 0 && stride > 0,
                 "bad conv parameters for " << name);
    const int64_t oh = (h + 2 * padding - kernel) / stride + 1;
    const int64_t ow = (w + 2 * padding - kernel) / stride + 1;
    DITTO_ASSERT(oh > 0 && ow > 0, "conv " << name << " output empty");
    Layer l;
    l.name = name;
    l.kind = OpKind::Conv2d;
    l.inputs = {in};
    l.inputElems = cin * h * w;
    l.outputElems = cout * oh * ow;
    l.weightElems = cout * cin * kernel * kernel;
    l.macs = l.outputElems * cin * kernel * kernel;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::fc(const std::string &name, int in, int64_t rows,
                 int64_t in_f, int64_t out_f, bool const_per_run)
{
    DITTO_ASSERT(rows > 0 && in_f > 0 && out_f > 0,
                 "bad fc parameters for " << name);
    Layer l;
    l.name = name;
    l.kind = OpKind::Fc;
    l.inputs = {in};
    l.inputElems = rows * in_f;
    l.outputElems = rows * out_f;
    l.weightElems = in_f * out_f;
    l.macs = rows * in_f * out_f;
    l.constPerRun = const_per_run;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::attnQK(const std::string &name, int q, int k, int64_t tokens,
                     int64_t dim, int64_t heads, int64_t batch)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::AttnQK;
    l.inputs = {q, k};
    l.inputElems = batch * tokens * dim; // Q
    l.inputElems2 = batch * tokens * dim; // K
    l.outputElems = batch * heads * tokens * tokens;
    l.macs = batch * tokens * tokens * dim;
    l.tokens = tokens;
    l.dim = dim;
    l.heads = heads;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::attnPV(const std::string &name, int p, int v, int64_t tokens,
                     int64_t dim, int64_t heads, int64_t batch)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::AttnPV;
    l.inputs = {p, v};
    l.inputElems = batch * heads * tokens * tokens; // P
    l.inputElems2 = batch * tokens * dim; // V
    l.outputElems = batch * tokens * dim;
    l.macs = batch * tokens * tokens * dim;
    l.tokens = tokens;
    l.dim = dim;
    l.heads = heads;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::crossQK(const std::string &name, int q, int64_t tokens,
                      int64_t ctx_tokens, int64_t dim, int64_t heads,
                      int64_t batch)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::CrossQK;
    l.inputs = {q};
    l.inputElems = batch * tokens * dim;
    l.outputElems = batch * heads * tokens * ctx_tokens;
    l.weightElems = ctx_tokens * dim; // constant K'
    l.macs = batch * tokens * ctx_tokens * dim;
    l.tokens = tokens;
    l.dim = dim;
    l.heads = heads;
    l.ctxTokens = ctx_tokens;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::crossPV(const std::string &name, int p, int64_t tokens,
                      int64_t ctx_tokens, int64_t dim, int64_t heads,
                      int64_t batch)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::CrossPV;
    l.inputs = {p};
    l.inputElems = batch * heads * tokens * ctx_tokens;
    l.outputElems = batch * tokens * dim;
    l.weightElems = ctx_tokens * dim; // constant V'
    l.macs = batch * tokens * ctx_tokens * dim;
    l.tokens = tokens;
    l.dim = dim;
    l.heads = heads;
    l.ctxTokens = ctx_tokens;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::nonLinear(const std::string &name, OpKind kind, int in,
                        int64_t elems)
{
    DITTO_ASSERT(isNonLinear(kind), "nonLinear() with non-VPU kind");
    Layer l;
    l.name = name;
    l.kind = kind;
    l.inputs = {in};
    l.inputElems = elems;
    l.outputElems = elems;
    l.vectorOps = nonLinearCost(kind, elems);
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::add(const std::string &name, int a, int b, int64_t elems)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Add;
    l.inputs = {a, b};
    l.inputElems = elems;
    l.outputElems = elems;
    l.vectorOps = elems;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::scale(const std::string &name, int in, int64_t elems)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Scale;
    l.inputs = {in};
    l.inputElems = elems;
    l.outputElems = elems;
    l.vectorOps = 2 * elems; // multiply + shift
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::concat(const std::string &name, int a, int b,
                     int64_t out_elems)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Concat;
    l.inputs = {a, b};
    l.inputElems = out_elems;
    l.outputElems = out_elems;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::upsample(const std::string &name, int in, int64_t out_elems)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Upsample;
    l.inputs = {in};
    l.inputElems = out_elems / 4;
    l.outputElems = out_elems;
    l.vectorOps = out_elems;
    return graph_.addLayer(std::move(l));
}

int
LayerGraphBuilder::pool(const std::string &name, int in, int64_t out_elems)
{
    Layer l;
    l.name = name;
    l.kind = OpKind::Pool;
    l.inputs = {in};
    l.inputElems = out_elems * 4;
    l.outputElems = out_elems;
    l.vectorOps = out_elems * 4;
    return graph_.addLayer(std::move(l));
}

} // namespace ditto
