/**
 * @file
 * Parametric UNet denoising-model builder.
 *
 * One builder covers the five UNet-based models of Table I: DDPM
 * (pixel-space), BED/CHUR (latent-space unconditional, plain attention
 * blocks), and IMG/SDM (latent-space conditional, transformer blocks
 * with cross attention per Fig. 2 of the paper). The graphs reproduce
 * each network's layer topology — kinds, operand shapes, dependencies,
 * non-linearity placement — which is everything the Ditto algorithm and
 * cycle model consume.
 */
#ifndef DITTO_MODEL_UNET_H
#define DITTO_MODEL_UNET_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/graph.h"

namespace ditto {

/** Configuration of a UNet denoising model. */
struct UnetConfig
{
    std::string name;
    int64_t resolution = 32;    //!< input spatial extent (pixel or latent)
    int64_t inChannels = 3;     //!< input channels
    int64_t outChannels = 3;    //!< predicted-noise channels
    int64_t baseCh = 128;       //!< channel width at the top level
    std::vector<int64_t> chMult = {1, 2, 2, 2};
    int numResBlocks = 2;       //!< residual blocks per level
    std::vector<int64_t> attnResolutions = {16};

    /**
     * Attention style: plain single-head attention blocks (DDPM/LDM
     * unconditional) vs. conditional latent diffusion transformer blocks
     * with self attention, cross attention and a GeLU MLP (IMG/SDM).
     */
    bool transformerBlocks = false;
    int64_t ctxTokens = 0;      //!< cross-attention context length
    int64_t ctxDim = 0;         //!< cross-attention context width
    int64_t headDim = 64;       //!< attention head size (transformer)
};

/** Build the layer graph for a UNet configuration. */
ModelGraph buildUnet(const UnetConfig &cfg);

} // namespace ditto

#endif // DITTO_MODEL_UNET_H
