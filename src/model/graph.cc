/**
 * @file
 * Graph implementation and Defo static dependency analysis.
 */
#include "model/graph.h"

#include "common/logging.h"

namespace ditto {

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Conv2d: return "Conv2d";
      case OpKind::Fc: return "FC";
      case OpKind::AttnQK: return "AttnQK";
      case OpKind::AttnPV: return "AttnPV";
      case OpKind::CrossQK: return "CrossQK";
      case OpKind::CrossPV: return "CrossPV";
      case OpKind::GroupNorm: return "GroupNorm";
      case OpKind::LayerNorm: return "LayerNorm";
      case OpKind::SiLU: return "SiLU";
      case OpKind::GeLU: return "GeLU";
      case OpKind::Softmax: return "Softmax";
      case OpKind::Add: return "Add";
      case OpKind::Scale: return "Scale";
      case OpKind::Concat: return "Concat";
      case OpKind::Upsample: return "Upsample";
      case OpKind::Pool: return "Pool";
      case OpKind::Input: return "Input";
    }
    DITTO_PANIC("unknown OpKind");
}

bool
isComputeOp(OpKind k)
{
    switch (k) {
      case OpKind::Conv2d:
      case OpKind::Fc:
      case OpKind::AttnQK:
      case OpKind::AttnPV:
      case OpKind::CrossQK:
      case OpKind::CrossPV:
        return true;
      default:
        return false;
    }
}

bool
isWeightStationary(OpKind k)
{
    switch (k) {
      case OpKind::Conv2d:
      case OpKind::Fc:
      case OpKind::CrossQK:
      case OpKind::CrossPV:
        return true;
      default:
        return false;
    }
}

bool
isDynamicAttention(OpKind k)
{
    return k == OpKind::AttnQK || k == OpKind::AttnPV;
}

bool
isNonLinear(OpKind k)
{
    switch (k) {
      case OpKind::GroupNorm:
      case OpKind::LayerNorm:
      case OpKind::SiLU:
      case OpKind::GeLU:
      case OpKind::Softmax:
        return true;
      default:
        return false;
    }
}

bool
isDiffTransparent(OpKind k)
{
    // d(a + b) = da + db, d(concat) = concat(d), d(upsample) = upsample(d),
    // d(avg pool) = avg pool(d). Scale (adaLN modulation) multiplies by a
    // per-step constant; the multiplicative part is linear in the input so
    // a difference passes through scaled — but the shift term cancels in
    // the difference, so Scale is transparent for differences as long as
    // the scale factor of the *current* step is applied. We model it as
    // transparent (the VPU applies the scale to the difference).
    switch (k) {
      case OpKind::Add:
      case OpKind::Scale:
      case OpKind::Concat:
      case OpKind::Upsample:
      case OpKind::Pool:
        return true;
      default:
        return false;
    }
}

int
ModelGraph::addLayer(Layer layer)
{
    const int id = static_cast<int>(layers_.size());
    layer.id = id;
    for (int in : layer.inputs) {
        DITTO_ASSERT(in >= 0 && in < id,
                     "layer '" << layer.name
                               << "' references a later/unknown producer");
        consumers_[in].push_back(id);
    }
    layers_.push_back(std::move(layer));
    consumers_.emplace_back();
    return id;
}

const Layer &
ModelGraph::layer(int id) const
{
    DITTO_ASSERT(id >= 0 && id < numLayers(), "layer id out of range");
    return layers_[id];
}

const std::vector<int> &
ModelGraph::consumers(int id) const
{
    DITTO_ASSERT(id >= 0 && id < numLayers(), "layer id out of range");
    return consumers_[id];
}

int64_t
ModelGraph::totalMacs() const
{
    int64_t total = 0;
    for (const Layer &l : layers_)
        total += l.macs;
    return total;
}

int64_t
ModelGraph::totalVectorOps() const
{
    int64_t total = 0;
    for (const Layer &l : layers_)
        total += l.vectorOps;
    return total;
}

int
ModelGraph::numComputeLayers() const
{
    int n = 0;
    for (const Layer &l : layers_)
        if (l.isCompute())
            ++n;
    return n;
}

int64_t
ModelGraph::totalWeightElems() const
{
    int64_t total = 0;
    for (const Layer &l : layers_)
        total += l.weightElems;
    return total;
}

std::vector<LayerDependency>
ModelGraph::analyzeDependencies() const
{
    std::vector<LayerDependency> deps(layers_.size());

    // Upstream walk: does the dynamic input of a compute layer reach a
    // full-value source (non-linear output or graph input) before hitting
    // another compute layer? Structural ops are transparent.
    auto inputIsFullValue = [&](int id, auto &&self,
                                std::vector<OpKind> *boundary) -> bool {
        bool any_full = false;
        for (int in : layers_[id].inputs) {
            const Layer &p = layers_[in];
            if (p.isCompute()) {
                // Producer is a compute layer: under difference
                // processing it emits a difference directly.
                continue;
            }
            if (isNonLinear(p.kind) || p.kind == OpKind::Input) {
                any_full = true;
                if (boundary)
                    boundary->push_back(p.kind);
                continue;
            }
            DITTO_ASSERT(isDiffTransparent(p.kind),
                         "unhandled producer kind");
            if (self(in, self, boundary))
                any_full = true;
        }
        return any_full;
    };

    // Downstream walk: does any consumer require full values? Non-linear
    // functions need original data; dynamic attention needs both the full
    // previous-step operand and the difference (Section IV-A), so its
    // producers must materialise full values too. The graph output (no
    // consumers) is full-value by definition (the sampler consumes it).
    auto outputNeedsFullValue = [&](int id, auto &&self,
                                    std::vector<OpKind> *boundary) -> bool {
        if (consumers_[id].empty())
            return true;
        bool any_full = false;
        for (int c : consumers_[id]) {
            const Layer &consumer = layers_[c];
            if (isNonLinear(consumer.kind) ||
                isDynamicAttention(consumer.kind)) {
                any_full = true;
                if (boundary)
                    boundary->push_back(consumer.kind);
                continue;
            }
            if (consumer.isCompute())
                continue; // weight-stationary: consumes differences
            DITTO_ASSERT(isDiffTransparent(consumer.kind),
                         "unhandled consumer kind");
            if (self(c, self, boundary))
                any_full = true;
        }
        return any_full;
    };

    for (const Layer &l : layers_) {
        // Junction verdicts propagate instead of terminating: every
        // diff-transparent structural layer (Add/Concat/Scale/
        // Upsample/Pool) gets the same two-sided verdict a compute
        // layer gets. A junction with both flags false sits entirely
        // inside the difference domain — its inputs arrive as
        // differences from compute producers and every consumer keeps
        // consuming differences — which is what lets the runtime fold
        // the junction into a multi-producer requant-delta instead of
        // forcing a full-value round trip. boundaryNonLinears stays a
        // compute-layer quantity (the sign-mask model reads it per
        // compute boundary only).
        if (!l.isCompute() && !isDiffTransparent(l.kind))
            continue;
        LayerDependency &d = deps[l.id];
        d.boundaryNonLinears.clear();
        d.diffCalcNeeded =
            inputIsFullValue(l.id, inputIsFullValue,
                             l.isCompute() ? &d.boundaryNonLinears
                                           : nullptr);
        d.summationNeeded =
            outputNeedsFullValue(l.id, outputNeedsFullValue,
                                 l.isCompute() ? &d.boundaryNonLinears
                                               : nullptr);
    }
    return deps;
}

int
ModelGraph::findLayer(const std::string &name) const
{
    for (const Layer &l : layers_)
        if (l.name == name)
            return l.id;
    return -1;
}

} // namespace ditto
