/**
 * @file
 * DiT / Latte builder implementation.
 */
#include "model/transformer.h"

#include "common/logging.h"
#include "model/builder.h"

namespace ditto {

namespace {

/** Mutable build state for the transformer builders. */
struct DitBuild
{
    const DitConfig &cfg;
    LayerGraphBuilder b;
    int cond = -1;          //!< conditioning embedding (time + class)
    int64_t allTokens = 0;  //!< tokens across all frames

    explicit DitBuild(const DitConfig &cfg_) : cfg(cfg_), b(cfg_.name) {}
};

/**
 * One adaLN transformer block.
 *
 * @param attn_tokens tokens participating in one attention instance.
 * @param attn_batch independent attention instances (frames for spatial
 *        attention, spatial positions for temporal attention).
 */
int
adaLnBlock(DitBuild &u, const std::string &name, int x,
           int64_t attn_tokens, int64_t attn_batch)
{
    const DitConfig &cfg = u.cfg;
    const int64_t d = cfg.hidden;
    const int64_t rows = u.allTokens;
    const int64_t elems = rows * d;

    // adaLN modulation: SiLU -> FC producing 6 per-channel vectors.
    int m = u.b.nonLinear(name + ".ada_silu", OpKind::SiLU, u.cond, d);
    m = u.b.fc(name + ".adaLN", m, 1, d, 6 * d);
    (void)m; // modulation parameters feed the Scale layers below

    // Attention half-block.
    int h = u.b.nonLinear(name + ".ln1", OpKind::LayerNorm, x, elems);
    h = u.b.scale(name + ".mod_msa", h, elems);
    const int q = u.b.fc(name + ".q", h, rows, d, d);
    const int k = u.b.fc(name + ".k", h, rows, d, d);
    const int v = u.b.fc(name + ".v", h, rows, d, d);
    int a = u.b.attnQK(name + ".qk", q, k, attn_tokens, d, cfg.heads,
                       attn_batch);
    a = u.b.nonLinear(name + ".softmax", OpKind::Softmax, a,
                      attn_batch * cfg.heads * attn_tokens * attn_tokens);
    a = u.b.attnPV(name + ".pv", a, v, attn_tokens, d, cfg.heads,
                   attn_batch);
    a = u.b.fc(name + ".proj", a, rows, d, d);
    a = u.b.scale(name + ".gate_msa", a, elems);
    int res = u.b.add(name + ".res1", a, x, elems);

    // MLP half-block.
    int f = u.b.nonLinear(name + ".ln2", OpKind::LayerNorm, res, elems);
    f = u.b.scale(name + ".mod_mlp", f, elems);
    f = u.b.fc(name + ".mlp1", f, rows, d, cfg.mlpRatio * d);
    f = u.b.nonLinear(name + ".gelu", OpKind::GeLU, f,
                      rows * cfg.mlpRatio * d);
    f = u.b.fc(name + ".mlp2", f, rows, cfg.mlpRatio * d, d);
    f = u.b.scale(name + ".gate_mlp", f, elems);
    return u.b.add(name + ".res2", f, res, elems);
}

} // namespace

ModelGraph
buildDit(const DitConfig &cfg)
{
    DITTO_ASSERT(cfg.latentRes % cfg.patch == 0,
                 "patch must divide the latent resolution");
    DitBuild u(cfg);

    const int64_t side = cfg.latentRes / cfg.patch;
    const int64_t frame_tokens = side * side;
    u.allTokens = cfg.frames * frame_tokens;
    const int64_t patch_dim = cfg.latentCh * cfg.patch * cfg.patch;
    const int64_t d = cfg.hidden;

    // Conditioning embedding (timestep + class / text pooled).
    int c = u.b.input("cond_in", d);
    c = u.b.fc("cond.fc1", c, 1, d, d);
    c = u.b.nonLinear("cond.silu", OpKind::SiLU, c, d);
    u.cond = u.b.fc("cond.fc2", c, 1, d, d);

    // Patchify: linear projection of non-overlapping patches.
    const int x_in = u.b.input(
        "x", cfg.frames * cfg.latentCh * cfg.latentRes * cfg.latentRes);
    int h = u.b.fc("patchify", x_in, u.allTokens, patch_dim, d);

    for (int64_t blk = 0; blk < cfg.depth; ++blk) {
        const bool temporal = cfg.frames > 1 && (blk % 2 == 1);
        const std::string nm = (temporal ? "tblock." : "block.") +
                               std::to_string(blk);
        if (temporal) {
            // Latte temporal block: attention across frames at each
            // spatial location.
            h = adaLnBlock(u, nm, h, cfg.frames, frame_tokens);
        } else {
            // Spatial block: attention within each frame.
            h = adaLnBlock(u, nm, h, frame_tokens, cfg.frames);
        }
    }

    // Final layer: LN -> modulate -> linear to patch pixels (noise and
    // per-channel sigma, hence the factor 2).
    const int64_t elems = u.allTokens * d;
    h = u.b.nonLinear("final.ln", OpKind::LayerNorm, h, elems);
    h = u.b.scale("final.mod", h, elems);
    u.b.fc("final.proj", h, u.allTokens, d, 2 * patch_dim);

    return u.b.take();
}

} // namespace ditto
