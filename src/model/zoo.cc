/**
 * @file
 * Model zoo implementation: Table I metadata and per-model builders.
 *
 * Architecture hyper-parameters follow the public configurations of
 * each model family: DDPM (Ho et al.), latent-diffusion LSUN/ImageNet
 * UNets (Rombach et al.), Stable Diffusion v1 (Rombach et al.), DiT-XL/2
 * (Peebles & Xie) and Latte-XL/2 (Ma et al.). The graphs reproduce the
 * layer topology and operand geometry that the Ditto algorithm, Defo
 * analysis and hardware model consume.
 */
#include "model/zoo.h"

#include "common/logging.h"
#include "model/transformer.h"
#include "model/unet.h"

namespace ditto {

const std::vector<ModelId> &
allModels()
{
    static const std::vector<ModelId> kAll = {
        ModelId::DDPM, ModelId::BED, ModelId::CHUR, ModelId::IMG,
        ModelId::SDM, ModelId::DiT, ModelId::Latte,
    };
    return kAll;
}

const ModelInfo &
modelInfo(ModelId id)
{
    static const std::vector<ModelInfo> kSpecs = {
        {ModelId::DDPM, "DDPM", "DDPM", "Cifar-10",
         {"DDIM", 100, 0}, QuantMethod::QDiffusion, false},
        {ModelId::BED, "BED", "Latent-Diffusion", "LSUN-Bed",
         {"DDIM", 200, 0}, QuantMethod::QDiffusion, false},
        {ModelId::CHUR, "CHUR", "Latent-Diffusion", "LSUN-Church",
         {"DDIM", 200, 0}, QuantMethod::QDiffusion, false},
        {ModelId::IMG, "IMG", "Latent-Diffusion", "ImageNet",
         {"DDIM", 20, 0}, QuantMethod::QDiffusion, false},
        {ModelId::SDM, "SDM", "Stable-Diffusion", "COCO2017",
         {"PLMS", 50, 1}, QuantMethod::QDiffusion, false},
        {ModelId::DiT, "DiT", "DiT-XL/2", "ImageNet",
         {"DDIM", 250, 0}, QuantMethod::Dynamic, false},
        {ModelId::Latte, "Latte", "Latte-XL/2", "UCF-101",
         {"DDIM", 20, 0}, QuantMethod::Dynamic, true},
    };
    for (const ModelInfo &s : kSpecs)
        if (s.id == id)
            return s;
    DITTO_PANIC("unknown ModelId");
}

const std::string &
modelAbbr(ModelId id)
{
    return modelInfo(id).abbr;
}

ModelGraph
buildModel(ModelId id)
{
    switch (id) {
      case ModelId::DDPM: {
        // Pixel-space CIFAR-10 UNet: 32x32x3, ch 128, mult (1,2,2,2),
        // two res blocks per level, single-head attention at 16x16.
        UnetConfig cfg;
        cfg.name = "DDPM";
        cfg.resolution = 32;
        cfg.inChannels = 3;
        cfg.outChannels = 3;
        cfg.baseCh = 128;
        cfg.chMult = {1, 2, 2, 2};
        cfg.numResBlocks = 2;
        cfg.attnResolutions = {16};
        return buildUnet(cfg);
      }
      case ModelId::BED: {
        // LDM-4 LSUN-Bedrooms: 64x64x3 latent, ch 224, mult (1,2,3,4),
        // plain attention at 32/16/8.
        UnetConfig cfg;
        cfg.name = "BED";
        cfg.resolution = 64;
        cfg.inChannels = 3;
        cfg.outChannels = 3;
        cfg.baseCh = 224;
        cfg.chMult = {1, 2, 3, 4};
        cfg.numResBlocks = 2;
        cfg.attnResolutions = {32, 16, 8};
        return buildUnet(cfg);
      }
      case ModelId::CHUR: {
        // LDM-8 LSUN-Churches: 32x32x4 latent, ch 192, mult (1,2,2,4,4),
        // plain attention at 32/16/8.
        UnetConfig cfg;
        cfg.name = "CHUR";
        cfg.resolution = 32;
        cfg.inChannels = 4;
        cfg.outChannels = 4;
        cfg.baseCh = 192;
        cfg.chMult = {1, 2, 2, 4, 4};
        cfg.numResBlocks = 2;
        cfg.attnResolutions = {32, 16, 8};
        return buildUnet(cfg);
      }
      case ModelId::IMG: {
        // LDM-4 class-conditional ImageNet: 64x64x3 latent, ch 192,
        // mult (1,2,3,5), transformer blocks with a one-token class
        // context at 32/16/8.
        UnetConfig cfg;
        cfg.name = "IMG";
        cfg.resolution = 64;
        cfg.inChannels = 3;
        cfg.outChannels = 3;
        cfg.baseCh = 192;
        cfg.chMult = {1, 2, 3, 5};
        cfg.numResBlocks = 2;
        cfg.attnResolutions = {32, 16, 8};
        cfg.transformerBlocks = true;
        cfg.ctxTokens = 1;
        cfg.ctxDim = 512;
        return buildUnet(cfg);
      }
      case ModelId::SDM: {
        // Stable Diffusion v1.4: 64x64x4 latent, ch 320, mult (1,2,4,4),
        // transformer blocks with a 77x768 text context at 64/32/16.
        UnetConfig cfg;
        cfg.name = "SDM";
        cfg.resolution = 64;
        cfg.inChannels = 4;
        cfg.outChannels = 4;
        cfg.baseCh = 320;
        cfg.chMult = {1, 2, 4, 4};
        cfg.numResBlocks = 2;
        cfg.attnResolutions = {64, 32, 16};
        cfg.transformerBlocks = true;
        cfg.ctxTokens = 77;
        cfg.ctxDim = 768;
        return buildUnet(cfg);
      }
      case ModelId::DiT: {
        // DiT-XL/2 on 256x256 ImageNet: 32x32x4 latent, patch 2,
        // width 1152, depth 28, 16 heads.
        DitConfig cfg;
        cfg.name = "DiT";
        cfg.latentRes = 32;
        cfg.latentCh = 4;
        cfg.patch = 2;
        cfg.hidden = 1152;
        cfg.depth = 28;
        cfg.heads = 16;
        return buildDit(cfg);
      }
      case ModelId::Latte: {
        // Latte-XL/2 on UCF-101: 16-frame video, per-frame 32x32x4
        // latent, factorised spatial/temporal attention.
        DitConfig cfg;
        cfg.name = "Latte";
        cfg.latentRes = 32;
        cfg.latentCh = 4;
        cfg.patch = 2;
        cfg.hidden = 1152;
        cfg.depth = 28;
        cfg.heads = 16;
        cfg.frames = 16;
        return buildDit(cfg);
      }
    }
    DITTO_PANIC("unknown ModelId");
}

} // namespace ditto
