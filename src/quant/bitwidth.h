/**
 * @file
 * Bit-width requirement analysis (paper Section III-B, Fig. 5).
 *
 * The paper defines the "bit-width requirement" of a quantized value as
 * the minimum number of bits needed to represent it, and buckets values
 * into three classes the hardware cares about: exactly zero (skippable),
 * representable in the low 4-bit lane, and requiring the full 8-bit path
 * (two lanes plus shift). The Encoding Unit performs exactly this
 * classification in hardware; this module is the software oracle it is
 * verified against.
 */
#ifndef DITTO_QUANT_BITWIDTH_H
#define DITTO_QUANT_BITWIDTH_H

#include <cstdint>
#include <string>

#include "tensor/tensor.h"

namespace ditto {

/** Hardware-relevant bit-width class of one quantized value. */
enum class BitClass
{
    Zero,     //!< value is 0: skipped entirely
    Low4,     //!< fits the signed 4-bit lane: one multiplier
    Full8,    //!< needs the full path: two multipliers + shifter
};

/** Human-readable name for a BitClass. */
const char *bitClassName(BitClass c);

/**
 * Classify one value against a low bit-width boundary.
 *
 * @param v the quantized (integer) value; differences of int8 codes can
 *          reach [-254, 254] so the domain is int16.
 * @param low_bits lane width; values in [-2^(low_bits-1), 2^(low_bits-1)-1]
 *        classify as Low4.
 */
BitClass classifyValue(int16_t v, int low_bits = 4);

/** Fractions of a population falling in each BitClass; sums to 1. */
struct BitClassHistogram
{
    double zeroFrac = 0.0;
    double low4Frac = 0.0;
    double full8Frac = 0.0;
    int64_t total = 0;

    /** Fraction representable in at most 4 bits (zero + low4). */
    double atMost4Frac() const { return zeroFrac + low4Frac; }

    /** Merge another histogram, weighting by element counts. */
    void merge(const BitClassHistogram &other);

    /** Render as "zero a% / 4-bit b% / >4-bit c%". */
    std::string toString() const;
};

/** Classify every element of an int8 tensor. */
BitClassHistogram classifyTensor(const Int8Tensor &t, int low_bits = 4);

/** Classify every element of an int16 difference tensor. */
BitClassHistogram classifyTensor(const Int16Tensor &t, int low_bits = 4);

/**
 * Histogram of the temporal difference between two int8 code tensors
 * (current - previous), the quantity the Encoding Unit classifies.
 */
BitClassHistogram classifyTemporalDiff(const Int8Tensor &current,
                                       const Int8Tensor &previous,
                                       int low_bits = 4);

/**
 * Histogram of spatial differences along the last dimension (Diffy-style
 * row-dimension differences; the first element of each row is charged at
 * its own magnitude as there is no left neighbour).
 */
BitClassHistogram classifySpatialDiff(const Int8Tensor &t,
                                      int low_bits = 4);

} // namespace ditto

#endif // DITTO_QUANT_BITWIDTH_H
