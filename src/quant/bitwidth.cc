/**
 * @file
 * Bit-width requirement analysis implementation.
 */
#include "quant/bitwidth.h"

#include <sstream>

#include "common/logging.h"

namespace ditto {

const char *
bitClassName(BitClass c)
{
    switch (c) {
      case BitClass::Zero:
        return "zero";
      case BitClass::Low4:
        return "4-bit";
      case BitClass::Full8:
        return ">4-bit";
    }
    DITTO_PANIC("unknown BitClass");
}

BitClass
classifyValue(int16_t v, int low_bits)
{
    DITTO_ASSERT(low_bits >= 1 && low_bits <= 8, "low_bits out of range");
    if (v == 0)
        return BitClass::Zero;
    const int16_t lo = static_cast<int16_t>(-(1 << (low_bits - 1)));
    const int16_t hi = static_cast<int16_t>((1 << (low_bits - 1)) - 1);
    return (v >= lo && v <= hi) ? BitClass::Low4 : BitClass::Full8;
}

void
BitClassHistogram::merge(const BitClassHistogram &other)
{
    const int64_t n = total + other.total;
    if (n == 0)
        return;
    const double wa = static_cast<double>(total) / n;
    const double wb = static_cast<double>(other.total) / n;
    zeroFrac = zeroFrac * wa + other.zeroFrac * wb;
    low4Frac = low4Frac * wa + other.low4Frac * wb;
    full8Frac = full8Frac * wa + other.full8Frac * wb;
    total = n;
}

std::string
BitClassHistogram::toString() const
{
    std::ostringstream os;
    os << "zero " << zeroFrac * 100.0 << "% / 4-bit " << low4Frac * 100.0
       << "% / >4-bit " << full8Frac * 100.0 << "%";
    return os.str();
}

namespace {

template <typename T>
BitClassHistogram
classifySpan(std::span<const T> values, int low_bits)
{
    BitClassHistogram h;
    int64_t zero = 0;
    int64_t low = 0;
    int64_t full = 0;
    for (T v : values) {
        switch (classifyValue(static_cast<int16_t>(v), low_bits)) {
          case BitClass::Zero:
            ++zero;
            break;
          case BitClass::Low4:
            ++low;
            break;
          case BitClass::Full8:
            ++full;
            break;
        }
    }
    h.total = static_cast<int64_t>(values.size());
    if (h.total > 0) {
        h.zeroFrac = static_cast<double>(zero) / h.total;
        h.low4Frac = static_cast<double>(low) / h.total;
        h.full8Frac = static_cast<double>(full) / h.total;
    }
    return h;
}

} // namespace

BitClassHistogram
classifyTensor(const Int8Tensor &t, int low_bits)
{
    return classifySpan<int8_t>(t.data(), low_bits);
}

BitClassHistogram
classifyTensor(const Int16Tensor &t, int low_bits)
{
    return classifySpan<int16_t>(t.data(), low_bits);
}

BitClassHistogram
classifyTemporalDiff(const Int8Tensor &current, const Int8Tensor &previous,
                     int low_bits)
{
    DITTO_ASSERT(current.shape() == previous.shape(),
                 "temporal diff shape mismatch");
    BitClassHistogram h;
    int64_t zero = 0;
    int64_t low = 0;
    int64_t full = 0;
    auto sc = current.data();
    auto sp = previous.data();
    for (size_t i = 0; i < sc.size(); ++i) {
        const auto d = static_cast<int16_t>(static_cast<int16_t>(sc[i]) -
                                            static_cast<int16_t>(sp[i]));
        switch (classifyValue(d, low_bits)) {
          case BitClass::Zero:
            ++zero;
            break;
          case BitClass::Low4:
            ++low;
            break;
          case BitClass::Full8:
            ++full;
            break;
        }
    }
    h.total = static_cast<int64_t>(sc.size());
    if (h.total > 0) {
        h.zeroFrac = static_cast<double>(zero) / h.total;
        h.low4Frac = static_cast<double>(low) / h.total;
        h.full8Frac = static_cast<double>(full) / h.total;
    }
    return h;
}

BitClassHistogram
classifySpatialDiff(const Int8Tensor &t, int low_bits)
{
    const Shape &s = t.shape();
    DITTO_ASSERT(s.rank() >= 1, "spatial diff needs a shaped tensor");
    const int64_t cols = s.dim(s.rank() - 1);
    const int64_t rows = s.numel() / cols;
    BitClassHistogram h;
    int64_t zero = 0;
    int64_t low = 0;
    int64_t full = 0;
    auto sd = t.data();
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
            const int64_t idx = r * cols + c;
            const int16_t v = c == 0
                ? static_cast<int16_t>(sd[idx])
                : static_cast<int16_t>(static_cast<int16_t>(sd[idx]) -
                                       static_cast<int16_t>(sd[idx - 1]));
            switch (classifyValue(v, low_bits)) {
              case BitClass::Zero:
                ++zero;
                break;
              case BitClass::Low4:
                ++low;
                break;
              case BitClass::Full8:
                ++full;
                break;
            }
        }
    }
    h.total = s.numel();
    if (h.total > 0) {
        h.zeroFrac = static_cast<double>(zero) / h.total;
        h.low4Frac = static_cast<double>(low) / h.total;
        h.full8Frac = static_cast<double>(full) / h.total;
    }
    return h;
}

} // namespace ditto
