/**
 * @file
 * Quantizer implementation.
 */
#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ditto {

Int8Tensor
quantize(const FloatTensor &x, const QuantParams &params)
{
    DITTO_ASSERT(params.scale > 0.0f, "quantization scale must be positive");
    DITTO_ASSERT(params.bits >= 2 && params.bits <= 8,
                 "int8 storage supports 2..8 bit codes");
    Int8Tensor out(x.shape());
    auto sx = x.data();
    auto so = out.data();
    const float inv = 1.0f / params.scale;
    const auto lo = static_cast<float>(params.minCode());
    const auto hi = static_cast<float>(params.maxCode());
    for (size_t i = 0; i < sx.size(); ++i) {
        const float code = std::nearbyint(sx[i] * inv);
        so[i] = static_cast<int8_t>(std::clamp(code, lo, hi));
    }
    return out;
}

FloatTensor
dequantize(const Int8Tensor &q, const QuantParams &params)
{
    FloatTensor out(q.shape());
    auto sq = q.data();
    auto so = out.data();
    for (size_t i = 0; i < sq.size(); ++i)
        so[i] = static_cast<float>(sq[i]) * params.scale;
    return out;
}

FloatTensor
dequantizeAccum(const Int32Tensor &acc, float combined_scale)
{
    FloatTensor out(acc.shape());
    auto sa = acc.data();
    auto so = out.data();
    for (size_t i = 0; i < sa.size(); ++i)
        so[i] = static_cast<float>(sa[i]) * combined_scale;
    return out;
}

QuantParams
chooseDynamicScale(const FloatTensor &x, int bits)
{
    float maxabs = 0.0f;
    for (float v : x.data())
        maxabs = std::max(maxabs, std::fabs(v));
    QuantParams p;
    p.bits = bits;
    // An all-zero tensor quantizes exactly with any scale; pick 1.
    p.scale = maxabs > 0.0f
        ? maxabs / static_cast<float>(p.maxCode()) : 1.0f;
    return p;
}

QuantParams
chooseStaticScale(const std::vector<FloatTensor> &samples, int bits)
{
    DITTO_ASSERT(!samples.empty(), "static calibration needs samples");
    float maxabs = 0.0f;
    for (const auto &t : samples)
        for (float v : t.data())
            maxabs = std::max(maxabs, std::fabs(v));
    QuantParams p;
    p.bits = bits;
    p.scale = maxabs > 0.0f
        ? maxabs / static_cast<float>(p.maxCode()) : 1.0f;
    return p;
}

TimestepClusteredQuantizer::TimestepClusteredQuantizer(
    const std::vector<float> &per_step_maxabs, int clusters, int bits)
{
    const int steps = static_cast<int>(per_step_maxabs.size());
    DITTO_ASSERT(steps > 0, "clustered calibration needs steps");
    DITTO_ASSERT(clusters > 0, "need at least one cluster");
    clusters = std::min(clusters, steps);

    // 1-D k-means on log(maxabs). Initialise centroids at quantiles.
    std::vector<double> logs(steps);
    for (int i = 0; i < steps; ++i) {
        DITTO_ASSERT(per_step_maxabs[i] >= 0.0f, "negative max-abs");
        logs[i] = std::log(
            std::max(per_step_maxabs[i], 1e-12f));
    }
    std::vector<double> sorted = logs;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> centroids(clusters);
    for (int c = 0; c < clusters; ++c) {
        const int idx = static_cast<int>(
            (static_cast<double>(c) + 0.5) * steps / clusters);
        centroids[c] = sorted[std::min(idx, steps - 1)];
    }

    assignment_.assign(steps, 0);
    for (int iter = 0; iter < 50; ++iter) {
        bool changed = false;
        for (int i = 0; i < steps; ++i) {
            int best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (int c = 0; c < clusters; ++c) {
                const double d = std::fabs(logs[i] - centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assignment_[i] != best) {
                assignment_[i] = best;
                changed = true;
            }
        }
        std::vector<double> sum(clusters, 0.0);
        std::vector<int> cnt(clusters, 0);
        for (int i = 0; i < steps; ++i) {
            sum[assignment_[i]] += logs[i];
            ++cnt[assignment_[i]];
        }
        for (int c = 0; c < clusters; ++c)
            if (cnt[c] > 0)
                centroids[c] = sum[c] / cnt[c];
        if (!changed)
            break;
    }

    // One scale per cluster, covering the worst step in that cluster.
    scales_.assign(clusters, QuantParams{});
    std::vector<float> cluster_max(clusters, 0.0f);
    for (int i = 0; i < steps; ++i)
        cluster_max[assignment_[i]] =
            std::max(cluster_max[assignment_[i]], per_step_maxabs[i]);
    for (int c = 0; c < clusters; ++c) {
        scales_[c].bits = bits;
        scales_[c].scale = cluster_max[c] > 0.0f
            ? cluster_max[c] / static_cast<float>(scales_[c].maxCode())
            : 1.0f;
    }
}

const QuantParams &
TimestepClusteredQuantizer::paramsForStep(int step) const
{
    DITTO_ASSERT(step >= 0 && step < numSteps(), "step out of range");
    return scales_[assignment_[step]];
}

int
TimestepClusteredQuantizer::clusterOfStep(int step) const
{
    DITTO_ASSERT(step >= 0 && step < numSteps(), "step out of range");
    return assignment_[step];
}

float
maxQuantError(const FloatTensor &x, const QuantParams &params)
{
    const Int8Tensor q = quantize(x, params);
    float err = 0.0f;
    auto sx = x.data();
    auto sq = q.data();
    for (size_t i = 0; i < sx.size(); ++i) {
        const float back = static_cast<float>(sq[i]) * params.scale;
        err = std::max(err, std::fabs(sx[i] - back));
    }
    return err;
}

} // namespace ditto
