/**
 * @file
 * Software Encoding Unit: builds the panel plan the sparse diff-GEMM
 * executes (paper Section V-B, Fig. 11, in plan form).
 *
 * The hardware Encoding Unit subtracts adjacent-step activations,
 * classifies every difference (zero / 4-bit lane / full path) and
 * reorders the survivors toward the Compute Unit lanes. This module is
 * the same pipeline targeting tensor/diff_gemm.h: one pass over the
 * difference operand produces
 *
 *  - the per-panel class table with a zero-panel skip list,
 *  - packed 4-bit lane panels and verbatim int16 fallback panels, and
 *  - exact element-class tallies (quant/bitwidth.h semantics), so the
 *    OpCounts the execution engines report are a by-product of the same
 *    pass that drives execution — tally and execution cannot diverge
 *    the way the old ad-hoc classifyValue loops could.
 *
 * Rows are encoded independently (two parallel passes linked by a
 * serial prefix scan), so plans are deterministic at any thread count.
 */
#ifndef DITTO_QUANT_ENCODER_H
#define DITTO_QUANT_ENCODER_H

#include <span>

#include "quant/quantizer.h"
#include "tensor/diff_gemm.h"
#include "tensor/tensor.h"

namespace ditto {

/**
 * Element-class tallies of a temporal difference, produced by one
 * vectorized counting sweep — the cheap prefix of full encoding. The
 * engines use it both for OpCounts accounting and as the Defo-style
 * cost probe that decides whether difference execution is worth it
 * before paying for the plan (paper Section IV-C: the Encoding Unit's
 * class counts are exactly the statistic the flow controller needs).
 */
struct DiffClassCounts
{
    int64_t zero = 0;
    int64_t low4 = 0;
    int64_t full8 = 0;

    int64_t total() const { return zero + low4 + full8; }
    int64_t nonzero() const { return low4 + full8; }
};

/** Count difference classes of current - previous (whole tensors). */
DiffClassCounts countTemporalDiffClasses(const Int8Tensor &current,
                                         const Int8Tensor &previous);

/** Count over a flat region (batch slab), as encodeTemporalDiffRegion. */
DiffClassCounts countTemporalDiffClasses(const Int8Tensor &current,
                                         const Int8Tensor &previous,
                                         int64_t offset, int64_t count);

/**
 * Count classes of an explicit int16 difference (whole tensor): the
 * probe for callers whose difference was handed over by a producer
 * layer instead of being subtracted here (dependency-analysis bypass).
 * Equals countTemporalDiffClasses of operands whose subtraction is
 * `diff`.
 */
DiffClassCounts countDiffClasses(const Int16Tensor &diff);

/** countDiffClasses over a flat region (batch slab). */
DiffClassCounts countDiffClasses(const Int16Tensor &diff, int64_t offset,
                                 int64_t count);

/**
 * Encode an already-subtracted int16 difference matrix [rows, cols].
 * Values must lie in the int8-code difference domain [-254, 254].
 */
DiffGemmPlan encodeDiff(const Int16Tensor &diff);

/**
 * encodeDiff over a rectangular region of flat int16 storage: the
 * logical operand is rows x cols elements starting at `offset`.
 * Produces exactly the plan encodeTemporalDiffRegion would for
 * operands whose subtraction equals the region.
 */
DiffGemmPlan encodeDiffRegion(const Int16Tensor &diff, int64_t offset,
                              int64_t rows, int64_t cols);

/**
 * Fused subtract + encode of a temporal difference current - previous
 * (both int8 code matrices of the same shape) without materializing the
 * intermediate int16 tensor.
 */
DiffGemmPlan encodeTemporalDiff(const Int8Tensor &current,
                                const Int8Tensor &previous);

/**
 * encodeTemporalDiff over a rectangular region of flat storage: the
 * logical operand is rows x cols elements starting at `offset` in both
 * tensors' flat data. Used per batch slab, e.g. the [Cin, H*W] slice
 * of an NCHW difference that the sparse scatter convolution consumes.
 */
DiffGemmPlan encodeTemporalDiffRegion(const Int8Tensor &current,
                                      const Int8Tensor &previous,
                                      int64_t offset, int64_t rows,
                                      int64_t cols);

/**
 * Like encodeTemporalDiff but encodes the *transpose* of the difference:
 * for operands [r, c] the plan describes (current - previous)^T with
 * rows = c, cols = r. Used when the sparse operand is the right-hand
 * factor of a product (e.g. P_t * dV computed as (dV^T P_t^T)^T).
 */
DiffGemmPlan encodeTemporalDiffTransposed(const Int8Tensor &current,
                                          const Int8Tensor &previous);

/**
 * encodeTemporalDiffTransposed over a rectangular region of flat
 * storage: the logical operand is rows x cols elements starting at
 * `offset` in both tensors' flat data, and the plan describes its
 * transpose (plan rows = cols, plan cols = rows). Used by the batched
 * attention path, where each request's P/V operand is one row slab of
 * a stacked code matrix.
 */
DiffGemmPlan encodeTemporalDiffRegionTransposed(const Int8Tensor &current,
                                                const Int8Tensor &previous,
                                                int64_t offset,
                                                int64_t rows, int64_t cols);

/**
 * One producer feeding a multi-producer requant-delta fold: its
 * resident int32 accumulator and the combined dequantization scale
 * (activation scale x weight scale) that maps accumulator units to
 * real values.
 */
struct RequantSource
{
    const int32_t *acc = nullptr; //!< current-step accumulator (flat)
    float scale = 1.0f;           //!< combined dequantization scale
};

/**
 * Multi-producer requant-delta for an `Add` junction region: combine N
 * producers' accumulators into one consumable code-diff stream at the
 * consumer's quantization point. For every element i
 *
 *   codes[i] = Q(sum_s acc_s[i] * scale_s)
 *   d16[i]   = codes[i] - prev_codes[i]
 *
 * with Q the symmetric int8 quantizer at `qp` and the sum taken in
 * left-associated float order — element for element exactly the codes
 * the consumer would have produced by quantizing the dequantized,
 * float-added producer outputs (the scale-alignment argument in
 * docs/graph_runtime.md). `prev_codes` is the same fold's emission of
 * the previous step (the junction's resident code state), so the
 * difference equals the subtraction the consumer would have performed
 * against stored input codes, without a float recomputation of the
 * previous step; pass null while unprimed (codes only). This file is
 * compiled with FP contraction off so every product rounds like the
 * dense path's per-tensor stores.
 */
void requantSumDelta(std::span<const RequantSource> srcs, int64_t n,
                     const QuantParams &qp, const int8_t *prev_codes,
                     int8_t *codes, int16_t *d16);

/**
 * requantSumDelta through nearest-neighbour 2x upsampling: sources are
 * [c, h, w] maps, the emitted region is [c, 2h, 2w] with output
 * (y, x) reading source (y/2, x/2). Each source element is requantized
 * once and written to its four output positions — bitwise identical to
 * upsampling the float sum first (the replicated values are equal).
 */
void requantUpsample2xSumDelta(std::span<const RequantSource> srcs,
                               int64_t c, int64_t h, int64_t w,
                               const QuantParams &qp,
                               const int8_t *prev_codes, int8_t *codes,
                               int16_t *d16);

/**
 * requantSumDelta through 2x2 average pooling: sources are [c, h, w]
 * maps (h, w even), the emitted region is [c, h/2, w/2]. Per output
 * element the four taps are summed across sources first (the Add
 * junction), then averaged in the dense path's tap order
 * ((t00 + t01 + t10 + t11) * 0.25f), then quantized.
 */
void requantAvgPool2xSumDelta(std::span<const RequantSource> srcs,
                              int64_t c, int64_t h, int64_t w,
                              const QuantParams &qp,
                              const int8_t *prev_codes, int8_t *codes,
                              int16_t *d16);

} // namespace ditto

#endif // DITTO_QUANT_ENCODER_H
