/**
 * @file
 * Quantization support for the Ditto reproduction.
 *
 * The paper evaluates Ditto on A8W8 models quantized either with
 * Q-Diffusion-style calibrated scales (UNet models) or simple dynamic
 * quantization (diffusion transformers). Both reduce to symmetric
 * uniform quantization with a per-tensor scale; what differs is how the
 * scale is chosen. This module provides:
 *
 *  - QuantParams / quantize / dequantize primitives,
 *  - dynamic per-tensor scale selection (max-abs),
 *  - static calibration over a set of sample tensors,
 *  - time-step-clustered calibration (the Q-Diffusion / TDQ idea of
 *    grouping time steps with similar activation ranges and assigning a
 *    scale per cluster).
 */
#ifndef DITTO_QUANT_QUANTIZER_H
#define DITTO_QUANT_QUANTIZER_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ditto {

/** Symmetric uniform quantization parameters for one tensor. */
struct QuantParams
{
    float scale = 1.0f;  //!< real value represented by one integer step
    int bits = 8;        //!< signed two's-complement bit-width

    /** Largest representable code, e.g. 127 for 8 bits. */
    int64_t
    maxCode() const
    {
        return (int64_t{1} << (bits - 1)) - 1;
    }

    /** Smallest representable code, e.g. -127 (symmetric, not -128). */
    int64_t minCode() const { return -maxCode(); }
};

/** Quantize a float tensor to int8 codes with the given parameters. */
Int8Tensor quantize(const FloatTensor &x, const QuantParams &params);

/** Dequantize int8 codes back to floats. */
FloatTensor dequantize(const Int8Tensor &q, const QuantParams &params);

/** Dequantize int32 accumulator values with a combined scale. */
FloatTensor dequantizeAccum(const Int32Tensor &acc, float combined_scale);

/**
 * Choose a symmetric dynamic scale from the max-abs of the tensor.
 *
 * This is the "simple dynamic quantization" the paper applies to DiT and
 * Latte: scale = maxabs / maxCode, re-derived per tensor at run time.
 */
QuantParams chooseDynamicScale(const FloatTensor &x, int bits = 8);

/**
 * Choose a static scale from calibration samples (max of max-abs).
 *
 * Models what an offline Q-Diffusion calibration pass produces when all
 * time steps share one scale; used to demonstrate why static scales fail
 * for drifting activation ranges.
 */
QuantParams chooseStaticScale(const std::vector<FloatTensor> &samples,
                              int bits = 8);

/**
 * Time-step-clustered calibration (Q-Diffusion / TDQ style).
 *
 * Groups time steps into `clusters` contiguous clusters by value range
 * (1-D k-means on log-range with contiguity constraint relaxed to plain
 * k-means; ranges drift monotonically in practice so clusters come out
 * contiguous) and assigns one scale per cluster.
 */
class TimestepClusteredQuantizer
{
  public:
    /**
     * Calibrate from per-step max-abs statistics.
     *
     * @param per_step_maxabs max-abs of the activation at each time step.
     * @param clusters number of scale clusters.
     * @param bits quantization bit-width.
     */
    TimestepClusteredQuantizer(const std::vector<float> &per_step_maxabs,
                               int clusters, int bits = 8);

    /** Quantization parameters to use at time step `step`. */
    const QuantParams &paramsForStep(int step) const;

    /** Cluster index assigned to `step`. */
    int clusterOfStep(int step) const;

    int numClusters() const { return static_cast<int>(scales_.size()); }
    int numSteps() const { return static_cast<int>(assignment_.size()); }

  private:
    std::vector<QuantParams> scales_;  //!< one per cluster
    std::vector<int> assignment_;      //!< step -> cluster
};

/**
 * Worst-case quantization error of representing `samples` with `params`
 * (max over elements of |x - dequant(quant(x))|). Used in tests to show
 * clustered scales dominate a single static scale on drifting ranges.
 */
float maxQuantError(const FloatTensor &x, const QuantParams &params);

} // namespace ditto

#endif // DITTO_QUANT_QUANTIZER_H
