/**
 * @file
 * Software Encoding Unit implementation.
 *
 * Two row-parallel passes joined by a serial prefix scan:
 *  1. classify every panel (count nonzero entries, detect wide values)
 *     and tally element classes;
 *  2. after reserving exact stream space per row, emit offsets, packed
 *     nibbles and fallback values.
 * Stream layout depends only on the data, never on the thread count.
 */
#include "quant/encoder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"

namespace ditto {

namespace {

/** Signed 4-bit lane bounds (classifyValue with low_bits = 4). */
constexpr int16_t kLow4Min = -8;
constexpr int16_t kLow4Max = 7;

/** Build a plan for a logical [rows, cols] operand read through at(). */
template <typename At>
DiffGemmPlan
encodeImpl(int64_t rows, int64_t cols, const At &at)
{
    DITTO_ASSERT(rows > 0 && cols > 0, "encoder needs a non-empty operand");
    DiffGemmPlan plan;
    plan.rows = rows;
    plan.cols = cols;
    plan.panelsPerRow = (cols + kDiffPanelK - 1) / kDiffPanelK;
    plan.panels.assign(static_cast<size_t>(rows * plan.panelsPerRow),
                       PanelRef{});

    std::vector<int64_t> rowLow4(static_cast<size_t>(rows), 0);
    std::vector<int64_t> rowFull8(static_cast<size_t>(rows), 0);
    std::vector<int64_t> rowZeroE(static_cast<size_t>(rows), 0);

    parallelFor(0, rows, [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
            int64_t l4 = 0, f8 = 0, ze = 0;
            for (int64_t pi = 0; pi < plan.panelsPerRow; ++pi) {
                const int64_t k0 = pi * kDiffPanelK;
                const int64_t kw = std::min(kDiffPanelK, cols - k0);
                // Branchless counting with narrow accumulators so the
                // classification sweep vectorizes; lane dispatch is
                // per element (kw <= 64 cannot overflow an int).
                int nnz = 0;
                int wide = 0;
                for (int64_t kk = 0; kk < kw; ++kk) {
                    const int16_t v = at(r, k0 + kk);
                    nnz += v != 0;
                    wide += (v < kLow4Min) | (v > kLow4Max);
                }
                ze += kw - nnz;
                l4 += nnz - wide;
                f8 += wide;
                PanelRef &p =
                    plan.panels[static_cast<size_t>(r * plan.panelsPerRow +
                                                    pi)];
                p.low4Count = static_cast<uint16_t>(nnz - wide);
                p.full8Count = static_cast<uint16_t>(wide);
            }
            rowLow4[static_cast<size_t>(r)] = l4;
            rowFull8[static_cast<size_t>(r)] = f8;
            rowZeroE[static_cast<size_t>(r)] = ze;
        }
    });

    // Serial prefix scan. Each row's stream region is padded by one
    // dead slot (the branch-free writer in pass 2 always stores to the
    // current position and conditionally advances, so its final stray
    // store must not touch the next row's first entry) and Low4
    // regions start at an even index so two rows never pack nibbles
    // into the same byte. Rows can then be filled concurrently.
    std::vector<int64_t> low4Begin(static_cast<size_t>(rows), 0);
    std::vector<int64_t> full8Begin(static_cast<size_t>(rows), 0);
    int64_t l4pos = 0, f8pos = 0;
    for (int64_t r = 0; r < rows; ++r) {
        low4Begin[static_cast<size_t>(r)] = l4pos;
        l4pos += rowLow4[static_cast<size_t>(r)] + 1;
        l4pos += l4pos & 1;
        full8Begin[static_cast<size_t>(r)] = f8pos;
        f8pos += rowFull8[static_cast<size_t>(r)] + 1;
        plan.zeroElems += rowZeroE[static_cast<size_t>(r)];
        plan.low4Elems += rowLow4[static_cast<size_t>(r)];
        plan.full8Elems += rowFull8[static_cast<size_t>(r)];
    }
    DITTO_ASSERT(l4pos <= std::numeric_limits<int32_t>::max() &&
                 f8pos <= std::numeric_limits<int32_t>::max(),
                 "encoding plan entry stream exceeds 2^31 entries");
    plan.low4Offsets.assign(static_cast<size_t>(l4pos), 0);
    plan.low4Nibbles.assign(static_cast<size_t>((l4pos + 1) / 2), 0);
    plan.full8Offsets.assign(static_cast<size_t>(f8pos), 0);
    plan.full8Values.assign(static_cast<size_t>(f8pos), 0);

    parallelFor(0, rows, [&](int64_t lo, int64_t hi) {
        // Branch-free two-stage extraction per panel: compress the
        // nonzero elements into stack scratch (always store,
        // conditionally advance), then split the surviving entries —
        // only nnz of them — across the two lane streams the same way.
        uint8_t toff[kDiffPanelK];
        int16_t tval[kDiffPanelK];
        for (int64_t r = lo; r < hi; ++r) {
            int64_t l4 = low4Begin[static_cast<size_t>(r)];
            int64_t f8 = full8Begin[static_cast<size_t>(r)];
            for (int64_t pi = 0; pi < plan.panelsPerRow; ++pi) {
                PanelRef &p =
                    plan.panels[static_cast<size_t>(r * plan.panelsPerRow +
                                                    pi)];
                p.low4Begin = static_cast<int32_t>(l4);
                p.full8Begin = static_cast<int32_t>(f8);
                if (p.empty())
                    continue;
                const int64_t k0 = pi * kDiffPanelK;
                const int64_t kw = std::min(kDiffPanelK, cols - k0);
                int64_t c = 0;
                for (int64_t kk = 0; kk < kw; ++kk) {
                    const int16_t v = at(r, k0 + kk);
                    toff[c] = static_cast<uint8_t>(kk);
                    tval[c] = v;
                    c += v != 0;
                }
                for (int64_t e = 0; e < c; ++e) {
                    const int16_t v = tval[e];
                    const bool wide = v < kLow4Min || v > kLow4Max;
                    plan.low4Offsets[static_cast<size_t>(l4)] = toff[e];
                    const uint8_t nib = static_cast<uint8_t>(v) & 0x0F;
                    uint8_t &byte =
                        plan.low4Nibbles[static_cast<size_t>(l4 >> 1)];
                    byte = (l4 & 1)
                               ? static_cast<uint8_t>(
                                     (byte & 0x0F) |
                                     static_cast<uint8_t>(nib << 4))
                               : nib;
                    l4 += !wide;
                    plan.full8Offsets[static_cast<size_t>(f8)] = toff[e];
                    plan.full8Values[static_cast<size_t>(f8)] = v;
                    f8 += wide;
                }
            }
        }
    });
    return plan;
}

} // namespace

DiffClassCounts
countTemporalDiffClasses(const Int8Tensor &current,
                         const Int8Tensor &previous, int64_t offset,
                         int64_t count)
{
    DITTO_ASSERT(current.shape() == previous.shape(),
                 "temporal diff operand shape mismatch");
    DITTO_ASSERT(offset >= 0 && offset + count <= current.numel(),
                 "countTemporalDiffClasses region out of range");
    const int8_t *cur = current.data().data() + offset;
    const int8_t *prev = previous.data().data() + offset;
    // Chunked branchless counting; int accumulators per chunk so the
    // sweep vectorizes like the encoder's first pass.
    DiffClassCounts c;
    constexpr int64_t kChunk = 1 << 14;
    for (int64_t base = 0; base < count; base += kChunk) {
        const int64_t end = std::min(count, base + kChunk);
        int nnz = 0;
        int wide = 0;
        for (int64_t i = base; i < end; ++i) {
            const int16_t v =
                static_cast<int16_t>(static_cast<int16_t>(cur[i]) -
                                     static_cast<int16_t>(prev[i]));
            nnz += v != 0;
            wide += (v < kLow4Min) | (v > kLow4Max);
        }
        c.zero += (end - base) - nnz;
        c.low4 += nnz - wide;
        c.full8 += wide;
    }
    return c;
}

DiffClassCounts
countTemporalDiffClasses(const Int8Tensor &current,
                         const Int8Tensor &previous)
{
    return countTemporalDiffClasses(current, previous, 0, current.numel());
}

DiffClassCounts
countDiffClasses(const Int16Tensor &diff, int64_t offset, int64_t count)
{
    DITTO_ASSERT(offset >= 0 && offset + count <= diff.numel(),
                 "countDiffClasses region out of range");
    const int16_t *d = diff.data().data() + offset;
    DiffClassCounts c;
    constexpr int64_t kChunk = 1 << 14;
    for (int64_t base = 0; base < count; base += kChunk) {
        const int64_t end = std::min(count, base + kChunk);
        int nnz = 0;
        int wide = 0;
        for (int64_t i = base; i < end; ++i) {
            const int16_t v = d[i];
            nnz += v != 0;
            wide += (v < kLow4Min) | (v > kLow4Max);
        }
        c.zero += (end - base) - nnz;
        c.low4 += nnz - wide;
        c.full8 += wide;
    }
    return c;
}

DiffClassCounts
countDiffClasses(const Int16Tensor &diff)
{
    return countDiffClasses(diff, 0, diff.numel());
}

DiffGemmPlan
encodeDiff(const Int16Tensor &diff)
{
    DITTO_ASSERT(diff.shape().rank() == 2,
                 "encodeDiff expects a difference matrix");
    const int64_t cols = diff.shape()[1];
    const int16_t *d = diff.data().data();
    return encodeImpl(diff.shape()[0], cols,
                      [d, cols](int64_t r, int64_t c) {
                          return d[r * cols + c];
                      });
}

DiffGemmPlan
encodeDiffRegion(const Int16Tensor &diff, int64_t offset, int64_t rows,
                 int64_t cols)
{
    DITTO_ASSERT(offset >= 0 && offset + rows * cols <= diff.numel(),
                 "encodeDiffRegion region out of range");
    const int16_t *d = diff.data().data() + offset;
    return encodeImpl(rows, cols, [d, cols](int64_t r, int64_t c) {
        return d[r * cols + c];
    });
}

DiffGemmPlan
encodeTemporalDiff(const Int8Tensor &current, const Int8Tensor &previous)
{
    DITTO_ASSERT(current.shape() == previous.shape(),
                 "temporal diff operand shape mismatch");
    DITTO_ASSERT(current.shape().rank() == 2,
                 "encodeTemporalDiff expects code matrices");
    const int64_t cols = current.shape()[1];
    const int8_t *cur = current.data().data();
    const int8_t *prev = previous.data().data();
    return encodeImpl(current.shape()[0], cols,
                      [cur, prev, cols](int64_t r, int64_t c) {
                          const int64_t i = r * cols + c;
                          return static_cast<int16_t>(
                              static_cast<int16_t>(cur[i]) -
                              static_cast<int16_t>(prev[i]));
                      });
}

DiffGemmPlan
encodeTemporalDiffRegion(const Int8Tensor &current,
                         const Int8Tensor &previous, int64_t offset,
                         int64_t rows, int64_t cols)
{
    DITTO_ASSERT(current.shape() == previous.shape(),
                 "temporal diff operand shape mismatch");
    DITTO_ASSERT(offset >= 0 && offset + rows * cols <= current.numel(),
                 "encodeTemporalDiffRegion region out of range");
    const int8_t *cur = current.data().data() + offset;
    const int8_t *prev = previous.data().data() + offset;
    return encodeImpl(rows, cols, [cur, prev, cols](int64_t r, int64_t c) {
        const int64_t i = r * cols + c;
        return static_cast<int16_t>(static_cast<int16_t>(cur[i]) -
                                    static_cast<int16_t>(prev[i]));
    });
}

DiffGemmPlan
encodeTemporalDiffRegionTransposed(const Int8Tensor &current,
                                   const Int8Tensor &previous,
                                   int64_t offset, int64_t rows,
                                   int64_t cols)
{
    DITTO_ASSERT(current.shape() == previous.shape(),
                 "temporal diff operand shape mismatch");
    DITTO_ASSERT(offset >= 0 && offset + rows * cols <= current.numel(),
                 "encodeTemporalDiffRegionTransposed region out of range");
    const int8_t *cur = current.data().data() + offset;
    const int8_t *prev = previous.data().data() + offset;
    // Plan rows index the *columns* of the region.
    return encodeImpl(cols, rows, [cur, prev, cols](int64_t r, int64_t c) {
        const int64_t i = c * cols + r;
        return static_cast<int16_t>(static_cast<int16_t>(cur[i]) -
                                    static_cast<int16_t>(prev[i]));
    });
}

DiffGemmPlan
encodeTemporalDiffTransposed(const Int8Tensor &current,
                             const Int8Tensor &previous)
{
    DITTO_ASSERT(current.shape() == previous.shape(),
                 "temporal diff operand shape mismatch");
    DITTO_ASSERT(current.shape().rank() == 2,
                 "encodeTemporalDiffTransposed expects code matrices");
    const int64_t src_cols = current.shape()[1];
    const int8_t *cur = current.data().data();
    const int8_t *prev = previous.data().data();
    // Plan rows index the *columns* of the operands.
    return encodeImpl(src_cols, current.shape()[0],
                      [cur, prev, src_cols](int64_t r, int64_t c) {
                          const int64_t i = c * src_cols + r;
                          return static_cast<int16_t>(
                              static_cast<int16_t>(cur[i]) -
                              static_cast<int16_t>(prev[i]));
                      });
}

namespace {

/**
 * The consumer's quantization point, unpacked once per region. The
 * rounding chain is exactly quantize()'s: nearbyint, clamp to the
 * symmetric code range, cast.
 */
struct RequantPoint
{
    float inv;
    float lo;
    float hi;

    explicit RequantPoint(const QuantParams &qp)
        : inv(1.0f / qp.scale),
          lo(static_cast<float>(qp.minCode())),
          hi(static_cast<float>(qp.maxCode()))
    {}

    int8_t
    operator()(float v) const
    {
        return static_cast<int8_t>(
            std::clamp(std::nearbyint(v * inv), lo, hi));
    }
};

/**
 * Left-associated scale-aligned sum over the sources at flat index i:
 * ((acc_0 * s_0 + acc_1 * s_1) + ...) with every product and sum
 * rounded to float (this file builds with FP contraction off), the
 * exact arithmetic of dequantizing each producer to a tensor and
 * float-adding them pairwise left to right.
 */
float
sumAt(std::span<const RequantSource> srcs, int64_t i)
{
    float v = 0.0f;
    for (size_t s = 0; s < srcs.size(); ++s) {
        const float t =
            static_cast<float>(srcs[s].acc[i]) * srcs[s].scale;
        v = s == 0 ? t : v + t;
    }
    return v;
}

int16_t
deltaOf(int8_t ct, int8_t cp)
{
    return static_cast<int16_t>(static_cast<int16_t>(ct) -
                                static_cast<int16_t>(cp));
}

} // namespace

void
requantSumDelta(std::span<const RequantSource> srcs, int64_t n,
                const QuantParams &qp, const int8_t *prev_codes,
                int8_t *codes, int16_t *d16)
{
    DITTO_ASSERT(!srcs.empty(), "requantSumDelta needs sources");
    const RequantPoint q(qp);
    for (int64_t i = 0; i < n; ++i) {
        const int8_t ct = q(sumAt(srcs, i));
        codes[i] = ct;
        if (prev_codes)
            d16[i] = deltaOf(ct, prev_codes[i]);
    }
}

void
requantUpsample2xSumDelta(std::span<const RequantSource> srcs, int64_t c,
                          int64_t h, int64_t w, const QuantParams &qp,
                          const int8_t *prev_codes, int8_t *codes,
                          int16_t *d16)
{
    DITTO_ASSERT(!srcs.empty(), "requantUpsample2xSumDelta needs sources");
    const RequantPoint q(qp);
    const int64_t ow = 2 * w;
    for (int64_t ci = 0; ci < c; ++ci) {
        for (int64_t y = 0; y < h; ++y) {
            const int64_t src_row = (ci * h + y) * w;
            const int64_t out_row = (ci * 2 * h + 2 * y) * ow;
            for (int64_t x = 0; x < w; ++x) {
                const int8_t ct = q(sumAt(srcs, src_row + x));
                const int64_t o = out_row + 2 * x;
                codes[o] = ct;
                codes[o + 1] = ct;
                codes[o + ow] = ct;
                codes[o + ow + 1] = ct;
                if (prev_codes) {
                    d16[o] = deltaOf(ct, prev_codes[o]);
                    d16[o + 1] = deltaOf(ct, prev_codes[o + 1]);
                    d16[o + ow] = deltaOf(ct, prev_codes[o + ow]);
                    d16[o + ow + 1] =
                        deltaOf(ct, prev_codes[o + ow + 1]);
                }
            }
        }
    }
}

void
requantAvgPool2xSumDelta(std::span<const RequantSource> srcs, int64_t c,
                         int64_t h, int64_t w, const QuantParams &qp,
                         const int8_t *prev_codes, int8_t *codes,
                         int16_t *d16)
{
    DITTO_ASSERT(!srcs.empty(), "requantAvgPool2xSumDelta needs sources");
    DITTO_ASSERT(h % 2 == 0 && w % 2 == 0,
                 "avg-pool region needs even spatial extents");
    const RequantPoint q(qp);
    const int64_t oh = h / 2;
    const int64_t ow = w / 2;
    for (int64_t ci = 0; ci < c; ++ci) {
        for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
                // Tap order and associativity of avgPool2xF on the
                // float sum.
                const int64_t base = (ci * h + 2 * y) * w + 2 * x;
                const float v =
                    (sumAt(srcs, base) + sumAt(srcs, base + 1) +
                     sumAt(srcs, base + w) + sumAt(srcs, base + w + 1)) *
                    0.25f;
                const int64_t o = (ci * oh + y) * ow + x;
                const int8_t ct = q(v);
                codes[o] = ct;
                if (prev_codes)
                    d16[o] = deltaOf(ct, prev_codes[o]);
            }
        }
    }
}

} // namespace ditto
