/**
 * @file
 * Minimal fixed-width table printer shared by the bench binaries.
 */
#ifndef DITTO_SIM_TABLE_PRINTER_H
#define DITTO_SIM_TABLE_PRINTER_H

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ditto {

/** Accumulates rows of strings and prints an aligned ASCII table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append one row; cells convert via operator<<. */
    template <typename... Cells>
    void
    addRow(const Cells &...cells)
    {
        std::vector<std::string> row;
        (row.push_back(toCell(cells)), ...);
        rows_.push_back(std::move(row));
    }

    /** Print to stdout with a separator under the header. */
    void
    print() const
    {
        std::vector<size_t> width(header_.size(), 0);
        for (size_t i = 0; i < header_.size(); ++i)
            width[i] = header_[i].size();
        for (const auto &row : rows_)
            for (size_t i = 0; i < row.size() && i < width.size(); ++i)
                width[i] = std::max(width[i], row[i].size());
        printRow(header_, width);
        std::string sep;
        for (size_t i = 0; i < width.size(); ++i)
            sep += std::string(width[i], '-') + (i + 1 < width.size()
                                                     ? "-+-" : "");
        std::cout << sep << "\n";
        for (const auto &row : rows_)
            printRow(row, width);
    }

    /** Format a double with the given precision. */
    static std::string
    num(double v, int precision = 3)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        return os.str();
    }

    /** Format a fraction as a percentage string. */
    static std::string
    pct(double v, int precision = 1)
    {
        return num(v * 100.0, precision) + "%";
    }

  private:
    template <typename T>
    static std::string
    toCell(const T &v)
    {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(v);
        } else {
            std::ostringstream os;
            os << v;
            return os.str();
        }
    }

    static void
    printRow(const std::vector<std::string> &row,
             const std::vector<size_t> &width)
    {
        for (size_t i = 0; i < row.size(); ++i) {
            std::cout << std::left
                      << std::setw(static_cast<int>(width[i])) << row[i];
            if (i + 1 < row.size())
                std::cout << " | ";
        }
        std::cout << "\n";
    }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ditto

#endif // DITTO_SIM_TABLE_PRINTER_H
