/**
 * @file
 * Experiment driver implementations.
 */
#include "sim/experiments.h"

#include <cmath>

#include "common/logging.h"
#include "core/bops.h"
#include "core/mini_unet.h"
#include "hw/cost_model.h"
#include "hw/energy.h"
#include "hw/gpu_model.h"
#include "model/graph.h"
#include "stats/similarity.h"
#include "trace/provider.h"

namespace ditto {

namespace {

/** Average trace statistics over compute layers and steps. */
struct ModelAverages
{
    double cosT = 0.0, cosS = 0.0;
    double actRange = 0.0, diffRange = 0.0;
    BitFractions act, spat, temp;
};

/**
 * Element-weighted averages for the analysis figures: the paper
 * measures "all data elements in diffusion models", so wide layers
 * count proportionally more.
 */
ModelAverages
averageStats(ModelId id, const ModelGraph &graph,
             const TraceProvider &trace)
{
    ModelAverages avg;
    double weight_sum = 0.0;
    double range_count = 0.0;
    for (const Layer &l : graph.layers()) {
        if (!l.isCompute())
            continue;
        const double w =
            static_cast<double>(l.inputElems + l.inputElems2);
        for (int t = 0; t < trace.steps(); ++t) {
            const LayerStepStats &st = trace.stats(l.id, t);
            avg.cosT += w * st.cosT;
            avg.cosS += w * st.cosS;
            avg.act.zero += w * st.act.zero;
            avg.act.low4 += w * st.act.low4;
            avg.act.full8 += w * st.act.full8;
            avg.spat.zero += w * st.spat.zero;
            avg.spat.low4 += w * st.spat.low4;
            avg.spat.full8 += w * st.spat.full8;
            avg.temp.zero += w * st.temp.zero;
            avg.temp.low4 += w * st.temp.low4;
            avg.temp.full8 += w * st.temp.full8;
            weight_sum += w;
            // Value ranges average per layer like the Fig. 4b bars
            // (unweighted over layers and steps).
            avg.actRange += st.actRange;
            avg.diffRange += st.diffRange;
            range_count += 1.0;
        }
    }
    DITTO_ASSERT(weight_sum > 0.0, "no compute layers in " << graph.name());
    const double inv = 1.0 / weight_sum;
    avg.cosT *= inv;
    avg.cosS *= inv;
    avg.act.zero *= inv;
    avg.act.low4 *= inv;
    avg.act.full8 *= inv;
    avg.spat.zero *= inv;
    avg.spat.low4 *= inv;
    avg.spat.full8 *= inv;
    avg.temp.zero *= inv;
    avg.temp.low4 *= inv;
    avg.temp.full8 *= inv;
    avg.actRange /= range_count;
    avg.diffRange /= range_count;
    (void)id;
    return avg;
}

/** Relative BOPs of one model in one mode (diff steps, steady state). */
double
relativeBops(const ModelGraph &graph, const TraceProvider &trace,
             ExecMode mode)
{
    double act_bops = 0.0;
    double mode_bops = 0.0;
    for (const Layer &l : graph.layers()) {
        if (!l.isCompute())
            continue;
        for (int t = 1; t < trace.steps(); ++t) {
            const LayerStepStats &st = trace.stats(l.id, t);
            act_bops += layerBops(l, ExecMode::Act, st.temp);
            const BitFractions &f =
                mode == ExecMode::SpatialDiff ? st.spat : st.temp;
            mode_bops += layerBops(l, mode, f);
        }
    }
    return mode_bops / act_bops;
}

} // namespace

std::vector<ModelZooRow>
runTable1()
{
    std::vector<ModelZooRow> rows;
    for (ModelId id : allModels()) {
        const ModelInfo &spec = modelInfo(id);
        const ModelGraph graph = buildModel(id);
        ModelZooRow r;
        r.abbr = spec.abbr;
        r.model = spec.model;
        r.dataset = spec.dataset;
        r.sampler = spec.sampler.name + " " +
                    std::to_string(spec.sampler.steps) + " step";
        r.steps = spec.sampler.totalSteps();
        r.layers = graph.numComputeLayers();
        r.gmacsPerStep =
            static_cast<double>(graph.totalMacs()) / 1.0e9;
        r.weightsMB =
            static_cast<double>(graph.totalWeightElems()) / 1.0e6;
        rows.push_back(std::move(r));
    }
    return rows;
}

std::vector<SimilarityRow>
runFig3Similarity()
{
    std::vector<SimilarityRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        const ModelAverages avg = averageStats(id, graph, trace);
        rows.push_back({modelAbbr(id), avg.cosT, avg.cosS});
    }
    return rows;
}

std::vector<ValueRangeRow>
runFig4ValueRange()
{
    std::vector<ValueRangeRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        const ModelAverages avg = averageStats(id, graph, trace);
        rows.push_back({modelAbbr(id), avg.actRange, avg.diffRange,
                        avg.actRange / avg.diffRange});
    }
    return rows;
}

std::vector<LayerRangeSeries>
runFig4LayerDetail()
{
    const ModelGraph graph = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, graph);
    std::vector<LayerRangeSeries> out;
    for (const char *name : {"conv-in", "up.0.0.skip"}) {
        const int id = graph.findLayer(name);
        DITTO_ASSERT(id >= 0, "SDM layer not found: " << name);
        LayerRangeSeries s;
        s.layer = name;
        for (int t = 0; t < trace.steps(); ++t) {
            const LayerStepStats &st = trace.stats(id, t);
            s.actRange.push_back(st.actRange);
            s.diffRange.push_back(st.diffRange);
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<BitwidthRow>
runFig5Bitwidth()
{
    std::vector<BitwidthRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        const ModelAverages avg = averageStats(id, graph, trace);
        rows.push_back({modelAbbr(id), avg.act, avg.spat, avg.temp});
    }
    return rows;
}

std::vector<BopsRow>
runFig6Bops()
{
    std::vector<BopsRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        BopsRow r;
        r.model = modelAbbr(id);
        r.spatial = relativeBops(graph, trace, ExecMode::SpatialDiff);
        r.temporal = relativeBops(graph, trace, ExecMode::TemporalDiff);
        rows.push_back(std::move(r));
    }
    return rows;
}

std::vector<BopsSeries>
runFig6StepDetail()
{
    const ModelGraph graph = buildModel(ModelId::SDM);
    const TraceProvider trace(ModelId::SDM, graph);
    std::vector<BopsSeries> out;
    for (const char *name : {"conv-in", "up.0.0.skip"}) {
        const int id = graph.findLayer(name);
        DITTO_ASSERT(id >= 0, "SDM layer not found: " << name);
        const Layer &l = graph.layer(id);
        BopsSeries s;
        s.layer = name;
        for (int t = 1; t < trace.steps(); ++t) {
            const LayerStepStats &st = trace.stats(id, t);
            s.relativeBops.push_back(
                layerBops(l, ExecMode::TemporalDiff, st.temp) /
                layerBops(l, ExecMode::Act, st.temp));
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<MemAccessRow>
runFig8MemAccess()
{
    std::vector<MemAccessRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        double naive = 0.0;
        double act = 0.0;
        for (const Layer &l : graph.layers()) {
            if (!l.isCompute())
                continue;
            naive += naiveDiffBytes(l);
            act += actBytes(l);
        }
        rows.push_back({modelAbbr(id), naive / act});
    }
    return rows;
}

AccuracyProxy
runTable2Accuracy()
{
    AccuracyProxy proxy;
    const MiniUnet net((MiniUnetConfig()));
    const RolloutResult fp = net.rollout(RunMode::Fp32);
    const RolloutResult qd = net.rollout(RunMode::QuantDirect);
    const RolloutResult dt = net.rollout(RunMode::QuantDitto);
    proxy.bitExact = qd.finalImage == dt.finalImage;
    proxy.sqnrQuantDb = sqnrDb(fp.finalImage, qd.finalImage);
    proxy.sqnrDittoDb = sqnrDb(fp.finalImage, dt.finalImage);
    // Paper Table II, recorded for side-by-side reporting.
    proxy.paperRows = {
        {"DDPM", "FID / IS", "4.143 / 9.084", "4.406 / 9.288"},
        {"BED", "FID / IS", "2.962 / 2.227", "5.897 / 2.338"},
        {"CHUR", "FID / IS", "4.100 / 2.715", "3.743 / 2.714"},
        {"IMG", "FID / IS", "14.332 / 368.302", "14.156 / 358.580"},
        {"SDM", "FID / IS / CS", "20.547 / 37.345 / 0.310",
         "18.834 / 38.135 / 0.309"},
        {"DiT", "FID / IS", "18.659 / 482.372", "17.178 / 475.694"},
        {"Latte", "IS", "70.589", "71.254"},
    };
    return proxy;
}

std::vector<HwConfigRow>
runTable3HwConfig()
{
    std::vector<HwConfigRow> rows;
    for (HwDesign d : allDesigns()) {
        const HwConfig c = makeConfig(d);
        HwConfigRow r;
        r.hardware = c.name;
        r.pes = c.peDescription;
        r.lanes = c.lanes4 + c.lanes8;
        r.powerW = c.powerW;
        r.sramMB = c.sramMB;
        r.areaMm2 = c.areaMm2;
        r.estCoreAreaMm2 =
            estimateCoreAreaMm2(c.lanes4, c.lanes8, c.lanes4 > 0);
        rows.push_back(std::move(r));
    }
    return rows;
}

std::vector<ComparisonRow>
runFig13Comparison()
{
    std::vector<ComparisonRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        const RunResult itc =
            simulate(makeConfig(HwDesign::ITC), graph, trace);
        for (HwDesign d : allDesigns()) {
            const RunResult run =
                d == HwDesign::ITC
                    ? itc : simulate(makeConfig(d), graph, trace);
            ComparisonRow r;
            r.model = modelAbbr(id);
            r.hardware = designName(d);
            r.speedup = itc.totalCycles / run.totalCycles;
            r.relativeEnergy =
                run.energy.total() / itc.energy.total();
            r.relativeMemAccess = run.dramBytes / itc.dramBytes;
            r.energy = run.energy;
            r.run = run;
            rows.push_back(std::move(r));
        }
    }
    return rows;
}

std::vector<GpuRow>
runFig13Gpu()
{
    std::vector<GpuRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        const RunResult itc =
            simulate(makeConfig(HwDesign::ITC), graph, trace);
        const GpuResult gpu =
            simulateGpu(graph, modelInfo(id).sampler.totalSteps());
        rows.push_back({modelAbbr(id), itc.timeMs / gpu.timeMs,
                        gpu.energyJ / itc.totalEnergyJ()});
    }
    return rows;
}

const std::vector<std::string> &
fig15Variants()
{
    static const std::vector<std::string> kVariants = {
        "Org. Cam-D",
        "Org. Cam-D & Attn. Diff.",
        "Org. Cam-D & Attn. Diff. & Defo",
        "Org. Cam-D & Attn. Diff. & Defo+",
        "Ditto",
        "Ditto & Sign-mask",
        "Ditto+",
        "Ditto+ & Sign-mask",
    };
    return kVariants;
}

std::vector<TechniqueRow>
runFig15Techniques()
{
    auto make_variant = [](const std::string &v) {
        if (v == "Org. Cam-D") {
            HwConfig c = makeConfig(HwDesign::CambriconD);
            c.attnDiff = false;
            c.name = v;
            return c;
        }
        if (v == "Org. Cam-D & Attn. Diff.") {
            HwConfig c = makeConfig(HwDesign::CambriconD);
            c.name = v;
            return c;
        }
        if (v == "Org. Cam-D & Attn. Diff. & Defo") {
            HwConfig c = makeConfig(HwDesign::CambriconD);
            c.policy = FlowPolicy::Defo;
            c.name = v;
            return c;
        }
        if (v == "Org. Cam-D & Attn. Diff. & Defo+") {
            HwConfig c = makeConfig(HwDesign::CambriconD);
            c.policy = FlowPolicy::DefoPlus;
            c.spatialMode = true;
            c.name = v;
            return c;
        }
        if (v == "Ditto")
            return makeConfig(HwDesign::Ditto);
        if (v == "Ditto & Sign-mask") {
            HwConfig c = makeConfig(HwDesign::Ditto);
            c.signMask = true;
            c.name = v;
            return c;
        }
        if (v == "Ditto+")
            return makeConfig(HwDesign::DittoPlus);
        if (v == "Ditto+ & Sign-mask") {
            HwConfig c = makeConfig(HwDesign::DittoPlus);
            c.signMask = true;
            c.name = v;
            return c;
        }
        DITTO_FATAL("unknown Fig. 15 variant '" << v << "'");
    };

    std::vector<TechniqueRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        double base_cycles = 0.0;
        for (const std::string &v : fig15Variants()) {
            const RunResult run =
                simulate(make_variant(v), graph, trace);
            if (v == "Org. Cam-D")
                base_cycles = run.totalCycles;
            rows.push_back(
                {modelAbbr(id), v, base_cycles / run.totalCycles});
        }
    }
    return rows;
}

const std::vector<std::string> &
fig16Variants()
{
    static const std::vector<std::string> kVariants = {
        "DB", "DS", "DB&DS", "DB&DS&Attn", "Ditto", "Ditto+",
    };
    return kVariants;
}

std::vector<AblationRow>
runFig16Ablation()
{
    std::vector<AblationRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        const RunResult itc =
            simulate(makeConfig(HwDesign::ITC), graph, trace);
        for (const std::string &v : fig16Variants()) {
            const RunResult run =
                simulate(makeAblationConfig(v), graph, trace);
            AblationRow r;
            r.model = modelAbbr(id);
            r.variant = v;
            r.computeCycles =
                (run.computeCycles + run.vectorCycles) /
                itc.totalCycles;
            r.stallCycles = run.memStallCycles / itc.totalCycles;
            rows.push_back(std::move(r));
        }
    }
    return rows;
}

std::vector<DefoRow>
runFig17Defo()
{
    std::vector<DefoRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        for (HwDesign d : {HwDesign::Ditto, HwDesign::DittoPlus}) {
            const RunResult run = simulate(makeConfig(d), graph, trace);
            DefoRow r;
            r.model = modelAbbr(id);
            r.variant = d == HwDesign::Ditto ? "Defo" : "Defo+";
            r.changedFrac = run.computeLayers > 0
                ? static_cast<double>(run.revertedLayers) /
                      run.computeLayers
                : 0.0;
            r.accuracy = run.defoAccuracy;
            rows.push_back(std::move(r));
        }
    }
    return rows;
}

std::vector<IdealRow>
runFig18Ideal()
{
    std::vector<IdealRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        const TraceProvider trace(id, graph);
        const RunResult itc =
            simulate(makeConfig(HwDesign::ITC), graph, trace);
        HwConfig ideal = makeConfig(HwDesign::Ditto);
        ideal.policy = FlowPolicy::Ideal;
        ideal.name = "Ideal-Ditto";
        HwConfig ideal_plus = makeConfig(HwDesign::DittoPlus);
        ideal_plus.policy = FlowPolicy::IdealPlus;
        ideal_plus.name = "Ideal-Ditto+";
        IdealRow r;
        r.model = modelAbbr(id);
        r.ditto = itc.totalCycles /
                  simulate(makeConfig(HwDesign::Ditto), graph, trace)
                      .totalCycles;
        r.idealDitto =
            itc.totalCycles / simulate(ideal, graph, trace).totalCycles;
        r.dittoPlus =
            itc.totalCycles /
            simulate(makeConfig(HwDesign::DittoPlus), graph, trace)
                .totalCycles;
        r.idealDittoPlus =
            itc.totalCycles /
            simulate(ideal_plus, graph, trace).totalCycles;
        rows.push_back(std::move(r));
    }
    return rows;
}

std::vector<DynamicRow>
runFig19Dynamic()
{
    std::vector<DynamicRow> rows;
    for (ModelId id : allModels()) {
        const ModelGraph graph = buildModel(id);
        TraceOptions opts;
        opts.driftSimilarity = true;
        const TraceProvider trace(id, graph, opts);
        const RunResult itc =
            simulate(makeConfig(HwDesign::ITC), graph, trace);
        const RunResult ditto =
            simulate(makeConfig(HwDesign::Ditto), graph, trace);
        HwConfig dyn = makeConfig(HwDesign::Ditto);
        dyn.policy = FlowPolicy::DynamicDefo;
        dyn.name = "Dynamic-Ditto";
        const RunResult dynamic = simulate(dyn, graph, trace);
        HwConfig ideal = makeConfig(HwDesign::Ditto);
        ideal.policy = FlowPolicy::Ideal;
        ideal.name = "Ideal-Ditto";
        const RunResult oracle = simulate(ideal, graph, trace);
        DynamicRow r;
        r.model = modelAbbr(id);
        r.ditto = itc.totalCycles / ditto.totalCycles;
        r.dynamicDitto = itc.totalCycles / dynamic.totalCycles;
        r.idealDitto = itc.totalCycles / oracle.totalCycles;
        r.defoAccuracy = ditto.defoAccuracy;
        rows.push_back(std::move(r));
    }
    return rows;
}

} // namespace ditto
