/**
 * @file
 * Experiment drivers: one function per table/figure of the paper's
 * evaluation. Each returns plain row structs; the bench binaries print
 * them and the test suite asserts the headline bands on them.
 */
#ifndef DITTO_SIM_EXPERIMENTS_H
#define DITTO_SIM_EXPERIMENTS_H

#include <string>
#include <vector>

#include "hw/accelerator.h"
#include "hw/config.h"
#include "model/zoo.h"
#include "trace/mixture.h"

namespace ditto {

/** Table I: the model zoo. */
struct ModelZooRow
{
    std::string abbr, model, dataset, sampler;
    int steps = 0;
    int layers = 0;        //!< compute layers in the graph
    double gmacsPerStep = 0.0;
    double weightsMB = 0.0;
};
std::vector<ModelZooRow> runTable1();

/** Fig. 3b: temporal vs spatial cosine similarity per model. */
struct SimilarityRow
{
    std::string model;
    double temporalCosine = 0.0;
    double spatialCosine = 0.0;
};
std::vector<SimilarityRow> runFig3Similarity();

/** Fig. 4b: average value ranges of activations and temporal diffs. */
struct ValueRangeRow
{
    std::string model;
    double actRange = 0.0;
    double diffRange = 0.0;
    double ratio = 0.0;
};
std::vector<ValueRangeRow> runFig4ValueRange();

/** Fig. 4a: per-step ranges of two named SDM layers. */
struct LayerRangeSeries
{
    std::string layer;
    std::vector<double> actRange;   //!< per executed step
    std::vector<double> diffRange;
};
std::vector<LayerRangeSeries> runFig4LayerDetail();

/** Fig. 5: bit-width requirement per model and data kind. */
struct BitwidthRow
{
    std::string model;
    BitFractions act, spatial, temporal;
};
std::vector<BitwidthRow> runFig5Bitwidth();

/** Fig. 6a: relative BOPs of act / spatial / temporal processing. */
struct BopsRow
{
    std::string model;
    double act = 1.0;
    double spatial = 0.0;
    double temporal = 0.0;
};
std::vector<BopsRow> runFig6Bops();

/** Fig. 6b: per-step relative BOPs of two named SDM layers. */
struct BopsSeries
{
    std::string layer;
    std::vector<double> relativeBops;
};
std::vector<BopsSeries> runFig6StepDetail();

/** Fig. 8: algorithm-level relative memory accesses of naive diffs. */
struct MemAccessRow
{
    std::string model;
    double relativeAccesses = 0.0;
};
std::vector<MemAccessRow> runFig8MemAccess();

/** Table II proxy: numerical fidelity of the Ditto transform. */
struct AccuracyRow
{
    std::string model;
    std::string metric;      //!< paper metric names (FID/IS/CS)
    std::string paperFp32;   //!< paper-reported FP32 score
    std::string paperDitto;  //!< paper-reported Ditto score
};
struct AccuracyProxy
{
    bool bitExact = false;    //!< Ditto == direct quantized execution
    double sqnrQuantDb = 0.0; //!< quantized vs FP32 rollout
    double sqnrDittoDb = 0.0; //!< Ditto vs FP32 rollout (equal if exact)
    std::vector<AccuracyRow> paperRows;
};
AccuracyProxy runTable2Accuracy();

/** Table III: hardware configurations. */
struct HwConfigRow
{
    std::string hardware;
    std::string pes;
    int64_t lanes = 0;
    double powerW = 0.0;
    double sramMB = 0.0;
    double areaMm2 = 0.0;
    double estCoreAreaMm2 = 0.0; //!< our synthesis-class estimate
};
std::vector<HwConfigRow> runTable3HwConfig();

/** Fig. 13 / Fig. 14: full cross-hardware comparison. */
struct ComparisonRow
{
    std::string model;
    std::string hardware;
    double speedup = 0.0;        //!< vs ITC
    double relativeEnergy = 0.0; //!< vs ITC
    double relativeMemAccess = 0.0; //!< vs ITC (Fig. 14)
    EnergyBreakdown energy;      //!< absolute, for the breakdown bars
    RunResult run;               //!< full detail
};
std::vector<ComparisonRow> runFig13Comparison();

/** GPU baseline rows of Fig. 13. */
struct GpuRow
{
    std::string model;
    double speedup = 0.0;        //!< vs ITC (below 1)
    double relativeEnergy = 0.0; //!< vs ITC (far above 1)
};
std::vector<GpuRow> runFig13Gpu();

/** Fig. 15: cross-applying software techniques. */
struct TechniqueRow
{
    std::string model;
    std::string variant;
    double speedup = 0.0; //!< normalised to "Org. Cam-D"
};
std::vector<TechniqueRow> runFig15Techniques();
/** Variant labels of Fig. 15 in print order. */
const std::vector<std::string> &fig15Variants();

/** Fig. 16: ablation cycle breakdown. */
struct AblationRow
{
    std::string model;
    std::string variant;
    double computeCycles = 0.0; //!< relative to ITC total
    double stallCycles = 0.0;   //!< relative to ITC total
};
std::vector<AblationRow> runFig16Ablation();
const std::vector<std::string> &fig16Variants();

/** Fig. 17: Defo execution-type changes and decision accuracy. */
struct DefoRow
{
    std::string model;
    std::string variant;    //!< "Defo" or "Defo+"
    double changedFrac = 0.0;
    double accuracy = 0.0;
};
std::vector<DefoRow> runFig17Defo();

/** Fig. 18: Ditto vs oracle-Defo (Ideal) designs. */
struct IdealRow
{
    std::string model;
    double ditto = 0.0;      //!< speedup vs ITC
    double idealDitto = 0.0;
    double dittoPlus = 0.0;
    double idealDittoPlus = 0.0;
};
std::vector<IdealRow> runFig18Ideal();

/** Fig. 19: drifting-similarity stress (Dynamic-Ditto). */
struct DynamicRow
{
    std::string model;
    double ditto = 0.0;        //!< speedup vs ITC on drifted traces
    double dynamicDitto = 0.0;
    double idealDitto = 0.0;
    double defoAccuracy = 0.0; //!< static Defo accuracy under drift
};
std::vector<DynamicRow> runFig19Dynamic();

} // namespace ditto

#endif // DITTO_SIM_EXPERIMENTS_H
