/**
 * @file
 * Host CPU feature detection for the runtime SIMD kernel dispatch.
 *
 * Detection runs once (first call) and is cached. On x86 the flags
 * come from GCC/Clang's __builtin_cpu_supports, which already folds in
 * the OS XSAVE/XGETBV state checks, so a reported feature is actually
 * usable in user space. On AArch64 Advanced SIMD (NEON) is
 * architecturally mandatory, so it is reported unconditionally. Every
 * other architecture reports nothing and the dispatch falls back to
 * the portable generic kernels.
 */
#ifndef DITTO_COMMON_CPU_H
#define DITTO_COMMON_CPU_H

#include <string>

namespace ditto {

/** User-space-usable SIMD capabilities of the host. */
struct CpuFeatures
{
    bool avx2 = false;
    /** AVX-512 F + BW + VL together (what the kernels need). */
    bool avx512 = false;
    /** AVX-512 VNNI on top of the above (vpdpwssd micro-kernel). */
    bool avx512vnni = false;
    bool neon = false;
};

/** Detected features of this host (detection runs once). */
const CpuFeatures &cpuFeatures();

/** Human-readable summary, e.g. "avx2 avx512 avx512vnni" or "none". */
std::string cpuFeatureSummary();

} // namespace ditto

#endif // DITTO_COMMON_CPU_H
