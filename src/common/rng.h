/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * Every stochastic component of the reproduction (activation synthesis,
 * noise injection, workload perturbation) draws from SplitMix64 streams
 * keyed by (experiment seed, model, layer, step) so results are exactly
 * reproducible and independent of evaluation order.
 */
#ifndef DITTO_COMMON_RNG_H
#define DITTO_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace ditto {

/**
 * SplitMix64 pseudo-random generator.
 *
 * Small state, excellent statistical quality for simulation workloads, and
 * cheap to construct per (layer, step) key. Not cryptographic.
 */
class Rng
{
  public:
    /** Construct a stream from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

    /**
     * Derive an independent stream from this seed and a list of keys.
     * Used to key streams by (model, layer, step).
     */
    static Rng
    fromKeys(uint64_t seed, uint64_t k0, uint64_t k1 = 0, uint64_t k2 = 0)
    {
        Rng r(seed);
        r.state_ ^= mix(k0 + 0x9E3779B97F4A7C15ULL);
        r.state_ = mix(r.state_);
        r.state_ ^= mix(k1 + 0xBF58476D1CE4E5B9ULL);
        r.state_ = mix(r.state_);
        r.state_ ^= mix(k2 + 0x94D049BB133111EBULL);
        r.state_ = mix(r.state_);
        return r;
    }

    /** Next raw 64-bit draw. */
    uint64_t
    nextU64()
    {
        state_ += 0x9E3779B97F4A7C15ULL;
        return mix(state_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t
    uniformInt(uint64_t n)
    {
        return nextU64() % n;
    }

    /** Standard normal draw (Box-Muller; one value per call). */
    double
    normal()
    {
        // Avoid log(0) by keeping u strictly positive.
        double u = 0.0;
        do {
            u = uniform();
        } while (u <= 0.0);
        double v = uniform();
        return std::sqrt(-2.0 * std::log(u)) *
               std::cos(2.0 * 3.14159265358979323846 * v);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static uint64_t
    mix(uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    uint64_t state_;
};

} // namespace ditto

#endif // DITTO_COMMON_RNG_H
