/**
 * @file
 * Minimal persistent thread pool and a parallelFor primitive.
 *
 * The blocked kernels in tensor/kernels.cc split their outermost loop
 * (GEMM row panels, conv batches, norm rows/groups) into index ranges
 * and hand them to parallelFor. Participants claim chunks dynamically
 * from a shared counter (load balancing across skewed chunks), but
 * with an explicit grain, chunk boundaries are a pure function of
 * (begin, end, grain) — never of the thread count or claim order. The
 * grain-less convenience overload sizes chunks from the thread count
 * (a few per thread), so it is only for loops where each index's
 * result is computed entirely within its own iteration (true of every
 * kernel here: integer kernels stay bitwise-identical and float
 * kernels keep a fixed per-output accumulation order at any pool
 * size; the KernelsDeterminism tests assert this).
 *
 * Thread count resolution, in priority order:
 *   1. setThreadCount(n) (tests / benches),
 *   2. the DITTO_NUM_THREADS environment variable,
 *   3. std::thread::hardware_concurrency().
 * The chosen count is logged once per pool (re)build so benchmark runs
 * and CI logs record the parallelism they measured.
 */
#ifndef DITTO_COMMON_PARALLEL_H
#define DITTO_COMMON_PARALLEL_H

#include <cstdint>
#include <functional>

namespace ditto {

/** Half-open index range [begin, end) processed by one pool task. */
using RangeFn = std::function<void(int64_t begin, int64_t end)>;

/** Number of threads the global pool runs with (including the caller). */
int threadCount();

/**
 * Rebuild the global pool with `n` threads (n >= 1).
 *
 * Intended for tests (1-thread vs N-thread determinism checks) and
 * benches; production code should rely on DITTO_NUM_THREADS.
 */
void setThreadCount(int n);

/**
 * Run `fn` over [begin, end) split into contiguous chunks of at most
 * `grain` iterations.
 *
 * The caller's thread participates, so the call is valid (and serial)
 * with a 1-thread pool. Chunk boundaries depend only on (begin, end,
 * grain). Nested calls from inside a worker run inline on the calling
 * worker rather than deadlocking the pool.
 */
void parallelFor(int64_t begin, int64_t end, int64_t grain,
                 const RangeFn &fn);

/** parallelFor with grain chosen so each thread gets ~one chunk. */
void parallelFor(int64_t begin, int64_t end, const RangeFn &fn);

} // namespace ditto

#endif // DITTO_COMMON_PARALLEL_H
