/**
 * @file
 * Environment-knob registry and typed readers.
 */
#include "common/env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace ditto {
namespace env {

namespace {

/**
 * The registry. Adding a knob here is the whole declaration: the
 * readers accept it, docs/config.md documents it (CI cross-checks the
 * table via tools/check_env_registry.py).
 */
constexpr Knob kKnobs[] = {
    {"DITTO_NUM_THREADS", "std::thread::hardware_concurrency()",
     "src/common/parallel.cc",
     "Size of the global parallelFor pool (including the calling "
     "thread). Must be >= 1."},
    {"DITTO_SIMD", "auto", "src/tensor/simd/dispatch.cc",
     "SIMD kernel dispatch level: auto, generic, neon, avx2 or "
     "avx512. Levels the host cannot execute fall back to auto with a "
     "note on stderr."},
    {"DITTO_CACHE_DIR", ".ditto-cache (in the working directory)",
     "src/trace/calibrate.cc",
     "Directory of the calibrated-scale disk cache."},
    {"DITTO_NO_CACHE", "unset", "src/trace/calibrate.cc",
     "Any non-empty value other than 0 disables the calibration cache "
     "entirely (no loads, no stores)."},
    {"DITTO_DIFF_MAC_PENALTY", "probed at first use",
     "src/core/diff_linear.cc",
     "Software Defo cost-model penalties as wide[,narrow]; overrides "
     "the startup micro-probe."},
    {"DITTO_SERVE_MAX_BATCH", "8", "src/serve/server.cc",
     "Capacity of each worker's BatchEngine. Range 1..4096."},
    {"DITTO_SERVE_MAX_WAIT_US", "2000", "src/serve/server.cc",
     "Default batch-formation window in microseconds. Range "
     "0..60000000."},
    {"DITTO_SERVE_WORKERS", "1", "src/serve/server.cc",
     "Worker threads per DenoiseServer, one engine each. Range "
     "1..256."},
    {"DITTO_SERVE_QUEUE_CAP", "64", "src/serve/server.cc",
     "Admission-control bound: most requests allowed to wait in the "
     "class queues; beyond it submit() rejects or blocks. Range "
     "1..1000000."},
    {"DITTO_SERVE_ADMIT_BLOCK_US", "0 (reject immediately)",
     "src/serve/server.cc",
     "Backpressure budget in microseconds: how long a submit against "
     "a full queue blocks for space before rejecting. Range "
     "0..60000000."},
    {"DITTO_SERVE_SHED_HIGH", "0 (3/4 of DITTO_SERVE_QUEUE_CAP)",
     "src/serve/server.cc",
     "Queue depth at which overload shedding engages. Range "
     "0..1000000."},
    {"DITTO_SERVE_SHED_LOW", "0 (1/4 of DITTO_SERVE_QUEUE_CAP)",
     "src/serve/server.cc",
     "Queue depth at which overload shedding releases (hysteresis "
     "band up to DITTO_SERVE_SHED_HIGH). Range 0..1000000."},
    {"DITTO_APPROX_SKIP_THRESH", "0.5", "src/runtime/compiled.cc",
     "ApproxDitto stability threshold: a block is skipped when the "
     "activity fraction of its Defo probe ((0.5*low4 + full8)/total) "
     "is at or below this value. 0 skips only bitwise-identical "
     "steps. Range 0..1."},
    {"DITTO_APPROX_MAX_CONSEC", "3", "src/runtime/compiled.cc",
     "Most consecutive steps ApproxDitto may skip one block before "
     "forcing it to execute. Range 1..4096."},
    {"DITTO_REUSE_CAP_BYTES", "0 (reuse disabled)",
     "src/serve/reuse_cache.cc",
     "Byte budget of the inter-request reuse cache "
     "(docs/reuse_cache.md): resident checkpoint entries are evicted "
     "LRU past it; 0 disables reuse entirely. Range 0..INT64_MAX."},
    {"DITTO_REUSE_CHECKPOINT_EVERY", "2", "src/serve/reuse_cache.cc",
     "Reuse-cache checkpoint cadence in steps: a running request's "
     "state is stored after every Nth step. Range 1..1048576."},
    {"DITTO_FAULT_POINTS", "unset (no faults)",
     "src/serve/faultpoints.cc",
     "Fault-injection spec: `point:action:schedule[:arg]` clauses "
     "joined by ';' (see docs/serving.md). Malformed specs fail "
     "loudly."},
    {"DITTO_FAULT_SEED", "0", "src/serve/faultpoints.cc",
     "Seed for probabilistic fault schedules (prob=P clauses); "
     "every point draws an independent deterministic stream."},
    {"DITTO_SHARD_SOCKET_DIR", "/tmp", "src/shard/worker.cc",
     "Directory for shard-tier Unix-domain sockets. Keep it short: "
     "AF_UNIX paths cap at ~107 bytes."},
    {"DITTO_SHARD_CONNECT_TIMEOUT_MS", "5000", "src/shard/client.cc",
     "How long a ShardClient retries connecting to a worker socket "
     "that does not exist yet / refuses (the worker-startup race), in "
     "milliseconds. Range 0..600000."},
    {"DITTO_SHARD_POLL_US", "500", "src/shard/router.cc",
     "ShardRouter::wait poll interval in microseconds. Range "
     "1..10000000."},
    {"DITTO_SHARD_AFFINITY_SLACK", "2", "src/shard/router.cc",
     "How many outstanding requests the affinity worker may carry "
     "above the least-loaded worker before prefix-affinity routing is "
     "overridden by least-loaded dispatch. Range 0..1048576."},
    {"DITTO_WRITE_GOLDENS", "unset", "tests/test_shard.cc",
     "Any non-empty value other than 0 makes the slab-codec golden "
     "test regenerate the committed fixtures under "
     "tests/goldens/slab/ instead of comparing against them."},
};

/** Registered lookup; panics on a name missing from the table. */
const char *
registered(const char *name)
{
    DITTO_ASSERT(isRegistered(name),
                 "environment knob '" << name
                                      << "' is not in the env registry");
    return name;
}

void
warnInvalid(const char *name, const char *value)
{
    std::fprintf(stderr, "[ditto] ignoring invalid %s=\"%s\"\n", name,
                 value);
}

} // namespace

std::span<const Knob>
knobs()
{
    return std::span<const Knob>(kKnobs);
}

bool
isRegistered(const char *name)
{
    for (const Knob &k : kKnobs)
        if (std::strcmp(k.name, name) == 0)
            return true;
    return false;
}

int64_t
readInt64(const char *name, int64_t fallback, int64_t lo, int64_t hi)
{
    const char *v = std::getenv(registered(name));
    if (!v)
        return fallback;
    char *end = nullptr;
    const long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || parsed < lo || parsed > hi) {
        warnInvalid(name, v);
        return fallback;
    }
    return static_cast<int64_t>(parsed);
}

double
readDouble(const char *name, double fallback, double lo, double hi)
{
    const char *v = std::getenv(registered(name));
    if (!v)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0' || !(parsed >= lo && parsed <= hi)) {
        warnInvalid(name, v);
        return fallback;
    }
    return parsed;
}

bool
readFlag(const char *name)
{
    const char *v = std::getenv(registered(name));
    return v && v[0] != '\0' && v[0] != '0';
}

std::string
readString(const char *name, const char *fallback)
{
    const char *v = std::getenv(registered(name));
    return (v && v[0] != '\0') ? std::string(v) : std::string(fallback);
}

} // namespace env
} // namespace ditto
