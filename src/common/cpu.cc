/**
 * @file
 * Host CPU feature detection.
 */
#include "common/cpu.h"

namespace ditto {

namespace {

CpuFeatures
detect()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports consults cpuid *and* the OS-enabled
    // XCR0 state, so AVX-512 is only reported when zmm state is
    // actually saved/restored by the kernel.
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2");
    f.avx512 = __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vl");
    f.avx512vnni = f.avx512 && __builtin_cpu_supports("avx512vnni");
#elif defined(__aarch64__)
    // Advanced SIMD is mandatory in AArch64.
    f.neon = true;
#endif
    return f;
}

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = detect();
    return f;
}

std::string
cpuFeatureSummary()
{
    const CpuFeatures &f = cpuFeatures();
    std::string s;
    auto add = [&s](const char *name) {
        if (!s.empty())
            s += ' ';
        s += name;
    };
    if (f.avx2)
        add("avx2");
    if (f.avx512)
        add("avx512");
    if (f.avx512vnni)
        add("avx512vnni");
    if (f.neon)
        add("neon");
    if (s.empty())
        s = "none";
    return s;
}

} // namespace ditto
