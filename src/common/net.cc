/**
 * @file
 * Unix-domain socket and frame-transport implementation.
 */
#include "common/net.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/bytes.h"

namespace ditto {
namespace net {

namespace {

/** SIGPIPE-free socket write flag. */
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

bool
fillSockaddr(const std::string &path, sockaddr_un *addr, std::string *why)
{
    if (path.size() >= sizeof(addr->sun_path)) {
        if (why)
            *why = "socket path too long: " + path;
        return false;
    }
    std::memset(addr, 0, sizeof *addr);
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

UnixListener::~UnixListener()
{
    close();
}

bool
UnixListener::listen(const std::string &path, std::string *why)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, &addr, why))
        return false;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (why)
            *why = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) != 0) {
        if (why)
            *why = "bind " + path + ": " + std::strerror(errno);
        closeFd(fd);
        return false;
    }
    if (::listen(fd, 64) != 0) {
        if (why)
            *why = "listen " + path + ": " + std::strerror(errno);
        closeFd(fd);
        ::unlink(path.c_str());
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

int
UnixListener::accept()
{
    for (;;) {
        const int lfd = fd_;
        if (lfd < 0)
            return -1;
        int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd >= 0)
            return cfd;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

void
UnixListener::close()
{
    const int fd = fd_;
    fd_ = -1;
    if (fd >= 0) {
        // shutdown() unblocks a concurrent accept() before close.
        ::shutdown(fd, SHUT_RDWR);
        closeFd(fd);
    }
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

int
connectUnix(const std::string &path, int64_t timeoutMs, std::string *why)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, &addr, why))
        return -1;
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeoutMs);
    for (;;) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            if (why)
                *why = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0)
            return fd;
        const int err = errno;
        closeFd(fd);
        if (err != ENOENT && err != ECONNREFUSED && err != EINTR) {
            if (why)
                *why = "connect " + path + ": " + std::strerror(err);
            return -1;
        }
        if (std::chrono::steady_clock::now() >= give_up) {
            if (why)
                *why = "connect " + path + ": timed out (" +
                       std::strerror(err) + ")";
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

bool
sendAll(int fd, const void *buf, size_t n)
{
    const auto *p = static_cast<const uint8_t *>(buf);
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, kSendFlags);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
recvAll(int fd, void *buf, size_t n)
{
    auto *p = static_cast<uint8_t *>(buf);
    while (n > 0) {
        const ssize_t r = ::recv(fd, p, n, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false; // EOF mid-frame: peer gone
        p += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

bool
sendFrame(int fd, uint32_t type, const std::vector<uint8_t> &payload)
{
    ByteWriter header;
    header.u32(kFrameMagic);
    header.u32(type);
    header.u64(payload.size());
    if (!sendAll(fd, header.data().data(), header.size()))
        return false;
    return payload.empty() || sendAll(fd, payload.data(), payload.size());
}

bool
recvFrame(int fd, Frame *out)
{
    uint8_t header[16];
    if (!recvAll(fd, header, sizeof header))
        return false;
    ByteReader r(header, sizeof header);
    uint32_t magic = 0;
    uint64_t len = 0;
    r.u32(&magic);
    r.u32(&out->type);
    r.u64(&len);
    if (!r.ok() || magic != kFrameMagic || len > kMaxFrameBytes)
        return false;
    out->payload.resize(len);
    return len == 0 || recvAll(fd, out->payload.data(), len);
}

void
closeFd(int fd)
{
    if (fd < 0)
        return;
    while (::close(fd) != 0 && errno == EINTR) {
    }
}

} // namespace net
} // namespace ditto
