/**
 * @file
 * Small arithmetic helpers shared across the library.
 */
#ifndef DITTO_COMMON_MATH_UTIL_H
#define DITTO_COMMON_MATH_UTIL_H

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace ditto {

/** Integer ceiling division. Requires b > 0. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round n up to the next multiple of m. Requires m > 0. */
template <typename T>
constexpr T
roundUp(T n, T m)
{
    return ceilDiv(n, m) * m;
}

/** True when |a - b| <= tol. */
inline bool
nearlyEqual(double a, double b, double tol = 1e-9)
{
    return std::fabs(a - b) <= tol;
}

/** True when a is within rel_tol relative distance of b (b != 0). */
inline bool
withinRelative(double a, double b, double rel_tol)
{
    DITTO_ASSERT(b != 0.0, "relative comparison against zero");
    return std::fabs(a - b) <= rel_tol * std::fabs(b);
}

/** Clamp v into [lo, hi]. */
template <typename T>
constexpr T
clampValue(T v, T lo, T hi)
{
    return std::min(std::max(v, lo), hi);
}

/** Number of bits needed to represent a signed integer in two's complement. */
inline int
signedBitWidth(int64_t v)
{
    // Two's complement n bits covers [-2^(n-1), 2^(n-1) - 1].
    if (v == 0)
        return 0;
    int bits = 1;
    while (v < -(int64_t{1} << (bits - 1)) ||
           v > (int64_t{1} << (bits - 1)) - 1) {
        ++bits;
    }
    return bits;
}

/** Standard normal cumulative distribution function. */
inline double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/** P(|Z| <= x) for a standard normal Z (x >= 0). */
inline double
normalAbsCdf(double x)
{
    return std::erf(x / std::sqrt(2.0));
}

} // namespace ditto

#endif // DITTO_COMMON_MATH_UTIL_H
