/**
 * @file
 * One-dimensional monotone root finding used by the trace calibrator.
 */
#ifndef DITTO_COMMON_BISECT_H
#define DITTO_COMMON_BISECT_H

#include <cmath>
#include <functional>

#include "common/logging.h"

namespace ditto {

/**
 * Solve f(x) = target for a monotone f on [lo, hi] by bisection.
 *
 * @param f monotone (either direction) objective.
 * @param target desired value of f.
 * @param lo lower bracket.
 * @param hi upper bracket.
 * @param iters bisection iterations (each halves the bracket).
 * @return the midpoint of the final bracket. If target lies outside
 *         [f(lo), f(hi)], returns the nearer endpoint.
 */
inline double
bisectMonotone(const std::function<double(double)> &f, double target,
               double lo, double hi, int iters = 60)
{
    DITTO_ASSERT(lo < hi, "bisection bracket must be ordered");
    double flo = f(lo);
    double fhi = f(hi);
    bool increasing = fhi >= flo;
    // Clamp to the achievable range instead of failing: calibration targets
    // read off figures can fall slightly outside the model family's reach.
    if (increasing) {
        if (target <= flo)
            return lo;
        if (target >= fhi)
            return hi;
    } else {
        if (target >= flo)
            return lo;
        if (target <= fhi)
            return hi;
    }
    for (int i = 0; i < iters; ++i) {
        double mid = 0.5 * (lo + hi);
        double fm = f(mid);
        bool go_right = increasing ? (fm < target) : (fm > target);
        if (go_right)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace ditto

#endif // DITTO_COMMON_BISECT_H
