/**
 * @file
 * Environment-knob registry: every `DITTO_*` variable the code reads.
 *
 * All environment access goes through these helpers, and every knob
 * must be declared in the registry table (env.cc) — reading an
 * unregistered name is a programming error that fails loudly. The
 * registry is the single source of truth for docs/config.md;
 * tools/check_env_registry.py (run in CI) cross-checks the table, the
 * docs and the tree's `getenv` calls against each other.
 */
#ifndef DITTO_COMMON_ENV_H
#define DITTO_COMMON_ENV_H

#include <cstdint>
#include <span>
#include <string>

namespace ditto {
namespace env {

/** One registered environment knob (doc strings feed docs/config.md). */
struct Knob
{
    const char *name;     //!< DITTO_* variable name
    const char *fallback; //!< human-readable default
    const char *consumer; //!< file that reads it
    const char *effect;   //!< one-line description
};

/** The full knob registry, in docs/config.md order. */
std::span<const Knob> knobs();

/** True when `name` is in the registry. */
bool isRegistered(const char *name);

/**
 * Integer knob clamped to [lo, hi]. Unset returns `fallback`; a value
 * that does not parse or falls outside the range is ignored with a
 * note on stderr (matching the historic per-call parsers).
 */
int64_t readInt64(const char *name, int64_t fallback, int64_t lo,
                  int64_t hi);

/**
 * Floating-point knob clamped to [lo, hi]; same unset/invalid policy
 * as readInt64. NaN never passes the range check.
 */
double readDouble(const char *name, double fallback, double lo,
                  double hi);

/** Boolean knob: set, non-empty and not starting with '0'. */
bool readFlag(const char *name);

/** String knob; unset or empty returns `fallback`. */
std::string readString(const char *name, const char *fallback);

} // namespace env
} // namespace ditto

#endif // DITTO_COMMON_ENV_H
