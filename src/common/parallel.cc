/**
 * @file
 * Global thread pool backing parallelFor.
 */
#include "common/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/logging.h"

namespace ditto {

namespace {

/** True while the current thread is executing pool work. */
thread_local bool tls_in_pool_worker = false;

/**
 * Fixed-size fork-join pool executing one parallelFor job at a time.
 *
 * Chunks are assigned statically: participant `i` runs chunks
 * i, i + T, i + 2T, ... This keeps the job state trivially stable (no
 * work stealing, no shared counters) — a job's fields are only
 * overwritten after every participant has checked out, and chunk
 * boundaries depend only on (begin, end, grain), never on the thread
 * count, so output ranges are partitioned identically at any pool size.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads) : threads_(threads)
    {
        DITTO_ASSERT(threads >= 1, "thread pool needs >= 1 thread");
        for (int i = 0; i + 1 < threads; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    int threadCount() const { return threads_; }

    void
    run(int64_t begin, int64_t end, int64_t grain, const RangeFn &fn)
    {
        const int64_t n = end - begin;
        if (n <= 0)
            return;
        DITTO_ASSERT(grain >= 1, "parallelFor grain must be positive");
        const int64_t chunks = (n + grain - 1) / grain;
        // Serial fast path: nothing to split, pool is size 1, or we are
        // already inside a pool worker (nested parallelism runs inline).
        if (chunks == 1 || workers_.empty() || tls_in_pool_worker) {
            fn(begin, end);
            return;
        }

        // One job at a time: a second top-level caller waits here
        // instead of overwriting the in-flight job state.
        std::unique_lock<std::mutex> serial(job_serial_);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_.fn = &fn;
            job_.begin = begin;
            job_.end = end;
            job_.grain = grain;
            job_.chunks = chunks;
            job_.pending = threads_;
            ++job_.epoch;
        }
        wake_.notify_all();
        // The caller participates as the last worker. Mark it as
        // inside pool work so a parallelFor issued from fn() takes
        // the inline path instead of clobbering the live job.
        tls_in_pool_worker = true;
        drainAs(threads_ - 1);
        tls_in_pool_worker = false;

        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return job_.pending == 0; });
        job_.fn = nullptr;
    }

  private:
    struct Job
    {
        const RangeFn *fn = nullptr;
        int64_t begin = 0;
        int64_t end = 0;
        int64_t grain = 1;
        int64_t chunks = 0;
        int pending = 0;    //!< participants not yet checked out
        uint64_t epoch = 0; //!< bumped per job so workers see new work
    };

    /** Execute this participant's strided share, then check out. */
    void
    drainAs(int id)
    {
        for (int64_t c = id; c < job_.chunks; c += threads_) {
            const int64_t lo = job_.begin + c * job_.grain;
            const int64_t hi = std::min(job_.end, lo + job_.grain);
            (*job_.fn)(lo, hi);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (--job_.pending == 0) {
            lock.unlock();
            done_.notify_all();
        }
    }

    void
    workerLoop(int id)
    {
        tls_in_pool_worker = true;
        uint64_t seen_epoch = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return stop_ || job_.epoch != seen_epoch;
                });
                if (stop_)
                    return;
                seen_epoch = job_.epoch;
            }
            drainAs(id);
        }
    }

    const int threads_;
    std::vector<std::thread> workers_;
    std::mutex job_serial_; //!< serializes whole jobs across callers
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Job job_;
    bool stop_ = false;
};

/** Valid DITTO_NUM_THREADS value, or 0 if unset/invalid. */
int
envThreadCount()
{
    return static_cast<int>(
        env::readInt64("DITTO_NUM_THREADS", 0, 1, 1 << 16));
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0; //!< 0 = resolve from env/hardware

ThreadPool &
pool()
{
    std::unique_lock<std::mutex> lock(g_pool_mutex);
    if (!g_pool) {
        const int from_env = g_requested_threads > 0 ? 0 : envThreadCount();
        int n = g_requested_threads > 0 ? g_requested_threads : from_env;
        if (n == 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            n = hw >= 1 ? static_cast<int>(hw) : 1;
        }
        g_pool = std::make_unique<ThreadPool>(n);
        std::fprintf(stderr, "[ditto] thread pool: %d thread%s%s\n", n,
                     n == 1 ? "" : "s",
                     from_env > 0 ? " (from DITTO_NUM_THREADS)" : "");
    }
    return *g_pool;
}

} // namespace

int
threadCount()
{
    return pool().threadCount();
}

void
setThreadCount(int n)
{
    DITTO_ASSERT(n >= 1, "setThreadCount needs n >= 1");
    std::unique_lock<std::mutex> lock(g_pool_mutex);
    if (g_pool && g_pool->threadCount() == n)
        return;
    g_requested_threads = n;
    g_pool.reset();
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain, const RangeFn &fn)
{
    pool().run(begin, end, grain, fn);
}

void
parallelFor(int64_t begin, int64_t end, const RangeFn &fn)
{
    const int64_t n = end - begin;
    if (n <= 0)
        return;
    const int t = threadCount();
    const int64_t grain = (n + t - 1) / t;
    parallelFor(begin, end, grain, fn);
}

} // namespace ditto
