/**
 * @file
 * Global thread pool backing parallelFor.
 */
#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/logging.h"

namespace ditto {

namespace {

/** True while the current thread is executing pool work. */
thread_local bool tls_in_pool_worker = false;

/**
 * Fixed-size fork-join pool executing one parallelFor job at a time.
 *
 * Chunks are claimed dynamically: every participant pulls the next
 * unclaimed chunk index from a shared atomic counter until the job is
 * drained. Compared to the static strided assignment this replaces, a
 * participant that lands on expensive chunks (fringe GEMM panels,
 * dense diff rows, border conv bands) no longer strands its remaining
 * share behind it — the other participants absorb it, which is what
 * the many-core scaling study needed. Chunk boundaries remain a pure
 * function of (begin, end, grain), never of the thread count or of the
 * claim order, so output ranges are partitioned identically at any
 * pool size and the determinism contract is unchanged: which thread
 * runs a chunk varies, what the chunk computes does not.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads) : threads_(threads)
    {
        DITTO_ASSERT(threads >= 1, "thread pool needs >= 1 thread");
        for (int i = 0; i + 1 < threads; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    int threadCount() const { return threads_; }

    void
    run(int64_t begin, int64_t end, int64_t grain, const RangeFn &fn)
    {
        const int64_t n = end - begin;
        if (n <= 0)
            return;
        DITTO_ASSERT(grain >= 1, "parallelFor grain must be positive");
        const int64_t chunks = (n + grain - 1) / grain;
        // Serial fast path: nothing to split, pool is size 1, or we are
        // already inside a pool worker (nested parallelism runs inline).
        if (chunks == 1 || workers_.empty() || tls_in_pool_worker) {
            fn(begin, end);
            return;
        }

        // One job at a time: a second top-level caller waits here
        // instead of overwriting the in-flight job state.
        std::unique_lock<std::mutex> serial(job_serial_);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_.fn = &fn;
            job_.begin = begin;
            job_.end = end;
            job_.grain = grain;
            job_.chunks = chunks;
            job_.next.store(0, std::memory_order_relaxed);
            job_.pending = threads_;
            ++job_.epoch;
        }
        wake_.notify_all();
        // The caller participates as a claimant too. Mark it as
        // inside pool work so a parallelFor issued from fn() takes
        // the inline path instead of clobbering the live job.
        tls_in_pool_worker = true;
        drain();
        tls_in_pool_worker = false;

        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return job_.pending == 0; });
        job_.fn = nullptr;
    }

  private:
    struct Job
    {
        const RangeFn *fn = nullptr;
        int64_t begin = 0;
        int64_t end = 0;
        int64_t grain = 1;
        int64_t chunks = 0;
        std::atomic<int64_t> next{0}; //!< next unclaimed chunk index
        int pending = 0;    //!< participants not yet checked out
        uint64_t epoch = 0; //!< bumped per job so workers see new work
    };

    /** Claim and execute chunks until none remain, then check out. */
    void
    drain()
    {
        for (;;) {
            const int64_t c =
                job_.next.fetch_add(1, std::memory_order_relaxed);
            if (c >= job_.chunks)
                break;
            const int64_t lo = job_.begin + c * job_.grain;
            const int64_t hi = std::min(job_.end, lo + job_.grain);
            (*job_.fn)(lo, hi);
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (--job_.pending == 0) {
            lock.unlock();
            done_.notify_all();
        }
    }

    void
    workerLoop(int)
    {
        tls_in_pool_worker = true;
        uint64_t seen_epoch = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return stop_ || job_.epoch != seen_epoch;
                });
                if (stop_)
                    return;
                seen_epoch = job_.epoch;
            }
            drain();
        }
    }

    const int threads_;
    std::vector<std::thread> workers_;
    std::mutex job_serial_; //!< serializes whole jobs across callers
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Job job_;
    bool stop_ = false;
};

/** Valid DITTO_NUM_THREADS value, or 0 if unset/invalid. */
int
envThreadCount()
{
    return static_cast<int>(
        env::readInt64("DITTO_NUM_THREADS", 0, 1, 1 << 16));
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0; //!< 0 = resolve from env/hardware

ThreadPool &
pool()
{
    std::unique_lock<std::mutex> lock(g_pool_mutex);
    if (!g_pool) {
        const int from_env = g_requested_threads > 0 ? 0 : envThreadCount();
        int n = g_requested_threads > 0 ? g_requested_threads : from_env;
        if (n == 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            n = hw >= 1 ? static_cast<int>(hw) : 1;
        }
        g_pool = std::make_unique<ThreadPool>(n);
        std::fprintf(stderr, "[ditto] thread pool: %d thread%s%s\n", n,
                     n == 1 ? "" : "s",
                     from_env > 0 ? " (from DITTO_NUM_THREADS)" : "");
    }
    return *g_pool;
}

} // namespace

int
threadCount()
{
    return pool().threadCount();
}

void
setThreadCount(int n)
{
    DITTO_ASSERT(n >= 1, "setThreadCount needs n >= 1");
    std::unique_lock<std::mutex> lock(g_pool_mutex);
    if (g_pool && g_pool->threadCount() == n)
        return;
    g_requested_threads = n;
    g_pool.reset();
}

void
parallelFor(int64_t begin, int64_t end, int64_t grain, const RangeFn &fn)
{
    pool().run(begin, end, grain, fn);
}

void
parallelFor(int64_t begin, int64_t end, const RangeFn &fn)
{
    const int64_t n = end - begin;
    if (n <= 0)
        return;
    // With dynamic chunk claiming, a few chunks per thread lets fast
    // participants absorb a slow chunk's neighbors; one chunk per
    // thread (the old sizing) made the slowest chunk the critical
    // path. Four is enough to smooth the skewed kernel families (diff
    // rows of very different density, conv border vs interior bands)
    // without measurable claim overhead — past it the scaling curves
    // were flat (tools/run_scaling.sh).
    constexpr int64_t kChunksPerThread = 4;
    const int64_t t = threadCount();
    const int64_t grain =
        std::max<int64_t>(1, (n + t * kChunksPerThread - 1) /
                                 (t * kChunksPerThread));
    parallelFor(begin, end, grain, fn);
}

} // namespace ditto
