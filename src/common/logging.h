/**
 * @file
 * Error handling and logging primitives for the Ditto reproduction.
 *
 * Follows the gem5 convention of distinguishing internal invariant
 * violations (panic) from user-facing configuration errors (fatal).
 */
#ifndef DITTO_COMMON_LOGGING_H
#define DITTO_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ditto {

/** Severity used by detail::logAndAbort. */
enum class LogSeverity { kPanic, kFatal };

namespace detail {

/**
 * Print a formatted diagnostic and terminate.
 *
 * panic() (internal bug) aborts so a debugger or core dump can catch it;
 * fatal() (user/configuration error) exits with status 1.
 */
[[noreturn]] inline void
logAndAbort(LogSeverity sev, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s:%d: %s\n",
                 sev == LogSeverity::kPanic ? "panic" : "fatal",
                 file, line, msg.c_str());
    if (sev == LogSeverity::kPanic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace ditto

/** Abort on an internal invariant violation (a bug in this library). */
#define DITTO_PANIC(msg)                                                     \
    ::ditto::detail::logAndAbort(::ditto::LogSeverity::kPanic, __FILE__,     \
                                 __LINE__, (std::ostringstream{} << msg).str())

/** Exit on an unrecoverable user/configuration error. */
#define DITTO_FATAL(msg)                                                     \
    ::ditto::detail::logAndAbort(::ditto::LogSeverity::kFatal, __FILE__,     \
                                 __LINE__, (std::ostringstream{} << msg).str())

/** Check an invariant that must hold regardless of user input. */
#define DITTO_ASSERT(cond, msg)                                              \
    do {                                                                     \
        if (!(cond))                                                         \
            DITTO_PANIC("assertion failed: " #cond << " — " << msg);         \
    } while (0)

#endif // DITTO_COMMON_LOGGING_H
