/**
 * @file
 * Byte-slab serialization primitives: a growable little-endian writer
 * and a bounds-checked reader.
 *
 * These back every wire format in the repo — the shard protocol frames
 * (src/shard/protocol.h) and the relocatable DittoState slab codec
 * (src/shard/slab_codec.h). Two design rules keep decoding safe on
 * untrusted bytes:
 *
 *  - ByteReader never aborts. Every read returns false on underflow
 *    and latches a failure flag; callers check ok() once at the end of
 *    a section instead of after every field. A failed reader never
 *    yields uninitialized values (outputs are left untouched on
 *    failure).
 *  - All integers are fixed-width little-endian; floats/doubles cross
 *    as their IEEE-754 bit patterns (memcpy, not casts) so a slab
 *    round-trips bitwise on any host this repo targets.
 */
#ifndef DITTO_COMMON_BYTES_H
#define DITTO_COMMON_BYTES_H

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ditto {

/** Growable little-endian byte sink. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void u16(uint16_t v) { putLe(v); }
    void u32(uint32_t v) { putLe(v); }
    void u64(uint64_t v) { putLe(v); }
    void i32(int32_t v) { putLe(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { putLe(static_cast<uint64_t>(v)); }

    void
    f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        putLe(bits);
    }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        putLe(bits);
    }

    /** Raw bytes, no length prefix. */
    void
    bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    /** u32 length followed by the bytes. */
    void
    str(std::string_view s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    /** A typed span as its raw little-endian element bytes. */
    template <typename T>
    void
    span(std::span<const T> s)
    {
        static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                          sizeof(T) == 8,
                      "span element must be a fixed-width scalar");
        // Little-endian hosts only (the repo's supported targets); the
        // codec version field guards against anything else slipping by.
        bytes(s.data(), s.size() * sizeof(T));
    }

    size_t size() const { return buf_.size(); }
    const std::vector<uint8_t> &data() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }

    /** Overwrite previously written bytes (e.g. a patched-in length). */
    void
    patchU64(size_t offset, uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_[offset + static_cast<size_t>(i)] =
                static_cast<uint8_t>(v >> (8 * i));
    }

  private:
    template <typename T>
    void
    putLe(T v)
    {
        for (size_t i = 0; i < sizeof(T); ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked little-endian reader over a borrowed buffer. All
 * reads return false (and latch fail()) on underflow; outputs are
 * untouched on failure.
 */
class ByteReader
{
  public:
    ByteReader(const void *p, size_t n)
        : p_(static_cast<const uint8_t *>(p)), n_(n)
    {}

    explicit ByteReader(std::span<const uint8_t> s)
        : ByteReader(s.data(), s.size())
    {}

    bool ok() const { return !failed_; }
    size_t remaining() const { return n_ - pos_; }
    size_t pos() const { return pos_; }

    bool
    u8(uint8_t *v)
    {
        if (!need(1))
            return false;
        *v = p_[pos_++];
        return true;
    }

    bool u16(uint16_t *v) { return getLe(v); }
    bool u32(uint32_t *v) { return getLe(v); }
    bool u64(uint64_t *v) { return getLe(v); }

    bool
    i32(int32_t *v)
    {
        uint32_t u;
        if (!getLe(&u))
            return false;
        *v = static_cast<int32_t>(u);
        return true;
    }

    bool
    i64(int64_t *v)
    {
        uint64_t u;
        if (!getLe(&u))
            return false;
        *v = static_cast<int64_t>(u);
        return true;
    }

    bool
    f32(float *v)
    {
        uint32_t bits;
        if (!getLe(&bits))
            return false;
        std::memcpy(v, &bits, sizeof bits);
        return true;
    }

    bool
    f64(double *v)
    {
        uint64_t bits;
        if (!getLe(&bits))
            return false;
        std::memcpy(v, &bits, sizeof bits);
        return true;
    }

    bool
    bytes(void *out, size_t n)
    {
        if (!need(n))
            return false;
        std::memcpy(out, p_ + pos_, n);
        pos_ += n;
        return true;
    }

    /** u32 length + bytes, with a sanity cap against hostile lengths. */
    bool
    str(std::string *out, uint32_t maxLen = 1u << 20)
    {
        uint32_t len;
        if (!u32(&len) || len > maxLen || !need(len))
            return fail();
        out->assign(reinterpret_cast<const char *>(p_ + pos_), len);
        pos_ += len;
        return true;
    }

    /** Fill a typed span from raw little-endian element bytes. */
    template <typename T>
    bool
    span(std::span<T> out)
    {
        return bytes(out.data(), out.size() * sizeof(T));
    }

  private:
    bool
    fail()
    {
        failed_ = true;
        return false;
    }

    bool
    need(size_t n)
    {
        if (failed_ || n_ - pos_ < n)
            return fail();
        return true;
    }

    template <typename T>
    bool
    getLe(T *v)
    {
        if (!need(sizeof(T)))
            return false;
        T r = 0;
        for (size_t i = 0; i < sizeof(T); ++i)
            r = static_cast<T>(r | (static_cast<T>(p_[pos_ + i]) << (8 * i)));
        pos_ += sizeof(T);
        *v = r;
        return true;
    }

    const uint8_t *p_;
    size_t n_;
    size_t pos_ = 0;
    bool failed_ = false;
};

/** FNV-1a over a byte range — the slab codec's integrity checksum. */
inline uint64_t
fnv1a(const uint8_t *p, size_t n, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace ditto

#endif // DITTO_COMMON_BYTES_H
