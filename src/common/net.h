/**
 * @file
 * Unix-domain stream sockets and length-prefixed frame transport.
 *
 * The shard tier (src/shard/) is processes on one host, so transport
 * is AF_UNIX SOCK_STREAM: kernel-ordered, reliable, no TLS or
 * addressing concerns, and `kill -9` of a peer surfaces as EOF — the
 * router's failure detector. Everything here is EINTR-safe and
 * returns false on error instead of throwing; callers treat any
 * false as "peer gone".
 *
 * Frame format (little-endian):
 *
 *   u32 magic 'DSRP'  | u32 type | u64 payloadLen | payload bytes
 *
 * recvFrame validates the magic and caps payloadLen so a corrupt or
 * hostile peer cannot drive an allocation bomb.
 */
#ifndef DITTO_COMMON_NET_H
#define DITTO_COMMON_NET_H

#include <cstdint>
#include <string>
#include <vector>

namespace ditto {
namespace net {

/** Frame magic: "DSRP" (Ditto Shard RPc) little-endian. */
inline constexpr uint32_t kFrameMagic = 0x50525344u;

/** Largest accepted frame payload (a full slab fits far below this). */
inline constexpr uint64_t kMaxFrameBytes = 1ull << 30;

/** One parsed frame. */
struct Frame
{
    uint32_t type = 0;
    std::vector<uint8_t> payload;
};

/**
 * Listening Unix-domain socket bound to `path` (unlinked first so a
 * stale socket file from a crashed worker does not block rebinding).
 * close() unblocks a concurrent accept(); the destructor closes and
 * unlinks.
 */
class UnixListener
{
  public:
    UnixListener() = default;
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /** Bind + listen; false (with why) on failure. */
    bool listen(const std::string &path, std::string *why = nullptr);

    /**
     * Block for one connection; returns the connected fd or -1 once
     * the listener is closed.
     */
    int accept();

    /** Shut the listener down; safe from another thread. */
    void close();

    bool listening() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

/**
 * Connect to a Unix-domain socket, retrying for up to `timeoutMs`
 * while the path does not exist / refuses (covers the worker-startup
 * race). Returns the fd or -1.
 */
int connectUnix(const std::string &path, int64_t timeoutMs,
                std::string *why = nullptr);

/** EINTR-safe full write; false on any error (peer gone). */
bool sendAll(int fd, const void *buf, size_t n);

/** EINTR-safe full read; false on EOF or error. */
bool recvAll(int fd, void *buf, size_t n);

/** Write one frame (header + payload). */
bool sendFrame(int fd, uint32_t type, const std::vector<uint8_t> &payload);

/** Read one frame; false on EOF, bad magic or oversized payload. */
bool recvFrame(int fd, Frame *out);

/** close(2), EINTR-safe, ignores errors. -1 is a no-op. */
void closeFd(int fd);

} // namespace net
} // namespace ditto

#endif // DITTO_COMMON_NET_H
