/**
 * @file
 * Similarity and value-range analysis implementation.
 */
#include "stats/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ditto {

double
cosineSimilarity(const FloatTensor &a, const FloatTensor &b)
{
    DITTO_ASSERT(a.shape() == b.shape(), "cosine similarity shape mismatch");
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    auto sa = a.data();
    auto sb = b.data();
    for (size_t i = 0; i < sa.size(); ++i) {
        dot += static_cast<double>(sa[i]) * sb[i];
        na += static_cast<double>(sa[i]) * sa[i];
        nb += static_cast<double>(sb[i]) * sb[i];
    }
    if (na == 0.0 || nb == 0.0)
        return 1.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

double
spatialSimilarity(const FloatTensor &t)
{
    const Shape &s = t.shape();
    DITTO_ASSERT(s.rank() >= 1 && s.numel() > 0, "empty tensor");
    const int64_t cols = s.dim(s.rank() - 1);
    if (cols < 2)
        return 1.0;
    const int64_t rows = s.numel() / cols;
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    auto sd = t.data();
    for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 1; c < cols; ++c) {
            const double x = sd[r * cols + c];
            const double y = sd[r * cols + c - 1];
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
    }
    if (na == 0.0 || nb == 0.0)
        return 1.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

double
valueRange(const FloatTensor &t)
{
    DITTO_ASSERT(t.numel() > 0, "value range of an empty tensor");
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    for (float v : t.data()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return static_cast<double>(hi) - lo;
}

double
diffValueRange(const FloatTensor &a, const FloatTensor &b)
{
    DITTO_ASSERT(a.shape() == b.shape(), "diff range shape mismatch");
    DITTO_ASSERT(a.numel() > 0, "diff range of an empty tensor");
    float lo = std::numeric_limits<float>::max();
    float hi = std::numeric_limits<float>::lowest();
    auto sa = a.data();
    auto sb = b.data();
    for (size_t i = 0; i < sa.size(); ++i) {
        const float d = sa[i] - sb[i];
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    return static_cast<double>(hi) - lo;
}

double
maxAbs(const FloatTensor &t)
{
    double m = 0.0;
    for (float v : t.data())
        m = std::max(m, static_cast<double>(std::fabs(v)));
    return m;
}

double
meanSquaredError(const FloatTensor &a, const FloatTensor &b)
{
    DITTO_ASSERT(a.shape() == b.shape(), "MSE shape mismatch");
    DITTO_ASSERT(a.numel() > 0, "MSE of an empty tensor");
    double acc = 0.0;
    auto sa = a.data();
    auto sb = b.data();
    for (size_t i = 0; i < sa.size(); ++i) {
        const double d = static_cast<double>(sa[i]) - sb[i];
        acc += d * d;
    }
    return acc / static_cast<double>(sa.size());
}

double
sqnrDb(const FloatTensor &ref, const FloatTensor &approx)
{
    DITTO_ASSERT(ref.shape() == approx.shape(), "SQNR shape mismatch");
    double sig = 0.0;
    double noise = 0.0;
    auto sr = ref.data();
    auto sa = approx.data();
    for (size_t i = 0; i < sr.size(); ++i) {
        sig += static_cast<double>(sr[i]) * sr[i];
        const double d = static_cast<double>(sr[i]) - sa[i];
        noise += d * d;
    }
    if (noise == 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(sig / noise);
}

void
RunningStats::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    sumSq_ += v * v;
    ++count_;
}

double
RunningStats::mean() const
{
    DITTO_ASSERT(count_ > 0, "mean of empty series");
    return sum_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    DITTO_ASSERT(count_ > 0, "stddev of empty series");
    const double m = mean();
    const double v = sumSq_ / static_cast<double>(count_) - m * m;
    return std::sqrt(std::max(v, 0.0));
}

} // namespace ditto
