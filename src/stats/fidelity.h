/**
 * @file
 * Fidelity accounting for approximate execution (RunMode::ApproxDitto).
 *
 * The exact modes are bitwise identical to direct execution, so until
 * now "accuracy" needed no measurement. Approximate cross-step block
 * reuse intentionally trades bits for speed; this module quantifies
 * the trade as the two metrics the related work reports (BlockDance,
 * Sortblock — see PAPERS.md): PSNR of the approximate image against
 * the exact rollout's image, and their cosine similarity. Both are
 * computed per denoising step and end to end, and surface in
 * RolloutResult next to OpCounts so bench_kernels can emit
 * reproducible speed-vs-fidelity curves (docs/approx_reuse.md).
 */
#ifndef DITTO_STATS_FIDELITY_H
#define DITTO_STATS_FIDELITY_H

#include <limits>

#include "tensor/tensor.h"

namespace ditto {

/** Fidelity of one approximate tensor against its exact reference. */
struct FidelityStats
{
    /**
     * Peak signal-to-noise ratio in dB: 10 log10(range(ref)^2 / MSE),
     * with range(ref) = max(ref) - min(ref) (the image convention for
     * data without a fixed peak). +inf on an exact match; 0 when the
     * reference is constant but the approximation is not.
     */
    double psnrDb = std::numeric_limits<double>::infinity();

    /** Cosine similarity of the flattened tensors (1 when exact). */
    double cosine = 1.0;

    /** True when the tensors compared bitwise equal. */
    bool exact() const
    {
        return psnrDb == std::numeric_limits<double>::infinity();
    }
};

/**
 * Compare an approximate tensor against its equally-shaped exact
 * reference. Deterministic: a pure function of the two tensors.
 */
FidelityStats compareImages(const FloatTensor &ref,
                            const FloatTensor &approx);

} // namespace ditto

#endif // DITTO_STATS_FIDELITY_H
