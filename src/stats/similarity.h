/**
 * @file
 * Similarity and value-range analysis (paper Section II-B / III-A,
 * Figs. 3 and 4).
 *
 * The observation driving Ditto is that activations of the same layer at
 * adjacent denoising time steps are highly similar (cosine similarity
 * ~0.98), far more so than neighbouring elements inside one activation
 * (spatial similarity ~0.31). This module measures both quantities, plus
 * the value ranges of activations and of temporal differences whose
 * ratio (avg. 8.96x) motivates the reduced-bit-width execution.
 */
#ifndef DITTO_STATS_SIMILARITY_H
#define DITTO_STATS_SIMILARITY_H

#include <cstdint>

#include "tensor/tensor.h"

namespace ditto {

/**
 * Cosine similarity of two equally-shaped tensors, treated as flat
 * vectors. Returns 1 when either vector is all zero (identical "empty"
 * directions; keeps step-to-step series well defined).
 */
double cosineSimilarity(const FloatTensor &a, const FloatTensor &b);

/**
 * Spatial cosine similarity inside one tensor: similarity between the
 * flattened tensor and a copy shifted by one along the last dimension
 * (the row dimension the modified Diffy method differences along).
 */
double spatialSimilarity(const FloatTensor &t);

/** Value range (max - min) of a tensor. */
double valueRange(const FloatTensor &t);

/** Value range of the elementwise difference a - b. */
double diffValueRange(const FloatTensor &a, const FloatTensor &b);

/** Max absolute value of a tensor. */
double maxAbs(const FloatTensor &t);

/** Mean squared error between two equally-shaped tensors. */
double meanSquaredError(const FloatTensor &a, const FloatTensor &b);

/**
 * Signal-to-quantization-noise ratio in dB of `approx` against `ref`
 * (10 log10(E[ref^2] / E[(ref-approx)^2])). Returns +inf for an exact
 * match, used as the Table II accuracy proxy.
 */
double sqnrDb(const FloatTensor &ref, const FloatTensor &approx);

/** Streaming mean/min/max accumulator for scalar series. */
class RunningStats
{
  public:
    void add(double v);

    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    int64_t count() const { return count_; }

    /** Standard deviation (population). */
    double stddev() const;

  private:
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    int64_t count_ = 0;
};

} // namespace ditto

#endif // DITTO_STATS_SIMILARITY_H
