/**
 * @file
 * Fidelity metrics implementation (thin composition of the similarity
 * primitives in stats/similarity.h).
 */
#include "stats/fidelity.h"

#include <cmath>

#include "common/logging.h"
#include "stats/similarity.h"

namespace ditto {

FidelityStats
compareImages(const FloatTensor &ref, const FloatTensor &approx)
{
    DITTO_ASSERT(ref.shape() == approx.shape(),
                 "fidelity comparison needs equally-shaped tensors");
    FidelityStats s;
    const double mse = meanSquaredError(ref, approx);
    if (mse == 0.0) {
        s.psnrDb = std::numeric_limits<double>::infinity();
    } else {
        const double range = valueRange(ref);
        s.psnrDb = range > 0.0
                       ? 10.0 * std::log10(range * range / mse)
                       : 0.0;
    }
    s.cosine = cosineSimilarity(ref, approx);
    return s;
}

} // namespace ditto
