/**
 * @file
 * Relocatable DittoState: a versioned, self-describing byte codec for
 * a request's portable rollout state.
 *
 * The unit of relocation is BatchEngine::Parked — exactly what the
 * serving layer already uses for preemption and reuse-cache
 * warm-starts: the partial image, the multiplier-lane tallies, the
 * step counters, and (for requests that carry resident DittoState) the
 * extracted BatchDittoState::SlabState — previous-input codes,
 * previous int32 outputs at the junction/emit slots, the primed flag
 * and the ApproxDitto skip counters. Encoding this unit makes a
 * request *relocatable*: it can migrate between shard workers, be
 * checkpointed across a worker restart, or ride the wire behind the
 * front-door router (docs/sharding.md).
 *
 * Wire format (all integers little-endian; see docs/sharding.md for
 * the full grammar):
 *
 *   u32  magic  'DSLB'
 *   u16  version (kSlabCodecVersion)
 *   u16  flags   (bit0 ditto, bit1 approx, bit2 hasState)
 *   u64  id
 *   i32  stepsDone,  i32 stepsTotal
 *   i64  x6          OpCounts (zeroSkipped, low4, full8,
 *                    diffCalcElems, summationElems, reusedElems)
 *   tensor           image (f32)
 *   [state section, iff hasState]
 *     u8 primed, u8 approx
 *     u32 nPrevIn,  nPrevIn  tensors (i8)
 *     u32 nPrevOut, nPrevOut tensors (i32)
 *     u32 nConsec,  i32 x nConsec
 *     u32 nSkips,   i64 x nSkips
 *   u64  FNV-1a checksum over every preceding byte
 *
 * with `tensor` = u8 dtype, u8 rank, i64 dims[rank], raw elements.
 *
 * Guarantees:
 *  - Bitwise round-trip: decode(encode(p)) reproduces every field and
 *    every tensor byte exactly (tests/test_shard.cc, committed golden
 *    fixtures per preset x RunMode).
 *  - Back-reference severing: SlabState::backRef (the pin that keeps a
 *    reuse-cache entry alive while a live slot aliases its descent) is
 *    process-local by definition. encode() ignores it and decode()
 *    leaves it null — a decoded state owns its bytes outright.
 *  - Fail loudly, never mis-install: decode() validates the magic,
 *    version, checksum and every tensor header before touching *out,
 *    and returns false with a reason on truncated, corrupted or
 *    version-skewed input. A failed decode leaves *out untouched.
 */
#ifndef DITTO_SHARD_SLAB_CODEC_H
#define DITTO_SHARD_SLAB_CODEC_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/batch_rollout.h"

namespace ditto {
namespace shard {

/** Bumped on any wire-format change; decoders reject other versions. */
inline constexpr uint16_t kSlabCodecVersion = 1;

/** Encode a parked request into a self-contained byte slab. */
std::vector<uint8_t> encodeParked(const BatchEngine::Parked &p);

/**
 * Decode a byte slab. True on success; false with `*why` set on any
 * malformed input (truncated, bad magic, version skew, checksum
 * mismatch, invalid tensor header). *out is only written on success.
 */
bool decodeParked(std::span<const uint8_t> bytes, BatchEngine::Parked *out,
                  std::string *why);

} // namespace shard
} // namespace ditto

#endif // DITTO_SHARD_SLAB_CODEC_H
