/**
 * @file
 * Shard protocol payload codecs (message grammar in protocol.h).
 */
#include "shard/protocol.h"

#include "tensor/tensor.h"

namespace ditto {
namespace shard {

namespace {

/** Largest accepted image payload (elements); rejects hostile dims. */
constexpr int64_t kMaxImageElems = int64_t{1} << 32;

void
putImage(ByteWriter &w, const FloatTensor &t)
{
    const Shape &s = t.shape();
    w.u8(static_cast<uint8_t>(s.rank())); // 0: empty image
    for (int i = 0; i < s.rank(); ++i)
        w.i64(s[i]);
    w.span(std::span<const float>(t.data()));
}

bool
getImage(ByteReader &r, FloatTensor *out)
{
    uint8_t rank = 0;
    if (!r.u8(&rank) || rank > Shape::kMaxRank)
        return false;
    if (rank == 0) {
        *out = FloatTensor();
        return true;
    }
    int64_t dims[Shape::kMaxRank] = {};
    int64_t numel = 1;
    for (int i = 0; i < rank; ++i) {
        if (!r.i64(&dims[i]) || dims[i] <= 0)
            return false;
        numel *= dims[i];
        if (numel > kMaxImageElems)
            return false;
    }
    Shape shape;
    switch (rank) {
      case 1:
        shape = Shape{dims[0]};
        break;
      case 2:
        shape = Shape{dims[0], dims[1]};
        break;
      case 3:
        shape = Shape{dims[0], dims[1], dims[2]};
        break;
      default:
        shape = Shape{dims[0], dims[1], dims[2], dims[3]};
        break;
    }
    FloatTensor t(shape);
    if (!r.span(t.data()))
        return false;
    *out = std::move(t);
    return true;
}

} // namespace

void
putRequest(ByteWriter &w, const DenoiseRequest &req)
{
    w.u64(req.seed);
    w.i32(req.steps);
    w.u8(static_cast<uint8_t>(req.mode));
    w.u64(req.conditioning);
    w.i64(req.maxWaitMicros);
    w.u8(static_cast<uint8_t>(req.slo));
    w.i64(req.deadlineMicros);
}

bool
getRequest(ByteReader &r, DenoiseRequest *out)
{
    DenoiseRequest req;
    uint8_t mode = 0;
    uint8_t slo = 0;
    r.u64(&req.seed);
    r.i32(&req.steps);
    r.u8(&mode);
    r.u64(&req.conditioning);
    r.i64(&req.maxWaitMicros);
    r.u8(&slo);
    r.i64(&req.deadlineMicros);
    if (!r.ok() || slo >= kNumSloClasses)
        return false;
    req.mode = static_cast<RunMode>(mode);
    if (req.mode != RunMode::QuantDitto &&
        req.mode != RunMode::QuantDirect &&
        req.mode != RunMode::ApproxDitto)
        return false;
    if (req.steps < 0 || req.maxWaitMicros < -1 || req.deadlineMicros < -1)
        return false;
    req.slo = static_cast<SloClass>(slo);
    *out = req;
    return true;
}

void
putResult(ByteWriter &w, const DenoiseResult &res)
{
    w.u64(res.id);
    w.u8(static_cast<uint8_t>(res.status));
    w.u8(static_cast<uint8_t>(res.slo));
    w.i32(res.steps);
    w.i32(res.preemptions);
    w.i32(res.reusedSteps);
    w.u8(res.degraded ? 1 : 0);
    w.f64(res.queueMicros);
    w.f64(res.serviceMicros);
    w.i64(res.dittoOps.zeroSkipped);
    w.i64(res.dittoOps.low4);
    w.i64(res.dittoOps.full8);
    w.i64(res.dittoOps.diffCalcElems);
    w.i64(res.dittoOps.summationElems);
    w.i64(res.dittoOps.reusedElems);
    putImage(w, res.image);
}

bool
getResult(ByteReader &r, DenoiseResult *out)
{
    DenoiseResult res;
    uint8_t status = 0;
    uint8_t slo = 0;
    uint8_t degraded = 0;
    r.u64(&res.id);
    r.u8(&status);
    r.u8(&slo);
    r.i32(&res.steps);
    r.i32(&res.preemptions);
    r.i32(&res.reusedSteps);
    r.u8(&degraded);
    r.f64(&res.queueMicros);
    r.f64(&res.serviceMicros);
    r.i64(&res.dittoOps.zeroSkipped);
    r.i64(&res.dittoOps.low4);
    r.i64(&res.dittoOps.full8);
    r.i64(&res.dittoOps.diffCalcElems);
    r.i64(&res.dittoOps.summationElems);
    r.i64(&res.dittoOps.reusedElems);
    if (!r.ok() || status > static_cast<uint8_t>(RequestStatus::Migrated) ||
        slo >= kNumSloClasses)
        return false;
    res.status = static_cast<RequestStatus>(status);
    res.slo = static_cast<SloClass>(slo);
    res.degraded = degraded != 0;
    if (!getImage(r, &res.image))
        return false;
    *out = std::move(res);
    return true;
}

void
putInfo(ByteWriter &w, const WorkerInfo &info)
{
    w.u64(info.specHash);
    w.u64(info.calibDigest);
    w.i32(info.defaultSteps);
    w.i32(info.stateInSlots);
    w.i32(info.stateOutSlots);
}

bool
getInfo(ByteReader &r, WorkerInfo *out)
{
    WorkerInfo info;
    r.u64(&info.specHash);
    r.u64(&info.calibDigest);
    r.i32(&info.defaultSteps);
    r.i32(&info.stateInSlots);
    r.i32(&info.stateOutSlots);
    if (!r.ok())
        return false;
    *out = info;
    return true;
}

void
putMigratedWire(ByteWriter &w, const MigratedWire &m)
{
    w.u64(m.specHash);
    w.u64(m.calibDigest);
    putRequest(w, m.req);
    w.u32(static_cast<uint32_t>(m.slab.size()));
    w.bytes(m.slab.data(), m.slab.size());
}

bool
getMigratedWire(ByteReader &r, MigratedWire *out)
{
    MigratedWire m;
    r.u64(&m.specHash);
    r.u64(&m.calibDigest);
    if (!r.ok() || !getRequest(r, &m.req))
        return false;
    uint32_t len = 0;
    if (!r.u32(&len) || len > r.remaining())
        return false;
    m.slab.resize(len);
    if (!r.bytes(m.slab.data(), len))
        return false;
    *out = std::move(m);
    return true;
}

} // namespace shard
} // namespace ditto
