/**
 * @file
 * Slab codec implementation (format in slab_codec.h).
 */
#include "shard/slab_codec.h"

#include "common/bytes.h"

namespace ditto {
namespace shard {

namespace {

constexpr uint32_t kSlabMagic = 0x424C5344u; // "DSLB"

constexpr uint16_t kFlagDitto = 1u << 0;
constexpr uint16_t kFlagApprox = 1u << 1;
constexpr uint16_t kFlagHasState = 1u << 2;

enum Dtype : uint8_t
{
    kF32 = 1,
    kI8 = 2,
    kI32 = 3,
};

/** Hard bounds a hostile slab cannot talk its way past. */
constexpr uint32_t kMaxSlots = 1u << 20;
constexpr int64_t kMaxDim = int64_t{1} << 32;

template <typename T>
void
putTensor(ByteWriter &w, const Tensor<T> &t, Dtype dtype)
{
    w.u8(dtype);
    const Shape &s = t.shape();
    w.u8(static_cast<uint8_t>(s.rank()));
    for (int i = 0; i < s.rank(); ++i)
        w.i64(s[i]);
    w.span(std::span<const T>(t.data()));
}

template <typename T>
bool
getTensor(ByteReader &r, Tensor<T> *out, Dtype want, std::string *why)
{
    uint8_t dtype = 0;
    uint8_t rank = 0;
    if (!r.u8(&dtype) || !r.u8(&rank)) {
        *why = "truncated tensor header";
        return false;
    }
    if (dtype != want) {
        *why = "tensor dtype mismatch";
        return false;
    }
    if (rank > Shape::kMaxRank) {
        *why = "tensor rank out of range";
        return false;
    }
    int64_t dims[Shape::kMaxRank] = {};
    for (int i = 0; i < rank; ++i) {
        if (!r.i64(&dims[i]) || dims[i] <= 0 || dims[i] > kMaxDim) {
            *why = "tensor dimension out of range";
            return false;
        }
    }
    // Rank 0 is a legitimately empty tensor: a never-started (cold)
    // migrated request carries no partial image yet.
    Shape shape;
    switch (rank) {
      case 0:
        shape = Shape{};
        break;
      case 1:
        shape = Shape{dims[0]};
        break;
      case 2:
        shape = Shape{dims[0], dims[1]};
        break;
      case 3:
        shape = Shape{dims[0], dims[1], dims[2]};
        break;
      default:
        shape = Shape{dims[0], dims[1], dims[2], dims[3]};
        break;
    }
    const uint64_t payload =
        static_cast<uint64_t>(shape.numel()) * sizeof(T);
    if (payload > r.remaining()) {
        *why = "truncated tensor payload";
        return false;
    }
    Tensor<T> t(shape);
    if (!r.span(t.data())) {
        *why = "truncated tensor payload";
        return false;
    }
    *out = std::move(t);
    return true;
}

template <typename T, typename Put>
bool
getVec(ByteReader &r, std::vector<T> *out, Put get, std::string *why)
{
    uint32_t n = 0;
    if (!r.u32(&n) || n > kMaxSlots) {
        *why = "slot count out of range";
        return false;
    }
    std::vector<T> v(n);
    for (uint32_t i = 0; i < n; ++i) {
        if (!get(r, &v[i], why))
            return false;
    }
    *out = std::move(v);
    return true;
}

} // namespace

std::vector<uint8_t>
encodeParked(const BatchEngine::Parked &p)
{
    ByteWriter w;
    w.u32(kSlabMagic);
    w.u16(kSlabCodecVersion);
    uint16_t flags = 0;
    if (p.ditto)
        flags |= kFlagDitto;
    if (p.approx)
        flags |= kFlagApprox;
    if (p.hasState)
        flags |= kFlagHasState;
    w.u16(flags);
    w.u64(p.id);
    w.i32(p.stepsDone);
    w.i32(p.stepsTotal);
    w.i64(p.ops.zeroSkipped);
    w.i64(p.ops.low4);
    w.i64(p.ops.full8);
    w.i64(p.ops.diffCalcElems);
    w.i64(p.ops.summationElems);
    w.i64(p.ops.reusedElems);
    putTensor(w, p.image, kF32);
    if (p.hasState) {
        // backRef is process-local and intentionally severed here: a
        // relocated slab must own its bytes, not pin a cache entry in
        // the process it left behind.
        const auto &s = p.state;
        w.u8(s.primed);
        w.u8(s.approx);
        w.u32(static_cast<uint32_t>(s.prevIn.size()));
        for (const auto &t : s.prevIn)
            putTensor(w, t, kI8);
        w.u32(static_cast<uint32_t>(s.prevOut.size()));
        for (const auto &t : s.prevOut)
            putTensor(w, t, kI32);
        w.u32(static_cast<uint32_t>(s.consec.size()));
        w.span(std::span<const int32_t>(s.consec));
        w.u32(static_cast<uint32_t>(s.skips.size()));
        w.span(std::span<const int64_t>(s.skips));
    }
    w.u64(fnv1a(w.data().data(), w.size()));
    return w.take();
}

bool
decodeParked(std::span<const uint8_t> bytes, BatchEngine::Parked *out,
             std::string *why)
{
    std::string reason;
    if (!why)
        why = &reason;
    if (bytes.size() < 16 + 8) {
        *why = "truncated slab (shorter than header + checksum)";
        return false;
    }
    // Integrity first: everything before the trailing u64 must hash to
    // it, so a flipped bit anywhere is caught before any field parses.
    const size_t body = bytes.size() - 8;
    ByteReader tail(bytes.data() + body, 8);
    uint64_t want = 0;
    tail.u64(&want);
    if (fnv1a(bytes.data(), body) != want) {
        *why = "slab checksum mismatch";
        return false;
    }

    ByteReader r(bytes.data(), body);
    uint32_t magic = 0;
    uint16_t version = 0;
    uint16_t flags = 0;
    if (!r.u32(&magic) || magic != kSlabMagic) {
        *why = "bad slab magic";
        return false;
    }
    if (!r.u16(&version) || version != kSlabCodecVersion) {
        *why = "slab codec version skew: got " + std::to_string(version) +
               ", want " + std::to_string(kSlabCodecVersion);
        return false;
    }
    r.u16(&flags);

    BatchEngine::Parked p;
    p.ditto = (flags & kFlagDitto) != 0;
    p.approx = (flags & kFlagApprox) != 0;
    p.hasState = (flags & kFlagHasState) != 0;
    r.u64(&p.id);
    r.i32(&p.stepsDone);
    r.i32(&p.stepsTotal);
    r.i64(&p.ops.zeroSkipped);
    r.i64(&p.ops.low4);
    r.i64(&p.ops.full8);
    r.i64(&p.ops.diffCalcElems);
    r.i64(&p.ops.summationElems);
    r.i64(&p.ops.reusedElems);
    if (!r.ok()) {
        *why = "truncated slab header";
        return false;
    }
    if (p.stepsDone < 0 || p.stepsTotal <= 0 || p.stepsDone > p.stepsTotal) {
        *why = "slab step counters out of range";
        return false;
    }
    if (!getTensor(r, &p.image, kF32, why))
        return false;
    if (p.hasState) {
        auto &s = p.state;
        if (!r.u8(&s.primed) || !r.u8(&s.approx)) {
            *why = "truncated state flags";
            return false;
        }
        auto getI8 = [](ByteReader &rr, Int8Tensor *t, std::string *w) {
            return getTensor(rr, t, kI8, w);
        };
        auto getI32T = [](ByteReader &rr, Int32Tensor *t, std::string *w) {
            return getTensor(rr, t, kI32, w);
        };
        auto getI32 = [](ByteReader &rr, int32_t *v, std::string *w) {
            if (rr.i32(v))
                return true;
            *w = "truncated counter array";
            return false;
        };
        auto getI64 = [](ByteReader &rr, int64_t *v, std::string *w) {
            if (rr.i64(v))
                return true;
            *w = "truncated counter array";
            return false;
        };
        if (!getVec(r, &s.prevIn, getI8, why) ||
            !getVec(r, &s.prevOut, getI32T, why) ||
            !getVec(r, &s.consec, getI32, why) ||
            !getVec(r, &s.skips, getI64, why))
            return false;
        s.backRef = nullptr;
    }
    if (r.remaining() != 0) {
        *why = "trailing bytes after slab";
        return false;
    }
    *out = std::move(p);
    return true;
}

} // namespace shard
} // namespace ditto
